// Open-loop Poisson load generator and soak driver for the protected BLAS-3
// serving layer (src/serve) and the sharded fleet layer (src/fleet). Phases
// (selected by AABFT_SERVE_PHASES, a comma list; all run by default):
//
//   throughput — 1. serial (batching disabled, max_batch = 1);
//      2. batched (cross-request batching at max_batch = 8). The speedup
//      over serial is the coalescing win; the >= 2x gate applies on hosts
//      with >= 4 pool workers (matching bench_executor's batching
//      criterion); smaller hosts still verify correctness and report it.
//   soak — AABFT_SERVE_REQUESTS requests of mixed op kinds (GEMM, SYRK,
//      Cholesky) over mixed shapes, with Poisson arrivals and one
//      exponent-bit fault armed per request, against one simulated device.
//      Every response must come back clean; responses without corrections
//      must be bit-identical to the fault-free reference. Corrected
//      GEMM/SYRK responses may differ from it only in the patched elements
//      (within 1e-9 relative); corrected Cholesky responses must
//      reconstruct the input (patch rounding propagates through the
//      factorisation, so bitwise comparison does not apply). Single-fault
//      damage must be repaired below the full-recompute rung.
//   fleet — two rounds of AABFT_SERVE_FLEET_REQUESTS erasure-coded-operand
//      GEMM requests (one fault armed each) against a 3-device FleetServer:
//      a clean round, then a round with one device force-failed mid-run.
//      Gates: zero wrong responses in both rounds, every request completed,
//      exactly one fenced device, at least one operand served through a
//      parity reconstruction, and the degraded round's p99 stays within a
//      bounded factor of the clean round's.
//   opcache — zipf weight-reuse traffic against the operand checksum cache
//      (DESIGN.md §12): a catalogue of n x n weight matrices multiplied by
//      skinny activation panels, weight popularity zipf(s)-distributed.
//      Three rounds over one shared schedule: cold (cache disabled, every
//      request re-encodes A inline), warm (weights registered up front,
//      requests ship handles), and a warm faulted round (one exponent fault
//      per request, sampled consistency guard on). Gates at the standard
//      size: warm throughput >= 2x cold at the same offered load, warm p50
//      and p99 below cold's, every warm request a cache hit, and zero wrong
//      responses in the faulted round.
//
// Exits nonzero on any wrong or unclean response, or a violated gate.
// Summary JSON (throughput + aggregated server + per-shard fleet telemetry)
// goes to $AABFT_SERVE_JSON, defaulting to BENCH_serve.json.
//
//   AABFT_SERVE_PHASES          comma list (default
//                               "throughput,soak,fleet,opcache")
//   AABFT_SERVE_REQUESTS        soak request count (default 2000)
//   AABFT_SERVE_RATE            soak arrival rate, requests/s (default 300)
//   AABFT_SERVE_FAULTS          faults armed per soak request (default 1)
//   AABFT_SERVE_SEED            RNG seed (default 42)
//   AABFT_SERVE_THROUGHPUT_N    requests per throughput phase (default 64)
//   AABFT_SERVE_FLEET_REQUESTS  requests per fleet round (default 240)
//   AABFT_SERVE_ZIPF_REQUESTS   requests per opcache round (default 192)
//   AABFT_SERVE_ZIPF_WEIGHTS    weight-catalogue size (default 8)
//   AABFT_SERVE_ZIPF_N          weight dimension (default 384)
//   AABFT_SERVE_ZIPF_Q          activation panel width (default 2)
//   AABFT_SERVE_ZIPF_BS         checksum block size (default 2)
//   AABFT_SERVE_ZIPF_S          zipf skew exponent (default 1.1)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "abft/padding.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "fleet/fleet_server.hpp"
#include "fp/fault_vector.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"
#include "serve/server.hpp"

namespace {

using namespace aabft;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double env_double_or(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return (value != nullptr && *value != '\0') ? std::strtod(value, nullptr)
                                              : fallback;
}

int failures = 0;
void check(bool ok, const std::string& what) {
  if (ok) return;
  ++failures;
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
}

/// A soak problem with its fault-free ground truth and the extent of the
/// kernel grid the protected compute launches (for picking SM ids that are
/// guaranteed to execute).
struct Problem {
  serve::OpKind kind = serve::OpKind::kGemm;
  linalg::Matrix a;
  linalg::Matrix b;    ///< GEMM only; empty for the single-operand kinds
  linalg::Matrix ref;  ///< the fault-free result (for Cholesky: the factor L)
  std::size_t grid_blocks = 0;
  std::size_t fault_k = 0;  ///< inner extent k_injection draws from
};

std::size_t grid_blocks_of(std::size_t m, std::size_t k, std::size_t q,
                           const abft::AabftConfig& config) {
  (void)k;
  const std::size_t bs = config.bs;
  const auto encoded = [&](std::size_t dim) {
    return abft::padded_dim(dim, bs) / bs * (bs + 1);
  };
  const auto ceil_div = [](std::size_t a, std::size_t b) {
    return (a + b - 1) / b;
  };
  if (config.fused_gemm)
    // The fused kernel tiles C_fc directly: one block per (bs+1)x(bs+1) tile.
    return ceil_div(encoded(m), bs + 1) * ceil_div(encoded(q), bs + 1);
  return ceil_div(encoded(m), config.gemm.bm) *
         ceil_div(encoded(q), config.gemm.bn);
}

std::vector<gpusim::FaultConfig> random_fault_plan(
    Rng& rng, std::size_t count, const Problem& problem,
    const abft::AabftConfig& config, int num_sms) {
  std::vector<gpusim::FaultConfig> plan(count);
  const std::size_t k = problem.fault_k;
  const auto sm_limit = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(num_sms), problem.grid_blocks);
  const std::size_t modules = config.fused_gemm
                                  ? config.fused.rx * config.fused.ry
                                  : config.gemm.rx * config.gemm.ry;
  for (auto& fault : plan) {
    fault.site = static_cast<gpusim::FaultSite>(rng.below(3));
    fault.sm_id = static_cast<int>(rng.below(sm_limit));
    fault.module_id = static_cast<int>(rng.below(modules));
    fault.k_injection = fault.site == gpusim::FaultSite::kFinalAdd
                            ? 0
                            : static_cast<std::int64_t>(rng.below(k));
    // Figure 4: sign/exponent flips are detected with probability ~1, so an
    // armed-and-fired fault must surface as detect -> repair, never as
    // silent corruption.
    fault.error_vec = fp::make_error_vec(fp::BitField::kExponent, 1, rng);
  }
  return plan;
}

/// Submit `count` identical-shape fault-free requests while the server is
/// paused, resume, and time until every response arrived.
double timed_burst(serve::GemmServer& server, const linalg::Matrix& a,
                   const linalg::Matrix& b, std::size_t count) {
  server.pause();
  std::vector<std::future<serve::GemmResponse>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    serve::GemmRequest request;
    request.a = a;
    request.b = b;
    auto admitted = server.submit(std::move(request));
    check(admitted.ok(), "throughput request admitted");
    if (admitted.ok()) pending.push_back(std::move(*admitted));
  }
  const auto start = Clock::now();
  server.resume();
  for (auto& f : pending) {
    const serve::GemmResponse response = f.get();
    check(response.status == serve::ResponseStatus::kOk && response.clean,
          "throughput response clean");
  }
  return seconds_since(start);
}

}  // namespace

int main() {
  const std::size_t requests = env_size_or("AABFT_SERVE_REQUESTS", 2000);
  const std::size_t throughput_n = env_size_or("AABFT_SERVE_THROUGHPUT_N", 64);
  const std::size_t faults_per_request = env_size_or("AABFT_SERVE_FAULTS", 1);
  const double rate = env_double_or("AABFT_SERVE_RATE", 300.0);
  const auto seed = static_cast<std::uint64_t>(env_size_or("AABFT_SERVE_SEED", 42));
  const char* phases_env = std::getenv("AABFT_SERVE_PHASES");
  const std::string phases = (phases_env != nullptr && *phases_env != '\0')
                                 ? phases_env
                                 : "throughput,soak,fleet,opcache";
  const auto has_phase = [&phases](const char* name) {
    return phases.find(name) != std::string::npos;
  };

  gpusim::Launcher launcher;
  Rng rng(seed);
  std::printf("aabft_serve: %u pool worker(s), seed %llu\n\n",
              launcher.workers(), static_cast<unsigned long long>(seed));

  // -- throughput: serial vs batched ---------------------------------------
  const linalg::Matrix ta = linalg::uniform_matrix(64, 64, -1.0, 1.0, rng);
  const linalg::Matrix tb = linalg::uniform_matrix(64, 64, -1.0, 1.0, rng);
  double serial_s = 0.0;
  double batched_s = 0.0;
  double speedup = 0.0;
  const bool gate_applies = launcher.workers() >= 4;
  if (has_phase("throughput")) {
    {
      serve::ServeConfig config;
      config.batch.max_batch = 1;
      serve::GemmServer server(launcher, config);
      (void)timed_burst(server, ta, tb, 4);  // warm-up: pool + lane creation
      serial_s = timed_burst(server, ta, tb, throughput_n);
    }
    std::size_t batches = 0;
    {
      serve::ServeConfig config;
      config.batch.max_batch = 8;
      serve::GemmServer server(launcher, config);
      (void)timed_burst(server, ta, tb, 4);
      batched_s = timed_burst(server, ta, tb, throughput_n);
      batches = server.stats().batches;
    }
    speedup = batched_s > 0.0 ? serial_s / batched_s : 0.0;
    std::printf("throughput, %zu requests of 64x64x64:\n", throughput_n);
    std::printf("  serial (max_batch=1)  : %8.3f s\n", serial_s);
    std::printf("  batched (max_batch=8) : %8.3f s  (%.2fx, %zu dispatches)\n",
                batched_s, speedup, batches);
    if (gate_applies)
      check(speedup >= 2.0, "batching speedup >= 2x on >= 4 workers (got " +
                                std::to_string(speedup) + "x)");
    else
      std::printf("  note: %u pool worker(s) — the >= 2x gate applies on >= 4 "
                  "workers\n",
                  launcher.workers());
    std::printf("\n");
  }

  // -- soak ----------------------------------------------------------------
  std::size_t overload_backoffs = 0;
  std::size_t bitwise_identical = 0;
  std::size_t fired_total = 0;
  std::string serve_telemetry = "{}";
  if (has_phase("soak")) {
  serve::ServeConfig config;
  const abft::AabftConfig& aabft_cfg = config.aabft;
  std::vector<Problem> pool;
  const std::size_t shapes[][3] = {{32, 32, 32}, {48, 40, 56}, {64, 64, 64},
                                   {33, 32, 33}, {80, 48, 64}, {64, 96, 32}};
  for (const auto& shape : shapes)
    for (int copy = 0; copy < 2; ++copy) {
      Problem problem;
      problem.a =
          linalg::uniform_matrix(shape[0], shape[1], -1.0, 1.0, rng);
      problem.b =
          linalg::uniform_matrix(shape[1], shape[2], -1.0, 1.0, rng);
      problem.ref = linalg::naive_matmul(problem.a, problem.b,
                                         aabft_cfg.gemm.use_fma);
      problem.grid_blocks =
          grid_blocks_of(shape[0], shape[1], shape[2], aabft_cfg);
      problem.fault_k = shape[1];
      pool.push_back(std::move(problem));
    }
  const std::size_t syrk_shapes[][2] = {{32, 32}, {48, 40}, {64, 24}};
  for (const auto& shape : syrk_shapes)
    for (int copy = 0; copy < 2; ++copy) {
      Problem problem;
      problem.kind = serve::OpKind::kSyrk;
      problem.a =
          linalg::uniform_matrix(shape[0], shape[1], -1.0, 1.0, rng);
      problem.ref = linalg::naive_matmul(problem.a, problem.a.transposed(),
                                         aabft_cfg.gemm.use_fma);
      problem.grid_blocks =
          grid_blocks_of(shape[0], shape[1], shape[0], aabft_cfg);
      problem.fault_k = shape[1];
      pool.push_back(std::move(problem));
    }
  // Cholesky references come from a clean protected run on the same device
  // (the factorisation is deterministic, so corrections == 0 responses must
  // match it bit for bit). Faults target the first trailing update's grid.
  baselines::AabftScheme ref_scheme(launcher, aabft_cfg);
  const std::size_t chol_sizes[] = {48, 64, 96};
  for (const std::size_t n : chol_sizes)
    for (int copy = 0; copy < 2; ++copy) {
      Problem problem;
      problem.kind = serve::OpKind::kCholesky;
      const linalg::Matrix seed_m =
          linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
      problem.a = linalg::naive_matmul(seed_m, seed_m.transposed(),
                                       aabft_cfg.gemm.use_fma);
      for (std::size_t i = 0; i < n; ++i)
        problem.a(i, i) += static_cast<double>(n);  // SPD, well conditioned
      auto ref = ref_scheme.execute(baselines::OpDescriptor::cholesky(n),
                                    problem.a, linalg::Matrix());
      check(ref.ok() && ref->clean, "clean reference Cholesky factors");
      if (!ref.ok()) continue;
      problem.ref = std::move(ref->c);
      const std::size_t panel = aabft_cfg.bs;
      problem.grid_blocks =
          grid_blocks_of(n - panel, panel, n - panel, aabft_cfg);
      problem.fault_k = panel;
      pool.push_back(std::move(problem));
    }

  serve::GemmServer server(launcher, config);
  std::vector<std::pair<std::size_t, std::future<serve::GemmResponse>>>
      inflight;
  inflight.reserve(requests);

  const auto soak_start = Clock::now();
  double next_arrival_s = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    next_arrival_s += -std::log(1.0 - rng.next_unit()) / rate;
    std::this_thread::sleep_until(
        soak_start + std::chrono::duration<double>(next_arrival_s));
    const std::size_t p = rng.below(pool.size());
    const auto priority = static_cast<serve::Priority>(rng.below(3));
    const auto plan =
        faults_per_request == 0
            ? std::vector<gpusim::FaultConfig>{}
            : random_fault_plan(rng, faults_per_request, pool[p], aabft_cfg,
                                launcher.device().num_sms);
    for (;;) {
      serve::GemmRequest request;
      request.kind = pool[p].kind;
      request.a = pool[p].a;
      request.b = pool[p].b;
      request.priority = priority;
      if (i % 8 == 0) request.deadline_ms = 60000.0;  // generous: admissible
      request.fault_plan = plan;
      auto admitted = server.submit(std::move(request));
      if (admitted.ok()) {
        inflight.emplace_back(p, std::move(*admitted));
        break;
      }
      if (admitted.error().code != ErrorCode::kOverloaded) {
        check(false, "unexpected admission refusal: " +
                         admitted.error().message);
        break;
      }
      ++overload_backoffs;  // open-loop generator outran the server
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  std::size_t corrected_total = 0;
  std::size_t full_recomputes_total = 0;
  for (auto& [p, f] : inflight) {
    const serve::GemmResponse r = f.get();
    const Problem& problem = pool[p];
    check(r.status == serve::ResponseStatus::kOk && r.clean,
          "response " + std::to_string(r.id) + " clean (rung " +
              std::string(to_string(r.rung)) + ", diagnosis: " + r.diagnosis +
              ")");
    check(r.c.rows() == problem.ref.rows() && r.c.cols() == problem.ref.cols(),
          "response " + std::to_string(r.id) + " has the request's extents");
    const auto& t = r.trace;
    check(t.enqueue_ns <= t.dispatch_ns && t.dispatch_ns <= t.compute_ns &&
              t.compute_ns <= t.repair_ns && t.repair_ns <= t.complete_ns,
          "response " + std::to_string(r.id) + " trace timestamps monotone");
    corrected_total += t.corrected ? 1 : 0;
    full_recomputes_total += t.full_recomputes;
    fired_total += t.faults_fired;
    if (r.c.rows() != problem.ref.rows() || r.c.cols() != problem.ref.cols())
      continue;
    if (t.corrections == 0) {
      // No checksum patches: repair (if any) was bit-exact, so the result
      // must match the fault-free reference bit for bit.
      check(r.c == problem.ref,
            "response " + std::to_string(r.id) + " bit-identical (rung " +
                std::string(to_string(r.rung)) + ")");
      ++bitwise_identical;
    } else if (problem.kind == serve::OpKind::kCholesky) {
      // Patch rounding in a trailing update propagates through every later
      // panel, so the factors are not elementwise-comparable to the clean
      // run; the served factors must still reconstruct the input.
      double residual = 0.0;
      const std::size_t nn = problem.a.rows();
      for (std::size_t row = 0; row < nn; ++row)
        for (std::size_t col = 0; col < nn; ++col) {
          double s = 0.0;
          const std::size_t tmax = std::min(row, col) + 1;
          for (std::size_t x = 0; x < tmax; ++x)
            s += r.c(row, x) * r.c(col, x);
          residual = std::max(residual, std::abs(problem.a(row, col) - s));
        }
      check(residual <= 1e-6,
            "response " + std::to_string(r.id) +
                " corrected Cholesky reconstructs the input (residual " +
                std::to_string(residual) + ")");
    } else {
      // Patched elements carry the checksum-sum rounding; everything else
      // must still be bit-identical.
      std::size_t diffs = 0;
      bool within_tol = true;
      for (std::size_t row = 0; row < r.c.rows(); ++row)
        for (std::size_t col = 0; col < r.c.cols(); ++col) {
          const double got = r.c(row, col);
          const double want = problem.ref(row, col);
          if (got == want) continue;
          ++diffs;
          const double rel =
              std::abs(got - want) / std::max(1e-300, std::abs(want));
          within_tol = within_tol && rel <= 1e-9;
        }
      check(diffs <= t.corrections,
            "response " + std::to_string(r.id) + ": " + std::to_string(diffs) +
                " deviations exceed the " + std::to_string(t.corrections) +
                " patched elements");
      check(within_tol, "response " + std::to_string(r.id) +
                            " patched elements within 1e-9 relative");
    }
  }
  server.stop();

  const serve::ServerStats stats = server.stats();
  check(stats.failed == 0, "no failed responses");
  check(stats.completed == inflight.size(), "every admitted request completed");
  if (requests >= 100)
    check(stats.completed_by_kind[0] > 0 && stats.completed_by_kind[1] > 0 &&
              stats.completed_by_kind[2] > 0,
          "the soak exercised GEMM, SYRK and Cholesky");
  if (faults_per_request == 1) {
    check(full_recomputes_total == 0,
          "single-fault damage repaired below the full-recompute rung (" +
              std::to_string(full_recomputes_total) + " full recomputes)");
    check(corrected_total >= 1, "at least one response took the correction path");
  }
  if (config.aabft.fused_gemm) {
    check(stats.fused_encode_requests > 0,
          "requests were served through the fused encode path");
    // Inner-loop faults (2/3 of armed sites) land inside a k-panel and must
    // surface through the online panel checks before the final verify.
    if (faults_per_request >= 1 && requests >= 100)
      check(stats.panel_detections >= 1,
            "online panel checks detected in-flight faults");
  }

  std::printf("soak, %zu requests over %zu problems:\n", requests, pool.size());
  std::printf("  completed by kind       : gemm %llu, syrk %llu, cholesky "
              "%llu, lu %llu\n",
              static_cast<unsigned long long>(stats.completed_by_kind[0]),
              static_cast<unsigned long long>(stats.completed_by_kind[1]),
              static_cast<unsigned long long>(stats.completed_by_kind[2]),
              static_cast<unsigned long long>(stats.completed_by_kind[3]));
  std::printf("  faults armed/fired      : %llu / %zu\n",
              static_cast<unsigned long long>(stats.faults_armed), fired_total);
  std::printf("  corrected / block-rec / full-rec : %zu / %llu / %zu\n",
              corrected_total,
              static_cast<unsigned long long>(stats.block_recomputes),
              full_recomputes_total);
  std::printf("  panel detections (online) : %llu  (fused-encode requests: "
              "%llu)\n",
              static_cast<unsigned long long>(stats.panel_detections),
              static_cast<unsigned long long>(stats.fused_encode_requests));
  std::printf("  bit-identical responses : %zu\n", bitwise_identical);
  std::printf("  overload backoffs       : %zu\n", overload_backoffs);
  std::printf("  e2e latency             : p50 %.3f ms, p95 %.3f ms, "
              "p99 %.3f ms, max %.3f ms\n",
              stats.e2e_ns.p50() / 1e6, stats.e2e_ns.p95() / 1e6,
              stats.e2e_ns.p99() / 1e6, stats.e2e_ns.max() / 1e6);
  serve_telemetry = server.telemetry_json();
  }  // soak phase

  // -- fleet: sharded multi-device rounds with a forced mid-run loss --------
  double fleet_clean_p99_ms = 0.0;
  double fleet_degraded_p99_ms = 0.0;
  std::size_t fleet_requests = 0;
  std::uint64_t fleet_reconstructions = 0;
  std::uint64_t fleet_replays = 0;
  std::string fleet_telemetry = "{}";
  if (has_phase("fleet")) {
    fleet_requests = env_size_or("AABFT_SERVE_FLEET_REQUESTS", 240);
    fleet::FleetConfig fleet_config;
    const abft::AabftConfig& aabft_cfg = fleet_config.serve.aabft;

    // GEMM-only problem pool; operands go through the erasure-coded store.
    std::vector<Problem> pool;
    const std::size_t shapes[][3] = {
        {32, 32, 32}, {48, 40, 56}, {64, 64, 64}, {33, 32, 33}};
    for (const auto& shape : shapes) {
      Problem problem;
      problem.a = linalg::uniform_matrix(shape[0], shape[1], -1.0, 1.0, rng);
      problem.b = linalg::uniform_matrix(shape[1], shape[2], -1.0, 1.0, rng);
      problem.ref =
          linalg::naive_matmul(problem.a, problem.b, aabft_cfg.gemm.use_fma);
      problem.grid_blocks =
          grid_blocks_of(shape[0], shape[1], shape[2], aabft_cfg);
      problem.fault_k = shape[1];
      pool.push_back(std::move(problem));
    }

    // One round: submit `fleet_requests` handle-based requests (one
    // exponent fault armed each), optionally force-failing device 0 at the
    // halfway mark. Returns the merged fleet-layer p99 in milliseconds.
    const auto run_round = [&](bool force_fail, const char* label) {
      fleet::FleetServer fleet(fleet_config);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> handles;
      handles.reserve(pool.size());
      for (const Problem& problem : pool)
        handles.emplace_back(fleet.register_operand(problem.a),
                             fleet.register_operand(problem.b));
      std::vector<std::pair<std::size_t, std::future<fleet::FleetResponse>>>
          pending;
      pending.reserve(fleet_requests);
      for (std::size_t i = 0; i < fleet_requests; ++i) {
        if (force_fail && i == fleet_requests / 2) fleet.force_fail(0);
        const std::size_t p = i % pool.size();
        fleet::FleetRequest request;
        request.request.kind = serve::OpKind::kGemm;
        request.a_handle = handles[p].first;
        request.b_handle = handles[p].second;
        request.request.fault_plan =
            random_fault_plan(rng, 1, pool[p], aabft_cfg,
                              fleet_config.device_spec.num_sms);
        for (;;) {
          auto admitted = fleet.submit(request);  // operands are handles:
          if (admitted.ok()) {                    // resubmit stays cheap
            pending.emplace_back(p, std::move(*admitted));
            break;
          }
          if (admitted.error().code != ErrorCode::kOverloaded) {
            check(false, std::string(label) + " admission refusal: " +
                             admitted.error().message);
            break;
          }
          ++overload_backoffs;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      }
      std::size_t completed = 0;
      bool any_reconstructed = false;
      for (auto& [p, f] : pending) {
        fleet::FleetResponse response = f.get();
        const serve::GemmResponse& r = response.response;
        const Problem& problem = pool[p];
        check(r.status == serve::ResponseStatus::kOk && r.clean,
              std::string(label) + " response " + std::to_string(r.id) +
                  " clean (diagnosis: " + r.diagnosis + ")");
        if (r.status != serve::ResponseStatus::kOk) continue;
        ++completed;
        any_reconstructed |= response.operands_reconstructed;
        // Zero-wrong-responses bar: bit-identical except checksum-patched
        // elements (same criterion as the single-device soak).
        std::size_t diffs = 0;
        bool within_tol = true;
        for (std::size_t row = 0; row < r.c.rows(); ++row)
          for (std::size_t col = 0; col < r.c.cols(); ++col) {
            const double got = r.c(row, col);
            const double want = problem.ref(row, col);
            if (got == want) continue;
            ++diffs;
            const double rel =
                std::abs(got - want) / std::max(1e-300, std::abs(want));
            within_tol = within_tol && rel <= 1e-9;
          }
        check(diffs <= r.trace.corrections,
              std::string(label) + " response " + std::to_string(r.id) + ": " +
                  std::to_string(diffs) + " deviations exceed the " +
                  std::to_string(r.trace.corrections) + " patched elements");
        check(within_tol, std::string(label) + " response " +
                              std::to_string(r.id) +
                              " patched elements within 1e-9 relative");
      }
      check(completed == fleet_requests,
            std::string(label) + ": every request completed (" +
                std::to_string(completed) + "/" +
                std::to_string(fleet_requests) + ")");
      fleet.stop();
      const fleet::FleetStats stats = fleet.stats();
      LatencyRecorder e2e;
      for (const auto& shard : stats.shards) e2e.merge(shard.fleet_e2e_ns);
      const double p99_ms = static_cast<double>(e2e.p99()) / 1e6;
      std::printf("  %-9s: %zu/%zu ok, p99 %.3f ms, %llu steals, %llu "
                  "replays, %llu reconstructions, %zu fenced\n",
                  label, completed, fleet_requests,
                  p99_ms, static_cast<unsigned long long>(stats.steals),
                  static_cast<unsigned long long>(stats.replays),
                  static_cast<unsigned long long>(stats.reconstructions),
                  stats.fenced_devices);
      if (force_fail) {
        check(stats.fenced_devices == 1, "exactly one device fenced");
        check(any_reconstructed && stats.reconstructions > 0,
              "at least one response served through a parity reconstruction");
        fleet_reconstructions = stats.reconstructions;
        fleet_replays = stats.replays;
        fleet_telemetry = to_json(stats);
      }
      return p99_ms;
    };

    std::printf("fleet, %zu devices, 2 rounds of %zu requests:\n",
                fleet_config.devices, fleet_requests);
    fleet_clean_p99_ms = run_round(false, "clean");
    fleet_degraded_p99_ms = run_round(true, "degraded");
    // Bounded p99 inflation: losing 1 of 3 devices mid-run may slow the
    // tail but must not blow it up (the floor absorbs scheduler noise on
    // tiny rounds).
    check(fleet_degraded_p99_ms <=
              10.0 * std::max(fleet_clean_p99_ms, 5.0),
          "degraded p99 (" + std::to_string(fleet_degraded_p99_ms) +
              " ms) within 10x of clean p99 (" +
              std::to_string(fleet_clean_p99_ms) + " ms)");
    std::printf("\n");
  }

  // -- opcache: zipf weight-reuse traffic ----------------------------------
  double zipf_cold_s = 0.0;
  double zipf_warm_s = 0.0;
  double zipf_speedup = 0.0;
  double zipf_cold_p50_ms = 0.0;
  double zipf_cold_p99_ms = 0.0;
  double zipf_warm_p50_ms = 0.0;
  double zipf_warm_p99_ms = 0.0;
  std::size_t zipf_requests = 0;
  std::size_t zipf_weights = 0;
  std::size_t zipf_n = 0;
  std::size_t zipf_q = 0;
  std::uint64_t zipf_hits = 0;
  std::uint64_t zipf_faults_fired = 0;
  if (has_phase("opcache")) {
    zipf_requests = env_size_or("AABFT_SERVE_ZIPF_REQUESTS", 192);
    zipf_weights = env_size_or("AABFT_SERVE_ZIPF_WEIGHTS", 8);
    zipf_n = env_size_or("AABFT_SERVE_ZIPF_N", 384);
    zipf_q = env_size_or("AABFT_SERVE_ZIPF_Q", 2);
    const double zipf_skew = env_double_or("AABFT_SERVE_ZIPF_S", 1.1);

    // Inference-shaped traffic: a catalogue of zipf_n x zipf_n weight
    // matrices multiplied against skinny zipf_n x zipf_q activation panels.
    // The classic pipeline at a small checksum block keeps the activation
    // side genuinely small after padding (q rounds up to bs), so the
    // cacheable A-side work — encode_columns materialisation plus the p-max
    // reduction — is the dominant per-request cost: exactly the regime the
    // operand cache targets. Batching is disabled so the cold/warm delta is
    // pure encode reuse, not coalescing.
    serve::ServeConfig zipf_config;
    zipf_config.aabft.bs = env_size_or("AABFT_SERVE_ZIPF_BS", 2);
    zipf_config.aabft.fused_gemm = false;
    zipf_config.batch.max_batch = 1;
    zipf_config.admission.queue_capacity = zipf_requests + 8;
    const abft::AabftConfig& zipf_aabft = zipf_config.aabft;

    std::vector<linalg::Matrix> weight_pool;
    for (std::size_t w = 0; w < zipf_weights; ++w)
      weight_pool.push_back(
          linalg::uniform_matrix(zipf_n, zipf_n, -1.0, 1.0, rng));
    const std::size_t panels = 16;
    std::vector<linalg::Matrix> panel_pool;
    for (std::size_t i = 0; i < panels; ++i)
      panel_pool.push_back(
          linalg::uniform_matrix(zipf_n, zipf_q, -1.0, 1.0, rng));
    std::vector<std::vector<linalg::Matrix>> zipf_refs(zipf_weights);
    for (std::size_t w = 0; w < zipf_weights; ++w)
      for (std::size_t i = 0; i < panels; ++i)
        zipf_refs[w].push_back(linalg::naive_matmul(
            weight_pool[w], panel_pool[i], zipf_aabft.gemm.use_fma));

    // Zipf(s) popularity over weight ranks: rank r with probability
    // proportional to 1/(r+1)^s — a few hot weights take most traffic, the
    // tail stays warm. One schedule shared by every round keeps the offered
    // load identical across cold/warm/faulted.
    std::vector<double> zipf_cdf(zipf_weights);
    double zipf_mass = 0.0;
    for (std::size_t w = 0; w < zipf_weights; ++w) {
      zipf_mass += 1.0 / std::pow(static_cast<double>(w + 1), zipf_skew);
      zipf_cdf[w] = zipf_mass;
    }
    std::vector<std::pair<std::size_t, std::size_t>> schedule(zipf_requests);
    for (auto& [w, i] : schedule) {
      const double u = rng.next_unit() * zipf_mass;
      w = static_cast<std::size_t>(
          std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u) -
          zipf_cdf.begin());
      if (w >= zipf_weights) w = zipf_weights - 1;
      i = rng.below(panels);
    }

    Problem fault_shape;  // grid extents for the faulted round's plans
    fault_shape.grid_blocks = grid_blocks_of(zipf_n, zipf_n, zipf_q,
                                             zipf_aabft);
    fault_shape.fault_k = zipf_n;

    struct ZipfRound {
      double elapsed_s = 0.0;
      serve::ServerStats stats;
    };
    // One closed-loop round over the shared schedule: submit everything
    // against a paused server, resume, time until the last response lands.
    // `cached` registers the weight catalogue up front and ships handles;
    // the cold server re-encodes every request's inline A.
    const auto run_zipf_round = [&](bool cached, std::size_t faults,
                                    const char* label) {
      serve::ServeConfig config = zipf_config;
      config.opcache.enabled = cached;
      config.start_paused = true;
      if (faults > 0) config.aabft.cache_verify_every = 8;  // guard in-band
      serve::GemmServer server(launcher, config);
      std::vector<std::uint64_t> handles(zipf_weights, 0);
      if (cached)
        for (std::size_t w = 0; w < zipf_weights; ++w) {
          auto handle = server.register_operand(weight_pool[w]);
          check(handle.ok(), std::string(label) + " weight registration");
          if (handle.ok()) handles[w] = *handle;
        }
      std::vector<std::pair<std::size_t, std::future<serve::GemmResponse>>>
          pending;
      pending.reserve(zipf_requests);
      for (const auto& [w, i] : schedule) {
        serve::GemmRequest request;
        if (cached)
          request.a_handle = handles[w];
        else
          request.a = weight_pool[w];
        request.b = panel_pool[i];
        if (faults > 0)
          request.fault_plan =
              random_fault_plan(rng, faults, fault_shape, zipf_aabft,
                                launcher.device().num_sms);
        auto admitted = server.submit(std::move(request));
        check(admitted.ok(), std::string(label) + " request admitted");
        if (admitted.ok())
          pending.emplace_back(w * panels + i, std::move(*admitted));
      }
      const auto start = Clock::now();
      server.resume();
      for (auto& [key, f] : pending) {
        const serve::GemmResponse r = f.get();
        const linalg::Matrix& ref = zipf_refs[key / panels][key % panels];
        check(r.status == serve::ResponseStatus::kOk && r.clean,
              std::string(label) + " response " + std::to_string(r.id) +
                  " clean (diagnosis: " + r.diagnosis + ")");
        if (r.status != serve::ResponseStatus::kOk) continue;
        zipf_faults_fired += r.trace.faults_fired;
        // Zero-wrong-responses bar (the soak criterion): bit-identical when
        // nothing was patched, otherwise only checksum-patched elements may
        // deviate and only within rounding.
        if (r.trace.corrections == 0) {
          check(r.c == ref, std::string(label) + " response " +
                                std::to_string(r.id) + " bit-identical");
        } else {
          std::size_t diffs = 0;
          bool within_tol = true;
          for (std::size_t row = 0; row < r.c.rows(); ++row)
            for (std::size_t col = 0; col < r.c.cols(); ++col) {
              const double got = r.c(row, col);
              const double want = ref(row, col);
              if (got == want) continue;
              ++diffs;
              const double rel =
                  std::abs(got - want) / std::max(1e-300, std::abs(want));
              within_tol = within_tol && rel <= 1e-9;
            }
          check(diffs <= r.trace.corrections,
                std::string(label) + " response " + std::to_string(r.id) +
                    ": " + std::to_string(diffs) + " deviations exceed the " +
                    std::to_string(r.trace.corrections) +
                    " patched elements");
          check(within_tol, std::string(label) + " response " +
                                std::to_string(r.id) +
                                " patched elements within 1e-9 relative");
        }
      }
      ZipfRound round;
      round.elapsed_s = seconds_since(start);
      server.stop();
      round.stats = server.stats();
      check(round.stats.failed == 0,
            std::string(label) + ": no failed responses");
      check(round.stats.completed == pending.size(),
            std::string(label) + ": every admitted request completed");
      return round;
    };

    std::printf("opcache, %zu zipf(%.2f) requests over %zu weights of "
                "%zux%zu (x%zu panels):\n",
                zipf_requests, zipf_skew, zipf_weights, zipf_n, zipf_n,
                zipf_q);
    const ZipfRound cold = run_zipf_round(false, 0, "zipf-cold");
    const ZipfRound warm = run_zipf_round(true, 0, "zipf-warm");
    const ZipfRound faulted = run_zipf_round(true, 1, "zipf-faulted");
    zipf_cold_s = cold.elapsed_s;
    zipf_warm_s = warm.elapsed_s;
    zipf_speedup = zipf_warm_s > 0.0 ? zipf_cold_s / zipf_warm_s : 0.0;
    zipf_cold_p50_ms = static_cast<double>(cold.stats.e2e_ns.p50()) / 1e6;
    zipf_cold_p99_ms = static_cast<double>(cold.stats.e2e_ns.p99()) / 1e6;
    zipf_warm_p50_ms = static_cast<double>(warm.stats.e2e_ns.p50()) / 1e6;
    zipf_warm_p99_ms = static_cast<double>(warm.stats.e2e_ns.p99()) / 1e6;
    zipf_hits = warm.stats.opcache_hits;
    std::printf("  cold (re-encode)  : %8.3f s  (p50 %8.3f ms, p99 %8.3f "
                "ms)\n",
                zipf_cold_s, zipf_cold_p50_ms, zipf_cold_p99_ms);
    std::printf("  warm (cache hits) : %8.3f s  (p50 %8.3f ms, p99 %8.3f "
                "ms)  %.2fx\n",
                zipf_warm_s, zipf_warm_p50_ms, zipf_warm_p99_ms,
                zipf_speedup);
    std::printf("  warm hits/misses  : %llu / %llu  (registered %llu, "
                "bytes %llu)\n",
                static_cast<unsigned long long>(zipf_hits),
                static_cast<unsigned long long>(warm.stats.opcache_misses),
                static_cast<unsigned long long>(
                    warm.stats.opcache_registered),
                static_cast<unsigned long long>(warm.stats.opcache_bytes));
    std::printf("  faulted round     : %8.3f s, %llu faults fired, %llu "
                "corrected\n",
                faulted.elapsed_s,
                static_cast<unsigned long long>(faulted.stats.faults_fired),
                static_cast<unsigned long long>(faulted.stats.corrected));
    check(zipf_hits >= zipf_requests,
          "every warm request served from the cache (" +
              std::to_string(zipf_hits) + " hits)");
    // The throughput/latency gates apply at the standard size; reduced
    // smoke sweeps only verify correctness and the hit accounting.
    const bool zipf_gate_applies = zipf_n >= 256 && zipf_requests >= 96;
    if (zipf_gate_applies) {
      check(zipf_speedup >= 2.0,
            "warm zipf throughput >= 2x cold at the same offered load (got " +
                std::to_string(zipf_speedup) + "x)");
      check(zipf_warm_p50_ms < zipf_cold_p50_ms,
            "warm p50 below cold p50 (" + std::to_string(zipf_warm_p50_ms) +
                " vs " + std::to_string(zipf_cold_p50_ms) + " ms)");
      check(zipf_warm_p99_ms < zipf_cold_p99_ms,
            "warm p99 below cold p99 (" + std::to_string(zipf_warm_p99_ms) +
                " vs " + std::to_string(zipf_cold_p99_ms) + " ms)");
      check(zipf_faults_fired > 0,
            "the faulted zipf round fired its armed faults");
    } else {
      std::printf("  note: reduced sweep — the >= 2x / latency gates apply "
                  "at n >= 256 with >= 96 requests\n");
    }
    std::printf("\n");
  }

  // -- summary JSON --------------------------------------------------------
  const char* env = std::getenv("AABFT_SERVE_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "BENCH_serve.json";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n\"workers\": %u,\n"
                 "\"phases\": \"%s\",\n"
                 "\"throughput\": {\"requests\": %zu, \"serial_s\": %.6f, "
                 "\"batched_s\": %.6f, \"speedup\": %.3f, "
                 "\"gate_applies\": %s},\n"
                 "\"soak\": {\"requests\": %zu, \"overload_backoffs\": %zu, "
                 "\"bitwise_identical\": %zu, \"fired\": %zu},\n"
                 "\"fleet\": {\"requests_per_round\": %zu, "
                 "\"clean_p99_ms\": %.3f, \"degraded_p99_ms\": %.3f, "
                 "\"replays\": %llu, \"reconstructions\": %llu, "
                 "\"degraded\": %s},\n"
                 "\"opcache\": {\"requests\": %zu, \"weights\": %zu, "
                 "\"n\": %zu, \"q\": %zu, \"cold_s\": %.6f, "
                 "\"warm_s\": %.6f, \"speedup\": %.3f, "
                 "\"cold_p50_ms\": %.3f, \"cold_p99_ms\": %.3f, "
                 "\"warm_p50_ms\": %.3f, \"warm_p99_ms\": %.3f, "
                 "\"hits\": %llu, \"faulted_fired\": %llu},\n"
                 "\"serve\": %s}\n",
                 launcher.workers(), phases.c_str(), throughput_n, serial_s,
                 batched_s, speedup, gate_applies ? "true" : "false", requests,
                 overload_backoffs, bitwise_identical, fired_total,
                 fleet_requests, fleet_clean_p99_ms, fleet_degraded_p99_ms,
                 static_cast<unsigned long long>(fleet_replays),
                 static_cast<unsigned long long>(fleet_reconstructions),
                 fleet_telemetry.c_str(), zipf_requests, zipf_weights, zipf_n,
                 zipf_q, zipf_cold_s, zipf_warm_s, zipf_speedup,
                 zipf_cold_p50_ms, zipf_cold_p99_ms, zipf_warm_p50_ms,
                 zipf_warm_p99_ms,
                 static_cast<unsigned long long>(zipf_hits),
                 static_cast<unsigned long long>(zipf_faults_fired),
                 serve_telemetry.c_str());
    std::fclose(f);
    std::printf("(json written to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
  }

  std::printf("\n%s (%d failure(s))\n", failures == 0 ? "PASS" : "FAIL",
              failures);
  return failures == 0 ? 0 : 1;
}
