// Weighted-checksum ABFT tests (Jou/Abraham extension): codec invariants,
// encode kernels, ratio-based localisation, correction, clean-run behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/weighted.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

TEST(WeightedCodec, IndexArithmetic) {
  const WeightedCodec codec(4);
  EXPECT_EQ(codec.encoded_dim(8), 12u);
  // Layout per block: d d d d s w.
  EXPECT_EQ(codec.enc_index(0), 0u);
  EXPECT_EQ(codec.enc_index(3), 3u);
  EXPECT_EQ(codec.sum_index(0), 4u);
  EXPECT_EQ(codec.weighted_index(0), 5u);
  EXPECT_EQ(codec.enc_index(4), 6u);
  EXPECT_EQ(codec.sum_index(1), 10u);
  EXPECT_EQ(codec.weighted_index(1), 11u);
  EXPECT_TRUE(codec.is_checksum_index(4));
  EXPECT_TRUE(codec.is_checksum_index(5));
  EXPECT_FALSE(codec.is_checksum_index(6));
  EXPECT_EQ(codec.block_of(11), 1u);
  EXPECT_EQ(codec.weight(0), 1.0);
  EXPECT_EQ(codec.weight(3), 4.0);
}

TEST(WeightedCodec, HostEncodeInvariants) {
  Rng rng(1);
  const WeightedCodec codec(4);
  const Matrix a = uniform_matrix(8, 5, -1.0, 1.0, rng);
  const Matrix enc = codec.encode_columns_host(a);
  ASSERT_EQ(enc.rows(), 12u);
  for (std::size_t blk = 0; blk < 2; ++blk) {
    for (std::size_t j = 0; j < 5; ++j) {
      double sum = 0.0;
      double wsum = 0.0;
      for (std::size_t i = 0; i < 4; ++i) {
        sum += a(blk * 4 + i, j);
        wsum += static_cast<double>(i + 1) * a(blk * 4 + i, j);
      }
      EXPECT_EQ(enc(codec.sum_index(blk), j), sum);
      EXPECT_EQ(enc(codec.weighted_index(blk), j), wsum);
    }
  }
}

TEST(WeightedCodec, KernelEncodeMatchesHost) {
  Rng rng(2);
  const WeightedCodec codec(8);
  const Matrix a = uniform_matrix(16, 20, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(20, 16, -1.0, 1.0, rng);
  Launcher launcher;
  EXPECT_EQ(weighted_encode_columns(launcher, a, codec, 2).data,
            codec.encode_columns_host(a));
  EXPECT_EQ(weighted_encode_rows(launcher, b, codec, 2).data,
            codec.encode_rows_host(b));
}

TEST(WeightedCodec, StripRecoversData) {
  Rng rng(3);
  const WeightedCodec codec(4);
  const Matrix a = uniform_matrix(8, 8, -1.0, 1.0, rng);
  const Matrix full = codec.encode_rows_host(codec.encode_columns_host(a));
  EXPECT_EQ(codec.strip(full), a);
}

TEST(Weighted, CleanRunPassesAndMatchesPlainResult) {
  Rng rng(4);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  WeightedAabftConfig config;
  config.bs = 16;
  WeightedAabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(Weighted, CleanRunWideRangeAndDynamic) {
  Rng rng(5);
  Launcher launcher;
  WeightedAabftConfig config;
  config.bs = 16;
  WeightedAabftMultiplier mult(launcher, config);
  for (const auto input : {aabft::linalg::InputClass::kHundred,
                           aabft::linalg::InputClass::kDynamic}) {
    const Matrix a = aabft::linalg::make_input(input, 64, 16.0, rng);
    const Matrix b = aabft::linalg::make_input(input, 64, 16.0, rng);
    const auto result = mult.multiply(a, b);
    EXPECT_FALSE(result.error_detected())
        << aabft::linalg::to_string(input);
  }
}

// Ratio localisation across every data row of a block: corrupt element
// (row r, col 2) directly in the product and expect local_row == r.
class WeightedLocalisation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WeightedLocalisation, FindsTheRow) {
  const std::size_t target_row = GetParam();
  Rng rng(6);
  const std::size_t n = 32;
  const WeightedCodec codec(16);
  Launcher launcher;
  const auto a_cc = weighted_encode_columns(
      launcher, uniform_matrix(n, n, -1.0, 1.0, rng), codec, 2);
  const auto b_rc = weighted_encode_rows(
      launcher, uniform_matrix(n, n, -1.0, 1.0, rng), codec, 2);
  Matrix c_fc = aabft::linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                              aabft::linalg::GemmConfig{});

  c_fc(target_row, 2) += 5.0;  // block (0, 0), local row = target_row
  BoundParams params;
  const auto report = weighted_check_product(launcher, c_fc, codec, a_cc.pmax,
                                             b_rc.pmax, n, params);
  ASSERT_EQ(report.mismatches.size(), 1u);
  const auto& m = report.mismatches.front();
  EXPECT_EQ(m.block_row, 0u);
  EXPECT_EQ(m.local_col, 2u);
  ASSERT_TRUE(m.local_row.has_value());
  EXPECT_EQ(*m.local_row, target_row);
  EXPECT_NEAR(m.delta_sum, 5.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rows, WeightedLocalisation,
                         ::testing::Values(0, 1, 7, 14, 15),
                         [](const auto& info) {
                           return "row" + std::to_string(info.param);
                         });

TEST(Weighted, LocalisesChecksumElementCorruption) {
  Rng rng(7);
  const std::size_t n = 32;
  const WeightedCodec codec(16);
  Launcher launcher;
  const auto a_cc = weighted_encode_columns(
      launcher, uniform_matrix(n, n, -1.0, 1.0, rng), codec, 2);
  const auto b_rc = weighted_encode_rows(
      launcher, uniform_matrix(n, n, -1.0, 1.0, rng), codec, 2);
  Matrix c_fc = aabft::linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                              aabft::linalg::GemmConfig{});
  BoundParams params;

  // Corrupt the plain checksum element: only the sum comparison fails.
  c_fc(codec.sum_index(0), 3) += 1.0;
  auto report = weighted_check_product(launcher, c_fc, codec, a_cc.pmax,
                                       b_rc.pmax, n, params);
  ASSERT_EQ(report.mismatches.size(), 1u);
  ASSERT_TRUE(report.mismatches.front().local_row.has_value());
  EXPECT_EQ(*report.mismatches.front().local_row, 16u);
  c_fc(codec.sum_index(0), 3) -= 1.0;

  // Corrupt the weighted checksum element: only the weighted check fails.
  c_fc(codec.weighted_index(1), 5) += 1.0;
  report = weighted_check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax,
                                  n, params);
  ASSERT_EQ(report.mismatches.size(), 1u);
  ASSERT_TRUE(report.mismatches.front().local_row.has_value());
  EXPECT_EQ(*report.mismatches.front().local_row, 17u);
}

TEST(Weighted, EndToEndDetectCorrectInjectedFault) {
  Rng rng(8);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 1;
  fault.module_id = 4;
  fault.k_injection = 11;
  fault.error_vec = 1ULL << 61;
  controller.arm(fault);

  WeightedAabftConfig config;
  config.bs = 16;
  WeightedAabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  EXPECT_FALSE(result.uncorrectable);
  EXPECT_GE(result.corrected, 1u);
  EXPECT_TRUE(result.recheck_clean);
  EXPECT_LT(result.c.max_abs_diff(naive_matmul(a, b, false)), 1e-9);
}

TEST(Weighted, ChecksumPmaxListsTrackChecksumVectors) {
  const WeightedCodec codec(4);
  Matrix a(4, 8, 1.0);
  a(2, 6) = 50.0;  // weight of row 2 is 3
  Launcher launcher;
  const auto enc = weighted_encode_columns(launcher, a, codec, 1);
  // Weighted checksum of column 6: 1*1 + 2*1 + 3*50 + 4*1 = 157.
  const PMaxList& wcs = enc.pmax[codec.weighted_index(0)];
  ASSERT_EQ(wcs.size(), 1u);
  EXPECT_EQ(wcs[0].value, 157.0);
  EXPECT_EQ(wcs[0].index, 6u);
}

// Clean-run sweep across sizes, block sizes, p, input classes and FMA —
// the weighted bounds must absorb rounding noise everywhere, like the plain
// A-ABFT bounds do.
struct WeightedCleanCase {
  std::size_t n;
  std::size_t bs;
  std::size_t p;
  aabft::linalg::InputClass input;
  bool fma;
};

class WeightedCleanSweep
    : public ::testing::TestWithParam<WeightedCleanCase> {};

TEST_P(WeightedCleanSweep, NoFalsePositives) {
  const auto& param = GetParam();
  Rng rng(500 + param.n + param.bs * 3 + param.p);
  const Matrix a = aabft::linalg::make_input(param.input, param.n, 2.0, rng);
  const Matrix b = aabft::linalg::make_input(param.input, param.n, 2.0, rng);
  Launcher launcher;
  WeightedAabftConfig config;
  config.bs = param.bs;
  config.p = param.p;
  config.bounds.fma = param.fma;
  config.gemm.use_fma = param.fma;
  WeightedAabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b);
  EXPECT_FALSE(result.error_detected());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedCleanSweep,
    ::testing::Values(
        WeightedCleanCase{32, 16, 2, aabft::linalg::InputClass::kUnit, false},
        WeightedCleanCase{64, 16, 2, aabft::linalg::InputClass::kUnit, true},
        WeightedCleanCase{64, 32, 2, aabft::linalg::InputClass::kHundred, false},
        WeightedCleanCase{96, 32, 1, aabft::linalg::InputClass::kUnit, false},
        WeightedCleanCase{64, 16, 4, aabft::linalg::InputClass::kDynamic, false},
        WeightedCleanCase{128, 32, 2, aabft::linalg::InputClass::kDynamic, true}));

// Localisation property: random corruption magnitudes well above epsilon are
// localised to the exact element, block-wide.
TEST(Weighted, LocalisationSweepAcrossBlocksAndMagnitudes) {
  Rng rng(77);
  const std::size_t n = 64;
  const WeightedCodec codec(16);
  Launcher launcher;
  const auto a_cc = weighted_encode_columns(
      launcher, uniform_matrix(n, n, -1.0, 1.0, rng), codec, 2);
  const auto b_rc = weighted_encode_rows(
      launcher, uniform_matrix(n, n, -1.0, 1.0, rng), codec, 2);
  const Matrix clean = aabft::linalg::blocked_matmul(
      launcher, a_cc.data, b_rc.data, aabft::linalg::GemmConfig{});
  BoundParams params;

  for (int rep = 0; rep < 30; ++rep) {
    Matrix c_fc = clean;
    const std::size_t gbr = rng.below(4);
    const std::size_t gbc = rng.below(4);
    const std::size_t li = rng.below(16);
    const std::size_t lj = rng.below(18);  // may hit checksum columns too
    const std::size_t row = gbr * 18 + li;
    const std::size_t col = gbc * 18 + lj;
    const double magnitude =
        (rng.next_bool() ? 1.0 : -1.0) *
        std::pow(10.0, static_cast<double>(rng.between(-3, 3)));
    c_fc(row, col) += magnitude;

    const auto report = weighted_check_product(launcher, c_fc, codec,
                                               a_cc.pmax, b_rc.pmax, n, params);
    ASSERT_EQ(report.mismatches.size(), 1u) << "rep " << rep;
    const auto& m = report.mismatches.front();
    EXPECT_EQ(m.block_row, gbr);
    EXPECT_EQ(m.block_col, gbc);
    EXPECT_EQ(m.local_col, lj);
    ASSERT_TRUE(m.local_row.has_value()) << "rep " << rep;
    EXPECT_EQ(*m.local_row, li) << "rep " << rep;
  }
}

TEST(Weighted, InvalidConfigRejected) {
  Launcher launcher;
  WeightedAabftConfig config;
  config.bounds.fma = true;  // gemm not fma
  EXPECT_THROW(WeightedAabftMultiplier(launcher, config),
               std::invalid_argument);
  EXPECT_THROW(WeightedCodec(1), std::invalid_argument);
}

}  // namespace
