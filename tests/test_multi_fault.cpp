// Multi-fault controller extension tests: several one-shot faults per run,
// and the partitioned scheme's ability to correct one error per block.
#include <gtest/gtest.h>

#include <vector>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::gpusim;
using aabft::abft::AabftConfig;
using aabft::abft::AabftMultiplier;
using aabft::linalg::blocked_matmul;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

TEST(MultiFault, ArmManyValidatesCount) {
  FaultController controller;
  std::vector<FaultConfig> too_many(FaultController::kMaxFaults + 1);
  EXPECT_THROW(controller.arm_many(too_many), std::invalid_argument);
  std::vector<FaultConfig> none;
  EXPECT_THROW(controller.arm_many(none), std::invalid_argument);
}

TEST(MultiFault, EachFaultFiresIndependently) {
  FaultController controller;
  std::vector<FaultConfig> faults(2);
  faults[0].site = FaultSite::kInnerMul;
  faults[0].k_injection = 1;
  faults[0].error_vec = 1ULL << 40;
  faults[1].site = FaultSite::kInnerMul;
  faults[1].k_injection = 2;
  faults[1].error_vec = 1ULL << 41;
  controller.arm_many(faults);

  EXPECT_EQ(controller.fired_count(), 0u);
  (void)controller.maybe_inject(FaultSite::kInnerMul, 0, 0, 1, 1.0);
  EXPECT_EQ(controller.fired_count(), 1u);
  (void)controller.maybe_inject(FaultSite::kInnerMul, 0, 0, 2, 1.0);
  EXPECT_EQ(controller.fired_count(), 2u);
  // Both consumed: further matches pass through.
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerMul, 0, 0, 1, 3.0), 3.0);
}

TEST(MultiFault, CoincidentFaultsComposeViaXor) {
  FaultController controller;
  std::vector<FaultConfig> faults(2);
  faults[0].error_vec = 1ULL << 10;
  faults[1].error_vec = 1ULL << 11;
  controller.arm_many(faults);  // identical coordinates
  const double v =
      controller.maybe_inject(FaultSite::kInnerMul, 0, 0, 0, 1.0);
  const std::uint64_t diff =
      std::bit_cast<std::uint64_t>(v) ^ std::bit_cast<std::uint64_t>(1.0);
  EXPECT_EQ(diff, (1ULL << 10) | (1ULL << 11));
  EXPECT_EQ(controller.fired_count(), 2u);
}

TEST(MultiFault, TwoFaultsCorruptTwoElements) {
  Rng rng(1);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  const Matrix clean = blocked_matmul(launcher, a, b);

  FaultController controller;
  launcher.set_fault_controller(&controller);
  std::vector<FaultConfig> faults(2);
  faults[0].site = FaultSite::kInnerMul;
  faults[0].sm_id = 0;
  faults[0].module_id = 0;
  faults[0].k_injection = 3;
  faults[0].error_vec = 1ULL << 61;
  faults[1].site = FaultSite::kInnerMul;
  faults[1].sm_id = 1;
  faults[1].module_id = 5;
  faults[1].k_injection = 9;
  faults[1].error_vec = 1ULL << 61;
  controller.arm_many(faults);
  const Matrix faulty = blocked_matmul(launcher, a, b);
  launcher.set_fault_controller(nullptr);

  ASSERT_EQ(controller.fired_count(), 2u);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (clean(i, j) != faulty(i, j)) ++diffs;
  EXPECT_EQ(diffs, 2u);
}

TEST(MultiFault, AabftCorrectsOneErrorPerBlock) {
  // Two faults landing in different result blocks: the partitioned encoding
  // corrects both (one per block) — the motivation for per-block checksums.
  Rng rng(2);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  std::vector<FaultConfig> faults(2);
  faults[0].site = FaultSite::kFinalAdd;
  faults[0].sm_id = 0;  // block 0 -> result block (0, 0)
  faults[0].module_id = 0;
  faults[0].k_injection = 0;
  faults[0].error_vec = 1ULL << 60;
  faults[1].site = FaultSite::kFinalAdd;
  faults[1].sm_id = 3;  // a different block
  faults[1].module_id = 2;
  faults[1].k_injection = 0;
  faults[1].error_vec = 1ULL << 60;
  controller.arm_many(faults);

  AabftConfig config;
  config.bs = 16;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_EQ(controller.fired_count(), 2u);
  EXPECT_TRUE(result.error_detected());
  // Either both faults localised to distinct blocks and were patched, or
  // they collided in one block and the transient-fault recomputation
  // recovered a clean product. Both paths must end recheck-clean.
  EXPECT_TRUE(result.recheck_clean);
  if (result.recomputations == 0) {
    EXPECT_EQ(result.corrections.size(), 2u);
  }
}

TEST(MultiFault, SingleArmStillWorks) {
  FaultController controller;
  FaultConfig config;
  config.error_vec = 1ULL << 5;
  controller.arm(config);
  EXPECT_EQ(controller.armed_count(), 1u);
  (void)controller.maybe_inject(config.site, 0, 0, 0, 1.0);
  EXPECT_TRUE(controller.fired());
  EXPECT_EQ(controller.original_value(), 1.0);
}

}  // namespace
