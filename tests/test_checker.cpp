// Check kernel tests (Algorithm 2): clean products pass, corrupted elements
// are flagged at the correct block/line, epsilons are traced, NaN/Inf
// corruption cannot slip through.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "abft/checker.hpp"
#include "abft/encoder.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

struct Fixture {
  PartitionedCodec codec{8};
  aabft::gpusim::Launcher launcher;
  EncodedMatrix a_cc;
  EncodedMatrix b_rc;
  Matrix c_fc;
  std::size_t n = 0;

  explicit Fixture(std::size_t n_in, std::uint64_t seed = 3) : n(n_in) {
    Rng rng(seed);
    const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
    const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
    a_cc = encode_columns(launcher, a, codec, 2);
    b_rc = encode_rows(launcher, b, codec, 2);
    c_fc = aabft::linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                         aabft::linalg::GemmConfig{});
  }

  CheckReport check(EpsilonTrace* trace = nullptr) {
    BoundParams params;
    return check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax, n,
                         params, trace);
  }
};

TEST(Checker, CleanProductPasses) {
  Fixture f(32);
  EXPECT_TRUE(f.check().clean());
}

TEST(Checker, TraceCoversEveryChecksumComparison) {
  Fixture f(32);
  EpsilonTrace trace;
  (void)f.check(&trace);
  // 4x5 grid of blocks... n=32, bs=8: 4x4 blocks of (bs+1)=9: 36x36 c_fc.
  // Per block: bs+1 column checks and bs+1 row checks.
  const std::size_t blocks = 16;
  EXPECT_EQ(trace.column_epsilons.size(), blocks * 9);
  EXPECT_EQ(trace.row_epsilons.size(), blocks * 9);
  for (const double eps : trace.column_epsilons) EXPECT_GT(eps, 0.0);
  EXPECT_GT(trace.average(), 0.0);
}

TEST(Checker, DataCorruptionFlagsRowAndColumn) {
  Fixture f(32);
  // Corrupt the data element at encoded (10, 20): block (1, 2), local (1, 2).
  f.c_fc(10, 20) += 1.0;
  const CheckReport report = f.check();
  ASSERT_EQ(report.mismatches.size(), 2u);
  EXPECT_EQ(report.count(CheckKind::kColumn), 1u);
  EXPECT_EQ(report.count(CheckKind::kRow), 1u);
  for (const auto& m : report.mismatches) {
    EXPECT_EQ(m.block_row, 1u);
    EXPECT_EQ(m.block_col, 2u);
    EXPECT_EQ(m.local, m.kind == CheckKind::kColumn ? 2u : 1u);
    EXPECT_GT(m.difference(), m.epsilon);
  }
}

TEST(Checker, ChecksumElementCorruptionLocalisedToChecksumLine) {
  Fixture f(32);
  // Corrupt the column-checksum element of block (0,0), column 3: encoded
  // position (8, 3) since bs = 8.
  f.c_fc(8, 3) += 0.5;
  const CheckReport report = f.check();
  ASSERT_EQ(report.mismatches.size(), 2u);
  for (const auto& m : report.mismatches) {
    EXPECT_EQ(m.block_row, 0u);
    EXPECT_EQ(m.block_col, 0u);
    if (m.kind == CheckKind::kColumn) {
      EXPECT_EQ(m.local, 3u);
    } else {
      EXPECT_EQ(m.local, 8u);  // checksum row
    }
  }
}

TEST(Checker, ErrorBelowEpsilonPassesUnnoticed) {
  // A deviation far below the bound is (correctly) treated as rounding noise.
  Fixture f(32);
  f.c_fc(5, 5) += 1e-15;
  EXPECT_TRUE(f.check().clean());
}

TEST(Checker, NanCorruptionIsAlwaysDetected) {
  Fixture f(32);
  f.c_fc(3, 7) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(f.check().clean());
}

TEST(Checker, InfCorruptionIsAlwaysDetected) {
  Fixture f(32);
  f.c_fc(3, 7) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(f.check().clean());
}

TEST(Checker, MultipleBlockErrorsAllReported) {
  Fixture f(32);
  f.c_fc(0, 0) += 2.0;    // block (0,0)
  f.c_fc(20, 30) += 2.0;  // block (2,3)
  const CheckReport report = f.check();
  EXPECT_EQ(report.mismatches.size(), 4u);  // 2 per corrupted block
}

TEST(Checker, CountsItsWork) {
  Fixture f(32);
  f.launcher.clear_launch_log();
  (void)f.check();
  ASSERT_EQ(f.launcher.launch_log().size(), 1u);
  const auto stats = f.launcher.launch_log().front();
  EXPECT_EQ(stats.kernel_name, "check");
  // Reference sums: 16 blocks * 2 * 9 lines * 8 adds each = 2304 adds, plus
  // the counted epsilon flops.
  EXPECT_GT(stats.counters.adds, 2304u);
  EXPECT_GT(stats.counters.bytes_loaded, 0u);
}

TEST(Checker, ValidatesShapes) {
  Fixture f(32);
  BoundParams params;
  Matrix bad(35, 36);  // rows not a multiple of bs+1
  EXPECT_THROW((void)check_product(f.launcher, bad, f.codec, f.a_cc.pmax,
                                   f.b_rc.pmax, f.n, params, nullptr),
               std::invalid_argument);
  PMaxTable short_table(3, PMaxList(2));
  EXPECT_THROW((void)check_product(f.launcher, f.c_fc, f.codec, short_table,
                                   f.b_rc.pmax, f.n, params, nullptr),
               std::invalid_argument);
}

TEST(Checker, EmptyTraceAverageRejected) {
  EpsilonTrace trace;
  EXPECT_THROW((void)trace.average(), std::invalid_argument);
}

TEST(Checker, MismatchToStringAndDifference) {
  Mismatch m;
  m.kind = CheckKind::kColumn;
  m.reference = 2.0;
  m.stored = -1.0;
  EXPECT_EQ(m.difference(), 3.0);
  EXPECT_EQ(to_string(CheckKind::kColumn), "column");
  EXPECT_EQ(to_string(CheckKind::kRow), "row");
}

}  // namespace
