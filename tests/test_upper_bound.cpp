// Three-case upper-bound determination tests (paper Section IV-E), including
// the soundness property: the determined y always dominates the true maximum
// product when both lists are saturated.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "abft/pmax.hpp"
#include "abft/upper_bound.hpp"
#include "core/rng.hpp"

namespace {

using aabft::Rng;
using aabft::abft::determine_upper_bound;
using aabft::abft::PMaxList;

PMaxList top_p(const std::vector<double>& values, std::size_t p) {
  PMaxList list(p);
  for (std::size_t i = 0; i < values.size(); ++i)
    list.offer(std::fabs(values[i]), i);
  return list;
}

TEST(UpperBound, Case1AlignedIndices) {
  // The largest values share index 4: y is their exact product.
  PMaxList a(2);
  a.offer(10.0, 4);
  a.offer(3.0, 1);
  PMaxList b(2);
  b.offer(7.0, 4);
  b.offer(6.0, 2);
  // Case 1 gives 70; cases 2/3 give max(10*6, 7*3) = 60.
  EXPECT_EQ(determine_upper_bound(a, b), 70.0);
}

TEST(UpperBound, Case2MaxATimesMinB) {
  PMaxList a(2);
  a.offer(10.0, 0);
  a.offer(9.0, 1);
  PMaxList b(2);
  b.offer(8.0, 2);
  b.offer(5.0, 3);
  // Disjoint indices: y = max(10*5, 8*9) = 72.
  EXPECT_EQ(determine_upper_bound(a, b), 72.0);
}

TEST(UpperBound, Case3MaxBTimesMinA) {
  PMaxList a(2);
  a.offer(4.0, 0);
  a.offer(2.0, 1);
  PMaxList b(2);
  b.offer(100.0, 2);
  b.offer(1.0, 3);
  // y = max(4*1, 100*2) = 200.
  EXPECT_EQ(determine_upper_bound(a, b), 200.0);
}

TEST(UpperBound, EmptyListsRejected) {
  PMaxList a(2);
  PMaxList b(2);
  b.offer(1.0, 0);
  EXPECT_THROW((void)determine_upper_bound(a, b), std::invalid_argument);
  EXPECT_THROW((void)determine_upper_bound(b, a), std::invalid_argument);
}

// Soundness sweep: for random vectors, y from the p-max lists always bounds
// the true maximum product max_k |a_k b_k| — the property Eq. (46) needs.
class UpperBoundSoundness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UpperBoundSoundness, DominatesTrueMaxProduct) {
  const std::size_t p = GetParam();
  Rng rng(p * 101 + 5);
  for (int rep = 0; rep < 300; ++rep) {
    const std::size_t n = 4 + rng.below(60);
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (auto& x : a) x = rng.uniform(-10.0, 10.0);
    for (auto& x : b) x = rng.uniform(-10.0, 10.0);
    double true_max = 0.0;
    for (std::size_t k = 0; k < n; ++k)
      true_max = std::max(true_max, std::fabs(a[k] * b[k]));
    const double y = determine_upper_bound(top_p(a, p), top_p(b, p));
    EXPECT_GE(y, true_max) << "n=" << n << " p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(PSweep, UpperBoundSoundness,
                         ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(UpperBound, LargerPNeverLoosensTheBound) {
  // Increasing p refines the information, so y(p=4) <= y(p=1) on the same
  // vectors (the paper: "quality ... improved by increasing p").
  Rng rng(77);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<double> a(40);
    std::vector<double> b(40);
    for (auto& x : a) x = rng.uniform(-5.0, 5.0);
    for (auto& x : b) x = rng.uniform(-5.0, 5.0);
    const double y1 = determine_upper_bound(top_p(a, 1), top_p(b, 1));
    const double y4 = determine_upper_bound(top_p(a, 4), top_p(b, 4));
    EXPECT_LE(y4, y1 + 1e-30);
  }
}

TEST(UpperBound, ZeroVectorsGiveZero) {
  std::vector<double> zero(8, 0.0);
  std::vector<double> other{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_EQ(determine_upper_bound(top_p(zero, 2), top_p(other, 2)), 0.0);
}

}  // namespace
