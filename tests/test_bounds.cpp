// Probabilistic bound model tests: the formulas of Section IV, hand-checked
// values, FMA behaviour, policy composition, monotonicity properties.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/bounds.hpp"

namespace {

using namespace aabft::abft;

constexpr int kT = 52;
const double kU = std::ldexp(1.0, -kT);  // 2^-52

TEST(Bounds, MantissaErrorMoments) {
  // Eqs. (21), (34), (35).
  EXPECT_DOUBLE_EQ(var_beta_add(kT), 0.125 * kU * kU);
  EXPECT_DOUBLE_EQ(ev_beta_mul(kT), kU * kU / 3.0);
  EXPECT_DOUBLE_EQ(var_beta_mul(kT), kU * kU / 12.0);
}

TEST(Bounds, SigmaSumKnownValue) {
  // Eq. (28) at n = 4, y = 1: sqrt(4*5*9/48) * 2^-t = sqrt(3.75) * 2^-t.
  EXPECT_DOUBLE_EQ(sigma_sum(4, 1.0, kT), std::sqrt(3.75) * kU);
}

TEST(Bounds, SigmaSumEdgeCases) {
  EXPECT_EQ(sigma_sum(0, 1.0, kT), 0.0);
  EXPECT_EQ(sigma_sum(1, 1.0, kT), 0.0);  // one addend: nothing to round
  EXPECT_GT(sigma_sum(2, 1.0, kT), 0.0);
}

TEST(Bounds, SigmaInnerProductKnownValue) {
  // Eq. (46) at n = 4, y = 2: sqrt((4*5*4.5 + 8)/24) * 2^-t * 2.
  const double expected = std::sqrt((4.0 * 5.0 * 4.5 + 8.0) / 24.0) * kU * 2.0;
  EXPECT_DOUBLE_EQ(sigma_inner_product(4, 2.0, kT), expected);
}

TEST(Bounds, Eq46EqualsComposedVariances) {
  // Eq. (46) must equal sqrt(Var_sum + Var_prod) (Eqs. 28 + 41).
  for (const std::size_t n : {2u, 16u, 333u, 5000u}) {
    const double y = 3.7;
    const double var_sum = sigma_sum(n, y, kT) * sigma_sum(n, y, kT);
    const double var_prod =
        static_cast<double>(n) / 12.0 * kU * kU * y * y;  // Eq. (41)
    EXPECT_NEAR(sigma_inner_product(n, y, kT),
                std::sqrt(var_sum + var_prod),
                1e-14 * sigma_inner_product(n, y, kT))
        << "n=" << n;
  }
}

TEST(Bounds, EvInnerProductKnownValue) {
  // Eq. (43): n/3 * 2^-2t * y.
  EXPECT_DOUBLE_EQ(ev_inner_product(300, 2.0, kT),
                   100.0 * kU * kU * 2.0);
}

TEST(Bounds, FmaDropsProductVariance) {
  const std::size_t n = 1000;
  const double y = 1.0;
  EXPECT_EQ(sigma_inner_product_fma(n, y, kT), sigma_sum(n, y, kT));
  EXPECT_LT(sigma_inner_product_fma(n, y, kT), sigma_inner_product(n, y, kT));
}

TEST(Bounds, StatsRespectFmaFlag) {
  BoundParams mul_add;
  BoundParams fma;
  fma.fma = true;
  const auto s1 = inner_product_stats(500, 2.0, mul_add);
  const auto s2 = inner_product_stats(500, 2.0, fma);
  EXPECT_GT(s1.mean, 0.0);
  EXPECT_EQ(s2.mean, 0.0);
  EXPECT_LT(s2.sigma, s1.sigma);
}

TEST(Bounds, SigmaScalesLinearlyInY) {
  const double s1 = sigma_inner_product(100, 1.0, kT);
  const double s5 = sigma_inner_product(100, 5.0, kT);
  EXPECT_DOUBLE_EQ(s5, 5.0 * s1);
}

TEST(Bounds, SigmaGrowsWithN) {
  double prev = 0.0;
  for (const std::size_t n : {2u, 8u, 64u, 512u, 4096u}) {
    const double s = sigma_inner_product(n, 1.0, kT);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST(Bounds, SigmaGrowsAsNPow1_5) {
  // Eq. (46) ~ sqrt(n^3/24): doubling n scales sigma by ~2^1.5.
  const double s1 = sigma_inner_product(1024, 1.0, kT);
  const double s2 = sigma_inner_product(2048, 1.0, kT);
  EXPECT_NEAR(s2 / s1, std::pow(2.0, 1.5), 0.01);
}

TEST(Bounds, EpsilonPaperDirectMatchesClosedForm) {
  BoundParams params;  // omega = 3, PaperDirect
  const std::size_t n = 256;
  const double y = 4.0;
  const auto stats = inner_product_stats(n, y, params);
  EXPECT_DOUBLE_EQ(checksum_epsilon(n, 32, y, 1.0, params),
                   stats.mean + 3.0 * stats.sigma);
}

TEST(Bounds, CompositionalIsLooserButSameOrder) {
  BoundParams direct;
  BoundParams comp;
  comp.policy = BoundPolicy::kCompositional;
  const double e1 = checksum_epsilon(512, 32, 8.0, 1.0, direct);
  const double e2 = checksum_epsilon(512, 32, 8.0, 1.0, comp);
  EXPECT_GT(e2, e1);
  EXPECT_LT(e2, 10.0 * e1);  // within one order of magnitude
}

TEST(Bounds, OmegaScalesTheInterval) {
  BoundParams w1;
  w1.omega = 1.0;
  BoundParams w3;
  w3.omega = 3.0;
  const double e1 = checksum_epsilon(128, 16, 1.0, 1.0, w1);
  const double e3 = checksum_epsilon(128, 16, 1.0, 1.0, w3);
  // mean is negligible next to sigma here, so the ratio is ~3.
  EXPECT_NEAR(e3 / e1, 3.0, 1e-6);
}

TEST(Bounds, LowerPrecisionWidensBounds) {
  // t = 23 (binary32-like) must give vastly larger bounds than t = 52.
  BoundParams single;
  single.t = 23;
  BoundParams dbl;
  const double e_single = checksum_epsilon(128, 16, 1.0, 1.0, single);
  const double e_double = checksum_epsilon(128, 16, 1.0, 1.0, dbl);
  EXPECT_GT(e_single / e_double, 1e8);
}

TEST(Bounds, InvalidParametersRejected) {
  BoundParams params;
  EXPECT_THROW((void)inner_product_stats(10, -1.0, params),
               std::invalid_argument);
  params.t = 0;
  EXPECT_THROW((void)inner_product_stats(10, 1.0, params),
               std::invalid_argument);
  BoundParams bad_omega;
  bad_omega.omega = 0.0;
  EXPECT_THROW((void)checksum_epsilon(10, 4, 1.0, 1.0, bad_omega),
               std::invalid_argument);
}

}  // namespace
