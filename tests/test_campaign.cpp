// Fault-injection campaign integration tests.
#include <gtest/gtest.h>

#include "gpusim/kernel.hpp"
#include "inject/campaign.hpp"

namespace {

using namespace aabft;
using inject::CampaignConfig;
using inject::CampaignResult;

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.n = 64;
  config.bs = 16;
  config.trials = 12;
  config.seed = 99;
  return config;
}

TEST(Campaign, RunsAndAccountsEveryTrial) {
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, small_campaign());
  EXPECT_EQ(result.trials, 12u);
  EXPECT_GT(result.fired, 0u);
  EXPECT_LE(result.fired, result.trials);
  const std::size_t classified = result.aabft().critical + result.aabft().tolerable +
                                 result.aabft().rounding_noise;
  EXPECT_EQ(classified + result.masked, result.fired);
  // Both schemes classify the same ground truth.
  EXPECT_EQ(result.aabft().critical, result.sea().critical);
  EXPECT_EQ(result.aabft().tolerable, result.sea().tolerable);
}

TEST(Campaign, NoFalsePositivesOnCleanReference) {
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, small_campaign());
  EXPECT_EQ(result.aabft_false_positive_runs(), 0u);
  EXPECT_EQ(result.sea_false_positive_runs(), 0u);
}

TEST(Campaign, DeterministicForSameSeed) {
  gpusim::Launcher l1;
  gpusim::Launcher l2;
  const CampaignResult r1 = inject::run_campaign(l1, small_campaign());
  const CampaignResult r2 = inject::run_campaign(l2, small_campaign());
  EXPECT_EQ(r1.fired, r2.fired);
  EXPECT_EQ(r1.masked, r2.masked);
  EXPECT_EQ(r1.aabft().critical, r2.aabft().critical);
  EXPECT_EQ(r1.aabft().detected_critical, r2.aabft().detected_critical);
  EXPECT_EQ(r1.sea().detected_critical, r2.sea().detected_critical);
}

TEST(Campaign, ExponentFlipsAlwaysDetected) {
  // Paper, Section VI-C: "A-ABFT, as well as SEA-ABFT detected all faults
  // that have been injected into the sign bit or the exponent."
  CampaignConfig config = small_campaign();
  config.field = fp::BitField::kExponent;
  config.trials = 16;
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, config);
  ASSERT_GT(result.aabft().critical, 0u);
  EXPECT_EQ(result.aabft().detected_critical, result.aabft().critical);
  EXPECT_EQ(result.sea().detected_critical, result.sea().critical);
}

TEST(Campaign, SignFlipsAlwaysDetectedWhenCritical) {
  CampaignConfig config = small_campaign();
  config.field = fp::BitField::kSign;
  config.trials = 16;
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, config);
  EXPECT_EQ(result.aabft().detected_critical, result.aabft().critical);
}

TEST(Campaign, AabftDetectsAtLeastAsManyAsSea) {
  // The headline comparison of Figure 4, as an invariant: the A-ABFT bound
  // is tighter, so on the same faulty products it can only flag more.
  for (const auto site :
       {gpusim::FaultSite::kInnerMul, gpusim::FaultSite::kInnerAdd,
        gpusim::FaultSite::kFinalAdd}) {
    CampaignConfig config = small_campaign();
    config.site = site;
    config.trials = 20;
    config.seed = 1234 + static_cast<std::uint64_t>(site);
    gpusim::Launcher launcher;
    const CampaignResult result = inject::run_campaign(launcher, config);
    EXPECT_GE(result.aabft().detected_critical, result.sea().detected_critical)
        << gpusim::to_string(site);
  }
}

TEST(Campaign, MultiBitFlipsSupported) {
  CampaignConfig config = small_campaign();
  config.num_bits = 3;
  gpusim::Launcher launcher;
  const CampaignResult r3 = inject::run_campaign(launcher, config);
  EXPECT_GT(r3.fired, 0u);
  config.num_bits = 5;
  const CampaignResult r5 = inject::run_campaign(launcher, config);
  EXPECT_GT(r5.fired, 0u);
}

TEST(Campaign, DynamicInputClassWorks) {
  CampaignConfig config = small_campaign();
  config.input = linalg::InputClass::kDynamic;
  config.kappa = 65536.0;
  config.trials = 8;
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, config);
  EXPECT_GT(result.fired, 0u);
}

TEST(Campaign, FinalAddSiteUsesKZero) {
  CampaignConfig config = small_campaign();
  config.site = gpusim::FaultSite::kFinalAdd;
  config.trials = 10;
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, config);
  EXPECT_GT(result.fired, 0u);
}

TEST(Campaign, InvalidConfigRejected) {
  gpusim::Launcher launcher;
  CampaignConfig config = small_campaign();
  config.n = 60;  // not a multiple of bs = 16
  EXPECT_THROW((void)inject::run_campaign(launcher, config),
               std::invalid_argument);
  config = small_campaign();
  config.trials = 0;
  EXPECT_THROW((void)inject::run_campaign(launcher, config),
               std::invalid_argument);
}

TEST(Campaign, MultiFaultTrialsSupported) {
  CampaignConfig config = small_campaign();
  config.faults_per_trial = 3;
  config.trials = 8;
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, config);
  EXPECT_GT(result.fired, 0u);
  const std::size_t classified = result.aabft().critical +
                                 result.aabft().tolerable +
                                 result.aabft().rounding_noise;
  EXPECT_EQ(classified + result.masked, result.fired);
}

TEST(Campaign, FaultsPerTrialValidated) {
  CampaignConfig config = small_campaign();
  config.faults_per_trial = 0;
  gpusim::Launcher launcher;
  EXPECT_THROW((void)inject::run_campaign(launcher, config),
               std::invalid_argument);
  config.faults_per_trial = gpusim::FaultController::kMaxFaults + 1;
  EXPECT_THROW((void)inject::run_campaign(launcher, config),
               std::invalid_argument);
}

TEST(Campaign, DetectionRateRequiresCriticalErrors) {
  inject::SchemeDetectionStats empty;
  EXPECT_FALSE(empty.has_critical());
  EXPECT_THROW((void)empty.detection_rate(), std::invalid_argument);
  empty.record(abft::ErrorClass::kCritical, true);
  EXPECT_EQ(empty.detection_rate(), 100.0);
}

}  // namespace
