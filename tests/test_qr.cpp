// Householder QR and random orthogonal matrix tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "linalg/matmul.hpp"
#include "linalg/qr.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::linalg;

TEST(Qr, ReconstructsInput) {
  Rng rng(1);
  const Matrix a = uniform_matrix(20, 20, -2.0, 2.0, rng);
  const QrResult qr = householder_qr(a);
  // a == q * r
  const Matrix rebuilt = naive_matmul(qr.q, qr.r, false);
  EXPECT_LT(a.max_abs_diff(rebuilt), 1e-12);
}

TEST(Qr, RIsUpperTriangular) {
  Rng rng(2);
  const Matrix a = uniform_matrix(15, 10, -1.0, 1.0, rng);
  const QrResult qr = householder_qr(a);
  for (std::size_t i = 0; i < qr.r.rows(); ++i)
    for (std::size_t j = 0; j < std::min(i, qr.r.cols()); ++j)
      EXPECT_EQ(qr.r(i, j), 0.0);
}

TEST(Qr, QIsOrthogonal) {
  Rng rng(3);
  const Matrix a = uniform_matrix(24, 24, -1.0, 1.0, rng);
  const QrResult qr = householder_qr(a);
  EXPECT_LT(orthogonality_defect(qr.q), 1e-13);
}

TEST(Qr, TallMatrixSupported) {
  Rng rng(4);
  const Matrix a = uniform_matrix(30, 12, -1.0, 1.0, rng);
  const QrResult qr = householder_qr(a);
  EXPECT_EQ(qr.q.rows(), 30u);
  EXPECT_EQ(qr.q.cols(), 30u);
  EXPECT_EQ(qr.r.rows(), 30u);
  EXPECT_EQ(qr.r.cols(), 12u);
  EXPECT_LT(a.max_abs_diff(naive_matmul(qr.q, qr.r, false)), 1e-12);
}

TEST(Qr, WideMatrixRejected) {
  Matrix a(3, 5);
  EXPECT_THROW((void)householder_qr(a), std::invalid_argument);
}

TEST(Qr, RankDeficientColumnHandled) {
  // A zero column must not crash (norm == 0 path).
  Rng rng(5);
  Matrix a = uniform_matrix(8, 8, -1.0, 1.0, rng);
  for (std::size_t i = 0; i < 8; ++i) a(i, 3) = 0.0;
  const QrResult qr = householder_qr(a);
  EXPECT_LT(a.max_abs_diff(naive_matmul(qr.q, qr.r, false)), 1e-13);
}

TEST(RandomOrthogonal, IsOrthogonal) {
  Rng rng(6);
  for (const std::size_t n : {2u, 5u, 16u, 33u}) {
    const Matrix q = random_orthogonal(n, rng);
    EXPECT_LT(orthogonality_defect(q), 1e-12) << "n=" << n;
  }
}

TEST(RandomOrthogonal, DifferentDraws) {
  Rng rng(7);
  const Matrix q1 = random_orthogonal(8, rng);
  const Matrix q2 = random_orthogonal(8, rng);
  EXPECT_GT(q1.max_abs_diff(q2), 0.1);
}

TEST(RandomOrthogonal, PreservesNorms) {
  Rng rng(8);
  const std::size_t n = 16;
  const Matrix q = random_orthogonal(n, rng);
  const Matrix x = uniform_matrix(n, 1, -1.0, 1.0, rng);
  const Matrix qx = naive_matmul(q, x, false);
  double nx = 0.0;
  double nqx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    nx += x(i, 0) * x(i, 0);
    nqx += qx(i, 0) * qx(i, 0);
  }
  EXPECT_NEAR(std::sqrt(nx), std::sqrt(nqx), 1e-12);
}

}  // namespace
