// Unified scheme interface: every contender is driven through the same
// ProtectedMultiplier vtable with no per-scheme branching, produces a correct
// product on clean inputs, and reports recoverable misuse through Result<>.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "baselines/schemes.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::ErrorCode;
using aabft::Rng;
using namespace aabft::baselines;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

TEST(Schemes, FactoryListsContendersInTableOrder) {
  Launcher launcher;
  const auto schemes = make_schemes(launcher);
  std::vector<std::string> names;
  for (const auto& scheme : schemes) names.emplace_back(scheme->name());
  EXPECT_EQ(names, (std::vector<std::string>{"unprotected", "fixed-abft",
                                             "a-abft", "sea-abft", "tmr"}));

  SchemeSuiteConfig with_diverse;
  with_diverse.include_diverse_tmr = true;
  const auto all = make_schemes(launcher, with_diverse);
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(all.back()->name(), "diverse-tmr");
}

TEST(Schemes, EveryContenderMultipliesCleanlyThroughTheInterface) {
  Rng rng(7);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher launcher;
  SchemeSuiteConfig config;
  config.include_diverse_tmr = true;
  for (const auto& scheme : make_schemes(launcher, config)) {
    const auto result = scheme->multiply(a, b);
    ASSERT_TRUE(result.ok()) << scheme->name();
    EXPECT_TRUE(result->clean) << scheme->name();
    EXPECT_FALSE(result->detected) << scheme->name();
    // Diverse TMR votes across kernels with different accumulation orders,
    // so its product is only close; every other contender is bit-identical.
    if (scheme->name() == "diverse-tmr")
      EXPECT_LT(result->c.max_abs_diff(ref), 1e-12) << scheme->name();
    else
      EXPECT_EQ(result->c, ref) << scheme->name();
  }
}

TEST(Schemes, EveryContenderRejectsShapeMismatchRecoverably) {
  Launcher launcher;
  SchemeSuiteConfig config;
  config.include_diverse_tmr = true;
  const Matrix a(32, 20);
  const Matrix b(32, 32);  // a.cols() != b.rows()
  for (const auto& scheme : make_schemes(launcher, config)) {
    const auto result = scheme->multiply(a, b);
    ASSERT_FALSE(result.ok()) << scheme->name();
    EXPECT_EQ(result.error().code, ErrorCode::kShapeMismatch) << scheme->name();
  }
}

TEST(Schemes, DefaultBatchMatchesSequentialForAllContenders) {
  Rng rng(19);
  std::vector<std::pair<Matrix, Matrix>> problems;
  for (int i = 0; i < 3; ++i)
    problems.emplace_back(uniform_matrix(64, 64, -1.0, 1.0, rng),
                          uniform_matrix(64, 64, -1.0, 1.0, rng));

  Launcher seq_launcher;
  Launcher batch_launcher;
  const auto seq_schemes = make_schemes(seq_launcher);
  const auto batch_schemes = make_schemes(batch_launcher);
  for (std::size_t s = 0; s < seq_schemes.size(); ++s) {
    const auto batch = batch_schemes[s]->multiply_batch(problems);
    ASSERT_EQ(batch.size(), problems.size());
    for (std::size_t i = 0; i < problems.size(); ++i) {
      const auto ref =
          seq_schemes[s]->multiply(problems[i].first, problems[i].second);
      ASSERT_TRUE(ref.ok());
      ASSERT_TRUE(batch[i].ok()) << seq_schemes[s]->name();
      EXPECT_EQ(batch[i]->c, ref->c) << seq_schemes[s]->name();
    }
  }
}

}  // namespace
