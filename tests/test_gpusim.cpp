// SIMT execution model tests: launch coverage, SM assignment, counters,
// fault controller semantics, timing model sanity.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/dim.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/math_ctx.hpp"
#include "gpusim/perf_model.hpp"

namespace {

using namespace aabft::gpusim;

TEST(Dim3, CountAndCoords) {
  const Dim3 grid{4, 3, 2};
  EXPECT_EQ(grid.count(), 24u);
  const BlockCoord c0 = block_coord(grid, 0);
  EXPECT_EQ(c0.x, 0u);
  EXPECT_EQ(c0.y, 0u);
  EXPECT_EQ(c0.z, 0u);
  const BlockCoord c5 = block_coord(grid, 5);
  EXPECT_EQ(c5.x, 1u);
  EXPECT_EQ(c5.y, 1u);
  EXPECT_EQ(c5.z, 0u);
  const BlockCoord c23 = block_coord(grid, 23);
  EXPECT_EQ(c23.x, 3u);
  EXPECT_EQ(c23.y, 2u);
  EXPECT_EQ(c23.z, 1u);
}

TEST(Launcher, VisitsEveryBlockExactlyOnce) {
  Launcher launcher;
  const Dim3 grid{5, 7, 2};
  std::vector<int> visits(grid.count(), 0);
  launcher.launch("cover", grid,
                  [&](BlockCtx& blk) { ++visits[blk.block.linear]; });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(Launcher, SmAssignmentIsRoundRobin) {
  Launcher launcher(k20c());
  std::vector<int> sm_of_block(30, -1);
  launcher.launch("sm", Dim3{30, 1, 1}, [&](BlockCtx& blk) {
    sm_of_block[blk.block.linear] = blk.math.sm_id();
  });
  for (std::size_t i = 0; i < sm_of_block.size(); ++i)
    EXPECT_EQ(sm_of_block[i], static_cast<int>(i % 13));
}

TEST(Launcher, AggregatesCountersAcrossBlocks) {
  Launcher launcher;
  const auto stats = launcher.launch("count", Dim3{10, 1, 1}, [](BlockCtx& blk) {
    double x = 1.0;
    for (int i = 0; i < 5; ++i) x = blk.math.add(x, 1.0);
    (void)blk.math.mul(x, 2.0);
    blk.math.load_doubles(3);
    blk.math.store_doubles(1);
  });
  EXPECT_EQ(stats.counters.adds, 50u);
  EXPECT_EQ(stats.counters.muls, 10u);
  EXPECT_EQ(stats.counters.bytes_loaded, 240u);
  EXPECT_EQ(stats.counters.bytes_stored, 80u);
  EXPECT_EQ(stats.blocks, 10u);
}

TEST(Launcher, LaunchLogAccumulates) {
  Launcher launcher;
  launcher.launch("first", Dim3{1, 1, 1}, [](BlockCtx&) {});
  launcher.launch("second", Dim3{2, 1, 1}, [](BlockCtx&) {});
  ASSERT_EQ(launcher.launch_log().size(), 2u);
  EXPECT_EQ(launcher.launch_log()[0].kernel_name, "first");
  EXPECT_EQ(launcher.launch_log()[1].kernel_name, "second");
  launcher.clear_launch_log();
  EXPECT_TRUE(launcher.launch_log().empty());
}

TEST(Launcher, EmptyGridRejected) {
  Launcher launcher;
  EXPECT_THROW(launcher.launch("bad", Dim3{0, 1, 1}, [](BlockCtx&) {}),
               std::invalid_argument);
}

TEST(FaultController, FiresOnlyOnExactCoordinates) {
  FaultController controller;
  FaultConfig config;
  config.site = FaultSite::kInnerMul;
  config.sm_id = 3;
  config.module_id = 2;
  config.k_injection = 7;
  config.error_vec = 1ULL << 50;
  controller.arm(config);

  // Mismatching site / sm / module / k: untouched.
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerAdd, 3, 2, 7, 1.0), 1.0);
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerMul, 4, 2, 7, 1.0), 1.0);
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerMul, 3, 1, 7, 1.0), 1.0);
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerMul, 3, 2, 8, 1.0), 1.0);
  EXPECT_FALSE(controller.fired());

  // Exact match: corrupted.
  const double hit = controller.maybe_inject(FaultSite::kInnerMul, 3, 2, 7, 1.0);
  EXPECT_NE(hit, 1.0);
  EXPECT_TRUE(controller.fired());
  EXPECT_EQ(controller.original_value(), 1.0);
  EXPECT_EQ(controller.faulty_value(), hit);

  // One-shot: a second exact match passes through.
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerMul, 3, 2, 7, 2.0), 2.0);
}

TEST(FaultController, DisarmedPassesThrough) {
  FaultController controller;
  EXPECT_EQ(controller.maybe_inject(FaultSite::kInnerMul, 0, 0, 0, 5.0), 5.0);
  EXPECT_FALSE(controller.armed());
}

TEST(FaultController, RearmResetsFiredFlag) {
  FaultController controller;
  FaultConfig config;
  config.error_vec = 1;
  controller.arm(config);
  (void)controller.maybe_inject(config.site, 0, 0, 0, 1.0);
  EXPECT_TRUE(controller.fired());
  controller.arm(config);
  EXPECT_FALSE(controller.fired());
}

TEST(MathCtx, FaultyOpsComputeCorrectlyWithoutController) {
  MathCtx math(0, nullptr);
  EXPECT_EQ(math.faulty_mul(3.0, 4.0, FaultSite::kInnerMul, 0, 0), 12.0);
  EXPECT_EQ(math.faulty_add(3.0, 4.0, FaultSite::kInnerAdd, 0, 0), 7.0);
  EXPECT_EQ(math.faulty_fma(2.0, 3.0, 1.0, FaultSite::kInnerAdd, 0, 0), 7.0);
  EXPECT_EQ(math.counters().muls, 1u);
  EXPECT_EQ(math.counters().adds, 1u);
  EXPECT_EQ(math.counters().fmas, 1u);
}

TEST(PerfCounters, FlopAccounting) {
  PerfCounters c;
  c.adds = 10;
  c.muls = 5;
  c.fmas = 3;
  EXPECT_EQ(c.flops(), 21u);  // fma counts twice
  PerfCounters d;
  d.adds = 1;
  c += d;
  EXPECT_EQ(c.adds, 11u);
}

TEST(PerfModel, MoreWorkTakesLonger) {
  const DeviceSpec device = k20c();
  PerfCounters small;
  small.muls = 1'000'000;
  PerfCounters large;
  large.muls = 100'000'000;
  const auto profile = gemm_profile();
  EXPECT_LT(kernel_seconds(device, small, profile),
            kernel_seconds(device, large, profile));
}

TEST(PerfModel, GemmEfficiencyCalibration) {
  // The calibrated curve must hit the paper's anchor: ~1048 GFLOPS
  // unprotected at n = 8192, and far less at n = 512.
  const DeviceSpec device = k20c();
  auto gemm_gflops = [&](std::size_t n) {
    PerfCounters c;
    c.muls = n * n * n;
    c.adds = n * n * n;
    c.bytes_loaded = 16 * n * n;
    const double t = kernel_seconds(device, c, gemm_profile());
    return gflops(2 * n * n * n, t);
  };
  EXPECT_NEAR(gemm_gflops(8192), 1048.0, 60.0);
  EXPECT_LT(gemm_gflops(512), 600.0);
  EXPECT_GT(gemm_gflops(512), 300.0);
  EXPECT_LT(gemm_gflops(512), gemm_gflops(1024));
  EXPECT_LT(gemm_gflops(1024), gemm_gflops(4096));
}

TEST(PerfModel, MemoryBoundKernelIsBandwidthLimited) {
  const DeviceSpec device = k20c();
  PerfCounters c;
  c.adds = 1000;                    // negligible compute
  c.bytes_loaded = 1'000'000'000;   // 1 GB
  const double t = kernel_seconds(device, c, streaming_profile());
  // 1 GB at 208 GB/s * 0.5 efficiency ~= 9.6 ms.
  EXPECT_NEAR(t, 1e9 / (208e9 * 0.5), 1e-3);
}

TEST(MathCtx, SharedMemoryBudgetEnforced) {
  MathCtx math(0, nullptr);
  math.set_shared_limit(48 * 1024);
  math.use_shared_doubles(1024);  // 8 KB — fine
  EXPECT_EQ(math.shared_bytes(), 8192u);
  EXPECT_THROW(math.use_shared_doubles(6 * 1024), std::invalid_argument);
}

TEST(MathCtx, SharedMemoryUncheckedWithoutLimit) {
  MathCtx math(0, nullptr);
  EXPECT_NO_THROW(math.use_shared_doubles(1 << 20));
}

TEST(Launcher, OversizedKernelSharedMemoryRejected) {
  // A GEMM blocking whose tiles exceed the K20C's 48 KB per-block shared
  // memory must refuse to "launch" — like the real device.
  Launcher launcher;
  EXPECT_THROW(
      launcher.launch("fat", Dim3{1, 1, 1},
                      [](BlockCtx& blk) {
                        blk.math.use_shared_doubles(64 * 64 * 2);  // 64 KB
                      }),
      std::invalid_argument);
}

TEST(Launcher, OversizedSharedMemoryFailsDeterministicallyOnPool) {
  // Multi-block launches on the worker pool must surface the budget
  // violation as the same exception on the calling thread — never a dead
  // worker or a terminate — every single time.
  for (int attempt = 0; attempt < 3; ++attempt) {
    Launcher launcher(k20c(), 2);
    EXPECT_THROW(
        launcher.launch("fat", Dim3{4, 2, 1},
                        [](BlockCtx& blk) {
                          blk.math.use_shared_doubles(64 * 64 * 2);  // 64 KB
                        }),
        std::invalid_argument);
    // The pool survives the failed launch: a follow-up launch still works.
    std::atomic<int> blocks{0};
    launcher.launch("ok", Dim3{4, 1, 1},
                    [&](BlockCtx&) { blocks.fetch_add(1); });
    EXPECT_EQ(blocks.load(), 4);
  }
}

TEST(Launcher, OversizedSharedMemoryAsyncRethrownAtSynchronize) {
  Launcher launcher(k20c(), 2);
  Stream stream = launcher.create_stream();
  launcher.launch_async(stream, "fat", Dim3{2, 1, 1}, [](BlockCtx& blk) {
    blk.math.use_shared_doubles(64 * 64 * 2);  // 64 KB
  });
  EXPECT_THROW(launcher.synchronize(), std::invalid_argument);
  // The stored error is consumed; the launcher is usable again.
  launcher.synchronize();
  std::atomic<int> blocks{0};
  launcher.launch_async(stream, "ok", Dim3{3, 1, 1},
                        [&](BlockCtx&) { blocks.fetch_add(1); });
  launcher.synchronize();
  EXPECT_EQ(blocks.load(), 3);
}

TEST(Launcher, ReconfiguringDuringSyncLaunchThrows) {
  // The header contract: set_fault_controller / set_precision /
  // set_hazard_mode while a synchronous launch is in flight is misuse, and
  // the launcher enforces it instead of racing.
  Launcher launcher(k20c(), 1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::thread worker([&] {
    launcher.launch("gate", Dim3{1, 1, 1}, [&](BlockCtx&) {
      started.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (!started.load()) std::this_thread::yield();
  EXPECT_THROW(launcher.set_fault_controller(nullptr), std::invalid_argument);
  EXPECT_THROW(launcher.set_precision(Precision::kDouble),
               std::invalid_argument);
  EXPECT_THROW(launcher.set_hazard_mode(HazardMode::kRecord),
               std::invalid_argument);
  release.store(true);
  worker.join();
  // With the launch retired the setters work again.
  launcher.set_precision(Precision::kDouble);
  launcher.set_hazard_mode(HazardMode::kOff);
  launcher.set_fault_controller(nullptr);
}

TEST(PerfModel, RejectsNonPositiveProfiles) {
  PerfCounters c;
  EfficiencyProfile bad;
  bad.compute_fraction = 0.0;
  EXPECT_THROW((void)kernel_seconds(k20c(), c, bad), std::invalid_argument);
  EXPECT_THROW((void)gflops(100, 0.0), std::invalid_argument);
}

}  // namespace
