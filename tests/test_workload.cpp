// Workload generator tests: value ranges, the Turmon dynamic-range
// construction, and the input-class dispatch used by benches and campaigns.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "linalg/norms.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::linalg;

double frobenius(const Matrix& m) {
  double s = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) s += m(i, j) * m(i, j);
  return std::sqrt(s);
}

TEST(Workload, UniformStaysInRange) {
  Rng rng(1);
  const Matrix m = uniform_matrix(40, 40, -3.0, 5.0, rng);
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = 0; j < 40; ++j) {
      EXPECT_GE(m(i, j), -3.0);
      EXPECT_LT(m(i, j), 5.0);
    }
}

TEST(Workload, UniformMeanRoughlyCentred) {
  Rng rng(2);
  const Matrix m = uniform_matrix(100, 100, -1.0, 1.0, rng);
  double sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  EXPECT_NEAR(sum / static_cast<double>(m.size()), 0.0, 0.02);
}

TEST(Workload, UniformRejectsEmptyRange) {
  Rng rng(3);
  EXPECT_THROW((void)uniform_matrix(4, 4, 1.0, 1.0, rng),
               std::invalid_argument);
}

TEST(Workload, DynamicRangeExactConstructionPreservesFrobenius) {
  // ||U D V^T||_F == ||D||_F by orthogonal invariance.
  Rng rng(4);
  const std::size_t n = 24;
  DynamicRangeParams params;
  params.alpha = 0.0;
  params.kappa = 100.0;
  params.reflectors = 0;  // exact Haar via QR
  const Matrix a = dynamic_range_matrix(n, params, rng);
  double d_norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n - 1);
    const double d = std::pow(100.0, -frac);
    d_norm_sq += d * d;
  }
  EXPECT_NEAR(frobenius(a), std::sqrt(d_norm_sq), 1e-10);
}

TEST(Workload, DynamicRangeReflectorConstructionPreservesFrobenius) {
  Rng rng(5);
  const std::size_t n = 64;
  DynamicRangeParams params;
  params.kappa = 65536.0;
  params.reflectors = 16;
  const Matrix a = dynamic_range_matrix(n, params, rng);
  double d_norm_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n - 1);
    const double d = std::pow(65536.0, -frac);
    d_norm_sq += d * d;
  }
  EXPECT_NEAR(frobenius(a), std::sqrt(d_norm_sq),
              std::sqrt(d_norm_sq) * 1e-10);
}

TEST(Workload, AlphaScalesValues) {
  Rng rng(6);
  DynamicRangeParams base;
  base.alpha = 0.0;
  base.reflectors = 8;
  DynamicRangeParams scaled = base;
  scaled.alpha = 3.0;
  Rng rng_a(6);
  Rng rng_b(6);
  const Matrix a = dynamic_range_matrix(16, base, rng_a);
  const Matrix b = dynamic_range_matrix(16, scaled, rng_b);
  // Same random stream, so b == 1000 * a exactly up to rounding.
  EXPECT_NEAR(b.max_abs() / a.max_abs(), 1000.0, 1e-6);
}

TEST(Workload, KappaCreatesDynamicRange) {
  // Larger kappa -> wider spread between largest and smallest row norms of
  // the (diagonal-seeded) matrix.
  Rng rng(7);
  DynamicRangeParams mild;
  mild.kappa = 2.0;
  mild.reflectors = 0;
  DynamicRangeParams wild = mild;
  wild.kappa = 65536.0;
  const Matrix a = dynamic_range_matrix(32, mild, rng);
  const Matrix b = dynamic_range_matrix(32, wild, rng);
  // Crude singular-value probe: Frobenius vs spectral-ish max row norm.
  const double spread_a = frobenius(a) / a.max_abs();
  const double spread_b = frobenius(b) / b.max_abs();
  EXPECT_GT(spread_a, spread_b);  // flat spectrum has relatively larger mass
}

TEST(Workload, KappaBelowOneRejected) {
  Rng rng(8);
  DynamicRangeParams params;
  params.kappa = 0.5;
  EXPECT_THROW((void)dynamic_range_matrix(8, params, rng),
               std::invalid_argument);
}

TEST(Workload, MakeInputDispatch) {
  Rng rng(9);
  const Matrix unit = make_input(InputClass::kUnit, 16, 2.0, rng);
  EXPECT_LE(unit.max_abs(), 1.0);
  const Matrix hundred = make_input(InputClass::kHundred, 16, 2.0, rng);
  EXPECT_GT(hundred.max_abs(), 10.0);
  EXPECT_LE(hundred.max_abs(), 100.0);
  const Matrix dynamic = make_input(InputClass::kDynamic, 16, 4.0, rng);
  EXPECT_EQ(dynamic.rows(), 16u);
}

TEST(Workload, InputClassNames) {
  EXPECT_EQ(to_string(InputClass::kUnit), "U(-1,1)");
  EXPECT_EQ(to_string(InputClass::kHundred), "U(-100,100)");
  EXPECT_EQ(to_string(InputClass::kDynamic), "dynamic");
}

TEST(Workload, DeterministicAcrossRuns) {
  Rng a(10);
  Rng b(10);
  const Matrix ma = make_input(InputClass::kDynamic, 20, 16.0, a);
  const Matrix mb = make_input(InputClass::kDynamic, 20, 16.0, b);
  EXPECT_EQ(ma, mb);
}

}  // namespace
