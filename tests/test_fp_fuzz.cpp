// Differential fuzzing of the exact reference arithmetic: long random
// sequences of add / sub / add_product operations evaluated simultaneously
// in the Kulisch superaccumulator and in BigFloat must agree bit-for-bit —
// two independent implementations standing in for GMP.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "fp/bigfloat.hpp"
#include "fp/exact_accumulator.hpp"

namespace {

using aabft::Rng;
using aabft::fp::BigFloat;
using aabft::fp::ExactAccumulator;

double random_value(Rng& rng, int max_decades) {
  return rng.uniform(-1.0, 1.0) *
         std::pow(10.0, static_cast<double>(rng.between(-max_decades,
                                                        max_decades)));
}

class FpFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FpFuzz, AccumulatorAgreesWithBigFloat) {
  Rng rng(GetParam());
  ExactAccumulator acc;
  BigFloat ref;
  for (int step = 0; step < 400; ++step) {
    switch (rng.below(4)) {
      case 0: {
        const double v = random_value(rng, 30);
        acc.add(v);
        ref += BigFloat::from_double(v);
        break;
      }
      case 1: {
        const double v = random_value(rng, 30);
        acc.sub(v);
        ref -= BigFloat::from_double(v);
        break;
      }
      case 2: {
        const double a = random_value(rng, 15);
        const double b = random_value(rng, 15);
        acc.add_product(a, b);
        ref += BigFloat::from_double(a) * BigFloat::from_double(b);
        break;
      }
      case 3: {
        const double a = random_value(rng, 15);
        const double b = random_value(rng, 15);
        acc.sub_product(a, b);
        ref -= BigFloat::from_double(a) * BigFloat::from_double(b);
        break;
      }
    }
    if (step % 50 == 0) {
      ASSERT_EQ(acc.round_to_double(), ref.to_double()) << "step " << step;
      ASSERT_EQ(acc.sign(), ref.sign()) << "step " << step;
    }
  }
  EXPECT_EQ(acc.round_to_double(), ref.to_double());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(FpFuzz, TinyAndHugeMixtures) {
  // Adversarial magnitudes: denormals against near-max doubles.
  ExactAccumulator acc;
  BigFloat ref;
  const double tiny = 5e-324;
  const double huge = 1e300;
  for (int i = 0; i < 10; ++i) {
    acc.add(tiny);
    acc.add(huge);
    acc.sub(huge);
    ref += BigFloat::from_double(tiny);
    ref += BigFloat::from_double(huge);
    ref -= BigFloat::from_double(huge);
  }
  EXPECT_EQ(acc.round_to_double(), 10 * tiny);
  EXPECT_EQ(ref.to_double(), 10 * tiny);
}

TEST(FpFuzz, AlternatingCancellation) {
  Rng rng(99);
  ExactAccumulator acc;
  BigFloat ref;
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = random_value(rng, 100);
    acc.add(v);
    acc.sub(last);
    ref += BigFloat::from_double(v);
    ref -= BigFloat::from_double(last);
    last = v;
  }
  EXPECT_EQ(acc.round_to_double(), ref.to_double());
  // After removing everything but the final value, exactly `last` remains.
  acc.sub(last);
  ref -= BigFloat::from_double(last);
  EXPECT_TRUE(acc.is_zero());
  EXPECT_TRUE(ref.is_zero());
}

}  // namespace
