// Dense matrix container tests.
#include <gtest/gtest.h>

#include "linalg/matrix.hpp"

namespace {

using aabft::linalg::Matrix;

TEST(Matrix, ConstructionAndFill) {
  Matrix m(3, 4, 1.5);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 1.5);
}

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(Matrix, RejectsZeroDimensions) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(Matrix, RowMajorLayout) {
  Matrix m(2, 3);
  m(0, 0) = 1; m(0, 1) = 2; m(0, 2) = 3;
  m(1, 0) = 4; m(1, 1) = 5; m(1, 2) = 6;
  EXPECT_EQ(m.data()[0], 1);
  EXPECT_EQ(m.data()[2], 3);
  EXPECT_EQ(m.data()[3], 4);
  EXPECT_EQ(m.data()[5], 6);
}

TEST(Matrix, RowViewAndColCopy) {
  Matrix m(2, 3);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = static_cast<double>(10 * i + j);
  const auto row1 = m.row(1);
  EXPECT_EQ(row1.size(), 3u);
  EXPECT_EQ(row1[2], 12.0);
  const auto col2 = m.col(2);
  EXPECT_EQ(col2.size(), 2u);
  EXPECT_EQ(col2[0], 2.0);
  EXPECT_EQ(col2[1], 12.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), std::invalid_argument);
  EXPECT_THROW((void)m.at(0, 2), std::invalid_argument);
  EXPECT_NO_THROW((void)m.at(1, 1));
}

TEST(Matrix, RowAndColBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.row(5), std::invalid_argument);
  EXPECT_THROW((void)m.col(5), std::invalid_argument);
}

TEST(Matrix, TransposedTwiceIsIdentity) {
  Matrix m(3, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) m(i, j) = static_cast<double>(i * 5 + j);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 5u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t(4, 2), m(2, 4));
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, EqualityIsBitwise) {
  Matrix a(2, 2, 0.0);
  Matrix b(2, 2, 0.0);
  EXPECT_EQ(a, b);
  b(1, 1) = -0.0;  // -0.0 != +0.0 bitwise... but operator== uses double ==
  EXPECT_EQ(a, b);  // value comparison: -0.0 == 0.0
  b(1, 1) = 1e-300;
  EXPECT_FALSE(a == b);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(0, 1) = 3.5;
  EXPECT_EQ(a.max_abs_diff(b), 2.5);
  Matrix c(3, 2);
  EXPECT_THROW((void)a.max_abs_diff(c), std::invalid_argument);
}

TEST(Matrix, MaxAbs) {
  Matrix a(2, 2, 0.0);
  a(1, 0) = -7.0;
  a(0, 1) = 3.0;
  EXPECT_EQ(a.max_abs(), 7.0);
}

TEST(Matrix, PasteCopiesRectangle) {
  Matrix src(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) src(i, j) = static_cast<double>(i * 4 + j);
  Matrix dst(5, 5, -1.0);
  dst.paste(src, 1, 1, 2, 3, 0, 2);
  EXPECT_EQ(dst(0, 2), src(1, 1));
  EXPECT_EQ(dst(1, 4), src(2, 3));
  EXPECT_EQ(dst(0, 0), -1.0);  // untouched
}

TEST(Matrix, PasteBoundsChecked) {
  Matrix src(2, 2);
  Matrix dst(3, 3);
  EXPECT_THROW(dst.paste(src, 1, 1, 2, 2, 0, 0), std::invalid_argument);
  EXPECT_THROW(dst.paste(src, 0, 0, 2, 2, 2, 2), std::invalid_argument);
}

}  // namespace
