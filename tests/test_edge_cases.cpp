// Cross-module edge cases: degenerate shapes, extreme blockings, special
// values, and configuration corners that individual module tests don't hit.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "aabft.hpp"

namespace {

using aabft::Rng;
using namespace aabft;

TEST(EdgeCases, GemmPanelDeeperThanInnerDim) {
  // bk = 8 but k = 3: a single ragged panel.
  Rng rng(1);
  const auto a = linalg::uniform_matrix(4, 3, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(3, 4, -1.0, 1.0, rng);
  gpusim::Launcher launcher;
  EXPECT_EQ(linalg::blocked_matmul(launcher, a, b),
            linalg::naive_matmul(a, b, false));
}

TEST(EdgeCases, GemmOneByOne) {
  linalg::Matrix a(1, 1, 3.0);
  linalg::Matrix b(1, 1, 4.0);
  gpusim::Launcher launcher;
  const auto c = linalg::blocked_matmul(launcher, a, b);
  EXPECT_EQ(c(0, 0), 12.0);
}

TEST(EdgeCases, GemmOversizedBlockingRefusesToLaunch) {
  // 64x64x64 tiles of A and B exceed the K20C's 48 KB shared memory.
  linalg::GemmConfig config;
  config.bm = 64;
  config.bn = 64;
  config.bk = 64;
  config.rx = 8;
  config.ry = 8;
  linalg::Matrix a(4, 4, 1.0);
  linalg::Matrix b(4, 4, 1.0);
  gpusim::Launcher launcher;
  EXPECT_THROW((void)linalg::blocked_matmul(launcher, a, b, config),
               std::invalid_argument);
}

TEST(EdgeCases, EncoderWithPLargerThanBlockWidth) {
  // p exceeds the number of elements per chunk: lists saturate with what
  // exists (including zero entries after the vector runs dry).
  Rng rng(2);
  const abft::PartitionedCodec codec(4);
  const auto a = linalg::uniform_matrix(4, 4, -1.0, 1.0, rng);
  gpusim::Launcher launcher;
  const auto enc = abft::encode_columns(launcher, a, codec, 6);
  for (const auto& list : enc.pmax) {
    EXPECT_EQ(list.size(), 6u);
    EXPECT_GE(list.max_value(), list.min_value());
  }
}

TEST(EdgeCases, ProtectedMultiplySmallestBlockSize) {
  Rng rng(3);
  const auto a = linalg::uniform_matrix(4, 4, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(4, 4, -1.0, 1.0, rng);
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 2;  // the minimum the codec accepts
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, linalg::naive_matmul(a, b, false));
}

TEST(EdgeCases, ZeroMatrixProductIsCleanAndZero) {
  const linalg::Matrix a(32, 32, 0.0);
  const linalg::Matrix b(32, 32, 0.0);
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 16;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c.max_abs(), 0.0);
}

TEST(EdgeCases, IdentityTimesIdentityExact) {
  linalg::Matrix eye(32, 32, 0.0);
  for (std::size_t i = 0; i < 32; ++i) eye(i, i) = 1.0;
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 16;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(eye, eye).value();
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, eye);
}

TEST(EdgeCases, TinyValuesStayCleanInNormalRange) {
  Rng rng(4);
  linalg::Matrix a(32, 32);
  linalg::Matrix b(32, 32);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0) * 1e-120;
      b(i, j) = rng.uniform(-1.0, 1.0) * 1e-120;
    }
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 16;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();  // products ~1e-240: still normal
  EXPECT_FALSE(result.error_detected());
}

TEST(EdgeCases, SubnormalProductsExceedTheModelKnownLimitation) {
  // Characterised limitation, shared with the paper: the Barlow/Bareiss
  // model assumes *normalised* floating-point numbers (Section IV-B uses
  // E_k <= s_k*). When the products themselves are subnormal (~1e-320
  // here), their rounding is absolute (2^-1074-grained), the relative-error
  // model's sigma underflows to zero, and the check mis-fires.
  // This test documents the behaviour; DESIGN.md lists the limitation.
  Rng rng(99);
  linalg::Matrix a(32, 32);
  linalg::Matrix b(32, 32);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0) * 1e-160;
      b(i, j) = rng.uniform(-1.0, 1.0) * 1e-160;
    }
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 16;
  config.correct_errors = false;
  config.max_recompute_attempts = 0;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();  // products ~1e-320: subnormal
  EXPECT_TRUE(result.error_detected());  // known false positives
}

TEST(EdgeCases, HugeValuesStayClean) {
  Rng rng(5);
  linalg::Matrix a(32, 32);
  linalg::Matrix b(32, 32);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0) * 1e150;
      b(i, j) = rng.uniform(-1.0, 1.0) * 1e100;
    }
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 16;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
}

TEST(EdgeCases, MixedMagnitudeColumnsStayClean) {
  // Columns spanning 30 orders of magnitude: the per-vector p-max bounds
  // adapt per column, which a single global epsilon could not.
  Rng rng(6);
  linalg::Matrix a(32, 32);
  linalg::Matrix b(32, 32);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j) {
      a(i, j) = rng.uniform(-1.0, 1.0) * std::pow(10.0, (j % 4) * 10.0);
      b(i, j) = rng.uniform(-1.0, 1.0) * std::pow(10.0, (i % 4) * -10.0);
    }
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 16;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
}

TEST(EdgeCases, SignFlipOnExactZeroIsMasked) {
  // Injecting a sign flip into a zero-valued operation result yields -0.0,
  // which compares equal: truly masked, and the campaign accounts for it.
  gpusim::FaultController controller;
  gpusim::FaultConfig fault;
  fault.error_vec = fp::kSignMask;
  controller.arm(fault);
  const double v =
      controller.maybe_inject(gpusim::FaultSite::kInnerMul, 0, 0, 0, 0.0);
  EXPECT_TRUE(controller.fired());
  EXPECT_EQ(v, 0.0);  // -0.0 == 0.0
  EXPECT_TRUE(std::signbit(v));
}

TEST(EdgeCases, ChecksumEpsilonAtZeroBoundIsZero) {
  // All-zero vectors give y = 0 and epsilon = 0; exact-zero checksums still
  // pass the (<=) comparison.
  abft::BoundParams params;
  EXPECT_EQ(abft::checksum_epsilon(128, 16, 0.0, 0.0, params), 0.0);
}

TEST(EdgeCases, WeightedMinimumBlockSize) {
  Rng rng(7);
  const auto a = linalg::uniform_matrix(4, 4, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(4, 4, -1.0, 1.0, rng);
  gpusim::Launcher launcher;
  abft::WeightedAabftConfig config;
  config.bs = 2;
  abft::WeightedAabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, linalg::naive_matmul(a, b, false));
}

TEST(EdgeCases, RoundToSingleIsIdempotent) {
  Rng rng(8);
  auto m = linalg::uniform_matrix(8, 8, -1e10, 1e10, rng);
  m.round_to_single();
  auto again = m;
  again.round_to_single();
  EXPECT_EQ(m, again);
}

TEST(EdgeCases, LauncherZGridCoordinates) {
  gpusim::Launcher launcher;
  std::vector<int> seen(8, 0);
  launcher.launch("z", gpusim::Dim3{2, 2, 2}, [&](gpusim::BlockCtx& blk) {
    seen[blk.block.z * 4 + blk.block.y * 2 + blk.block.x] += 1;
  });
  for (const int v : seen) EXPECT_EQ(v, 1);
}

}  // namespace
