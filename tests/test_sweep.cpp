// Campaign grid-sweep tests (the programmatic Figure-4 experiment).
#include <gtest/gtest.h>

#include "inject/sweep.hpp"

namespace {

using namespace aabft;
using inject::run_sweep;
using inject::SweepConfig;
using inject::SweepResult;

SweepConfig tiny_sweep() {
  SweepConfig config;
  config.sizes = {32, 64};
  config.sites = {gpusim::FaultSite::kInnerMul};
  config.inputs = {{linalg::InputClass::kUnit, 2.0}};
  config.trials = 6;
  config.bs = 16;
  config.seed = 4321;
  return config;
}

TEST(Sweep, ProducesOneCellPerGridPoint) {
  const SweepResult result = run_sweep(tiny_sweep());
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].n, 32u);
  EXPECT_EQ(result.cells[1].n, 64u);
  for (const auto& cell : result.cells) {
    EXPECT_EQ(cell.site, gpusim::FaultSite::kInnerMul);
    EXPECT_EQ(cell.input, linalg::InputClass::kUnit);
    EXPECT_EQ(cell.result.trials, 6u);
  }
}

TEST(Sweep, FullGridCoversEveryCombination) {
  SweepConfig config = tiny_sweep();
  config.sites = {gpusim::FaultSite::kInnerMul, gpusim::FaultSite::kFinalAdd};
  config.inputs = {{linalg::InputClass::kUnit, 2.0},
                   {linalg::InputClass::kHundred, 2.0}};
  const SweepResult result = run_sweep(config);
  EXPECT_EQ(result.cells.size(), 2u * 2u * 2u);
}

TEST(Sweep, AggregateRatesAndFalsePositives) {
  const SweepResult result = run_sweep(tiny_sweep());
  EXPECT_EQ(result.false_positive_runs(), 0u);
  const double aabft = result.aggregate_rate_aabft();
  const double sea = result.aggregate_rate_sea();
  EXPECT_GE(aabft, sea);
  EXPECT_GT(aabft, 50.0);
  EXPECT_LE(aabft, 100.0);
}

TEST(Sweep, DeterministicForSeed) {
  const SweepResult r1 = run_sweep(tiny_sweep());
  const SweepResult r2 = run_sweep(tiny_sweep());
  ASSERT_EQ(r1.cells.size(), r2.cells.size());
  for (std::size_t i = 0; i < r1.cells.size(); ++i) {
    EXPECT_EQ(r1.cells[i].result.fired, r2.cells[i].result.fired);
    EXPECT_EQ(r1.cells[i].result.aabft().detected_critical,
              r2.cells[i].result.aabft().detected_critical);
  }
}

TEST(Sweep, EmptyGridRejected) {
  SweepConfig config = tiny_sweep();
  config.sizes.clear();
  EXPECT_THROW((void)run_sweep(config), std::invalid_argument);
}

}  // namespace
