// Executor / stream / batch tests: the persistent worker pool must be an
// invisible replacement for per-launch thread spawning. PerfCounters are
// uint64 sums, so aggregation is bit-identical for every worker count and
// schedule; streams must preserve FIFO order within a stream; and the async
// environment snapshot must keep SM-targeted fault injection deterministic.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::ErrorCode;
using aabft::Rng;
using aabft::abft::AabftConfig;
using aabft::abft::AabftMultiplier;
using aabft::gpusim::BlockCtx;
using aabft::gpusim::Dim3;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::k20c;
using aabft::gpusim::LaunchStats;
using aabft::gpusim::Launcher;
using aabft::gpusim::PerfCounters;
using aabft::gpusim::Stream;
using aabft::linalg::Matrix;
using aabft::linalg::blocked_matmul;
using aabft::linalg::uniform_matrix;

void expect_counters_eq(const PerfCounters& x, const PerfCounters& y) {
  EXPECT_EQ(x.adds, y.adds);
  EXPECT_EQ(x.muls, y.muls);
  EXPECT_EQ(x.fmas, y.fmas);
  EXPECT_EQ(x.compares, y.compares);
  EXPECT_EQ(x.bytes_loaded, y.bytes_loaded);
  EXPECT_EQ(x.bytes_stored, y.bytes_stored);
}

// One GEMM's counters and result, bit for bit, for a given worker count.
std::pair<Matrix, std::vector<LaunchStats>> run_gemm(unsigned workers) {
  Rng rng(77);
  const Matrix a = uniform_matrix(96, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 96, -1.0, 1.0, rng);
  Launcher launcher(k20c(), workers);
  Matrix c = blocked_matmul(launcher, a, b);
  return {std::move(c), launcher.launch_log()};
}

TEST(Executor, CountersBitIdenticalAcrossWorkerCounts) {
  const auto [c1, log1] = run_gemm(1);
  std::vector<unsigned> counts = {2, std::max(1u, std::thread::hardware_concurrency())};
  for (const unsigned workers : counts) {
    const auto [c, log] = run_gemm(workers);
    EXPECT_EQ(c, c1) << "workers=" << workers;
    ASSERT_EQ(log.size(), log1.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].kernel_name, log1[i].kernel_name);
      EXPECT_EQ(log[i].blocks, log1[i].blocks);
      expect_counters_eq(log[i].counters, log1[i].counters);
    }
  }
}

// The same kernel body, once synchronously and once via a stream, must
// produce identical outputs and identical logged counters.
TEST(Executor, StreamLaunchMatchesSyncLaunch) {
  constexpr std::size_t kBlocks = 8;
  constexpr std::size_t kOps = 16;
  auto body_for = [](std::vector<double>* out) {
    return [out](BlockCtx& ctx) {
      const std::size_t base = static_cast<std::size_t>(ctx.block.x) * kOps;
      for (std::size_t k = 0; k < kOps; ++k)
        (*out)[base + k] = ctx.math.mul(static_cast<double>(base + k), 1.25);
    };
  };

  Launcher launcher;
  std::vector<double> sync_out(kBlocks * kOps, 0.0);
  const LaunchStats sync_stats =
      launcher.launch("counted", Dim3{kBlocks, 1, 1}, body_for(&sync_out));

  launcher.clear_launch_log();
  std::vector<double> async_out(kBlocks * kOps, 0.0);
  Stream stream = launcher.create_stream();
  launcher.launch_async(stream, "counted", Dim3{kBlocks, 1, 1},
                        body_for(&async_out));
  stream.synchronize();

  EXPECT_EQ(async_out, sync_out);
  const auto log = launcher.launch_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.front().kernel_name, "counted");
  EXPECT_EQ(log.front().blocks, kBlocks);
  expect_counters_eq(log.front().counters, sync_stats.counters);
}

// Operations on one stream run strictly in enqueue order, even when they are
// a mix of kernels and host functions; the shared vector needs no lock.
TEST(Executor, StreamPreservesFifoOrder) {
  Launcher launcher;
  Stream stream = launcher.create_stream();
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    launcher.launch_host_async(stream, "host_step",
                               [&order, i] { order.push_back(2 * i); });
    launcher.launch_async(stream, "kernel_step", Dim3{1, 1, 1},
                          [&order, i](BlockCtx&) { order.push_back(2 * i + 1); });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[i], i);
}

// After synchronize() the log holds every async launch from every stream.
TEST(Executor, SynchronizeDrainsAllStreams) {
  Launcher launcher;
  std::vector<Stream> streams = {launcher.create_stream(),
                                 launcher.create_stream(),
                                 launcher.create_stream()};
  std::atomic<int> ran{0};
  constexpr int kPerStream = 4;
  for (auto& stream : streams)
    for (int i = 0; i < kPerStream; ++i)
      launcher.launch_async(stream, "tick", Dim3{2, 1, 1},
                            [&ran](BlockCtx& ctx) {
                              if (ctx.block.x == 0) ran.fetch_add(1);
                            });
  launcher.synchronize();
  EXPECT_EQ(ran.load(), static_cast<int>(streams.size()) * kPerStream);
  EXPECT_EQ(launcher.launch_log().size(), streams.size() * kPerStream);
}

// The launch environment is snapshotted at enqueue time: a fault armed when
// kernel A is enqueued hits A (and its targeted SM) even though the
// controller is detached before the work is drained, and the later kernel on
// a second stream runs clean. This is what keeps SM-targeted campaigns
// deterministic over async execution.
TEST(Executor, MultiStreamFaultInjectionTargetsSmDeterministically) {
  constexpr std::size_t kBlocks = 8;  // sm = block index (k20c has 13 SMs)
  constexpr std::size_t kOps = 10;
  constexpr int kTargetSm = 5;
  constexpr std::int64_t kTargetK = 4;

  auto body_for = [](std::vector<double>* out) {
    return [out](BlockCtx& ctx) {
      const std::size_t base = static_cast<std::size_t>(ctx.block.x) * kOps;
      for (std::size_t k = 0; k < kOps; ++k)
        (*out)[base + k] =
            ctx.math.faulty_mul(3.0, 7.0, FaultSite::kInnerMul, /*module_id=*/0,
                                static_cast<std::int64_t>(k));
    };
  };

  Launcher launcher;
  Stream s1 = launcher.create_stream();
  Stream s2 = launcher.create_stream();

  FaultController controller;
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = kTargetSm;
  fault.module_id = 0;
  fault.k_injection = kTargetK;
  fault.error_vec = 1ULL << 63;  // sign flip: 21.0 -> -21.0
  controller.arm(fault);

  std::vector<double> armed_out(kBlocks * kOps, 0.0);
  std::vector<double> clean_out(kBlocks * kOps, 0.0);
  launcher.set_fault_controller(&controller);
  launcher.launch_async(s1, "armed", Dim3{kBlocks, 1, 1}, body_for(&armed_out));
  launcher.set_fault_controller(nullptr);  // snapshot already taken for s1
  launcher.launch_async(s2, "clean", Dim3{kBlocks, 1, 1}, body_for(&clean_out));
  launcher.synchronize();

  EXPECT_TRUE(controller.fired());
  const std::size_t hit = static_cast<std::size_t>(kTargetSm) * kOps +
                          static_cast<std::size_t>(kTargetK);
  for (std::size_t i = 0; i < armed_out.size(); ++i)
    EXPECT_EQ(armed_out[i], i == hit ? -21.0 : 21.0) << "index " << i;
  for (const double v : clean_out) EXPECT_EQ(v, 21.0);
}

// Host functions on a stream may perform nested synchronous launches; the
// waiting thread helps execute them, so this cannot deadlock even with a
// single pool worker.
TEST(Executor, NestedSyncLaunchFromHostTaskDoesNotDeadlock) {
  Launcher launcher(k20c(), /*workers=*/1);
  Stream stream = launcher.create_stream();
  Rng rng(5);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  Matrix from_stream;
  launcher.launch_host_async(stream, "nested_gemm", [&] {
    from_stream = blocked_matmul(launcher, a, b);
  });
  stream.synchronize();
  Launcher reference;
  EXPECT_EQ(from_stream, blocked_matmul(reference, a, b));
}

// multiply_batch pipelines problems across streams but must stay bit-
// identical to sequential multiply() calls on the same launcher.
TEST(Executor, MultiplyBatchBitIdenticalToSequential) {
  Rng rng(91);
  AabftConfig config;
  config.bs = 16;
  std::vector<std::pair<Matrix, Matrix>> problems;
  for (int i = 0; i < 4; ++i)
    problems.emplace_back(uniform_matrix(48, 48, -1.0, 1.0, rng),
                          uniform_matrix(48, 48, -1.0, 1.0, rng));

  Launcher seq_launcher;
  AabftMultiplier seq(seq_launcher, config);
  std::vector<Matrix> reference;
  for (const auto& [a, b] : problems)
    reference.push_back(seq.multiply(a, b).value().c);

  for (const std::size_t streams : {std::size_t{1}, std::size_t{3}}) {
    Launcher launcher;
    AabftMultiplier mult(launcher, config);
    const auto batch = mult.multiply_batch(problems, streams);
    ASSERT_EQ(batch.size(), problems.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(batch[i].ok()) << "problem " << i;
      EXPECT_FALSE(batch[i]->error_detected());
      EXPECT_EQ(batch[i]->c, reference[i]) << "problem " << i;
    }
  }
}

// A shape-invalid entry reports its error in place without disturbing the
// valid problems around it.
TEST(Executor, MultiplyBatchReportsPerProblemErrors) {
  Rng rng(13);
  AabftConfig config;
  config.bs = 16;
  Launcher launcher;
  AabftMultiplier mult(launcher, config);
  std::vector<std::pair<Matrix, Matrix>> problems;
  problems.emplace_back(uniform_matrix(32, 32, -1.0, 1.0, rng),
                        uniform_matrix(32, 32, -1.0, 1.0, rng));
  problems.emplace_back(Matrix(32, 20), Matrix(32, 32));  // inner mismatch
  problems.emplace_back(uniform_matrix(32, 32, -1.0, 1.0, rng),
                        uniform_matrix(32, 32, -1.0, 1.0, rng));

  const auto batch = mult.multiply_batch(problems);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok());
  ASSERT_FALSE(batch[1].ok());
  EXPECT_EQ(batch[1].error().code, ErrorCode::kShapeMismatch);
  EXPECT_TRUE(batch[2].ok());
  const auto ref0 = AabftMultiplier(launcher, config)
                        .multiply(problems[0].first, problems[0].second)
                        .value();
  EXPECT_EQ(batch[0]->c, ref0.c);
}

}  // namespace
