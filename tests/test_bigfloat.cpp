// Exact dyadic arithmetic (BigFloat) tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.hpp"
#include "fp/bigfloat.hpp"

namespace {

using aabft::Rng;
using aabft::fp::BigFloat;

TEST(BigFloat, ZeroBehaviour) {
  BigFloat z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_double(), 0.0);
  EXPECT_TRUE((z + z).is_zero());
  EXPECT_TRUE((z * BigFloat::from_double(5.0)).is_zero());
}

TEST(BigFloat, FromToDoubleRoundTrips) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double v =
        rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-300, 300));
    EXPECT_EQ(BigFloat::from_double(v).to_double(), v);
  }
  EXPECT_EQ(BigFloat::from_double(5e-324).to_double(), 5e-324);  // denorm_min
  EXPECT_EQ(
      BigFloat::from_double(std::numeric_limits<double>::max()).to_double(),
      std::numeric_limits<double>::max());
}

TEST(BigFloat, AdditionCommutesAndAssociatesExactly) {
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const BigFloat a = BigFloat::from_double(rng.uniform(-1e10, 1e10));
    const BigFloat b = BigFloat::from_double(rng.uniform(-1e-10, 1e-10));
    const BigFloat c = BigFloat::from_double(rng.uniform(-1.0, 1.0));
    EXPECT_EQ((a + b).compare(b + a), 0);
    EXPECT_EQ(((a + b) + c).compare(a + (b + c)), 0);
  }
}

TEST(BigFloat, SubtractionCancelsExactly) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const BigFloat a = BigFloat::from_double(rng.uniform(-1e10, 1e10));
    EXPECT_TRUE((a - a).is_zero());
  }
}

TEST(BigFloat, MultiplicationDistributes) {
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const BigFloat a = BigFloat::from_double(rng.uniform(-100.0, 100.0));
    const BigFloat b = BigFloat::from_double(rng.uniform(-100.0, 100.0));
    const BigFloat c = BigFloat::from_double(rng.uniform(-100.0, 100.0));
    EXPECT_EQ((a * (b + c)).compare(a * b + a * c), 0);
  }
}

TEST(BigFloat, ComparisonTotalOrder) {
  const BigFloat small = BigFloat::from_double(-2.0);
  const BigFloat mid = BigFloat::from_double(1e-30);
  const BigFloat big = BigFloat::from_double(3e20);
  EXPECT_LT(small.compare(mid), 0);
  EXPECT_LT(mid.compare(big), 0);
  EXPECT_LT(small.compare(big), 0);
  EXPECT_GT(big.compare(mid), 0);
  EXPECT_EQ(mid.compare(mid), 0);
}

TEST(BigFloat, ComparisonWithDifferentExponents) {
  // 2^64 vs 2^64 + 1 constructed with different limb layouts.
  const BigFloat a = BigFloat::from_double(std::ldexp(1.0, 64));
  const BigFloat b = a + BigFloat::from_double(1.0);
  EXPECT_LT(a.compare(b), 0);
  EXPECT_GT(b.compare(a), 0);
}

TEST(BigFloat, ToDoubleRoundsToNearestEven) {
  // 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: ties-to-even -> 1.
  const BigFloat half_ulp =
      BigFloat::from_double(1.0) +
      BigFloat::from_double(std::ldexp(1.0, -53));
  EXPECT_EQ(half_ulp.to_double(), 1.0);
  // 1 + 2^-53 + 2^-80 is above the midpoint -> rounds up.
  const BigFloat above =
      half_ulp + BigFloat::from_double(std::ldexp(1.0, -80));
  EXPECT_EQ(above.to_double(), 1.0 + std::ldexp(1.0, -52));
  // 1 + 3*2^-53: midpoint again, but even neighbour is now above.
  const BigFloat three_halves =
      BigFloat::from_double(1.0) +
      BigFloat::from_double(3.0 * std::ldexp(1.0, -53));
  EXPECT_EQ(three_halves.to_double(), 1.0 + std::ldexp(1.0, -51));
}

TEST(BigFloat, ToDoubleSaturatesToInfinity) {
  const BigFloat huge = BigFloat::from_double(std::ldexp(1.0, 1000)) *
                        BigFloat::from_double(std::ldexp(1.0, 1000));
  EXPECT_EQ(huge.to_double(), std::numeric_limits<double>::infinity());
  EXPECT_EQ((-huge).to_double(), -std::numeric_limits<double>::infinity());
}

TEST(BigFloat, ToDoubleUnderflowsToZeroOrDenormal) {
  const BigFloat tiny = BigFloat::from_double(std::ldexp(1.0, -1000)) *
                        BigFloat::from_double(std::ldexp(1.0, -1000));
  EXPECT_EQ(tiny.to_double(), 0.0);  // 2^-2000 is below half denorm_min
  const BigFloat denorm = BigFloat::from_double(std::ldexp(1.0, -500)) *
                          BigFloat::from_double(std::ldexp(1.0, -560));
  EXPECT_EQ(denorm.to_double(), std::ldexp(1.0, -1060));
}

TEST(BigFloat, AbsAndNegation) {
  const BigFloat v = BigFloat::from_double(-3.5);
  EXPECT_EQ(v.abs().to_double(), 3.5);
  EXPECT_EQ((-v).to_double(), 3.5);
  EXPECT_EQ((-(-v)).to_double(), -3.5);
}

TEST(BigFloat, MultiplicationMatchesDoubleWhenExact) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    // Products of small integers are exact in double.
    const double a = static_cast<double>(rng.between(-1000, 1000));
    const double b = static_cast<double>(rng.between(-1000, 1000));
    const BigFloat prod = BigFloat::from_double(a) * BigFloat::from_double(b);
    EXPECT_EQ(prod.to_double(), a * b);
  }
}

TEST(BigFloat, LongAccumulationStressAgainstKahan) {
  // Sum many values of wildly different magnitude; BigFloat is exact, so the
  // final rounded result must be at least as accurate as a compensated sum.
  Rng rng(6);
  BigFloat acc;
  long double ld = 0.0L;
  for (int i = 0; i < 5000; ++i) {
    const double v =
        rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-25, 25));
    acc += BigFloat::from_double(v);
    ld += static_cast<long double>(v);
  }
  EXPECT_NEAR(acc.to_double(), static_cast<double>(ld),
              std::fabs(static_cast<double>(ld)) * 1e-12 + 1e-12);
}

}  // namespace
