// Protected GEMV tests: correctness, detection, recompute recovery, reuse of
// the encoding across many products.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "abft/gemv.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

AabftConfig cfg() {
  AabftConfig config;
  config.bs = 16;
  return config;
}

std::vector<double> host_gemv(const Matrix& a, const std::vector<double>& x) {
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * x[k];
    y[i] = 0.0 + s;
  }
  return y;
}

TEST(Gemv, CleanProductMatchesHostBitwise) {
  Rng rng(1);
  const Matrix a = uniform_matrix(48, 40, -1.0, 1.0, rng);
  std::vector<double> x(40);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  Launcher launcher;
  ProtectedGemv gemv(launcher, a, cfg());
  const GemvResult result = gemv.multiply(x);
  EXPECT_TRUE(result.ok);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.y, host_gemv(a, x));  // same accumulation order: bitwise
}

TEST(Gemv, NoFalsePositivesAcrossInputClasses) {
  Rng rng(2);
  Launcher launcher;
  for (const auto input : {aabft::linalg::InputClass::kUnit,
                           aabft::linalg::InputClass::kHundred,
                           aabft::linalg::InputClass::kDynamic}) {
    const Matrix a = aabft::linalg::make_input(input, 64, 16.0, rng);
    ProtectedGemv gemv(launcher, a, cfg());
    std::vector<double> x(64);
    for (auto& v : x) v = rng.uniform(-100.0, 100.0);
    const GemvResult result = gemv.multiply(x);
    EXPECT_FALSE(result.error_detected())
        << aabft::linalg::to_string(input);
  }
}

TEST(Gemv, EncodingIsReusedAcrossProducts) {
  Rng rng(3);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  Launcher launcher;
  ProtectedGemv gemv(launcher, a, cfg());
  const std::size_t launches_after_setup = launcher.launch_log().size();
  std::vector<double> x(32, 1.0);
  (void)gemv.multiply(x);
  (void)gemv.multiply(x);
  // Each multiply adds gemv + pmax_x + check = 3 launches, no re-encode.
  EXPECT_EQ(launcher.launch_log().size(), launches_after_setup + 6);
}

TEST(Gemv, DetectsInjectedFaultAndRecovers) {
  Rng rng(4);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  ProtectedGemv gemv(launcher, a, cfg());

  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 2;  // encoded row 2 runs on SM 2
  fault.module_id = 0;
  fault.k_injection = 10;
  fault.error_vec = 1ULL << 61;
  controller.arm(fault);
  const GemvResult result = gemv.multiply(x);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  ASSERT_EQ(result.mismatches.size(), 1u);
  EXPECT_EQ(result.mismatches.front().block, 0u);  // row 2 is in block 0
  // One-shot fault + recompute fallback: the returned y is clean.
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.recomputations, 1u);
  EXPECT_EQ(result.y, host_gemv(a, x));
}

TEST(Gemv, DetectionOnlyWithoutRecompute) {
  Rng rng(5);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  std::vector<double> x(32, 0.5);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  AabftConfig config = cfg();
  config.max_recompute_attempts = 0;
  ProtectedGemv gemv(launcher, a, config);
  FaultConfig fault;
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 5;
  fault.error_vec = 1ULL << 60;
  controller.arm(fault);
  const GemvResult result = gemv.multiply(x);
  launcher.set_fault_controller(nullptr);
  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.recomputations, 0u);
}

TEST(Gemv, ValidatesShapes) {
  Rng rng(6);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  Launcher launcher;
  ProtectedGemv gemv(launcher, a, cfg());
  std::vector<double> wrong(31);
  EXPECT_THROW((void)gemv.multiply(wrong), std::invalid_argument);
  Matrix indivisible(33, 32);
  EXPECT_THROW(ProtectedGemv(launcher, indivisible, cfg()),
               std::invalid_argument);
}

}  // namespace
