// Operand checksum cache tests: fingerprinting, register/dedup, LRU byte
// budget with pin semantics, invalidation, the preencoded multiply paths'
// bit-identity to the cold pipeline (clean and under 1-8-fault campaigns),
// the sampled cache-consistency guard, the opcache StatsBoard counters, and
// GemmServer end-to-end handle / implicit-hit / batching behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/fused_gemm.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"
#include "serve/opcache/fingerprint.hpp"
#include "serve/opcache/opcache.hpp"
#include "serve/server.hpp"

namespace {

using namespace aabft;
using namespace aabft::serve;
using gpusim::FaultConfig;
using gpusim::FaultSite;
using gpusim::Launcher;
using linalg::Matrix;
using linalg::naive_matmul;
using linalg::uniform_matrix;
using opcache::OperandCache;
using opcache::OpCacheConfig;

abft::AabftConfig small_aabft(bool fused) {
  abft::AabftConfig config;
  config.bs = 8;
  config.fused_gemm = fused;
  config.max_block_recomputes = 1;
  return config;
}

// ---------------------------------------------------------------------------
// Fingerprinting.

TEST(OpCacheFingerprint, EqualContentHashesEqual) {
  Rng rng(11);
  const Matrix a = uniform_matrix(16, 12, -1.0, 1.0, rng);
  Matrix copy = a;
  EXPECT_EQ(opcache::fingerprint_matrix(a), opcache::fingerprint_matrix(copy));
}

TEST(OpCacheFingerprint, ContentAndShapeChangeTheHash) {
  Rng rng(12);
  const Matrix a = uniform_matrix(16, 12, -1.0, 1.0, rng);
  Matrix tweaked = a;
  // One-ulp nudge: the smallest representable content change must already
  // change the fingerprint (an additive epsilon could be absorbed by
  // rounding and leave the bits untouched).
  tweaked(3, 4) = std::nextafter(tweaked(3, 4), 2.0);
  EXPECT_NE(opcache::fingerprint_matrix(a),
            opcache::fingerprint_matrix(tweaked));

  // Same payload bits, different shape: a 16x12 and a 12x16 of the same
  // buffer must not collide (shape is hashed before the payload).
  Matrix reshaped(12, 16);
  for (std::size_t i = 0; i < 12 * 16; ++i)
    reshaped.data()[i] = a.data()[i];
  EXPECT_NE(opcache::fingerprint_matrix(a),
            opcache::fingerprint_matrix(reshaped));
}

// ---------------------------------------------------------------------------
// Cache unit behaviour (standalone, StatsBoard-attached).

TEST(OpCache, RegisterDedupsByContent) {
  Launcher launcher;
  StatsBoard stats;
  OperandCache cache(launcher, small_aabft(true), OpCacheConfig{}, &stats);
  Rng rng(21);
  const Matrix a = uniform_matrix(24, 16, -1.0, 1.0, rng);

  auto first = cache.register_operand(a);
  ASSERT_TRUE(first.ok());
  EXPECT_GE(*first, 1u) << "0 is the 'no handle' sentinel";
  auto second = cache.register_operand(a);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(stats.snapshot().opcache_registered, 1u)
      << "dedup must not count as a fresh registration";
}

TEST(OpCache, EntryCarriesConsistentPreencodedViews) {
  Launcher launcher;
  // Unfused: the classic pipeline wants the materialised encoded A as well.
  const abft::AabftConfig aabft = small_aabft(false);
  OperandCache cache(launcher, aabft, OpCacheConfig{}, nullptr);
  Rng rng(22);
  const Matrix a = uniform_matrix(20, 16, -1.0, 1.0, rng);  // pads 20 -> 24

  auto handle = cache.register_operand(a);
  ASSERT_TRUE(handle.ok());
  OperandCache::Pin pin = cache.acquire(*handle);
  ASSERT_TRUE(pin != nullptr);
  EXPECT_EQ(pin->orig_rows, 20u);
  EXPECT_EQ(pin->orig_cols, 16u);
  EXPECT_EQ(pin->padded.rows(), 24u);
  EXPECT_EQ(pin->pre.a, &pin->padded);
  EXPECT_EQ(pin->pre.light, &pin->light);
  ASSERT_TRUE(pin->encoded.has_value());
  EXPECT_EQ(pin->pre.encoded, &*pin->encoded);
  // The cached side-buffer is exactly a fresh light encode of the padded A.
  const abft::LightEncoded fresh = abft::encode_columns_light(
      launcher, pin->padded, abft::PartitionedCodec(aabft.bs), aabft.p);
  EXPECT_EQ(pin->light.sums, fresh.sums);
}

TEST(OpCache, LruEvictsUnpinnedWithinBudgetAndNeverPinned) {
  Launcher launcher;
  StatsBoard stats;
  // Measure one 16x16 entry's real footprint with an unbounded probe cache,
  // then size the budget to fit exactly two entries but not three.
  std::size_t entry_bytes = 0;
  {
    OperandCache probe(launcher, small_aabft(true), OpCacheConfig{}, nullptr);
    Rng probe_rng(230);
    auto h = probe.register_operand(uniform_matrix(16, 16, -1.0, 1.0,
                                                   probe_rng));
    ASSERT_TRUE(h.ok());
    entry_bytes = probe.bytes();
    ASSERT_GT(entry_bytes, 0u);
  }
  OpCacheConfig config;
  config.byte_budget = 2 * entry_bytes;
  OperandCache cache(launcher, small_aabft(true), config, &stats);
  Rng rng(23);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 16, -2.0, 2.0, rng);
  const Matrix c = uniform_matrix(16, 16, -3.0, 3.0, rng);

  auto ha = cache.register_operand(a);
  auto hb = cache.register_operand(b);
  ASSERT_TRUE(ha.ok() && hb.ok());
  ASSERT_LE(cache.bytes(), config.byte_budget);

  // Touch a so b is the LRU victim when c arrives.
  { auto pin = cache.acquire(*ha); ASSERT_TRUE(pin != nullptr); }
  auto hc = cache.register_operand(c);
  ASSERT_TRUE(hc.ok());
  EXPECT_LE(cache.bytes(), config.byte_budget);
  EXPECT_TRUE(cache.acquire(*ha, /*count_hit=*/false) != nullptr);
  EXPECT_TRUE(cache.acquire(*hb, /*count_hit=*/false) == nullptr)
      << "the least-recently-used unpinned entry must be the victim";
  EXPECT_GE(stats.snapshot().opcache_evictions, 1u);

  // Pin everything; a further registration must overflow the budget rather
  // than evict a pinned entry, and the pinned entries must stay acquirable.
  auto pa = cache.acquire(*ha, false);
  auto pc = cache.acquire(*hc, false);
  ASSERT_TRUE(pa != nullptr && pc != nullptr);
  Matrix d = uniform_matrix(16, 16, -4.0, 4.0, rng);
  auto hd = cache.register_operand(d);
  ASSERT_TRUE(hd.ok());
  EXPECT_GT(cache.bytes(), config.byte_budget)
      << "with every entry pinned the cache tolerates transient over-budget";
  EXPECT_TRUE(cache.acquire(*ha, false) != nullptr);
  EXPECT_TRUE(cache.acquire(*hc, false) != nullptr);

  // Releasing the pins lets the next registration shrink back under budget.
  pa.reset();
  pc.reset();
  Matrix e = uniform_matrix(16, 16, -5.0, 5.0, rng);
  auto he = cache.register_operand(e);
  ASSERT_TRUE(he.ok());
  EXPECT_LE(cache.bytes(), config.byte_budget);
}

TEST(OpCache, OversizedEntryIsRefused) {
  Launcher launcher;
  OpCacheConfig config;
  config.byte_budget = 1024;  // smaller than any 16x16 entry
  OperandCache cache(launcher, small_aabft(true), config, nullptr);
  Rng rng(24);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  auto handle = cache.register_operand(a);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code, ErrorCode::kOverloaded);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(OpCache, DisabledCacheRefusesRegistration) {
  Launcher launcher;
  OpCacheConfig config;
  config.enabled = false;
  OperandCache cache(launcher, small_aabft(true), config, nullptr);
  Rng rng(25);
  auto handle = cache.register_operand(uniform_matrix(8, 8, -1.0, 1.0, rng));
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.error().code, ErrorCode::kUnavailable);
}

TEST(OpCache, InvalidateRemovesEntryButPinsKeepStorage) {
  Launcher launcher;
  StatsBoard stats;
  OperandCache cache(launcher, small_aabft(true), OpCacheConfig{}, &stats);
  Rng rng(26);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  auto handle = cache.register_operand(a);
  ASSERT_TRUE(handle.ok());

  OperandCache::Pin pin = cache.acquire(*handle);
  ASSERT_TRUE(pin != nullptr);
  EXPECT_TRUE(cache.invalidate(*handle));
  EXPECT_FALSE(cache.invalidate(*handle)) << "second invalidate: unknown";
  EXPECT_TRUE(cache.acquire(*handle, false) == nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(stats.snapshot().opcache_invalidations, 1u);

  // The pinned snapshot stays readable after the index dropped the entry.
  EXPECT_EQ(pin->padded.rows(), 16u);
  EXPECT_EQ(pin->light.sums.rows(), 2u);
  // A re-registration of the same content gets a *new* handle: the old
  // fingerprint index entry went away with the invalidation.
  auto again = cache.register_operand(a);
  ASSERT_TRUE(again.ok());
  EXPECT_NE(*again, *handle);
}

// ---------------------------------------------------------------------------
// Preencoded multiply paths: bit-identity to the cold pipeline.

class OpCacheBitIdentity : public ::testing::TestWithParam<bool> {};

TEST_P(OpCacheBitIdentity, PreencodedMatchesColdCleanRun) {
  const bool fused = GetParam();
  Launcher launcher;
  const abft::AabftConfig aabft = small_aabft(fused);
  abft::AabftMultiplier mult(launcher, aabft);
  OperandCache cache(launcher, aabft, OpCacheConfig{}, nullptr);
  Rng rng(31);
  const Matrix a = uniform_matrix(32, 24, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(24, 16, -1.0, 1.0, rng);

  auto cold = mult.multiply(a, b);
  ASSERT_TRUE(cold.ok());

  auto handle = cache.register_operand(a);
  ASSERT_TRUE(handle.ok());
  OperandCache::Pin pin = cache.acquire(*handle);
  ASSERT_TRUE(pin != nullptr);
  auto warm = mult.multiply_preencoded(pin->pre, b);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->c, cold->c) << "cached encode must not change a single bit";
  EXPECT_EQ(warm->fused, fused);

  // Batch path, several B's sharing one preencoded A.
  const Matrix b2 = uniform_matrix(24, 16, -2.0, 2.0, rng);
  auto cold2 = mult.multiply(a, b2);
  ASSERT_TRUE(cold2.ok());
  std::vector<abft::PreencodedProblem> problems = {{&pin->pre, &b},
                                                   {&pin->pre, &b2}};
  auto batch = mult.multiply_batch_preencoded(problems);
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].ok() && batch[1].ok());
  EXPECT_EQ(batch[0]->c, cold->c);
  EXPECT_EQ(batch[1]->c, cold2->c);
}

INSTANTIATE_TEST_SUITE_P(FusedAndClassic, OpCacheBitIdentity,
                         ::testing::Values(true, false));

// ---------------------------------------------------------------------------
// The sampled cache-consistency guard.

TEST(OpCache, ConsistencyGuardThrowsOnStaleEntry) {
  Launcher launcher;
  abft::AabftConfig aabft = small_aabft(true);
  aabft.cache_verify_every = 1;  // verify every preencoded problem
  abft::AabftMultiplier mult(launcher, aabft);
  Rng rng(41);
  Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 8, -1.0, 1.0, rng);

  const abft::LightEncoded light = abft::encode_columns_light(
      launcher, a, abft::PartitionedCodec(aabft.bs), aabft.p);
  const abft::PreencodedA pre{&a, &light, nullptr};
  ASSERT_TRUE(mult.multiply_preencoded(pre, b).ok())
      << "a consistent entry must pass the guard";

  a(0, 0) += 1.0;  // the cached side-buffer is now stale
  EXPECT_THROW((void)mult.multiply_preencoded(pre, b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// StatsBoard opcache counters.

TEST(OpCacheStats, MergeAndSnapshotCoverOpcacheCounters) {
  StatsBoard board;
  StatsBoard::bump(board.opcache_hits, 5);
  StatsBoard::bump(board.opcache_misses, 3);
  StatsBoard::bump(board.opcache_registered, 2);
  StatsBoard::bump(board.opcache_evictions, 1);
  StatsBoard::bump(board.opcache_invalidations, 4);
  StatsBoard::bump(board.opcache_bytes, 1000);
  StatsBoard::drop(board.opcache_bytes, 100);
  StatsBoard::bump(board.opcache_pinned_bytes, 50);

  const ServerStats snap = board.snapshot();
  EXPECT_EQ(snap.opcache_hits, 5u);
  EXPECT_EQ(snap.opcache_misses, 3u);
  EXPECT_EQ(snap.opcache_registered, 2u);
  EXPECT_EQ(snap.opcache_evictions, 1u);
  EXPECT_EQ(snap.opcache_invalidations, 4u);
  EXPECT_EQ(snap.opcache_bytes, 900u);
  EXPECT_EQ(snap.opcache_pinned_bytes, 50u);

  ServerStats totals;
  merge_into(totals, snap);
  merge_into(totals, snap);
  EXPECT_EQ(totals.opcache_hits, 10u);
  EXPECT_EQ(totals.opcache_misses, 6u);
  EXPECT_EQ(totals.opcache_bytes, 1800u)
      << "gauges add across shards in a fleet total";

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"opcache_hits\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"opcache_bytes\": 900"), std::string::npos);
}

TEST(OpCacheStats, ConcurrentBumpsSnapshotWithoutTearing) {
  StatsBoard board;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&board] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        StatsBoard::bump(board.opcache_hits);
        StatsBoard::bump(board.opcache_bytes, 8);
        StatsBoard::drop(board.opcache_bytes, 8);
      }
    });
  // Concurrent snapshots race the writers; TSan verifies no torn reads, and
  // the monotone hit counter can never exceed the final total.
  for (int i = 0; i < 50; ++i) {
    const ServerStats snap = board.snapshot();
    EXPECT_LE(snap.opcache_hits, kThreads * kPerThread);
  }
  for (auto& w : writers) w.join();
  const ServerStats final_snap = board.snapshot();
  EXPECT_EQ(final_snap.opcache_hits, kThreads * kPerThread);
  EXPECT_EQ(final_snap.opcache_bytes, 0u);
}

// ---------------------------------------------------------------------------
// GemmServer end-to-end.

ServeConfig cached_serve_config() {
  ServeConfig config;
  config.aabft = small_aabft(true);
  config.aabft.max_block_recomputes = 1;
  return config;
}

TEST(OpCacheServe, ExplicitHandleServesBitIdenticalResults) {
  Launcher launcher;
  GemmServer server(launcher, cached_serve_config());
  Rng rng(51);
  // Non-block-multiple rows exercise the pad-at-registration path.
  const Matrix a = uniform_matrix(20, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 12, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  auto handle = server.register_operand(a);
  ASSERT_TRUE(handle.ok());

  GemmRequest request;
  request.a_handle = *handle;  // a stays empty: the handle stands in
  request.b = b;
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.trace.cache_hit);
  EXPECT_EQ(response.c.rows(), 20u);
  EXPECT_EQ(response.c, ref) << "cached path must be bit-identical";

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.opcache_hits, 1u);
  EXPECT_EQ(stats.opcache_registered, 1u);
}

TEST(OpCacheServe, InlineOperandHitsImplicitlyByFingerprint) {
  Launcher launcher;
  GemmServer server(launcher, cached_serve_config());
  Rng rng(52);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 8, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  ASSERT_TRUE(server.register_operand(a).ok());
  GemmRequest request;
  request.a = a;  // inline operand, same content as the registered entry
  request.b = b;
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();
  EXPECT_EQ(response.c, ref);
  EXPECT_TRUE(response.trace.cache_hit);
  EXPECT_GE(server.stats().opcache_hits, 1u);
}

TEST(OpCacheServe, UnknownHandleIsRefusedAtAdmission) {
  Launcher launcher;
  GemmServer server(launcher, cached_serve_config());
  Rng rng(53);
  GemmRequest request;
  request.a_handle = 777;  // never registered
  request.b = uniform_matrix(16, 8, -1.0, 1.0, rng);
  auto admitted = server.submit(std::move(request));
  ASSERT_FALSE(admitted.ok());
  EXPECT_EQ(admitted.error().code, ErrorCode::kInvalidArgument);

  // Handles stand in for GEMM A operands only.
  GemmRequest syrk;
  syrk.kind = OpKind::kSyrk;
  syrk.a_handle = 1;
  auto refused = server.submit(std::move(syrk));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, ErrorCode::kInvalidArgument);
}

TEST(OpCacheServe, HandleRequestsCoalesceIntoOneBatch) {
  Launcher launcher;
  ServeConfig config = cached_serve_config();
  config.start_paused = true;
  GemmServer server(launcher, config);
  Rng rng(54);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  auto handle = server.register_operand(a);
  ASSERT_TRUE(handle.ok());

  constexpr std::size_t kRequests = 4;
  std::vector<std::future<GemmResponse>> futures;
  std::vector<Matrix> bs;
  for (std::size_t i = 0; i < kRequests; ++i)
    bs.push_back(uniform_matrix(16, 8, -1.0, 1.0, rng));
  for (std::size_t i = 0; i < kRequests; ++i) {
    GemmRequest request;
    request.a_handle = *handle;
    request.b = bs[i];
    auto admitted = server.submit(std::move(request));
    ASSERT_TRUE(admitted.ok());
    futures.push_back(std::move(*admitted));
  }
  server.resume();
  for (std::size_t i = 0; i < kRequests; ++i) {
    const GemmResponse response = futures[i].get();
    EXPECT_EQ(response.status, ResponseStatus::kOk);
    EXPECT_TRUE(response.trace.cache_hit);
    EXPECT_EQ(response.c, naive_matmul(a, bs[i], false));
    EXPECT_EQ(response.trace.batch_size, kRequests)
        << "equal-shape requests on one handle share one dispatch";
  }
}

TEST(OpCacheServe, CachedPathIsBitIdenticalUnderFaultCampaigns) {
  Launcher launcher_cold;
  Launcher launcher_warm;
  ServeConfig cold_config = cached_serve_config();
  cold_config.opcache.enabled = false;  // every request cold-encodes
  ServeConfig warm_config = cached_serve_config();
  warm_config.aabft.cache_verify_every = 2;  // exercise the guard in-band
  GemmServer cold(launcher_cold, cold_config);
  GemmServer warm(launcher_warm, warm_config);
  Rng rng(55);
  const Matrix a = uniform_matrix(32, 24, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(24, 16, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);
  auto handle = warm.register_operand(a);
  ASSERT_TRUE(handle.ok());

  for (std::size_t nfaults : {1u, 2u, 4u, 8u}) {
    std::vector<FaultConfig> plan(nfaults);
    for (std::size_t i = 0; i < nfaults; ++i) {
      plan[i].site = FaultSite::kFinalAdd;
      plan[i].sm_id = 0;  // block 0 runs on SM 0: deterministic landing
      plan[i].module_id = i % 2;
      plan[i].error_vec = 1ULL << (50 + i);
    }

    GemmRequest cold_req;
    cold_req.a = a;
    cold_req.b = b;
    cold_req.fault_plan = plan;
    auto cold_admitted = cold.submit(std::move(cold_req));
    ASSERT_TRUE(cold_admitted.ok());
    const GemmResponse cold_resp = cold_admitted->get();

    GemmRequest warm_req;
    warm_req.a_handle = *handle;
    warm_req.b = b;
    warm_req.fault_plan = plan;
    auto warm_admitted = warm.submit(std::move(warm_req));
    ASSERT_TRUE(warm_admitted.ok());
    const GemmResponse warm_resp = warm_admitted->get();

    ASSERT_EQ(cold_resp.status, ResponseStatus::kOk) << nfaults << " faults";
    ASSERT_EQ(warm_resp.status, ResponseStatus::kOk) << nfaults << " faults";
    EXPECT_TRUE(warm_resp.trace.cache_hit);
    EXPECT_EQ(warm_resp.c, cold_resp.c)
        << "cached and cold recovery must agree bit-for-bit under " << nfaults
        << " faults";
    // Against the naive reference the repo-wide contract applies: recompute
    // rungs are bit-exact; additive checksum correction lands within
    // rounding of the true value (cf. test_serve FaultedRequestIsRepaired).
    if (warm_resp.trace.corrections == 0) {
      EXPECT_EQ(warm_resp.c, ref);
    } else {
      for (std::size_t i = 0; i < ref.rows(); ++i)
        for (std::size_t j = 0; j < ref.cols(); ++j)
          EXPECT_NEAR(warm_resp.c(i, j), ref(i, j),
                      1e-9 * std::max(1.0, std::abs(ref(i, j))));
    }
  }
}

}  // namespace
