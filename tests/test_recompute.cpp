// Transient-fault recomputation fallback tests.
#include <gtest/gtest.h>

#include <vector>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::gpusim;
using aabft::abft::AabftConfig;
using aabft::abft::AabftMultiplier;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

/// Two faults in the SAME result block cannot be localised; the recompute
/// fallback must recover (the faults are one-shot, so the re-execution is
/// clean — exactly the transient-fault scenario).
TEST(Recompute, RecoversFromUnlocalisableFaults) {
  Rng rng(1);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  std::vector<FaultConfig> faults(2);
  // Same SM, same k, modules 0 and 1: both land in block 0's tile, columns
  // 0 and 1 — same checksum block.
  faults[0].site = FaultSite::kFinalAdd;
  faults[0].sm_id = 0;
  faults[0].module_id = 0;
  faults[0].error_vec = 1ULL << 60;
  faults[1].site = FaultSite::kFinalAdd;
  faults[1].sm_id = 0;
  faults[1].module_id = 1;
  faults[1].error_vec = 1ULL << 60;
  controller.arm_many(faults);

  AabftConfig config;
  config.bs = 32;  // one checksum block spans the whole 64x64? no: 2x2 blocks
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_EQ(controller.fired_count(), 2u);
  EXPECT_TRUE(result.error_detected());
  EXPECT_TRUE(result.recheck_clean);
  EXPECT_FALSE(result.uncorrectable);
  EXPECT_GE(result.recomputations, 1u);
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(Recompute, DisabledFallbackReportsUncorrectable) {
  Rng rng(2);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  std::vector<FaultConfig> faults(2);
  faults[0].site = FaultSite::kFinalAdd;
  faults[0].module_id = 0;
  faults[0].error_vec = 1ULL << 60;
  faults[1].site = FaultSite::kFinalAdd;
  faults[1].module_id = 1;
  faults[1].error_vec = 1ULL << 60;
  controller.arm_many(faults);

  AabftConfig config;
  config.bs = 32;
  config.max_recompute_attempts = 0;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_EQ(controller.fired_count(), 2u);
  EXPECT_TRUE(result.error_detected());
  EXPECT_EQ(result.recomputations, 0u);
  // Both faults in one block: localisation must have failed.
  EXPECT_TRUE(result.uncorrectable);
  EXPECT_FALSE(result.recheck_clean);
}

TEST(Recompute, NotTriggeredWhenCorrectionSucceeds) {
  Rng rng(3);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.k_injection = 4;
  fault.error_vec = 1ULL << 61;
  controller.arm(fault);
  AabftConfig config;
  config.bs = 16;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);
  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.recheck_clean);
  EXPECT_EQ(result.recomputations, 0u);
  EXPECT_EQ(result.corrections.size(), 1u);
}

TEST(Recompute, CleanRunNeverRecomputes) {
  Rng rng(4);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  Launcher launcher;
  AabftConfig config;
  config.bs = 16;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_EQ(result.recomputations, 0u);
}

}  // namespace
