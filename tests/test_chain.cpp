// Protected product chain tests.
#include <gtest/gtest.h>

#include "abft/chain.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

AabftConfig chain_config() {
  AabftConfig config;
  config.bs = 16;
  return config;
}

TEST(Chain, SingleMatrixIsIdentityOperation) {
  Rng rng(1);
  const Matrix a = uniform_matrix(8, 8, -1.0, 1.0, rng);
  Launcher launcher;
  const ChainResult result = multiply_chain(launcher, {&a}, chain_config());
  EXPECT_EQ(result.c, a);
  EXPECT_EQ(result.multiplies, 0u);
  EXPECT_TRUE(result.ok);
}

TEST(Chain, ThreeLinkChainMatchesHostEvaluation) {
  Rng rng(2);
  const Matrix a = uniform_matrix(24, 40, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(40, 18, -1.0, 1.0, rng);
  const Matrix c = uniform_matrix(18, 30, -1.0, 1.0, rng);
  Launcher launcher;
  const ChainResult result =
      multiply_chain(launcher, {&a, &b, &c}, chain_config());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.multiplies, 2u);
  EXPECT_EQ(result.faults_detected, 0u);
  const Matrix ref = naive_matmul(naive_matmul(a, b, false), c, false);
  // Padding in intermediate links keeps values identical: padded rows/cols
  // are zero and stripped before the next link.
  EXPECT_EQ(result.c, ref);
  EXPECT_EQ(result.c.rows(), 24u);
  EXPECT_EQ(result.c.cols(), 30u);
}

TEST(Chain, FaultInOneLinkIsAbsorbed) {
  Rng rng(3);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix c = uniform_matrix(32, 32, -1.0, 1.0, rng);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.k_injection = 6;
  fault.error_vec = 1ULL << 61;
  controller.arm(fault);

  const ChainResult result =
      multiply_chain(launcher, {&a, &b, &c}, chain_config());
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.faults_detected, 1u);
  EXPECT_GE(result.corrections + result.recomputations, 1u);
  const Matrix ref = naive_matmul(naive_matmul(a, b, false), c, false);
  EXPECT_LT(result.c.max_abs_diff(ref), 1e-9);
}

TEST(Chain, ValidatesShapesAndInputs) {
  Rng rng(4);
  const Matrix a = uniform_matrix(8, 8, -1.0, 1.0, rng);
  const Matrix bad = uniform_matrix(9, 9, -1.0, 1.0, rng);
  Launcher launcher;
  EXPECT_THROW((void)multiply_chain(launcher, {}, chain_config()),
               std::invalid_argument);
  EXPECT_THROW((void)multiply_chain(launcher, {&a, &bad}, chain_config()),
               std::invalid_argument);
  EXPECT_THROW((void)multiply_chain(launcher, {&a, nullptr}, chain_config()),
               std::invalid_argument);
}

}  // namespace
