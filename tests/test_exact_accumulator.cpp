// Unit tests for the Kulisch superaccumulator (the GMP substitute).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/rng.hpp"
#include "fp/bigfloat.hpp"
#include "fp/exact_accumulator.hpp"
#include "fp/exact_dot.hpp"

namespace {

using aabft::Rng;
using aabft::fp::BigFloat;
using aabft::fp::ExactAccumulator;

TEST(ExactAccumulator, StartsAtZero) {
  ExactAccumulator acc;
  EXPECT_TRUE(acc.is_zero());
  EXPECT_EQ(acc.sign(), 0);
  EXPECT_EQ(acc.round_to_double(), 0.0);
}

TEST(ExactAccumulator, SingleValueRoundTrips) {
  for (const double v : {1.0, -1.0, 0.5, 1e-300, -1e300, 3.141592653589793,
                         5e-324, std::numeric_limits<double>::max(),
                         -std::numeric_limits<double>::denorm_min()}) {
    ExactAccumulator acc;
    acc.add(v);
    EXPECT_EQ(acc.round_to_double(), v) << "value " << v;
  }
}

TEST(ExactAccumulator, AddThenSubCancelsExactly) {
  Rng rng(7);
  ExactAccumulator acc;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-1e10, 1e10);
    values.push_back(v);
    acc.add(v);
  }
  for (const double v : values) acc.sub(v);
  EXPECT_TRUE(acc.is_zero());
}

TEST(ExactAccumulator, CatastrophicCancellationIsExact) {
  // 1e16 + 1 - 1e16 == 1 exactly in the accumulator (but not in doubles).
  ExactAccumulator acc;
  acc.add(1e16);
  acc.add(1.0);
  acc.sub(1e16);
  EXPECT_EQ(acc.round_to_double(), 1.0);
}

TEST(ExactAccumulator, ProductsAreExact) {
  // (1 + 2^-40)^2 = 1 + 2^-39 + 2^-80: not representable in one double.
  const double x = 1.0 + std::ldexp(1.0, -40);
  ExactAccumulator acc;
  acc.add_product(x, x);
  acc.sub(1.0);
  acc.sub(std::ldexp(1.0, -39));
  EXPECT_EQ(acc.round_to_double(), std::ldexp(1.0, -80));
}

TEST(ExactAccumulator, SubProductInvertsAddProduct) {
  Rng rng(11);
  ExactAccumulator acc;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(-1e5, 1e5);
    const double b = rng.uniform(-1e5, 1e5);
    acc.add_product(a, b);
    acc.sub_product(a, b);
  }
  EXPECT_TRUE(acc.is_zero());
}

TEST(ExactAccumulator, MatchesBigFloatOnRandomSums) {
  Rng rng(42);
  for (int rep = 0; rep < 20; ++rep) {
    ExactAccumulator acc;
    BigFloat ref;
    for (int i = 0; i < 100; ++i) {
      const double v = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-20, 20));
      acc.add(v);
      ref += BigFloat::from_double(v);
    }
    EXPECT_EQ(acc.round_to_double(), ref.to_double());
  }
}

TEST(ExactAccumulator, MatchesBigFloatOnRandomDotProducts) {
  Rng rng(43);
  for (int rep = 0; rep < 10; ++rep) {
    ExactAccumulator acc;
    BigFloat ref;
    for (int i = 0; i < 50; ++i) {
      const double a = rng.uniform(-100.0, 100.0);
      const double b = rng.uniform(-100.0, 100.0);
      acc.add_product(a, b);
      ref += BigFloat::from_double(a) * BigFloat::from_double(b);
    }
    EXPECT_EQ(acc.round_to_double(), ref.to_double());
  }
}

TEST(ExactAccumulator, CompareOrdersValues) {
  ExactAccumulator small;
  ExactAccumulator large;
  small.add(1.0);
  large.add(2.0);
  EXPECT_LT(small.compare(large), 0);
  EXPECT_GT(large.compare(small), 0);
  EXPECT_EQ(small.compare(small), 0);

  ExactAccumulator negative;
  negative.add(-5.0);
  EXPECT_LT(negative.compare(small), 0);
  EXPECT_EQ(negative.sign(), -1);
}

TEST(ExactAccumulator, NegateFlipsSign) {
  ExactAccumulator acc;
  acc.add(3.5);
  acc.negate();
  EXPECT_EQ(acc.round_to_double(), -3.5);
  acc.negate();
  EXPECT_EQ(acc.round_to_double(), 3.5);
}

TEST(ExactAccumulator, AccumulatorAdditionMatchesElementwise) {
  Rng rng(77);
  ExactAccumulator a;
  ExactAccumulator b;
  ExactAccumulator both;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(-1e8, 1e8);
    const double y = rng.uniform(-1e8, 1e8);
    a.add(x);
    b.add(y);
    both.add(x);
    both.add(y);
  }
  a += b;
  EXPECT_EQ(a.compare(both), 0);
}

TEST(ExactAccumulator, RoundMinusGivesExactRoundingError) {
  // Sum 0.1 ten times: the double result differs from 1.0 by a known tiny
  // amount; round_minus must expose exactly that residual.
  ExactAccumulator acc;
  double fp_sum = 0.0;
  for (int i = 0; i < 10; ++i) {
    acc.add(0.1);
    fp_sum += 0.1;
  }
  const double residual = acc.round_minus(fp_sum);
  EXPECT_NE(residual, 0.0);
  EXPECT_LT(std::fabs(residual), 1e-15);
  // Cross-check against BigFloat.
  BigFloat ref;
  for (int i = 0; i < 10; ++i) ref += BigFloat::from_double(0.1);
  ref -= BigFloat::from_double(fp_sum);
  EXPECT_EQ(residual, ref.to_double());
}

TEST(ExactAccumulator, RejectsNonFinite) {
  ExactAccumulator acc;
  EXPECT_THROW(acc.add(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(acc.add(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(ExactDot, MatchesBigFloatAndDetectsRoundingError) {
  Rng rng(4242);
  std::vector<double> a(300);
  std::vector<double> b(300);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);

  const double naive = aabft::fp::fp_dot(a, b, /*use_fma=*/false);
  const double exact = aabft::fp::exact_dot_rounded(a, b);

  BigFloat ref;
  for (std::size_t i = 0; i < a.size(); ++i)
    ref += BigFloat::from_double(a[i]) * BigFloat::from_double(b[i]);
  EXPECT_EQ(exact, ref.to_double());

  const double err = aabft::fp::rounding_error_of_dot(a, b, naive);
  EXPECT_GE(err, 0.0);
  EXPECT_LT(err, 1e-12);  // tiny but almost surely non-zero for n=300
}

TEST(ExactDot, ErrorOfExactResultIsZero) {
  std::vector<double> a{1.0, 2.0, 4.0, 8.0};
  std::vector<double> b{0.5, 0.25, 0.125, 0.0625};
  // All products and the sum are exactly representable.
  const double dot = aabft::fp::fp_dot(a, b, false);
  EXPECT_EQ(aabft::fp::rounding_error_of_dot(a, b, dot), 0.0);
}

}  // namespace
