// Standalone p-max scan kernel tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/encoder.hpp"
#include "abft/pmax_scan.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

std::vector<double> brute_top_values(const std::vector<double>& v,
                                     std::size_t p) {
  std::vector<double> sorted;
  for (const double x : v) sorted.push_back(std::fabs(x));
  std::sort(sorted.rbegin(), sorted.rend());
  sorted.resize(std::min(p, sorted.size()));
  return sorted;
}

class PMaxScanSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {};

TEST_P(PMaxScanSweep, RowsMatchBruteForce) {
  const auto [rows, cols, p, chunk] = GetParam();
  Rng rng(rows * 13 + cols + p);
  const Matrix m = uniform_matrix(rows, cols, -9.0, 9.0, rng);
  aabft::gpusim::Launcher launcher;
  const PMaxTable table = collect_row_pmax(launcher, m, p, chunk);
  ASSERT_EQ(table.size(), rows);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(m.row(r).begin(), m.row(r).end());
    const auto expected = brute_top_values(row, p);
    ASSERT_EQ(table[r].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(table[r][i].value, expected[i]);
      EXPECT_EQ(std::fabs(row[table[r][i].index]), table[r][i].value);
    }
  }
}

TEST_P(PMaxScanSweep, ColsMatchBruteForce) {
  const auto [rows, cols, p, chunk] = GetParam();
  Rng rng(rows + cols * 17 + p);
  const Matrix m = uniform_matrix(rows, cols, -9.0, 9.0, rng);
  aabft::gpusim::Launcher launcher;
  const PMaxTable table = collect_col_pmax(launcher, m, p, chunk);
  ASSERT_EQ(table.size(), cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const auto col = m.col(c);
    const auto expected = brute_top_values(col, p);
    ASSERT_EQ(table[c].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(table[c][i].value, expected[i]);
      EXPECT_EQ(std::fabs(col[table[c][i].index]), table[c][i].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PMaxScanSweep,
    ::testing::Values(std::make_tuple(16, 16, 2, 32),
                      std::make_tuple(10, 70, 3, 32),   // ragged chunks
                      std::make_tuple(70, 10, 1, 16),
                      std::make_tuple(5, 5, 4, 2),      // chunk smaller than dim
                      std::make_tuple(33, 47, 2, 8)));

TEST(PMaxScan, AgreesWithEncoderForDataRows) {
  // The standalone scan must agree with the fused encode kernel's lists on
  // the data rows (the encoder additionally tracks checksum vectors).
  Rng rng(3);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(16, 16, -2.0, 2.0, rng);
  aabft::gpusim::Launcher launcher;
  const auto standalone = collect_row_pmax(launcher, a, 2, 8);
  const auto fused = encode_columns(launcher, a, codec, 2);
  for (std::size_t i = 0; i < 16; ++i) {
    const PMaxList& lhs = standalone[i];
    const PMaxList& rhs = fused.pmax[codec.enc_index(i)];
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t k = 0; k < lhs.size(); ++k) {
      EXPECT_EQ(lhs[k].value, rhs[k].value) << "row " << i;
      EXPECT_EQ(lhs[k].index, rhs[k].index) << "row " << i;
    }
  }
}

TEST(PMaxScan, CountsWork) {
  Rng rng(4);
  const Matrix m = uniform_matrix(8, 8, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  (void)collect_row_pmax(launcher, m, 2, 8);
  ASSERT_EQ(launcher.launch_log().size(), 2u);
  EXPECT_EQ(launcher.launch_log()[0].kernel_name, "pmax_rows");
  EXPECT_EQ(launcher.launch_log()[1].kernel_name, "reduce_pmax_rows");
  EXPECT_GT(launcher.launch_log()[0].counters.compares, 0u);
}

TEST(PMaxScan, RejectsInvalidParams) {
  Matrix m(4, 4);
  aabft::gpusim::Launcher launcher;
  EXPECT_THROW((void)collect_row_pmax(launcher, m, 0), std::invalid_argument);
  EXPECT_THROW((void)collect_col_pmax(launcher, m, 2, 0),
               std::invalid_argument);
}

}  // namespace
