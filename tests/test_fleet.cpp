// Fleet subsystem tests: erasure-coded operand store (bit-identical
// single-shard reconstruction, double-fault refusal), shard router placement,
// device-health EWMA fencing, work-stealing shard queues, and FleetServer
// end-to-end — clean traffic, forced mid-run device failure with replay +
// parity reconstruction and zero wrong responses, autonomous fencing of a
// chaos-corrupted device, and shutdown with in-flight work losing nothing.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "fleet/fleet_server.hpp"
#include "fleet/health.hpp"
#include "fleet/parity.hpp"
#include "fleet/router.hpp"
#include "fleet/steal.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft::fleet;
using aabft::ErrorCode;
using aabft::Rng;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;
namespace serve = aabft::serve;

// Element-wise check for corrected (not bit-exact) responses: at most
// `budget` elements may deviate, each within a tight relative tolerance —
// the serve soak's verification contract.
void expect_close(const Matrix& got, const Matrix& want, std::size_t budget) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  std::size_t deviations = 0;
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j) {
      const double g = got(i, j), w = want(i, j);
      if (g == w) continue;
      const double rel = std::abs(g - w) / std::max(1.0, std::abs(w));
      EXPECT_LT(rel, 1e-9) << "at (" << i << "," << j << ")";
      ++deviations;
    }
  EXPECT_LE(deviations, budget);
}

// ---- OperandStore ----------------------------------------------------------

TEST(OperandStore, RoundTripIsBitIdentical) {
  Rng rng(71);
  OperandStore store(3);
  const Matrix m = uniform_matrix(5, 7, -10.0, 10.0, rng);
  const auto handle = store.put(m);
  auto fetched = store.get(handle);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->matrix, m);
  EXPECT_FALSE(fetched->reconstructed);
  EXPECT_EQ(store.reconstructions(), 0u);

  auto dims = store.dims(handle);
  ASSERT_TRUE(dims.ok());
  EXPECT_EQ(dims->first, 5u);
  EXPECT_EQ(dims->second, 7u);
  EXPECT_FALSE(store.get(handle + 1000).ok());
}

TEST(OperandStore, ReconstructsFencedStripeBitIdentical) {
  Rng rng(73);
  OperandStore store(4);
  // Several operands so the rotating parity shard cycles; odd extents so the
  // tail stripe is zero-padded.
  std::vector<Matrix> originals;
  std::vector<std::uint64_t> handles;
  for (int i = 0; i < 6; ++i) {
    originals.push_back(uniform_matrix(9 + i, 5, -1e6, 1e6, rng));
    handles.push_back(store.put(originals.back()));
  }

  store.fence_shard(1);
  bool any_reconstructed = false;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    auto fetched = store.get(handles[i]);
    ASSERT_TRUE(fetched.ok()) << "handle " << handles[i];
    // The acceptance bar: reconstruction is BIT-identical, not just close.
    EXPECT_EQ(fetched->matrix, originals[i]) << "handle " << handles[i];
    any_reconstructed |= fetched->reconstructed;
  }
  EXPECT_TRUE(any_reconstructed);
  EXPECT_GT(store.reconstructions(), 0u);
}

TEST(OperandStore, RefusesWhenTwoShardsAreLost) {
  Rng rng(79);
  OperandStore store(3);
  const auto handle = store.put(uniform_matrix(8, 8, -1.0, 1.0, rng));
  store.fence_shard(0);
  ASSERT_TRUE(store.get(handle).ok()) << "single loss must reconstruct";
  store.fence_shard(2);
  auto fetched = store.get(handle);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.error().code, ErrorCode::kUnavailable);
}

// ---- ShardRouter -----------------------------------------------------------

TEST(ShardRouter, PicksLeastEffectiveLoadAndSkipsFenced) {
  ShardRouter router;
  serve::ShapeKey key{aabft::baselines::OpKind::kGemm, 64, 64, 64};
  std::vector<ShardLoad> loads(3);
  loads[0].queued = 4;
  loads[1].queued = 1;
  loads[2].queued = 0;
  std::vector<double> avail = {1.0, 1.0, 0.0};  // shard 2 fenced
  auto pick = router.route(key, loads, avail);
  ASSERT_TRUE(pick.has_value());
  EXPECT_EQ(*pick, 1u) << "emptiest live shard wins; fenced shard skipped";

  avail = {0.0, 0.0, 0.0};
  EXPECT_FALSE(router.route(key, loads, avail).has_value())
      << "all fenced -> no placement";
}

TEST(ShardRouter, ShapeAffinityHoldsUntilLoadSkews) {
  ShardRouter router;
  serve::ShapeKey key{aabft::baselines::OpKind::kGemm, 32, 32, 32};
  std::vector<ShardLoad> loads(3);
  std::vector<double> avail = {1.0, 1.0, 1.0};
  loads[0].queued = 5;
  loads[1].queued = 3;
  loads[2].queued = 4;
  ASSERT_EQ(router.route(key, loads, avail).value(), 1u);

  // Mildly busier (5+1 vs best 3+1, within the 1.5x slack): affinity keeps
  // the shape on shard 1 so batches coalesce.
  loads[1].queued = 4;
  loads[2].queued = 3;
  EXPECT_EQ(router.route(key, loads, avail).value(), 1u);

  // Far busier than the best candidate: affinity yields.
  loads[1].queued = 10;
  EXPECT_EQ(router.route(key, loads, avail).value(), 2u);

  // A health penalty also breaks affinity: load divides by availability.
  loads[1].queued = 3;
  loads[2].queued = 3;
  ASSERT_EQ(router.route(key, loads, avail).value(), 2u);
  avail[2] = 0.3;
  EXPECT_NE(router.route(key, loads, avail).value(), 2u);
}

// ---- DeviceHealth ----------------------------------------------------------

TEST(DeviceHealth, CorrectionSpikeFencesAfterMinObservations) {
  HealthConfig config;
  config.alpha = 0.2;
  config.min_observations = 8;
  DeviceHealth health(config);

  Observation corrected;
  corrected.corrected = true;
  for (std::uint64_t i = 0; i < config.min_observations - 1; ++i) {
    health.observe(corrected);
    EXPECT_NE(health.state(), HealthState::kFenced)
        << "must not fence before min_observations";
  }
  // Rates are far past the threshold by now; the next observation fences.
  health.observe(corrected);
  EXPECT_EQ(health.state(), HealthState::kFenced);
  EXPECT_EQ(health.availability(), 0.0);

  // Latched: a run of clean observations does not resurrect the device.
  for (int i = 0; i < 100; ++i) health.observe(Observation{});
  EXPECT_EQ(health.state(), HealthState::kFenced);
}

TEST(DeviceHealth, BackgroundCorrectionsDegradeButRecover) {
  HealthConfig config;
  config.alpha = 0.25;
  config.min_observations = 1000;  // rate-fencing effectively off
  DeviceHealth health(config);

  Observation corrected;
  corrected.corrected = true;
  for (int i = 0; i < 10; ++i) health.observe(corrected);
  EXPECT_EQ(health.state(), HealthState::kDegraded);
  EXPECT_LT(health.availability(), config.degrade_score);

  for (int i = 0; i < 40; ++i) health.observe(Observation{});
  EXPECT_EQ(health.state(), HealthState::kHealthy);
  EXPECT_GT(health.availability(), 0.9);
}

TEST(DeviceHealth, FailuresWeighHeavierThanCorrections) {
  DeviceHealth health;
  Observation failed;
  failed.ok = false;
  Observation corrected;
  corrected.corrected = true;
  DeviceHealth corrections_only;
  health.observe(failed);
  corrections_only.observe(corrected);
  EXPECT_LT(health.availability(), corrections_only.availability());
}

// ---- ShardQueues -----------------------------------------------------------

TEST(ShardQueues, OwnQueueIsFifoAndStealTakesDeepestSiblingTail) {
  ShardQueues<int> queues(3, 16);
  ASSERT_TRUE(queues.try_push(0, 10));
  ASSERT_TRUE(queues.try_push(0, 11));
  ASSERT_TRUE(queues.try_push(1, 20));
  ASSERT_TRUE(queues.try_push(1, 21));
  ASSERT_TRUE(queues.try_push(1, 22));

  const auto ms = std::chrono::microseconds(1000);
  auto own = queues.pop(0, ms);
  ASSERT_TRUE(own.has_value());
  EXPECT_EQ(own->item, 10);  // FIFO from the owner's front
  EXPECT_FALSE(own->stolen);

  // Shard 2 is empty: it steals from the deepest sibling (1), from the tail.
  auto stolen = queues.pop(2, ms);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->item, 22);
  EXPECT_TRUE(stolen->stolen);
  EXPECT_EQ(queues.steals(), 1u);

  // allow_steal = false starves instead.
  EXPECT_FALSE(queues.pop(2, std::chrono::microseconds(100), false));
}

TEST(ShardQueues, CapacityDrainAndCloseSemantics) {
  ShardQueues<int> queues(3, 2);
  ASSERT_TRUE(queues.try_push(0, 1));
  ASSERT_TRUE(queues.try_push(0, 2));
  EXPECT_FALSE(queues.try_push(0, 3)) << "per-shard bound enforced";
  ASSERT_TRUE(queues.try_push(1, 4));

  auto drained = queues.drain_shard(0);
  EXPECT_EQ(drained, (std::vector<int>{1, 2}));
  EXPECT_EQ(queues.depth(0), 0u);
  EXPECT_EQ(queues.total_depth(), 1u);

  queues.close();
  EXPECT_FALSE(queues.try_push(0, 5)) << "closed queues refuse pushes";
  auto last = queues.pop(1, std::chrono::microseconds(1000));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->item, 4);  // drains after close
  EXPECT_FALSE(queues.pop(1, std::chrono::microseconds(1000)));
}

// ---- FleetServer end-to-end ------------------------------------------------

FleetConfig small_fleet_config() {
  FleetConfig config;
  config.devices = 3;
  config.workers_per_device = 2;
  config.serve.batch.linger = std::chrono::microseconds(50);
  return config;
}

serve::GemmRequest gemm_request(const Matrix& a, const Matrix& b) {
  serve::GemmRequest request;
  request.kind = aabft::baselines::OpKind::kGemm;
  request.a = a;
  request.b = b;
  return request;
}

TEST(FleetServer, CleanTrafficSpreadsAndCompletes) {
  Rng rng(83);
  const Matrix a = uniform_matrix(48, 48, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(48, 48, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  FleetServer fleet(small_fleet_config());
  constexpr std::size_t kRequests = 24;
  std::vector<std::future<FleetResponse>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    FleetRequest req;
    req.request = gemm_request(a, b);
    auto submitted = fleet.submit(std::move(req));
    ASSERT_TRUE(submitted.ok()) << submitted.error().message;
    futures.push_back(std::move(*submitted));
  }
  for (auto& fut : futures) {
    FleetResponse resp = fut.get();
    EXPECT_EQ(resp.response.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(resp.response.c, ref) << "fault-free GEMM is bit-identical";
    EXPECT_FALSE(resp.operands_reconstructed);
  }
  fleet.stop();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.totals.completed, kRequests);
  EXPECT_EQ(stats.totals.failed, 0u);
  EXPECT_EQ(stats.fenced_devices, 0u);
  std::size_t shards_used = 0;
  for (const auto& shard : stats.shards)
    if (shard.routed > 0) ++shards_used;
  EXPECT_GE(shards_used, 2u) << "router spread load over the fleet";
  const std::string json = fleet.telemetry_json();
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet_e2e_ns\""), std::string::npos);
}

TEST(FleetServer, ForceFailedDeviceReplaysAndReconstructsOperands) {
  Rng rng(89);
  const Matrix a = uniform_matrix(48, 48, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(48, 48, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  FleetServer fleet(small_fleet_config());
  const auto a_handle = fleet.register_operand(a);
  const auto b_handle = fleet.register_operand(b);

  const auto submit_one = [&] {
    FleetRequest req;
    req.request.kind = aabft::baselines::OpKind::kGemm;
    req.a_handle = a_handle;
    req.b_handle = b_handle;
    auto submitted = fleet.submit(std::move(req));
    EXPECT_TRUE(submitted.ok()) << submitted.error().message;
    return std::move(*submitted);
  };

  std::vector<std::future<FleetResponse>> before, after;
  for (int i = 0; i < 12; ++i) before.push_back(submit_one());
  // Mid-run abrupt device loss, with work queued and in flight.
  fleet.force_fail(0);
  for (int i = 0; i < 12; ++i) after.push_back(submit_one());

  bool any_reconstructed = false;
  const auto check = [&](std::future<FleetResponse>& fut, bool post_fence) {
    FleetResponse resp = fut.get();
    ASSERT_EQ(resp.response.status, serve::ResponseStatus::kOk)
        << resp.response.diagnosis;
    EXPECT_EQ(resp.response.c, ref)
        << "zero wrong responses across a device loss";
    if (post_fence)
      EXPECT_NE(resp.shard, 0u)
          << "post-fence results must not come from the fenced device";
    any_reconstructed |= resp.operands_reconstructed;
  };
  // Pre-fence responses may have been trustworthily served by shard 0
  // before the fence landed; post-fence ones must avoid it entirely.
  for (auto& fut : before) check(fut, false);
  for (auto& fut : after) check(fut, true);
  EXPECT_TRUE(fleet.fenced(0));
  EXPECT_TRUE(any_reconstructed)
      << "post-fence requests rebuilt striped operands from parity";
  fleet.stop();

  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.fenced_devices, 1u);
  EXPECT_GT(stats.reconstructions, 0u);
  EXPECT_EQ(stats.shards[0].state, HealthState::kFenced);
  EXPECT_EQ(stats.totals.failed, 0u);
}

TEST(FleetServer, AutonomouslyFencesChaosCorruptedDevice) {
  Rng rng(97);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  FleetConfig config = small_fleet_config();
  config.health.alpha = 0.25;
  config.health.min_observations = 6;
  // Keep availability near 1 until the fence trips, so the router's shape
  // affinity keeps feeding the sick device instead of quietly draining it —
  // the test wants the *fence* to act, not load shedding.
  config.health.correction_weight = 0.1;
  FleetServer fleet(config);
  // Device 0's "hardware" goes bad: every request dispatched there takes an
  // exponent-flip fault. A-ABFT corrects each one; the health model watches
  // the correction-rate spike and fences the device autonomously.
  fleet.inject_device_faults(0, 1);

  std::vector<std::future<FleetResponse>> futures;
  for (int round = 0; round < 40 && !fleet.fenced(0); ++round) {
    FleetRequest req;
    req.request = gemm_request(a, b);
    auto submitted = fleet.submit(std::move(req));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(*submitted));
    futures.back().wait();
  }
  EXPECT_TRUE(fleet.fenced(0))
      << "correction-rate spike must fence the device";
  for (auto& fut : futures) {
    FleetResponse resp = fut.get();
    ASSERT_EQ(resp.response.status, serve::ResponseStatus::kOk);
    // Corrected responses may deviate by checksum-repair arithmetic on at
    // most the corrected elements; everything else is bit-exact.
    expect_close(resp.response.c, ref,
                 resp.response.trace.corrections + 1);
  }
  fleet.stop();
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.fenced_devices, 1u);
  EXPECT_GT(stats.totals.corrected, 0u);
  EXPECT_EQ(stats.totals.failed, 0u);
}

TEST(FleetServer, ShutdownWithInflightWorkLosesNoRequests) {
  Rng rng(101);
  const Matrix a = uniform_matrix(48, 48, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(48, 48, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  FleetConfig config = small_fleet_config();
  config.inflight_window = 2;  // force queueing (and therefore stealing)
  FleetServer fleet(config);

  constexpr std::size_t kRequests = 32;
  std::vector<std::future<FleetResponse>> futures;
  for (std::size_t i = 0; i < kRequests; ++i) {
    FleetRequest req;
    req.request = gemm_request(a, b);
    auto submitted = fleet.submit(std::move(req));
    ASSERT_TRUE(submitted.ok()) << submitted.error().message;
    futures.push_back(std::move(*submitted));
  }
  // Immediate shutdown: queued and in-flight (possibly stolen) work must all
  // still resolve — drain semantics, not abandonment.
  fleet.stop();
  std::size_t completed = 0;
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "stop() returned with an unresolved request";
    FleetResponse resp = fut.get();
    EXPECT_EQ(resp.response.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(resp.response.c, ref);
    ++completed;
  }
  EXPECT_EQ(completed, kRequests);
  EXPECT_EQ(fleet.stats().totals.completed, kRequests);
}

TEST(FleetServer, ShardLossInvalidatesServeCacheEntries) {
  Rng rng(97);
  const Matrix a = uniform_matrix(48, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 16, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  FleetServer fleet(small_fleet_config());
  const auto a_handle = fleet.register_operand(a);
  EXPECT_EQ(fleet.register_operand(a), a_handle)
      << "content-identical registration dedups to the existing handle";
  EXPECT_GE(fleet.stats().operand_dedups, 1u);

  const auto submit_burst = [&](std::size_t n) {
    std::vector<std::future<FleetResponse>> futures;
    for (std::size_t i = 0; i < n; ++i) {
      FleetRequest req;
      req.request.kind = aabft::baselines::OpKind::kGemm;
      req.request.b = b;
      req.a_handle = a_handle;
      auto submitted = fleet.submit(std::move(req));
      EXPECT_TRUE(submitted.ok()) << submitted.error().message;
      futures.push_back(std::move(*submitted));
    }
    return futures;
  };
  const auto drain = [&](std::vector<std::future<FleetResponse>>& futures) {
    for (auto& fut : futures) {
      FleetResponse resp = fut.get();
      ASSERT_EQ(resp.response.status, serve::ResponseStatus::kOk)
          << resp.response.diagnosis;
      EXPECT_EQ(resp.response.c, ref)
          << "zero wrong responses across the shard loss";
    }
  };

  // Warm phase: the handle's encode lands in at least one shard's serve
  // cache and later requests hit it.
  auto warm = submit_burst(16);
  drain(warm);
  const FleetStats warm_stats = fleet.stats();
  EXPECT_GE(warm_stats.totals.opcache_registered, 1u);
  EXPECT_GE(warm_stats.totals.opcache_hits, 1u);

  // Handle 0's parity stripe is on shard 0; its data stripes are on shards
  // 1 and 2. Fence a data-stripe shard that leaves a cache-holding shard
  // alive: post-fence fetches then reconstruct A from parity, and every
  // surviving shard with a pre-fence cache entry must invalidate it.
  const std::size_t victim =
      warm_stats.shards[1].server.opcache_registered > 0 ? 2 : 1;
  fleet.force_fail(victim);

  auto after = submit_burst(16);
  drain(after);
  fleet.stop();

  const FleetStats stats = fleet.stats();
  EXPECT_TRUE(fleet.fenced(victim));
  EXPECT_GT(stats.reconstructions, 0u)
      << "the lost data stripe was rebuilt from parity";
  EXPECT_GE(stats.totals.opcache_invalidations, 1u)
      << "a reconstructed operand must invalidate surviving shards' cached "
         "encodes before re-registering";
  EXPECT_EQ(stats.totals.failed, 0u);
}

TEST(FleetServer, RefusalsAreValues) {
  FleetServer fleet(small_fleet_config());
  FleetRequest unknown;
  unknown.request.kind = aabft::baselines::OpKind::kGemm;
  unknown.a_handle = 12345;  // never registered
  auto refused = fleet.submit(std::move(unknown));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, ErrorCode::kInvalidArgument);

  fleet.force_fail(0);
  fleet.force_fail(1);
  fleet.force_fail(2);
  Rng rng(103);
  FleetRequest req;
  req.request = gemm_request(uniform_matrix(16, 16, -1.0, 1.0, rng),
                             uniform_matrix(16, 16, -1.0, 1.0, rng));
  auto dead = fleet.submit(std::move(req));
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, ErrorCode::kUnavailable);
  fleet.stop();
}

}  // namespace
