// Detection-boundary property tests: a deviation just beyond the computed
// epsilon must be flagged, one comfortably below must not — across block
// positions, sizes and input classes. This pins the comparison logic (and
// its NaN-awareness) to the bound values the model produces.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/checker.hpp"
#include "abft/encoder.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::InputClass;
using aabft::linalg::Matrix;

struct BoundaryCase {
  std::size_t n;
  std::size_t bs;
  InputClass input;
};

class DetectionBoundary : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(DetectionBoundary, FlagsJustAboveEpsilonNotBelow) {
  const auto& param = GetParam();
  Rng rng(param.n * 31 + param.bs);
  const PartitionedCodec codec(param.bs);
  aabft::gpusim::Launcher launcher;
  const Matrix a = aabft::linalg::make_input(param.input, param.n, 2.0, rng);
  const Matrix b = aabft::linalg::make_input(param.input, param.n, 2.0, rng);
  const auto a_cc = encode_columns(launcher, a, codec, 2);
  const auto b_rc = encode_rows(launcher, b, codec, 2);
  Matrix c_fc = aabft::linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                              aabft::linalg::GemmConfig{});
  BoundParams params;

  // Learn the epsilon of a specific column check from the trace.
  EpsilonTrace trace;
  const auto clean = check_product(launcher, c_fc, codec, a_cc.pmax,
                                   b_rc.pmax, param.n, params, &trace);
  ASSERT_TRUE(clean.clean());
  // Column checks are traced block-major, bs+1 per block; entry 0 is block
  // (0, 0), local column 0.
  const double eps = trace.column_epsilons.front();
  ASSERT_GT(eps, 0.0);

  // Deviate the data element (0, 0): the column-check difference changes by
  // exactly the deviation (up to the reference sum's rounding, orders below
  // eps). Slightly above epsilon -> flagged.
  const double original = c_fc(0, 0);
  c_fc(0, 0) = original + 3.0 * eps;
  const auto above = check_product(launcher, c_fc, codec, a_cc.pmax,
                                   b_rc.pmax, param.n, params, nullptr);
  EXPECT_FALSE(above.clean());
  bool found = false;
  for (const auto& m : above.mismatches)
    if (m.kind == CheckKind::kColumn && m.block_row == 0 && m.block_col == 0 &&
        m.local == 0)
      found = true;
  EXPECT_TRUE(found);

  // Comfortably below epsilon -> treated as rounding noise.
  c_fc(0, 0) = original + 0.25 * eps;
  const auto below = check_product(launcher, c_fc, codec, a_cc.pmax,
                                   b_rc.pmax, param.n, params, nullptr);
  EXPECT_TRUE(below.clean());
  c_fc(0, 0) = original;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DetectionBoundary,
    ::testing::Values(BoundaryCase{32, 16, InputClass::kUnit},
                      BoundaryCase{64, 16, InputClass::kUnit},
                      BoundaryCase{64, 32, InputClass::kHundred},
                      BoundaryCase{96, 32, InputClass::kUnit},
                      BoundaryCase{64, 16, InputClass::kDynamic}));

TEST(DetectionBoundary, EpsilonScalesWithOmega) {
  // The same deviation is flagged at omega = 1 but absorbed at omega = 3
  // when sized between the two bounds.
  Rng rng(5);
  const std::size_t n = 64;
  const PartitionedCodec codec(16);
  aabft::gpusim::Launcher launcher;
  const Matrix a = aabft::linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = aabft::linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const auto a_cc = encode_columns(launcher, a, codec, 2);
  const auto b_rc = encode_rows(launcher, b, codec, 2);
  Matrix c_fc = aabft::linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                              aabft::linalg::GemmConfig{});

  BoundParams w1;
  w1.omega = 1.0;
  BoundParams w3;
  w3.omega = 3.0;
  EpsilonTrace trace1;
  (void)check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax, n, w1,
                      &trace1);
  const double eps1 = trace1.column_epsilons.front();

  c_fc(0, 0) += 2.0 * eps1;  // between 1-sigma and 3-sigma bound
  EXPECT_FALSE(check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax, n,
                             w1, nullptr)
                   .clean());
  EXPECT_TRUE(check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax, n,
                            w3, nullptr)
                  .clean());
}

}  // namespace
