// Hazard analyzer (gpusim/hazard.hpp): racecheck / synccheck / memcheck for
// the block-synchronous SIMT model.
//
// Three bars, matching the cuda-memcheck-style contract:
//   1. every shipped kernel is hazard-clean under record mode (including
//      with an armed fault and on the multi-worker pool);
//   2. each seeded-bug kernel — missing barrier, racing writers, divergent
//      barrier, out-of-bounds tile access, oversized shared allocation — is
//      detected with the correct classification and attribution;
//   3. hazard mode off is bit-identical to record mode (the analyzer never
//      perturbs results).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "abft/encoder.hpp"
#include "abft/gemv.hpp"
#include "baselines/schemes.hpp"
#include "core/rng.hpp"
#include "fp/bits.hpp"
#include "gpusim/hazard.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::gpusim;
namespace abft = aabft::abft;
namespace baselines = aabft::baselines;
namespace linalg = aabft::linalg;
using linalg::Matrix;
using linalg::uniform_matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

bool bits_equal(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (aabft::fp::to_bits(a(i, j)) != aabft::fp::to_bits(b(i, j)))
        return false;
  return true;
}

testing::AssertionResult no_hazards(const Launcher& launcher) {
  if (launcher.hazard_count() == 0) return testing::AssertionSuccess();
  auto failure = testing::AssertionFailure();
  failure << launcher.hazard_count() << " hazard(s); first: "
          << launcher.hazard_records().front().describe();
  return failure;
}

// ---- shipped kernels are clean ---------------------------------------------

TEST(HazardClean, BlockedGemmRecordModeSerial) {
  // Ragged sizes exercise the zero-padded edge staging.
  const Matrix a = random_matrix(48, 40, 11);
  const Matrix b = random_matrix(40, 56, 12);
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  (void)linalg::blocked_matmul(launcher, a, b, {});
  linalg::GemmConfig fma;
  fma.use_fma = true;
  (void)linalg::blocked_matmul(launcher, a, b, fma);
  EXPECT_TRUE(no_hazards(launcher));
}

TEST(HazardClean, BlockedGemmRecordModeOnWorkerPool) {
  const Matrix a = random_matrix(96, 64, 13);
  const Matrix b = random_matrix(64, 96, 14);
  Launcher launcher(k20c(), 4);
  launcher.set_hazard_mode(HazardMode::kRecord);
  const Matrix c = linalg::blocked_matmul(launcher, a, b, {});
  EXPECT_TRUE(no_hazards(launcher));
  EXPECT_LT(c.max_abs_diff(linalg::naive_matmul(a, b, false)), 1e-10);
}

TEST(HazardClean, BlockedGemmRecordModeWithArmedFault) {
  // The per-op instrumented path (fault fence open) must be just as clean.
  const Matrix a = random_matrix(64, 64, 15);
  const Matrix b = random_matrix(64, 64, 16);
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 1;
  fault.module_id = 5;
  fault.k_injection = 17;
  fault.error_vec = 1ULL << 61;
  FaultController controller;
  controller.arm(fault);
  launcher.set_fault_controller(&controller);
  (void)linalg::blocked_matmul(launcher, a, b, {});
  EXPECT_EQ(controller.fired_count(), 1u);
  EXPECT_TRUE(no_hazards(launcher));
}

TEST(HazardClean, PairwiseGemmRecordMode) {
  const Matrix a = random_matrix(33, 20, 17);
  const Matrix b = random_matrix(20, 35, 18);
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  (void)linalg::pairwise_matmul(launcher, a, b);
  EXPECT_TRUE(no_hazards(launcher));
}

TEST(HazardClean, EncodersRecordMode) {
  const Matrix a = random_matrix(32, 24, 19);
  const Matrix b = random_matrix(24, 32, 20);
  const abft::PartitionedCodec codec(8);
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  (void)abft::encode_columns(launcher, a, codec, 2);
  (void)abft::encode_rows(launcher, b, codec, 2);
  EXPECT_TRUE(no_hazards(launcher));
}

TEST(HazardClean, ProtectedGemvRecordMode) {
  const Matrix a = random_matrix(32, 24, 21);
  Rng rng(22);
  std::vector<double> x(24);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  abft::AabftConfig config;
  config.bs = 8;
  abft::ProtectedGemv gemv(launcher, a, config);
  const auto result = gemv.multiply(x);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(no_hazards(launcher));
}

TEST(HazardClean, AllSchemeContendersRecordMode) {
  // fixed-abft, a-abft, sea-abft, tmr and diverse-tmr together cover the
  // checker, correction, scan and voting kernels.
  const Matrix a = random_matrix(64, 64, 23);
  const Matrix b = random_matrix(64, 64, 24);
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  baselines::SchemeSuiteConfig config;
  config.include_diverse_tmr = true;
  for (const auto& scheme : baselines::make_schemes(launcher, config)) {
    const auto result = scheme->multiply(a, b);
    ASSERT_TRUE(result.ok()) << scheme->name();
    EXPECT_TRUE(no_hazards(launcher)) << scheme->name();
  }
}

TEST(HazardClean, RecordModeIsBitIdenticalToOff) {
  const Matrix a = random_matrix(48, 40, 25);
  const Matrix b = random_matrix(40, 56, 26);
  Launcher launcher(k20c(), 1);
  const Matrix off = linalg::blocked_matmul(launcher, a, b, {});
  launcher.set_hazard_mode(HazardMode::kRecord);
  const Matrix record = linalg::blocked_matmul(launcher, a, b, {});
  EXPECT_TRUE(bits_equal(off, record));
  EXPECT_TRUE(no_hazards(launcher));
}

// ---- seeded-bug kernels ----------------------------------------------------

TEST(HazardSeeded, MissingBarrierReportsWriteReadRace) {
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("missing_barrier", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    SharedArray<double> tile(blk, 4, "tile");
    blk.hazard.set_thread_count(4);
    for (int t = 0; t < 4; ++t) tile.store(t, static_cast<std::size_t>(t), t);
    // BUG: no sync_threads() — each thread reads its neighbour's cell while
    // the staging writes are still in the same epoch.
    for (int t = 0; t < 4; ++t)
      (void)tile.load(t, static_cast<std::size_t>((t + 1) % 4));
  });
  ASSERT_GE(launcher.hazard_count(), 1u);
  const auto record = launcher.hazard_records().front();
  EXPECT_EQ(record.kind, HazardKind::kRaceWriteRead);
  EXPECT_EQ(record.kernel, "missing_barrier");
  EXPECT_EQ(record.block, 0u);
  EXPECT_EQ(record.array, "tile");
  EXPECT_EQ(record.cell, 1u);        // thread 0 reads cell 1 first
  EXPECT_EQ(record.first_thread, 1);  // written by thread 1 ...
  EXPECT_EQ(record.second_thread, 0);  // ... read by thread 0
}

TEST(HazardSeeded, BarrierBetweenPhasesIsClean) {
  // The fixed version of the kernel above: the barrier retires the writes.
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("fixed_barrier", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    SharedArray<double> tile(blk, 4, "tile");
    blk.hazard.set_thread_count(4);
    for (int t = 0; t < 4; ++t) tile.store(t, static_cast<std::size_t>(t), t);
    blk.hazard.sync_threads();
    for (int t = 0; t < 4; ++t)
      (void)tile.load(t, static_cast<std::size_t>((t + 1) % 4));
  });
  EXPECT_TRUE(no_hazards(launcher));
}

TEST(HazardSeeded, RacingWritersReportWriteWriteRaceOnce) {
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("racing_writers", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    SharedArray<double> tile(blk, 2, "tile");
    blk.hazard.set_thread_count(4);
    // BUG: every thread writes cell 0 in the same epoch.
    for (int t = 0; t < 4; ++t) tile.store(t, 0, t);
  });
  // Per-cell dedup: one write/write report, not three.
  ASSERT_EQ(launcher.hazard_count(), 1u);
  const auto record = launcher.hazard_records().front();
  EXPECT_EQ(record.kind, HazardKind::kRaceWriteWrite);
  EXPECT_EQ(record.array, "tile");
  EXPECT_EQ(record.cell, 0u);
  EXPECT_EQ(record.first_thread, 0);
  EXPECT_EQ(record.second_thread, 1);
}

TEST(HazardSeeded, WriteAfterReadReportsReadWriteRace) {
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("read_write_race", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    SharedArray<double> tile(blk, 4, "tile");
    blk.hazard.set_thread_count(2);
    (void)tile.load(0, 2);
    // BUG: thread 1 overwrites a cell thread 0 read this epoch.
    tile.store(1, 2, 1.0);
  });
  ASSERT_EQ(launcher.hazard_count(), 1u);
  const auto record = launcher.hazard_records().front();
  EXPECT_EQ(record.kind, HazardKind::kRaceReadWrite);
  EXPECT_EQ(record.cell, 2u);
  EXPECT_EQ(record.first_thread, 0);
  EXPECT_EQ(record.second_thread, 1);
}

TEST(HazardSeeded, DivergentBarrierReportsSyncDivergence) {
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("divergent_barrier", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    blk.hazard.set_thread_count(4);
    // BUG: __syncthreads inside a divergent branch — thread 3 never arrives.
    for (int t = 0; t < 3; ++t) blk.hazard.arrive(t);
    blk.hazard.sync_threads();
    // Full participation afterwards is fine again.
    for (int t = 0; t < 4; ++t) blk.hazard.arrive(t);
    blk.hazard.sync_threads();
  });
  ASSERT_EQ(launcher.hazard_count(), 1u);
  const auto record = launcher.hazard_records().front();
  EXPECT_EQ(record.kind, HazardKind::kSyncDivergence);
  EXPECT_EQ(record.kernel, "divergent_barrier");
  EXPECT_EQ(record.cell, 3u);          // three threads arrived
  EXPECT_EQ(record.first_thread, 3);   // first missing tid
  EXPECT_EQ(record.second_thread, 4);  // of four
}

TEST(HazardSeeded, OutOfBoundsAccessReportedAndDropped) {
  Launcher launcher(k20c(), 1);
  double read_back = -1.0;
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("oob_tile", Dim3{1, 1, 1}, [&](BlockCtx& blk) {
    SharedArray<double> tile(blk, 4, "tile");
    blk.hazard.set_thread_count(2);
    tile.store(0, 7, 42.0);          // BUG: write past the end — dropped
    read_back = tile.load(1, 9);     // BUG: read past the end — yields 0.0
  });
  EXPECT_EQ(read_back, 0.0);
  ASSERT_EQ(launcher.hazard_count(), 2u);
  const auto records = launcher.hazard_records();
  EXPECT_EQ(records[0].kind, HazardKind::kOutOfBounds);
  EXPECT_EQ(records[0].array, "tile");
  EXPECT_EQ(records[0].cell, 7u);
  EXPECT_EQ(records[0].second_thread, 0);
  EXPECT_EQ(records[1].kind, HazardKind::kOutOfBounds);
  EXPECT_EQ(records[1].cell, 9u);
  EXPECT_EQ(records[1].second_thread, 1);
}

TEST(HazardSeeded, SharedOverflowReportedInRecordMode) {
  // Record mode reports the memcheck violation and keeps executing; with the
  // analyzer off the same allocation throws out of the launch (the budget
  // contract tested in test_gpusim.cpp).
  const std::size_t limit_doubles = k20c().shared_mem_per_block / sizeof(double);
  bool body_finished = false;
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kRecord);
  launcher.launch("oversized_tile", Dim3{1, 1, 1}, [&](BlockCtx& blk) {
    SharedArray<double> tile(blk, limit_doubles + 16, "tile");
    tile[0] = 1.0;
    body_finished = true;
  });
  EXPECT_TRUE(body_finished);
  ASSERT_EQ(launcher.hazard_count(), 1u);
  const auto record = launcher.hazard_records().front();
  EXPECT_EQ(record.kind, HazardKind::kSharedOverflow);
  EXPECT_EQ(record.array, "tile");
  EXPECT_EQ(record.cell, limit_doubles + 16);

  Launcher off(k20c(), 1);
  EXPECT_THROW(
      off.launch("oversized_tile", Dim3{1, 1, 1},
                 [&](BlockCtx& blk) {
                   SharedArray<double> tile(blk, limit_doubles + 16, "tile");
                   tile[0] = 1.0;
                 }),
      std::invalid_argument);
}

// ---- abort mode and async launches -----------------------------------------

TEST(HazardAbort, FirstHazardThrowsHazardError) {
  Launcher launcher(k20c(), 1);
  launcher.set_hazard_mode(HazardMode::kAbort);
  try {
    launcher.launch("racing_writers", Dim3{1, 1, 1}, [](BlockCtx& blk) {
      SharedArray<double> tile(blk, 2, "tile");
      blk.hazard.set_thread_count(4);
      for (int t = 0; t < 4; ++t) tile.store(t, 0, t);
    });
    FAIL() << "expected HazardError";
  } catch (const HazardError& error) {
    EXPECT_EQ(error.record().kind, HazardKind::kRaceWriteWrite);
    EXPECT_EQ(error.record().kernel, "racing_writers");
  }
  // The hazard is still recorded in the sink.
  EXPECT_EQ(launcher.hazard_count(), 1u);
}

TEST(HazardAbort, PoolLaunchRethrowsOnCallingThread) {
  Launcher launcher(k20c(), 2);
  launcher.set_hazard_mode(HazardMode::kAbort);
  EXPECT_THROW(
      launcher.launch("racing_writers", Dim3{4, 1, 1},
                      [](BlockCtx& blk) {
                        SharedArray<double> tile(blk, 2, "tile");
                        blk.hazard.set_thread_count(4);
                        for (int t = 0; t < 4; ++t) tile.store(t, 0, t);
                      }),
      HazardError);
  EXPECT_GE(launcher.hazard_count(), 1u);
}

TEST(HazardAsync, StreamLaunchRecordsHazards) {
  Launcher launcher(k20c(), 2);
  launcher.set_hazard_mode(HazardMode::kRecord);
  Stream stream = launcher.create_stream();
  launcher.launch_async(stream, "missing_barrier", Dim3{1, 1, 1},
                        [](BlockCtx& blk) {
                          SharedArray<double> tile(blk, 4, "tile");
                          blk.hazard.set_thread_count(4);
                          for (int t = 0; t < 4; ++t)
                            tile.store(t, static_cast<std::size_t>(t), t);
                          for (int t = 0; t < 4; ++t)
                            (void)tile.load(
                                t, static_cast<std::size_t>((t + 1) % 4));
                        });
  launcher.synchronize();
  ASSERT_GE(launcher.hazard_count(), 1u);
  EXPECT_EQ(launcher.hazard_records().front().kind,
            HazardKind::kRaceWriteRead);
}

TEST(HazardAsync, AbortModeRethrownAtSynchronize) {
  Launcher launcher(k20c(), 2);
  launcher.set_hazard_mode(HazardMode::kAbort);
  Stream stream = launcher.create_stream();
  launcher.launch_async(stream, "racing_writers", Dim3{1, 1, 1},
                        [](BlockCtx& blk) {
                          SharedArray<double> tile(blk, 2, "tile");
                          blk.hazard.set_thread_count(4);
                          for (int t = 0; t < 4; ++t) tile.store(t, 0, t);
                        });
  EXPECT_THROW(launcher.synchronize(), HazardError);
  // The stored async error is consumed: a second synchronize is clean.
  launcher.synchronize();
  EXPECT_EQ(launcher.hazard_count(), 1u);
}

// ---- snapshot semantics ----------------------------------------------------

TEST(HazardMode, ModeIsSnapshottedAtEnqueueTime) {
  Launcher launcher(k20c(), 1);
  EXPECT_EQ(launcher.hazard_mode(), HazardMode::kOff);
  launcher.launch("off_launch", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    SharedArray<double> tile(blk, 2, "tile");
    blk.hazard.set_thread_count(4);
    // Racy under analysis, but the analyzer is off: nothing is recorded.
    for (int t = 0; t < 4; ++t) tile.store(t, 0, t);
  });
  EXPECT_EQ(launcher.hazard_count(), 0u);
  launcher.set_hazard_mode(HazardMode::kRecord);
  EXPECT_EQ(launcher.hazard_mode(), HazardMode::kRecord);
  launcher.launch("record_launch", Dim3{1, 1, 1}, [](BlockCtx& blk) {
    SharedArray<double> tile(blk, 2, "tile");
    blk.hazard.set_thread_count(4);
    for (int t = 0; t < 4; ++t) tile.store(t, 0, t);
  });
  EXPECT_EQ(launcher.hazard_count(), 1u);
  launcher.clear_hazard_records();
  EXPECT_EQ(launcher.hazard_count(), 0u);
}

}  // namespace
