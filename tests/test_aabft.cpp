// Integration tests for the A-ABFT protected multiplication: clean runs stay
// clean (no false positives), injected critical faults are detected,
// localised and corrected.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using aabft::ErrorCode;
using aabft::abft::AabftConfig;
using aabft::abft::AabftMultiplier;
using aabft::abft::BoundPolicy;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::InputClass;
using aabft::linalg::make_input;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

AabftConfig small_config(std::size_t bs = 16) {
  AabftConfig config;
  config.bs = bs;
  config.p = 2;
  return config;
}

TEST(Aabft, CleanRunProducesCorrectResultAndNoMismatch) {
  Rng rng(21);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  AabftMultiplier mult(launcher, small_config());
  const auto result = mult.multiply(a, b).value();

  EXPECT_FALSE(result.error_detected());
  EXPECT_TRUE(result.corrections.empty());
  EXPECT_FALSE(result.uncorrectable);

  // The stripped result equals the unprotected product of the same kernel
  // except that it was computed from encoded operands — identical values for
  // the data elements because the extra checksum rows/columns do not feed
  // data elements.
  const Matrix ref = naive_matmul(a, b, false);
  EXPECT_EQ(result.c, ref);
}

// Property sweep: no false positives across sizes, block sizes, input
// classes, p, and accumulation modes (omega = 3, the paper's conservative
// setting).
struct CleanCase {
  std::size_t n;
  std::size_t bs;
  std::size_t p;
  InputClass input;
  bool fma;
  BoundPolicy policy;
};

class AabftCleanSweep : public ::testing::TestWithParam<CleanCase> {};

TEST_P(AabftCleanSweep, NoFalsePositives) {
  const auto& param = GetParam();
  Rng rng(1234 + param.n + param.bs);
  const Matrix a = make_input(param.input, param.n, 2.0, rng);
  const Matrix b = make_input(param.input, param.n, 2.0, rng);
  Launcher launcher;
  AabftConfig config;
  config.bs = param.bs;
  config.p = param.p;
  config.bounds.policy = param.policy;
  config.set_fma(param.fma);
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected())
      << "false positive: " << result.report.mismatches.size()
      << " mismatches, first eps=" << result.report.mismatches.front().epsilon
      << " diff=" << result.report.mismatches.front().difference();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AabftCleanSweep,
    ::testing::Values(
        CleanCase{32, 16, 2, InputClass::kUnit, false, BoundPolicy::kPaperDirect},
        CleanCase{64, 16, 2, InputClass::kUnit, false, BoundPolicy::kPaperDirect},
        CleanCase{128, 32, 2, InputClass::kUnit, false, BoundPolicy::kPaperDirect},
        CleanCase{128, 32, 2, InputClass::kHundred, false, BoundPolicy::kPaperDirect},
        CleanCase{128, 32, 2, InputClass::kDynamic, false, BoundPolicy::kPaperDirect},
        CleanCase{64, 16, 1, InputClass::kUnit, false, BoundPolicy::kPaperDirect},
        CleanCase{64, 16, 4, InputClass::kHundred, false, BoundPolicy::kPaperDirect},
        CleanCase{64, 16, 2, InputClass::kUnit, true, BoundPolicy::kPaperDirect},
        CleanCase{128, 32, 2, InputClass::kHundred, true, BoundPolicy::kPaperDirect},
        CleanCase{64, 16, 2, InputClass::kUnit, false, BoundPolicy::kCompositional},
        CleanCase{128, 32, 2, InputClass::kDynamic, true, BoundPolicy::kCompositional},
        CleanCase{96, 32, 2, InputClass::kUnit, false, BoundPolicy::kPaperDirect},
        CleanCase{160, 32, 3, InputClass::kDynamic, false, BoundPolicy::kPaperDirect}));

TEST(Aabft, DetectsAndCorrectsLargeInjectedFault) {
  Rng rng(31);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = 1;
  fault.module_id = 3;
  fault.k_injection = 17;
  fault.error_vec = 1ULL << 61;  // large exponent corruption
  controller.arm(fault);

  AabftMultiplier mult(launcher, small_config());
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  ASSERT_EQ(result.corrections.size(), 1u);
  EXPECT_FALSE(result.uncorrectable);
  EXPECT_TRUE(result.recheck_clean);

  // The corrected data must match the fault-free product to within the
  // correction's own rounding (the rebuilt element is a sum of BS terms).
  const Matrix ref = naive_matmul(a, b, false);
  EXPECT_LT(result.c.max_abs_diff(ref), 1e-10);
}

TEST(Aabft, CorrectionRestoresExactValueFromChecksum) {
  // A fault in the *final add* corrupts a stored element after accumulation;
  // the corrected value is reconstructed from the column checksum.
  Rng rng(37);
  const std::size_t n = 32;
  const Matrix a = uniform_matrix(n, n, -2.0, 2.0, rng);
  const Matrix b = uniform_matrix(n, n, -2.0, 2.0, rng);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 2;
  fault.module_id = 0;
  fault.k_injection = 0;
  fault.error_vec = 0x7ff0ULL << 48;  // exponent havoc
  controller.arm(fault);

  AabftMultiplier mult(launcher, small_config());
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  ASSERT_TRUE(result.error_detected());
  ASSERT_FALSE(result.corrections.empty());
  EXPECT_TRUE(result.recheck_clean);
}

TEST(Aabft, DetectionOnlyModeReportsUncorrectable) {
  Rng rng(41);
  const std::size_t n = 32;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 0;
  fault.module_id = 1;
  fault.k_injection = 3;
  fault.error_vec = 1ULL << 62;
  controller.arm(fault);

  AabftConfig config = small_config();
  config.correct_errors = false;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  EXPECT_TRUE(result.uncorrectable);
  EXPECT_TRUE(result.corrections.empty());
}

TEST(Aabft, RejectsIndivisibleDimensions) {
  Launcher launcher;
  AabftMultiplier mult(launcher, small_config(16));
  Matrix a(20, 16);  // 20 % 16 != 0
  Matrix b(16, 32);
  // Recoverable misuse is an error value (DESIGN.md §4.7), not an exception;
  // unchecked access still throws with the diagnostic.
  const auto result = mult.multiply(a, b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kShapeMismatch);
  EXPECT_THROW((void)mult.multiply(a, b).value(), std::invalid_argument);
}

TEST(Aabft, RejectsMismatchedInnerDimensions) {
  Launcher launcher;
  AabftMultiplier mult(launcher, small_config(16));
  Matrix a(16, 24);
  Matrix b(16, 32);  // a.cols() != b.rows()
  const auto result = mult.multiply(a, b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kShapeMismatch);
}

TEST(Aabft, RejectsInconsistentFmaFlags) {
  Launcher launcher;
  AabftConfig config = small_config();
  config.bounds.fma = true;  // gemm still mul+add
  EXPECT_THROW(AabftMultiplier(launcher, config), std::invalid_argument);
}

TEST(Aabft, NonSquareShapesWork) {
  Rng rng(55);
  const Matrix a = uniform_matrix(32, 48, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(48, 64, -1.0, 1.0, rng);
  Launcher launcher;
  AabftMultiplier mult(launcher, small_config());
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c.rows(), 32u);
  EXPECT_EQ(result.c.cols(), 64u);
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

}  // namespace
