// Pairwise-accumulation GEMM and diverse-kernel TMR tests (the paper's
// "three different kernels need rounding bounds" remark, implemented).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/diverse_tmr.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::baselines;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::blocked_matmul;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::pairwise_matmul;
using aabft::linalg::uniform_matrix;

TEST(PairwiseMatmul, CorrectToWithinRounding) {
  Rng rng(1);
  const Matrix a = uniform_matrix(40, 56, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(56, 24, -1.0, 1.0, rng);
  Launcher launcher;
  const Matrix c = pairwise_matmul(launcher, a, b);
  const Matrix ref = naive_matmul(a, b, false);
  EXPECT_LT(c.max_abs_diff(ref), 1e-12);
}

TEST(PairwiseMatmul, ActuallyDiversifiesRounding) {
  // The point of the kernel: same math, different bits.
  Rng rng(2);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  const Matrix sequential = blocked_matmul(launcher, a, b);
  const Matrix pairwise = pairwise_matmul(launcher, a, b);
  EXPECT_FALSE(sequential == pairwise);        // bitwise different...
  EXPECT_LT(sequential.max_abs_diff(pairwise), 1e-12);  // ...same values
}

TEST(PairwiseMatmul, ExactForPowerOfTwoData) {
  // With exactly representable sums, every accumulation order agrees.
  Matrix a(4, 4, 0.25);
  Matrix b(4, 4, 0.5);
  Launcher launcher;
  const Matrix c = pairwise_matmul(launcher, a, b);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(c(i, j), 0.5);
}

TEST(PairwiseMatmul, OddInnerDimension) {
  Rng rng(3);
  const Matrix a = uniform_matrix(8, 13, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(13, 8, -1.0, 1.0, rng);
  Launcher launcher;
  const Matrix c = pairwise_matmul(launcher, a, b);
  EXPECT_LT(c.max_abs_diff(naive_matmul(a, b, false)), 1e-13);
}

TEST(DiverseTmr, CleanRunHasNoDisagreements) {
  // The probabilistic agreement bounds must absorb the genuine rounding
  // differences between the three kernels — the exact situation the paper
  // says makes "direct comparison impossible".
  Rng rng(4);
  const std::size_t n = 96;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  DiverseTmrMultiplier mult(launcher, DiverseTmrConfig{});
  const auto result = mult.multiply(a, b);
  EXPECT_EQ(result.disagreeing_elements, 0u);
  EXPECT_EQ(result.unresolved_elements, 0u);
  EXPECT_LT(result.c.max_abs_diff(naive_matmul(a, b, false)), 1e-12);
}

TEST(DiverseTmr, CleanRunWideValueRange) {
  Rng rng(5);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -100.0, 100.0, rng);
  const Matrix b = uniform_matrix(n, n, -100.0, 100.0, rng);
  Launcher launcher;
  DiverseTmrMultiplier mult(launcher, DiverseTmrConfig{});
  const auto result = mult.multiply(a, b);
  EXPECT_EQ(result.disagreeing_elements, 0u);
}

TEST(DiverseTmr, DetectsAndOutvotesInjectedFault) {
  Rng rng(6);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;  // hits replica 1 (first blocked run)
  fault.error_vec = 1ULL << 61;
  fault.k_injection = 7;
  controller.arm(fault);

  DiverseTmrMultiplier mult(launcher, DiverseTmrConfig{});
  const auto result = mult.multiply(a, b);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  EXPECT_EQ(result.disagreeing_elements, 1u);
  EXPECT_EQ(result.unresolved_elements, 0u);
  // Replicas 2 and 3 outvote the corrupted element.
  EXPECT_LT(result.c.max_abs_diff(naive_matmul(a, b, false)), 1e-12);
}

TEST(DiverseTmr, InvalidConfigRejected) {
  Launcher launcher;
  DiverseTmrConfig config;
  config.omega = 0.0;
  EXPECT_THROW(DiverseTmrMultiplier(launcher, config), std::invalid_argument);
}

}  // namespace
