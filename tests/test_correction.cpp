// Localisation and correction tests: every element class (data, column
// checksum, row checksum, corner), multiple blocks, non-localisable
// patterns, and end-to-end value restoration.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/checker.hpp"
#include "abft/correction.hpp"
#include "abft/encoder.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

/// A clean full-checksum product plus everything needed to check it.
struct Product {
  PartitionedCodec codec{8};
  aabft::gpusim::Launcher launcher;
  EncodedMatrix a_cc;
  EncodedMatrix b_rc;
  Matrix c_fc;
  std::size_t n = 32;

  Product() {
    Rng rng(5);
    const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
    const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
    a_cc = encode_columns(launcher, a, codec, 2);
    b_rc = encode_rows(launcher, b, codec, 2);
    c_fc = aabft::linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                         aabft::linalg::GemmConfig{});
  }

  CheckReport check() {
    BoundParams params;
    return check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax, n,
                         params, nullptr);
  }
};

/// Corrupt one element, run the check + correction, and verify the patch
/// restores the original value to within BS-sum rounding.
void corrupt_and_verify(Product& p, std::size_t row, std::size_t col) {
  const double original = p.c_fc(row, col);
  p.c_fc(row, col) = original + 7.5;

  const CheckReport report = p.check();
  ASSERT_FALSE(report.clean());
  const CorrectionOutcome outcome =
      locate_and_correct(p.c_fc, report, p.codec);
  EXPECT_FALSE(outcome.uncorrectable);
  ASSERT_EQ(outcome.corrections.size(), 1u);

  const auto& corr = outcome.corrections.front();
  EXPECT_EQ(corr.block_row * 9 + corr.local_row, row);
  EXPECT_EQ(corr.block_col * 9 + corr.local_col, col);
  EXPECT_EQ(corr.old_value, original + 7.5);
  EXPECT_NEAR(p.c_fc(row, col), original, 1e-12);

  // The patched matrix passes a clean re-check.
  EXPECT_TRUE(p.check().clean());
}

TEST(Correction, DataElement) {
  Product p;
  corrupt_and_verify(p, 2, 4);  // block (0,0), data
}

TEST(Correction, DataElementInInnerBlock) {
  Product p;
  corrupt_and_verify(p, 12, 21);  // block (1,2), locals (3,3)
}

TEST(Correction, ColumnChecksumElement) {
  Product p;
  corrupt_and_verify(p, 8, 4);  // checksum row of block row 0
}

TEST(Correction, RowChecksumElement) {
  Product p;
  corrupt_and_verify(p, 4, 17);  // checksum column of block col 1
}

TEST(Correction, CornerElement) {
  Product p;
  corrupt_and_verify(p, 17, 26);  // corner of block (1,2)
}

TEST(Correction, TwoErrorsInDifferentBlocksBothCorrected) {
  Product p;
  const double v1 = p.c_fc(1, 1);
  const double v2 = p.c_fc(30, 33);
  p.c_fc(1, 1) = v1 + 3.0;
  p.c_fc(30, 33) = v2 - 4.0;

  const CheckReport report = p.check();
  const CorrectionOutcome outcome = locate_and_correct(p.c_fc, report, p.codec);
  EXPECT_FALSE(outcome.uncorrectable);
  ASSERT_EQ(outcome.corrections.size(), 2u);
  EXPECT_NEAR(p.c_fc(1, 1), v1, 1e-12);
  EXPECT_NEAR(p.c_fc(30, 33), v2, 1e-12);
  EXPECT_TRUE(p.check().clean());
}

TEST(Correction, TwoErrorsInOneBlockAreUncorrectable) {
  Product p;
  p.c_fc(1, 1) += 3.0;
  p.c_fc(2, 3) += 3.0;  // same block (0,0)
  const CheckReport report = p.check();
  const CorrectionOutcome outcome = locate_and_correct(p.c_fc, report, p.codec);
  EXPECT_TRUE(outcome.uncorrectable);
}

TEST(Correction, SameRowPairInOneBlockUncorrectable) {
  Product p;
  // Two errors in the same row of one block: one row mismatch, two column
  // mismatches -> cannot localise.
  p.c_fc(1, 1) += 3.0;
  p.c_fc(1, 5) += 3.0;
  const CheckReport report = p.check();
  EXPECT_EQ(report.count(CheckKind::kColumn), 2u);
  const CorrectionOutcome outcome = locate_and_correct(p.c_fc, report, p.codec);
  EXPECT_TRUE(outcome.uncorrectable);
  EXPECT_TRUE(outcome.corrections.empty());
}

TEST(Correction, CleanReportDoesNothing) {
  Product p;
  const Matrix before = p.c_fc;
  const CheckReport report = p.check();
  ASSERT_TRUE(report.clean());
  const CorrectionOutcome outcome = locate_and_correct(p.c_fc, report, p.codec);
  EXPECT_FALSE(outcome.uncorrectable);
  EXPECT_TRUE(outcome.corrections.empty());
  EXPECT_EQ(p.c_fc, before);
}

TEST(Correction, ShapeValidated) {
  Product p;
  Matrix bad(10, 9);
  CheckReport report;
  EXPECT_THROW((void)locate_and_correct(bad, report, p.codec),
               std::invalid_argument);
}

}  // namespace
