// Encode kernel tests (Algorithm 1): kernel checksums equal the host codec's,
// and the fused p-max collection equals a brute-force top-p per vector —
// including the checksum vectors' own lists.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/encoder.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

/// Brute-force descending top-p |values| of a vector.
std::vector<std::pair<double, std::size_t>> brute_top_p(
    const std::vector<double>& v, std::size_t p) {
  std::vector<std::pair<double, std::size_t>> entries;
  for (std::size_t i = 0; i < v.size(); ++i)
    entries.emplace_back(std::fabs(v[i]), i);
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  entries.resize(std::min(p, entries.size()));
  return entries;
}

TEST(Encoder, ColumnsMatchHostCodec) {
  Rng rng(1);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(24, 16, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_columns(launcher, a, codec, 2);
  EXPECT_EQ(enc.data, codec.encode_columns_host(a));  // bitwise: same order
}

TEST(Encoder, RowsMatchHostCodec) {
  Rng rng(2);
  const PartitionedCodec codec(8);
  const Matrix b = uniform_matrix(16, 24, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_rows(launcher, b, codec, 2);
  EXPECT_EQ(enc.data, codec.encode_rows_host(b));
}

class EncoderPMaxSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {};

TEST_P(EncoderPMaxSweep, ColumnEncodePMaxEqualsBruteForce) {
  const auto [m, n, bs, p] = GetParam();
  Rng rng(m * 7 + n * 3 + p);
  const PartitionedCodec codec(bs);
  const Matrix a = uniform_matrix(m, n, -5.0, 5.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_columns(launcher, a, codec, p);

  ASSERT_EQ(enc.pmax.size(), codec.encoded_dim(m));
  for (std::size_t er = 0; er < enc.pmax.size(); ++er) {
    std::vector<double> row(enc.data.row(er).begin(), enc.data.row(er).end());
    const auto expected = brute_top_p(row, p);
    const PMaxList& got = enc.pmax[er];
    ASSERT_EQ(got.size(), expected.size()) << "row " << er;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].value, expected[i].first) << "row " << er << " i " << i;
      EXPECT_EQ(std::fabs(row[got[i].index]), got[i].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderPMaxSweep,
    ::testing::Values(std::make_tuple(16, 16, 8, 2),
                      std::make_tuple(16, 16, 8, 1),
                      std::make_tuple(32, 24, 8, 4),
                      std::make_tuple(8, 40, 4, 3),
                      std::make_tuple(64, 10, 16, 2),  // ragged column chunk
                      std::make_tuple(24, 7, 8, 2)));  // chunk smaller than bs

TEST(Encoder, RowEncodePMaxEqualsBruteForce) {
  Rng rng(9);
  const PartitionedCodec codec(8);
  const std::size_t p = 2;
  const Matrix b = uniform_matrix(20, 24, -5.0, 5.0, rng);  // ragged row chunk
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_rows(launcher, b, codec, p);

  ASSERT_EQ(enc.pmax.size(), codec.encoded_dim(24));
  for (std::size_t ec = 0; ec < enc.pmax.size(); ++ec) {
    const auto col = enc.data.col(ec);
    const auto expected = brute_top_p(col, p);
    const PMaxList& got = enc.pmax[ec];
    ASSERT_EQ(got.size(), expected.size()) << "col " << ec;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].value, expected[i].first) << "col " << ec << " i " << i;
      EXPECT_EQ(std::fabs(col[got[i].index]), got[i].value);
    }
  }
}

TEST(Encoder, ChecksumRowsHaveOwnPMax) {
  // The localSums / maxSum path of Algorithm 1: the checksum vector's p-max
  // must reflect the checksum values, not the data.
  Rng rng(10);
  const PartitionedCodec codec(4);
  Matrix a(4, 8, 1.0);   // every column checksum is exactly 4.0
  a(2, 5) = 100.0;       // data row 2 has a dominant value
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_columns(launcher, a, codec, 1);
  const PMaxList& cs = enc.pmax[codec.checksum_index(0)];
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].value, 103.0);  // checksum of column 5: 3*1 + 100
  EXPECT_EQ(cs[0].index, 5u);
  const PMaxList& row2 = enc.pmax[codec.enc_index(2)];
  EXPECT_EQ(row2[0].value, 100.0);
  EXPECT_EQ(row2[0].index, 5u);
}

TEST(Encoder, LaunchesEncodeAndReduceKernels) {
  Rng rng(11);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  (void)encode_columns(launcher, a, codec, 2);
  ASSERT_EQ(launcher.launch_log().size(), 2u);
  EXPECT_EQ(launcher.launch_log()[0].kernel_name, "encode_a");
  EXPECT_EQ(launcher.launch_log()[1].kernel_name, "reduce_pmax_a");
  // Checksum adds: one add per element of A.
  EXPECT_EQ(launcher.launch_log()[0].counters.adds, 16u * 16u);
  EXPECT_GT(launcher.launch_log()[0].counters.compares, 0u);
}

TEST(Encoder, RejectsIndivisibleDimensions) {
  const PartitionedCodec codec(8);
  aabft::gpusim::Launcher launcher;
  Matrix a(12, 16);
  EXPECT_THROW((void)encode_columns(launcher, a, codec, 2),
               std::invalid_argument);
  Matrix b(16, 12);
  EXPECT_THROW((void)encode_rows(launcher, b, codec, 2),
               std::invalid_argument);
}

}  // namespace
