// Encode kernel tests (Algorithm 1): kernel checksums equal the host codec's,
// and the fused p-max collection equals a brute-force top-p per vector —
// including the checksum vectors' own lists. The second half covers the
// fused online-checking path (fused_gemm.hpp): light encodes must reproduce
// the standalone encoders' bits, the fused product must be bit-identical to
// blocked_matmul over the materialised encoded operands, and the fenced
// fused kernel must be observationally identical to its instrumented twin
// across 1..8-fault campaigns.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/encoder.hpp"
#include "abft/fused_gemm.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::PerfCounters;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

/// Brute-force descending top-p |values| of a vector.
std::vector<std::pair<double, std::size_t>> brute_top_p(
    const std::vector<double>& v, std::size_t p) {
  std::vector<std::pair<double, std::size_t>> entries;
  for (std::size_t i = 0; i < v.size(); ++i)
    entries.emplace_back(std::fabs(v[i]), i);
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  entries.resize(std::min(p, entries.size()));
  return entries;
}

TEST(Encoder, ColumnsMatchHostCodec) {
  Rng rng(1);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(24, 16, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_columns(launcher, a, codec, 2);
  EXPECT_EQ(enc.data, codec.encode_columns_host(a));  // bitwise: same order
}

TEST(Encoder, RowsMatchHostCodec) {
  Rng rng(2);
  const PartitionedCodec codec(8);
  const Matrix b = uniform_matrix(16, 24, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_rows(launcher, b, codec, 2);
  EXPECT_EQ(enc.data, codec.encode_rows_host(b));
}

class EncoderPMaxSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t, std::size_t>> {};

TEST_P(EncoderPMaxSweep, ColumnEncodePMaxEqualsBruteForce) {
  const auto [m, n, bs, p] = GetParam();
  Rng rng(m * 7 + n * 3 + p);
  const PartitionedCodec codec(bs);
  const Matrix a = uniform_matrix(m, n, -5.0, 5.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_columns(launcher, a, codec, p);

  ASSERT_EQ(enc.pmax.size(), codec.encoded_dim(m));
  for (std::size_t er = 0; er < enc.pmax.size(); ++er) {
    std::vector<double> row(enc.data.row(er).begin(), enc.data.row(er).end());
    const auto expected = brute_top_p(row, p);
    const PMaxList& got = enc.pmax[er];
    ASSERT_EQ(got.size(), expected.size()) << "row " << er;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].value, expected[i].first) << "row " << er << " i " << i;
      EXPECT_EQ(std::fabs(row[got[i].index]), got[i].value);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EncoderPMaxSweep,
    ::testing::Values(std::make_tuple(16, 16, 8, 2),
                      std::make_tuple(16, 16, 8, 1),
                      std::make_tuple(32, 24, 8, 4),
                      std::make_tuple(8, 40, 4, 3),
                      std::make_tuple(64, 10, 16, 2),  // ragged column chunk
                      std::make_tuple(24, 7, 8, 2)));  // chunk smaller than bs

TEST(Encoder, RowEncodePMaxEqualsBruteForce) {
  Rng rng(9);
  const PartitionedCodec codec(8);
  const std::size_t p = 2;
  const Matrix b = uniform_matrix(20, 24, -5.0, 5.0, rng);  // ragged row chunk
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_rows(launcher, b, codec, p);

  ASSERT_EQ(enc.pmax.size(), codec.encoded_dim(24));
  for (std::size_t ec = 0; ec < enc.pmax.size(); ++ec) {
    const auto col = enc.data.col(ec);
    const auto expected = brute_top_p(col, p);
    const PMaxList& got = enc.pmax[ec];
    ASSERT_EQ(got.size(), expected.size()) << "col " << ec;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].value, expected[i].first) << "col " << ec << " i " << i;
      EXPECT_EQ(std::fabs(col[got[i].index]), got[i].value);
    }
  }
}

TEST(Encoder, ChecksumRowsHaveOwnPMax) {
  // The localSums / maxSum path of Algorithm 1: the checksum vector's p-max
  // must reflect the checksum values, not the data.
  Rng rng(10);
  const PartitionedCodec codec(4);
  Matrix a(4, 8, 1.0);   // every column checksum is exactly 4.0
  a(2, 5) = 100.0;       // data row 2 has a dominant value
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix enc = encode_columns(launcher, a, codec, 1);
  const PMaxList& cs = enc.pmax[codec.checksum_index(0)];
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].value, 103.0);  // checksum of column 5: 3*1 + 100
  EXPECT_EQ(cs[0].index, 5u);
  const PMaxList& row2 = enc.pmax[codec.enc_index(2)];
  EXPECT_EQ(row2[0].value, 100.0);
  EXPECT_EQ(row2[0].index, 5u);
}

TEST(Encoder, LaunchesEncodeAndReduceKernels) {
  Rng rng(11);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  (void)encode_columns(launcher, a, codec, 2);
  ASSERT_EQ(launcher.launch_log().size(), 2u);
  EXPECT_EQ(launcher.launch_log()[0].kernel_name, "encode_a");
  EXPECT_EQ(launcher.launch_log()[1].kernel_name, "reduce_pmax_a");
  // Checksum adds: one add per element of A.
  EXPECT_EQ(launcher.launch_log()[0].counters.adds, 16u * 16u);
  EXPECT_GT(launcher.launch_log()[0].counters.compares, 0u);
}

TEST(Encoder, RejectsIndivisibleDimensions) {
  const PartitionedCodec codec(8);
  aabft::gpusim::Launcher launcher;
  Matrix a(12, 16);
  EXPECT_THROW((void)encode_columns(launcher, a, codec, 2),
               std::invalid_argument);
  Matrix b(16, 12);
  EXPECT_THROW((void)encode_rows(launcher, b, codec, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fused online-checking path (fused_gemm.hpp)
// ---------------------------------------------------------------------------

/// RAII reset so a failing test cannot leak the global switch.
struct ForceInstrumentedGuard {
  ~ForceInstrumentedGuard() { aabft::gpusim::set_force_instrumented(false); }
};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

/// Bitwise matrix equality: faulty products legitimately contain NaNs, which
/// compare unequal to themselves under operator==.
bool bits_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), sizeof(double) * a.size()) == 0;
}

PerfCounters log_total(const aabft::gpusim::Launcher& launcher) {
  PerfCounters total;
  for (const auto& entry : launcher.launch_log()) total += entry.counters;
  return total;
}

void expect_counters_eq(const PerfCounters& a, const PerfCounters& b) {
  EXPECT_EQ(a.adds, b.adds);
  EXPECT_EQ(a.muls, b.muls);
  EXPECT_EQ(a.fmas, b.fmas);
  EXPECT_EQ(a.compares, b.compares);
  EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
  EXPECT_EQ(a.bytes_stored, b.bytes_stored);
}

TEST(FusedEncoder, LightColumnsMatchStandaloneEncoder) {
  Rng rng(101);
  const PartitionedCodec codec(16);
  const Matrix a = uniform_matrix(48, 40, -5.0, 5.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix full = encode_columns(launcher, a, codec, 2);
  const LightEncoded light = encode_columns_light(launcher, a, codec, 2);

  // The compact sums rows hold exactly the bits of the encoded checksum rows.
  ASSERT_EQ(light.sums.rows(), 3u);
  ASSERT_EQ(light.sums.cols(), 40u);
  for (std::size_t br = 0; br < light.sums.rows(); ++br)
    for (std::size_t c = 0; c < light.sums.cols(); ++c)
      EXPECT_EQ(light.sums(br, c), full.data(codec.checksum_index(br), c));

  // Materialisation reproduces the standalone encoder's data bitwise.
  EXPECT_EQ(materialize_columns(a, light.sums, codec), full.data);

  // The screened single-sweep p-max equals the scan-and-reduce one (random
  // data: no bit-equal-magnitude ties, so indices agree too).
  ASSERT_EQ(light.pmax.size(), full.pmax.size());
  for (std::size_t v = 0; v < light.pmax.size(); ++v) {
    ASSERT_EQ(light.pmax[v].size(), full.pmax[v].size()) << "vector " << v;
    for (std::size_t i = 0; i < light.pmax[v].size(); ++i) {
      EXPECT_EQ(light.pmax[v][i].value, full.pmax[v][i].value) << v << "," << i;
      EXPECT_EQ(light.pmax[v][i].index, full.pmax[v][i].index) << v << "," << i;
    }
  }
}

TEST(FusedEncoder, LightRowsMatchStandaloneEncoder) {
  Rng rng(102);
  const PartitionedCodec codec(16);
  const Matrix b = uniform_matrix(40, 48, -5.0, 5.0, rng);
  aabft::gpusim::Launcher launcher;
  const EncodedMatrix full = encode_rows(launcher, b, codec, 3);
  const LightEncoded light = encode_rows_light(launcher, b, codec, 3);

  ASSERT_EQ(light.sums.rows(), 40u);
  ASSERT_EQ(light.sums.cols(), 3u);
  for (std::size_t r = 0; r < light.sums.rows(); ++r)
    for (std::size_t bc = 0; bc < light.sums.cols(); ++bc)
      EXPECT_EQ(light.sums(r, bc), full.data(r, codec.checksum_index(bc)));
  EXPECT_EQ(materialize_rows(b, light.sums, codec), full.data);

  ASSERT_EQ(light.pmax.size(), full.pmax.size());
  for (std::size_t v = 0; v < light.pmax.size(); ++v) {
    ASSERT_EQ(light.pmax[v].size(), full.pmax[v].size()) << "vector " << v;
    for (std::size_t i = 0; i < light.pmax[v].size(); ++i) {
      EXPECT_EQ(light.pmax[v][i].value, full.pmax[v][i].value) << v << "," << i;
      EXPECT_EQ(light.pmax[v][i].index, full.pmax[v][i].index) << v << "," << i;
    }
  }
}

TEST(FusedEncoder, LightEncodersFencedBitIdentical) {
  ForceInstrumentedGuard guard;
  const Matrix a = random_matrix(96, 80, 103);
  const PartitionedCodec codec(32);
  aabft::gpusim::Launcher fast_launcher(aabft::gpusim::k20c(), 1);
  const auto fast_a = encode_columns_light(fast_launcher, a, codec, 2);
  const auto fast_b = encode_rows_light(fast_launcher, a.transposed(), codec, 2);
  aabft::gpusim::set_force_instrumented(true);
  aabft::gpusim::Launcher ref_launcher(aabft::gpusim::k20c(), 1);
  const auto ref_a = encode_columns_light(ref_launcher, a, codec, 2);
  const auto ref_b = encode_rows_light(ref_launcher, a.transposed(), codec, 2);
  aabft::gpusim::set_force_instrumented(false);
  EXPECT_TRUE(fast_a.sums == ref_a.sums);
  EXPECT_TRUE(fast_b.sums == ref_b.sums);
  expect_counters_eq(log_total(fast_launcher), log_total(ref_launcher));
  for (std::size_t v = 0; v < fast_a.pmax.size(); ++v)
    EXPECT_EQ(fast_a.pmax[v].max_value(), ref_a.pmax[v].max_value());
}

// The cornerstone of the fused design: the fused product, which never
// materialises A_cc / B_rc, is bit-identical to blocked_matmul over the
// materialised encoded operands — for any blocking, because the per-element
// accumulation order (ascending k + single final merge) is blocking-
// independent.
TEST(FusedGemm, MatchesBlockedMatmulOverEncodedOperands) {
  Rng rng(104);
  const PartitionedCodec codec(16);
  for (const bool use_fma : {false, true}) {
    const Matrix a = uniform_matrix(48, 56, -2.0, 2.0, rng);
    const Matrix b = uniform_matrix(56, 32, -2.0, 2.0, rng);
    aabft::gpusim::Launcher launcher;
    const EncodedMatrix a_cc = encode_columns(launcher, a, codec, 2);
    const EncodedMatrix b_rc = encode_rows(launcher, b, codec, 2);
    aabft::linalg::GemmConfig gemm;
    gemm.use_fma = use_fma;
    const Matrix ref = aabft::linalg::blocked_matmul(launcher, a_cc.data,
                                                     b_rc.data, gemm);

    const LightEncoded a_light = encode_columns_light(launcher, a, codec, 2);
    const LightEncoded b_light = encode_rows_light(launcher, b, codec, 2);
    FusedGemmConfig fused;
    fused.use_fma = use_fma;
    const FusedProduct prod = fused_encode_matmul(
        launcher, a, b, a_light.sums, b_light.sums, codec, fused);
    EXPECT_TRUE(bits_equal(prod.c_fc, ref)) << "use_fma " << use_fma;
    EXPECT_EQ(prod.panel_detections, 0u);
    EXPECT_EQ(prod.panel_recomputes, 0u);
  }
}

TEST(FusedGemm, PipelineMatchesClassicBits) {
  Rng rng(105);
  const Matrix a = uniform_matrix(64, 48, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(48, 64, -1.0, 1.0, rng);
  AabftConfig config;
  config.bs = 16;

  aabft::gpusim::Launcher launcher;
  AabftMultiplier classic(launcher, config);
  const auto classic_result = classic.multiply(a, b);
  ASSERT_TRUE(classic_result.ok());

  config.fused_gemm = true;
  AabftMultiplier fused(launcher, config);
  const auto fused_result = fused.multiply(a, b);
  ASSERT_TRUE(fused_result.ok());

  EXPECT_TRUE(fused_result->fused);
  EXPECT_FALSE(classic_result->fused);
  EXPECT_TRUE(bits_equal(fused_result->c, classic_result->c));
  EXPECT_TRUE(bits_equal(fused_result->c_fc, classic_result->c_fc));
  EXPECT_FALSE(fused_result->error_detected());
  EXPECT_EQ(fused_result->panel_detections, 0u);
}

struct FusedRun {
  Matrix c;
  PerfCounters counters;
  std::size_t fired = 0;
  std::size_t detections = 0;
  std::size_t replays = 0;
  std::vector<double> originals;
  std::vector<double> faultys;
};

FusedRun run_fused_kernel(const Matrix& a, const Matrix& b, std::size_t bs,
                          const FusedGemmConfig& config,
                          std::span<const FaultConfig> faults,
                          bool force_instrumented) {
  aabft::gpusim::set_force_instrumented(force_instrumented);
  aabft::gpusim::Launcher launcher(aabft::gpusim::k20c(), /*workers=*/1);
  FaultController controller;
  if (!faults.empty()) {
    controller.arm_many(faults);
    launcher.set_fault_controller(&controller);
  }
  const PartitionedCodec codec(bs);
  const LightEncoded a_light = encode_columns_light(launcher, a, codec, 2);
  const LightEncoded b_light = encode_rows_light(launcher, b, codec, 2);
  FusedProduct product = fused_encode_matmul(launcher, a, b, a_light.sums,
                                             b_light.sums, codec, config);
  FusedRun run;
  run.c = std::move(product.c_fc);
  run.detections = product.panel_detections;
  run.replays = product.panel_recomputes;
  run.counters = log_total(launcher);
  run.fired = controller.fired_count();
  for (std::size_t i = 0; i < controller.armed_count(); ++i) {
    run.originals.push_back(controller.original_value(i));
    run.faultys.push_back(controller.faulty_value(i));
  }
  aabft::gpusim::set_force_instrumented(false);
  return run;
}

// 1..8-fault campaigns: the fenced fused kernel (raw-span accumulation +
// online screen + panel replay) must be observationally identical to the
// force-instrumented per-op one — same product bits, counters, fault
// bookkeeping, and screen/replay counts.
TEST(FusedGemm, RandomFaultCampaignsBitIdentical) {
  ForceInstrumentedGuard guard;
  Rng rng(3037);
  const auto num_sms =
      static_cast<std::uint64_t>(aabft::gpusim::k20c().num_sms);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 32 + 16 * rng.below(4);  // 32..80
    const Matrix a = random_matrix(n, n, 7000 + trial);
    const Matrix b = random_matrix(n, n, 8000 + trial);
    FusedGemmConfig config;
    config.use_fma = (trial % 2) == 1;
    config.check_stride = 1 + trial % 2;

    const std::size_t num_faults = 1 + rng.below(FaultController::kMaxFaults);
    std::vector<FaultConfig> faults(num_faults);
    for (auto& fault : faults) {
      const std::uint64_t site = rng.below(3);
      fault.site = site == 0   ? FaultSite::kInnerMul
                   : site == 1 ? FaultSite::kInnerAdd
                               : FaultSite::kFinalAdd;
      fault.sm_id = static_cast<int>(rng.below(num_sms));
      fault.module_id = static_cast<int>(rng.below(16));  // rx*ry = 16
      fault.k_injection = fault.site == FaultSite::kFinalAdd
                              ? 0
                              : static_cast<std::int64_t>(rng.below(n));
      fault.error_vec = 1ULL << rng.below(63);
    }
    const auto fast = run_fused_kernel(a, b, 16, config, faults, false);
    const auto ref = run_fused_kernel(a, b, 16, config, faults, true);
    EXPECT_TRUE(bits_equal(fast.c, ref.c)) << "trial " << trial;
    expect_counters_eq(fast.counters, ref.counters);
    EXPECT_EQ(fast.fired, ref.fired) << "trial " << trial;
    EXPECT_EQ(fast.detections, ref.detections) << "trial " << trial;
    EXPECT_EQ(fast.replays, ref.replays) << "trial " << trial;
    ASSERT_EQ(fast.originals.size(), ref.originals.size());
    for (std::size_t i = 0; i < fast.originals.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.originals[i]),
                std::bit_cast<std::uint64_t>(ref.originals[i]));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(fast.faultys[i]),
                std::bit_cast<std::uint64_t>(ref.faultys[i]));
    }
  }
}

// A corrupted k-panel is caught by the online screen and repaired by a tile
// replay (the consumed one-shot fault cannot refire), so the full pipeline
// ends with a clean report, rung-0 bookkeeping, and the clean product's bits.
TEST(FusedGemm, PanelDetectionRepairsInnerFault) {
  const Matrix a = random_matrix(64, 64, 106);
  const Matrix b = random_matrix(64, 64, 107);
  AabftConfig config;
  config.bs = 32;
  config.fused_gemm = true;
  config.fused.check_stride = 1;

  aabft::gpusim::Launcher clean_launcher(aabft::gpusim::k20c(), 1);
  AabftMultiplier clean_mult(clean_launcher, config);
  const auto clean = clean_mult.multiply(a, b);
  ASSERT_TRUE(clean.ok());

  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 0;
  fault.module_id = 3;
  fault.k_injection = 7;
  fault.error_vec = 1ULL << 62;  // exponent-scale corruption

  aabft::gpusim::Launcher launcher(aabft::gpusim::k20c(), 1);
  FaultController controller;
  controller.arm(fault);
  launcher.set_fault_controller(&controller);
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b);
  launcher.set_fault_controller(nullptr);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(controller.fired_count(), 1u);
  EXPECT_GE(result->panel_detections, 1u);
  EXPECT_GE(result->panel_recomputes, 1u);
  // Repaired online: the end-of-product check never saw the corruption.
  EXPECT_FALSE(result->error_detected());
  EXPECT_TRUE(result->corrections.empty());
  EXPECT_EQ(result->recomputations, 0u);
  EXPECT_TRUE(bits_equal(result->c, clean->c));
  EXPECT_TRUE(bits_equal(result->c_fc, clean->c_fc));
}

TEST(FusedGemm, LaunchesLightEncodeAndFusedKernels) {
  Rng rng(108);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  AabftConfig config;
  config.bs = 16;
  config.fused_gemm = true;
  aabft::gpusim::Launcher launcher;
  AabftMultiplier mult(launcher, config);
  ASSERT_TRUE(mult.multiply(a, a).ok());
  std::vector<std::string> names;
  for (const auto& entry : launcher.launch_log())
    names.push_back(entry.kernel_name);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "encode_a_light") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "encode_b_light") == 1);
  EXPECT_TRUE(std::count(names.begin(), names.end(), "gemm_fused") == 1);
  // No standalone encode or separate product kernel ran.
  EXPECT_EQ(std::count(names.begin(), names.end(), "encode_a"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "reduce_pmax_a"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "gemm"), 0);
}

}  // namespace
