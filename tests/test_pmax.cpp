// PMaxList tests: ordering, saturation, merging, index tracking.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "abft/pmax.hpp"
#include "core/rng.hpp"

namespace {

using aabft::Rng;
using aabft::abft::PMaxList;

TEST(PMax, KeepsLargestInDescendingOrder) {
  PMaxList list(3);
  list.offer(1.0, 10);
  list.offer(5.0, 11);
  list.offer(3.0, 12);
  list.offer(4.0, 13);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].value, 5.0);
  EXPECT_EQ(list[1].value, 4.0);
  EXPECT_EQ(list[2].value, 3.0);
  EXPECT_EQ(list.max_value(), 5.0);
  EXPECT_EQ(list.min_value(), 3.0);
  EXPECT_TRUE(list.saturated());
}

TEST(PMax, TracksIndices) {
  PMaxList list(2);
  list.offer(2.0, 7);
  list.offer(9.0, 3);
  EXPECT_TRUE(list.contains(7));
  EXPECT_TRUE(list.contains(3));
  EXPECT_FALSE(list.contains(5));
  EXPECT_EQ(list.value_at(3), 9.0);
  EXPECT_THROW((void)list.value_at(99), std::invalid_argument);
}

TEST(PMax, UnsaturatedBehaviour) {
  PMaxList list(4);
  list.offer(1.0, 0);
  EXPECT_FALSE(list.saturated());
  EXPECT_EQ(list.max_value(), 1.0);
  EXPECT_EQ(list.min_value(), 1.0);
  EXPECT_EQ(PMaxList(2).max_value(), 0.0);  // empty
}

TEST(PMax, RejectsNegativeAndBadCapacity) {
  PMaxList list(2);
  EXPECT_THROW(list.offer(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(PMaxList(0), std::invalid_argument);
  EXPECT_THROW((void)list[5], std::invalid_argument);
}

TEST(PMax, MatchesBruteForceTopP) {
  Rng rng(1);
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t p = 1 + rng.below(6);
    PMaxList list(p);
    std::vector<double> values(50);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = rng.uniform(0.0, 100.0);
      list.offer(values[i], i);
    }
    std::vector<double> sorted = values;
    std::sort(sorted.rbegin(), sorted.rend());
    ASSERT_EQ(list.size(), p);
    for (std::size_t i = 0; i < p; ++i) {
      EXPECT_EQ(list[i].value, sorted[i]);
      EXPECT_EQ(values[list[i].index], list[i].value);
    }
  }
}

TEST(PMax, MergeEqualsOfferingAll) {
  Rng rng(2);
  for (int rep = 0; rep < 50; ++rep) {
    PMaxList a(3);
    PMaxList b(3);
    PMaxList all(3);
    for (std::size_t i = 0; i < 30; ++i) {
      const double v = rng.uniform(0.0, 10.0);
      (i % 2 == 0 ? a : b).offer(v, i);
      all.offer(v, i);
    }
    a.merge(b);
    ASSERT_EQ(a.size(), all.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].value, all[i].value);
      EXPECT_EQ(a[i].index, all[i].index);
    }
  }
}

TEST(PMax, DuplicateValuesAllKept) {
  PMaxList list(3);
  list.offer(2.0, 0);
  list.offer(2.0, 1);
  list.offer(2.0, 2);
  list.offer(2.0, 3);  // ties at the boundary are dropped (<=)
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.contains(0));
  EXPECT_TRUE(list.contains(1));
  EXPECT_TRUE(list.contains(2));
}

TEST(PMax, OfferReportsComparisons) {
  PMaxList list(2);
  EXPECT_GE(list.offer(1.0, 0), 1u);
  EXPECT_GE(list.offer(2.0, 1), 1u);
  // Saturated, below min: exactly one comparison.
  EXPECT_EQ(list.offer(0.5, 2), 1u);
}

}  // namespace
