// Fault-fence fast-path A/B tests.
//
// The fenced fast path (FaultController::may_fire + MathCtx span helpers)
// must be *observationally identical* to the per-op instrumented path: same
// C bits, same PerfCounters aggregates, same fired/original/faulty fault
// bookkeeping. gpusim::set_force_instrumented(true) disables every fence,
// giving the per-op reference side of each A/B pair. Single-worker launchers
// keep multi-block fault firing deterministic (a one-shot fault whose
// coordinates exist in several blocks fires in the first block reached).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/encoder.hpp"
#include "abft/gemv.hpp"
#include "baselines/op.hpp"
#include "baselines/schemes.hpp"
#include "baselines/sea_abft.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using gpusim::FaultConfig;
using gpusim::FaultController;
using gpusim::FaultSite;
using gpusim::PerfCounters;
using linalg::Matrix;

/// RAII reset so a failing test cannot leak the global switch.
struct ForceInstrumentedGuard {
  ~ForceInstrumentedGuard() { gpusim::set_force_instrumented(false); }
};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

/// Bitwise matrix equality: faulty products legitimately contain NaNs, which
/// compare unequal to themselves under operator==.
bool bits_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(), sizeof(double) * a.size()) == 0;
}

std::uint64_t dbits(double v) { return std::bit_cast<std::uint64_t>(v); }

PerfCounters log_total(const gpusim::Launcher& launcher) {
  PerfCounters total;
  for (const auto& entry : launcher.launch_log()) total += entry.counters;
  return total;
}

void expect_counters_eq(const PerfCounters& a, const PerfCounters& b) {
  EXPECT_EQ(a.adds, b.adds);
  EXPECT_EQ(a.muls, b.muls);
  EXPECT_EQ(a.fmas, b.fmas);
  EXPECT_EQ(a.compares, b.compares);
  EXPECT_EQ(a.bytes_loaded, b.bytes_loaded);
  EXPECT_EQ(a.bytes_stored, b.bytes_stored);
}

TEST(FaultFence, MayFireIntersectsOnlyMatchingRegions) {
  FaultController controller;
  FaultConfig config;
  config.site = FaultSite::kInnerAdd;
  config.sm_id = 3;
  config.module_id = 7;
  config.k_injection = 100;
  config.error_vec = 1ULL << 52;
  controller.arm(config);

  const auto inner_lo = FaultSite::kInnerMul;
  const auto inner_hi = FaultSite::kInnerAdd;
  EXPECT_TRUE(controller.may_fire(inner_lo, inner_hi, 3, 0, 15, 96, 103));
  // Each coordinate dimension individually excludes the fault.
  EXPECT_FALSE(controller.may_fire(FaultSite::kFinalAdd, FaultSite::kFinalAdd,
                                   3, 0, 15, 96, 103));
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 2, 0, 15, 96, 103));
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 3, 8, 15, 96, 103));
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 3, 0, 6, 96, 103));
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 3, 0, 15, 101, 200));
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 3, 0, 15, 0, 99));

  // A fired fault can never fire again: the fence goes negative.
  (void)controller.maybe_inject(FaultSite::kInnerAdd, 3, 7, 100, 1.0);
  EXPECT_EQ(controller.fired_count(), 1u);
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 3, 0, 15, 96, 103));

  controller.disarm();
  EXPECT_FALSE(controller.may_fire(inner_lo, inner_hi, 3, 0, 15, 96, 103));
}

struct MatmulRun {
  Matrix c;
  PerfCounters counters;
  std::size_t fired = 0;
  std::vector<double> originals;
  std::vector<double> faultys;
};

MatmulRun run_blocked(const Matrix& a, const Matrix& b,
                      const linalg::GemmConfig& config,
                      std::span<const FaultConfig> faults,
                      gpusim::Precision precision, bool force_instrumented) {
  gpusim::set_force_instrumented(force_instrumented);
  gpusim::Launcher launcher(gpusim::k20c(), /*workers=*/1);
  launcher.set_precision(precision);
  FaultController controller;
  if (!faults.empty()) {
    controller.arm_many(faults);
    launcher.set_fault_controller(&controller);
  }
  MatmulRun run;
  run.c = linalg::blocked_matmul(launcher, a, b, config);
  run.counters = log_total(launcher);
  run.fired = controller.fired_count();
  for (std::size_t i = 0; i < controller.armed_count(); ++i) {
    run.originals.push_back(controller.original_value(i));
    run.faultys.push_back(controller.faulty_value(i));
  }
  gpusim::set_force_instrumented(false);
  return run;
}

void expect_runs_identical(const MatmulRun& fast, const MatmulRun& ref) {
  EXPECT_TRUE(bits_equal(fast.c, ref.c));
  expect_counters_eq(fast.counters, ref.counters);
  EXPECT_EQ(fast.fired, ref.fired);
  ASSERT_EQ(fast.originals.size(), ref.originals.size());
  for (std::size_t i = 0; i < fast.originals.size(); ++i) {
    EXPECT_EQ(dbits(fast.originals[i]), dbits(ref.originals[i])) << "fault " << i;
    EXPECT_EQ(dbits(fast.faultys[i]), dbits(ref.faultys[i])) << "fault " << i;
  }
}

TEST(FastPath, FaultFreeBlockedMatmulBitIdentical) {
  ForceInstrumentedGuard guard;
  // Ragged dimensions exercise both the memcpy and the padded staging path.
  const Matrix a = random_matrix(100, 83, 11);
  const Matrix b = random_matrix(83, 97, 12);
  for (const bool use_fma : {false, true}) {
    for (const auto precision :
         {gpusim::Precision::kDouble, gpusim::Precision::kSingle}) {
      linalg::GemmConfig config;
      config.use_fma = use_fma;
      const auto fast = run_blocked(a, b, config, {}, precision, false);
      const auto ref = run_blocked(a, b, config, {}, precision, true);
      expect_runs_identical(fast, ref);
    }
  }
}

TEST(FastPath, RandomFaultCampaignsBitIdentical) {
  ForceInstrumentedGuard guard;
  Rng rng(2027);
  const auto num_sms = static_cast<std::uint64_t>(gpusim::k20c().num_sms);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 32 + 16 * rng.below(4);  // 32..80
    const Matrix a = random_matrix(n, n, 1000 + trial);
    const Matrix b = random_matrix(n, n, 2000 + trial);
    linalg::GemmConfig config;
    config.use_fma = (trial % 2) == 1;

    const std::size_t num_faults = 1 + rng.below(FaultController::kMaxFaults);
    std::vector<FaultConfig> faults(num_faults);
    for (auto& fault : faults) {
      const std::uint64_t site = rng.below(3);
      fault.site = site == 0   ? FaultSite::kInnerMul
                   : site == 1 ? FaultSite::kInnerAdd
                               : FaultSite::kFinalAdd;
      fault.sm_id = static_cast<int>(rng.below(num_sms));
      fault.module_id = static_cast<int>(rng.below(16));  // rx*ry = 16
      fault.k_injection = fault.site == FaultSite::kFinalAdd
                              ? 0
                              : static_cast<std::int64_t>(rng.below(n));
      fault.error_vec = 1ULL << rng.below(63);
    }
    // Inner-mul faults can never hit an FMA kernel (the mul is fused);
    // that is part of what the A/B comparison must preserve.
    const auto fast = run_blocked(a, b, config, faults,
                                  gpusim::Precision::kDouble, false);
    const auto ref = run_blocked(a, b, config, faults,
                                 gpusim::Precision::kDouble, true);
    expect_runs_identical(fast, ref);
  }
}

TEST(FastPath, FiredFaultMatchesInstrumentedValue) {
  ForceInstrumentedGuard guard;
  const Matrix a = random_matrix(64, 64, 21);
  const Matrix b = random_matrix(64, 64, 22);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 1;
  fault.module_id = 5;
  fault.k_injection = 17;
  fault.error_vec = 1ULL << 61;
  const auto fast = run_blocked(a, b, {}, {&fault, 1},
                                gpusim::Precision::kDouble, false);
  const auto ref = run_blocked(a, b, {}, {&fault, 1},
                               gpusim::Precision::kDouble, true);
  EXPECT_EQ(fast.fired, 1u);
  expect_runs_identical(fast, ref);
  // The fault must actually corrupt the product (the fence did not skip it).
  const auto clean = run_blocked(a, b, {}, {}, gpusim::Precision::kDouble,
                                 false);
  EXPECT_FALSE(bits_equal(fast.c, clean.c));
}

TEST(FastPath, PairwiseMatmulBitIdentical) {
  ForceInstrumentedGuard guard;
  const Matrix a = random_matrix(70, 45, 31);
  const Matrix b = random_matrix(45, 66, 32);
  gpusim::Launcher fast_launcher(gpusim::k20c(), 1);
  const Matrix fast = linalg::pairwise_matmul(fast_launcher, a, b);
  gpusim::set_force_instrumented(true);
  gpusim::Launcher ref_launcher(gpusim::k20c(), 1);
  const Matrix ref = linalg::pairwise_matmul(ref_launcher, a, b);
  gpusim::set_force_instrumented(false);
  EXPECT_TRUE(fast == ref);
  expect_counters_eq(log_total(fast_launcher), log_total(ref_launcher));
}

TEST(FastPath, EncoderBitIdentical) {
  ForceInstrumentedGuard guard;
  const Matrix a = random_matrix(96, 80, 41);  // ragged 80 % 32 != 0 chunks
  const abft::PartitionedCodec codec(32);
  gpusim::Launcher fast_launcher(gpusim::k20c(), 1);
  const auto fast_cols = abft::encode_columns(fast_launcher, a, codec, 2);
  const auto fast_rows = abft::encode_rows(fast_launcher, a.transposed(),
                                           codec, 2);
  gpusim::set_force_instrumented(true);
  gpusim::Launcher ref_launcher(gpusim::k20c(), 1);
  const auto ref_cols = abft::encode_columns(ref_launcher, a, codec, 2);
  const auto ref_rows = abft::encode_rows(ref_launcher, a.transposed(),
                                          codec, 2);
  gpusim::set_force_instrumented(false);
  EXPECT_TRUE(fast_cols.data == ref_cols.data);
  EXPECT_TRUE(fast_rows.data == ref_rows.data);
  expect_counters_eq(log_total(fast_launcher), log_total(ref_launcher));
  ASSERT_EQ(fast_cols.pmax.size(), ref_cols.pmax.size());
  for (std::size_t v = 0; v < fast_cols.pmax.size(); ++v)
    EXPECT_EQ(fast_cols.pmax[v].max_value(), ref_cols.pmax[v].max_value());
}

TEST(FastPath, ProtectedGemvBitIdenticalUnderFaults) {
  ForceInstrumentedGuard guard;
  const Matrix a = random_matrix(96, 64, 51);
  Rng rng(52);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);

  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 2;
  fault.module_id = 0;
  fault.k_injection = 30;
  fault.error_vec = 1ULL << 60;

  auto run = [&](bool force) {
    gpusim::set_force_instrumented(force);
    gpusim::Launcher launcher(gpusim::k20c(), 1);
    FaultController controller;
    controller.arm(fault);
    launcher.set_fault_controller(&controller);
    abft::ProtectedGemv gemv(launcher, a, {});
    auto result = gemv.multiply(x);
    gpusim::set_force_instrumented(false);
    return std::tuple(std::move(result), log_total(launcher),
                      controller.fired_count());
  };
  const auto [fast, fast_counters, fast_fired] = run(false);
  const auto [ref, ref_counters, ref_fired] = run(true);
  EXPECT_EQ(fast.y, ref.y);
  EXPECT_EQ(fast.ok, ref.ok);
  EXPECT_EQ(fast.mismatches.size(), ref.mismatches.size());
  EXPECT_EQ(fast.recomputations, ref.recomputations);
  EXPECT_EQ(fast_fired, ref_fired);
  expect_counters_eq(fast_counters, ref_counters);
}

TEST(FastPath, ProtectedBlas3GemmPathBitIdentical) {
  // The ProtectedBlas3 redesign regression: AabftScheme::execute on a GEMM
  // descriptor must be byte-identical to the direct AabftMultiplier it wraps
  // — same product bits, same fault bookkeeping — across 1..8-fault
  // campaigns. Any divergence means the adapter grew its own math.
  ForceInstrumentedGuard guard;
  Rng rng(7027);
  const auto num_sms = static_cast<std::uint64_t>(gpusim::k20c().num_sms);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 32 + 16 * rng.below(3);  // 32..64
    const Matrix a = random_matrix(n, n, 5000 + trial);
    const Matrix b = random_matrix(n, n, 6000 + trial);

    const std::size_t num_faults = 1 + rng.below(FaultController::kMaxFaults);
    std::vector<FaultConfig> faults(num_faults);
    for (auto& fault : faults) {
      const std::uint64_t site = rng.below(3);
      fault.site = site == 0   ? FaultSite::kInnerMul
                   : site == 1 ? FaultSite::kInnerAdd
                               : FaultSite::kFinalAdd;
      fault.sm_id = static_cast<int>(rng.below(num_sms));
      fault.module_id = static_cast<int>(rng.below(16));
      fault.k_injection = fault.site == FaultSite::kFinalAdd
                              ? 0
                              : static_cast<std::int64_t>(rng.below(n));
      fault.error_vec = 1ULL << (52 + rng.below(10));
    }

    abft::AabftConfig config;
    config.bs = 16;

    auto via_scheme = [&] {
      gpusim::Launcher launcher(gpusim::k20c(), 1);
      FaultController controller;
      controller.arm_many(faults);
      launcher.set_fault_controller(&controller);
      baselines::AabftScheme scheme(launcher, config);
      auto result = scheme.execute(
          baselines::OpDescriptor::gemm(n, n, n), a, b);
      launcher.set_fault_controller(nullptr);
      return std::pair(std::move(result), controller.fired_count());
    }();
    auto via_mult = [&] {
      gpusim::Launcher launcher(gpusim::k20c(), 1);
      FaultController controller;
      controller.arm_many(faults);
      launcher.set_fault_controller(&controller);
      abft::AabftMultiplier mult(launcher, config);
      auto result = mult.multiply(a, b);
      launcher.set_fault_controller(nullptr);
      return std::pair(std::move(result), controller.fired_count());
    }();

    EXPECT_EQ(via_scheme.second, via_mult.second) << "trial " << trial;
    ASSERT_EQ(via_scheme.first.ok(), via_mult.first.ok()) << "trial " << trial;
    if (!via_scheme.first.ok()) continue;  // both refused identically
    const baselines::SchemeResult& s = *via_scheme.first;
    const abft::AabftResult& m = *via_mult.first;
    EXPECT_TRUE(bits_equal(s.c, m.c)) << "trial " << trial;
    EXPECT_EQ(s.detected, m.error_detected()) << "trial " << trial;
    EXPECT_EQ(s.corrections, m.corrections.size()) << "trial " << trial;
    EXPECT_EQ(s.block_recomputes, m.block_recomputes) << "trial " << trial;
    EXPECT_EQ(s.recomputed, m.recomputations) << "trial " << trial;
  }
}

TEST(FastPath, SeaSchemeBitIdentical) {
  ForceInstrumentedGuard guard;
  const Matrix a = random_matrix(64, 64, 61);
  const Matrix b = random_matrix(64, 64, 62);
  auto run = [&](bool force) {
    gpusim::set_force_instrumented(force);
    gpusim::Launcher launcher(gpusim::k20c(), 1);
    baselines::SeaAbftMultiplier mult(launcher, {});
    auto result = mult.multiply(a, b);
    gpusim::set_force_instrumented(false);
    return std::pair(std::move(result), log_total(launcher));
  };
  const auto [fast, fast_counters] = run(false);
  const auto [ref, ref_counters] = run(true);
  EXPECT_TRUE(fast.c == ref.c);
  EXPECT_EQ(fast.report.mismatches.size(), ref.report.mismatches.size());
  expect_counters_eq(fast_counters, ref_counters);
}

}  // namespace
