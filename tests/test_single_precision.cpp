// Single-precision pipeline tests: the simulator's binary32 mode must
// reproduce float arithmetic bit-for-bit, and A-ABFT must operate with
// t = 23 bounds — no false positives, faults detected — exactly as in the
// double pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/aabft.hpp"
#include "abft/bounds.hpp"
#include "core/rng.hpp"
#include "fp/fault_vector.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::gpusim;
using aabft::linalg::blocked_matmul;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

Matrix single_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m = uniform_matrix(n, n, -1.0, 1.0, rng);
  m.round_to_single();
  return m;
}

/// Reference float GEMM, k-ascending, computed entirely in float.
Matrix float_reference(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        const float prod =
            static_cast<float>(a(i, k)) * static_cast<float>(b(k, j));
        acc += prod;
      }
      c(i, j) = static_cast<double>(0.0f + acc);
    }
  }
  return c;
}

TEST(SinglePrecision, GemmMatchesFloatReferenceBitwise) {
  const Matrix a = single_matrix(48, 1);
  const Matrix b = single_matrix(48, 2);
  Launcher launcher;
  launcher.set_precision(Precision::kSingle);
  const Matrix c = blocked_matmul(launcher, a, b);
  EXPECT_EQ(c, float_reference(a, b));
}

TEST(SinglePrecision, RoundingIsCoarserThanDouble) {
  const Matrix a = single_matrix(64, 3);
  const Matrix b = single_matrix(64, 4);
  Launcher single;
  single.set_precision(Precision::kSingle);
  Launcher dbl;
  const Matrix c_single = blocked_matmul(single, a, b);
  const Matrix c_double = blocked_matmul(dbl, a, b);
  const double diff = c_single.max_abs_diff(c_double);
  EXPECT_GT(diff, 0.0);
  EXPECT_LT(diff, 1e-3);
}

TEST(SinglePrecision, FmaModeUsesFusedFloat) {
  const Matrix a = single_matrix(32, 5);
  const Matrix b = single_matrix(32, 6);
  Launcher launcher;
  launcher.set_precision(Precision::kSingle);
  aabft::linalg::GemmConfig config;
  config.use_fma = true;
  const Matrix c = blocked_matmul(launcher, a, b, config);
  // Reference with fmaf.
  Matrix ref(32, 32, 0.0);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < 32; ++k)
        acc = std::fmaf(static_cast<float>(a(i, k)),
                        static_cast<float>(b(k, j)), acc);
      ref(i, j) = static_cast<double>(0.0f + acc);
    }
  EXPECT_EQ(c, ref);
}

TEST(SinglePrecision, AabftCleanRunWithT23) {
  const Matrix a = single_matrix(64, 7);
  const Matrix b = single_matrix(64, 8);
  Launcher launcher;
  launcher.set_precision(Precision::kSingle);
  aabft::abft::AabftConfig config;
  config.bs = 16;
  config.bounds.t = 23;
  aabft::abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
}

TEST(SinglePrecision, T23BoundsAreOrdersWiderThanT52) {
  aabft::abft::BoundParams t23;
  t23.t = 23;
  aabft::abft::BoundParams t52;
  const double e23 = aabft::abft::checksum_epsilon(64, 16, 1.0, 1.0, t23);
  const double e52 = aabft::abft::checksum_epsilon(64, 16, 1.0, 1.0, t52);
  EXPECT_GT(e23 / e52, 1e8);
}

TEST(SinglePrecision, MismatchedTRejected) {
  Launcher launcher;
  launcher.set_precision(Precision::kSingle);
  aabft::abft::AabftConfig config;  // t = 52 by default
  EXPECT_THROW(aabft::abft::AabftMultiplier(launcher, config),
               std::invalid_argument);
  Launcher dbl;
  config.bounds.t = 23;  // single-precision bounds on a double pipeline
  EXPECT_THROW(aabft::abft::AabftMultiplier(dbl, config),
               std::invalid_argument);
}

TEST(SinglePrecision, FaultInjectionTargetsFloatBits) {
  const Matrix a = single_matrix(32, 9);
  const Matrix b = single_matrix(32, 10);
  Launcher launcher;
  launcher.set_precision(Precision::kSingle);
  const Matrix clean = blocked_matmul(launcher, a, b);

  FaultController controller;
  launcher.set_fault_controller(&controller);
  Rng rng(11);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.k_injection = 3;
  fault.error_vec = aabft::fp::make_error_vec32(aabft::fp::BitField::kExponent,
                                                1, rng);
  controller.arm(fault);
  const Matrix faulty = blocked_matmul(launcher, a, b);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 32; ++j)
      if (clean(i, j) != faulty(i, j)) ++diffs;
  EXPECT_EQ(diffs, 1u);
  // The faulty value is still float-representable (bits flipped in the
  // binary32 pattern).
  const double fv = controller.faulty_value();
  EXPECT_EQ(static_cast<double>(static_cast<float>(fv)), fv);
}

TEST(SinglePrecision, AabftDetectsInjectedFaultWithT23) {
  const Matrix a = single_matrix(64, 12);
  const Matrix b = single_matrix(64, 13);
  Launcher launcher;
  launcher.set_precision(Precision::kSingle);
  FaultController controller;
  launcher.set_fault_controller(&controller);
  Rng rng(14);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = 1;
  fault.module_id = 2;
  fault.k_injection = 9;
  fault.error_vec = aabft::fp::make_error_vec32(aabft::fp::BitField::kExponent,
                                                2, rng);
  controller.arm(fault);

  aabft::abft::AabftConfig config;
  config.bs = 16;
  config.bounds.t = 23;
  aabft::abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
}

TEST(SinglePrecision, ErrorVec32Geometry) {
  using namespace aabft::fp;
  EXPECT_EQ(field_width32(BitField::kMantissa), 23);
  EXPECT_EQ(field_width32(BitField::kExponent), 8);
  EXPECT_EQ(field_offset32(BitField::kSign), 31);
  Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    const auto vec = make_error_vec32(BitField::kMantissa, 3, rng);
    EXPECT_EQ(vec >> 23, 0u);  // stays inside the float mantissa
    EXPECT_EQ(std::popcount(vec), 3);
  }
}

}  // namespace
