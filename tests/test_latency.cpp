// LatencyRecorder: exact stats, quantile error bound, lossless merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/latency.hpp"
#include "core/rng.hpp"

namespace {

using aabft::LatencyRecorder;
using aabft::Rng;

TEST(Latency, EmptyRecorderReportsZeros) {
  const LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.max(), 0u);
  EXPECT_DOUBLE_EQ(rec.mean(), 0.0);
  EXPECT_EQ(rec.p50(), 0u);
  EXPECT_EQ(rec.p99(), 0u);
}

TEST(Latency, CountSumMaxAreExact) {
  LatencyRecorder rec;
  std::uint64_t sum = 0;
  for (std::uint64_t v : {5u, 17u, 1000u, 3u, 123456u}) {
    rec.record(v);
    sum += v;
  }
  EXPECT_EQ(rec.count(), 5u);
  EXPECT_EQ(rec.max(), 123456u);
  EXPECT_DOUBLE_EQ(rec.mean(), static_cast<double>(sum) / 5.0);
}

TEST(Latency, SmallValuesHaveExactQuantiles) {
  LatencyRecorder rec;
  for (std::uint64_t v = 0; v < 16; ++v) rec.record(v);  // one per exact bucket
  EXPECT_EQ(rec.quantile(0.0), 0u);
  EXPECT_EQ(rec.p50(), 7u);  // 8th smallest of 0..15
  EXPECT_EQ(rec.quantile(1.0), 15u);
}

// The log-bucket representation guarantees quantile() returns the lower
// bound of the sample's bucket: within a relative 2^-4 below the value.
TEST(Latency, QuantileErrorWithinBucketWidth) {
  Rng rng(42);
  std::vector<std::uint64_t> samples;
  LatencyRecorder rec;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(10'000'000) + 1;
    samples.push_back(v);
    rec.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(q * 5000.0 + 0.999999) - 1;
    const double exact = static_cast<double>(samples[rank]);
    const double estimate = static_cast<double>(rec.quantile(q));
    EXPECT_LE(estimate, exact);
    EXPECT_GE(estimate, exact * (1.0 - 1.0 / 16.0) - 1.0)
        << "q=" << q << " exact=" << exact;
  }
}

TEST(Latency, QuantilesAreMonotone) {
  Rng rng(7);
  LatencyRecorder rec;
  for (int i = 0; i < 1000; ++i) rec.record(rng.below(1u << 20));
  std::uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const std::uint64_t v = rec.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

// merge() must be lossless: per-thread recorders merged together report the
// same stats as one recorder fed every sample.
TEST(Latency, MergeEqualsCombinedRecording) {
  Rng rng(11);
  LatencyRecorder combined;
  std::vector<std::vector<std::uint64_t>> per_thread(4);
  for (std::size_t t = 0; t < per_thread.size(); ++t)
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t v = rng.below(1u << 24);
      per_thread[t].push_back(v);
      combined.record(v);
    }

  std::vector<LatencyRecorder> recorders(per_thread.size());
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < per_thread.size(); ++t)
    threads.emplace_back([&, t] {
      for (const std::uint64_t v : per_thread[t]) recorders[t].record(v);
    });
  for (auto& th : threads) th.join();

  LatencyRecorder merged;
  for (const auto& rec : recorders) merged.merge(rec);

  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_EQ(merged.max(), combined.max());
  EXPECT_DOUBLE_EQ(merged.mean(), combined.mean());
  for (double q : {0.25, 0.5, 0.95, 0.99, 1.0})
    EXPECT_EQ(merged.quantile(q), combined.quantile(q));
}

}  // namespace
