// Norm kernel tests (the SEA-ABFT substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/norms.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::linalg;

TEST(Norms, HostNorm2KnownValue) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_EQ(norm2(v), 5.0);
  EXPECT_EQ(norm2(std::vector<double>{}), 0.0);
}

TEST(Norms, RowNormsMatchHost) {
  Rng rng(1);
  const Matrix a = uniform_matrix(13, 29, -2.0, 2.0, rng);
  aabft::gpusim::Launcher launcher;
  const auto norms = row_norms2(launcher, a);
  ASSERT_EQ(norms.size(), 13u);
  for (std::size_t i = 0; i < 13; ++i)
    EXPECT_EQ(norms[i], norm2(a.row(i))) << "row " << i;
}

TEST(Norms, ColNormsMatchHost) {
  Rng rng(2);
  const Matrix a = uniform_matrix(17, 11, -2.0, 2.0, rng);
  aabft::gpusim::Launcher launcher;
  const auto norms = col_norms2(launcher, a);
  ASSERT_EQ(norms.size(), 11u);
  for (std::size_t j = 0; j < 11; ++j) {
    const auto col = a.col(j);
    EXPECT_EQ(norms[j], norm2(col)) << "col " << j;
  }
}

TEST(Norms, KernelsCountWork) {
  Rng rng(3);
  const Matrix a = uniform_matrix(8, 16, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  (void)row_norms2(launcher, a);
  ASSERT_EQ(launcher.launch_log().size(), 1u);
  const auto stats = launcher.launch_log().front();
  EXPECT_EQ(stats.kernel_name, "row_norms");
  EXPECT_EQ(stats.counters.muls, 8u * 16u);
  EXPECT_EQ(stats.counters.adds, 8u * 16u);
  EXPECT_EQ(stats.counters.bytes_loaded, 8u * 16u * 8u);
}

TEST(Norms, ZeroMatrixGivesZeroNorms) {
  const Matrix a(4, 4, 0.0);
  aabft::gpusim::Launcher launcher;
  for (const double n : row_norms2(launcher, a)) EXPECT_EQ(n, 0.0);
  for (const double n : col_norms2(launcher, a)) EXPECT_EQ(n, 0.0);
}

}  // namespace
