// BLAS-style protected_gemm tests.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/blas.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

AabftConfig cfg() {
  AabftConfig config;
  config.bs = 16;
  return config;
}

TEST(ProtectedGemm, PlainProduct) {
  Rng rng(1);
  const Matrix a = uniform_matrix(24, 40, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(40, 18, -1.0, 1.0, rng);
  Matrix c(24, 18, 0.0);
  Launcher launcher;
  const auto result = protected_gemm(launcher, 1.0, a, b, 0.0, c, cfg());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok);
  // alpha = 1, beta = 0: the epilogue multiplies by 1 and adds 0 * old.
  const Matrix ref = naive_matmul(a, b, false);
  EXPECT_LT(c.max_abs_diff(ref), 1e-14);
}

TEST(ProtectedGemm, AlphaBetaAccumulation) {
  Rng rng(2);
  const std::size_t n = 32;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix c0 = uniform_matrix(n, n, -1.0, 1.0, rng);
  Matrix c = c0;
  Launcher launcher;
  (void)protected_gemm(launcher, 2.5, a, b, -0.5, c, cfg());
  const Matrix ab = naive_matmul(a, b, false);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      worst = std::max(worst,
                       std::fabs(c(i, j) - (2.5 * ab(i, j) - 0.5 * c0(i, j))));
  EXPECT_LT(worst, 1e-13);
}

TEST(ProtectedGemm, AlphaZeroSkipsTheProduct) {
  Rng rng(3);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 16, -1.0, 1.0, rng);
  Matrix c(16, 16, 4.0);
  Launcher launcher;
  const auto result = protected_gemm(launcher, 0.0, a, b, 0.25, c, cfg());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok);
  EXPECT_TRUE(launcher.launch_log().empty());  // no kernels ran
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j) EXPECT_EQ(c(i, j), 1.0);
}

TEST(ProtectedGemm, SurvivesInjectedFault) {
  Rng rng(4);
  const std::size_t n = 48;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Matrix c(n, n, 0.0);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.k_injection = 7;
  fault.error_vec = 1ULL << 61;
  controller.arm(fault);
  const auto result = protected_gemm(launcher, 1.0, a, b, 0.0, c, cfg());
  launcher.set_fault_controller(nullptr);
  ASSERT_TRUE(controller.fired());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(result->faults_detected, 1u);
  EXPECT_LT(c.max_abs_diff(naive_matmul(a, b, false)), 1e-9);
}

TEST(ProtectedGemm, ShapeValidation) {
  Matrix a(4, 5);
  Matrix b(5, 6);
  Matrix c_bad(4, 5);
  Launcher launcher;
  // Shape misuse is recoverable: reported through the Result channel
  // (DESIGN.md §4.7), with C left untouched; unchecked value() access still
  // throws the old diagnostic.
  const auto bad_c = protected_gemm(launcher, 1.0, a, b, 0.0, c_bad, cfg());
  ASSERT_FALSE(bad_c.ok());
  EXPECT_EQ(bad_c.error().code, aabft::ErrorCode::kShapeMismatch);
  Matrix b_bad(4, 6);
  Matrix c(4, 6);
  const auto bad_b = protected_gemm(launcher, 1.0, a, b_bad, 0.0, c, cfg());
  ASSERT_FALSE(bad_b.ok());
  EXPECT_EQ(bad_b.error().code, aabft::ErrorCode::kShapeMismatch);
  EXPECT_THROW((void)protected_gemm(launcher, 1.0, a, b_bad, 0.0, c, cfg())
                   .value(),
               std::invalid_argument);
}

}  // namespace
