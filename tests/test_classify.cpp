// Error-classification tests (paper Section VI-C three-class scheme).
#include <gtest/gtest.h>

#include "abft/classify.hpp"

namespace {

using namespace aabft::abft;

RoundingStats stats(double mean, double sigma) { return {mean, sigma}; }

TEST(Classify, WithinSigmaIsRoundingNoise) {
  EXPECT_EQ(classify_error(0.0, stats(0.0, 1e-12), 3.0),
            ErrorClass::kRoundingNoise);
  EXPECT_EQ(classify_error(9e-13, stats(0.0, 1e-12), 3.0),
            ErrorClass::kRoundingNoise);
  EXPECT_EQ(classify_error(1e-12, stats(0.0, 1e-12), 3.0),
            ErrorClass::kRoundingNoise);  // boundary inclusive
}

TEST(Classify, BetweenSigmaAndOmegaSigmaIsTolerable) {
  EXPECT_EQ(classify_error(2e-12, stats(0.0, 1e-12), 3.0),
            ErrorClass::kTolerable);
  EXPECT_EQ(classify_error(3e-12, stats(0.0, 1e-12), 3.0),
            ErrorClass::kTolerable);  // boundary inclusive
}

TEST(Classify, BeyondOmegaSigmaIsCritical) {
  EXPECT_EQ(classify_error(3.1e-12, stats(0.0, 1e-12), 3.0),
            ErrorClass::kCritical);
  EXPECT_EQ(classify_error(1.0, stats(0.0, 1e-12), 3.0),
            ErrorClass::kCritical);
}

TEST(Classify, MeanShiftsTheThresholds) {
  // |mean| participates in both thresholds.
  const RoundingStats s = stats(1e-12, 1e-12);
  EXPECT_EQ(classify_error(2e-12, s, 3.0), ErrorClass::kRoundingNoise);
  EXPECT_EQ(classify_error(3e-12, s, 3.0), ErrorClass::kTolerable);
  EXPECT_EQ(classify_error(4.1e-12, s, 3.0), ErrorClass::kCritical);
}

TEST(Classify, OmegaWidensTheTolerableBand) {
  const RoundingStats s = stats(0.0, 1e-12);
  EXPECT_EQ(classify_error(2.5e-12, s, 2.0), ErrorClass::kCritical);
  EXPECT_EQ(classify_error(2.5e-12, s, 3.0), ErrorClass::kTolerable);
}

TEST(Classify, InvalidInputsRejected) {
  EXPECT_THROW((void)classify_error(-1.0, stats(0.0, 1.0), 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)classify_error(1.0, stats(0.0, 1.0), 0.5),
               std::invalid_argument);
}

TEST(Classify, Names) {
  EXPECT_EQ(to_string(ErrorClass::kRoundingNoise), "rounding-noise");
  EXPECT_EQ(to_string(ErrorClass::kTolerable), "tolerable");
  EXPECT_EQ(to_string(ErrorClass::kCritical), "critical");
}

}  // namespace
