// GemmServer end-to-end tests: admission control, priority dispatch,
// cross-request batching, per-request fault plans, the recovery ladder, and
// the non-GEMM request kinds (SYRK, Cholesky, LU) of the ProtectedBlas3 API.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <string_view>
#include <utility>
#include <vector>

#include "abft/blas3.hpp"
#include "abft/protected_lu.hpp"
#include "baselines/op.hpp"
#include "core/result.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"
#include "serve/recovery.hpp"
#include "serve/server.hpp"

namespace {

using namespace aabft;
using namespace aabft::serve;
using gpusim::FaultConfig;
using gpusim::FaultSite;
using gpusim::Launcher;
using linalg::Matrix;
using linalg::naive_matmul;
using linalg::uniform_matrix;

GemmRequest make_request(const Matrix& a, const Matrix& b,
                         Priority priority = Priority::kNormal) {
  GemmRequest request;
  request.a = a;
  request.b = b;
  request.priority = priority;
  return request;
}

GemmRequest make_op_request(OpKind kind, const Matrix& a) {
  GemmRequest request;
  request.kind = kind;
  request.a = a;
  return request;
}

/// Well-conditioned SPD matrix: M M^T + n I.
Matrix spd_matrix(std::size_t n, Rng& rng) {
  const Matrix m = uniform_matrix(n, n, -1.0, 1.0, rng);
  Matrix a = naive_matmul(m, m.transposed(), false);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<double>(n);
  return a;
}

double chol_residual(const Matrix& a, const Matrix& l) {
  abft::CholResult chol;
  chol.l = l;
  return abft::ProtectedCholesky::residual(a, chol);
}

void expect_monotone(const RequestTrace& t) {
  EXPECT_LE(t.enqueue_ns, t.dispatch_ns);
  EXPECT_LE(t.dispatch_ns, t.compute_ns);
  EXPECT_LE(t.compute_ns, t.repair_ns);
  EXPECT_LE(t.repair_ns, t.complete_ns);
}

TEST(Serve, SingleRequestIsBitIdenticalAndTraced) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(7);
  // Non-block-multiple extents exercise the pad -> multiply -> unpad path.
  const Matrix a = uniform_matrix(48, 40, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(40, 56, -1.0, 1.0, rng);

  auto admitted = server.submit(make_request(a, b));
  ASSERT_TRUE(admitted.ok()) << admitted.error().message;
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.rung, RecoveryRung::kNone);
  EXPECT_GT(response.id, 0u);
  EXPECT_EQ(response.c, naive_matmul(a, b, false));
  expect_monotone(response.trace);
  EXPECT_FALSE(response.trace.detected);
  EXPECT_EQ(response.trace.batch_size, 1u);
  EXPECT_GE(response.trace.queue_depth_at_admission, 1u);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.e2e_ns.count(), 1u);
}

TEST(Serve, AdmissionRejectsBadShapesAsValues) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(3);
  const Matrix a = uniform_matrix(8, 4, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(5, 7, -1.0, 1.0, rng);

  auto mismatched = server.submit(make_request(a, b));
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.error().code, ErrorCode::kShapeMismatch);

  GemmRequest empty;
  auto rejected = server.submit(std::move(empty));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kInvalidArgument);

  EXPECT_EQ(server.stats().rejected_shape, 2u);
  EXPECT_EQ(server.stats().admitted, 0u);
}

TEST(Serve, AdmissionRejectsWhenQueueIsFull) {
  Launcher launcher;
  ServeConfig config;
  config.admission.queue_capacity = 4;
  config.start_paused = true;
  GemmServer server(launcher, config);
  Rng rng(11);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);

  std::vector<std::future<GemmResponse>> pending;
  for (int i = 0; i < 4; ++i) {
    auto admitted = server.submit(make_request(a, b));
    ASSERT_TRUE(admitted.ok()) << admitted.error().message;
    pending.push_back(std::move(*admitted));
  }
  auto overflow = server.submit(make_request(a, b));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.error().code, ErrorCode::kOverloaded);
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);

  server.resume();
  for (auto& f : pending) EXPECT_TRUE(f.get().clean);
}

TEST(Serve, AdmissionRejectsInfeasibleDeadlines) {
  Launcher launcher;
  ServeConfig config;
  config.admission.est_ns_per_flop = 1e9;  // absurd cost model on purpose
  GemmServer server(launcher, config);
  Rng rng(13);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);

  GemmRequest request = make_request(a, b);
  request.deadline_ms = 1.0;
  auto rejected = server.submit(std::move(request));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, ErrorCode::kDeadlineInfeasible);
  EXPECT_EQ(server.stats().rejected_deadline, 1u);

  // Without a deadline the same request sails through the same cost model.
  auto admitted = server.submit(make_request(a, b));
  ASSERT_TRUE(admitted.ok());
  EXPECT_TRUE(admitted->get().clean);
}

TEST(Serve, HighPriorityDispatchesFirst) {
  Launcher launcher;
  ServeConfig config;
  config.start_paused = true;
  GemmServer server(launcher, config);
  Rng rng(17);
  // Distinct shapes so the batch assembler cannot coalesce them.
  const Matrix a1 = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b1 = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix a2 = uniform_matrix(33, 32, -1.0, 1.0, rng);
  const Matrix b2 = uniform_matrix(32, 33, -1.0, 1.0, rng);
  const Matrix a3 = uniform_matrix(48, 32, -1.0, 1.0, rng);
  const Matrix b3 = uniform_matrix(32, 48, -1.0, 1.0, rng);

  auto batch = server.submit(make_request(a1, b1, Priority::kBatch));
  auto normal = server.submit(make_request(a2, b2, Priority::kNormal));
  auto high = server.submit(make_request(a3, b3, Priority::kHigh));
  ASSERT_TRUE(batch.ok() && normal.ok() && high.ok());
  server.resume();

  const GemmResponse r_high = high->get();
  const GemmResponse r_normal = normal->get();
  const GemmResponse r_batch = batch->get();
  EXPECT_LE(r_high.trace.dispatch_ns, r_normal.trace.dispatch_ns);
  EXPECT_LE(r_normal.trace.dispatch_ns, r_batch.trace.dispatch_ns);
}

TEST(Serve, BatchingCoalescesShapeCompatibleRequests) {
  Launcher launcher;
  ServeConfig config;
  config.start_paused = true;
  config.batch.max_batch = 8;
  GemmServer server(launcher, config);
  Rng rng(19);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix odd_a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix odd_b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  std::vector<std::future<GemmResponse>> same;
  for (int i = 0; i < 4; ++i) {
    auto admitted = server.submit(make_request(a, b));
    ASSERT_TRUE(admitted.ok());
    same.push_back(std::move(*admitted));
  }
  auto odd = server.submit(make_request(odd_a, odd_b));
  ASSERT_TRUE(odd.ok());
  server.resume();

  for (auto& f : same) {
    const GemmResponse response = f.get();
    EXPECT_TRUE(response.clean);
    EXPECT_EQ(response.trace.batch_size, 4u) << "same-shape requests coalesce";
    EXPECT_EQ(response.c, ref) << "batched result bit-identical";
  }
  EXPECT_EQ(odd->get().trace.batch_size, 1u);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_requests, 4u);
  EXPECT_EQ(stats.max_batch, 4u);
}

TEST(Serve, FaultedRequestIsRepairedClean) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(23);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  GemmRequest request = make_request(a, b);
  FaultConfig fault;  // deterministic: block 0 runs on SM 0, module 0, k = 0
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.error_vec = 1ULL << 60;
  request.fault_plan = {fault};
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.trace.faults_armed, 1u);
  EXPECT_EQ(response.trace.faults_fired, 1u);
  EXPECT_TRUE(response.trace.detected);
  EXPECT_EQ(response.trace.full_recomputes, 0u)
      << "single-fault damage must be repaired below the full-recompute rung";
  expect_monotone(response.trace);
  if (response.trace.corrections == 0) {
    EXPECT_EQ(response.c, ref);
  } else {
    for (std::size_t i = 0; i < ref.rows(); ++i)
      for (std::size_t j = 0; j < ref.cols(); ++j)
        EXPECT_NEAR(response.c(i, j), ref(i, j),
                    1e-9 * std::max(1.0, std::abs(ref(i, j))));
  }

  // The one-shot fault is consumed: a follow-up request on the same server
  // is pristine.
  auto again = server.submit(make_request(a, b));
  ASSERT_TRUE(again.ok());
  const GemmResponse clean = again->get();
  EXPECT_FALSE(clean.trace.detected);
  EXPECT_EQ(clean.c, ref);
}

TEST(Serve, UnlocalisableFaultsTakeTheBlockRecomputeRung) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(29);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  // Two corrupted elements in one checksum block defeat single-error
  // localisation; the serving config's per-block recompute rung repairs the
  // block bit-exactly without a full re-execution (cf. test_recompute.cpp,
  // where the classic ladder must fall back to a full recompute).
  GemmRequest request = make_request(a, b);
  std::vector<FaultConfig> faults(2);
  faults[0].site = FaultSite::kFinalAdd;
  faults[0].sm_id = 0;
  faults[0].module_id = 0;
  faults[0].error_vec = 1ULL << 60;
  faults[1] = faults[0];
  faults[1].module_id = 1;
  request.fault_plan = faults;
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();

  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.trace.faults_fired, 2u);
  EXPECT_EQ(response.rung, RecoveryRung::kBlockRecompute);
  EXPECT_GE(response.trace.block_recomputes, 1u);
  EXPECT_EQ(response.trace.full_recomputes, 0u);
  EXPECT_EQ(response.trace.corrections, 0u);
  EXPECT_EQ(response.c, ref) << "block recompute is bit-exact";
}

TEST(Serve, PanelChecksDetectAndRepairInFlight) {
  Launcher launcher;
  GemmServer server(launcher);  // default_aabft: fused online checking on
  Rng rng(53);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  // An inner-loop fault lands inside a k-panel of the fused kernel; the
  // online panel screen must catch it mid-product and replay the tile, so
  // the final verify sees a clean product (earliest ladder rung).
  GemmRequest request = make_request(a, b);
  FaultConfig fault;  // deterministic: tile 0 runs on SM 0
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 0;
  fault.module_id = 3;
  fault.k_injection = 7;
  fault.error_vec = 1ULL << 62;
  request.fault_plan = {fault};
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.trace.faults_fired, 1u);
  EXPECT_TRUE(response.trace.fused_encode);
  EXPECT_GE(response.trace.panel_detections, 1u);
  EXPECT_GE(response.trace.panel_recomputes, 1u);
  EXPECT_EQ(response.rung, RecoveryRung::kPanelRecompute);
  EXPECT_EQ(std::string_view(to_string(response.rung)), "panel-recompute");
  EXPECT_EQ(response.trace.corrections, 0u)
      << "panel replay repairs before the final check needs to patch";
  EXPECT_EQ(response.trace.full_recomputes, 0u);
  EXPECT_EQ(response.c, ref) << "panel replay is bit-exact";
  expect_monotone(response.trace);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.panel_detections, 1u);
  EXPECT_GE(stats.fused_encode_requests, 1u);
}

// ---- non-GEMM request kinds ------------------------------------------------

TEST(Serve, SyrkRequestIsBitIdentical) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(37);
  const Matrix a = uniform_matrix(48, 40, -1.0, 1.0, rng);  // pads internally
  const Matrix ref = naive_matmul(a, a.transposed(), false);

  auto admitted = server.submit(make_op_request(OpKind::kSyrk, a));
  ASSERT_TRUE(admitted.ok()) << admitted.error().message;
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.kind, OpKind::kSyrk);
  EXPECT_EQ(response.c, ref);
  expect_monotone(response.trace);

  server.stop();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed_by_kind[static_cast<std::size_t>(OpKind::kSyrk)],
            1u);
}

TEST(Serve, CholeskyRequestFactorsSpdInput) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(41);
  const Matrix a = spd_matrix(64, rng);

  auto admitted = server.submit(make_op_request(OpKind::kCholesky, a));
  ASSERT_TRUE(admitted.ok()) << admitted.error().message;
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.kind, OpKind::kCholesky);
  ASSERT_EQ(response.c.rows(), 64u);
  ASSERT_EQ(response.c.cols(), 64u);
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = i + 1; j < 64; ++j)
      EXPECT_EQ(response.c(i, j), 0.0) << "L is lower triangular";
  EXPECT_LE(chol_residual(a, response.c), 1e-9);

  server.stop();
  EXPECT_EQ(server.stats().completed_by_kind[static_cast<std::size_t>(
                OpKind::kCholesky)],
            1u);
}

TEST(Serve, LuRequestFactorsWithPivoting) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(43);
  const std::size_t n = 64;
  Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<double>(n);  // well conditioned

  auto admitted = server.submit(make_op_request(OpKind::kLu, a));
  ASSERT_TRUE(admitted.ok()) << admitted.error().message;
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.kind, OpKind::kLu);
  ASSERT_EQ(response.perm.size(), n);
  std::vector<std::size_t> sorted = response.perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(sorted[i], i) << "perm is a permutation of 0..n-1";

  abft::LuResult lu;
  lu.lu = response.c;
  lu.perm = response.perm;
  EXPECT_LE(abft::ProtectedLu::residual(a, lu), 1e-9);
}

TEST(Serve, AdmissionRejectsRectangularFactorizations) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(47);
  const Matrix rect = uniform_matrix(8, 4, -1.0, 1.0, rng);

  auto chol = server.submit(make_op_request(OpKind::kCholesky, rect));
  ASSERT_FALSE(chol.ok());
  EXPECT_EQ(chol.error().code, ErrorCode::kShapeMismatch);
  auto lu = server.submit(make_op_request(OpKind::kLu, rect));
  ASSERT_FALSE(lu.ok());
  EXPECT_EQ(lu.error().code, ErrorCode::kShapeMismatch);
  EXPECT_EQ(server.stats().rejected_shape, 2u);
}

TEST(Serve, BatchKeySeparatesOpKinds) {
  // A 64x64 SYRK and a 64x64x64 GEMM share extents but not a compute
  // pipeline; the batch key (which includes the op kind) must keep them in
  // separate dispatches.
  Launcher launcher;
  ServeConfig config;
  config.start_paused = true;
  config.batch.max_batch = 8;
  GemmServer server(launcher, config);
  Rng rng(53);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);

  auto g1 = server.submit(make_request(a, b));
  auto g2 = server.submit(make_request(a, b));
  auto s1 = server.submit(make_op_request(OpKind::kSyrk, a));
  auto s2 = server.submit(make_op_request(OpKind::kSyrk, a));
  ASSERT_TRUE(g1.ok() && g2.ok() && s1.ok() && s2.ok());
  server.resume();

  EXPECT_EQ(g1->get().trace.batch_size, 2u);
  EXPECT_EQ(g2->get().trace.batch_size, 2u);
  const GemmResponse r1 = s1->get();
  const GemmResponse r2 = s2->get();
  EXPECT_EQ(r1.trace.batch_size, 2u) << "same-kind SYRKs coalesce";
  EXPECT_EQ(r1.c, naive_matmul(a, a.transposed(), false));
  EXPECT_EQ(r2.c, r1.c);

  server.stop();
  EXPECT_EQ(server.stats().batches, 2u);
}

TEST(Serve, FaultedSyrkIsRepairedClean) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(59);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, a.transposed(), false);

  GemmRequest request = make_op_request(OpKind::kSyrk, a);
  FaultConfig fault;  // deterministic: block 0 runs on SM 0, module 0, k = 0
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.error_vec = 1ULL << 60;
  request.fault_plan = {fault};
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.trace.faults_fired, 1u);
  EXPECT_TRUE(response.trace.detected);
  EXPECT_EQ(response.trace.full_recomputes, 0u);
  if (response.trace.corrections == 0) {
    EXPECT_EQ(response.c, ref);
  } else {
    for (std::size_t i = 0; i < ref.rows(); ++i)
      for (std::size_t j = 0; j < ref.cols(); ++j)
        EXPECT_NEAR(response.c(i, j), ref(i, j),
                    1e-9 * std::max(1.0, std::abs(ref(i, j))));
  }
}

TEST(Serve, FaultedCholeskyIsRepairedClean) {
  Launcher launcher;
  GemmServer server(launcher);
  Rng rng(61);
  const std::size_t n = 64;
  const Matrix a = spd_matrix(n, rng);

  // The fault lands in the first protected trailing update (the 32x32
  // A22 -= L21 L21^T SYRK at panel 0): the scheme must detect and repair it
  // inside the factorisation, never in the served factors.
  GemmRequest request = make_op_request(OpKind::kCholesky, a);
  FaultConfig fault;
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.error_vec = 1ULL << 60;
  request.fault_plan = {fault};
  auto admitted = server.submit(std::move(request));
  ASSERT_TRUE(admitted.ok());
  const GemmResponse response = admitted->get();

  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.clean);
  EXPECT_EQ(response.trace.faults_fired, 1u);
  EXPECT_TRUE(response.trace.detected);
  EXPECT_EQ(response.trace.full_recomputes, 0u)
      << "single-fault damage must be repaired below the full-recompute rung";
  EXPECT_LE(chol_residual(a, response.c), 1e-9);
}

TEST(Serve, StopDrainsQueuedRequests) {
  Launcher launcher;
  ServeConfig config;
  config.start_paused = true;
  GemmServer server(launcher, config);
  Rng rng(31);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);

  std::vector<std::future<GemmResponse>> pending;
  for (int i = 0; i < 6; ++i) {
    auto admitted = server.submit(make_request(a, b));
    ASSERT_TRUE(admitted.ok());
    pending.push_back(std::move(*admitted));
  }
  server.stop();  // must serve the backlog before joining
  for (auto& f : pending) EXPECT_TRUE(f.get().clean);
  EXPECT_EQ(server.stats().completed, 6u);

  // Post-stop submissions are refused as overload.
  auto late = server.submit(make_request(a, b));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kOverloaded);
}

// ---- recovery-ladder unit tests (fake schemes, no launcher) ---------------

class FakeScheme final : public baselines::ProtectedBlas3 {
 public:
  FakeScheme(std::string_view name, int clean_after,
             bool factorizations = true)
      : name_(name), clean_after_(clean_after),
        factorizations_(factorizations) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] bool supports(baselines::OpKind kind) const noexcept override {
    return factorizations_ || kind == baselines::OpKind::kGemm;
  }
  [[nodiscard]] Result<baselines::SchemeResult> execute(
      const baselines::OpDescriptor& desc, const Matrix& a,
      const Matrix&) override {
    if (!supports(desc.kind))
      return unsupported_op_error("fake scheme: unsupported kind");
    ++calls;
    last_kind = desc.kind;
    baselines::SchemeResult result;
    result.c = a;
    result.detected = true;
    result.clean = calls > clean_after_;
    return result;
  }
  int calls = 0;
  baselines::OpKind last_kind = baselines::OpKind::kGemm;

 private:
  std::string_view name_;
  int clean_after_;
  bool factorizations_;
};

const baselines::OpDescriptor kFakeDesc = baselines::OpDescriptor::gemm(2, 2, 2);

TEST(RecoveryLadder, RetrySettlesTransientFailures) {
  FakeScheme primary("fake", /*clean_after=*/1);  // first call unclean
  const Matrix a(2, 2, 1.0);
  RecoveryPolicy policy;  // retry_budget = 1
  auto outcome = run_ladder(primary, nullptr, kFakeDesc, a, a,
                            primary.multiply(a, a), policy);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.rung, RecoveryRung::kRetry);
  EXPECT_EQ(outcome.retries, 1u);
  EXPECT_FALSE(outcome.tmr_escalated);
}

TEST(RecoveryLadder, EscalatesToTmrWhenRetriesExhaust) {
  FakeScheme primary("fake", /*clean_after=*/100);  // never clean
  FakeScheme tmr("fake-tmr", /*clean_after=*/0);    // always clean
  const Matrix a(2, 2, 1.0);
  RecoveryPolicy policy;
  auto outcome = run_ladder(primary, &tmr, kFakeDesc, a, a,
                            primary.multiply(a, a), policy);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.rung, RecoveryRung::kTmr);
  EXPECT_EQ(outcome.retries, 1u);
  EXPECT_TRUE(outcome.tmr_escalated);
  EXPECT_EQ(tmr.calls, 1);
}

TEST(RecoveryLadder, FailsWithDiagnosisWhenExhausted) {
  FakeScheme primary("fake", /*clean_after=*/100);
  const Matrix a(2, 2, 1.0);
  RecoveryPolicy policy;
  policy.retry_budget = 2;
  policy.escalate_tmr = false;
  auto outcome = run_ladder(primary, nullptr, kFakeDesc, a, a,
                            primary.multiply(a, a), policy);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rung, RecoveryRung::kFailed);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_FALSE(outcome.diagnosis.empty());
  ASSERT_TRUE(outcome.result.has_value());  // best-effort data still attached
}

TEST(RecoveryLadder, SkipsTmrForUnsupportedKinds) {
  // The escalation rung must ask the TMR scheme whether it implements the
  // op kind; a kind-blind escalation would turn an unclean factorisation
  // into an unsupported_op error response.
  FakeScheme primary("fake", /*clean_after=*/100);  // never clean
  FakeScheme tmr("fake-tmr", /*clean_after=*/0, /*factorizations=*/false);
  const Matrix a(2, 2, 1.0);
  const auto desc = baselines::OpDescriptor::cholesky(2);
  RecoveryPolicy policy;
  auto outcome = run_ladder(primary, &tmr, desc, a, a,
                            primary.execute(desc, a, a), policy);
  EXPECT_FALSE(outcome.ok);
  EXPECT_FALSE(outcome.tmr_escalated);
  EXPECT_EQ(tmr.calls, 0);
  EXPECT_EQ(primary.last_kind, baselines::OpKind::kCholesky)
      << "retries re-dispatch with the original op descriptor";
}

TEST(RecoveryLadder, RungOfMapsSchemeOutcomes) {
  baselines::SchemeResult r;
  EXPECT_EQ(rung_of(r), RecoveryRung::kNone);
  r.detected = true;
  r.panel_recomputes = 1;  // online repair only: the earliest rung
  EXPECT_EQ(rung_of(r), RecoveryRung::kPanelRecompute);
  r.corrected = true;  // later rungs take precedence when both fired
  EXPECT_EQ(rung_of(r), RecoveryRung::kCorrected);
  r.block_recomputes = 1;
  EXPECT_EQ(rung_of(r), RecoveryRung::kBlockRecompute);
  r.recomputed = 1;
  EXPECT_EQ(rung_of(r), RecoveryRung::kFullRecompute);
}

}  // namespace
