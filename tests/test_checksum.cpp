// Partitioned checksum codec tests: index arithmetic, host encode
// invariants, strip round-trips, and the algebraic checksum-preservation
// property of block products.
#include <gtest/gtest.h>

#include "abft/checksum.hpp"
#include "core/rng.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using aabft::abft::PartitionedCodec;
using namespace aabft::linalg;

TEST(Codec, IndexArithmetic) {
  const PartitionedCodec codec(4);
  EXPECT_EQ(codec.encoded_dim(8), 10u);
  EXPECT_EQ(codec.num_blocks(8), 2u);
  // Data rows 0..3 map to 0..3, checksum of block 0 at 4, rows 4..7 at 5..8,
  // checksum of block 1 at 9.
  EXPECT_EQ(codec.enc_index(0), 0u);
  EXPECT_EQ(codec.enc_index(3), 3u);
  EXPECT_EQ(codec.enc_index(4), 5u);
  EXPECT_EQ(codec.enc_index(7), 8u);
  EXPECT_EQ(codec.checksum_index(0), 4u);
  EXPECT_EQ(codec.checksum_index(1), 9u);
}

TEST(Codec, IndexMapsAreInverse) {
  const PartitionedCodec codec(16);
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t e = codec.enc_index(i);
    EXPECT_FALSE(codec.is_checksum_index(e));
    EXPECT_EQ(codec.data_index(e), i);
    EXPECT_EQ(codec.block_of(e), i / 16);
  }
  for (std::size_t b = 0; b < 12; ++b) {
    EXPECT_TRUE(codec.is_checksum_index(codec.checksum_index(b)));
    EXPECT_EQ(codec.block_of(codec.checksum_index(b)), b);
  }
}

TEST(Codec, DataIndexRejectsChecksumPositions) {
  const PartitionedCodec codec(8);
  EXPECT_THROW((void)codec.data_index(codec.checksum_index(0)),
               std::invalid_argument);
}

TEST(Codec, RejectsTinyBlockSize) {
  EXPECT_THROW(PartitionedCodec(1), std::invalid_argument);
}

TEST(Codec, DividesChecks) {
  const PartitionedCodec codec(8);
  EXPECT_TRUE(codec.divides(16));
  EXPECT_FALSE(codec.divides(12));
  EXPECT_FALSE(codec.divides(0));
  EXPECT_THROW((void)codec.num_blocks(12), std::invalid_argument);
}

TEST(Codec, EncodeColumnsHostBuildsBlockChecksums) {
  Rng rng(1);
  const PartitionedCodec codec(4);
  const Matrix a = uniform_matrix(8, 6, -1.0, 1.0, rng);
  const Matrix enc = codec.encode_columns_host(a);
  EXPECT_EQ(enc.rows(), 10u);
  EXPECT_EQ(enc.cols(), 6u);
  EXPECT_TRUE(codec.column_checksums_consistent(enc));
  // Data preserved.
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      EXPECT_EQ(enc(codec.enc_index(i), j), a(i, j));
}

TEST(Codec, EncodeRowsHostBuildsBlockChecksums) {
  Rng rng(2);
  const PartitionedCodec codec(4);
  const Matrix b = uniform_matrix(6, 8, -1.0, 1.0, rng);
  const Matrix enc = codec.encode_rows_host(b);
  EXPECT_EQ(enc.rows(), 6u);
  EXPECT_EQ(enc.cols(), 10u);
  EXPECT_TRUE(codec.row_checksums_consistent(enc));
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_EQ(enc(i, codec.enc_index(j)), b(i, j));
}

TEST(Codec, ConsistencyCheckersDetectCorruption) {
  Rng rng(3);
  const PartitionedCodec codec(4);
  Matrix enc_a = codec.encode_columns_host(uniform_matrix(8, 4, -1.0, 1.0, rng));
  EXPECT_TRUE(codec.column_checksums_consistent(enc_a));
  enc_a(2, 1) += 1.0;
  EXPECT_FALSE(codec.column_checksums_consistent(enc_a));

  Matrix enc_b = codec.encode_rows_host(uniform_matrix(4, 8, -1.0, 1.0, rng));
  EXPECT_TRUE(codec.row_checksums_consistent(enc_b));
  enc_b(1, 7) += 1.0;
  EXPECT_FALSE(codec.row_checksums_consistent(enc_b));
}

TEST(Codec, StripInvertsEncodeLayout) {
  Rng rng(4);
  const PartitionedCodec codec(4);
  const Matrix a = uniform_matrix(8, 8, -1.0, 1.0, rng);
  // Build a full-checksum-layout matrix by encoding twice (columns then the
  // transpose trick): here simply encode rows of the column-encoded matrix.
  const Matrix a_cc = codec.encode_columns_host(a);
  const Matrix full = codec.encode_rows_host(a_cc);
  EXPECT_EQ(full.rows(), 10u);
  EXPECT_EQ(full.cols(), 10u);
  const Matrix stripped = codec.strip(full);
  EXPECT_EQ(stripped, a);
}

TEST(Codec, StripRejectsWrongShape) {
  const PartitionedCodec codec(4);
  Matrix bad(9, 10);
  EXPECT_THROW((void)codec.strip(bad), std::invalid_argument);
}

// The key ABFT algebra: the product of a column-encoded A and a row-encoded
// B is a full-checksum matrix whose checksum rows/columns equal (up to
// rounding) the sums of the corresponding data elements.
TEST(Codec, BlockProductPreservesChecksumsUpToRounding) {
  Rng rng(5);
  const std::size_t bs = 8;
  const PartitionedCodec codec(bs);
  const Matrix a = uniform_matrix(16, 24, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(24, 16, -1.0, 1.0, rng);
  const Matrix a_cc = codec.encode_columns_host(a);
  const Matrix b_rc = codec.encode_rows_host(b);
  const Matrix c_fc = naive_matmul(a_cc, b_rc, false);

  // Column checksums: c[cs_I][j] ~= sum_i c[i in block I][j].
  for (std::size_t blk = 0; blk < 2; ++blk) {
    for (std::size_t j = 0; j < c_fc.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < bs; ++i)
        sum += c_fc(blk * (bs + 1) + i, j);
      EXPECT_NEAR(c_fc(codec.checksum_index(blk), j), sum, 1e-11);
    }
  }
  // Row checksums: c[i][cs_J] ~= sum_j c[i][j in block J].
  for (std::size_t i = 0; i < c_fc.rows(); ++i) {
    for (std::size_t blk = 0; blk < 2; ++blk) {
      double sum = 0.0;
      for (std::size_t j = 0; j < bs; ++j)
        sum += c_fc(i, blk * (bs + 1) + j);
      EXPECT_NEAR(c_fc(i, codec.checksum_index(blk)), sum, 1e-11);
    }
  }
}

}  // namespace
