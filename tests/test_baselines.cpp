// Baseline scheme tests: fixed-bound ABFT, SEA-ABFT (bound formula and
// detection), TMR voting, plain encode kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fixed_abft.hpp"
#include "baselines/plain_encode.hpp"
#include "baselines/sea_abft.hpp"
#include "baselines/tmr.hpp"
#include "baselines/unprotected.hpp"
#include "core/rng.hpp"
#include "fp/bits.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/norms.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::baselines;
using aabft::abft::PartitionedCodec;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

TEST(PlainEncode, MatchesHostCodec) {
  Rng rng(1);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 16, -1.0, 1.0, rng);
  Launcher launcher;
  EXPECT_EQ(plain_encode_columns(launcher, a, codec),
            codec.encode_columns_host(a));
  EXPECT_EQ(plain_encode_rows(launcher, b, codec), codec.encode_rows_host(b));
}

TEST(FixedAbft, CleanRunWithReasonableEpsilon) {
  Rng rng(2);
  FixedAbftConfig config;
  config.bs = 8;
  config.epsilon = 1e-10;
  Launcher launcher;
  FixedAbftMultiplier mult(launcher, config);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(FixedAbft, TooTightEpsilonFalsePositives) {
  // The calibration problem A-ABFT solves: a fixed bound below the actual
  // rounding level mis-detects on perfectly clean products.
  Rng rng(3);
  FixedAbftConfig config;
  config.bs = 8;
  config.epsilon = 1e-18;
  Launcher launcher;
  FixedAbftMultiplier mult(launcher, config);
  const Matrix a = uniform_matrix(64, 64, -100.0, 100.0, rng);
  const Matrix b = uniform_matrix(64, 64, -100.0, 100.0, rng);
  EXPECT_TRUE(mult.multiply(a, b).error_detected());
}

TEST(FixedAbft, TooLooseEpsilonMissesInjectedError) {
  Rng rng(4);
  FixedAbftConfig config;
  config.bs = 8;
  config.epsilon = 1e3;  // absurdly loose
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.error_vec = 1ULL << 40;  // mid-mantissa flip: small absolute error
  fault.k_injection = 5;
  controller.arm(fault);
  FixedAbftMultiplier mult(launcher, config);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_TRUE(controller.fired());
  EXPECT_FALSE(result.error_detected());  // false negative, by construction
}

TEST(FixedAbft, DetectsLargeInjectedError) {
  Rng rng(5);
  FixedAbftConfig config;
  config.bs = 8;
  config.epsilon = 1e-10;
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.error_vec = 1ULL << 61;
  fault.k_injection = 2;
  controller.arm(fault);
  FixedAbftMultiplier mult(launcher, config);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
}

TEST(SeaAbft, ColumnEpsilonMatchesFormula) {
  // Hand evaluation of the Roy-Chowdhury/Banerjee bound.
  const PartitionedCodec codec(2);
  SeaBounds bounds;
  bounds.t = 52;
  // Layout for bs = 2: rows [d0 d1 cs][d2 d3 cs2]; 6 encoded rows, 1 block
  // column -> a_row_norms has 6 entries.
  bounds.a_row_norms = {3.0, 4.0, 5.0, 1.0, 1.0, 1.0};
  bounds.b_col_norms = {2.0, 2.0, 6.0};
  bounds.a_block_norm_sum = {7.0, 2.0};
  bounds.b_block_norm_sum = {4.0};
  const std::size_t n = 10;
  const double eps_m = std::ldexp(1.0, -52);
  // Column check, block row 0, encoded column 1:
  // ((n + 2m - 2) * ||b_1|| * sum_a + n * ||a_cs|| * ||b_1||) * eps_m
  const double expected = ((10.0 + 4.0 - 2.0) * 2.0 * 7.0 + 10.0 * 5.0 * 2.0) *
                          eps_m;
  EXPECT_DOUBLE_EQ(sea_column_epsilon(bounds, codec, 0, 1, n), expected);
  // Row check, encoded row 1, block col 0:
  // ((n + 2m - 2) * ||a_1|| * sum_b + n * ||b_cs|| * ||a_1||) * eps_m
  const double expected_row =
      ((10.0 + 4.0 - 2.0) * 4.0 * 4.0 + 10.0 * 6.0 * 4.0) * eps_m;
  EXPECT_DOUBLE_EQ(sea_row_epsilon(bounds, codec, 1, 0, n), expected_row);
}

TEST(SeaAbft, CleanRunPasses) {
  Rng rng(6);
  SeaAbftConfig config;
  config.bs = 8;
  Launcher launcher;
  SeaAbftMultiplier mult(launcher, config);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(SeaAbft, DetectsLargeInjectedError) {
  Rng rng(7);
  SeaAbftConfig config;
  config.bs = 8;
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.error_vec = 1ULL << 62;
  fault.k_injection = 9;
  controller.arm(fault);
  SeaAbftMultiplier mult(launcher, config);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
}

TEST(SeaAbft, NormKernelsAreLaunched) {
  Rng rng(8);
  const PartitionedCodec codec(8);
  const Matrix a_cc = codec.encode_columns_host(uniform_matrix(16, 16, -1, 1, rng));
  const Matrix b_rc = codec.encode_rows_host(uniform_matrix(16, 16, -1, 1, rng));
  Launcher launcher;
  (void)compute_sea_bounds(launcher, a_cc, b_rc, codec);
  ASSERT_EQ(launcher.launch_log().size(), 2u);
  EXPECT_EQ(launcher.launch_log()[0].kernel_name, "row_norms");
  EXPECT_EQ(launcher.launch_log()[1].kernel_name, "col_norms");
}

TEST(Tmr, CleanVoteIsUnanimous) {
  Rng rng(9);
  Launcher launcher;
  TmrMultiplier mult(launcher, TmrConfig{});
  const Matrix a = uniform_matrix(40, 40, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(40, 40, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.mismatched_elements, 0u);
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(Tmr, OutvotesSingleFaultyReplica) {
  Rng rng(10);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.error_vec = 1ULL << 60;
  fault.k_injection = 1;
  controller.arm(fault);  // one-shot: hits exactly one of the three runs
  TmrMultiplier mult(launcher, TmrConfig{});
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const auto result = mult.multiply(a, b);
  EXPECT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  EXPECT_EQ(result.mismatched_elements, 1u);
  EXPECT_EQ(result.unresolved_elements, 0u);
  // The majority restored the fault-free value.
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(Tmr, CountsThreeGemmLaunches) {
  Rng rng(11);
  Launcher launcher;
  TmrMultiplier mult(launcher, TmrConfig{});
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(16, 16, -1.0, 1.0, rng);
  (void)mult.multiply(a, b);
  std::size_t gemms = 0;
  std::size_t votes = 0;
  for (const auto& entry : launcher.launch_log()) {
    if (entry.kernel_name == "gemm") ++gemms;
    if (entry.kernel_name == "tmr_vote") ++votes;
  }
  EXPECT_EQ(gemms, 3u);
  EXPECT_EQ(votes, 1u);
}

TEST(Unprotected, JustMultiplies) {
  Rng rng(12);
  Launcher launcher;
  UnprotectedMultiplier mult(launcher, aabft::linalg::GemmConfig{});
  const Matrix a = uniform_matrix(24, 24, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(24, 24, -1.0, 1.0, rng);
  EXPECT_EQ(mult.multiply(a, b), naive_matmul(a, b, false));
}

}  // namespace
