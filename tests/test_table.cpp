// TablePrinter / env helper tests.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "core/table.hpp"

namespace {

using aabft::env_size_or;
using aabft::TablePrinter;

TEST(Table, FormatsAlignedColumns) {
  TablePrinter table({"A", "LONG-HEADER"});
  table.add_row({"1", "2"});
  table.add_row({"333", "4"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("LONG-HEADER"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RejectsMismatchedRowWidth) {
  TablePrinter table({"A", "B"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(Table, ScientificFormatting) {
  EXPECT_EQ(TablePrinter::sci(1.675e-11), "1.68e-11");
  EXPECT_EQ(TablePrinter::sci(0.0), "0.00e+00");
  EXPECT_EQ(TablePrinter::sci(-2.5e3, 1), "-2.5e+03");
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(TablePrinter::fixed(942.613), "942.61");
  EXPECT_EQ(TablePrinter::fixed(1.0, 0), "1");
}

TEST(EnvSize, ParsesAndFallsBack) {
  ::unsetenv("AABFT_TEST_ENV");
  EXPECT_EQ(env_size_or("AABFT_TEST_ENV", 42), 42u);
  ::setenv("AABFT_TEST_ENV", "128", 1);
  EXPECT_EQ(env_size_or("AABFT_TEST_ENV", 42), 128u);
  ::setenv("AABFT_TEST_ENV", "garbage", 1);
  EXPECT_EQ(env_size_or("AABFT_TEST_ENV", 42), 42u);
  ::setenv("AABFT_TEST_ENV", "-5", 1);
  EXPECT_EQ(env_size_or("AABFT_TEST_ENV", 42), 42u);
  ::unsetenv("AABFT_TEST_ENV");
}

}  // namespace
