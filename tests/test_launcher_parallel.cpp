// Multi-worker launcher tests: results, counters and fault semantics must be
// independent of the number of host worker threads (on this CI host
// hardware_concurrency may be 1, so the worker count is forced explicitly).
#include <gtest/gtest.h>

#include <atomic>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::gpusim;
using aabft::linalg::blocked_matmul;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

TEST(ParallelLauncher, VisitsEveryBlockOnce) {
  Launcher launcher(k20c(), /*workers=*/4);
  const Dim3 grid{9, 5, 3};
  std::vector<std::atomic<int>> visits(grid.count());
  launcher.launch("cover", grid, [&](BlockCtx& blk) {
    visits[blk.block.linear].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelLauncher, ResultsAreBitwiseIdenticalToSerial) {
  Rng rng(1);
  const Matrix a = uniform_matrix(70, 90, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(90, 50, -1.0, 1.0, rng);
  Launcher serial(k20c(), 1);
  Launcher parallel(k20c(), 4);
  EXPECT_EQ(blocked_matmul(serial, a, b), blocked_matmul(parallel, a, b));
}

TEST(ParallelLauncher, CountersMatchSerial) {
  Rng rng(2);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  Launcher serial(k20c(), 1);
  Launcher parallel(k20c(), 4);
  (void)blocked_matmul(serial, a, b);
  (void)blocked_matmul(parallel, a, b);
  const auto s = serial.launch_log().front().counters;
  const auto p = parallel.launch_log().front().counters;
  EXPECT_EQ(s.adds, p.adds);
  EXPECT_EQ(s.muls, p.muls);
  EXPECT_EQ(s.bytes_loaded, p.bytes_loaded);
  EXPECT_EQ(s.bytes_stored, p.bytes_stored);
}

TEST(ParallelLauncher, SmAssignmentIndependentOfWorkers) {
  Launcher parallel(k20c(), 4);
  std::vector<std::atomic<int>> sm_of_block(26);
  parallel.launch("sm", Dim3{26, 1, 1}, [&](BlockCtx& blk) {
    sm_of_block[blk.block.linear].store(blk.math.sm_id());
  });
  for (std::size_t i = 0; i < 26; ++i)
    EXPECT_EQ(sm_of_block[i].load(), static_cast<int>(i % 13));
}

TEST(ParallelLauncher, FaultFiresExactlyOnceUnderContention) {
  // Every block matches the fault coordinates; the one-shot CAS must admit
  // exactly one injection even with racing workers.
  Launcher launcher(k20c(), 4);
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.k_injection = 0;
  fault.error_vec = 1ULL << 30;
  controller.arm(fault);

  std::atomic<int> corrupted{0};
  launcher.launch("race", Dim3{52, 1, 1}, [&](BlockCtx& blk) {
    // Only SM 0 blocks match (52 blocks -> 4 of them on SM 0).
    const double r =
        blk.math.faulty_mul(1.0, 1.0, FaultSite::kInnerMul, 0, 0);
    if (r != 1.0) corrupted.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(corrupted.load(), 1);
  EXPECT_EQ(controller.fired_count(), 1u);
}

TEST(ParallelLauncher, ProtectedMultiplyWorksParallel) {
  Rng rng(3);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  Launcher launcher(k20c(), 4);
  aabft::abft::AabftConfig config;
  config.bs = 16;
  aabft::abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, aabft::linalg::naive_matmul(a, b, false));
}

}  // namespace
