// Seeded MathCtx-bypass fixture for scripts/lint_mathctx.py --self-test.
// NOT part of the build (tests/CMakeLists.txt globs test_*.cpp only): this
// kernel body deliberately does raw floating-point arithmetic that escapes
// the MathCtx counters and the fault-injection surface, and the lint must
// flag every site. If the lint ever passes this file, the self-test fails.
#include <cmath>
#include <vector>

#include "gpusim/kernel.hpp"

namespace aabft::fixtures {

void raw_fp_kernel(gpusim::Launcher& launcher, const std::vector<double>& a,
                   const std::vector<double>& b, std::vector<double>& c) {
  const std::size_t n = c.size();
  launcher.launch("raw_fp", gpusim::Dim3{n, 1, 1}, [&](gpusim::BlockCtx& blk) {
    const std::size_t i = blk.block.x;
    const double scaled = a[i] * 2.0;            // raw mul: must be flagged
    const double mixed = scaled + b[i];          // raw add: must be flagged
    c[i] = std::fma(a[i], b[i], mixed);          // raw fma: must be flagged
  });
}

}  // namespace aabft::fixtures
