// Per-element rounding-analysis (by-product API) tests.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/pmax_scan.hpp"
#include "abft/rounding_report.hpp"
#include "abft/upper_bound.hpp"
#include "core/rng.hpp"
#include "fp/exact_dot.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

TEST(RoundingReport, MatchesClosedFormPerElement) {
  Rng rng(1);
  const std::size_t n = 24;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const PMaxTable a_rows = collect_row_pmax(launcher, a, 2);
  const PMaxTable b_cols = collect_col_pmax(launcher, b, 2);
  BoundParams params;
  const RoundingAnalysis analysis =
      analyze_rounding(launcher, a_rows, b_cols, n, params);

  ASSERT_EQ(analysis.sigma.rows(), n);
  ASSERT_EQ(analysis.sigma.cols(), n);
  for (std::size_t i = 0; i < n; i += 5) {
    for (std::size_t j = 0; j < n; j += 7) {
      const double y = determine_upper_bound(a_rows[i], b_cols[j]);
      const RoundingStats stats = inner_product_stats(n, y, params);
      EXPECT_EQ(analysis.sigma(i, j), stats.sigma);
      EXPECT_EQ(analysis.mean(i, j), stats.mean);
    }
  }
  EXPECT_GT(analysis.max_sigma, 0.0);
  EXPECT_GT(analysis.avg_sigma, 0.0);
  EXPECT_LE(analysis.avg_sigma, analysis.max_sigma);
}

TEST(RoundingReport, IntervalCombinesMeanAndSigma) {
  RoundingAnalysis analysis;
  analysis.mean = Matrix(1, 1, 2.0);
  analysis.sigma = Matrix(1, 1, 0.5);
  EXPECT_EQ(analysis.interval(0, 0, 3.0), 3.5);
}

TEST(RoundingReport, ThreeSigmaCoversActualRoundingErrors) {
  // The statistical claim behind A-ABFT, on data elements: the actual
  // rounding error of (almost) every element lies within mean + 3 sigma.
  Rng rng(2);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const Matrix c = aabft::linalg::blocked_matmul(launcher, a, b);
  const PMaxTable a_rows = collect_row_pmax(launcher, a, 2);
  const PMaxTable b_cols = collect_col_pmax(launcher, b, 2);
  BoundParams params;
  const RoundingAnalysis analysis =
      analyze_rounding(launcher, a_rows, b_cols, n, params);

  std::size_t violations = 0;
  for (std::size_t i = 0; i < n; i += 3) {
    for (std::size_t j = 0; j < n; j += 3) {
      const auto col = b.col(j);
      const double err = std::fabs(
          aabft::fp::exact_dot(a.row(i), col).round_minus(c(i, j)));
      if (err > analysis.interval(i, j, 3.0)) ++violations;
    }
  }
  EXPECT_EQ(violations, 0u);
}

TEST(RoundingReport, FmaShrinksSigmas) {
  Rng rng(3);
  const std::size_t n = 16;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  const PMaxTable a_rows = collect_row_pmax(launcher, a, 2);
  const PMaxTable b_cols = collect_col_pmax(launcher, b, 2);
  BoundParams mul_add;
  BoundParams fma;
  fma.fma = true;
  const auto s1 = analyze_rounding(launcher, a_rows, b_cols, n, mul_add);
  const auto s2 = analyze_rounding(launcher, a_rows, b_cols, n, fma);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      EXPECT_LT(s2.sigma(i, j), s1.sigma(i, j));
}

TEST(RoundingReport, EmptyTablesRejected) {
  aabft::gpusim::Launcher launcher;
  BoundParams params;
  EXPECT_THROW(
      (void)analyze_rounding(launcher, PMaxTable{}, PMaxTable{}, 4, params),
      std::invalid_argument);
}

}  // namespace
