// Unit tests for IEEE-754 bit utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.hpp"
#include "fp/bits.hpp"

namespace {

using namespace aabft::fp;

TEST(Bits, RoundTrip) {
  for (const double v : {0.0, -0.0, 1.0, -1.0, 3.25e17, -5e-320}) {
    EXPECT_EQ(from_bits(to_bits(v)), v);
  }
}

TEST(Bits, SignBit) {
  EXPECT_FALSE(sign_bit(1.0));
  EXPECT_TRUE(sign_bit(-1.0));
  EXPECT_FALSE(sign_bit(0.0));
  EXPECT_TRUE(sign_bit(-0.0));
}

TEST(Bits, BiasedExponent) {
  EXPECT_EQ(biased_exponent(1.0), 1023);
  EXPECT_EQ(biased_exponent(2.0), 1024);
  EXPECT_EQ(biased_exponent(0.5), 1022);
  EXPECT_EQ(biased_exponent(0.0), 0);
  EXPECT_EQ(biased_exponent(std::numeric_limits<double>::denorm_min()), 0);
  EXPECT_EQ(biased_exponent(std::numeric_limits<double>::infinity()), 2047);
}

TEST(Bits, DecomposeReconstructsValue) {
  aabft::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v =
        rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-300, 300));
    const Decomposed d = decompose(v);
    const double rebuilt =
        (d.negative ? -1.0 : 1.0) *
        std::ldexp(static_cast<double>(d.significand), d.exponent);
    EXPECT_EQ(rebuilt, v);
  }
}

TEST(Bits, DecomposeSubnormal) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const Decomposed d = decompose(denorm);
  EXPECT_EQ(d.significand, 1u);
  EXPECT_EQ(d.exponent, -1074);
}

TEST(Bits, DecomposeRejectsNonFinite) {
  EXPECT_THROW((void)decompose(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)decompose(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Bits, CeilLog2PowersOfTwo) {
  EXPECT_EQ(ceil_log2_abs(1.0), 0);
  EXPECT_EQ(ceil_log2_abs(2.0), 1);
  EXPECT_EQ(ceil_log2_abs(0.5), -1);
  EXPECT_EQ(ceil_log2_abs(-8.0), 3);
}

TEST(Bits, CeilLog2GeneralValues) {
  EXPECT_EQ(ceil_log2_abs(3.0), 2);    // 2 < 3 <= 4
  EXPECT_EQ(ceil_log2_abs(1.5), 1);
  EXPECT_EQ(ceil_log2_abs(0.3), -1);   // 0.25 < 0.3 <= 0.5
  EXPECT_EQ(ceil_log2_abs(-100.0), 7); // 64 < 100 <= 128
}

TEST(Bits, CeilLog2MatchesLibm) {
  aabft::Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const double v =
        rng.uniform(0.1, 10.0) * std::pow(2.0, rng.between(-500, 500));
    const double logv = std::log2(v);
    // Guard against libm rounding at exact powers of two.
    if (std::fabs(logv - std::round(logv)) < 1e-9) continue;
    EXPECT_EQ(ceil_log2_abs(v), static_cast<int>(std::ceil(logv))) << v;
  }
}

TEST(Bits, CeilLog2RejectsZero) {
  EXPECT_THROW((void)ceil_log2_abs(0.0), std::invalid_argument);
}

TEST(Bits, UlpOfOne) {
  EXPECT_EQ(ulp(1.0), std::numeric_limits<double>::epsilon());
  EXPECT_EQ(ulp(-1.0), std::numeric_limits<double>::epsilon());
}

TEST(Bits, UlpScales) {
  EXPECT_EQ(ulp(2.0), 2.0 * std::numeric_limits<double>::epsilon());
  EXPECT_EQ(ulp(0.0), std::numeric_limits<double>::denorm_min());
}

TEST(Bits, XorBitsFlipsExactBit) {
  const double v = 1.0;
  const double flipped = xor_bits(v, 1ULL << 51);  // top mantissa bit
  EXPECT_EQ(flipped, 1.5);
  EXPECT_EQ(xor_bits(flipped, 1ULL << 51), v);  // involution
}

TEST(Bits, XorBitsSign) {
  EXPECT_EQ(xor_bits(3.5, kSignMask), -3.5);
}

}  // namespace
