// ProtectedBlas3 operation API tests: op descriptors, the protected SYRK and
// Cholesky engines (with checksum carry), the raw references, the scheme
// adapters' per-kind execute coverage (including kUnsupportedOp as a value),
// and fault campaigns through the non-GEMM paths.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "abft/blas3.hpp"
#include "baselines/op.hpp"
#include "baselines/schemes.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::ErrorCode;
using aabft::Rng;
using namespace aabft::abft;
using aabft::baselines::OpDescriptor;
using aabft::baselines::OpKind;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

AabftConfig small_aabft() {
  AabftConfig config;
  config.bs = 16;
  return config;
}

Matrix spd_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix m = uniform_matrix(n, n, -1.0, 1.0, rng);
  Matrix a = naive_matmul(m, m.transposed(), false);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<double>(n);
  return a;
}

Matrix well_conditioned(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<double>(n);
  return a;
}

// ---- op descriptors --------------------------------------------------------

TEST(OpDescriptor, FactoriesAndFlops) {
  const auto gemm = OpDescriptor::gemm(8, 12, 16);
  EXPECT_EQ(gemm.kind, OpKind::kGemm);
  EXPECT_DOUBLE_EQ(gemm.flops(), 2.0 * 8 * 12 * 16);

  const auto syrk = OpDescriptor::syrk(8, 12);
  EXPECT_EQ(syrk.kind, OpKind::kSyrk);
  EXPECT_EQ(syrk.q, 8u);  // the product A A^T is m x m
  EXPECT_DOUBLE_EQ(syrk.flops(), 8.0 * 8 * 12);

  const auto chol = OpDescriptor::cholesky(12);
  EXPECT_DOUBLE_EQ(chol.flops(), 12.0 * 12 * 12 / 3.0);
  const auto lu = OpDescriptor::lu(12);
  EXPECT_DOUBLE_EQ(lu.flops(), 2.0 * 12 * 12 * 12 / 3.0);
  EXPECT_LT(chol.flops(), lu.flops());
  EXPECT_LT(lu.flops(), OpDescriptor::gemm(12, 12, 12).flops());

  EXPECT_TRUE(gemm.uses_b());
  EXPECT_FALSE(syrk.uses_b());
  EXPECT_FALSE(chol.is_factorization() == lu.is_factorization() &&
               !chol.is_factorization());
  EXPECT_FALSE(gemm.is_factorization());

  EXPECT_STREQ(std::string(to_string(OpKind::kGemm)).c_str(), "gemm");
  EXPECT_STREQ(std::string(to_string(OpKind::kSyrk)).c_str(), "syrk");
  EXPECT_STREQ(std::string(to_string(OpKind::kCholesky)).c_str(), "cholesky");
  EXPECT_STREQ(std::string(to_string(OpKind::kLu)).c_str(), "lu");
}

// ---- checksum carry --------------------------------------------------------

TEST(ChecksumCarry, DetectsCorruptionBetweenUpdates) {
  const std::size_t n = 24;
  const Matrix a = well_conditioned(n, 7);
  ChecksumCarry carry(n, /*bs=*/8, /*panel=*/8);
  ASSERT_TRUE(carry.enabled());
  carry.init(a);
  EXPECT_EQ(carry.verify_panel(a, 0, 8), 0u);

  Matrix corrupted = a;
  corrupted(10, 3) += 1.0;  // block row 1, a column of the first panel
  EXPECT_GE(carry.verify_panel(corrupted, 0, 8), 1u);
  // Columns outside the verified panel range are not consulted.
  corrupted = a;
  corrupted(10, 20) += 1.0;
  EXPECT_EQ(carry.verify_panel(corrupted, 0, 8), 0u);
}

TEST(ChecksumCarry, RowSwapsKeepSumsCurrent) {
  const std::size_t n = 24;
  Matrix a = well_conditioned(n, 8);
  ChecksumCarry carry(n, /*bs=*/8, /*panel=*/8);
  carry.init(a);

  // A cross-block pivot swap, adjusted before the exchange like the LU loop.
  carry.note_row_swap(a, 2, 17, 0);
  for (std::size_t c = 0; c < n; ++c) std::swap(a(2, c), a(17, c));
  EXPECT_EQ(carry.verify_panel(a, 0, 8), 0u);

  // A same-block swap needs no adjustment at all.
  for (std::size_t c = 0; c < n; ++c) std::swap(a(8, c), a(9, c));
  EXPECT_EQ(carry.verify_panel(a, 8, 16), 0u);
}

TEST(ChecksumCarry, DisablesOnMisalignedPanels) {
  ChecksumCarry carry(24, /*bs=*/8, /*panel=*/12);  // panel % bs != 0
  EXPECT_FALSE(carry.enabled());
  EXPECT_EQ(carry.verify_panel(Matrix(24, 24, 1.0), 0, 12), 0u);
}

// ---- protected SYRK --------------------------------------------------------

TEST(ProtectedSyrk, MatchesNaiveReference) {
  Launcher launcher;
  Rng rng(9);
  const Matrix a = uniform_matrix(40, 24, -1.0, 1.0, rng);  // pads internally
  ProtectedSyrk syrk(launcher, small_aabft());
  const AabftResult result = syrk.multiply(a);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c, naive_matmul(a, a.transposed(), false));
}

TEST(ProtectedSyrk, RepairsInjectedFault) {
  Launcher launcher;
  Rng rng(10);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, a.transposed(), false);

  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.k_injection = 3;
  fault.error_vec = 1ULL << 61;  // exponent-region flip: always detectable
  controller.arm(fault);

  ProtectedSyrk syrk(launcher, small_aabft());
  const AabftResult result = syrk.multiply(a);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
  EXPECT_TRUE(result.recheck_clean);
  EXPECT_FALSE(result.uncorrectable);
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      EXPECT_NEAR(result.c(i, j), ref(i, j),
                  1e-9 * std::max(1.0, std::abs(ref(i, j))));
}

// ---- protected Cholesky ----------------------------------------------------

ProtectedCholConfig small_chol() {
  ProtectedCholConfig config;
  config.panel = 16;
  config.aabft.bs = 16;
  return config;
}

TEST(ProtectedCholesky, FactorsAndReconstructs) {
  const std::size_t n = 64;
  const Matrix a = spd_matrix(n, 11);
  Launcher launcher;
  ProtectedCholesky chol(launcher, small_chol());
  const CholResult result = chol.factor(a);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.not_positive_definite);
  EXPECT_EQ(result.protected_updates, n / 16 - 1);
  EXPECT_EQ(result.faults_detected, 0u);
  EXPECT_EQ(result.carry_mismatches, 0u);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      EXPECT_EQ(result.l(i, j), 0.0) << "strictly-upper part zeroed";
  EXPECT_LT(ProtectedCholesky::residual(a, result), 1e-9);
}

TEST(ProtectedCholesky, RaggedFinalPanel) {
  const std::size_t n = 56;  // not a multiple of the 16-wide panel
  const Matrix a = spd_matrix(n, 12);
  Launcher launcher;
  ProtectedCholesky chol(launcher, small_chol());
  const CholResult result = chol.factor(a);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(ProtectedCholesky::residual(a, result), 1e-9);
}

TEST(ProtectedCholesky, ReportsIndefiniteInput) {
  Matrix a(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i) a(i, i) = -1.0;
  Launcher launcher;
  ProtectedCholConfig config;
  config.panel = 4;
  config.aabft.bs = 4;
  ProtectedCholesky chol(launcher, config);
  const CholResult result = chol.factor(a);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.not_positive_definite);
}

TEST(ProtectedCholesky, SurvivesExponentFlipInTrailingUpdate) {
  const std::size_t n = 64;
  const Matrix a = spd_matrix(n, 13);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.k_injection = 0;
  fault.error_vec = 1ULL << 60;
  controller.arm(fault);

  ProtectedCholesky chol(launcher, small_chol());
  const CholResult result = chol.factor(a);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.faults_detected, 1u);
  EXPECT_GE(result.corrections + result.block_recomputes +
                result.recomputations,
            1u);
  EXPECT_EQ(result.factor_restarts, 0u)
      << "an in-update fault is repaired by the update's own ladder";
  EXPECT_LT(ProtectedCholesky::residual(a, result), 1e-9);
}

TEST(ProtectedCholesky, FaultCampaignServesNoWrongFactors) {
  const std::size_t n = 48;
  const Matrix a = spd_matrix(n, 14);
  Rng rng(15);

  // Clean protected runs are deterministic: this factor is the bit-exact
  // answer an undetected-but-benign fault must still produce.
  Matrix clean_l;
  {
    Launcher launcher;
    ProtectedCholesky chol(launcher, small_chol());
    const CholResult clean = chol.factor(a);
    ASSERT_TRUE(clean.ok);
    clean_l = clean.l;
  }

  std::size_t fired = 0;
  std::size_t detected = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Launcher launcher;
    FaultController controller;
    launcher.set_fault_controller(&controller);
    FaultConfig fault;
    fault.site = static_cast<FaultSite>(rng.below(3));
    fault.sm_id = static_cast<int>(rng.below(2));
    fault.module_id = static_cast<int>(rng.below(4));
    fault.k_injection = fault.site == FaultSite::kFinalAdd
                            ? 0
                            : static_cast<std::int64_t>(rng.below(16));
    // Exponent-field flip, avoiding the top exponent bit (which can turn a
    // normal value into NaN and defeat magnitude-based detection).
    fault.error_vec = 1ULL << (52 + rng.below(10));
    controller.arm(fault);

    ProtectedCholesky chol(launcher, small_chol());
    const CholResult result = chol.factor(a);
    launcher.set_fault_controller(nullptr);

    fired += controller.fired() ? 1 : 0;
    // A fired flip is caught either by the update's own partitioned check or
    // by the carried-checksum verification of a later panel.
    const bool trial_detected =
        result.faults_detected + result.carry_mismatches > 0;
    detected += trial_detected ? 1 : 0;
    ASSERT_TRUE(result.ok) << "trial " << trial;
    EXPECT_LT(ProtectedCholesky::residual(a, result), 1e-9)
        << "trial " << trial;
    if (controller.fired() && !trial_detected) {
      // The only acceptable undetected outcome is a benign fault (e.g. a
      // flip into discarded kernel padding): the factor must be bit-exact.
      EXPECT_EQ(result.l, clean_l)
          << "trial " << trial << ": undetected fault silently corrupted L";
    }
  }
  EXPECT_GT(fired, 0u) << "the campaign must actually inject";
  EXPECT_GT(detected, 0u) << "the campaign must exercise detection";
  // Zero-SDC is the real acceptance bar (checked per-trial above); most
  // fired flips should additionally be flagged rather than benign.
  EXPECT_GE(2 * detected, fired) << "suspiciously low detection rate";
}

// ---- raw references --------------------------------------------------------

TEST(RawReferences, AgreeWithProtectedResults) {
  Launcher launcher;
  Rng rng(16);
  const Matrix g = uniform_matrix(32, 24, -1.0, 1.0, rng);
  EXPECT_EQ(raw_syrk(launcher, g), naive_matmul(g, g.transposed(), false));

  const std::size_t n = 48;
  const Matrix a = spd_matrix(n, 17);
  const RawFactorResult chol = raw_cholesky(launcher, a, {}, 16);
  ASSERT_TRUE(chol.ok);
  CholResult as_chol;
  as_chol.l = chol.f;
  EXPECT_LT(ProtectedCholesky::residual(a, as_chol), 1e-9);

  const Matrix w = well_conditioned(n, 18);
  const RawFactorResult lu = raw_lu(launcher, w, {}, 16);
  ASSERT_TRUE(lu.ok);
  ASSERT_EQ(lu.perm.size(), n);
}

// ---- scheme adapters -------------------------------------------------------

TEST(Schemes, AabftExecuteCoversEveryKind) {
  Launcher launcher;
  Rng rng(19);
  aabft::baselines::AabftScheme scheme(launcher, small_aabft());
  EXPECT_TRUE(scheme.supports(OpKind::kGemm));
  EXPECT_TRUE(scheme.supports(OpKind::kSyrk));
  EXPECT_TRUE(scheme.supports(OpKind::kCholesky));
  EXPECT_TRUE(scheme.supports(OpKind::kLu));

  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  auto gemm = scheme.execute(OpDescriptor::gemm(32, 32, 32), a, b);
  ASSERT_TRUE(gemm.ok()) << gemm.error().message;
  EXPECT_EQ(gemm->c, naive_matmul(a, b, false));
  EXPECT_TRUE(gemm->clean);

  auto syrk = scheme.execute(OpDescriptor::syrk(32, 32), a, Matrix());
  ASSERT_TRUE(syrk.ok());
  EXPECT_EQ(syrk->c, naive_matmul(a, a.transposed(), false));

  const std::size_t n = 48;
  const Matrix spd = spd_matrix(n, 20);
  auto chol = scheme.execute(OpDescriptor::cholesky(n), spd, Matrix());
  ASSERT_TRUE(chol.ok()) << chol.error().message;
  EXPECT_TRUE(chol->clean);
  EXPECT_GT(chol->protected_updates, 0u);
  CholResult as_chol;
  as_chol.l = chol->c;
  EXPECT_LT(ProtectedCholesky::residual(spd, as_chol), 1e-9);

  const Matrix w = well_conditioned(n, 21);
  auto lu = scheme.execute(OpDescriptor::lu(n), w, Matrix());
  ASSERT_TRUE(lu.ok()) << lu.error().message;
  EXPECT_TRUE(lu->clean);
  EXPECT_EQ(lu->perm.size(), n);

  // Input-domain failures come back as values, not wrong results.
  Matrix indefinite(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i) indefinite(i, i) = -1.0;
  auto bad = scheme.execute(OpDescriptor::cholesky(8), indefinite, Matrix());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kInvalidArgument);
}

TEST(Schemes, GemmOnlySchemesRefuseOtherKindsAsValues) {
  Launcher launcher;
  Rng rng(22);
  const Matrix a = uniform_matrix(16, 16, -1.0, 1.0, rng);

  aabft::baselines::FixedAbftConfig fixed;
  fixed.bs = 16;
  aabft::baselines::FixedAbftScheme fixed_scheme(launcher, fixed);
  EXPECT_FALSE(fixed_scheme.supports(OpKind::kSyrk));
  auto refused = fixed_scheme.execute(OpDescriptor::syrk(16, 16), a, Matrix());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, ErrorCode::kUnsupportedOp);

  aabft::baselines::SeaAbftConfig sea;
  sea.bs = 16;
  aabft::baselines::SeaAbftScheme sea_scheme(launcher, sea);
  auto sea_refused =
      sea_scheme.execute(OpDescriptor::cholesky(16), a, Matrix());
  ASSERT_FALSE(sea_refused.ok());
  EXPECT_EQ(sea_refused.error().code, ErrorCode::kUnsupportedOp);
}

TEST(Schemes, UnprotectedExecutesEveryKind) {
  Launcher launcher;
  Rng rng(23);
  aabft::baselines::UnprotectedScheme scheme(launcher);
  const Matrix a = uniform_matrix(24, 24, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(24, 24, -1.0, 1.0, rng);

  auto gemm = scheme.execute(OpDescriptor::gemm(24, 24, 24), a, b);
  ASSERT_TRUE(gemm.ok());
  EXPECT_EQ(gemm->c, naive_matmul(a, b, false));

  auto syrk = scheme.execute(OpDescriptor::syrk(24, 24), a, Matrix());
  ASSERT_TRUE(syrk.ok());
  EXPECT_EQ(syrk->c, naive_matmul(a, a.transposed(), false));

  const Matrix spd = spd_matrix(32, 24);
  auto chol = scheme.execute(OpDescriptor::cholesky(32), spd, Matrix());
  ASSERT_TRUE(chol.ok());
  CholResult as_chol;
  as_chol.l = chol->c;
  EXPECT_LT(ProtectedCholesky::residual(spd, as_chol), 1e-9);

  const Matrix w = well_conditioned(32, 25);
  auto lu = scheme.execute(OpDescriptor::lu(32), w, Matrix());
  ASSERT_TRUE(lu.ok());
  EXPECT_EQ(lu->perm.size(), 32u);
}

TEST(Schemes, TmrVotesFactorizationsAsWholeResults) {
  // Clean device: the three replicas agree bitwise, nothing detected.
  const std::size_t n = 32;
  const Matrix spd = spd_matrix(n, 26);
  {
    Launcher launcher;
    aabft::baselines::TmrScheme scheme(launcher);
    auto clean = scheme.execute(OpDescriptor::cholesky(n), spd, Matrix());
    ASSERT_TRUE(clean.ok()) << clean.error().message;
    EXPECT_TRUE(clean->clean);
    EXPECT_FALSE(clean->detected);
    CholResult as_chol;
    as_chol.l = clean->c;
    EXPECT_LT(ProtectedCholesky::residual(spd, as_chol), 1e-9);
  }

  // One fault hits exactly one replica (one-shot controller): the other two
  // agree and outvote it.
  {
    Launcher launcher;
    FaultController controller;
    launcher.set_fault_controller(&controller);
    FaultConfig fault;
    fault.site = FaultSite::kFinalAdd;
    fault.sm_id = 0;
    fault.module_id = 0;
    fault.error_vec = 1ULL << 60;
    controller.arm(fault);
    aabft::baselines::TmrScheme scheme(launcher);
    auto voted = scheme.execute(OpDescriptor::cholesky(n), spd, Matrix());
    launcher.set_fault_controller(nullptr);
    ASSERT_TRUE(voted.ok()) << voted.error().message;
    if (controller.fired()) {
      EXPECT_TRUE(voted->detected);
      EXPECT_TRUE(voted->corrected);
    }
    EXPECT_TRUE(voted->clean);
    CholResult as_chol;
    as_chol.l = voted->c;
    EXPECT_LT(ProtectedCholesky::residual(spd, as_chol), 1e-9);
  }

  // LU goes through the same whole-result vote (pivot divergence makes
  // element voting unsound, so replicas vote as units).
  {
    Launcher launcher;
    aabft::baselines::TmrScheme scheme(launcher);
    const Matrix w = well_conditioned(n, 27);
    auto lu = scheme.execute(OpDescriptor::lu(n), w, Matrix());
    ASSERT_TRUE(lu.ok());
    EXPECT_TRUE(lu->clean);
    EXPECT_EQ(lu->perm.size(), n);
  }
}

TEST(Schemes, MultiplyShimStaysByteForByteCompatible) {
  // The GEMM compatibility shim: multiply(a, b) on the base class must route
  // through execute and keep old call sites working unchanged.
  Launcher launcher;
  Rng rng(28);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  auto schemes = aabft::baselines::make_schemes(launcher);
  ASSERT_GE(schemes.size(), 5u);
  for (auto& scheme : schemes) {
    auto via_shim = scheme->multiply(a, b);
    ASSERT_TRUE(via_shim.ok()) << scheme->name();
    auto via_execute =
        scheme->execute(OpDescriptor::gemm(32, 32, 32), a, b);
    ASSERT_TRUE(via_execute.ok()) << scheme->name();
    EXPECT_EQ(via_shim->c, via_execute->c)
        << scheme->name() << ": shim and execute must agree bitwise";
  }
}

}  // namespace
