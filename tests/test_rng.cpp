// Unit tests for the deterministic PRNG stack.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/rng.hpp"

namespace {

using aabft::Rng;
using aabft::SplitMix64;

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 1234567 (from the published algorithm).
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);  // deterministic
  EXPECT_NE(sm.next(), first);   // progresses
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UnitIntervalBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(sum / n, 0.0, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(12);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(21);
  (void)parent_copy.next_u64();  // same consumption as fork()
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (child.next_u64() == parent_copy.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBoolIsBalanced) {
  Rng rng(31);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) heads += rng.next_bool() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.01);
}

}  // namespace
