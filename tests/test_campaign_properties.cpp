// Seed-sweep property tests over fault-injection campaigns: invariants that
// must hold for every random stream, locking in the Figure-4 qualitative
// results statistically rather than at a single seed.
#include <gtest/gtest.h>

#include "gpusim/kernel.hpp"
#include "inject/campaign.hpp"

namespace {

using namespace aabft;
using inject::CampaignConfig;
using inject::CampaignResult;

class CampaignSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampaignSeeds, InvariantsHoldForEveryStream) {
  CampaignConfig config;
  config.n = 64;
  config.bs = 16;
  config.trials = 10;
  config.seed = GetParam();
  gpusim::Launcher launcher;
  const CampaignResult result = inject::run_campaign(launcher, config);

  // Accounting closes.
  EXPECT_LE(result.fired, result.trials);
  const std::size_t classified = result.aabft().critical +
                                 result.aabft().tolerable +
                                 result.aabft().rounding_noise;
  EXPECT_EQ(classified + result.masked, result.fired);

  // Paired evaluation: identical ground truth for both schemes.
  EXPECT_EQ(result.aabft().critical, result.sea().critical);
  EXPECT_EQ(result.aabft().tolerable, result.sea().tolerable);
  EXPECT_EQ(result.aabft().rounding_noise, result.sea().rounding_noise);

  // The tighter bound can only detect at least as much.
  EXPECT_GE(result.aabft().detected_critical, result.sea().detected_critical);
  EXPECT_GE(result.aabft().detected_tolerable, result.sea().detected_tolerable);

  // Autonomous bounds never mis-fire on the clean reference.
  EXPECT_EQ(result.aabft_false_positive_runs(), 0u);
  EXPECT_EQ(result.sea_false_positive_runs(), 0u);

  // Detections are bounded by occurrences.
  EXPECT_LE(result.aabft().detected_critical, result.aabft().critical);
  EXPECT_LE(result.sea().detected_critical, result.sea().critical);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignSeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(CampaignProperties, AggregateDetectionAboveNinetyPercent) {
  // Across several seeds and sites, A-ABFT's aggregate critical-error
  // detection must clear the paper's "well over 90 %" line.
  std::size_t critical = 0;
  std::size_t detected = 0;
  std::uint64_t seed = 7000;
  for (const auto site :
       {gpusim::FaultSite::kInnerMul, gpusim::FaultSite::kInnerAdd,
        gpusim::FaultSite::kFinalAdd}) {
    for (int rep = 0; rep < 2; ++rep) {
      CampaignConfig config;
      config.n = 64;
      config.bs = 16;
      config.trials = 12;
      config.site = site;
      config.seed = seed++;
      gpusim::Launcher launcher;
      const CampaignResult result = inject::run_campaign(launcher, config);
      critical += result.aabft().critical;
      detected += result.aabft().detected_critical;
    }
  }
  ASSERT_GT(critical, 30u);
  EXPECT_GE(static_cast<double>(detected) / static_cast<double>(critical),
            0.90);
}

}  // namespace
