// ABFT-protected LU factorisation tests: correctness of the factorisation
// and solver, and fault tolerance of the protected trailing updates.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/protected_lu.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::Matrix;
using aabft::linalg::uniform_matrix;

ProtectedLuConfig small_config() {
  ProtectedLuConfig config;
  config.panel = 16;
  config.aabft.bs = 16;
  return config;
}

Matrix well_conditioned(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  for (std::size_t i = 0; i < n; ++i)
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  return a;
}

TEST(ProtectedLu, FactorsAndReconstructs) {
  const std::size_t n = 64;
  const Matrix a = well_conditioned(n, 1);
  Launcher launcher;
  ProtectedLu lu(launcher, small_config());
  const LuResult result = lu.factor(a);
  ASSERT_TRUE(result.ok);
  EXPECT_GT(result.protected_updates, 0u);
  EXPECT_EQ(result.faults_detected, 0u);
  EXPECT_LT(ProtectedLu::residual(a, result), 1e-10);
}

TEST(ProtectedLu, NonMultiplePanelSizes) {
  // n not a multiple of the panel: ragged final panel.
  const std::size_t n = 50;
  const Matrix a = well_conditioned(n, 2);
  Launcher launcher;
  ProtectedLu lu(launcher, small_config());
  const LuResult result = lu.factor(a);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(ProtectedLu::residual(a, result), 1e-10);
}

TEST(ProtectedLu, PivotingHandlesZeroLeadingElement) {
  Matrix a(3, 3, 0.0);
  a(0, 0) = 0.0; a(0, 1) = 2.0; a(0, 2) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 1.0; a(1, 2) = 1.0;
  a(2, 0) = 4.0; a(2, 1) = 3.0; a(2, 2) = 9.0;
  Launcher launcher;
  ProtectedLuConfig config;
  config.panel = 2;
  config.aabft.bs = 2;
  ProtectedLu lu(launcher, config);
  const LuResult result = lu.factor(a);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(ProtectedLu::residual(a, result), 1e-12);
}

TEST(ProtectedLu, SingularMatrixReported) {
  Matrix a(4, 4, 0.0);  // all zero: singular at the first pivot
  Launcher launcher;
  ProtectedLuConfig config;
  config.panel = 2;
  config.aabft.bs = 2;
  ProtectedLu lu(launcher, config);
  const LuResult result = lu.factor(a);
  EXPECT_FALSE(result.ok);
}

TEST(ProtectedLu, SolveMatchesDirectSubstitution) {
  const std::size_t n = 48;
  const Matrix a = well_conditioned(n, 3);
  Rng rng(4);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  // b = A x_true.
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];

  Launcher launcher;
  ProtectedLu lu(launcher, small_config());
  const LuResult result = lu.factor(a);
  ASSERT_TRUE(result.ok);
  const auto x = ProtectedLu::solve(result, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    worst = std::max(worst, std::fabs(x[i] - x_true[i]));
  EXPECT_LT(worst, 1e-10);
}

TEST(ProtectedLu, SurvivesInjectedFaultInTrailingUpdate) {
  const std::size_t n = 64;
  const Matrix a = well_conditioned(n, 5);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = 0;
  fault.module_id = 1;
  fault.k_injection = 2;
  fault.error_vec = 1ULL << 61;
  controller.arm(fault);

  ProtectedLu lu(launcher, small_config());
  const LuResult result = lu.factor(a);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.faults_detected, 1u);
  EXPECT_GE(result.corrections + result.recomputations, 1u);
  // The repaired factorisation is as accurate as a fault-free one.
  EXPECT_LT(ProtectedLu::residual(a, result), 1e-10);
}

TEST(ProtectedLu, FaultFreeAndFaultedFactorsAgree) {
  const std::size_t n = 48;
  const Matrix a = well_conditioned(n, 6);
  Launcher clean_launcher;
  ProtectedLu clean_lu(clean_launcher, small_config());
  const LuResult clean = clean_lu.factor(a);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 1;
  fault.module_id = 0;
  fault.k_injection = 0;
  fault.error_vec = 1ULL << 59;
  controller.arm(fault);
  ProtectedLu lu(launcher, small_config());
  const LuResult faulted = lu.factor(a);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(faulted.ok);
  if (controller.fired()) {
    // Correction restores the update to rounding accuracy, so the factors
    // match the fault-free run almost exactly.
    EXPECT_LT(clean.lu.max_abs_diff(faulted.lu), 1e-8);
  }
}

TEST(ProtectedLu, RejectsBadInputs) {
  Launcher launcher;
  ProtectedLu lu(launcher, small_config());
  Matrix rect(4, 6);
  EXPECT_THROW((void)lu.factor(rect), std::invalid_argument);
  ProtectedLuConfig bad;
  bad.panel = 1;
  EXPECT_THROW(ProtectedLu(launcher, bad), std::invalid_argument);
}

}  // namespace
