// Integration tests locking in the Table-I performance *shape*: the ordering
// of schemes and the narrowing A-ABFT gap, produced by real pipeline
// execution + the analytic model.
#include <gtest/gtest.h>

#include "baselines/perf_suite.hpp"

namespace {

using aabft::baselines::PerfSuiteConfig;
using aabft::baselines::PerfSuiteResult;
using aabft::baselines::project_perf_suite;
using aabft::baselines::run_perf_suite;

TEST(PerfSuite, SchemeOrderingMatchesPaper) {
  // The paper's sweep starts at n = 512; our model preserves the ordering
  // from n = 256 up (below that, launch overheads distort all schemes).
  for (const std::size_t n : {256u, 512u}) {
    const PerfSuiteResult result = run_perf_suite(n);
    EXPECT_TRUE(result.ordering_holds()) << "n=" << n;
    // Unprotected is the fastest of all.
    EXPECT_GT(result.unprotected().model_gflops,
              result.fixed_abft().model_gflops);
  }
}

TEST(PerfSuite, AabftGapNarrowsWithSize) {
  const PerfSuiteResult small = run_perf_suite(256);
  const PerfSuiteResult large = run_perf_suite(640);
  EXPECT_GT(large.aabft_over_abft(), small.aabft_over_abft());
  // And the protected/unprotected overhead shrinks too.
  EXPECT_GT(large.aabft().model_gflops / large.unprotected().model_gflops,
            small.aabft().model_gflops / small.unprotected().model_gflops);
}

TEST(PerfSuite, TmrCostsRoughlyThreeGemms) {
  const PerfSuiteResult result = run_perf_suite(256);
  const double ratio =
      result.unprotected().model_gflops / result.tmr().model_gflops;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(PerfSuite, NoSchemeMisdetectsOnCleanRuns) {
  const PerfSuiteResult result = run_perf_suite(192);
  EXPECT_FALSE(result.fixed_abft().false_positive);
  EXPECT_FALSE(result.aabft().false_positive);
  EXPECT_FALSE(result.sea_abft().false_positive);
  EXPECT_FALSE(result.tmr().false_positive);
}

TEST(PerfSuite, ModelTimesArePositiveAndConsistent) {
  const PerfSuiteResult result = run_perf_suite(128);
  EXPECT_GT(result.unprotected().model_seconds, 0.0);
  // More kernels => more modelled time than the bare GEMM.
  EXPECT_GT(result.aabft().model_seconds, result.unprotected().model_seconds);
  EXPECT_GT(result.tmr().model_seconds, 2.5 * result.unprotected().model_seconds);
}

TEST(PerfSuite, ProjectionIsIdentityAtSameSize) {
  const PerfSuiteResult base = run_perf_suite(256);
  const PerfSuiteResult same = project_perf_suite(base, 256, 256);
  EXPECT_NEAR(same.aabft().model_gflops, base.aabft().model_gflops,
              1e-9 * base.aabft().model_gflops);
  EXPECT_NEAR(same.tmr().model_gflops, base.tmr().model_gflops,
              1e-9 * base.tmr().model_gflops);
}

TEST(PerfSuite, ProjectionApproximatesDirectMeasurement) {
  // Project 256 -> 512 and compare with an actually executed 512 suite: the
  // complexity scaling must land within a few percent.
  const PerfSuiteResult base = run_perf_suite(256);
  const PerfSuiteResult projected = project_perf_suite(base, 256, 512);
  const PerfSuiteResult direct = run_perf_suite(512);
  EXPECT_NEAR(projected.aabft().model_gflops, direct.aabft().model_gflops,
              0.10 * direct.aabft().model_gflops);
  EXPECT_NEAR(projected.sea_abft().model_gflops, direct.sea_abft().model_gflops,
              0.10 * direct.sea_abft().model_gflops);
  EXPECT_NEAR(projected.unprotected().model_gflops,
              direct.unprotected().model_gflops,
              0.10 * direct.unprotected().model_gflops);
}

TEST(PerfSuite, ProjectedPaperScaleMatchesPaperShape) {
  // Project to the paper's 8192 and check the headline anchors: ~1050
  // unprotected GFLOPS, A-ABFT within a few percent of ABFT, ordering holds.
  const PerfSuiteResult base = run_perf_suite(512);
  const PerfSuiteResult at8192 = project_perf_suite(base, 512, 8192);
  EXPECT_TRUE(at8192.ordering_holds());
  EXPECT_NEAR(at8192.unprotected().model_gflops, 1048.0, 80.0);
  EXPECT_GT(at8192.aabft_over_abft(), 0.9);  // paper: 903/943 ~ 0.96
  EXPECT_NEAR(at8192.aabft().model_gflops, 903.4,
              0.10 * 903.4);  // the paper's A-ABFT cell
  EXPECT_NEAR(at8192.tmr().model_gflops, 348.0, 40.0);
}

TEST(PerfSuite, ProjectLogScalesByKernelClass) {
  std::vector<aabft::gpusim::LaunchStats> log(2);
  log[0].kernel_name = "gemm";
  log[0].counters.muls = 1000;
  log[0].counters.bytes_loaded = 1000;
  log[0].counters.bytes_stored = 100;
  log[1].kernel_name = "check";
  log[1].counters.adds = 1000;
  log[1].counters.bytes_loaded = 1000;
  const auto scaled = aabft::baselines::project_log(log, 100, 200);
  EXPECT_EQ(scaled[0].counters.muls, 8000u);          // cubic
  EXPECT_EQ(scaled[0].counters.bytes_loaded, 8000u);  // staged loads: cubic
  EXPECT_EQ(scaled[0].counters.bytes_stored, 400u);   // stores: quadratic
  EXPECT_EQ(scaled[1].counters.adds, 4000u);          // quadratic
  EXPECT_EQ(scaled[1].counters.bytes_loaded, 4000u);
}

TEST(PerfSuite, DeterministicForSeed) {
  PerfSuiteConfig config;
  config.seed = 77;
  const PerfSuiteResult r1 = run_perf_suite(128, config);
  const PerfSuiteResult r2 = run_perf_suite(128, config);
  EXPECT_EQ(r1.aabft().model_gflops, r2.aabft().model_gflops);
  EXPECT_EQ(r1.sea_abft().model_gflops, r2.sea_abft().model_gflops);
}

}  // namespace
