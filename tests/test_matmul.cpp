// Blocked GEMM kernel (Algorithm 3) tests: correctness, bitwise agreement
// with the reference accumulation order, fault-injection semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "fp/bits.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using aabft::gpusim::FaultConfig;
using aabft::gpusim::FaultController;
using aabft::gpusim::FaultSite;
using aabft::gpusim::Launcher;
using aabft::linalg::blocked_matmul;
using aabft::linalg::GemmConfig;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

TEST(BlockedMatmul, TinyKnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  Matrix b(2, 2);
  b(0, 0) = 5; b(0, 1) = 6;
  b(1, 0) = 7; b(1, 1) = 8;
  Launcher launcher;
  const Matrix c = blocked_matmul(launcher, a, b);
  EXPECT_EQ(c(0, 0), 19);
  EXPECT_EQ(c(0, 1), 22);
  EXPECT_EQ(c(1, 0), 43);
  EXPECT_EQ(c(1, 1), 50);
}

TEST(BlockedMatmul, IdentityIsNeutral) {
  Rng rng(1);
  const Matrix a = uniform_matrix(33, 33, -5.0, 5.0, rng);
  Matrix eye(33, 33, 0.0);
  for (std::size_t i = 0; i < 33; ++i) eye(i, i) = 1.0;
  Launcher launcher;
  const Matrix c = blocked_matmul(launcher, a, eye);
  EXPECT_EQ(c, a);
}

// The blocked kernel accumulates each element in ascending-k order, exactly
// like the naive reference: results must be bitwise identical, for every
// blocking configuration and both accumulation modes.
struct BlockingCase {
  GemmConfig config;
  std::size_t m, k, n;
};

class BlockedMatmulBitwise : public ::testing::TestWithParam<BlockingCase> {};

TEST_P(BlockedMatmulBitwise, MatchesNaiveBitwise) {
  const auto& param = GetParam();
  Rng rng(99);
  const Matrix a = uniform_matrix(param.m, param.k, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(param.k, param.n, -1.0, 1.0, rng);
  Launcher launcher;
  const Matrix c = blocked_matmul(launcher, a, b, param.config);
  const Matrix ref = naive_matmul(a, b, param.config.use_fma);
  EXPECT_EQ(c, ref);  // bitwise
}

INSTANTIATE_TEST_SUITE_P(
    Blockings, BlockedMatmulBitwise,
    ::testing::Values(
        BlockingCase{{32, 32, 8, 4, 4, false}, 64, 64, 64},
        BlockingCase{{32, 32, 8, 4, 4, true}, 64, 64, 64},
        BlockingCase{{16, 16, 16, 2, 2, false}, 48, 80, 32},
        BlockingCase{{8, 8, 4, 8, 8, false}, 40, 24, 56},
        BlockingCase{{32, 32, 8, 4, 4, false}, 33, 65, 17},   // ragged edges
        BlockingCase{{32, 32, 8, 4, 4, true}, 7, 130, 61},    // ragged + fma
        BlockingCase{{64, 16, 8, 4, 2, false}, 100, 50, 30},  // asymmetric tiles
        BlockingCase{{4, 4, 2, 2, 2, false}, 5, 5, 5}));

TEST(BlockedMatmul, CountsGemmFlops) {
  Rng rng(3);
  const std::size_t n = 32;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  (void)blocked_matmul(launcher, a, b);
  ASSERT_EQ(launcher.launch_log().size(), 1u);
  const auto stats = launcher.launch_log().front();
  // n^3 multiplies + n^3 inner adds + n^2 final merges (no padding at 32).
  EXPECT_EQ(stats.counters.muls, n * n * n);
  EXPECT_EQ(stats.counters.adds, n * n * n + n * n);
}

TEST(BlockedMatmul, FmaModeCountsFmas) {
  Rng rng(3);
  const std::size_t n = 32;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  GemmConfig config;
  config.use_fma = true;
  (void)blocked_matmul(launcher, a, b, config);
  const auto stats = launcher.launch_log().front();
  EXPECT_EQ(stats.counters.fmas, n * n * n);
  EXPECT_EQ(stats.counters.muls, 0u);
}

TEST(BlockedMatmul, InjectedFaultCorruptsExactlyOneElement) {
  Rng rng(5);
  const std::size_t n = 64;
  const Matrix a = uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(n, n, -1.0, 1.0, rng);
  Launcher launcher;
  const Matrix clean = blocked_matmul(launcher, a, b);

  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerMul;
  fault.sm_id = 0;
  fault.module_id = 0;
  fault.k_injection = 10;
  fault.error_vec = 1ULL << 62;  // flip the top exponent bit: huge error
  controller.arm(fault);
  const Matrix faulty = blocked_matmul(launcher, a, b);
  launcher.set_fault_controller(nullptr);

  ASSERT_TRUE(controller.fired());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (clean(i, j) != faulty(i, j)) ++diffs;
  EXPECT_EQ(diffs, 1u);
}

TEST(BlockedMatmul, DisarmedControllerInjectsNothing) {
  Rng rng(6);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  Launcher launcher;
  FaultController controller;  // never armed
  launcher.set_fault_controller(&controller);
  const Matrix c1 = blocked_matmul(launcher, a, b);
  launcher.set_fault_controller(nullptr);
  const Matrix c2 = blocked_matmul(launcher, a, b);
  EXPECT_EQ(c1, c2);
  EXPECT_FALSE(controller.fired());
}

TEST(BlockedMatmul, FaultFiresAtMostOnce) {
  Rng rng(7);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  FaultConfig fault;
  fault.site = FaultSite::kInnerAdd;
  fault.sm_id = 0;
  fault.module_id = 2;
  fault.k_injection = 0;
  fault.error_vec = 1ULL << 51;
  controller.arm(fault);
  const Matrix clean = [&] {
    Launcher clean_launcher;
    return blocked_matmul(clean_launcher, a, b);
  }();
  const Matrix faulty = blocked_matmul(launcher, a, b);
  launcher.set_fault_controller(nullptr);
  ASSERT_TRUE(controller.fired());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < 64; ++i)
    for (std::size_t j = 0; j < 64; ++j)
      if (clean(i, j) != faulty(i, j)) ++diffs;
  EXPECT_EQ(diffs, 1u);  // one-shot semantics despite many matching sites
}

TEST(BlockedMatmul, RejectsMismatchedDimensions) {
  Matrix a(4, 5);
  Matrix b(4, 4);
  Launcher launcher;
  EXPECT_THROW((void)blocked_matmul(launcher, a, b), std::invalid_argument);
}

TEST(BlockedMatmul, RejectsInvalidConfig) {
  Matrix a(4, 4);
  Matrix b(4, 4);
  Launcher launcher;
  GemmConfig bad;
  bad.rx = 3;  // does not divide bm = 32
  EXPECT_THROW((void)blocked_matmul(launcher, a, b, bad), std::invalid_argument);
}

}  // namespace
