// Profiling-report tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/profile_report.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::gpusim;

TEST(ProfileReport, AggregatesByKernelName) {
  std::vector<LaunchStats> log(3);
  log[0].kernel_name = "gemm";
  log[0].blocks = 4;
  log[0].counters.muls = 100;
  log[1].kernel_name = "check";
  log[1].blocks = 2;
  log[1].counters.adds = 50;
  log[2].kernel_name = "gemm";
  log[2].blocks = 4;
  log[2].counters.muls = 100;

  const auto profiles = profile_launch_log(k20c(), log);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "gemm");
  EXPECT_EQ(profiles[0].launches, 2u);
  EXPECT_EQ(profiles[0].blocks, 8u);
  EXPECT_EQ(profiles[0].counters.muls, 200u);
  EXPECT_EQ(profiles[1].name, "check");
  EXPECT_EQ(profiles[1].launches, 1u);
  EXPECT_GT(profiles[0].modelled_seconds, 0.0);
}

TEST(ProfileReport, EndToEndProtectedMultiplyProfile) {
  Rng rng(1);
  const auto a = aabft::linalg::uniform_matrix(192, 192, -1.0, 1.0, rng);
  const auto b = aabft::linalg::uniform_matrix(192, 192, -1.0, 1.0, rng);
  Launcher launcher;
  aabft::abft::AabftConfig config;
  config.bs = 16;
  aabft::abft::AabftMultiplier mult(launcher, config);
  (void)mult.multiply(a, b).value();

  const auto profiles = profile_launch_log(launcher.device(),
                                           launcher.launch_log());
  // encode_a, reduce_pmax_a, encode_b, reduce_pmax_b, gemm, check.
  ASSERT_EQ(profiles.size(), 6u);
  double gemm_seconds = 0.0;
  double largest_other = 0.0;
  for (const auto& p : profiles) {
    if (p.name == "gemm")
      gemm_seconds = p.modelled_seconds;
    else
      largest_other = std::max(largest_other, p.modelled_seconds);
  }
  // The product is the single most expensive kernel at this size.
  EXPECT_GT(gemm_seconds, largest_other);

  const std::string text = format_profile(profiles);
  EXPECT_NE(text.find("gemm"), std::string::npos);
  EXPECT_NE(text.find("check"), std::string::npos);
  EXPECT_NE(text.find('%'), std::string::npos);
}

TEST(ProfileReport, EmptyLogFormats) {
  const auto profiles = profile_launch_log(k20c(), {});
  EXPECT_TRUE(profiles.empty());
  const std::string text = format_profile(profiles);
  EXPECT_NE(text.find("kernel"), std::string::npos);  // header only
}

}  // namespace
