// Launch-log pricing tests (Table I composition rules).
#include <gtest/gtest.h>

#include "baselines/scheme_timing.hpp"

namespace {

using namespace aabft;
using baselines::price_launch_log;
using baselines::SchemeTiming;
using gpusim::LaunchStats;

LaunchStats kernel(const char* name, std::uint64_t flops,
                   std::uint64_t bytes = 0) {
  LaunchStats stats;
  stats.kernel_name = name;
  stats.counters.muls = flops;
  stats.counters.bytes_loaded = bytes;
  return stats;
}

TEST(SchemeTiming, ClassifiesKernelsByName) {
  const auto device = gpusim::k20c();
  const std::vector<LaunchStats> log = {
      kernel("encode_a", 1000, 8000), kernel("gemm", 2'000'000'000),
      kernel("reduce_pmax_a", 500),   kernel("row_norms", 1000, 8000),
      kernel("check", 1000, 8000)};
  const SchemeTiming timing = price_launch_log(device, log);
  EXPECT_GT(timing.gemm_seconds, 0.0);
  EXPECT_GT(timing.overlapped_seconds, 0.0);
  EXPECT_GT(timing.overhead_seconds, 0.0);
}

TEST(SchemeTiming, OverlapHidesReductionBehindGemm) {
  const auto device = gpusim::k20c();
  // A big GEMM and a tiny overlapped reduction: total == overhead + gemm.
  const std::vector<LaunchStats> log = {kernel("gemm", 2'000'000'000),
                                        kernel("reduce_pmax_b", 10)};
  const SchemeTiming timing = price_launch_log(device, log);
  EXPECT_EQ(timing.total_seconds(),
            timing.overhead_seconds + timing.gemm_seconds);

  // A huge "overlapped" kernel dominating the GEMM: it becomes the limiter.
  const std::vector<LaunchStats> log2 = {kernel("gemm", 1000),
                                         kernel("reduce_pmax_b", 5'000'000'000)};
  const SchemeTiming t2 = price_launch_log(device, log2);
  EXPECT_EQ(t2.total_seconds(), t2.overhead_seconds + t2.overlapped_seconds);
}

TEST(SchemeTiming, MoreKernelsCostMore) {
  const auto device = gpusim::k20c();
  const std::vector<LaunchStats> one = {kernel("gemm", 1'000'000'000)};
  std::vector<LaunchStats> three = {kernel("gemm", 1'000'000'000),
                                    kernel("gemm", 1'000'000'000),
                                    kernel("gemm", 1'000'000'000)};
  EXPECT_NEAR(price_launch_log(device, three).gemm_seconds,
              3.0 * price_launch_log(device, one).gemm_seconds, 1e-9);
}

TEST(SchemeTiming, EmptyLogIsFree) {
  const SchemeTiming timing = price_launch_log(gpusim::k20c(), {});
  EXPECT_EQ(timing.total_seconds(), 0.0);
}

}  // namespace
