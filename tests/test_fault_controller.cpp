// FaultController lifecycle tests: one-shot firing, disarm()/re-arm
// bookkeeping across back-to-back protected multiplies, the thread-scoped
// controller override used by the serving layer, and fault-domain isolation
// across distinct Launchers (the fleet's per-device blast-radius contract).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft::gpusim;
using aabft::Rng;
using aabft::linalg::blocked_matmul;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

FaultConfig deterministic_fault(int module_id = 0) {
  FaultConfig fault;  // block 0 always runs on SM 0; kFinalAdd fires at k = 0
  fault.site = FaultSite::kFinalAdd;
  fault.sm_id = 0;
  fault.module_id = module_id;
  fault.error_vec = 1ULL << 60;
  return fault;
}

TEST(FaultController, OneShotFiresExactlyOnceAcrossLaunches) {
  Rng rng(41);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);
  controller.arm(deterministic_fault());

  const Matrix faulty = blocked_matmul(launcher, a, b);
  EXPECT_EQ(controller.fired_count(), 1u);
  EXPECT_NE(faulty, ref);

  // Still armed, but the fault is spent: the next launch is pristine and
  // the fired bookkeeping does not move.
  const Matrix second = blocked_matmul(launcher, a, b);
  EXPECT_EQ(controller.fired_count(), 1u);
  EXPECT_EQ(second, ref);
  launcher.set_fault_controller(nullptr);
}

TEST(FaultController, DisarmAndRearmResetBookkeeping) {
  Rng rng(43);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher launcher;
  FaultController controller;
  launcher.set_fault_controller(&controller);

  controller.arm(deterministic_fault());
  (void)blocked_matmul(launcher, a, b);
  ASSERT_EQ(controller.fired_count(), 1u);

  // disarm() freezes the controller: no further fires, count preserved for
  // post-run inspection (the per-request pattern in the serving layer).
  controller.disarm();
  EXPECT_FALSE(controller.armed());
  EXPECT_EQ(blocked_matmul(launcher, a, b), ref);
  EXPECT_EQ(controller.fired_count(), 1u);

  // Re-arming resets the fired flags: the same coordinates fire again.
  std::vector<FaultConfig> plan = {deterministic_fault(0),
                                   deterministic_fault(1)};
  controller.arm_many(plan);
  EXPECT_TRUE(controller.armed());
  EXPECT_EQ(controller.armed_count(), 2u);
  EXPECT_EQ(controller.fired_count(), 0u);
  EXPECT_NE(blocked_matmul(launcher, a, b), ref);
  EXPECT_EQ(controller.fired_count(), 2u);
  launcher.set_fault_controller(nullptr);
}

TEST(FaultController, ScopedOverrideTakesPrecedenceAndRestores) {
  Rng rng(47);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher launcher;  // no controller attached to the launcher at all
  ASSERT_EQ(thread_fault_controller(), nullptr);

  FaultController scoped;
  scoped.arm(deterministic_fault());
  {
    ScopedFaultController guard(&scoped);
    EXPECT_EQ(thread_fault_controller(), &scoped);
    EXPECT_NE(blocked_matmul(launcher, a, b), ref);
    EXPECT_EQ(scoped.fired_count(), 1u);
  }
  // Override gone: back to the (absent) launcher-attached controller.
  EXPECT_EQ(thread_fault_controller(), nullptr);
  scoped.arm(deterministic_fault());  // armed again, but out of scope now
  EXPECT_EQ(blocked_matmul(launcher, a, b), ref);
  EXPECT_EQ(scoped.fired_count(), 0u);
  scoped.disarm();
}

TEST(FaultController, ScopedOverrideShadowsLauncherController) {
  Rng rng(53);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher launcher;
  FaultController attached;
  attached.arm(deterministic_fault());
  launcher.set_fault_controller(&attached);

  {
    // An armed per-request controller shadows the launcher-attached one for
    // launches from this thread.
    FaultController scoped;
    scoped.arm(deterministic_fault(1));
    ScopedFaultController guard(&scoped);
    EXPECT_NE(blocked_matmul(launcher, a, b), ref);
    EXPECT_EQ(scoped.fired_count(), 1u);
    EXPECT_EQ(attached.fired_count(), 0u) << "shadowed controller untouched";
  }
  // Scope ended: the launcher-attached controller applies again.
  EXPECT_NE(blocked_matmul(launcher, a, b), ref);
  EXPECT_EQ(attached.fired_count(), 1u);
  launcher.set_fault_controller(nullptr);
}

TEST(FaultController, ScopedFaultOnOneLauncherNeverFiresOnAnother) {
  // The fleet's failure-domain contract: device 0 and device 1 are distinct
  // Launchers with distinct worker pools, so a per-request fault armed (via
  // the thread-scoped override) around device 0's launches must be invisible
  // to concurrent launches on device 1 — device 1's results stay
  // bit-identical to the reference for the whole campaign.
  Rng rng(59);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher device0(k20c(), 2);
  Launcher device1(k20c(), 2);

  constexpr int kRounds = 24;
  int clean_rounds = 0;
  std::thread bystander([&] {
    for (int i = 0; i < kRounds; ++i)
      if (blocked_matmul(device1, a, b) == ref) ++clean_rounds;
  });

  std::size_t fired = 0;
  for (int i = 0; i < kRounds; ++i) {
    FaultController per_request;
    per_request.arm(deterministic_fault());
    {
      ScopedFaultController guard(&per_request);
      EXPECT_NE(blocked_matmul(device0, a, b), ref);
    }
    per_request.disarm();
    fired += per_request.fired_count();
  }
  bystander.join();

  EXPECT_EQ(fired, static_cast<std::size_t>(kRounds))
      << "every armed fault fired on device 0";
  EXPECT_EQ(clean_rounds, kRounds)
      << "device 1 observed a fault armed for device 0";
}

TEST(FaultController, AttachedControllerIsPerLauncher) {
  // A controller attached to one launcher is consulted only by that
  // launcher's launches; a sibling device with no controller stays pristine.
  Rng rng(61);
  const Matrix a = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(64, 64, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  Launcher device0(k20c(), 2);
  Launcher device1(k20c(), 2);
  FaultController attached;
  attached.arm(deterministic_fault());
  device0.set_fault_controller(&attached);

  EXPECT_EQ(blocked_matmul(device1, a, b), ref);
  EXPECT_EQ(attached.fired_count(), 0u)
      << "device 1 consulted device 0's controller";
  EXPECT_NE(blocked_matmul(device0, a, b), ref);
  EXPECT_EQ(attached.fired_count(), 1u);
  device0.set_fault_controller(nullptr);
}

}  // namespace
