// Error-vector construction tests (paper Section VI-C fault model).
#include <gtest/gtest.h>

#include <bit>

#include "core/rng.hpp"
#include "fp/bits.hpp"
#include "fp/fault_vector.hpp"

namespace {

using aabft::Rng;
using namespace aabft::fp;

TEST(FaultVector, FieldGeometry) {
  EXPECT_EQ(field_width(BitField::kSign), 1);
  EXPECT_EQ(field_width(BitField::kExponent), 11);
  EXPECT_EQ(field_width(BitField::kMantissa), 52);
  EXPECT_EQ(field_offset(BitField::kSign), 63);
  EXPECT_EQ(field_offset(BitField::kExponent), 52);
  EXPECT_EQ(field_offset(BitField::kMantissa), 0);
}

TEST(FaultVector, SingleBitSign) {
  Rng rng(1);
  const auto vec = make_error_vec(BitField::kSign, 1, rng);
  EXPECT_EQ(vec, kSignMask);
}

class FaultVectorSweep
    : public ::testing::TestWithParam<std::tuple<BitField, int>> {};

TEST_P(FaultVectorSweep, ExactPopcountInsideField) {
  const auto [field, bits] = GetParam();
  Rng rng(static_cast<std::uint64_t>(bits) * 31 + 7);
  for (int rep = 0; rep < 500; ++rep) {
    const auto vec = make_error_vec(field, bits, rng);
    EXPECT_EQ(std::popcount(vec), bits);
    EXPECT_EQ(popcount_in_field(vec, field), bits)
        << "bits escaped the " << to_string(field) << " field";
  }
}

INSTANTIATE_TEST_SUITE_P(
    FieldsAndCounts, FaultVectorSweep,
    ::testing::Values(std::make_tuple(BitField::kMantissa, 1),
                      std::make_tuple(BitField::kMantissa, 3),
                      std::make_tuple(BitField::kMantissa, 5),
                      std::make_tuple(BitField::kMantissa, 52),
                      std::make_tuple(BitField::kExponent, 1),
                      std::make_tuple(BitField::kExponent, 3),
                      std::make_tuple(BitField::kExponent, 11),
                      std::make_tuple(BitField::kSign, 1)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) +
             std::to_string(std::get<1>(info.param));
    });

TEST(FaultVector, MultiBitStaysWithinNeighbourhood) {
  // The construction puts two endpoint bits and the rest strictly between
  // them: the span containing all flips is contiguous within the field.
  Rng rng(9);
  for (int rep = 0; rep < 500; ++rep) {
    const auto vec = make_error_vec(BitField::kMantissa, 5, rng);
    const int lowest = std::countr_zero(vec);
    const int highest = 63 - std::countl_zero(vec);
    EXPECT_GE(highest - lowest, 4);  // 5 distinct bits need span >= 4
    EXPECT_LT(highest, 52);
  }
}

TEST(FaultVector, SingleBitPositionsCoverField) {
  Rng rng(10);
  std::uint64_t seen = 0;
  for (int rep = 0; rep < 3000; ++rep)
    seen |= make_error_vec(BitField::kExponent, 1, rng);
  // All 11 exponent positions should appear within 3000 draws.
  EXPECT_EQ(popcount_in_field(seen, BitField::kExponent), 11);
}

TEST(FaultVector, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(make_error_vec(BitField::kMantissa, 3, a),
              make_error_vec(BitField::kMantissa, 3, b));
}

TEST(FaultVector, RejectsInvalidCounts) {
  Rng rng(11);
  EXPECT_THROW((void)make_error_vec(BitField::kSign, 2, rng), std::invalid_argument);
  EXPECT_THROW((void)make_error_vec(BitField::kMantissa, 0, rng),
               std::invalid_argument);
  EXPECT_THROW((void)make_error_vec(BitField::kExponent, 12, rng),
               std::invalid_argument);
}

TEST(FaultVector, XorApplicationMatchesPaperExample) {
  // dataVec ^ errorVec flips exactly the masked bits (paper Section VI-C).
  const double data = 1.75;
  const std::uint64_t error_vec = (1ULL << 3) | (1ULL << 40);
  const double faulty = xor_bits(data, error_vec);
  EXPECT_NE(faulty, data);
  EXPECT_EQ(xor_bits(faulty, error_vec), data);
  EXPECT_EQ(std::popcount(to_bits(faulty) ^ to_bits(data)), 2);
}

}  // namespace
