// Padding helpers and the padded protected-multiply convenience path.
#include <gtest/gtest.h>

#include "abft/aabft.hpp"
#include "abft/padding.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using namespace aabft::abft;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;

TEST(Padding, PaddedDim) {
  EXPECT_EQ(padded_dim(32, 32), 32u);
  EXPECT_EQ(padded_dim(33, 32), 64u);
  EXPECT_EQ(padded_dim(1, 32), 32u);
  EXPECT_EQ(padded_dim(0, 32), 0u);
}

TEST(Padding, PadAndUnpadRoundTrip) {
  Rng rng(1);
  const Matrix m = uniform_matrix(5, 7, -1.0, 1.0, rng);
  const Matrix padded = pad_to(m, 8, 8);
  EXPECT_EQ(padded.rows(), 8u);
  EXPECT_EQ(padded.cols(), 8u);
  EXPECT_EQ(padded(7, 7), 0.0);
  EXPECT_EQ(padded(0, 6), m(0, 6));
  EXPECT_EQ(unpad_to(padded, 5, 7), m);
}

TEST(Padding, PadNoOpWhenAlreadySized) {
  Rng rng(2);
  const Matrix m = uniform_matrix(4, 4, -1.0, 1.0, rng);
  EXPECT_EQ(pad_to(m, 4, 4), m);
  EXPECT_EQ(unpad_to(m, 4, 4), m);
}

TEST(Padding, InvalidTargetsRejected) {
  Matrix m(4, 4);
  EXPECT_THROW((void)pad_to(m, 3, 4), std::invalid_argument);
  EXPECT_THROW((void)unpad_to(m, 5, 4), std::invalid_argument);
}

TEST(Padding, ZeroPaddingIsChecksumNeutral) {
  // Padded rows contribute zero to every checksum: the encoded padded matrix
  // has the same checksums as padding the encoded matrix would.
  Rng rng(3);
  const PartitionedCodec codec(8);
  const Matrix a = uniform_matrix(8, 8, -1.0, 1.0, rng);
  const Matrix padded = pad_to(a, 16, 8);
  const Matrix enc = codec.encode_columns_host(padded);
  // Block 1 is all padding: its checksum row is zero.
  for (std::size_t j = 0; j < 8; ++j)
    EXPECT_EQ(enc(codec.checksum_index(1), j), 0.0);
}

TEST(Padding, MultiplyPaddedMatchesNaiveOnOddShapes) {
  Rng rng(4);
  const Matrix a = uniform_matrix(19, 23, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(23, 29, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  AabftConfig config;
  config.bs = 16;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply_padded(a, b);
  EXPECT_FALSE(result.error_detected());
  EXPECT_EQ(result.c.rows(), 19u);
  EXPECT_EQ(result.c.cols(), 29u);
  EXPECT_EQ(result.c, naive_matmul(a, b, false));
}

TEST(Padding, MultiplyPaddedStillDetectsFaults) {
  Rng rng(5);
  const Matrix a = uniform_matrix(20, 20, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(20, 20, -1.0, 1.0, rng);
  aabft::gpusim::Launcher launcher;
  aabft::gpusim::FaultController controller;
  launcher.set_fault_controller(&controller);
  aabft::gpusim::FaultConfig fault;
  fault.site = aabft::gpusim::FaultSite::kInnerMul;
  fault.error_vec = 1ULL << 61;
  fault.k_injection = 2;
  controller.arm(fault);
  AabftConfig config;
  config.bs = 16;
  AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply_padded(a, b);
  ASSERT_TRUE(controller.fired());
  EXPECT_TRUE(result.error_detected());
}

}  // namespace
