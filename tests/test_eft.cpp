// Error-free transformation tests: the EFTs must be *exact*, verified
// against the independent BigFloat oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "fp/bigfloat.hpp"
#include "fp/eft.hpp"

namespace {

using aabft::Rng;
using namespace aabft::fp;

void expect_exact_sum(double a, double b, const Eft& e) {
  const BigFloat lhs = BigFloat::from_double(a) + BigFloat::from_double(b);
  const BigFloat rhs =
      BigFloat::from_double(e.value) + BigFloat::from_double(e.error);
  EXPECT_EQ(lhs.compare(rhs), 0) << a << " + " << b;
  EXPECT_EQ(e.value, a + b);  // value is the rounded result
}

void expect_exact_product(double a, double b, const Eft& e) {
  const BigFloat lhs = BigFloat::from_double(a) * BigFloat::from_double(b);
  const BigFloat rhs =
      BigFloat::from_double(e.value) + BigFloat::from_double(e.error);
  EXPECT_EQ(lhs.compare(rhs), 0) << a << " * " << b;
  EXPECT_EQ(e.value, a * b);
}

TEST(Eft, TwoSumKnownCase) {
  // 1e16 + 1: the 1 is lost in rounding and must reappear in the error term.
  const Eft e = two_sum(1e16, 1.0);
  EXPECT_EQ(e.value, 1e16);
  EXPECT_EQ(e.error, 1.0);
}

TEST(Eft, TwoSumRandom) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-10, 10));
    const double b = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-10, 10));
    expect_exact_sum(a, b, two_sum(a, b));
  }
}

TEST(Eft, FastTwoSumRequiresOrdering) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    double a = rng.uniform(-100.0, 100.0);
    double b = rng.uniform(-100.0, 100.0);
    if (std::fabs(a) < std::fabs(b)) std::swap(a, b);
    expect_exact_sum(a, b, fast_two_sum(a, b));
  }
}

TEST(Eft, FastTwoSumAgreesWithTwoSumWhenOrdered) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double a = rng.uniform(-1e8, 1e8);
    double b = rng.uniform(-1.0, 1.0);
    const Eft fast = fast_two_sum(a, b);
    const Eft full = two_sum(a, b);
    EXPECT_EQ(fast.value, full.value);
    EXPECT_EQ(fast.error, full.error);
  }
}

TEST(Eft, SplitIsExactAndNarrow) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1e10, 1e10);
    const Split s = split(x);
    EXPECT_EQ(s.hi + s.lo, x);
    // Each part carries at most 26 significant bits: the product of two
    // halves is then exact; check via the defining identity hi*hi exactness.
    const BigFloat exact = BigFloat::from_double(s.hi) + BigFloat::from_double(s.lo);
    EXPECT_EQ(exact.compare(BigFloat::from_double(x)), 0);
  }
}

TEST(Eft, TwoProdFmaKnownCase) {
  // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60; the 2^-60 term rounds away.
  const double x = 1.0 + std::ldexp(1.0, -30);
  const Eft e = two_prod_fma(x, x);
  EXPECT_EQ(e.error, std::ldexp(1.0, -60));
}

TEST(Eft, TwoProdFmaRandom) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-50, 50));
    const double b = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.between(-50, 50));
    expect_exact_product(a, b, two_prod_fma(a, b));
  }
}

TEST(Eft, TwoProdDekkerMatchesFmaVariant) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.uniform(-1e5, 1e5);
    const double b = rng.uniform(-1e5, 1e5);
    const Eft dekker = two_prod(a, b);
    const Eft fma = two_prod_fma(a, b);
    EXPECT_EQ(dekker.value, fma.value);
    EXPECT_EQ(dekker.error, fma.error) << a << " * " << b;
  }
}

TEST(Eft, ZeroOperands) {
  EXPECT_EQ(two_sum(0.0, 0.0).error, 0.0);
  EXPECT_EQ(two_prod_fma(0.0, 5.0).error, 0.0);
  EXPECT_EQ(two_prod(5.0, 0.0).error, 0.0);
}

TEST(Eft, ExactOperationsHaveZeroError) {
  EXPECT_EQ(two_sum(1.0, 2.0).error, 0.0);
  EXPECT_EQ(two_prod_fma(3.0, 4.0).error, 0.0);
  EXPECT_EQ(two_sum(0.5, 0.25).error, 0.0);
}

}  // namespace
