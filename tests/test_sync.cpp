// Lock-rank validator tests (core/sync.hpp, DESIGN.md §11): a seeded
// two-mutex rank inversion must abort with LockOrderError naming both locks;
// recursive acquisition is an inversion too; try_lock and RAII guards must
// keep the per-thread held stack balanced on every path; and one real
// FleetServer soak iteration — feeders, collectors, a forced device failure
// with replay — must complete without a single ordering violation, ending
// every thread's held stack at zero.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "core/sync.hpp"
#include "fleet/fleet_server.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using aabft::Rng;
using aabft::core::CondVar;
using aabft::core::held_lock_count;
using aabft::core::held_lock_names;
using aabft::core::LockOrderError;
using aabft::core::LockRank;
using aabft::core::Mutex;
using aabft::core::MutexLock;
using aabft::core::UniqueLock;
using aabft::linalg::Matrix;
using aabft::linalg::naive_matmul;
using aabft::linalg::uniform_matrix;
namespace fleet = aabft::fleet;
namespace serve = aabft::serve;

// ---- validator unit tests --------------------------------------------------

TEST(LockRank, InOrderAcquisitionIsClean) {
  Mutex low(LockRank::kFleetControl, "test.low");
  Mutex high(LockRank::kServeQueue, "test.high");
  EXPECT_EQ(held_lock_count(), 0u);
  {
    MutexLock outer(low);
    EXPECT_EQ(held_lock_count(), 1u);
    MutexLock inner(high);
    EXPECT_EQ(held_lock_count(), 2u);
    const auto names = held_lock_names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "test.low");
    EXPECT_EQ(names[1], "test.high");
  }
  EXPECT_EQ(held_lock_count(), 0u);
}

TEST(LockRank, SeededInversionThrowsNamingBothLocks) {
  Mutex low(LockRank::kFleetControl, "test.seeded_low");
  Mutex high(LockRank::kServeQueue, "test.seeded_high");
  MutexLock outer(high);  // acquire the *higher* rank first...
  try {
    MutexLock inner(low);  // ...then the lower: rank inversion
    FAIL() << "rank inversion was not detected";
  } catch (const LockOrderError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("test.seeded_low"), std::string::npos) << what;
    EXPECT_NE(what.find("test.seeded_high"), std::string::npos) << what;
  }
  // The throwing acquisition must not have been recorded.
  EXPECT_EQ(held_lock_count(), 1u);
}

TEST(LockRank, RecursiveAcquisitionIsAnInversion) {
  Mutex mu(LockRank::kServeStats, "test.recursive");
  MutexLock outer(mu);
  EXPECT_THROW(mu.lock(), LockOrderError);  // same rank: strictness rejects it
  EXPECT_EQ(held_lock_count(), 1u);
}

TEST(LockRank, FailedTryLockLeavesStackBalanced) {
  // ready_mu outranks mu: the holder thread nests ready_mu inside mu.
  Mutex mu(LockRank::kServeQueue, "test.trylock");
  std::thread holder;
  Mutex ready_mu(LockRank::kServeStats, "test.trylock_ready");
  CondVar ready_cv;
  bool locked = false, release = false;
  holder = std::thread([&] {
    MutexLock lk(mu);
    {
      UniqueLock rl(ready_mu);
      locked = true;
      ready_cv.notify_all();
      while (!release) ready_cv.wait(rl);
    }
  });
  {
    UniqueLock rl(ready_mu);
    while (!locked) ready_cv.wait(rl);
  }
  EXPECT_FALSE(mu.try_lock());  // contended: must fail *and* unwind its note
  EXPECT_EQ(held_lock_count(), 0u);
  {
    UniqueLock rl(ready_mu);
    release = true;
    ready_cv.notify_all();
  }
  holder.join();
  ASSERT_TRUE(mu.try_lock());  // uncontended: succeeds and records
  EXPECT_EQ(held_lock_count(), 1u);
  mu.unlock();
  EXPECT_EQ(held_lock_count(), 0u);
}

TEST(LockRank, UniqueLockManualUnlockRelock) {
  Mutex mu(LockRank::kDeviceTask, "test.unique");
  UniqueLock lk(mu);
  EXPECT_TRUE(lk.owns_lock());
  EXPECT_EQ(held_lock_count(), 1u);
  lk.unlock();
  EXPECT_FALSE(lk.owns_lock());
  EXPECT_EQ(held_lock_count(), 0u);
  lk.lock();
  EXPECT_EQ(held_lock_count(), 1u);
}

// ---- clean ordering over a real fleet soak iteration -----------------------

// One full FleetServer lifecycle under the always-on validator: concurrent
// submissions, work stealing, a forced mid-run device failure (replay +
// operand reconstruction), stop() with its cross-subsystem lock nesting
// (fleet stop -> shard-queue close -> serve stop -> pause -> queue). Any
// rank inversion anywhere in that machinery throws LockOrderError out of a
// worker thread and aborts the test; a clean run ends with this thread
// holding nothing.
TEST(LockRank, FleetSoakIterationHasCleanOrdering) {
  Rng rng(29);
  const Matrix a = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix b = uniform_matrix(32, 32, -1.0, 1.0, rng);
  const Matrix ref = naive_matmul(a, b, false);

  fleet::FleetConfig config;
  config.devices = 3;
  config.workers_per_device = 2;
  config.serve.batch.linger = std::chrono::microseconds(50);
  fleet::FleetServer fleet_server(config);
  const std::uint64_t a_handle = fleet_server.register_operand(a);

  std::vector<std::future<fleet::FleetResponse>> futures;
  for (int i = 0; i < 16; ++i) {
    fleet::FleetRequest req;
    req.request.kind = aabft::baselines::OpKind::kGemm;
    req.request.b = b;
    req.a_handle = a_handle;  // exercise the operand store on every request
    auto submitted = fleet_server.submit(std::move(req));
    ASSERT_TRUE(submitted.ok()) << submitted.error().message;
    futures.push_back(std::move(*submitted));
    if (i == 7) fleet_server.force_fail(0);  // fence mid-traffic
  }
  for (auto& fut : futures) {
    const fleet::FleetResponse resp = fut.get();
    EXPECT_EQ(resp.response.status, serve::ResponseStatus::kOk);
    EXPECT_EQ(resp.response.c, ref);
  }
  fleet_server.stop();  // the deepest lock nesting in the tree
  EXPECT_EQ(held_lock_count(), 0u);
  EXPECT_TRUE(held_lock_names().empty());
}

}  // namespace
