// google-benchmark microbenchmarks of the library's building blocks.
//
// These measure *host* execution of the simulated kernels and of the exact
// reference arithmetic on this machine — useful for tracking regressions in
// the implementation itself (the K20C numbers of Table I come from the
// analytic model, not from these timings).
#include <benchmark/benchmark.h>

#include <vector>

#include "abft/aabft.hpp"
#include "abft/checker.hpp"
#include "abft/encoder.hpp"
#include "abft/pmax_scan.hpp"
#include "baselines/plain_encode.hpp"
#include "baselines/sea_abft.hpp"
#include "core/rng.hpp"
#include "fp/exact_dot.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

void BM_BlockedMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  gpusim::Launcher launcher;
  for (auto _ : state) {
    auto c = linalg::blocked_matmul(launcher, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_BlockedMatmul)->Arg(64)->Arg(128)->Arg(256);

// The pre-fence reference: every op pays the per-op counter + fault check.
// Compare against BM_BlockedMatmul at the same size for the fence's win.
void BM_BlockedMatmulInstrumented(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  gpusim::Launcher launcher;
  gpusim::set_force_instrumented(true);
  for (auto _ : state) {
    auto c = linalg::blocked_matmul(launcher, a, b);
    benchmark::DoNotOptimize(c.data());
  }
  gpusim::set_force_instrumented(false);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_BlockedMatmulInstrumented)->Arg(64)->Arg(128)->Arg(256);

void BM_BlockedMatmulFma(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  gpusim::Launcher launcher;
  linalg::GemmConfig config;
  config.use_fma = true;
  for (auto _ : state) {
    auto c = linalg::blocked_matmul(launcher, a, b, config);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_BlockedMatmulFma)->Arg(128);

void BM_PairwiseMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 1);
  const auto b = random_matrix(n, n, 2);
  gpusim::Launcher launcher;
  for (auto _ : state) {
    auto c = linalg::pairwise_matmul(launcher, a, b);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_PairwiseMatmul)->Arg(128);

void BM_EncodeColumns(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 3);
  const abft::PartitionedCodec codec(32);
  gpusim::Launcher launcher;
  for (auto _ : state) {
    auto enc = abft::encode_columns(launcher, a, codec, 2);
    benchmark::DoNotOptimize(enc.data.data());
  }
}
BENCHMARK(BM_EncodeColumns)->Arg(256)->Arg(512);

void BM_CheckProduct(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const abft::PartitionedCodec codec(32);
  gpusim::Launcher launcher;
  const auto a_cc = abft::encode_columns(launcher, random_matrix(n, n, 4),
                                         codec, 2);
  const auto b_rc = abft::encode_rows(launcher, random_matrix(n, n, 5),
                                      codec, 2);
  const auto c_fc =
      linalg::blocked_matmul(launcher, a_cc.data, b_rc.data, {});
  const abft::BoundParams params;
  for (auto _ : state) {
    auto report = abft::check_product(launcher, c_fc, codec, a_cc.pmax,
                                      b_rc.pmax, n, params, nullptr);
    benchmark::DoNotOptimize(report.mismatches.data());
  }
}
BENCHMARK(BM_CheckProduct)->Arg(256)->Arg(512);

void BM_SeaBoundsAndCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const abft::PartitionedCodec codec(32);
  gpusim::Launcher launcher;
  const auto a_cc =
      baselines::plain_encode_columns(launcher, random_matrix(n, n, 6), codec);
  const auto b_rc =
      baselines::plain_encode_rows(launcher, random_matrix(n, n, 7), codec);
  const auto c_fc = linalg::blocked_matmul(launcher, a_cc, b_rc, {});
  for (auto _ : state) {
    const auto bounds = baselines::compute_sea_bounds(launcher, a_cc, b_rc, codec);
    auto report =
        baselines::sea_check_product(launcher, c_fc, codec, bounds, n, nullptr);
    benchmark::DoNotOptimize(report.mismatches.data());
  }
}
BENCHMARK(BM_SeaBoundsAndCheck)->Arg(256);

void BM_PMaxRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = random_matrix(n, n, 8);
  gpusim::Launcher launcher;
  for (auto _ : state) {
    auto table = abft::collect_row_pmax(launcher, m, 2);
    benchmark::DoNotOptimize(table.data());
  }
}
BENCHMARK(BM_PMaxRows)->Arg(256)->Arg(512);

void BM_ExactDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& x : a) x = rng.uniform(-1.0, 1.0);
  for (auto& x : b) x = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fp::exact_dot_rounded(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExactDot)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ProtectedMultiplyEndToEnd(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_matrix(n, n, 10);
  const auto b = random_matrix(n, n, 11);
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  abft::AabftMultiplier mult(launcher, config);
  for (auto _ : state) {
    auto result = mult.multiply(a, b);
    benchmark::DoNotOptimize(result->c.data());
  }
}
BENCHMARK(BM_ProtectedMultiplyEndToEnd)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
