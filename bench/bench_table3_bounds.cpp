// Table III reproduction: bound quality for random inputs in [-100, 100].
#include "bench/bounds_table.hpp"

int main() {
  using namespace aabft::bench;
  BoundsTableSpec spec;
  spec.title = "Table III: rounding error bounds, input range -100.0 to 100.0";
  spec.csv_name = "table3_bounds";
  spec.input = aabft::linalg::InputClass::kHundred;
  spec.kappa = 2.0;
  spec.paper_rnd = paper_table3_rnd();
  spec.paper_aabft = paper_table3_aabft();
  spec.paper_sea = paper_table3_sea();
  return run_bounds_table(spec);
}
