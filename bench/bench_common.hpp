// Shared helpers for the table/figure reproduction harnesses.
//
// Every bench binary prints the measured values side by side with the
// paper's published numbers (where the paper reports that cell). Default
// sweeps are host-friendly; environment variables widen them to the paper's
// full ranges:
//
//   AABFT_BENCH_MAX_N    largest matrix dimension in the sweep (default 1024
//                        for the performance/bounds tables, 256 for the
//                        fault-injection figure)
//   AABFT_BENCH_TRIALS   injections per campaign cell (default 24)
//   AABFT_BENCH_SAMPLES  checksum elements sampled for the exact rounding
//                        error reference (default 64)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/table.hpp"

namespace aabft::bench {

/// Machine-readable bench output: an array of flat row objects rendered as
/// {"benchmarks": [{...}, ...]}. Rows hold preformatted JSON value text so
/// each harness keeps full control of its number formatting. write() honours
/// $AABFT_BENCH_JSON and otherwise falls back to the harness's default file
/// name in the current directory (the convention every bench binary shares).
class BenchJson {
 public:
  BenchJson& begin_row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& str(const std::string& key, const std::string& text) {
    return raw(key, "\"" + text + "\"");
  }
  BenchJson& num(const std::string& key, double value, int digits = 4) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, value);
    return raw(key, buf);
  }
  BenchJson& num(const std::string& key, std::size_t value) {
    return raw(key, std::to_string(value));
  }
  /// `text` must already be valid JSON (number, bool, quoted string, ...).
  BenchJson& raw(const std::string& key, std::string text) {
    rows_.back().emplace_back(key, std::move(text));
    return *this;
  }

  /// Write to $AABFT_BENCH_JSON or `default_path`; reports the destination
  /// on stdout like the CSV helper does. False when the file can't be opened.
  bool write(const char* default_path) const {
    const char* env = std::getenv("AABFT_BENCH_JSON");
    const std::string path =
        (env != nullptr && *env != '\0') ? env : default_path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "could not write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      for (std::size_t j = 0; j < rows_[i].size(); ++j)
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     rows_[i][j].first.c_str(), rows_[i][j].second.c_str());
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("(json written to %s)\n", path.c_str());
    return true;
  }

 private:
  using Row = std::vector<std::pair<std::string, std::string>>;
  std::vector<Row> rows_;
};

/// If AABFT_BENCH_CSV names a directory, write the printed table there as
/// <name>.csv (for plotting); silently skipped otherwise.
inline void maybe_write_csv(const TablePrinter& table, const char* name) {
  const char* dir = std::getenv("AABFT_BENCH_CSV");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  if (!table.write_csv(path))
    std::cerr << "could not write " << path << '\n';
  else
    std::cout << "(csv written to " << path << ")\n";
}

/// The paper's matrix-dimension sweep (Tables I-IV).
inline std::vector<std::size_t> paper_sweep() {
  return {512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192};
}

/// Host-scaled sweep: powers of two from 256 up to AABFT_BENCH_MAX_N
/// (default `default_max`), continuing through the paper's full list when
/// the cap allows.
inline std::vector<std::size_t> bench_sweep(std::size_t default_max) {
  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", default_max);
  std::vector<std::size_t> sweep;
  for (std::size_t n : {std::size_t{256}, std::size_t{512}, std::size_t{1024},
                        std::size_t{2048}, std::size_t{3072}, std::size_t{4096},
                        std::size_t{5120}, std::size_t{6144}, std::size_t{7168},
                        std::size_t{8192}})
    if (n <= max_n) sweep.push_back(n);
  // A cap below the smallest standard size still yields one (tiny) round —
  // keeps smoke runs meaningful.
  if (sweep.empty()) sweep.push_back(std::max<std::size_t>(max_n, 64));
  return sweep;
}

/// A paper table column: value per matrix dimension; empty when the paper
/// does not report the cell (e.g. our 256-row warm-up sizes).
using PaperColumn = std::map<std::size_t, double>;

inline std::string paper_cell(const PaperColumn& column, std::size_t n,
                              bool fixed_format = false, int digits = 2) {
  const auto it = column.find(n);
  if (it == column.end()) return "-";
  return fixed_format ? TablePrinter::fixed(it->second, digits)
                      : TablePrinter::sci(it->second, digits);
}

// ---- paper-reported values -------------------------------------------------

/// Table I: GFLOPS on the K20C.
inline PaperColumn paper_table1_abft() {
  return {{512, 382.30}, {1024, 659.02}, {2048, 807.91},  {3072, 872.93},
          {4096, 894.14}, {5120, 924.38}, {6144, 926.61}, {7168, 944.50},
          {8192, 942.61}};
}
inline PaperColumn paper_table1_aabft() {
  return {{512, 279.19}, {1024, 514.17}, {2048, 706.85},  {3072, 772.64},
          {4096, 829.10}, {5120, 848.43}, {6144, 874.59}, {7168, 885.23},
          {8192, 903.44}};
}
inline PaperColumn paper_table1_sea() {
  return {{512, 307.75}, {1024, 499.53}, {2048, 635.67},  {3072, 657.28},
          {4096, 686.39}, {5120, 690.51}, {6144, 703.91}, {7168, 705.51},
          {8192, 712.75}};
}
inline PaperColumn paper_table1_tmr() {
  return {{512, 185.56}, {1024, 322.22}, {2048, 335.65},  {3072, 339.33},
          {4096, 345.26}, {5120, 344.95}, {6144, 346.76}, {7168, 347.68},
          {8192, 348.09}};
}

/// Table II: input range -1..1 — avg rounding error / A-ABFT bound / SEA bound.
inline PaperColumn paper_table2_rnd() {
  return {{512, 2.25e-14}, {1024, 4.53e-14}, {2048, 9.09e-14},
          {3072, 1.35e-13}, {4096, 1.81e-13}, {5120, 2.25e-13},
          {6144, 2.71e-13}, {7168, 3.17e-13}, {8192, 3.62e-13}};
}
inline PaperColumn paper_table2_aabft() {
  return {{512, 1.68e-11}, {1024, 4.88e-11}, {2048, 1.46e-10},
          {3072, 2.77e-10}, {4096, 4.27e-10}, {5120, 6.21e-10},
          {6144, 8.15e-10}, {7168, 1.06e-9},  {8192, 1.28e-9}};
}
inline PaperColumn paper_table2_sea() {
  return {{512, 8.58e-10}, {1024, 3.30e-9}, {2048, 1.29e-8},
          {3072, 2.88e-8}, {4096, 5.09e-8}, {5120, 7.95e-8},
          {6144, 1.14e-7}, {7168, 1.56e-7}, {8192, 2.03e-7}};
}

/// Table III: input range -100..100.
inline PaperColumn paper_table3_rnd() {
  return {{512, 2.22e-10}, {1024, 4.55e-10}, {2048, 9.07e-10},
          {3072, 1.36e-9},  {4096, 1.81e-9},  {5120, 2.26e-9},
          {6144, 2.71e-9},  {7168, 3.16e-9},  {8192, 3.62e-9}};
}
inline PaperColumn paper_table3_aabft() {
  return {{512, 1.61e-7}, {1024, 4.92e-7}, {2048, 1.48e-6},
          {3072, 2.81e-6}, {4096, 4.27e-6}, {5120, 6.10e-6},
          {6144, 8.15e-6}, {7168, 1.04e-5}, {8192, 1.29e-5}};
}
inline PaperColumn paper_table3_sea() {
  return {{512, 8.65e-6}, {1024, 3.30e-5}, {2048, 1.29e-4},
          {3072, 2.88e-4}, {4096, 5.10e-4}, {5120, 7.93e-4},
          {6144, 1.14e-3}, {7168, 1.55e-3}, {8192, 2.03e-3}};
}

/// Table IV: dynamic range inputs, alpha = 0, kappa = 2.
inline PaperColumn paper_table4_rnd() {
  return {{512, 6.19e-11}, {1024, 2.44e-10}, {2048, 9.72e-10},
          {3072, 2.20e-9},  {4096, 3.89e-9},  {5120, 6.04e-9},
          {6144, 8.77e-9},  {7168, 1.20e-8},  {8192, 1.54e-8}};
}
inline PaperColumn paper_table4_aabft() {
  return {{512, 7.99e-8}, {1024, 5.12e-7}, {2048, 3.22e-6},
          {3072, 9.51e-6}, {4096, 2.02e-5}, {5120, 3.61e-5},
          {6144, 5.88e-5}, {7168, 8.82e-5}, {8192, 1.24e-4}};
}
inline PaperColumn paper_table4_sea() {
  return {{512, 1.34e-6}, {1024, 1.02e-5}, {2048, 7.96e-5},
          {3072, 2.69e-4}, {4096, 6.31e-4}, {5120, 1.22e-3},
          {6144, 2.28e-3}, {7168, 4.08e-3}, {8192, 8.04e-3}};
}

}  // namespace aabft::bench
