// Launch-overhead and batching microbenchmark for the persistent executor.
//
// Two questions, matching the executor's acceptance criteria:
//
//   1. How much per-launch overhead does the persistent worker pool remove
//      for *small-grid* kernels, compared to the previous design that
//      spawned and joined a fresh std::thread team on every launch? The
//      spawn-per-launch baseline below is a faithful reimplementation of
//      that retired code path (atomic block claiming included).
//
//   2. Does AabftMultiplier::multiply_batch beat sequential multiply calls
//      by pipelining independent protected multiplies across streams? This
//      only shows a wall-clock win with >= 4 pool workers; on smaller hosts
//      the bench still verifies bit-identical results and reports timings.
//
//   AABFT_BENCH_LAUNCHES   launches per timing loop (default 2000)
//   AABFT_BENCH_MAX_N      batch problem dimension (default 256)
//   AABFT_BENCH_BATCH      problems in the batch (default 8)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "abft/aabft.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using gpusim::BlockCtx;
using gpusim::block_coord;
using gpusim::Dim3;
using gpusim::Launcher;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The small-grid kernel under test: a few counted flops per block, so the
// timing is dominated by launch mechanics, not arithmetic.
void tiny_block(BlockCtx& ctx) {
  double acc = 0.0;
  for (int k = 0; k < 32; ++k)
    acc = ctx.math.fma(static_cast<double>(k), 0.5, acc);
  if (acc < 0.0) std::abort();  // keep the work observable
}

// Faithful reimplementation of the retired per-launch execution path: spawn
// `workers` threads, claim blocks through a shared atomic, join.
void spawn_per_launch(const gpusim::DeviceSpec& spec, unsigned workers,
                      Dim3 grid) {
  const std::size_t total = grid.count();
  std::atomic<std::size_t> next{0};
  auto run = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      BlockCtx ctx(block_coord(grid, i), grid,
                   static_cast<int>(i % static_cast<std::size_t>(spec.num_sms)),
                   nullptr, gpusim::Precision::kDouble,
                   spec.shared_mem_per_block);
      tiny_block(ctx);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) threads.emplace_back(run);
  for (auto& thread : threads) thread.join();
}

}  // namespace

int main() {
  const std::size_t launches = env_size_or("AABFT_BENCH_LAUNCHES", 2000);
  const std::size_t n = env_size_or("AABFT_BENCH_MAX_N", 256);
  const std::size_t batch_size = env_size_or("AABFT_BENCH_BATCH", 8);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // The spawn baseline pays one thread team per launch; give both designs
  // the same team size (>= 2, or there is nothing to spawn).
  const unsigned workers = std::max(2u, hw);
  const Dim3 grid{8, 1, 1};

  std::printf("host: hardware_concurrency=%u, team size=%u, grid=%zu blocks\n\n",
              hw, workers, grid.count());

  // -- 1. launch overhead -------------------------------------------------
  const gpusim::DeviceSpec spec = gpusim::k20c();
  for (std::size_t i = 0; i < 16; ++i) spawn_per_launch(spec, workers, grid);
  auto start = Clock::now();
  for (std::size_t i = 0; i < launches; ++i)
    spawn_per_launch(spec, workers, grid);
  const double spawn_s = seconds_since(start);

  Launcher pooled(gpusim::k20c(), workers);
  for (std::size_t i = 0; i < 16; ++i)
    (void)pooled.launch("warmup", grid, tiny_block);
  pooled.clear_launch_log();
  start = Clock::now();
  for (std::size_t i = 0; i < launches; ++i)
    (void)pooled.launch("tiny", grid, tiny_block);
  const double pool_s = seconds_since(start);

  std::printf("launch overhead, %zu launches of a %zu-block kernel:\n",
              launches, grid.count());
  std::printf("  spawn-per-launch baseline : %8.3f s  (%7.1f us/launch)\n",
              spawn_s, 1e6 * spawn_s / static_cast<double>(launches));
  std::printf("  persistent pool           : %8.3f s  (%7.1f us/launch)\n",
              pool_s, 1e6 * pool_s / static_cast<double>(launches));
  std::printf("  speedup                   : %8.1fx %s\n\n",
              spawn_s / pool_s,
              spawn_s / pool_s >= 5.0 ? "(>= 5x target met)"
                                      : "(below 5x target)");

  // -- 2. batched protected multiply --------------------------------------
  Rng rng(2026);
  std::vector<std::pair<linalg::Matrix, linalg::Matrix>> problems;
  for (std::size_t i = 0; i < batch_size; ++i)
    problems.emplace_back(linalg::uniform_matrix(n, n, -1.0, 1.0, rng),
                          linalg::uniform_matrix(n, n, -1.0, 1.0, rng));

  Launcher launcher;
  abft::AabftConfig config;
  config.bs = 32;
  abft::AabftMultiplier mult(launcher, config);

  start = Clock::now();
  std::vector<linalg::Matrix> sequential;
  for (const auto& [a, b] : problems)
    sequential.push_back(mult.multiply(a, b).value().c);
  const double seq_s = seconds_since(start);

  start = Clock::now();
  const auto batch = mult.multiply_batch(problems);
  const double batch_s = seconds_since(start);

  bool identical = true;
  for (std::size_t i = 0; i < batch.size(); ++i)
    identical = identical && batch[i].ok() && batch[i]->c == sequential[i];

  std::printf("batched protected multiply, %zu problems of %zux%zu:\n",
              batch_size, n, n);
  std::printf("  sequential multiply()     : %8.3f s\n", seq_s);
  std::printf("  multiply_batch()          : %8.3f s  (%.2fx)\n", batch_s,
              seq_s / batch_s);
  std::printf("  results bit-identical     : %s\n",
              identical ? "yes" : "NO (bug)");
  if (launcher.workers() < 4)
    std::printf("  note: %u pool worker(s) — the wall-clock win criterion "
                "applies on >= 4 workers\n",
                launcher.workers());

  bench::BenchJson json;
  json.begin_row()
      .str("benchmark", "launch_overhead")
      .num("launches", launches)
      .num("grid_blocks", grid.count())
      .num("spawn_us_per_launch",
           1e6 * spawn_s / static_cast<double>(launches), 2)
      .num("pool_us_per_launch", 1e6 * pool_s / static_cast<double>(launches),
           2)
      .num("speedup", spawn_s / pool_s, 2);
  json.begin_row()
      .str("benchmark", "multiply_batch")
      .num("batch_size", batch_size)
      .num("n", n)
      .num("workers", static_cast<std::size_t>(launcher.workers()))
      .num("sequential_s", seq_s)
      .num("batch_s", batch_s)
      .num("speedup", seq_s / batch_s, 2)
      .raw("bit_identical", identical ? "true" : "false");
  json.write("BENCH_executor.json");
  return identical ? 0 : 1;
}
