// Fleet serving benchmark: what the device-level failure-domain layer costs
// and buys.
//
//   1. Erasure-coding microbenchmark — ns/word to stripe an operand with XOR
//      parity (put) and to reconstruct it with one shard fenced (get).
//   2. Throughput scaling — one GemmServer on one device versus a 3-device
//      FleetServer on the same per-device worker budget, same open-loop
//      request burst.
//   3. Degraded mode — the same fleet burst with one device force-failed
//      mid-run: surviving throughput, replays, reconstructions, and the p99
//      inflation clients actually see.
//
//   AABFT_BENCH_MAX_N      GEMM dimension (default 96)
//   AABFT_BENCH_REQUESTS   requests per burst (default 96)
//   AABFT_BENCH_JSON       output path (default BENCH_fleet.json)
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "fleet/fleet_server.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"
#include "serve/server.hpp"

namespace {

using namespace aabft;
using linalg::Matrix;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

serve::GemmRequest gemm_request(const Matrix& a, const Matrix& b) {
  serve::GemmRequest request;
  request.kind = baselines::OpKind::kGemm;
  request.a = a;
  request.b = b;
  return request;
}

struct BurstResult {
  double wall_s = 0.0;
  std::size_t completed = 0;
  double p99_ms = 0.0;
};

BurstResult fleet_burst(fleet::FleetServer& fleet, const Matrix& a,
                        const Matrix& b, std::size_t requests,
                        std::size_t fail_shard_at = ~std::size_t{0}) {
  std::vector<std::future<fleet::FleetResponse>> futures;
  futures.reserve(requests);
  const auto start = Clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    if (i == fail_shard_at) fleet.force_fail(0);
    fleet::FleetRequest req;
    req.request = gemm_request(a, b);
    auto submitted = fleet.submit(std::move(req));
    if (submitted.ok()) futures.push_back(std::move(*submitted));
  }
  BurstResult result;
  for (auto& fut : futures)
    if (fut.get().response.status == serve::ResponseStatus::kOk)
      ++result.completed;
  result.wall_s = seconds_since(start);
  LatencyRecorder e2e;
  for (const auto& shard : fleet.stats().shards) e2e.merge(shard.fleet_e2e_ns);
  result.p99_ms = e2e.p99() / 1e6;
  return result;
}

}  // namespace

int main() {
  const std::size_t n = env_size_or("AABFT_BENCH_MAX_N", 96);
  const std::size_t requests = env_size_or("AABFT_BENCH_REQUESTS", 96);
  Rng rng(2024);
  const Matrix a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const Matrix b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);

  bench::BenchJson json;

  // ---- 1. parity encode / reconstruct --------------------------------------
  {
    constexpr int kReps = 20;
    fleet::OperandStore store(4);
    const std::size_t words = n * n;
    auto start = Clock::now();
    std::uint64_t handle = 0;
    for (int r = 0; r < kReps; ++r) handle = store.put(a);
    const double encode_ns = seconds_since(start) * 1e9 / (kReps * words);

    store.fence_shard(1);  // every get must now rebuild one stripe
    start = Clock::now();
    for (int r = 0; r < kReps; ++r) {
      auto fetched = store.get(handle);
      if (!fetched.ok() || fetched->matrix != a) return 1;
    }
    const double rebuild_ns = seconds_since(start) * 1e9 / (kReps * words);
    std::printf("parity: encode %.2f ns/word, reconstruct %.2f ns/word "
                "(%zu-word operands, 4 shards)\n",
                encode_ns, rebuild_ns, words);
    json.begin_row()
        .str("case", "parity")
        .num("words", words)
        .num("encode_ns_per_word", encode_ns)
        .num("reconstruct_ns_per_word", rebuild_ns);
  }

  // ---- 2. single server vs fleet -------------------------------------------
  const unsigned workers_per_device = 2;
  double single_rps = 0.0;
  {
    gpusim::Launcher launcher(gpusim::k20c(), workers_per_device);
    serve::GemmServer server(launcher);
    std::vector<std::future<serve::GemmResponse>> futures;
    futures.reserve(requests);
    const auto start = Clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      auto submitted = server.submit(gemm_request(a, b));
      if (submitted.ok()) futures.push_back(std::move(*submitted));
    }
    std::size_t completed = 0;
    for (auto& fut : futures)
      if (fut.get().status == serve::ResponseStatus::kOk) ++completed;
    const double wall = seconds_since(start);
    server.stop();
    single_rps = static_cast<double>(completed) / wall;
    const double p99_ms = server.stats().e2e_ns.p99() / 1e6;
    std::printf("single server:  %zu/%zu ok, %7.1f req/s, p99 %.2f ms\n",
                completed, requests, single_rps, p99_ms);
    json.begin_row()
        .str("case", "single_server")
        .num("n", n)
        .num("requests", requests)
        .num("completed", completed)
        .num("req_per_s", single_rps, 1)
        .num("p99_ms", p99_ms);
  }

  double fleet_rps = 0.0;
  {
    fleet::FleetConfig config;
    config.devices = 3;
    config.workers_per_device = workers_per_device;
    fleet::FleetServer fleet(config);
    const BurstResult r = fleet_burst(fleet, a, b, requests);
    fleet.stop();
    fleet_rps = static_cast<double>(r.completed) / r.wall_s;
    const auto stats = fleet.stats();
    std::printf(
        "fleet (3 dev):  %zu/%zu ok, %7.1f req/s, p99 %.2f ms, %llu steals "
        "(%.2fx vs single)\n",
        r.completed, requests, fleet_rps, r.p99_ms,
        static_cast<unsigned long long>(stats.steals),
        fleet_rps / single_rps);
    json.begin_row()
        .str("case", "fleet_3dev")
        .num("n", n)
        .num("requests", requests)
        .num("completed", r.completed)
        .num("req_per_s", fleet_rps, 1)
        .num("p99_ms", r.p99_ms)
        .num("steals", static_cast<std::size_t>(stats.steals))
        .num("speedup_vs_single", fleet_rps / single_rps);
  }

  // ---- 3. degraded mode: one device force-failed mid-burst ------------------
  {
    fleet::FleetConfig config;
    config.devices = 3;
    config.workers_per_device = workers_per_device;
    fleet::FleetServer fleet(config);
    const BurstResult r =
        fleet_burst(fleet, a, b, requests, requests / 3);
    fleet.stop();
    const auto stats = fleet.stats();
    const double degraded_rps = static_cast<double>(r.completed) / r.wall_s;
    std::printf(
        "fleet degraded: %zu/%zu ok, %7.1f req/s, p99 %.2f ms, %llu replays, "
        "%llu reconstructions, %zu fenced\n",
        r.completed, requests, degraded_rps, r.p99_ms,
        static_cast<unsigned long long>(stats.replays),
        static_cast<unsigned long long>(stats.reconstructions),
        stats.fenced_devices);
    json.begin_row()
        .str("case", "fleet_degraded")
        .num("n", n)
        .num("requests", requests)
        .num("completed", r.completed)
        .num("req_per_s", degraded_rps, 1)
        .num("p99_ms", r.p99_ms)
        .num("replays", static_cast<std::size_t>(stats.replays))
        .num("fenced_devices", stats.fenced_devices);
    if (r.completed != requests) {
      std::fprintf(stderr, "degraded burst lost %zu requests\n",
                   requests - r.completed);
      return 1;
    }
  }

  return json.write("BENCH_fleet.json") ? 0 : 1;
}
