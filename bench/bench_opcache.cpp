// Operand-cache benchmark: cold per-request encode vs fingerprint-keyed
// reuse (DESIGN.md §12).
//
// Traffic shape is inference-like: one n x n weight matrix A multiplied
// against a stream of skinny n x q activation panels B. Cold serving pays
// the O(n^2) light encode of A on every request; a cache hit pays only the
// O(n q) small-side encode of B plus a pin acquisition. Two comparisons per
// size, each an interleaved best-of-5 minimum:
//
//   encode_hit_path — the per-request encode work alone. Baseline:
//       encode_columns_light(A) + encode_rows_light(B) (the cold admission
//       cost). Contender: OperandCache::acquire + encode_rows_light(B) (the
//       hit cost). The speedup must approach (n k + k q) / (k q), i.e. the
//       A-side encode must vanish from the hit path — this is the headline
//       the exit code gates (>= 2x at the largest size; the analytic ratio
//       at n = 1024, q = 64 is ~17x).
//   gemm_hit_path — the end-to-end protected GEMM (fused pipeline),
//       multiply(a, b) vs multiply_preencoded(cached, b) (informational:
//       the O(n q k) product amortises the encode saving).
//
// Machine-readable output: BENCH_opcache.json in the current directory, or
// $AABFT_BENCH_JSON if set.
//
//   AABFT_BENCH_MAX_N   largest weight dimension (default 1024)
//   AABFT_BENCH_Q       activation panel width (default 64)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/fused_gemm.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"
#include "serve/opcache/opcache.hpp"

namespace {

using namespace aabft;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

struct Row {
  std::string scheme;
  std::string baseline_key;   ///< JSON key of the cold path
  std::string contender_key;  ///< JSON key of the hit path
  std::size_t n = 0;
  std::size_t q = 0;
  double baseline_ns_per_op = 0.0;
  double contender_ns_per_op = 0.0;
  [[nodiscard]] double speedup() const {
    return contender_ns_per_op > 0.0
               ? baseline_ns_per_op / contender_ns_per_op
               : 0.0;
  }
};

/// Interleaved best-of-5 (the bench_encoder idiom): warm both bodies once,
/// then alternate timed runs and keep each side's minimum so allocator and
/// cache warmth do not skew the ratio.
template <typename BodyA, typename BodyB>
void measure_pair(Row& row, std::uint64_t ops, BodyA&& baseline,
                  BodyB&& contender) {
  baseline();
  contender();
  double baseline_s = 1e300;
  double contender_s = 1e300;
  for (int trial = 0; trial < 5; ++trial) {
    auto start = Clock::now();
    baseline();
    baseline_s = std::min(baseline_s, seconds_since(start));
    start = Clock::now();
    contender();
    contender_s = std::min(contender_s, seconds_since(start));
  }
  row.baseline_ns_per_op = 1e9 * baseline_s / static_cast<double>(ops);
  row.contender_ns_per_op = 1e9 * contender_s / static_cast<double>(ops);
}

}  // namespace

int main() {
  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", 1024);
  const std::size_t q_env = env_size_or("AABFT_BENCH_Q", 64);
  std::vector<std::size_t> sweep;
  for (std::size_t n :
       {std::size_t{256}, std::size_t{512}, std::size_t{1024}})
    if (n <= max_n) sweep.push_back(n);
  // Tiny smoke caps still get one block-multiple round.
  if (sweep.empty()) sweep.push_back(std::max<std::size_t>(max_n, 64));

  abft::AabftConfig config;
  config.fused_gemm = true;
  const abft::PartitionedCodec codec(config.bs);
  std::vector<Row> rows;

  for (const std::size_t n : sweep) {
    // Keep the activation panel skinnier than the weights even on smoke
    // sweeps so the hit path has something to elide.
    const std::size_t q = std::min(q_env, std::max<std::size_t>(n / 4, 8));
    const auto a = random_matrix(n, n, 1);
    const auto b = random_matrix(n, q, 2);
    gpusim::Launcher launcher;

    serve::opcache::OperandCache cache(launcher, config,
                                       serve::opcache::OpCacheConfig{},
                                       nullptr);
    const auto handle = cache.register_operand(a);
    if (!handle.ok()) std::abort();

    // -- per-request encode work: cold (A + B) vs hit (pin + B) -------------
    {
      // Ops normalise by the cold path's encoded elements (A's n*n plus B's
      // n*q), so baseline ns/op stays comparable to bench_encoder.
      const std::uint64_t encode_ops = n * n + n * q;
      Row row{"encode_hit_path", "ns_per_op_cold", "ns_per_op_hit", n, q};
      measure_pair(
          row, encode_ops,
          [&] {
            auto a_light =
                abft::encode_columns_light(launcher, a, codec, config.p);
            auto b_light =
                abft::encode_rows_light(launcher, b, codec, config.p);
            if (a_light.sums(0, 0) + b_light.sums(0, 0) == 12345.6789)
              std::abort();
          },
          [&] {
            auto pin = cache.acquire(*handle, /*count_hit=*/false);
            auto b_light =
                abft::encode_rows_light(launcher, b, codec, config.p);
            if (pin == nullptr ||
                pin->light.sums(0, 0) + b_light.sums(0, 0) == 12345.6789)
              std::abort();
          });
      rows.push_back(row);
    }

    // -- end-to-end protected GEMM: cold multiply vs preencoded -------------
    {
      const std::uint64_t gemm_ops = 2ull * n * n * q;
      Row row{"gemm_hit_path", "ns_per_op_cold", "ns_per_op_hit", n, q};
      abft::AabftMultiplier mult(launcher, config);
      auto pin = cache.acquire(*handle, /*count_hit=*/false);
      if (pin == nullptr) std::abort();
      measure_pair(
          row, gemm_ops,
          [&] {
            auto result = mult.multiply(a, b);
            if (!result.ok() || result->c(0, 0) == 12345.6789) std::abort();
          },
          [&] {
            auto result = mult.multiply_preencoded(pin->pre, b);
            if (!result.ok() || result->c(0, 0) == 12345.6789) std::abort();
          });
      rows.push_back(row);
    }
  }

  std::printf("%-18s %6s %5s %14s %14s %9s\n", "scheme", "n", "q",
              "cold (ns/op)", "hit (ns/op)", "speedup");
  bool encode_gate_met = false;
  const std::size_t largest = sweep.back();
  for (const Row& row : rows) {
    std::printf("%-18s %6zu %5zu %14.3f %14.3f %8.2fx\n", row.scheme.c_str(),
                row.n, row.q, row.baseline_ns_per_op, row.contender_ns_per_op,
                row.speedup());
    if (row.scheme == "encode_hit_path" && row.n == largest)
      encode_gate_met = row.speedup() >= 2.0;
  }
  // The gate applies at standard sizes; tiny smoke sweeps only verify the
  // harness runs.
  const bool gate_applies = largest >= 256;
  if (gate_applies)
    std::printf("\nhit-path encode >= 2x cheaper than cold at %zu: %s\n",
                largest, encode_gate_met ? "yes" : "NO");

  bench::BenchJson json;
  for (const Row& row : rows)
    json.begin_row()
        .str("scheme", row.scheme)
        .num("n", row.n)
        .num("q", row.q)
        .num(row.baseline_key, row.baseline_ns_per_op)
        .num(row.contender_key, row.contender_ns_per_op)
        .num("speedup", row.speedup(), 2);
  json.write("BENCH_opcache.json");
  return (!gate_applies || encode_gate_met) ? 0 : 1;
}
