// Table IV reproduction: bound quality for high value-range-dynamic inputs
// A = 10^alpha * U * D_kappa * V^T with alpha = 0, kappa = 2.
#include "bench/bounds_table.hpp"

int main() {
  using namespace aabft::bench;
  BoundsTableSpec spec;
  spec.title =
      "Table IV: rounding error bounds, dynamic inputs (alpha = 0, kappa = 2)";
  spec.csv_name = "table4_bounds";
  spec.input = aabft::linalg::InputClass::kDynamic;
  spec.kappa = 2.0;
  spec.paper_rnd = paper_table4_rnd();
  spec.paper_aabft = paper_table4_aabft();
  spec.paper_sea = paper_table4_sea();
  return run_bounds_table(spec);
}
