// Hazard-analyzer overhead benchmark.
//
// The analyzer's contract (gpusim/hazard.hpp): with hazard mode *off*, the
// SharedArray-instrumented kernels are bit-identical to the pre-analyzer
// fast path and essentially free (<= 2% on the 1024^3 blocked GEMM). This
// harness self-checks both halves of that claim:
//
//   baseline — a local replica of the pre-analyzer blocked GEMM kernel
//              (plain std::vector tiles, no hazard hooks), the reference
//              the 2% budget is measured against;
//   off      — the shipped kernel, hazard mode off (the default);
//   record   — the shipped kernel under HazardMode::kRecord, reported for
//              information (shadow-cell tracking is allowed to cost).
//
// All three products must be bit-identical; `off` must stay within the
// overhead budget of `baseline` at n >= 1024 (exit 1 otherwise). Timings
// are best-of-R to shed scheduler noise.
//
//   AABFT_BENCH_MAX_N   largest GEMM dimension (default 1024)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "fp/bits.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/hazard.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using Clock = std::chrono::steady_clock;

constexpr double kOverheadBudget = 0.02;  // hazard-off vs baseline, n >= 1024
constexpr int kRepeats = 3;               // best-of timing repeats

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

bool bits_equal(const linalg::Matrix& a, const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (fp::to_bits(a(i, j)) != fp::to_bits(b(i, j))) return false;
  return true;
}

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Replica of the blocked GEMM kernel as it existed before the hazard
/// analyzer: plain vector tiles, no SharedArray, no hazard hooks. This is
/// the reference the overhead budget is measured against.
linalg::Matrix baseline_matmul(gpusim::Launcher& launcher,
                               const linalg::Matrix& a,
                               const linalg::Matrix& b) {
  using gpusim::FaultSite;
  const linalg::GemmConfig config;
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  const std::size_t bm = config.bm;
  const std::size_t bn = config.bn;
  const std::size_t bk = config.bk;
  const std::size_t rx = config.rx;
  const std::size_t ry = config.ry;

  linalg::Matrix c(m, n, 0.0);
  const gpusim::Dim3 grid{ceil_div(n, bn), ceil_div(m, bm), 1};

  launcher.launch("gemm_baseline", grid, [&](gpusim::BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * bm;
    const std::size_t col0 = blk.block.x * bn;

    std::vector<double> accum(bm * bn, 0.0);
    std::vector<double> sm_a(bm * bk);
    std::vector<double> sm_b(bk * bn);
    math.use_shared_doubles(bm * bk + bk * bn);

    std::vector<int> module_row(bm);
    std::vector<int> module_col(bn);
    for (std::size_t i = 0; i < bm; ++i)
      module_row[i] = static_cast<int>((i % rx) * ry);
    for (std::size_t j = 0; j < bn; ++j)
      module_col[j] = static_cast<int>(j % ry);
    const int num_modules = static_cast<int>(rx * ry);
    std::vector<char> row_hot(bm, 0);

    const std::size_t num_panels = ceil_div(k_dim, bk);
    for (std::size_t panel = 0; panel < num_panels; ++panel) {
      const std::size_t kbase = panel * bk;
      if (row0 + bm <= m && kbase + bk <= k_dim) {
        for (std::size_t i = 0; i < bm; ++i)
          std::copy_n(a.data() + (row0 + i) * k_dim + kbase, bk,
                      sm_a.data() + i * bk);
      } else {
        for (std::size_t i = 0; i < bm; ++i) {
          const std::size_t gr = row0 + i;
          for (std::size_t kk = 0; kk < bk; ++kk) {
            const std::size_t gk = kbase + kk;
            sm_a[i * bk + kk] = (gr < m && gk < k_dim) ? a(gr, gk) : 0.0;
          }
        }
      }
      if (kbase + bk <= k_dim && col0 + bn <= n) {
        for (std::size_t kk = 0; kk < bk; ++kk)
          std::copy_n(b.data() + (kbase + kk) * n + col0, bn,
                      sm_b.data() + kk * bn);
      } else {
        for (std::size_t kk = 0; kk < bk; ++kk) {
          const std::size_t gk = kbase + kk;
          for (std::size_t j = 0; j < bn; ++j) {
            const std::size_t gc = col0 + j;
            sm_b[kk * bn + j] = (gk < k_dim && gc < n) ? b(gk, gc) : 0.0;
          }
        }
      }
      math.load_doubles(bm * bk + bk * bn);

      const std::size_t k_count = std::min(bk, k_dim - kbase);
      const auto k_lo = static_cast<std::int64_t>(kbase);
      const auto k_hi = static_cast<std::int64_t>(kbase + k_count - 1);
      const bool panel_hot =
          math.needs_instrumented(FaultSite::kInnerMul, FaultSite::kInnerAdd,
                                  0, num_modules - 1, k_lo, k_hi);
      if (panel_hot) {
        for (std::size_t i = 0; i < bm; ++i)
          row_hot[i] = math.needs_instrumented(
              FaultSite::kInnerMul, FaultSite::kInnerAdd, module_row[i],
              module_row[i] + static_cast<int>(ry) - 1, k_lo, k_hi);
      }

      for (std::size_t kk = 0; kk < k_count; ++kk) {
        const std::size_t gk = kbase + kk;
        const auto k_global = static_cast<std::int64_t>(gk);
        for (std::size_t i = 0; i < bm; ++i) {
          const double av = sm_a[i * bk + kk];
          const int mrow = module_row[i];
          double* acc_row = accum.data() + i * bn;
          const double* b_row = sm_b.data() + kk * bn;
          if (!panel_hot || !row_hot[i]) {
            math.mul_add_row(av, b_row, acc_row, bn);
          } else {
            for (std::size_t j = 0; j < bn; ++j) {
              const int module = mrow + module_col[j];
              const double prod = math.faulty_mul(
                  av, b_row[j], FaultSite::kInnerMul, module, k_global);
              acc_row[j] = math.faulty_add(acc_row[j], prod,
                                           FaultSite::kInnerAdd, module,
                                           k_global);
            }
          }
        }
      }
    }

    const bool merge_hot = math.needs_instrumented(
        FaultSite::kFinalAdd, FaultSite::kFinalAdd, 0, num_modules - 1, 0, 0);
    std::size_t stored = 0;
    const std::size_t h = row0 < m ? std::min(bm, m - row0) : 0;
    const std::size_t w = col0 < n ? std::min(bn, n - col0) : 0;
    if (!merge_hot) {
      for (std::size_t i = 0; i < h; ++i)
        math.add_rows(c.data() + (row0 + i) * n + col0, accum.data() + i * bn,
                      w);
      stored = h * w;
    } else {
      for (std::size_t i = 0; i < h; ++i) {
        const std::size_t gr = row0 + i;
        for (std::size_t j = 0; j < w; ++j) {
          const std::size_t gc = col0 + j;
          const int module = module_row[i] + module_col[j];
          c(gr, gc) = math.faulty_add(c(gr, gc), accum[i * bn + j],
                                      FaultSite::kFinalAdd, module, 0);
          ++stored;
        }
      }
    }
    math.store_doubles(stored);
  });
  return c;
}

/// Best-of-kRepeats wall-clock of `body` (which must assign its product).
template <typename Body>
double best_seconds(Body&& body) {
  double best = 1e300;
  for (int r = 0; r < kRepeats; ++r) {
    const auto start = Clock::now();
    body();
    best = std::min(best, seconds_since(start));
  }
  return best;
}

}  // namespace

int main() {
  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", 1024);
  std::vector<std::size_t> sweep;
  for (std::size_t n :
       {std::size_t{256}, std::size_t{512}, std::size_t{1024}})
    if (n <= max_n) sweep.push_back(n);
  if (sweep.empty()) sweep.push_back(std::max<std::size_t>(max_n, 64));

  std::printf("%6s %14s %14s %14s %10s %12s\n", "n", "baseline", "haz off",
              "haz record", "off ovh", "record ovh");
  std::printf("%6s %14s %14s %14s %10s %12s\n", "", "(ns/op)", "(ns/op)",
              "(ns/op)", "", "");

  bool budget_ok = true;
  bool budget_checked = false;
  for (const std::size_t n : sweep) {
    const auto a = random_matrix(n, n, 1);
    const auto b = random_matrix(n, n, 2);
    const double ops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);

    gpusim::Launcher launcher;
    linalg::Matrix c_baseline, c_off, c_record;
    // Warm-up (page in operands, settle the allocator).
    c_baseline = baseline_matmul(launcher, a, b);

    const double t_baseline =
        best_seconds([&] { c_baseline = baseline_matmul(launcher, a, b); });
    const double t_off =
        best_seconds([&] { c_off = linalg::blocked_matmul(launcher, a, b); });
    launcher.set_hazard_mode(gpusim::HazardMode::kRecord);
    const double t_record =
        best_seconds([&] { c_record = linalg::blocked_matmul(launcher, a, b); });
    launcher.set_hazard_mode(gpusim::HazardMode::kOff);

    if (!bits_equal(c_baseline, c_off) || !bits_equal(c_off, c_record)) {
      std::printf("n=%zu: products are NOT bit-identical\n", n);
      return 1;
    }
    if (launcher.hazard_count() != 0) {
      std::printf("n=%zu: record mode flagged %zu hazard(s) in a clean GEMM\n",
                  n, launcher.hazard_count());
      return 1;
    }

    const double off_overhead = t_off / t_baseline - 1.0;
    const double record_overhead = t_record / t_baseline - 1.0;
    std::printf("%6zu %14.3f %14.3f %14.3f %9.2f%% %11.2f%%\n", n,
                1e9 * t_baseline / ops, 1e9 * t_off / ops,
                1e9 * t_record / ops, 100.0 * off_overhead,
                100.0 * record_overhead);

    if (n >= 1024) {
      budget_checked = true;
      if (off_overhead > kOverheadBudget) budget_ok = false;
    }
  }

  if (budget_checked)
    std::printf("\n1024^3 hazard-off overhead <= %.0f%%: %s\n",
                100.0 * kOverheadBudget, budget_ok ? "yes" : "NO (regression)");
  return budget_checked && !budget_ok ? 1 : 0;
}
