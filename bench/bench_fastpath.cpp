// Fenced-vs-instrumented fast-path benchmark.
//
// Measures the hot kernels twice: once with the fault fence active (the
// default — raw bulk-counted inner loops wherever no armed fault can fire)
// and once with gpusim::set_force_instrumented(true) (every operation pays
// the per-op counter + fault-controller check, the pre-fence behaviour).
// Both runs produce bit-identical results; the ratio is the fence's win.
//
// Two controller scenarios per GEMM size:
//   none   — no fault controller attached (pure simulation workloads)
//   armed  — a controller armed with a fault that can never fire (targets a
//            non-existent SM): the realistic campaign case, where the
//            per-op path pays the full maybe_inject coordinate scan.
//
// Machine-readable output: BENCH_fastpath.json (scheme, size, ns/op for both
// paths, speedup) in the current directory, or $AABFT_BENCH_JSON if set —
// future PRs track the perf trajectory against it.
//
//   AABFT_BENCH_MAX_N   largest GEMM dimension (default 1024)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "abft/encoder.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

struct Row {
  std::string scheme;
  std::size_t n = 0;
  double instrumented_ns_per_op = 0.0;
  double fenced_ns_per_op = 0.0;
  [[nodiscard]] double speedup() const {
    return fenced_ns_per_op > 0.0 ? instrumented_ns_per_op / fenced_ns_per_op
                                  : 0.0;
  }
};

/// Interleaved best-of-3 per path, converted to ns per logical op. The
/// bodies allocate multi-megabyte results, so whichever path runs later
/// inherits a warmer allocator; alternating timed runs (instead of all-fenced
/// then all-instrumented) keeps the ratio honest — the old ordering showed
/// phantom sub-1x "regressions" on the memory-bound encode rows.
template <typename Body>
Row measure(std::string scheme, std::size_t n, std::uint64_t ops, Body&& body) {
  Row row;
  row.scheme = std::move(scheme);
  row.n = n;
  gpusim::set_force_instrumented(false);
  body();  // warm-up both paths: caches, allocator pools, pool threads
  gpusim::set_force_instrumented(true);
  body();
  double fenced_s = 1e300;
  double instrumented_s = 1e300;
  for (int trial = 0; trial < 3; ++trial) {
    gpusim::set_force_instrumented(false);
    auto start = Clock::now();
    body();
    fenced_s = std::min(fenced_s, seconds_since(start));
    gpusim::set_force_instrumented(true);
    start = Clock::now();
    body();
    instrumented_s = std::min(instrumented_s, seconds_since(start));
  }
  gpusim::set_force_instrumented(false);
  row.fenced_ns_per_op = 1e9 * fenced_s / static_cast<double>(ops);
  row.instrumented_ns_per_op =
      1e9 * instrumented_s / static_cast<double>(ops);
  return row;
}

void write_json(const std::vector<Row>& rows) {
  bench::BenchJson json;
  for (const Row& row : rows)
    json.begin_row()
        .str("scheme", row.scheme)
        .num("n", row.n)
        .num("ns_per_op_instrumented", row.instrumented_ns_per_op)
        .num("ns_per_op_fenced", row.fenced_ns_per_op)
        .num("speedup", row.speedup(), 2);
  json.write("BENCH_fastpath.json");
}

}  // namespace

int main() {
  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", 1024);
  std::vector<std::size_t> sweep;
  for (std::size_t n : {std::size_t{256}, std::size_t{512}, std::size_t{1024},
                        std::size_t{2048}})
    if (n <= max_n) sweep.push_back(n);
  if (sweep.empty()) sweep.push_back(std::max<std::size_t>(max_n, 64));

  std::vector<Row> rows;
  // A fault that can never fire: the armed-controller worst case for the
  // per-op path, and what every non-targeted block sees during a campaign.
  gpusim::FaultConfig miss;
  miss.sm_id = 1 << 20;

  for (const std::size_t n : sweep) {
    const auto a = random_matrix(n, n, 1);
    const auto b = random_matrix(n, n, 2);
    const std::uint64_t gemm_ops = 2ull * n * n * n;

    {
      gpusim::Launcher launcher;
      rows.push_back(measure("blocked_gemm", n, gemm_ops, [&] {
        auto c = linalg::blocked_matmul(launcher, a, b);
        if (c(0, 0) == 12345.6789) std::abort();  // keep the work observable
      }));
    }
    {
      gpusim::Launcher launcher;
      gpusim::FaultController controller;
      controller.arm(miss);
      launcher.set_fault_controller(&controller);
      rows.push_back(measure("blocked_gemm_armed", n, gemm_ops, [&] {
        auto c = linalg::blocked_matmul(launcher, a, b);
        if (c(0, 0) == 12345.6789) std::abort();
      }));
    }
    {
      gpusim::Launcher launcher;
      linalg::GemmConfig config;
      config.use_fma = true;
      rows.push_back(measure("blocked_gemm_fma", n, gemm_ops, [&] {
        auto c = linalg::blocked_matmul(launcher, a, b, config);
        if (c(0, 0) == 12345.6789) std::abort();
      }));
    }
    {
      gpusim::Launcher launcher;
      const abft::PartitionedCodec codec(32);
      // Phase 1 adds + abs dominate; p passes of max scans ride along.
      const std::uint64_t encode_ops = 2ull * n * n;
      rows.push_back(measure("encode_columns", n, encode_ops, [&] {
        auto enc = abft::encode_columns(launcher, a, codec, 2);
        if (enc.data(0, 0) == 12345.6789) std::abort();
      }));
    }
  }

  std::printf("%-20s %6s %16s %14s %9s\n", "scheme", "n", "instrumented",
              "fenced", "speedup");
  std::printf("%-20s %6s %16s %14s %9s\n", "", "", "(ns/op)", "(ns/op)", "");
  bool gemm_target_met = false;
  for (const Row& row : rows) {
    std::printf("%-20s %6zu %16.3f %14.3f %8.2fx\n", row.scheme.c_str(), row.n,
                row.instrumented_ns_per_op, row.fenced_ns_per_op,
                row.speedup());
    if (row.scheme == "blocked_gemm" && row.n >= 1024 && row.speedup() >= 3.0)
      gemm_target_met = true;
  }
  const bool has_1024 =
      max_n >= 1024;  // the >= 3x acceptance bar applies at 1024^3
  if (has_1024)
    std::printf("\n1024^3 fault-free GEMM fence speedup >= 3x: %s\n",
                gemm_target_met ? "yes" : "NO (regression)");

  write_json(rows);
  return has_1024 && !gemm_target_met ? 1 : 0;
}
