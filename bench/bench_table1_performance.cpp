// Table I reproduction: performance comparison of ABFT (manual bound),
// A-ABFT, SEA-ABFT and TMR.
//
// Every scheme's full pipeline executes on the SIMT simulator, which records
// exact op/byte counts per kernel launch; the analytic K20C model prices the
// log (see gpusim/perf_model.hpp and DESIGN.md for the substitution
// rationale). GFLOPS = 2 n^3 / modelled time — the same payload metric the
// paper uses. Host wall-clock seconds of the simulated GEMM are printed as a
// sanity column (they measure this machine, not a GPU).
//
// Default sweep: 256..1024. Set AABFT_BENCH_MAX_N=8192 for the full table.
#include <iostream>

#include "baselines/perf_suite.hpp"
#include "bench/bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace aabft;
  const auto sweep = bench::bench_sweep(/*default_max=*/1024);

  std::cout << "\n=== Table I: GFLOPS of ABFT / A-ABFT / SEA-ABFT / TMR "
               "(modelled K20C | paper) ===\n"
            << "Unprot. column: modelled unprotected GEMM (paper reports "
               "1048.4 GFLOPS at n = 8192).\n\n";

  TablePrinter table({"MATRIX", "Unprot.", "ABFT", "(paper)", "A-ABFT",
                      "(paper)", "SEA-ABFT", "(paper)", "TMR", "(paper)",
                      "host GEMM s"});

  bool ordering_ok = true;
  double previous_ratio = 0.0;
  bool ratio_monotone = true;
  baselines::PerfSuiteResult largest_measured;
  auto add_row = [&](const baselines::PerfSuiteResult& result,
                     bool projected) {
    const std::size_t n = result.n;
    // Shape verdicts cover the paper's regime (launch overheads distort all
    // schemes below n = 256).
    if (n >= 256) {
      ordering_ok = ordering_ok && result.ordering_holds();
      if (previous_ratio > 0.0 && result.aabft_over_abft() < previous_ratio)
        ratio_monotone = false;
      previous_ratio = result.aabft_over_abft();
    }
    table.add_row({std::to_string(n) + (projected ? "*" : ""),
                   TablePrinter::fixed(result.unprotected().model_gflops),
                   TablePrinter::fixed(result.fixed_abft().model_gflops),
                   bench::paper_cell(bench::paper_table1_abft(), n, true),
                   TablePrinter::fixed(result.aabft().model_gflops),
                   bench::paper_cell(bench::paper_table1_aabft(), n, true),
                   TablePrinter::fixed(result.sea_abft().model_gflops),
                   bench::paper_cell(bench::paper_table1_sea(), n, true),
                   TablePrinter::fixed(result.tmr().model_gflops),
                   bench::paper_cell(bench::paper_table1_tmr(), n, true),
                   projected
                       ? std::string("-")
                       : TablePrinter::fixed(result.unprotected().host_seconds,
                                             3)});
  };

  for (const std::size_t n : sweep) {
    const auto result = baselines::run_perf_suite(n);
    add_row(result, /*projected=*/false);
    largest_measured = result;

    if (result.fixed_abft().false_positive || result.aabft().false_positive ||
        result.sea_abft().false_positive || result.tmr().false_positive)
      std::cout << "WARNING: a scheme mis-detected on the fault-free run at n="
                << n << "\n";
  }

  // Projected rows (*): the measured launch log of the largest executed size
  // scaled to the paper's remaining dimensions by kernel complexity — the
  // timing model consumes only op/byte counts, which scale exactly. A base
  // of at least 512 is required for the extrapolation to be meaningful.
  if (largest_measured.n >= 512) {
    for (const std::size_t n : bench::paper_sweep()) {
      if (n <= largest_measured.n) continue;
      add_row(baselines::project_perf_suite(largest_measured,
                                            largest_measured.n, n),
              /*projected=*/true);
    }
  }

  table.print();
  bench::maybe_write_csv(table, "table1_performance");
  std::cout << "\nShape checks (paper): ABFT > A-ABFT > SEA-ABFT > TMR at "
               "every n ["
            << (ordering_ok ? "holds" : "VIOLATED")
            << "]; the A-ABFT/ABFT gap narrows as n grows ["
            << (ratio_monotone ? "holds" : "VIOLATED") << "]\n";
  return ordering_ok && ratio_monotone ? 0 : 1;
}
