// Table II reproduction: bound quality for random inputs in [-1, 1].
#include "bench/bounds_table.hpp"

int main() {
  using namespace aabft::bench;
  BoundsTableSpec spec;
  spec.title = "Table II: rounding error bounds, input range -1.0 to 1.0";
  spec.csv_name = "table2_bounds";
  spec.input = aabft::linalg::InputClass::kUnit;
  spec.kappa = 2.0;
  spec.paper_rnd = paper_table2_rnd();
  spec.paper_aabft = paper_table2_aabft();
  spec.paper_sea = paper_table2_sea();
  return run_bounds_table(spec);
}
