// Encode-path benchmark: standalone checksum encoders vs the fused pipeline.
//
// Three comparisons per matrix size, each the best-of-3 minimum:
//
//   encode_columns_fence / encode_rows_fence — the standalone encoders with
//       the fault fence active vs gpusim::set_force_instrumented(true)
//       (per-op counters + fault-controller checks). Guards the fenced
//       raw-span fast path against regressions: the fenced run must win at
//       every size.
//   encode_fused — the classic pipeline's encode cost (encode_columns(A) +
//       encode_rows(B): materialised encoded operands + p-max reduction) vs
//       the fused pipeline's (encode_columns_light + encode_rows_light:
//       compact sums + screened single-sweep p-max, no materialisation).
//       This is the "kill the encode hot path" headline: the fused pipeline
//       must cut the encode cost by >= 3x at the largest benchmarked size.
//   pipeline_fused — the end-to-end protected GEMM (AabftMultiplier),
//       classic vs fused configuration, fault-free (informational).
//
// Machine-readable output: BENCH_encoder.json in the current directory, or
// $AABFT_BENCH_JSON if set.
//
//   AABFT_BENCH_MAX_N   largest matrix dimension (default 1024)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "abft/aabft.hpp"
#include "abft/encoder.hpp"
#include "abft/fused_gemm.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

struct Row {
  std::string scheme;
  std::string baseline_key;   ///< JSON key of the slow path
  std::string contender_key;  ///< JSON key of the fast path
  std::size_t n = 0;
  double baseline_ns_per_op = 0.0;
  double contender_ns_per_op = 0.0;
  [[nodiscard]] double speedup() const {
    return contender_ns_per_op > 0.0
               ? baseline_ns_per_op / contender_ns_per_op
               : 0.0;
  }
};

/// Interleaved best-of-5: warm both bodies once, then alternate timed runs
/// and keep each side's minimum. Interleaving matters — these bodies
/// allocate multi-megabyte matrices, so whichever side runs later inherits a
/// warmer allocator; back-to-back A/A/A B/B/B ordering skews the ratio.
template <typename BodyA, typename BodyB>
void measure_pair(Row& row, std::uint64_t ops, BodyA&& baseline,
                  BodyB&& contender) {
  baseline();
  contender();  // warm-up: caches, allocator pools, lazy pool threads
  double baseline_s = 1e300;
  double contender_s = 1e300;
  for (int trial = 0; trial < 5; ++trial) {
    auto start = Clock::now();
    baseline();
    baseline_s = std::min(baseline_s, seconds_since(start));
    start = Clock::now();
    contender();
    contender_s = std::min(contender_s, seconds_since(start));
  }
  row.baseline_ns_per_op = 1e9 * baseline_s / static_cast<double>(ops);
  row.contender_ns_per_op = 1e9 * contender_s / static_cast<double>(ops);
}

}  // namespace

int main() {
  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", 1024);
  std::vector<std::size_t> sweep;
  for (std::size_t n :
       {std::size_t{256}, std::size_t{512}, std::size_t{1024}})
    if (n <= max_n) sweep.push_back(n);
  if (sweep.empty()) sweep.push_back(std::max<std::size_t>(max_n, 64));

  const abft::PartitionedCodec codec(32);
  const std::size_t p = 2;
  std::vector<Row> rows;

  for (const std::size_t n : sweep) {
    const auto a = random_matrix(n, n, 1);
    const auto b = random_matrix(n, n, 2);
    // Phase-1 adds + the |.| max sweep per element, per operand.
    const std::uint64_t encode_ops = 2ull * n * n;

    // -- standalone encoders: fenced vs instrumented ------------------------
    // Single-worker launchers: the fence differential is per-op compute, and
    // a worker pool hides it behind scheduling jitter and shared-bandwidth
    // contention at the larger sizes.
    {
      gpusim::Launcher launcher(gpusim::k20c(), 1);
      Row row{"encode_columns_fence", "ns_per_op_instrumented",
              "ns_per_op_fenced", n};
      const auto body = [&] {
        auto enc = abft::encode_columns(launcher, a, codec, p);
        if (enc.data(0, 0) == 12345.6789) std::abort();  // keep it observable
      };
      measure_pair(
          row, encode_ops,
          [&] {
            gpusim::set_force_instrumented(true);
            body();
          },
          [&] {
            gpusim::set_force_instrumented(false);
            body();
          });
      rows.push_back(row);
    }
    {
      gpusim::Launcher launcher(gpusim::k20c(), 1);
      Row row{"encode_rows_fence", "ns_per_op_instrumented",
              "ns_per_op_fenced", n};
      const auto body = [&] {
        auto enc = abft::encode_rows(launcher, b, codec, p);
        if (enc.data(0, 0) == 12345.6789) std::abort();
      };
      measure_pair(
          row, encode_ops,
          [&] {
            gpusim::set_force_instrumented(true);
            body();
          },
          [&] {
            gpusim::set_force_instrumented(false);
            body();
          });
      gpusim::set_force_instrumented(false);
      rows.push_back(row);
    }

    // -- classic encode pass vs fused light encode (both fenced) ------------
    {
      gpusim::Launcher launcher;
      Row row{"encode_fused", "ns_per_op_standalone", "ns_per_op_fused", n};
      measure_pair(
          row, 2 * encode_ops,
          [&] {
            auto a_cc = abft::encode_columns(launcher, a, codec, p);
            auto b_rc = abft::encode_rows(launcher, b, codec, p);
            if (a_cc.data(0, 0) + b_rc.data(0, 0) == 12345.6789) std::abort();
          },
          [&] {
            auto a_light = abft::encode_columns_light(launcher, a, codec, p);
            auto b_light = abft::encode_rows_light(launcher, b, codec, p);
            if (a_light.sums(0, 0) + b_light.sums(0, 0) == 12345.6789)
              std::abort();
          });
      rows.push_back(row);
    }

    // -- end-to-end protected GEMM: classic vs fused pipeline ---------------
    {
      const std::uint64_t gemm_ops = 2ull * n * n * n;
      Row row{"pipeline_fused", "ns_per_op_classic", "ns_per_op_fused", n};
      gpusim::Launcher launcher;
      abft::AabftConfig config;
      abft::AabftMultiplier classic(launcher, config);
      config.fused_gemm = true;
      abft::AabftMultiplier fused(launcher, config);
      measure_pair(
          row, gemm_ops,
          [&] {
            auto result = classic.multiply(a, b);
            if (!result.ok() || result->c(0, 0) == 12345.6789) std::abort();
          },
          [&] {
            auto result = fused.multiply(a, b);
            if (!result.ok() || result->c(0, 0) == 12345.6789) std::abort();
          });
      rows.push_back(row);
    }
  }

  std::printf("%-22s %6s %16s %14s %9s\n", "scheme", "n", "baseline",
              "contender", "speedup");
  std::printf("%-22s %6s %16s %14s %9s\n", "", "", "(ns/op)", "(ns/op)", "");
  bool fence_ok = true;
  bool fence_within_noise = true;
  bool fused_target_met = false;
  bool fused_within_noise = false;
  const std::size_t largest = sweep.back();
  for (const Row& row : rows) {
    std::printf("%-22s %6zu %16.3f %14.3f %8.2fx\n", row.scheme.c_str(),
                row.n, row.baseline_ns_per_op, row.contender_ns_per_op,
                row.speedup());
    if (row.scheme == "encode_columns_fence" && row.speedup() <= 1.0)
      fence_ok = false;
    // Exit-code floor is looser than the reported target: on a loaded shared
    // host, interleaved best-of-5 still jitters by ~10% at memory-bound
    // sizes. The floors catch real regressions (the pre-fix fence sat at
    // 0.83x; losing the fused path entirely reads ~1x) without failing the
    // lane on scheduler noise.
    if (row.scheme == "encode_columns_fence" && row.speedup() < 0.9)
      fence_within_noise = false;
    if (row.scheme == "encode_fused" && row.n == largest) {
      fused_target_met = row.speedup() >= 3.0;
      fused_within_noise = row.speedup() >= 2.0;
    }
  }
  std::printf("\nencode_columns fence speedup > 1x at every size: %s\n",
              fence_ok ? "yes" : "NO (see exit-code floor)");
  // The >= 3x encode-path bar applies at standard sizes; tiny smoke sweeps
  // only verify the harness runs.
  const bool gate_applies = largest >= 256;
  if (gate_applies)
    std::printf("fused encode >= 3x cheaper than standalone at %zu: %s\n",
                largest, fused_target_met ? "yes" : "NO (see exit-code floor)");

  bench::BenchJson json;
  for (const Row& row : rows)
    json.begin_row()
        .str("scheme", row.scheme)
        .num("n", row.n)
        .num(row.baseline_key, row.baseline_ns_per_op)
        .num(row.contender_key, row.contender_ns_per_op)
        .num("speedup", row.speedup(), 2);
  json.write("BENCH_encoder.json");
  return (fence_within_noise && (!gate_applies || fused_within_noise)) ? 0 : 1;
}
