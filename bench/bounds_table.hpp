// Shared implementation of the bound-quality tables (paper Tables II-IV):
// average exact rounding error of the checksum elements vs. the average
// rounding-error bounds determined by A-ABFT and by SEA-ABFT.
//
// The exact reference uses the Kulisch superaccumulator (bit-exact inner
// products) in place of the paper's GMP arithmetic; checksum elements are
// sampled (AABFT_BENCH_SAMPLES, default 64 per matrix) because the exact
// reference is O(n) per element — the paper likewise reports averages.
#pragma once

#include <iostream>
#include <vector>

#include "abft/checker.hpp"
#include "abft/checksum.hpp"
#include "abft/encoder.hpp"
#include "baselines/sea_abft.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "fp/exact_dot.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace aabft::bench {

struct BoundsTableSpec {
  const char* title;
  const char* csv_name = "bounds_table";
  linalg::InputClass input;
  double kappa;                 ///< only used by the dynamic input class
  PaperColumn paper_rnd;
  PaperColumn paper_aabft;
  PaperColumn paper_sea;
};

struct BoundsRow {
  double avg_rounding_error = 0.0;
  double avg_aabft_bound = 0.0;
  double avg_sea_bound = 0.0;
};

/// Measure one row of the table at dimension n.
inline BoundsRow measure_bounds_row(std::size_t n, linalg::InputClass input,
                                    double kappa, std::uint64_t seed) {
  const std::size_t bs = 32;
  const std::size_t p = 2;
  Rng rng(seed);
  const abft::PartitionedCodec codec(bs);
  gpusim::Launcher launcher;

  const auto a = linalg::make_input(input, n, kappa, rng);
  const auto b = linalg::make_input(input, n, kappa, rng);

  const auto a_cc = abft::encode_columns(launcher, a, codec, p);
  const auto b_rc = abft::encode_rows(launcher, b, codec, p);
  const auto c_fc =
      linalg::blocked_matmul(launcher, a_cc.data, b_rc.data, linalg::GemmConfig{});

  BoundsRow row;

  // A-ABFT bounds: trace every epsilon of the check (omega = 3, the paper's
  // conservative "worst case" reporting choice).
  abft::EpsilonTrace aabft_trace;
  abft::BoundParams params;  // omega = 3, PaperDirect
  const auto report =
      abft::check_product(launcher, c_fc, codec, a_cc.pmax, b_rc.pmax, n,
                          params, &aabft_trace);
  if (!report.clean())
    std::cout << "WARNING: A-ABFT false positive during bound measurement\n";
  row.avg_aabft_bound = aabft_trace.average();

  // SEA bounds.
  abft::EpsilonTrace sea_trace;
  const auto sea_bounds =
      baselines::compute_sea_bounds(launcher, a_cc.data, b_rc.data, codec);
  const auto sea_report = baselines::sea_check_product(
      launcher, c_fc, codec, sea_bounds, n, &sea_trace);
  if (!sea_report.clean())
    std::cout << "WARNING: SEA false positive during bound measurement\n";
  row.avg_sea_bound = sea_trace.average();

  // Exact rounding error of sampled checksum elements: |stored - exact|,
  // with the exact inner product from the superaccumulator.
  const std::size_t samples = env_size_or("AABFT_BENCH_SAMPLES", 64);
  const std::size_t grid_rows = c_fc.rows() / (bs + 1);
  const std::size_t grid_cols = c_fc.cols() / (bs + 1);
  double err_sum = 0.0;
  std::size_t err_count = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    if (s % 2 == 0) {
      // Column-checksum element: (checksum row of block I) x (column gc).
      const auto block = static_cast<std::size_t>(rng.below(grid_rows));
      const auto gc = static_cast<std::size_t>(rng.below(c_fc.cols()));
      const std::size_t cs_row = codec.checksum_index(block);
      const auto col = b_rc.data.col(gc);
      const auto exact = fp::exact_dot(a_cc.data.row(cs_row), col);
      err_sum += std::fabs(exact.round_minus(c_fc(cs_row, gc)));
    } else {
      // Row-checksum element: (row gr) x (checksum column of block J).
      const auto block = static_cast<std::size_t>(rng.below(grid_cols));
      const auto gr = static_cast<std::size_t>(rng.below(c_fc.rows()));
      const std::size_t cs_col = codec.checksum_index(block);
      const auto col = b_rc.data.col(cs_col);
      const auto exact = fp::exact_dot(a_cc.data.row(gr), col);
      err_sum += std::fabs(exact.round_minus(c_fc(gr, cs_col)));
    }
    ++err_count;
  }
  row.avg_rounding_error = err_sum / static_cast<double>(err_count);
  return row;
}

inline int run_bounds_table(const BoundsTableSpec& spec) {
  const auto sweep = bench_sweep(/*default_max=*/1024);
  std::cout << "\n=== " << spec.title << " (measured | paper) ===\n\n";
  TablePrinter table({"MATRIX", "RND.ERR", "(paper)", "A-ABFT", "(paper)",
                      "SEA-ABFT", "(paper)"});
  Rng seeds(0xb0b);
  for (const std::size_t n : sweep) {
    const BoundsRow row =
        measure_bounds_row(n, spec.input, spec.kappa, seeds.next_u64());
    table.add_row({std::to_string(n),
                   TablePrinter::sci(row.avg_rounding_error),
                   paper_cell(spec.paper_rnd, n),
                   TablePrinter::sci(row.avg_aabft_bound),
                   paper_cell(spec.paper_aabft, n),
                   TablePrinter::sci(row.avg_sea_bound),
                   paper_cell(spec.paper_sea, n)});
  }
  table.print();
  maybe_write_csv(table, spec.csv_name);
  std::cout << "\nShape check (paper): the A-ABFT bound sits roughly two "
               "orders of magnitude below the SEA bound\nand two to three "
               "above the actual rounding error, at every size.\n";
  return 0;
}

}  // namespace aabft::bench
