// Figure 4 reproduction: percentage of detected errors for single-bit
// mantissa flips, per floating-point operation site (inner-loop addition,
// inner-loop multiplication, final sum addition), input value range and
// matrix dimension — A-ABFT vs SEA-ABFT.
//
// The paper additionally reports (text, Section VI-C) that sign- and
// exponent-field injections are detected 100 % by both schemes and that 3-
// and 5-bit flips behave like single-bit flips; set AABFT_BENCH_BITS=3 (or
// 5) and AABFT_BENCH_FIELD=sign|exponent to regenerate those experiments.
//
// Default: n in {128, 256}, 24 injections per cell. AABFT_BENCH_MAX_N and
// AABFT_BENCH_TRIALS widen the sweep toward the paper's 512..8192 x many.
#include <cstring>
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/table.hpp"
#include "inject/sweep.hpp"

namespace {

using namespace aabft;

fp::BitField field_from_env() {
  const char* v = std::getenv("AABFT_BENCH_FIELD");
  if (v == nullptr || std::strcmp(v, "mantissa") == 0)
    return fp::BitField::kMantissa;
  if (std::strcmp(v, "sign") == 0) return fp::BitField::kSign;
  if (std::strcmp(v, "exponent") == 0) return fp::BitField::kExponent;
  std::cerr << "unknown AABFT_BENCH_FIELD '" << v << "', using mantissa\n";
  return fp::BitField::kMantissa;
}

std::string rate_or_dash(const inject::SchemeDetectionStats& stats) {
  if (!stats.has_critical()) return "-";
  return TablePrinter::fixed(stats.detection_rate(), 1);
}

}  // namespace

int main() {
  inject::SweepConfig config;
  config.field = field_from_env();
  config.num_bits = static_cast<int>(env_size_or("AABFT_BENCH_BITS", 1));
  config.trials = env_size_or("AABFT_BENCH_TRIALS", 24);

  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", 256);
  config.sizes.clear();
  for (std::size_t n :
       {std::size_t{128}, std::size_t{256}, std::size_t{512}, std::size_t{1024},
        std::size_t{2048}, std::size_t{4096}, std::size_t{8192}})
    if (n <= max_n) config.sizes.push_back(n);

  std::cout << "\n=== Figure 4: % detected critical errors, "
            << fp::to_string(config.field) << " " << config.num_bits
            << "-bit flips (" << config.trials << " injections/cell) ===\n"
            << "Columns: detection rate among ground-truth-critical errors; "
               "tol = detected tolerable / tolerable.\n\n";

  const inject::SweepResult sweep = inject::run_sweep(config);

  TablePrinter table({"operation", "inputs", "n", "A-ABFT %", "SEA %",
                      "crit", "A-tol", "S-tol", "masked"});
  for (const auto& cell : sweep.cells) {
    const auto& r = cell.result;
    table.add_row({gpusim::to_string(cell.site), linalg::to_string(cell.input),
                   std::to_string(cell.n), rate_or_dash(r.aabft()),
                   rate_or_dash(r.sea()), std::to_string(r.aabft().critical),
                   std::to_string(r.aabft().detected_tolerable) + "/" +
                       std::to_string(r.aabft().tolerable),
                   std::to_string(r.sea().detected_tolerable) + "/" +
                       std::to_string(r.sea().tolerable),
                   std::to_string(r.masked)});
  }
  table.print();
  bench::maybe_write_csv(table, "fig4_detection");

  if (sweep.false_positive_runs() > 0)
    std::cout << "WARNING: " << sweep.false_positive_runs()
              << " false positives on clean reference runs\n";
  std::cout << "\naggregate critical-error detection: A-ABFT "
            << TablePrinter::fixed(sweep.aggregate_rate_aabft(), 1)
            << "%, SEA-ABFT "
            << TablePrinter::fixed(sweep.aggregate_rate_sea(), 1) << "%\n";
  std::cout << "\nShape checks (paper): A-ABFT detection is well over 90% and "
               "does not degrade with n;\nSEA-ABFT detects fewer errors and "
               "tends to degrade as n grows. Sign/exponent flips (set\n"
               "AABFT_BENCH_FIELD) are detected 100% by both schemes.\n";
  return 0;
}
