// ProtectedBlas3 operation benchmark.
//
// Sweeps every op kind (GEMM, SYRK, Cholesky, LU) through the ProtectedBlas3
// API twice — once on the unprotected scheme and once on the A-ABFT scheme —
// and reports throughput plus the protection overhead per kind. The
// factorizations exercise the checksum-carry path (panel = bs), so this is
// the perf trajectory of the whole blas3 subsystem, not just GEMM.
//
// Machine-readable output: BENCH_blas3.json (op, scheme, n, ns/op, gflops,
// overhead vs unprotected) in the current directory, or $AABFT_BENCH_JSON.
//
//   AABFT_BENCH_MAX_N   largest dimension in the sweep (default 512)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/schemes.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using baselines::OpDescriptor;
using baselines::OpKind;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

linalg::Matrix random_matrix(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  return linalg::uniform_matrix(rows, cols, -1.0, 1.0, rng);
}

linalg::Matrix spd_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const linalg::Matrix m = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  linalg::Matrix a = linalg::naive_matmul(m, m.transposed(), false);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

struct Row {
  std::string op;
  std::string scheme;
  std::size_t n = 0;
  double ns_per_op = 0.0;
  double gflops = 0.0;
  double overhead = 0.0;  ///< protected time / unprotected time (same op, n)
};

double time_execute(baselines::ProtectedBlas3& scheme,
                    const OpDescriptor& desc, const linalg::Matrix& a,
                    const linalg::Matrix& b) {
  auto run = [&] {
    auto result = scheme.execute(desc, a, b);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed on %s: %s\n", scheme.name().data(),
                   std::string(to_string(desc.kind)).c_str(),
                   result.error().message.c_str());
      std::exit(1);
    }
  };
  run();  // warm-up
  const auto start = Clock::now();
  run();
  return seconds_since(start);
}

}  // namespace

int main() {
  const std::size_t max_n = env_size_or("AABFT_BENCH_MAX_N", 512);
  std::vector<std::size_t> sweep;
  for (std::size_t n :
       {std::size_t{128}, std::size_t{256}, std::size_t{512},
        std::size_t{1024}})
    if (n <= max_n) sweep.push_back(n);
  if (sweep.empty()) sweep.push_back(std::max<std::size_t>(max_n, 64));

  gpusim::Launcher launcher;
  abft::AabftConfig aabft;
  baselines::UnprotectedScheme raw(launcher);
  baselines::AabftScheme protected_scheme(launcher, aabft);

  std::vector<Row> rows;
  for (const std::size_t n : sweep) {
    const linalg::Matrix a = random_matrix(n, n, 1);
    const linalg::Matrix b = random_matrix(n, n, 2);
    const linalg::Matrix spd = spd_matrix(n, 3);
    const linalg::Matrix none;

    struct Case {
      OpDescriptor desc;
      const linalg::Matrix* a;
      const linalg::Matrix* b;
    };
    const Case cases[] = {
        {OpDescriptor::gemm(n, n, n), &a, &b},
        {OpDescriptor::syrk(n, n), &a, &none},
        {OpDescriptor::cholesky(n), &spd, &none},
        {OpDescriptor::lu(n), &spd, &none},
    };
    for (const Case& c : cases) {
      const double flops = c.desc.flops();
      const double raw_s = time_execute(raw, c.desc, *c.a, *c.b);
      const double prot_s = time_execute(protected_scheme, c.desc, *c.a, *c.b);
      const auto emit = [&](const char* scheme, double s) {
        Row row;
        row.op = std::string(to_string(c.desc.kind));
        row.scheme = scheme;
        row.n = n;
        row.ns_per_op = 1e9 * s / std::max(1.0, flops);
        row.gflops = flops / s / 1e9;
        row.overhead = raw_s > 0.0 ? prot_s / raw_s : 0.0;
        rows.push_back(row);
      };
      emit("unprotected", raw_s);
      emit("a-abft", prot_s);
    }
  }

  std::printf("%-10s %-12s %6s %12s %10s %9s\n", "op", "scheme", "n",
              "ns/flop", "gflops", "overhead");
  for (const Row& row : rows)
    std::printf("%-10s %-12s %6zu %12.4f %10.3f %8.2fx\n", row.op.c_str(),
                row.scheme.c_str(), row.n, row.ns_per_op, row.gflops,
                row.overhead);

  bench::BenchJson json;
  for (const Row& row : rows)
    json.begin_row()
        .str("op", row.op)
        .str("scheme", row.scheme)
        .num("n", row.n)
        .num("ns_per_flop", row.ns_per_op)
        .num("gflops", row.gflops, 3)
        .num("overhead", row.overhead, 2);
  json.write("BENCH_blas3.json");
  return 0;
}
