// Ablation studies for the design choices DESIGN.md calls out:
//
//   1. the p-max parameter p (paper: "quality ... can be improved by
//      increasing p ... also increases the computational overhead"),
//   2. the confidence width omega (paper reports the conservative 3-sigma
//      setting; 2-sigma and 1-sigma "lead to error bounds that are even
//      closer to the actual rounding error"),
//   3. bound policy: the paper's direct Eq.-46 application vs the
//      compositional variant that also covers the reference checksum,
//   4. FMA vs separate multiply+add accumulation (Section IV-D),
//   5. diverse-kernel TMR agreement bounds (extension): clean-run
//      disagreements as omega shrinks.
//
// Each row reports the average bound, its tightness ratio against the exact
// (superaccumulator) rounding error, and clean-run false positives.
#include <iostream>

#include "abft/aabft.hpp"
#include "abft/checker.hpp"
#include "abft/encoder.hpp"
#include "abft/weighted.hpp"
#include "baselines/diverse_tmr.hpp"
#include "bench/bench_common.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "fp/exact_dot.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;

struct AblationRow {
  double avg_eps = 0.0;
  double avg_exact = 0.0;
  std::size_t false_positives = 0;
  std::uint64_t encode_compares = 0;

  [[nodiscard]] double tightness() const { return avg_eps / avg_exact; }
};

AblationRow measure(std::size_t n, std::size_t bs, std::size_t p,
                    const abft::BoundParams& params, std::uint64_t seed) {
  Rng rng(seed);
  const abft::PartitionedCodec codec(bs);
  gpusim::Launcher launcher;
  const auto a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  const auto a_cc = abft::encode_columns(launcher, a, codec, p);
  const auto b_rc = abft::encode_rows(launcher, b, codec, p);

  AblationRow row;
  for (const auto& entry : launcher.launch_log())
    if (entry.kernel_name.starts_with("encode"))
      row.encode_compares += entry.counters.compares;

  linalg::GemmConfig gemm;
  gemm.use_fma = params.fma;
  const auto c_fc = linalg::blocked_matmul(launcher, a_cc.data, b_rc.data, gemm);

  abft::EpsilonTrace trace;
  const auto report = abft::check_product(launcher, c_fc, codec, a_cc.pmax,
                                          b_rc.pmax, n, params, &trace);
  row.false_positives = report.mismatches.size();
  row.avg_eps = trace.average();

  // Exact rounding error of sampled checksum elements.
  const std::size_t samples = 32;
  double err_sum = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto block = static_cast<std::size_t>(
        rng.below(c_fc.rows() / (bs + 1)));
    const auto gc = static_cast<std::size_t>(rng.below(c_fc.cols()));
    const std::size_t cs_row = codec.checksum_index(block);
    const auto col = b_rc.data.col(gc);
    err_sum += std::fabs(
        fp::exact_dot(a_cc.data.row(cs_row), col).round_minus(c_fc(cs_row, gc)));
  }
  row.avg_exact = err_sum / static_cast<double>(samples);
  return row;
}

}  // namespace

int main() {
  const std::size_t n = env_size_or("AABFT_BENCH_MAX_N", 256);
  const std::size_t bs = 32;
  std::cout << "\n=== Ablations (n = " << n << ", BS = " << bs
            << ", inputs U(-1,1)) ===\n\n";

  {
    TablePrinter table({"p", "avg eps", "eps/exact", "false-pos",
                        "encode compares"});
    for (const std::size_t p : {1u, 2u, 4u, 8u}) {
      abft::BoundParams params;
      const AblationRow row = measure(n, bs, p, params, 0xab1 + p);
      table.add_row({std::to_string(p), TablePrinter::sci(row.avg_eps),
                     TablePrinter::fixed(row.tightness(), 0),
                     std::to_string(row.false_positives),
                     std::to_string(row.encode_compares)});
    }
    std::cout << "-- p (tracked maxima): larger p tightens y at higher encode "
                 "cost --\n";
    table.print();
  }

  {
    TablePrinter table({"omega", "avg eps", "eps/exact", "false-pos"});
    for (const double omega : {1.0, 2.0, 3.0}) {
      abft::BoundParams params;
      params.omega = omega;
      const AblationRow row = measure(n, bs, 2, params, 0xab2);
      table.add_row({TablePrinter::fixed(omega, 0),
                     TablePrinter::sci(row.avg_eps),
                     TablePrinter::fixed(row.tightness(), 0),
                     std::to_string(row.false_positives)});
    }
    std::cout << "\n-- omega (confidence width): the paper reports the "
                 "conservative 3-sigma --\n";
    table.print();
  }

  {
    TablePrinter table({"policy", "avg eps", "eps/exact", "false-pos"});
    for (const auto policy : {abft::BoundPolicy::kPaperDirect,
                              abft::BoundPolicy::kCompositional}) {
      abft::BoundParams params;
      params.policy = policy;
      const AblationRow row = measure(n, bs, 2, params, 0xab3);
      table.add_row(
          {policy == abft::BoundPolicy::kPaperDirect ? "paper-direct"
                                                     : "compositional",
           TablePrinter::sci(row.avg_eps),
           TablePrinter::fixed(row.tightness(), 0),
           std::to_string(row.false_positives)});
    }
    std::cout << "\n-- bound policy: compositional additionally covers the "
                 "reference checksum --\n";
    table.print();
  }

  {
    TablePrinter table({"accumulation", "avg eps", "eps/exact", "false-pos"});
    for (const bool fma : {false, true}) {
      abft::BoundParams params;
      params.fma = fma;
      const AblationRow row = measure(n, bs, 2, params, 0xab4);
      table.add_row({fma ? "fma" : "mul+add", TablePrinter::sci(row.avg_eps),
                     TablePrinter::fixed(row.tightness(), 0),
                     std::to_string(row.false_positives)});
    }
    std::cout << "\n-- accumulation mode (Section IV-D): FMA drops the "
                 "product variance term --\n";
    table.print();
  }

  {
    TablePrinter table({"omega", "clean-run disagreements", "unresolved"});
    Rng rng(0xab5);
    const auto a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
    const auto b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
    for (const double omega : {1.0, 2.0, 3.0}) {
      gpusim::Launcher launcher;
      baselines::DiverseTmrConfig config;
      config.omega = omega;
      baselines::DiverseTmrMultiplier mult(launcher, config);
      const auto result = mult.multiply(a, b);
      table.add_row({TablePrinter::fixed(omega, 0),
                     std::to_string(result.disagreeing_elements),
                     std::to_string(result.unresolved_elements)});
    }
    std::cout << "\n-- diverse-kernel TMR (extension): probabilistic "
                 "agreement bounds across three\n   genuinely different "
                 "kernels; tighter omega risks clean-run disagreement --\n";
    table.print();
  }

  {
    // Plain (A-ABFT) vs weighted (Jou/Abraham) checksums: encode cost and
    // correction capability under one injected fault.
    TablePrinter table({"codec", "encode flops+cmps", "clean FP",
                        "detected", "corrected", "recheck clean"});
    Rng rng(0xab6);
    const auto a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
    const auto b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
    gpusim::FaultConfig fault;
    fault.site = gpusim::FaultSite::kInnerAdd;
    fault.sm_id = 2;
    fault.module_id = 3;
    fault.k_injection = 5;
    fault.error_vec = 1ULL << 61;

    auto encode_ops = [](const gpusim::Launcher& launcher) {
      std::uint64_t ops = 0;
      for (const auto& entry : launcher.launch_log())
        if (entry.kernel_name.starts_with("encode"))
          ops += entry.counters.flops() + entry.counters.compares;
      return ops;
    };

    {
      gpusim::Launcher launcher;
      abft::AabftConfig config;
      config.bs = bs;
      abft::AabftMultiplier mult(launcher, config);
      const auto clean = mult.multiply(a, b).value();
      const std::uint64_t ops = encode_ops(launcher);
      gpusim::FaultController controller;
      launcher.set_fault_controller(&controller);
      controller.arm(fault);
      const auto faulty = mult.multiply(a, b).value();
      launcher.set_fault_controller(nullptr);
      table.add_row({"plain (row+col)", std::to_string(ops),
                     clean.error_detected() ? "yes" : "no",
                     faulty.error_detected() ? "yes" : "no",
                     std::to_string(faulty.corrections.size()),
                     faulty.recheck_clean ? "yes" : "no"});
    }
    {
      gpusim::Launcher launcher;
      abft::WeightedAabftConfig config;
      config.bs = bs;
      abft::WeightedAabftMultiplier mult(launcher, config);
      const auto clean = mult.multiply(a, b);
      const std::uint64_t ops = encode_ops(launcher);
      gpusim::FaultController controller;
      launcher.set_fault_controller(&controller);
      controller.arm(fault);
      const auto faulty = mult.multiply(a, b);
      launcher.set_fault_controller(nullptr);
      table.add_row({"weighted (col only)", std::to_string(ops),
                     clean.error_detected() ? "yes" : "no",
                     faulty.error_detected() ? "yes" : "no",
                     std::to_string(faulty.corrected),
                     faulty.recheck_clean ? "yes" : "no"});
    }
    std::cout << "\n-- checksum codec (extension): weighted checksums "
                 "localise from column checks alone --\n";
    table.print();
  }

  return 0;
}
