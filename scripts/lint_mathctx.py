#!/usr/bin/env python3
"""MathCtx-bypass lint: no raw floating-point arithmetic in kernel bodies.

Every simulated kernel must route its floating-point work through MathCtx
(per-op counted/injectable calls, or the fenced span helpers / canonical()
for bit-identical fast paths). A raw `+`/`-`/`*`/`/` or std::fma over element
values inside a kernel body silently under-reports the perf counters and --
worse -- escapes the fault-injection surface the paper's results depend on.

Engine: if clang-query is on PATH it is tried first as a cross-check; its
absence or failure falls back to (and never weakens) the regex AST-lite pass
below, which is the authoritative gate:

  1. kernel bodies are the lambda bodies with a BlockCtx parameter inside
     `.launch(` / `.launch_async(` call spans;
  2. comments and string literals are blanked (line structure preserved);
  3. every binary arithmetic operator in a body is flagged when either
     operand carries *double evidence* -- declared double / double* /
     std::vector<double> / SharedArray<double> in the file, a floating
     literal, or a `.max_value()` chain;
  4. index arithmetic is allowed: operators inside `[...]` subscripts,
     operands ending in `.data()` (pointer arithmetic), integer
     static_cast<...>(...) spans, and `math.canonical(...)` spans (the
     documented fast-path idiom);
  5. `std::fma(`/`std::fmaf(` in a body is always flagged;
  6. a line containing `aabft-lint: allow` is exempt (use for counted
     bound/compare arithmetic that is deliberately outside MathCtx).

Exit status: 0 clean, 1 findings, 2 internal error.
`--self-test` additionally requires the seeded fixture under
tests/lint_fixtures/ to FAIL the lint (guarding the lint itself).
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

LAUNCH_RE = re.compile(r"\.launch(?:_async)?\s*\(")
LAMBDA_RE = re.compile(
    r"\[[^\[\]]*\]\s*\(\s*(?:[\w:]+::)?BlockCtx\s*&\s*\w*\s*\)\s*"
    r"(?:mutable\s*)?(?:noexcept\s*)?\{"
)
ALLOW_MARK = "aabft-lint: allow"
FLOAT_LIT_RE = re.compile(r"^\d+\.\d*(?:[eE][-+]?\d+)?$|^\d+[eE][-+]?\d+$|^\d*\.\d+$")
DOUBLE_DECL_RES = [
    re.compile(r"\bdouble\s*[&*]?\s*(\w+)"),
    re.compile(r"\bstd::vector<double>\s*[&*]?\s*(\w+)"),
    re.compile(r"\bSharedArray<double>\s+(\w+)"),
]
INT_CAST_RE = re.compile(
    r"\bstatic_cast<\s*(?:std::)?(?:u?int(?:8|16|32|64)?_t|int|long|unsigned"
    r"|size_t|ptrdiff_t)\s*>\s*\("
)
CANONICAL_RE = re.compile(r"\bmath\s*\.\s*canonical\s*\(")
STD_FMA_RE = re.compile(r"\bstd::fmaf?\s*\(")
ATOM_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:")


def blank_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literals with spaces, keeping offsets
    and newlines so findings report real line numbers. Allow-marks inside
    comments are honoured before blanking (see scan_file)."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and nxt == "*":
            while i < n - 1 and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n - 1:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out[i] = " "
                    i += 1
                    if i < n and text[i] != "\n":
                        out[i] = " "
                    i += 1
                    continue
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i < n:
                out[i] = " "
                i += 1
        else:
            i += 1
    return "".join(out)


def balanced_span(text: str, open_pos: int, open_ch: str, close_ch: str) -> int:
    """Index one past the matching close bracket, or len(text) if unbalanced."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def kernel_bodies(clean: str):
    """Yield (start, end) spans of BlockCtx lambda bodies inside launch calls."""
    for launch in LAUNCH_RE.finditer(clean):
        call_open = clean.index("(", launch.start())
        call_end = balanced_span(clean, call_open, "(", ")")
        lam = LAMBDA_RE.search(clean, call_open, call_end)
        if lam is None:
            continue
        body_open = lam.end() - 1
        yield body_open + 1, balanced_span(clean, body_open, "{", "}") - 1


def double_idents(clean: str) -> set[str]:
    names: set[str] = set()
    for decl_re in DOUBLE_DECL_RES:
        names.update(m.group(1) for m in decl_re.finditer(clean))
    return names


def exempt_spans(clean: str, start: int, end: int):
    """Spans inside the body where arithmetic is index/fast-path idiom."""
    spans = []
    for regex in (CANONICAL_RE, INT_CAST_RE):
        for m in regex.finditer(clean, start, end):
            open_pos = clean.index("(", m.end() - 1)
            spans.append((open_pos, balanced_span(clean, open_pos, "(", ")")))
    return spans


def left_atom(clean: str, pos: int) -> str:
    """Postfix-expression text ending just before `pos` (operand of a binary
    op), walking back over identifiers, member access and balanced )/]."""
    i = pos - 1
    while i >= 0 and clean[i].isspace():
        i -= 1
    end = i + 1
    while i >= 0:
        c = clean[i]
        if c in ")]":
            opener = "(" if c == ")" else "["
            depth = 0
            while i >= 0:
                if clean[i] == c:
                    depth += 1
                elif clean[i] == opener:
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
        elif c in ATOM_CHARS:
            i -= 1
        elif c == ">" and i > 0 and clean[i - 1] == "-":
            i -= 2
        else:
            break
    return clean[i + 1 : end].strip()


def right_atom(clean: str, pos: int) -> str:
    """Postfix-expression text starting at/after `pos`."""
    i = pos
    n = len(clean)
    while i < n and clean[i].isspace():
        i += 1
    start = i
    while i < n:
        c = clean[i]
        if c in "([":
            i = balanced_span(clean, i, c, ")" if c == "(" else "]")
        elif c in ATOM_CHARS:
            i += 1
        elif c == "-" and i + 1 < n and clean[i + 1] == ">":
            i += 2
        else:
            break
    return clean[start:i].strip()


def is_double_atom(atom: str, doubles: set[str]) -> bool:
    if not atom:
        return False
    if ".max_value()" in atom:
        return True
    if atom.endswith(".data()"):
        return False  # pointer arithmetic over a tile/row base is index math
    if FLOAT_LIT_RE.match(atom):
        return True
    root = re.match(r"[A-Za-z_]\w*", atom)
    if root is None:
        return False
    name = root.group(0)
    if name not in doubles:
        return False
    # The bare variable or an element access of it (x, x[i]); method-call
    # chains on a double-typed name don't exist in this codebase.
    rest = atom[root.end():]
    return rest == "" or (rest.startswith("[") and rest.endswith("]"))


def scan_file(path: Path):
    """Return findings [(line, message)] for one source file."""
    text = path.read_text(encoding="utf-8")
    # A mark exempts its own line and the following one, so it can trail the
    # flagged expression or sit in a comment directly above it.
    allow_lines: set[int] = set()
    for i, line in enumerate(text.splitlines()):
        if ALLOW_MARK in line:
            allow_lines.update({i + 1, i + 2})
    clean = blank_comments_and_strings(text)
    doubles = double_idents(clean)
    findings = []

    def lineno(pos: int) -> int:
        return clean.count("\n", 0, pos) + 1

    for body_start, body_end in kernel_bodies(clean):
        exempt = exempt_spans(clean, body_start, body_end)

        def is_exempt(pos: int) -> bool:
            return any(lo <= pos < hi for lo, hi in exempt)

        for m in STD_FMA_RE.finditer(clean, body_start, body_end):
            line = lineno(m.start())
            if line not in allow_lines and not is_exempt(m.start()):
                findings.append(
                    (line, "raw std::fma in kernel body (use math.fma / "
                           "math.faulty_fma / math.fma_row)")
                )

        depth = 0  # subscript depth: index arithmetic inside [...] is fine
        i = body_start
        while i < body_end:
            c = clean[i]
            if c == "[":
                depth += 1
            elif c == "]":
                depth = max(0, depth - 1)
            elif c in "+-*/" and depth == 0 and not is_exempt(i):
                prev = clean[i - 1]
                nxt = clean[i + 1] if i + 1 < len(clean) else ""
                # Binary only: previous non-space must end an operand; skip
                # ++/--/->/=-style and compound-assign second chars.
                j = i - 1
                while j >= body_start and clean[j].isspace():
                    j -= 1
                binary = j >= body_start and (clean[j].isalnum()
                                              or clean[j] in "_)]")
                if c in "+-" and (nxt == c or prev == c):  # ++ / -- halves
                    binary = False
                if c == "-" and nxt == ">":
                    binary = False
                if c == "*" and prev == "*":  # e.g. double** decl
                    binary = False
                if binary:
                    op_end = i + 2 if nxt == "=" else i + 1  # compound assign
                    left = left_atom(clean, i)
                    right = right_atom(clean, op_end)
                    if c in "*&" and left in ("double", "float"):
                        binary = False  # pointer declaration, not arithmetic
                if binary:
                    if is_double_atom(left, doubles) or is_double_atom(
                        right, doubles
                    ):
                        line = lineno(i)
                        if line not in allow_lines:
                            findings.append(
                                (line,
                                 f"raw `{clean[i:op_end]}` over double operands "
                                 f"in kernel body ({left or '?'} "
                                 f"{clean[i:op_end]} {right or '?'}) -- route "
                                 "through MathCtx")
                            )
            i += 1
    return findings


def try_clang_query(files) -> bool:
    """Best-effort clang-query cross-check. Returns True if it ran (its
    findings are advisory; the regex pass remains the gate)."""
    binary = shutil.which("clang-query")
    if binary is None:
        return False
    matcher = (
        "match binaryOperator(anyOf(hasOperatorName(\"+\"), "
        "hasOperatorName(\"*\")), hasType(realFloatingPointType()), "
        "hasAncestor(lambdaExpr()))"
    )
    try:
        subprocess.run(
            [binary, "-c", matcher, *map(str, files), "--", "-std=c++20"],
            capture_output=True, timeout=120, check=False,
        )
        return True
    except (OSError, subprocess.TimeoutExpired):
        return False


def default_targets(root: Path) -> list[Path]:
    """src/ kernel sources — every layer, including serve/ and fleet/ (they
    host no kernels themselves but relay fault plans into launches) — plus
    the tools/ and bench/ drivers (both launch kernels and must go through
    MathCtx like everything else). The fused online-checking kernels
    (abft/fused_gemm.cpp: light encoders, fused_encode_matmul and its
    k-panel screen) are covered by the same glob; the screen's coarse
    bound/compare arithmetic is deliberately outside MathCtx and carries
    per-line `aabft-lint: allow` marks with bulk-counted totals, so any new
    unannotated raw FP there still fails the lint."""
    return (sorted((root / "src").rglob("*.cpp"))
            + sorted((root / "tools").glob("*.cpp"))
            + sorted((root / "bench").glob("*.cpp")))


def run(root: Path, files=None) -> list[str]:
    targets = files if files is not None else default_targets(root)
    messages = []
    for path in targets:
        for line, msg in scan_file(path):
            rel = path.relative_to(root) if path.is_relative_to(root) else path
            messages.append(f"{rel}:{line}: {msg}")
    return messages


def list_waivers(root: Path, targets) -> list[str]:
    """Every `aabft-lint: allow` mark in the scanned set, as `file:line`
    entries (with the waived line's text for review)."""
    entries = []
    for path in targets:
        rel = path.relative_to(root) if path.is_relative_to(root) else path
        for i, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                 start=1):
            if ALLOW_MARK in line:
                entries.append(f"{rel}:{i}: {line.strip()}")
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--self-test", action="store_true",
                        help="also require the seeded fixture to fail")
    parser.add_argument("--list-waivers", action="store_true",
                        help="print every `aabft-lint: allow` mark as "
                             "file:line and exit")
    parser.add_argument("--waiver-baseline", type=Path, default=None,
                        help="with --list-waivers: fail (exit 1) if the "
                             "waiver count exceeds the count recorded in "
                             "this baseline file")
    parser.add_argument("files", nargs="*", type=Path,
                        help="specific files to scan (default: src/**/*.cpp + tools/*.cpp)")
    args = parser.parse_args()
    root = args.root.resolve()

    if args.list_waivers:
        waivers = list_waivers(root, args.files or default_targets(root))
        for entry in waivers:
            print(entry)
        print(f"lint_mathctx: {len(waivers)} waiver(s)")
        if args.waiver_baseline is not None:
            try:
                budget = int(args.waiver_baseline.read_text().split()[0])
            except (OSError, ValueError, IndexError):
                print(f"lint_mathctx: unreadable waiver baseline "
                      f"{args.waiver_baseline}")
                return 2
            if len(waivers) > budget:
                print(f"lint_mathctx: waiver count {len(waivers)} exceeds the "
                      f"checked-in budget {budget} -- new `{ALLOW_MARK}` "
                      "marks need review; if legitimate, raise "
                      f"{args.waiver_baseline} in the same change")
                return 1
            print(f"lint_mathctx: within waiver budget ({budget})")
        return 0

    if try_clang_query(args.files or default_targets(root)):
        print("lint_mathctx: clang-query cross-check ran (advisory)")

    messages = run(root, args.files or None)
    for msg in messages:
        print(msg)
    if messages:
        print(f"lint_mathctx: {len(messages)} finding(s)")
        return 1

    if args.self_test:
        fixture = root / "tests" / "lint_fixtures" / "raw_fp_kernel.cpp"
        if not fixture.is_file():
            print(f"lint_mathctx: missing fixture {fixture}")
            return 2
        fixture_findings = scan_file(fixture)
        if not fixture_findings:
            print("lint_mathctx: SELF-TEST FAILED -- seeded raw-FP fixture "
                  "passed the lint")
            return 2
        print(f"lint_mathctx: self-test ok (fixture raised "
              f"{len(fixture_findings)} finding(s))")

    print("lint_mathctx: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
