#!/usr/bin/env bash
# Reproduce the paper's full-size sweeps (512..8192). This is CPU-simulated
# GPU work: expect hours at the 8192 end. Start smaller (e.g. MAX_N=2048)
# for a same-day run. CSVs land in ./paper_results.
set -euo pipefail
build=${1:-build}
out=${2:-paper_results}
mkdir -p "$out"
export AABFT_BENCH_MAX_N=${AABFT_BENCH_MAX_N:-8192}
export AABFT_BENCH_TRIALS=${AABFT_BENCH_TRIALS:-100}
export AABFT_BENCH_SAMPLES=${AABFT_BENCH_SAMPLES:-128}
export AABFT_BENCH_CSV="$out"
for b in "$build"/bench/bench_table1_performance \
         "$build"/bench/bench_table2_bounds \
         "$build"/bench/bench_table3_bounds \
         "$build"/bench/bench_table4_bounds \
         "$build"/bench/bench_fig4_detection \
         "$build"/bench/bench_ablation_bounds; do
  echo "=== $b ==="
  "$b" | tee "$out/$(basename "$b").txt"
done
# The text-reported variants of Figure 4:
AABFT_BENCH_FIELD=exponent "$build"/bench/bench_fig4_detection | tee "$out/fig4_exponent.txt"
AABFT_BENCH_FIELD=sign     "$build"/bench/bench_fig4_detection | tee "$out/fig4_sign.txt"
AABFT_BENCH_BITS=3         "$build"/bench/bench_fig4_detection | tee "$out/fig4_3bit.txt"
AABFT_BENCH_BITS=5         "$build"/bench/bench_fig4_detection | tee "$out/fig4_5bit.txt"
