// Precision planner: use the rounding-analysis by-product to decide whether
// a workload can run in single precision — and protect it there.
//
//   ./build/examples/precision_planner [n] [tolerance]
//
// The paper's introduction notes that A-ABFT "is able to deliver error
// functions or rounding error analyses for the performed operation with
// little additional overhead". This example puts that by-product to work:
//
//   1. collect the p-max tables of A and B (one cheap pass),
//   2. query the per-element rounding model at t = 52 and t = 23,
//   3. if the predicted 3-sigma single-precision error is below the user's
//      tolerance, run the protected multiply on the simulated binary32
//      pipeline (with t = 23 bounds) — otherwise stay in double,
//   4. verify the prediction against the exact (superaccumulator) errors.
#include <cmath>
#include <cstdio>

#include "abft/aabft.hpp"
#include "abft/pmax_scan.hpp"
#include "abft/rounding_report.hpp"
#include "core/rng.hpp"
#include "fp/exact_dot.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

int main(int argc, char** argv) {
  using namespace aabft;

  std::size_t n = 128;
  double tolerance = 1e-3;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) tolerance = std::atof(argv[2]);

  Rng rng(99);
  linalg::Matrix a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  linalg::Matrix b = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  a.round_to_single();  // pretend the data arrived as float
  b.round_to_single();

  // 1-2: rounding forecast for both precisions from one p-max pass.
  gpusim::Launcher launcher;
  const auto a_rows = abft::collect_row_pmax(launcher, a, 2);
  const auto b_cols = abft::collect_col_pmax(launcher, b, 2);

  abft::BoundParams double_params;   // t = 52
  abft::BoundParams single_params;
  single_params.t = 23;
  const auto forecast_double =
      abft::analyze_rounding(launcher, a_rows, b_cols, n, double_params);
  const auto forecast_single =
      abft::analyze_rounding(launcher, a_rows, b_cols, n, single_params);

  std::printf("rounding forecast for C = A*B (n = %zu):\n", n);
  std::printf("  double : max 3-sigma error %.3e, avg sigma %.3e\n",
              3.0 * forecast_double.max_sigma, forecast_double.avg_sigma);
  std::printf("  single : max 3-sigma error %.3e, avg sigma %.3e\n",
              3.0 * forecast_single.max_sigma, forecast_single.avg_sigma);

  const bool use_single = 3.0 * forecast_single.max_sigma <= tolerance;
  std::printf("tolerance %.1e -> running the protected multiply in %s "
              "precision\n\n",
              tolerance, use_single ? "SINGLE" : "DOUBLE");

  // 3: protected multiply on the chosen pipeline.
  if (use_single) launcher.set_precision(gpusim::Precision::kSingle);
  abft::AabftConfig config;
  config.bs = 32;
  config.bounds.t = use_single ? 23 : 52;
  abft::AabftMultiplier mult(launcher, config);
  const auto result = mult.multiply(a, b).value();
  std::printf("protected multiply: detected=%s (autonomous bounds at t=%d)\n",
              result.error_detected() ? "yes" : "no", config.bounds.t);

  // 4: validate the forecast against exact errors on a sample of elements.
  double worst = 0.0;
  std::size_t covered = 0;
  std::size_t sampled = 0;
  for (std::size_t i = 0; i < n; i += n / 8) {
    for (std::size_t j = 0; j < n; j += n / 8) {
      const auto col = b.col(j);
      const double err = std::fabs(
          fp::exact_dot(a.row(i), col).round_minus(result.c(i, j)));
      worst = std::max(worst, err);
      const auto& forecast = use_single ? forecast_single : forecast_double;
      if (err <= forecast.interval(i, j, 3.0)) ++covered;
      ++sampled;
    }
  }
  std::printf("validation: worst exact element error %.3e; %zu/%zu sampled "
              "elements within the forecast 3-sigma interval\n",
              worst, covered, sampled);
  return 0;
}
