// Protected conjugate gradient: an iterative solver whose matrix-vector
// products run through the A-ABFT-protected GEMV — the pattern the paper's
// introduction motivates (long-running scientific iterations on unreliable
// hardware).
//
//   ./build/examples/protected_conjugate_gradient [n] [fault_every]
//
// A is SPD; every `fault_every`-th iteration a transient fault strikes the
// GEMV kernel. Detection + recompute keep the Krylov iteration on the exact
// fault-free trajectory (the returned vector is bitwise the clean product),
// so convergence is unaffected — compare the residual curve with and without
// injections.
#include <cmath>
#include <cstdio>
#include <vector>

#include "aabft.hpp"

namespace {

using namespace aabft;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 128;
  std::size_t fault_every = 4;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) fault_every = static_cast<std::size_t>(std::atoll(argv[2]));

  // SPD system: A = M^T M + n I, with a known solution.
  Rng rng(31);
  const linalg::Matrix m = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  gpusim::Launcher setup;
  linalg::Matrix a = linalg::blocked_matmul(setup, m.transposed(), m);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];

  gpusim::Launcher launcher;
  gpusim::FaultController controller;
  launcher.set_fault_controller(&controller);
  abft::AabftConfig config;
  config.bs = 32;
  abft::ProtectedGemv gemv(launcher, a, config);

  // Conjugate gradient with protected products.
  std::vector<double> x(n, 0.0);
  std::vector<double> r = b;
  std::vector<double> p = r;
  double rs = dot(r, r);
  const double rs0 = rs;

  std::size_t detections = 0;
  std::size_t recomputes = 0;
  std::size_t iterations = 0;
  for (std::size_t it = 1; it <= n && std::sqrt(rs / rs0) > 1e-12; ++it) {
    ++iterations;
    if (fault_every > 0 && it % fault_every == 0) {
      gpusim::FaultConfig fault;
      fault.site = gpusim::FaultSite::kInnerAdd;
      fault.sm_id = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(launcher.device().num_sms)));
      fault.k_injection = static_cast<std::int64_t>(rng.below(n));
      fault.error_vec = fp::make_error_vec(fp::BitField::kExponent, 1, rng);
      controller.arm(fault);
    }

    const abft::GemvResult ap = gemv.multiply(p);
    controller.disarm();
    if (ap.error_detected()) ++detections;
    recomputes += ap.recomputations;

    const double alpha = rs / dot(p, ap.y);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap.y[i];
    }
    const double rs_new = dot(r, r);
    const double beta = rs_new / rs;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs = rs_new;

    if (it % 8 == 0 || ap.error_detected())
      std::printf("iter %3zu  |r|/|r0| = %.3e%s\n", it, std::sqrt(rs / rs0),
                  ap.error_detected() ? "  [fault detected, recomputed]" : "");
  }

  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    err = std::max(err, std::fabs(x[i] - x_true[i]));
  std::printf("\nconverged in %zu iterations; faults detected %zu, products "
              "recomputed %zu\nmax |x - x_true| = %.3e\n",
              iterations, detections, recomputes, err);
  return err < 1e-8 ? 0 : 1;
}
