// Protected power iteration: a small "scientific application" built on the
// A-ABFT public API — the usage pattern the paper's introduction motivates
// (long-running GPU linear algebra that must not silently produce garbage).
//
//   ./build/examples/protected_power_iteration [n] [iterations] [fault_every]
//
// The dominant eigenvalue of S = A^T A (A random) is estimated by blocked
// power iteration: X_{k+1} = normalise(S * X_k), where X holds a panel of 32
// vectors so each step is a matrix multiplication the A-ABFT multiplier can
// protect. Every `fault_every`-th step a transient fault is injected into
// the GEMM kernel; the run shows that A-ABFT detects and repairs each hit,
// and that the converged Rayleigh quotient matches an unprotected fault-free
// reference run.
#include <cmath>
#include <cstdio>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "fp/fault_vector.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace {

using namespace aabft;
using linalg::Matrix;

/// Normalise every column of x to unit 2-norm.
void normalise_columns(Matrix& x) {
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) norm_sq += x(i, j) * x(i, j);
    const double inv = 1.0 / std::sqrt(norm_sq);
    for (std::size_t i = 0; i < x.rows(); ++i) x(i, j) *= inv;
  }
}

/// Rayleigh quotient of the first column: x0^T S x0 (with S x available).
double rayleigh(const Matrix& x, const Matrix& sx) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    num += x(i, 0) * sx(i, 0);
    den += x(i, 0) * x(i, 0);
  }
  return num / den;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 128;
  std::size_t iterations = 12;
  std::size_t fault_every = 3;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) iterations = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) fault_every = static_cast<std::size_t>(std::atoll(argv[3]));

  Rng rng(2024);
  const Matrix a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  gpusim::Launcher setup_launcher;
  const Matrix s =
      linalg::blocked_matmul(setup_launcher, a.transposed(), a);  // SPD

  // Panel of 32 start vectors (32 = checksum block size, so the panel's
  // column count is already a multiple of BS).
  Matrix x = linalg::uniform_matrix(n, 32, -1.0, 1.0, rng);
  normalise_columns(x);
  Matrix x_ref = x;

  gpusim::Launcher launcher;
  gpusim::FaultController controller;
  launcher.set_fault_controller(&controller);
  abft::AabftConfig config;
  config.bs = 32;
  abft::AabftMultiplier mult(launcher, config);

  std::printf("power iteration on S = A^T A, n=%zu, panel=32, fault every "
              "%zu steps\n\n",
              n, fault_every);

  std::size_t faults_injected = 0;
  std::size_t faults_detected = 0;
  std::size_t faults_corrected = 0;
  double lambda = 0.0;

  for (std::size_t it = 1; it <= iterations; ++it) {
    const bool inject = fault_every > 0 && it % fault_every == 0;
    if (inject) {
      gpusim::FaultConfig fault;
      fault.site = gpusim::FaultSite::kInnerAdd;
      fault.sm_id = static_cast<int>(rng.below(
          static_cast<std::uint64_t>(launcher.device().num_sms)));
      fault.module_id = static_cast<int>(rng.below(16));
      fault.k_injection = static_cast<std::int64_t>(rng.below(n));
      fault.error_vec = fp::make_error_vec(fp::BitField::kExponent, 1, rng);
      controller.arm(fault);
    }

    const auto result = mult.multiply(s, x).value();
    controller.disarm();
    if (inject && controller.fired()) ++faults_injected;

    if (result.error_detected()) ++faults_detected;
    if (!result.corrections.empty() && result.recheck_clean)
      ++faults_corrected;

    lambda = rayleigh(x, result.c);
    x = result.c;
    normalise_columns(x);

    // Fault-free reference step on the host.
    const Matrix sx_ref = linalg::naive_matmul(s, x_ref, false);
    x_ref = sx_ref;
    normalise_columns(x_ref);

    std::printf("step %2zu: lambda ~= %.12g%s%s\n", it, lambda,
                inject ? "  [fault injected]" : "",
                result.error_detected() ? " [detected+corrected]" : "");
  }

  const double drift = x.max_abs_diff(x_ref);
  std::printf("\nfaults that hit an instruction: %zu, detected %zu, corrected "
              "%zu\n(a hit can land on a padded kernel lane and mask itself; "
              "masked faults never\nreach the result and need no detection)\n",
              faults_injected, faults_detected, faults_corrected);
  std::printf("max |protected iterate - fault-free reference| = %.3g\n", drift);
  std::printf("(correction rebuilds elements from checksums, so tiny rounding-"
              "level drift is expected)\n");
  return 0;
}
