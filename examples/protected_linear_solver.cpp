// Protected linear solver: factor A and solve A x = b while transient
// faults strike the O(n^3) trailing updates — the "other operations" the
// paper says A-ABFT extends to, in action.
//
//   ./build/examples/protected_linear_solver [n] [faults]
//
// Every trailing update of the blocked LU runs through the A-ABFT protected
// multiplier; injected faults are detected, localised and corrected (or the
// update is recomputed), and the final solution matches a fault-free solve.
#include <cmath>
#include <cstdio>
#include <vector>

#include "abft/protected_lu.hpp"
#include "core/rng.hpp"
#include "fp/fault_vector.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

int main(int argc, char** argv) {
  using namespace aabft;

  std::size_t n = 128;
  std::size_t num_faults = 3;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) num_faults = static_cast<std::size_t>(std::atoll(argv[2]));

  // A well-conditioned system with a known solution.
  Rng rng(7);
  linalg::Matrix a = linalg::uniform_matrix(n, n, -1.0, 1.0, rng);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];

  // Arm a batch of faults against the protected updates.
  gpusim::Launcher launcher;
  gpusim::FaultController controller;
  launcher.set_fault_controller(&controller);
  std::vector<gpusim::FaultConfig> faults(
      std::min<std::size_t>(num_faults, gpusim::FaultController::kMaxFaults));
  for (auto& fault : faults) {
    fault.site = gpusim::FaultSite::kInnerAdd;
    fault.sm_id = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(launcher.device().num_sms)));
    fault.module_id = static_cast<int>(rng.below(16));
    fault.k_injection = static_cast<std::int64_t>(rng.below(32));
    fault.error_vec = fp::make_error_vec(fp::BitField::kExponent, 2, rng);
  }
  controller.arm_many(faults);

  abft::ProtectedLuConfig config;
  config.panel = 32;
  config.aabft.bs = 32;
  abft::ProtectedLu lu(launcher, config);
  const auto factorisation = lu.factor(a);
  launcher.set_fault_controller(nullptr);

  std::printf("blocked LU of a %zux%zu system under fault injection:\n", n, n);
  std::printf("  protected trailing updates : %zu\n",
              factorisation.protected_updates);
  std::printf("  faults that hit            : %zu\n",
              controller.fired_count());
  std::printf("  updates flagged            : %zu\n",
              factorisation.faults_detected);
  std::printf("  corrections / recomputes   : %zu / %zu\n",
              factorisation.corrections, factorisation.recomputations);
  std::printf("  factorisation ok           : %s\n",
              factorisation.ok ? "yes" : "NO");
  std::printf("  |PA - LU| residual         : %.3e\n",
              abft::ProtectedLu::residual(a, factorisation));

  const auto x = abft::ProtectedLu::solve(factorisation, b);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    worst = std::max(worst, std::fabs(x[i] - x_true[i]));
  std::printf("  |x - x_true| (max)         : %.3e\n", worst);
  return factorisation.ok ? 0 : 1;
}
