// Bound-quality explorer: how tight are the autonomous bounds on *your*
// data?
//
//   ./build/examples/bound_quality_explorer [n] [lo] [hi] [p] [omega]
//
// Multiplies two n x n matrices with uniform entries in [lo, hi), then
// reports, for a sample of checksum elements:
//   * the exact rounding error (Kulisch superaccumulator reference),
//   * the A-ABFT epsilon (probabilistic, p-max based, omega-sigma),
//   * the SEA-ABFT epsilon (norm-based simplified error analysis),
// and the resulting tightness ratios. This is the per-element view behind
// the averages of the paper's Tables II-IV.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "abft/checker.hpp"
#include "abft/encoder.hpp"
#include "abft/upper_bound.hpp"
#include "baselines/sea_abft.hpp"
#include "core/rng.hpp"
#include "fp/exact_dot.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

int main(int argc, char** argv) {
  using namespace aabft;

  std::size_t n = 256;
  double lo = -1.0;
  double hi = 1.0;
  std::size_t p = 2;
  double omega = 3.0;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) lo = std::atof(argv[2]);
  if (argc > 3) hi = std::atof(argv[3]);
  if (argc > 4) p = static_cast<std::size_t>(std::atoll(argv[4]));
  if (argc > 5) omega = std::atof(argv[5]);

  const std::size_t bs = 32;
  Rng rng(7);
  const abft::PartitionedCodec codec(bs);
  gpusim::Launcher launcher;

  const auto a = linalg::uniform_matrix(n, n, lo, hi, rng);
  const auto b = linalg::uniform_matrix(n, n, lo, hi, rng);
  const auto a_cc = abft::encode_columns(launcher, a, codec, p);
  const auto b_rc = abft::encode_rows(launcher, b, codec, p);
  const auto c_fc = linalg::blocked_matmul(launcher, a_cc.data, b_rc.data,
                                           linalg::GemmConfig{});

  abft::BoundParams params;
  params.omega = omega;
  const auto sea =
      baselines::compute_sea_bounds(launcher, a_cc.data, b_rc.data, codec);

  std::printf("n=%zu, inputs U(%g, %g), BS=%zu, p=%zu, omega=%.1f\n\n", n, lo,
              hi, bs, p, omega);
  std::printf("%-28s %12s %12s %12s %9s %9s\n", "checksum element",
              "exact err", "A-ABFT eps", "SEA eps", "A/exact", "SEA/exact");

  double worst_a_ratio = 0.0;
  double sum_exact = 0.0;
  double sum_a = 0.0;
  double sum_sea = 0.0;
  const std::size_t samples = 12;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto block =
        static_cast<std::size_t>(rng.below(c_fc.rows() / (bs + 1)));
    const auto gc = static_cast<std::size_t>(rng.below(c_fc.cols()));
    const std::size_t cs_row = codec.checksum_index(block);

    const auto col = b_rc.data.col(gc);
    const auto exact = fp::exact_dot(a_cc.data.row(cs_row), col);
    const double err = std::fabs(exact.round_minus(c_fc(cs_row, gc)));

    const double y = abft::determine_upper_bound(a_cc.pmax[cs_row],
                                                 b_rc.pmax[gc]);
    const double y_data = a_cc.pmax[cs_row].max_value();  // conservative
    const double eps_a = abft::checksum_epsilon(n, bs, y, y_data, params);
    const double eps_sea = baselines::sea_column_epsilon(sea, codec, block, gc, n);

    char label[64];
    std::snprintf(label, sizeof label, "col-checksum blk %zu, col %zu", block,
                  gc);
    std::printf("%-28s %12.3e %12.3e %12.3e %9.1f %9.1f\n", label, err, eps_a,
                eps_sea, err > 0 ? eps_a / err : 0.0,
                err > 0 ? eps_sea / err : 0.0);
    if (err > 0) worst_a_ratio = std::max(worst_a_ratio, eps_a / err);
    sum_exact += err;
    sum_a += eps_a;
    sum_sea += eps_sea;
  }

  std::printf("\naverages: exact %.3e | A-ABFT %.3e (x%.0f) | SEA %.3e "
              "(x%.0f)\n",
              sum_exact / samples, sum_a / samples, sum_a / sum_exact,
              sum_sea / samples, sum_sea / sum_exact);
  std::printf("The A-ABFT bound stays ~two orders of magnitude tighter than "
              "SEA while never\nundercutting the actual rounding error "
              "(worst A-ABFT/exact ratio here: %.1f).\n",
              worst_a_ratio);
  return 0;
}
