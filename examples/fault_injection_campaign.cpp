// Fault-injection campaign driver: a small CLI around inject::run_campaign.
//
//   ./build/examples/fault_injection_campaign [n] [trials] [site] [field] [bits] [input]
//
//     n       matrix dimension (multiple of 32), default 128
//     trials  injections, default 40
//     site    mul | add | final            (default mul)
//     field   mantissa | exponent | sign   (default mantissa)
//     bits    flipped bits, default 1
//     input   unit | hundred | dynamic     (default unit)
//
// Prints the paired A-ABFT / SEA-ABFT detection outcome per ground-truth
// error class — the experiment behind the paper's Figure 4.
#include <cstdio>
#include <cstring>
#include <string>

#include "gpusim/kernel.hpp"
#include "inject/campaign.hpp"

namespace {

using namespace aabft;

void print_scheme(const char* name, const inject::SchemeDetectionStats& s) {
  std::printf("  %-9s critical %zu/%zu detected", name, s.detected_critical,
              s.critical);
  if (s.has_critical()) std::printf(" (%.1f%%)", s.detection_rate());
  std::printf(", tolerable %zu/%zu flagged, noise %zu/%zu flagged\n",
              s.detected_tolerable, s.tolerable, s.detected_rounding,
              s.rounding_noise);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [n] [trials] [mul|add|final] "
               "[mantissa|exponent|sign] [bits] [unit|hundred|dynamic]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  inject::CampaignConfig config;
  config.n = 128;
  config.trials = 40;
  config.seed = 0xca3;

  if (argc > 1) config.n = static_cast<std::size_t>(std::atoll(argv[1]));
  if (argc > 2) config.trials = static_cast<std::size_t>(std::atoll(argv[2]));
  if (argc > 3) {
    const std::string site = argv[3];
    if (site == "mul") config.site = gpusim::FaultSite::kInnerMul;
    else if (site == "add") config.site = gpusim::FaultSite::kInnerAdd;
    else if (site == "final") config.site = gpusim::FaultSite::kFinalAdd;
    else return usage(argv[0]);
  }
  if (argc > 4) {
    const std::string field = argv[4];
    if (field == "mantissa") config.field = fp::BitField::kMantissa;
    else if (field == "exponent") config.field = fp::BitField::kExponent;
    else if (field == "sign") config.field = fp::BitField::kSign;
    else return usage(argv[0]);
  }
  if (argc > 5) config.num_bits = std::atoi(argv[5]);
  if (argc > 6) {
    const std::string input = argv[6];
    if (input == "unit") config.input = linalg::InputClass::kUnit;
    else if (input == "hundred") config.input = linalg::InputClass::kHundred;
    else if (input == "dynamic") config.input = linalg::InputClass::kDynamic;
    else return usage(argv[0]);
  }
  if (!config.valid()) return usage(argv[0]);

  std::printf("campaign: n=%zu, %zu injections into '%s' (%s, %d bit(s)), "
              "inputs %s\n",
              config.n, config.trials,
              gpusim::to_string(config.site).c_str(),
              fp::to_string(config.field).c_str(), config.num_bits,
              linalg::to_string(config.input).c_str());

  gpusim::Launcher launcher;
  const auto result = inject::run_campaign(launcher, config);

  std::printf("fired %zu/%zu, masked %zu\n", result.fired, result.trials,
              result.masked);
  std::size_t false_positives = 0;
  for (const auto& scheme : result.schemes) {
    print_scheme(scheme.scheme.c_str(), scheme.stats);
    false_positives += scheme.false_positive_runs;
  }
  if (false_positives > 0)
    std::printf("WARNING: false positives on the clean reference run\n");
  return 0;
}
