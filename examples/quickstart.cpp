// Quickstart: protect a matrix multiplication with A-ABFT in ~20 lines.
//
// Build & run:   ./build/examples/quickstart
//
// The example multiplies two random matrices under A-ABFT protection, then
// repeats the multiplication with a fault injected into one floating-point
// instruction of the GEMM kernel and shows the autonomous detection,
// localisation and correction — no calibration, no user-provided bounds.
#include <cstdio>
#include <utility>
#include <vector>

#include "abft/aabft.hpp"
#include "core/rng.hpp"
#include "fp/fault_vector.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/workload.hpp"

int main() {
  using namespace aabft;

  // Inputs: 256 x 256 random doubles in [-1, 1].
  Rng rng(42);
  const auto a = linalg::uniform_matrix(256, 256, -1.0, 1.0, rng);
  const auto b = linalg::uniform_matrix(256, 256, -1.0, 1.0, rng);

  // A protected multiplier: block size 32, p = 2 tracked maxima, 3-sigma
  // confidence bounds — the paper's configuration.
  gpusim::Launcher launcher;
  abft::AabftConfig config;
  config.bs = 32;
  config.p = 2;
  abft::AabftMultiplier mult(launcher, config);

  // 1. Fault-free multiply: the autonomous bounds absorb the rounding noise.
  const auto clean = mult.multiply(a, b).value();
  std::printf("fault-free run : detected=%s (expected: no false positive)\n",
              clean.error_detected() ? "yes" : "no");

  // 2. Same multiply with a transient fault: flip 3 mantissa bits in one
  //    inner-loop multiplication on SM 4.
  gpusim::FaultController controller;
  launcher.set_fault_controller(&controller);
  gpusim::FaultConfig fault;
  fault.site = gpusim::FaultSite::kInnerMul;
  fault.sm_id = 4;
  fault.module_id = 7;
  fault.k_injection = 123;
  fault.error_vec = fp::make_error_vec(fp::BitField::kMantissa, 3, rng);
  controller.arm(fault);

  const auto faulty = mult.multiply(a, b).value();
  launcher.set_fault_controller(nullptr);

  std::printf("faulty run     : injected=%s detected=%s corrections=%zu "
              "recheck-clean=%s\n",
              controller.fired() ? "yes" : "no",
              faulty.error_detected() ? "yes" : "no",
              faulty.corrections.size(),
              faulty.recheck_clean ? "yes" : "no");

  if (!faulty.corrections.empty()) {
    const auto& c = faulty.corrections.front();
    std::printf("localised at   : block (%zu,%zu), element (%zu,%zu): "
                "%.17g -> %.17g\n",
                c.block_row, c.block_col, c.local_row, c.local_col,
                c.old_value, c.new_value);
  }

  // 3. The corrected result matches the fault-free one.
  std::printf("max |corrected - clean| = %.3g\n",
              faulty.c.max_abs_diff(clean.c));

  // 4. Recoverable misuse is an error value, not an exception: a shape
  //    mismatch comes back through the Result<> channel.
  const auto bad = mult.multiply(a, linalg::Matrix(100, 100));
  std::printf("shape mismatch : ok=%s (%s)\n", bad.ok() ? "yes" : "no",
              bad.ok() ? "-" : bad.error().message.c_str());

  // 5. Independent multiplies pipeline across streams of the launcher's
  //    persistent worker pool; results are bit-identical to sequential calls.
  const std::vector<std::pair<linalg::Matrix, linalg::Matrix>> problems = {
      {a, b}, {b, a}};
  const auto batch = mult.multiply_batch(problems);
  std::printf("batch          : %zu problems, all clean=%s\n", batch.size(),
              (batch[0].ok() && batch[1].ok() &&
               !batch[0]->error_detected() && !batch[1]->error_detected())
                  ? "yes"
                  : "no");
  return 0;
}
