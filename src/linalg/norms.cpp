#include "linalg/norms.hpp"

#include <cmath>

namespace aabft::linalg {

double norm2(std::span<const double> v) noexcept {
  double s = 0.0;
  for (const double x : v) s += x * x;
  return std::sqrt(s);
}

std::vector<double> row_norms2(gpusim::Launcher& launcher, const Matrix& a) {
  std::vector<double> out(a.rows(), 0.0);
  launcher.launch("row_norms", gpusim::Dim3{a.rows(), 1, 1},
                  [&](gpusim::BlockCtx& blk) {
                    auto& math = blk.math;
                    const std::size_t r = blk.block.x;
                    const std::size_t n = a.cols();
                    math.load_doubles(n);
                    double s = 0.0;
                    if (!gpusim::force_instrumented()) {
                      // Fenced fast path: vectorizable span sum with the
                      // identical rounding chain to the per-op branch.
                      s = math.sum_squares_strided(a.data() + r * n, n, 1);
                    } else {
                      for (std::size_t c = 0; c < n; ++c) {
                        const double x = a(r, c);
                        s = math.add(s, math.mul(x, x));
                      }
                    }
                    out[r] = std::sqrt(s);
                    math.store_doubles(1);
                  });
  return out;
}

std::vector<double> col_norms2(gpusim::Launcher& launcher, const Matrix& a) {
  std::vector<double> out(a.cols(), 0.0);
  launcher.launch("col_norms", gpusim::Dim3{a.cols(), 1, 1},
                  [&](gpusim::BlockCtx& blk) {
                    auto& math = blk.math;
                    const std::size_t c = blk.block.x;
                    const std::size_t n = a.rows();
                    const std::size_t stride = a.cols();
                    math.load_doubles(n);
                    double s = 0.0;
                    if (!gpusim::force_instrumented()) {
                      s = math.sum_squares_strided(a.data() + c, n, stride);
                    } else {
                      for (std::size_t r = 0; r < n; ++r) {
                        const double x = a(r, c);
                        s = math.add(s, math.mul(x, x));
                      }
                    }
                    out[c] = std::sqrt(s);
                    math.store_doubles(1);
                  });
  return out;
}

}  // namespace aabft::linalg
