// Vector and matrix norms.
//
// SEA-ABFT's bound (Roy-Chowdhury & Banerjee, FTCS'93) is built from 2-norms
// of the rows of A and the columns of B. On the GPU the paper notes these
// norm reductions use "only a small fraction of the available GPU threads";
// we therefore implement them as kernels on the SIMT model (one block per
// vector) so the perf model can charge their real cost with a
// low-utilisation profile, plus plain host variants for tests.
#pragma once

#include <span>
#include <vector>

#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::linalg {

/// Host 2-norm of a vector.
[[nodiscard]] double norm2(std::span<const double> v) noexcept;

/// Kernel: ||row_i||_2 for every row of `a` (one block per row).
[[nodiscard]] std::vector<double> row_norms2(gpusim::Launcher& launcher,
                                             const Matrix& a);

/// Kernel: ||col_j||_2 for every column of `a` (one block per column).
[[nodiscard]] std::vector<double> col_norms2(gpusim::Launcher& launcher,
                                             const Matrix& a);

}  // namespace aabft::linalg
