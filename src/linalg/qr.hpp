// Householder QR factorisation and Haar-distributed random orthogonal
// matrices.
//
// The high-dynamic-range workloads of Tables IV and the fault-injection
// experiments are built as A = 10^alpha * U * D_kappa * V^T (Turmon et al.),
// which requires random orthogonal factors. QR of a Gaussian matrix with the
// R-diagonal sign fix yields exactly Haar measure.
#pragma once

#include <cstddef>

#include "core/rng.hpp"
#include "linalg/matrix.hpp"

namespace aabft::linalg {

struct QrResult {
  Matrix q;  ///< m x m orthogonal
  Matrix r;  ///< m x n upper triangular
};

/// Householder QR: a == q * r, q orthogonal, r upper triangular.
/// Requires rows >= cols.
[[nodiscard]] QrResult householder_qr(const Matrix& a);

/// Haar-distributed random orthogonal n x n matrix (QR of a Gaussian matrix
/// with sign correction).
[[nodiscard]] Matrix random_orthogonal(std::size_t n, Rng& rng);

/// max |(q^T q - I)_ij| — orthogonality defect, used by tests.
[[nodiscard]] double orthogonality_defect(const Matrix& q);

}  // namespace aabft::linalg
