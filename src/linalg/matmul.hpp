// Block-based GEMM on the SIMT execution model — the paper's Algorithm 3.
//
// Each thread block computes a BM x BN tile of C; each thread within the
// block owns an RX x RY register tile of accumulators ("modules" in the
// paper's fault-injection vocabulary); the K dimension is consumed in BK-wide
// panels staged through shared memory. Three floating-point operation sites
// exist, matching Algorithm 3's injection points:
//
//   inner-loop multiplication :  rA * rB
//   inner-loop addition       :  accum += product
//   final sum addition        :  merge of accum into C
//
// With `use_fma` the two inner ops fuse into one FMA (Section IV-D), which
// halves the rounding-error sources — the bound model accounts for that.
//
// Per-op fault/counter instrumentation is fenced: each K-panel first asks
// FaultController::may_fire whether an armed fault can intersect it, and on a
// negative answer runs bit-identical raw row loops with bulk counter updates
// (DESIGN.md §4.9). gpusim::set_force_instrumented(true) restores the
// unconditional per-op path for A/B testing.
#pragma once

#include <cstddef>

#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::linalg {

struct GemmConfig {
  std::size_t bm = 32;   ///< C-tile rows per block
  std::size_t bn = 32;   ///< C-tile columns per block
  std::size_t bk = 8;    ///< K-panel depth staged through shared memory
  std::size_t rx = 4;    ///< per-thread register tile rows
  std::size_t ry = 4;    ///< per-thread register tile columns
  bool use_fma = false;  ///< fuse inner mul+add into FMA

  [[nodiscard]] bool valid() const noexcept {
    return bm > 0 && bn > 0 && bk > 0 && rx > 0 && ry > 0 && bm % rx == 0 &&
           bn % ry == 0;
  }
};

/// C = A * B executed as simulated thread blocks on `launcher`. Handles
/// arbitrary (non-multiple) dimensions via zero padding of shared tiles,
/// like the padded kernels of the paper. Fault injection (if a controller is
/// attached to the launcher) targets the three Algorithm 3 sites.
[[nodiscard]] Matrix blocked_matmul(gpusim::Launcher& launcher, const Matrix& a,
                                    const Matrix& b, const GemmConfig& config = {});

/// Reference host implementation with the same per-element accumulation
/// order (ascending k); produces bitwise-identical results to
/// blocked_matmul in the fault-free case — a key test invariant.
[[nodiscard]] Matrix naive_matmul(const Matrix& a, const Matrix& b,
                                  bool use_fma = false);

/// C = A * B with *pairwise (tree) accumulation* per element — a deliberately
/// different execution path and rounding behaviour than blocked_matmul. The
/// paper notes that realistic TMR "would prefer to use three different
/// kernels with different implementations to ensure different execution
/// paths", which "causes different rounding errors ... which makes the
/// direct comparison of the results impossible"; this kernel provides that
/// diversity for the diverse-TMR baseline. Not a fault-injection target.
[[nodiscard]] Matrix pairwise_matmul(gpusim::Launcher& launcher,
                                     const Matrix& a, const Matrix& b,
                                     std::size_t tile = 32);

}  // namespace aabft::linalg
