#include "linalg/qr.hpp"

#include <cmath>
#include <vector>

#include "core/require.hpp"

namespace aabft::linalg {

QrResult householder_qr(const Matrix& a) {
  AABFT_REQUIRE(a.rows() >= a.cols(), "householder_qr requires rows >= cols");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  Matrix r = a;
  Matrix q(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) q(i, i) = 1.0;

  std::vector<double> v(m);
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k of R below the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += r(i, k) * r(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) continue;  // column already zero below the diagonal

    const double x0 = r(k, k);
    const double alpha = x0 >= 0.0 ? -norm : norm;
    v[k] = x0 - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i] = r(i, k);
    const double v_norm_sq = v[k] * v[k] + (norm_sq - x0 * x0);
    if (v_norm_sq == 0.0) continue;
    const double beta = 2.0 / v_norm_sq;

    // R <- H R  (only columns k..n-1 are affected)
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i] * r(i, j);
      const double scale = beta * dot;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= scale * v[i];
    }
    // Q <- Q H  (accumulate the product of reflections)
    for (std::size_t i = 0; i < m; ++i) {
      double dot = 0.0;
      for (std::size_t j = k; j < m; ++j) dot += q(i, j) * v[j];
      const double scale = beta * dot;
      for (std::size_t j = k; j < m; ++j) q(i, j) -= scale * v[j];
    }
    // Zero the eliminated entries exactly.
    r(k, k) = alpha;
    for (std::size_t i = k + 1; i < m; ++i) r(i, k) = 0.0;
  }

  return {std::move(q), std::move(r)};
}

Matrix random_orthogonal(std::size_t n, Rng& rng) {
  AABFT_REQUIRE(n > 0, "random_orthogonal requires n > 0");
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.normal();
  QrResult qr = householder_qr(g);
  // Sign fix: multiplying column j of Q by sign(R_jj) makes the distribution
  // exactly Haar (Mezzadri, "How to generate random matrices from the
  // classical compact groups", 2007).
  for (std::size_t j = 0; j < n; ++j) {
    if (qr.r(j, j) < 0.0)
      for (std::size_t i = 0; i < n; ++i) qr.q(i, j) = -qr.q(i, j);
  }
  return std::move(qr.q);
}

double orthogonality_defect(const Matrix& q) {
  const std::size_t n = q.rows();
  AABFT_REQUIRE(n == q.cols(), "orthogonality_defect requires a square matrix");
  double defect = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t k = 0; k < n; ++k) dot += q(k, i) * q(k, j);
      const double expect = i == j ? 1.0 : 0.0;
      defect = std::max(defect, std::fabs(dot - expect));
    }
  }
  return defect;
}

}  // namespace aabft::linalg
