// Workload generators for the paper's three input classes:
//
//   1. uniform random values in [-1, 1]            (Tables I, II; Fig. 4)
//   2. uniform random values in [-100, 100]        (Table III; Fig. 4)
//   3. high value-range-dynamic matrices built as
//          A = 10^alpha * U * D_kappa * V^T        (Tables IV; Fig. 4)
//      with U, V random orthogonal and D_kappa a diagonal of log-spaced
//      singular values with condition number kappa (Turmon et al. [27]).
#pragma once

#include <cstddef>
#include <string>

#include "core/rng.hpp"
#include "linalg/matrix.hpp"

namespace aabft::linalg {

/// rows x cols matrix of i.i.d. uniform values in [lo, hi).
[[nodiscard]] Matrix uniform_matrix(std::size_t rows, std::size_t cols,
                                    double lo, double hi, Rng& rng);

struct DynamicRangeParams {
  double alpha = 0.0;     ///< decadic scale factor 10^alpha
  double kappa = 2.0;     ///< spread of the log-spaced diagonal D (1 .. 1/kappa)
  /// Number of Householder reflectors used to realise U and V implicitly.
  /// 0 selects exact Haar factors via full QR — O(n^3), fine for tests and
  /// small sweeps. A positive count applies that many random reflections on
  /// each side — O(reflectors * n^2) — preserving the singular value profile
  /// (orthogonal invariance) at a fraction of the generation cost; this is
  /// the documented substitution used for the large benchmark sweeps.
  std::size_t reflectors = 0;
  /// Turmon et al. [27] prescribe orthogonal U, V (then kappa is exactly the
  /// condition number). The *magnitudes* the paper reports in Table IV,
  /// however, are only consistent with plain random (non-orthogonalised)
  /// factors — uniform U, V in [-1, 1] make |a_ij| grow ~ sqrt(n) and push
  /// the rounding errors three orders above the +-1-uniform case, matching
  /// the published rows. `orthogonal = false` selects that reading; the
  /// bound-quality bench and the campaigns use it (see EXPERIMENTS.md).
  bool orthogonal = true;
};

/// n x n high-dynamic-range matrix per Turmon's construction.
[[nodiscard]] Matrix dynamic_range_matrix(std::size_t n,
                                          const DynamicRangeParams& params,
                                          Rng& rng);

/// The three input classes used across the evaluation, for sweep loops.
enum class InputClass { kUnit, kHundred, kDynamic };

[[nodiscard]] std::string to_string(InputClass c);

/// Dispatch: generate an n x n matrix of the given class (dynamic uses
/// kappa, ignoring it otherwise).
[[nodiscard]] Matrix make_input(InputClass c, std::size_t n, double kappa,
                                Rng& rng);

}  // namespace aabft::linalg
