#include "linalg/workload.hpp"

#include <cmath>
#include <vector>

#include "core/require.hpp"
#include "linalg/qr.hpp"

namespace aabft::linalg {

Matrix uniform_matrix(std::size_t rows, std::size_t cols, double lo, double hi,
                      Rng& rng) {
  AABFT_REQUIRE(lo < hi, "uniform_matrix requires lo < hi");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.uniform(lo, hi);
  return m;
}

namespace {

/// Log-spaced singular values from 1 down to 1/kappa, scaled by 10^alpha.
std::vector<double> singular_values(std::size_t n, double alpha, double kappa) {
  std::vector<double> d(n);
  const double scale = std::pow(10.0, alpha);
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1)
                              : 0.0;
    d[i] = scale * std::pow(kappa, -frac);
  }
  return d;
}

/// Apply a random Householder reflection H = I - 2 v v^T from the left
/// (side == 'L', M <- H M) or from the right (side == 'R', M <- M H).
void apply_random_reflection(Matrix& m, char side, Rng& rng) {
  const std::size_t dim = side == 'L' ? m.rows() : m.cols();
  std::vector<double> v(dim);
  double norm_sq = 0.0;
  for (auto& x : v) {
    x = rng.normal();
    norm_sq += x * x;
  }
  AABFT_ASSERT(norm_sq > 0.0, "degenerate reflection vector");
  const double inv_norm = 1.0 / std::sqrt(norm_sq);
  for (auto& x : v) x *= inv_norm;

  if (side == 'L') {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      double dot = 0.0;
      for (std::size_t i = 0; i < dim; ++i) dot += v[i] * m(i, j);
      const double scale = 2.0 * dot;
      for (std::size_t i = 0; i < dim; ++i) m(i, j) -= scale * v[i];
    }
  } else {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      double dot = 0.0;
      for (std::size_t j = 0; j < dim; ++j) dot += m(i, j) * v[j];
      const double scale = 2.0 * dot;
      for (std::size_t j = 0; j < dim; ++j) m(i, j) -= scale * v[j];
    }
  }
}

}  // namespace

namespace {

/// Cache-friendly host matmul (i-k-j order) for workload construction only.
Matrix host_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

}  // namespace

Matrix dynamic_range_matrix(std::size_t n, const DynamicRangeParams& params,
                            Rng& rng) {
  AABFT_REQUIRE(n > 0, "dynamic_range_matrix requires n > 0");
  AABFT_REQUIRE(params.kappa >= 1.0, "kappa must be >= 1");
  const std::vector<double> d = singular_values(n, params.alpha, params.kappa);

  if (!params.orthogonal) {
    // The paper's (apparent) instantiation: plain random Gaussian factors
    // (the un-orthogonalised inputs of the QR construction). Compute
    // A = U * (D * V^T).
    Matrix u(n, n);
    Matrix dvt(n, n);  // D * V^T
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        u(i, j) = rng.normal();
        dvt(i, j) = d[i] * rng.normal();
      }
    return host_matmul(u, dvt);
  }

  if (params.reflectors == 0) {
    // Exact construction: A = U * D * V^T with Haar U, V.
    const Matrix u = random_orthogonal(n, rng);
    const Matrix v = random_orthogonal(n, rng);
    Matrix a(n, n, 0.0);
    // a = u * diag(d) * v^T computed directly: a_ij = sum_k u_ik d_k v_jk.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < n; ++k) s += u(i, k) * d[k] * v(j, k);
        a(i, j) = s;
      }
    return a;
  }

  // Implicit construction: start from diag(d) and mix with random
  // reflections on both sides. Singular values are preserved exactly.
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a(i, i) = d[i];
  for (std::size_t r = 0; r < params.reflectors; ++r) {
    apply_random_reflection(a, 'L', rng);
    apply_random_reflection(a, 'R', rng);
  }
  return a;
}

std::string to_string(InputClass c) {
  switch (c) {
    case InputClass::kUnit: return "U(-1,1)";
    case InputClass::kHundred: return "U(-100,100)";
    case InputClass::kDynamic: return "dynamic";
  }
  return "?";
}

Matrix make_input(InputClass c, std::size_t n, double kappa, Rng& rng) {
  switch (c) {
    case InputClass::kUnit: return uniform_matrix(n, n, -1.0, 1.0, rng);
    case InputClass::kHundred: return uniform_matrix(n, n, -100.0, 100.0, rng);
    case InputClass::kDynamic: {
      // The evaluation's instantiation (Tables IV / Figure 4): random
      // (non-orthogonal) factors — see DynamicRangeParams::orthogonal.
      DynamicRangeParams params;
      params.kappa = kappa;
      params.orthogonal = false;
      return dynamic_range_matrix(n, params, rng);
    }
  }
  AABFT_ASSERT(false, "unreachable input class");
  return {};
}

}  // namespace aabft::linalg
