#include "linalg/matmul.hpp"

#include <cmath>
#include <vector>

#include "core/require.hpp"
#include "gpusim/fault_site.hpp"

namespace aabft::linalg {

using gpusim::FaultSite;

namespace {

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

Matrix blocked_matmul(gpusim::Launcher& launcher, const Matrix& a,
                      const Matrix& b, const GemmConfig& config) {
  AABFT_REQUIRE(config.valid(), "invalid GEMM configuration");
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  const std::size_t bm = config.bm;
  const std::size_t bn = config.bn;
  const std::size_t bk = config.bk;
  const std::size_t rx = config.rx;
  const std::size_t ry = config.ry;

  Matrix c(m, n, 0.0);

  const gpusim::Dim3 grid{ceil_div(n, bn), ceil_div(m, bm), 1};

  launcher.launch("gemm", grid, [&](gpusim::BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * bm;
    const std::size_t col0 = blk.block.x * bn;

    // Per-thread register tiles for the whole block, laid out as the BM x BN
    // accumulator grid. Element (i, j) belongs to thread (i/rx, j/ry) and is
    // that thread's module (i%rx)*ry + (j%ry).
    std::vector<double> accum(bm * bn, 0.0);
    std::vector<double> sm_a(bm * bk);  // shared memory tile of A
    std::vector<double> sm_b(bk * bn);  // shared memory tile of B
    math.use_shared_doubles(bm * bk + bk * bn);

    // Precomputed module ids to keep modulo arithmetic out of the hot loop.
    std::vector<int> module_row(bm);
    std::vector<int> module_col(bn);
    for (std::size_t i = 0; i < bm; ++i)
      module_row[i] = static_cast<int>((i % rx) * ry);
    for (std::size_t j = 0; j < bn; ++j)
      module_col[j] = static_cast<int>(j % ry);

    const std::size_t num_panels = ceil_div(k_dim, bk);
    for (std::size_t panel = 0; panel < num_panels; ++panel) {
      const std::size_t kbase = panel * bk;

      // Stage the A and B tiles through "shared memory", zero-padding the
      // ragged edges exactly like the padded CUDA kernel.
      for (std::size_t i = 0; i < bm; ++i) {
        const std::size_t gr = row0 + i;
        for (std::size_t kk = 0; kk < bk; ++kk) {
          const std::size_t gk = kbase + kk;
          sm_a[i * bk + kk] = (gr < m && gk < k_dim) ? a(gr, gk) : 0.0;
        }
      }
      for (std::size_t kk = 0; kk < bk; ++kk) {
        const std::size_t gk = kbase + kk;
        for (std::size_t j = 0; j < bn; ++j) {
          const std::size_t gc = col0 + j;
          sm_b[kk * bn + j] = (gk < k_dim && gc < n) ? b(gk, gc) : 0.0;
        }
      }
      math.load_doubles(bm * bk + bk * bn);

      // K-loop: every thread multiplies its rA/rB registers and accumulates.
      for (std::size_t kk = 0; kk < bk; ++kk) {
        const std::size_t gk = kbase + kk;
        if (gk >= k_dim) break;
        const auto k_global = static_cast<std::int64_t>(gk);
        for (std::size_t i = 0; i < bm; ++i) {
          const double av = sm_a[i * bk + kk];
          const int mrow = module_row[i];
          double* acc_row = accum.data() + i * bn;
          const double* b_row = sm_b.data() + kk * bn;
          if (config.use_fma) {
            for (std::size_t j = 0; j < bn; ++j) {
              acc_row[j] = math.faulty_fma(av, b_row[j], acc_row[j],
                                           FaultSite::kInnerAdd,
                                           mrow + module_col[j], k_global);
            }
          } else {
            for (std::size_t j = 0; j < bn; ++j) {
              const int module = mrow + module_col[j];
              const double prod = math.faulty_mul(
                  av, b_row[j], FaultSite::kInnerMul, module, k_global);
              acc_row[j] = math.faulty_add(acc_row[j], prod,
                                           FaultSite::kInnerAdd, module,
                                           k_global);
            }
          }
        }
      }
    }

    // Final merge: accumulators are summed into the (zero-initialised) C
    // tile — the paper's "Final Sum Addition" site.
    std::size_t stored = 0;
    for (std::size_t i = 0; i < bm; ++i) {
      const std::size_t gr = row0 + i;
      if (gr >= m) break;
      for (std::size_t j = 0; j < bn; ++j) {
        const std::size_t gc = col0 + j;
        if (gc >= n) break;
        const int module = module_row[i] + module_col[j];
        c(gr, gc) = math.faulty_add(c(gr, gc), accum[i * bn + j],
                                    FaultSite::kFinalAdd, module, 0);
        ++stored;
      }
    }
    math.store_doubles(stored);
  });

  return c;
}

Matrix pairwise_matmul(gpusim::Launcher& launcher, const Matrix& a,
                       const Matrix& b, std::size_t tile) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  AABFT_REQUIRE(tile > 0, "tile must be positive");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0);

  const gpusim::Dim3 grid{ceil_div(n, tile), ceil_div(m, tile), 1};
  launcher.launch("gemm_pairwise", grid, [&](gpusim::BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * tile;
    const std::size_t col0 = blk.block.x * tile;
    const std::size_t h = std::min(tile, m - row0);
    const std::size_t w = std::min(tile, n - col0);
    math.load_doubles(h * k_dim + k_dim * w);

    std::vector<double> scratch(k_dim);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        for (std::size_t k = 0; k < k_dim; ++k)
          scratch[k] = math.mul(a(row0 + i, k), b(k, col0 + j));
        // Pairwise tree reduction: O(log n) error growth instead of O(n),
        // and a genuinely different rounding sequence.
        std::size_t len = k_dim;
        while (len > 1) {
          const std::size_t half = len / 2;
          for (std::size_t k = 0; k < half; ++k)
            scratch[k] = math.add(scratch[2 * k], scratch[2 * k + 1]);
          if (len % 2 != 0) {
            scratch[half] = scratch[len - 1];
            len = half + 1;
          } else {
            len = half;
          }
        }
        c(row0 + i, col0 + j) = scratch[0];
      }
    }
    math.store_doubles(h * w);
  });
  return c;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b, bool use_fma) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      if (use_fma) {
        for (std::size_t k = 0; k < k_dim; ++k) s = std::fma(a(i, k), b(k, j), s);
      } else {
        for (std::size_t k = 0; k < k_dim; ++k) s += a(i, k) * b(k, j);
      }
      // Final merge into the zero-initialised C, matching the kernel.
      c(i, j) = c(i, j) + s;
    }
  }
  return c;
}

}  // namespace aabft::linalg
