#include "linalg/matmul.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/require.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/hazard.hpp"

namespace aabft::linalg {

using gpusim::FaultSite;

namespace {

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace

Matrix blocked_matmul(gpusim::Launcher& launcher, const Matrix& a,
                      const Matrix& b, const GemmConfig& config) {
  AABFT_REQUIRE(config.valid(), "invalid GEMM configuration");
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  const std::size_t bm = config.bm;
  const std::size_t bn = config.bn;
  const std::size_t bk = config.bk;
  const std::size_t rx = config.rx;
  const std::size_t ry = config.ry;

  Matrix c(m, n, 0.0);

  const gpusim::Dim3 grid{ceil_div(n, bn), ceil_div(m, bm), 1};

  launcher.launch("gemm", grid, [&](gpusim::BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * bm;
    const std::size_t col0 = blk.block.x * bn;

    // Per-thread register tiles for the whole block, laid out as the BM x BN
    // accumulator grid. Element (i, j) belongs to thread (i/rx, j/ry) and is
    // that thread's module (i%rx)*ry + (j%ry).
    std::vector<double> accum(bm * bn, 0.0);
    gpusim::SharedArray<double> sm_a(blk, bm * bk, "sm_a");  // A tile
    gpusim::SharedArray<double> sm_b(blk, bk * bn, "sm_b");  // B tile

    // Hazard model: the block's logical threads are the (bm/rx) x (bn/ry)
    // register-tile owners; thread of C element (i, j) is
    // (i/rx)*(bn/ry) + j/ry. Tile staging is strided over all threads
    // (element e loaded by thread e % T), as in the CUDA kernel.
    const std::size_t thread_cols = bn / ry;
    const int num_threads = static_cast<int>((bm / rx) * thread_cols);
    blk.hazard.set_thread_count(num_threads);

    // Precomputed module ids to keep modulo arithmetic out of the hot loop.
    std::vector<int> module_row(bm);
    std::vector<int> module_col(bn);
    for (std::size_t i = 0; i < bm; ++i)
      module_row[i] = static_cast<int>((i % rx) * ry);
    for (std::size_t j = 0; j < bn; ++j)
      module_col[j] = static_cast<int>(j % ry);

    const int num_modules = static_cast<int>(rx * ry);
    // Module rows hot under a positive panel fence (filled per panel).
    std::vector<char> row_hot(bm, 0);

    const std::size_t num_panels = ceil_div(k_dim, bk);
    for (std::size_t panel = 0; panel < num_panels; ++panel) {
      const std::size_t kbase = panel * bk;

      // Stage the A and B tiles through "shared memory". Full interior tiles
      // copy whole contiguous source rows; ragged edges keep the per-element
      // zero-padding of the padded CUDA kernel.
      if (row0 + bm <= m && kbase + bk <= k_dim) {
        for (std::size_t i = 0; i < bm; ++i)
          std::copy_n(a.data() + (row0 + i) * k_dim + kbase, bk,
                      sm_a.data() + i * bk);
      } else {
        for (std::size_t i = 0; i < bm; ++i) {
          const std::size_t gr = row0 + i;
          for (std::size_t kk = 0; kk < bk; ++kk) {
            const std::size_t gk = kbase + kk;
            sm_a[i * bk + kk] = (gr < m && gk < k_dim) ? a(gr, gk) : 0.0;
          }
        }
      }
      if (kbase + bk <= k_dim && col0 + bn <= n) {
        for (std::size_t kk = 0; kk < bk; ++kk)
          std::copy_n(b.data() + (kbase + kk) * n + col0, bn,
                      sm_b.data() + kk * bn);
      } else {
        for (std::size_t kk = 0; kk < bk; ++kk) {
          const std::size_t gk = kbase + kk;
          for (std::size_t j = 0; j < bn; ++j) {
            const std::size_t gc = col0 + j;
            sm_b[kk * bn + j] = (gk < k_dim && gc < n) ? b(gk, gc) : 0.0;
          }
        }
      }
      math.load_doubles(bm * bk + bk * bn);

      if (blk.hazard.enabled()) {
        // Attribute the staging writes (thread e % T wrote tile element e),
        // then the post-load __syncthreads of the CUDA kernel.
        for (std::size_t e = 0; e < bm * bk; ++e)
          sm_a.note_write(static_cast<int>(e % static_cast<std::size_t>(
                              num_threads)),
                          e);
        for (std::size_t e = 0; e < bk * bn; ++e)
          sm_b.note_write(static_cast<int>(e % static_cast<std::size_t>(
                              num_threads)),
                          e);
        blk.hazard.sync_threads();
      }

      // Fault fence for the panel: can any armed inner-loop fault intersect
      // this block's SM, any module, and this panel's K range? Almost always
      // no — then every inner row runs the raw bulk-counted fast path. On a
      // positive answer, refine to module-row granularity: only rows whose
      // module range contains a pending fault pay the per-op path.
      const std::size_t k_count = std::min(bk, k_dim - kbase);
      const auto k_lo = static_cast<std::int64_t>(kbase);
      const auto k_hi = static_cast<std::int64_t>(kbase + k_count - 1);
      const bool panel_hot =
          math.needs_instrumented(FaultSite::kInnerMul, FaultSite::kInnerAdd,
                                  0, num_modules - 1, k_lo, k_hi);
      if (panel_hot) {
        for (std::size_t i = 0; i < bm; ++i)
          row_hot[i] = math.needs_instrumented(
              FaultSite::kInnerMul, FaultSite::kInnerAdd, module_row[i],
              module_row[i] + static_cast<int>(ry) - 1, k_lo, k_hi);
      }

      // K-loop: every thread multiplies its rA/rB registers and accumulates.
      for (std::size_t kk = 0; kk < k_count; ++kk) {
        const std::size_t gk = kbase + kk;
        const auto k_global = static_cast<std::int64_t>(gk);
        for (std::size_t i = 0; i < bm; ++i) {
          const double av = sm_a[i * bk + kk];
          const int mrow = module_row[i];
          double* acc_row = accum.data() + i * bn;
          const double* b_row = sm_b.data() + kk * bn;
          if (!panel_hot || !row_hot[i]) {
            // Fenced fast path: bit-identical raw loop, bulk counters.
            if (config.use_fma)
              math.fma_row(av, b_row, acc_row, bn);
            else
              math.mul_add_row(av, b_row, acc_row, bn);
          } else if (config.use_fma) {
            for (std::size_t j = 0; j < bn; ++j) {
              acc_row[j] = math.faulty_fma(av, b_row[j], acc_row[j],
                                           FaultSite::kInnerAdd,
                                           mrow + module_col[j], k_global);
            }
          } else {
            for (std::size_t j = 0; j < bn; ++j) {
              const int module = mrow + module_col[j];
              const double prod = math.faulty_mul(
                  av, b_row[j], FaultSite::kInnerMul, module, k_global);
              acc_row[j] = math.faulty_add(acc_row[j], prod,
                                           FaultSite::kInnerAdd, module,
                                           k_global);
            }
          }
        }
      }

      if (blk.hazard.enabled()) {
        // Attribute the compute-phase reads: C element (i, j)'s owner reads
        // sm_a[i*bk + kk] and sm_b[kk*bn + j] for every kk — i.e. each A-tile
        // cell is read by the bn/ry threads of its row group, each B-tile
        // cell by the bm/rx threads of its column group. Then the pre-restage
        // __syncthreads.
        for (std::size_t i = 0; i < bm; ++i) {
          const int trow = static_cast<int>((i / rx) * thread_cols);
          for (std::size_t kk = 0; kk < k_count; ++kk)
            for (std::size_t tc = 0; tc < thread_cols; ++tc)
              sm_a.note_read(trow + static_cast<int>(tc), i * bk + kk);
        }
        for (std::size_t kk = 0; kk < k_count; ++kk) {
          for (std::size_t j = 0; j < bn; ++j) {
            const int tcol = static_cast<int>(j / ry);
            for (std::size_t tr = 0; tr < bm / rx; ++tr)
              sm_b.note_read(static_cast<int>(tr * thread_cols) + tcol,
                             kk * bn + j);
          }
        }
        blk.hazard.sync_threads();
      }
    }

    // Final merge: accumulators are summed into the (zero-initialised) C
    // tile — the paper's "Final Sum Addition" site. Final-add faults fire at
    // k = 0, so one fence covers the whole merge.
    const bool merge_hot = math.needs_instrumented(
        FaultSite::kFinalAdd, FaultSite::kFinalAdd, 0, num_modules - 1, 0, 0);
    std::size_t stored = 0;
    const std::size_t h = row0 < m ? std::min(bm, m - row0) : 0;
    const std::size_t w = col0 < n ? std::min(bn, n - col0) : 0;
    if (!merge_hot) {
      for (std::size_t i = 0; i < h; ++i)
        math.add_rows(c.data() + (row0 + i) * n + col0, accum.data() + i * bn,
                      w);
      stored = h * w;
    } else {
      for (std::size_t i = 0; i < h; ++i) {
        const std::size_t gr = row0 + i;
        for (std::size_t j = 0; j < w; ++j) {
          const std::size_t gc = col0 + j;
          const int module = module_row[i] + module_col[j];
          c(gr, gc) = math.faulty_add(c(gr, gc), accum[i * bn + j],
                                      FaultSite::kFinalAdd, module, 0);
          ++stored;
        }
      }
    }
    math.store_doubles(stored);
  });

  return c;
}

Matrix pairwise_matmul(gpusim::Launcher& launcher, const Matrix& a,
                       const Matrix& b, std::size_t tile) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  AABFT_REQUIRE(tile > 0, "tile must be positive");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0);

  const gpusim::Dim3 grid{ceil_div(n, tile), ceil_div(m, tile), 1};
  launcher.launch("gemm_pairwise", grid, [&](gpusim::BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t row0 = blk.block.y * tile;
    const std::size_t col0 = blk.block.x * tile;
    const std::size_t h = std::min(tile, m - row0);
    const std::size_t w = std::min(tile, n - col0);
    math.load_doubles(h * k_dim + k_dim * w);

    // No injectable sites here (see the header comment), so the raw
    // bulk-counted loop is always safe unless the force-instrumented A/B
    // switch demands the per-op reference path.
    const bool instrumented = gpusim::force_instrumented();
    std::vector<double> scratch(k_dim);
    for (std::size_t i = 0; i < h; ++i) {
      for (std::size_t j = 0; j < w; ++j) {
        if (instrumented) {
          for (std::size_t k = 0; k < k_dim; ++k)
            scratch[k] = math.mul(a(row0 + i, k), b(k, col0 + j));
        } else {
          const double* a_row = a.data() + (row0 + i) * k_dim;
          for (std::size_t k = 0; k < k_dim; ++k)
            scratch[k] = math.canonical(a_row[k] * b(k, col0 + j));
          math.count_muls(k_dim);
        }
        // Pairwise tree reduction: O(log n) error growth instead of O(n),
        // and a genuinely different rounding sequence.
        std::size_t len = k_dim;
        while (len > 1) {
          const std::size_t half = len / 2;
          if (instrumented) {
            for (std::size_t k = 0; k < half; ++k)
              scratch[k] = math.add(scratch[2 * k], scratch[2 * k + 1]);
          } else {
            for (std::size_t k = 0; k < half; ++k)
              scratch[k] = math.canonical(scratch[2 * k] + scratch[2 * k + 1]);
            math.count_adds(half);
          }
          if (len % 2 != 0) {
            scratch[half] = scratch[len - 1];
            len = half + 1;
          } else {
            len = half;
          }
        }
        c(row0 + i, col0 + j) = scratch[0];
      }
    }
    math.store_doubles(h * w);
  });
  return c;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b, bool use_fma) {
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t n = b.cols();
  Matrix c(m, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      if (use_fma) {
        for (std::size_t k = 0; k < k_dim; ++k) s = std::fma(a(i, k), b(k, j), s);
      } else {
        for (std::size_t k = 0; k < k_dim; ++k) s += a(i, k) * b(k, j);
      }
      // Final merge into the zero-initialised C, matching the kernel.
      c(i, j) = c(i, j) + s;
    }
  }
  return c;
}

}  // namespace aabft::linalg
