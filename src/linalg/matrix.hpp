// Dense row-major double-precision matrix.
//
// The whole library works in binary64, like the paper's evaluation; a single
// concrete type keeps the kernels, checksum codecs and reference arithmetic
// simple and fast.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "core/require.hpp"

namespace aabft::linalg {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    AABFT_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access for non-hot paths.
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    AABFT_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    AABFT_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    AABFT_REQUIRE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    AABFT_REQUIRE(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c (columns are strided in row-major storage).
  [[nodiscard]] std::vector<double> col(std::size_t c) const {
    AABFT_REQUIRE(c < cols_, "column index out of range");
    std::vector<double> out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  [[nodiscard]] bool same_shape(const Matrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  /// Bitwise equality (the TMR voter's comparison).
  [[nodiscard]] bool operator==(const Matrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// max_ij |a_ij - b_ij|; shapes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& o) const {
    AABFT_REQUIRE(same_shape(o), "shape mismatch in max_abs_diff");
    double m = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
      m = std::max(m, std::fabs(data_[i] - o.data_[i]));
    return m;
  }

  [[nodiscard]] double max_abs() const noexcept {
    double m = 0.0;
    for (const double v : data_) m = std::max(m, std::fabs(v));
    return m;
  }

  /// Round every element to binary32 (for single-precision pipelines: all
  /// values stay doubles, but become exactly float-representable).
  void round_to_single() noexcept {
    for (auto& v : data_) v = static_cast<double>(static_cast<float>(v));
  }

  /// Copy the rectangle [r0, r0+h) x [c0, c0+w) of `src` into this matrix at
  /// (dr, dc). Fully bounds-checked.
  void paste(const Matrix& src, std::size_t r0, std::size_t c0, std::size_t h,
             std::size_t w, std::size_t dr, std::size_t dc) {
    AABFT_REQUIRE(r0 + h <= src.rows_ && c0 + w <= src.cols_,
                  "paste source rectangle out of range");
    AABFT_REQUIRE(dr + h <= rows_ && dc + w <= cols_,
                  "paste destination rectangle out of range");
    for (std::size_t i = 0; i < h; ++i)
      for (std::size_t j = 0; j < w; ++j)
        (*this)(dr + i, dc + j) = src(r0 + i, c0 + j);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace aabft::linalg
