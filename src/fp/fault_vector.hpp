// Construction of fault (error) vectors per the paper's Section VI-C.
//
// A fault is injected by XOR-ing an `errorVec` bit mask into the binary64
// result of a floating-point instruction. The paper targets all three fields
// of the number — sign, exponent, mantissa — with either a single bit flip or
// a multi-bit flip with "neighbourhood characteristics": two bit positions
// are chosen at random and the remaining flips are placed randomly between
// them.
#pragma once

#include <cstdint>
#include <string>

#include "core/rng.hpp"

namespace aabft::fp {

/// Which field of the IEEE-754 double an injection targets.
enum class BitField { kSign, kExponent, kMantissa };

[[nodiscard]] std::string to_string(BitField field);

/// Width in bits of a field (sign 1, exponent 11, mantissa 52).
[[nodiscard]] int field_width(BitField field) noexcept;

/// Lowest bit index of a field within the 64-bit pattern.
[[nodiscard]] int field_offset(BitField field) noexcept;

/// Build an error vector with exactly `num_bits` set bits inside `field`.
///
/// num_bits == 1: one uniformly random position in the field.
/// num_bits >= 2: the paper's neighbourhood construction — two endpoint bits
/// at random positions, the remaining num_bits-2 flips at distinct random
/// positions strictly between them.
///
/// Requires 1 <= num_bits <= field_width(field).
[[nodiscard]] std::uint64_t make_error_vec(BitField field, int num_bits,
                                           Rng& rng);

/// Number of set bits inside a given field of an error vector (test helper).
[[nodiscard]] int popcount_in_field(std::uint64_t error_vec, BitField field) noexcept;

/// binary32 variants, for single-precision pipelines (gpusim::Precision::
/// kSingle): field geometry of a float (sign bit 31, 8 exponent bits,
/// 23 mantissa bits). The returned mask lives in the low 32 bits.
[[nodiscard]] int field_width32(BitField field) noexcept;
[[nodiscard]] int field_offset32(BitField field) noexcept;
[[nodiscard]] std::uint64_t make_error_vec32(BitField field, int num_bits,
                                             Rng& rng);

}  // namespace aabft::fp
