// IEEE-754 binary64 bit-level utilities.
//
// The probabilistic rounding-error model (paper Section IV) and the fault
// model (Section VI-C / Algorithm 3) both operate on the bit layout of
// doubles: the model needs exponents of intermediate results (Eq. 13), the
// fault model XORs error vectors into the sign / exponent / mantissa fields.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "core/require.hpp"

namespace aabft::fp {

inline constexpr int kMantissaBits = 52;   ///< explicit fraction bits of binary64
inline constexpr int kExponentBits = 11;
inline constexpr int kExponentBias = 1023;
inline constexpr std::uint64_t kSignMask = 0x8000'0000'0000'0000ULL;
inline constexpr std::uint64_t kExponentMask = 0x7ff0'0000'0000'0000ULL;
inline constexpr std::uint64_t kFractionMask = 0x000f'ffff'ffff'ffffULL;

/// `t` in the paper's notation: number of mantissa bits used by the rounding
/// error model, 2^-t being the unit roundoff scale for binary64.
inline constexpr int kPaperT = 52;

[[nodiscard]] inline std::uint64_t to_bits(double x) noexcept {
  return std::bit_cast<std::uint64_t>(x);
}

[[nodiscard]] inline double from_bits(std::uint64_t b) noexcept {
  return std::bit_cast<double>(b);
}

[[nodiscard]] inline bool sign_bit(double x) noexcept {
  return (to_bits(x) & kSignMask) != 0;
}

/// Raw biased exponent field (0 for zero/subnormal, 2047 for inf/nan).
[[nodiscard]] inline int biased_exponent(double x) noexcept {
  return static_cast<int>((to_bits(x) & kExponentMask) >> kMantissaBits);
}

[[nodiscard]] inline std::uint64_t fraction_field(double x) noexcept {
  return to_bits(x) & kFractionMask;
}

/// Decomposition of a finite double into integer significand and power of
/// two: value == sign * significand * 2^exponent with significand < 2^53.
struct Decomposed {
  bool negative = false;
  std::uint64_t significand = 0;  ///< includes the implicit leading 1 if normal
  int exponent = 0;               ///< power-of-two weight of significand bit 0
};

[[nodiscard]] inline Decomposed decompose(double x) {
  AABFT_REQUIRE(std::isfinite(x), "decompose requires a finite double");
  Decomposed d;
  d.negative = sign_bit(x);
  const int be = biased_exponent(x);
  const std::uint64_t frac = fraction_field(x);
  if (be == 0) {  // zero or subnormal
    d.significand = frac;
    d.exponent = 1 - kExponentBias - kMantissaBits;  // == -1074
  } else {
    d.significand = frac | (1ULL << kMantissaBits);
    d.exponent = be - kExponentBias - kMantissaBits;
  }
  return d;
}

/// Paper Eq. (13): E = ceil(log2|s*|). Exact, via bit inspection (no libm
/// rounding concerns). Requires s != 0 and finite.
[[nodiscard]] inline int ceil_log2_abs(double x) {
  AABFT_REQUIRE(std::isfinite(x) && x != 0.0,
                "ceil_log2_abs requires finite non-zero input");
  const Decomposed d = decompose(x);
  // significand in [1, 2^53); find its MSB position.
  const int msb = 63 - std::countl_zero(d.significand);
  // |x| = significand * 2^exponent; 2^(msb+exponent) <= |x| < 2^(msb+1+exponent).
  const int floor_log2 = msb + d.exponent;
  // ceil(log2|x|) == floor_log2 when |x| is an exact power of two, else +1.
  const bool power_of_two = (d.significand & (d.significand - 1)) == 0;
  return power_of_two ? floor_log2 : floor_log2 + 1;
}

/// Unit in the last place of x (distance to the next representable double of
/// larger magnitude). Finite non-zero x only.
[[nodiscard]] inline double ulp(double x) {
  AABFT_REQUIRE(std::isfinite(x), "ulp requires a finite double");
  const double ax = std::fabs(x);
  const double next = std::nextafter(ax, std::numeric_limits<double>::infinity());
  return next - ax;
}

/// XOR an error mask into the bit pattern of a double — the paper's fault
/// injection primitive (dataVec ^ errorVec).
[[nodiscard]] inline double xor_bits(double x, std::uint64_t error_vec) noexcept {
  return from_bits(to_bits(x) ^ error_vec);
}

}  // namespace aabft::fp
