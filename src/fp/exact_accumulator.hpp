// Kulisch-style exact fixed-point superaccumulator for binary64.
//
// This replaces the paper's GMP reference arithmetic: a dot product of
// doubles is accumulated *exactly* (every addend is a double or an exact
// product split into two doubles via an error-free transformation), so the
// "actual rounding error" columns of Tables II-IV can be computed bit-exactly
// rather than at some finite GMP precision.
//
// Representation: a 2176-bit two's-complement fixed-point number whose bit k
// carries weight 2^(k-1074). Bit 0 therefore aligns with the smallest
// positive subnormal double, and the largest finite double (< 2^1024) sets
// bits up to index 2097. The remaining ~78 high-order bits are carry
// headroom: more than 2^60 accumulated doubles are required to overflow,
// far beyond any workload in this repository.
#pragma once

#include <array>
#include <cstdint>

namespace aabft::fp {

class ExactAccumulator {
 public:
  static constexpr int kLimbs = 34;       ///< 34 × 64 = 2176 bits
  static constexpr int kBias = 1074;      ///< bit k weighs 2^(k - kBias)

  ExactAccumulator() = default;

  /// Add a double exactly. Infinities/NaN are rejected via AABFT_REQUIRE.
  void add(double x);

  /// Subtract a double exactly.
  void sub(double x);

  /// Add the exact (unrounded) product a*b using TwoProdFMA.
  void add_product(double a, double b);

  /// Subtract the exact product a*b.
  void sub_product(double a, double b);

  /// Accumulate another accumulator (exact).
  ExactAccumulator& operator+=(const ExactAccumulator& other) noexcept;

  /// Negate in place (two's complement).
  void negate() noexcept;

  void clear() noexcept { limbs_.fill(0); }

  [[nodiscard]] bool is_zero() const noexcept;

  /// Sign of the exact value: -1, 0, +1.
  [[nodiscard]] int sign() const noexcept;

  /// Three-way comparison of exact values.
  [[nodiscard]] int compare(const ExactAccumulator& other) const noexcept;

  /// Round the exact value to the nearest double (ties to even). Values
  /// beyond the finite double range return +/-infinity.
  [[nodiscard]] double round_to_double() const noexcept;

  /// Convenience: round(exact_value - x) — the correctly rounded difference
  /// between the exact value held here and a computed double, i.e. the exact
  /// rounding error of `x` as an approximation of this accumulator.
  [[nodiscard]] double round_minus(double x) const;

  /// Raw limb access for tests (little-endian, two's complement).
  [[nodiscard]] const std::array<std::uint64_t, kLimbs>& limbs() const noexcept {
    return limbs_;
  }

 private:
  void add_shifted(std::uint64_t significand, int shift, bool negative) noexcept;

  std::array<std::uint64_t, kLimbs> limbs_{};  // value-initialised to zero
};

}  // namespace aabft::fp
