// Error-free transformations (EFTs) for IEEE-754 doubles.
//
// These are the building blocks of the exact reference arithmetic that
// replaces the paper's GMP usage: a rounded operation plus its exact rounding
// error, both representable as doubles.
//
//   two_sum(a, b)      : a + b  == s + e   exactly (Knuth / Møller)
//   fast_two_sum(a, b) : same, requires |a| >= |b| (Dekker)
//   two_prod_fma(a, b) : a * b  == p + e   exactly (uses hardware FMA)
//   two_prod(a, b)     : FMA-free variant via Dekker splitting
//
// References: Ogita, Rump, Oishi, "Accurate sum and dot product", SISC 2005.
#pragma once

#include <cmath>

namespace aabft::fp {

/// Result of an error-free transformation: `value` is the rounded result,
/// `error` the exact residual, so that the exact answer is value + error.
struct Eft {
  double value = 0.0;
  double error = 0.0;
};

/// Knuth's TwoSum: 6 flops, no branch, no magnitude precondition.
[[nodiscard]] inline Eft two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bp = s - a;
  const double ap = s - bp;
  const double db = b - bp;
  const double da = a - ap;
  return {s, da + db};
}

/// Dekker's FastTwoSum: 3 flops, requires |a| >= |b| (or a == 0).
[[nodiscard]] inline Eft fast_two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double e = b - (s - a);
  return {s, e};
}

/// Dekker split: x == hi + lo with hi, lo each holding at most 26 significant
/// bits, enabling exact double-length products without FMA.
struct Split {
  double hi = 0.0;
  double lo = 0.0;
};

[[nodiscard]] inline Split split(double x) noexcept {
  constexpr double kSplitter = 134217729.0;  // 2^27 + 1
  const double c = kSplitter * x;
  const double hi = c - (c - x);
  return {hi, x - hi};
}

/// TwoProd via FMA: p = fl(a*b), e = fma(a, b, -p) is the exact error.
[[nodiscard]] inline Eft two_prod_fma(double a, double b) noexcept {
  const double p = a * b;
  const double e = std::fma(a, b, -p);
  return {p, e};
}

/// Dekker/Veltkamp TwoProd without FMA (17 flops). Kept as an independent
/// implementation for cross-checking the FMA path in tests; overflows the
/// split for |x| >~ 2^996, which our workloads never approach.
[[nodiscard]] inline Eft two_prod(double a, double b) noexcept {
  const double p = a * b;
  const Split as = split(a);
  const Split bs = split(b);
  const double e =
      ((as.hi * bs.hi - p) + as.hi * bs.lo + as.lo * bs.hi) + as.lo * bs.lo;
  return {p, e};
}

}  // namespace aabft::fp
