#include "fp/fault_vector.hpp"

#include <bit>

#include "core/require.hpp"
#include "fp/bits.hpp"

namespace aabft::fp {

std::string to_string(BitField field) {
  switch (field) {
    case BitField::kSign: return "sign";
    case BitField::kExponent: return "exponent";
    case BitField::kMantissa: return "mantissa";
  }
  return "?";
}

int field_width(BitField field) noexcept {
  switch (field) {
    case BitField::kSign: return 1;
    case BitField::kExponent: return kExponentBits;
    case BitField::kMantissa: return kMantissaBits;
  }
  return 0;
}

int field_offset(BitField field) noexcept {
  switch (field) {
    case BitField::kSign: return 63;
    case BitField::kExponent: return kMantissaBits;
    case BitField::kMantissa: return 0;
  }
  return 0;
}

int field_width32(BitField field) noexcept {
  switch (field) {
    case BitField::kSign: return 1;
    case BitField::kExponent: return 8;
    case BitField::kMantissa: return 23;
  }
  return 0;
}

int field_offset32(BitField field) noexcept {
  switch (field) {
    case BitField::kSign: return 31;
    case BitField::kExponent: return 23;
    case BitField::kMantissa: return 0;
  }
  return 0;
}

namespace {

std::uint64_t make_error_vec_impl(int width, int offset, int num_bits,
                                  Rng& rng) {
  AABFT_REQUIRE(num_bits >= 1 && num_bits <= width,
                "num_bits must fit inside the targeted field");

  if (num_bits == 1) {
    const int pos = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
    return 1ULL << (offset + pos);
  }

  // Neighbourhood construction: endpoints lo < hi with enough room between
  // them for the remaining num_bits - 2 flips.
  int lo = 0;
  int hi = 0;
  do {
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
    const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
    lo = std::min(a, b);
    hi = std::max(a, b);
  } while (hi - lo - 1 < num_bits - 2 || lo == hi);

  std::uint64_t vec = (1ULL << lo) | (1ULL << hi);
  int placed = 2;
  while (placed < num_bits) {
    const int pos =
        lo + 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(hi - lo - 1)));
    const std::uint64_t bit = 1ULL << pos;
    if ((vec & bit) == 0) {
      vec |= bit;
      ++placed;
    }
  }
  return vec << offset;
}

}  // namespace

std::uint64_t make_error_vec(BitField field, int num_bits, Rng& rng) {
  return make_error_vec_impl(field_width(field), field_offset(field), num_bits,
                             rng);
}

std::uint64_t make_error_vec32(BitField field, int num_bits, Rng& rng) {
  return make_error_vec_impl(field_width32(field), field_offset32(field),
                             num_bits, rng);
}

int popcount_in_field(std::uint64_t error_vec, BitField field) noexcept {
  const int width = field_width(field);
  const int offset = field_offset(field);
  const std::uint64_t mask =
      width == 64 ? ~0ULL : (((1ULL << width) - 1) << offset);
  return std::popcount(error_vec & mask);
}

}  // namespace aabft::fp
