// Exact dot products and rounding-error references.
//
// These functions produce the "actual rounding error" baselines of the
// paper's Tables II-IV: the exact value of an inner product (computed in the
// Kulisch superaccumulator, hence bit-exact) compared against the value a
// floating-point kernel actually produced.
#pragma once

#include <span>

#include "fp/exact_accumulator.hpp"

namespace aabft::fp {

/// Exact value of sum_i a[i] * b[i], held in a superaccumulator.
[[nodiscard]] ExactAccumulator exact_dot(std::span<const double> a,
                                         std::span<const double> b);

/// Exact value of sum_i a[i].
[[nodiscard]] ExactAccumulator exact_sum(std::span<const double> a);

/// Correctly rounded exact dot product.
[[nodiscard]] double exact_dot_rounded(std::span<const double> a,
                                       std::span<const double> b);

/// |computed - exact(a.b)| — the actual absolute rounding error of a
/// floating-point evaluation `computed` of the inner product a.b.
[[nodiscard]] double rounding_error_of_dot(std::span<const double> a,
                                           std::span<const double> b,
                                           double computed);

/// |computed - exact(sum a)| for plain summations (checksum encodes).
[[nodiscard]] double rounding_error_of_sum(std::span<const double> a,
                                           double computed);

/// Plain recursive (left-to-right) floating-point evaluations, used when a
/// test needs "what the naive kernel would compute" on the host.
[[nodiscard]] double fp_dot(std::span<const double> a, std::span<const double> b,
                            bool use_fma) noexcept;
[[nodiscard]] double fp_sum(std::span<const double> a) noexcept;

}  // namespace aabft::fp
