#include "fp/exact_dot.hpp"

#include <cmath>

#include "core/require.hpp"

namespace aabft::fp {

ExactAccumulator exact_dot(std::span<const double> a, std::span<const double> b) {
  AABFT_REQUIRE(a.size() == b.size(), "exact_dot requires equal lengths");
  ExactAccumulator acc;
  for (std::size_t i = 0; i < a.size(); ++i) acc.add_product(a[i], b[i]);
  return acc;
}

ExactAccumulator exact_sum(std::span<const double> a) {
  ExactAccumulator acc;
  for (const double x : a) acc.add(x);
  return acc;
}

double exact_dot_rounded(std::span<const double> a, std::span<const double> b) {
  return exact_dot(a, b).round_to_double();
}

double rounding_error_of_dot(std::span<const double> a,
                             std::span<const double> b, double computed) {
  return std::fabs(exact_dot(a, b).round_minus(computed));
}

double rounding_error_of_sum(std::span<const double> a, double computed) {
  return std::fabs(exact_sum(a).round_minus(computed));
}

double fp_dot(std::span<const double> a, std::span<const double> b,
              bool use_fma) noexcept {
  double s = 0.0;
  if (use_fma) {
    for (std::size_t i = 0; i < a.size(); ++i) s = std::fma(a[i], b[i], s);
  } else {
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  }
  return s;
}

double fp_sum(std::span<const double> a) noexcept {
  double s = 0.0;
  for (const double x : a) s += x;
  return s;
}

}  // namespace aabft::fp
