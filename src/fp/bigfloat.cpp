#include "fp/bigfloat.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "core/require.hpp"
#include "fp/bits.hpp"

namespace aabft::fp {

BigFloat BigFloat::from_double(double x) {
  AABFT_REQUIRE(std::isfinite(x), "BigFloat::from_double requires finite input");
  BigFloat out;
  if (x == 0.0) return out;
  const Decomposed d = decompose(x);
  out.negative_ = d.negative;
  out.exponent_ = d.exponent;
  out.magnitude_ = {d.significand};
  out.normalize();
  return out;
}

void BigFloat::normalize() {
  while (!magnitude_.empty() && magnitude_.back() == 0) magnitude_.pop_back();
  if (magnitude_.empty()) {
    negative_ = false;
    exponent_ = 0;
    return;
  }
  // Strip trailing zero limbs into the exponent to keep magnitudes small.
  std::size_t zero_limbs = 0;
  while (zero_limbs < magnitude_.size() && magnitude_[zero_limbs] == 0)
    ++zero_limbs;
  if (zero_limbs > 0) {
    magnitude_.erase(magnitude_.begin(),
                     magnitude_.begin() + static_cast<std::ptrdiff_t>(zero_limbs));
    exponent_ += static_cast<std::int64_t>(zero_limbs) * 64;
  }
}

int BigFloat::mag_compare(const std::vector<std::uint64_t>& a,
                          const std::vector<std::uint64_t>& b) noexcept {
  // Leading zero limbs (produced by shifts) must not influence the order.
  auto effective = [](const std::vector<std::uint64_t>& v) {
    std::size_t n = v.size();
    while (n > 0 && v[n - 1] == 0) --n;
    return n;
  };
  const std::size_t ea = effective(a);
  const std::size_t eb = effective(b);
  if (ea != eb) return ea < eb ? -1 : 1;
  for (std::size_t i = ea; i-- > 0;)
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  return 0;
}

std::vector<std::uint64_t> BigFloat::mag_add(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<std::uint64_t> out(longer.size() + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < longer.size(); ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(longer[i]) +
        (i < shorter.size() ? shorter[i] : 0) + carry;
    out[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  out[longer.size()] = carry;
  return out;
}

std::vector<std::uint64_t> BigFloat::mag_sub(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  AABFT_ASSERT(mag_compare(a, b) >= 0, "mag_sub requires a >= b");
  std::vector<std::uint64_t> out(a.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t bi = (i < b.size() ? b[i] : 0);
    const std::uint64_t sub = bi + borrow;
    // sub overflows to 0 only when bi == ~0 and borrow == 1; then the
    // subtraction of 2^64 is exactly the borrow itself.
    if (sub == 0 && borrow == 1) {
      out[i] = a[i];
      borrow = 1;
      continue;
    }
    out[i] = a[i] - sub;
    borrow = a[i] < sub ? 1 : 0;
  }
  AABFT_ASSERT(borrow == 0, "mag_sub underflow");
  return out;
}

std::vector<std::uint64_t> BigFloat::mag_mul(
    const std::vector<std::uint64_t>& a, const std::vector<std::uint64_t>& b) {
  std::vector<std::uint64_t> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(out[k]) + carry;
      out[k] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
      ++k;
    }
  }
  return out;
}

std::vector<std::uint64_t> BigFloat::mag_shift_left(
    const std::vector<std::uint64_t>& a, std::int64_t bits) {
  AABFT_ASSERT(bits >= 0, "mag_shift_left requires non-negative shift");
  if (a.empty() || bits == 0) return a;
  const auto limb_shift = static_cast<std::size_t>(bits / 64);
  const int bit_shift = static_cast<int>(bits % 64);
  std::vector<std::uint64_t> out(a.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i + limb_shift] |= bit_shift ? (a[i] << bit_shift) : a[i];
    if (bit_shift != 0) out[i + limb_shift + 1] |= a[i] >> (64 - bit_shift);
  }
  return out;
}

BigFloat::Aligned BigFloat::align(const BigFloat& rhs) const {
  Aligned out;
  out.exponent = std::min(exponent_, rhs.exponent_);
  out.a = mag_shift_left(magnitude_, exponent_ - out.exponent);
  out.b = mag_shift_left(rhs.magnitude_, rhs.exponent_ - out.exponent);
  return out;
}

BigFloat BigFloat::operator-() const {
  BigFloat out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigFloat BigFloat::operator+(const BigFloat& rhs) const {
  if (is_zero()) return rhs;
  if (rhs.is_zero()) return *this;
  Aligned al = align(rhs);
  BigFloat out;
  out.exponent_ = al.exponent;
  if (negative_ == rhs.negative_) {
    out.magnitude_ = mag_add(al.a, al.b);
    out.negative_ = negative_;
  } else {
    const int cmp = mag_compare(al.a, al.b);
    if (cmp == 0) return BigFloat{};
    if (cmp > 0) {
      out.magnitude_ = mag_sub(al.a, al.b);
      out.negative_ = negative_;
    } else {
      out.magnitude_ = mag_sub(al.b, al.a);
      out.negative_ = rhs.negative_;
    }
  }
  out.normalize();
  return out;
}

BigFloat BigFloat::operator-(const BigFloat& rhs) const { return *this + (-rhs); }

BigFloat BigFloat::operator*(const BigFloat& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigFloat{};
  BigFloat out;
  out.negative_ = negative_ != rhs.negative_;
  out.exponent_ = exponent_ + rhs.exponent_;
  out.magnitude_ = mag_mul(magnitude_, rhs.magnitude_);
  out.normalize();
  return out;
}

int BigFloat::compare(const BigFloat& rhs) const {
  const BigFloat diff = *this - rhs;
  return diff.sign();
}

BigFloat BigFloat::abs() const {
  BigFloat out = *this;
  out.negative_ = false;
  return out;
}

double BigFloat::to_double() const noexcept {
  if (is_zero()) return 0.0;

  // MSB position relative to magnitude bit 0.
  const std::size_t top = magnitude_.size() - 1;
  const int top_bit = 63 - std::countl_zero(magnitude_.back());
  const std::int64_t msb = static_cast<std::int64_t>(top) * 64 + top_bit;

  // Absolute weight of the MSB: exponent_ + msb. A double keeps 53 bits, or
  // fewer in the subnormal range (lsb weight floor is 2^-1074).
  const std::int64_t msb_weight = exponent_ + msb;
  if (msb_weight > 1024)  // certainly overflows (2^1024 > DBL_MAX)
    return negative_ ? -std::numeric_limits<double>::infinity()
                     : std::numeric_limits<double>::infinity();
  std::int64_t lsb_weight = std::max<std::int64_t>(msb_weight - 52, -1074);
  std::int64_t lsb = lsb_weight - exponent_;  // may be negative (pad zeros)

  auto get_bit = [this](std::int64_t bit) -> unsigned {
    if (bit < 0) return 0;
    const auto limb = static_cast<std::size_t>(bit / 64);
    if (limb >= magnitude_.size()) return 0;
    return static_cast<unsigned>((magnitude_[limb] >> (bit % 64)) & 1U);
  };

  std::uint64_t significand = 0;
  for (std::int64_t bit = msb; bit >= lsb; --bit)
    significand = (significand << 1) | get_bit(bit);

  // Round to nearest, ties to even.
  const unsigned guard = get_bit(lsb - 1);
  if (guard) {
    bool sticky = false;
    for (std::int64_t bit = lsb - 2; bit >= 0 && !sticky; --bit)
      sticky = get_bit(bit) != 0;
    if (sticky || (significand & 1U)) ++significand;
  }
  if (significand == (1ULL << 53)) {
    significand >>= 1;
    ++lsb_weight;
  }

  const double mag =
      std::ldexp(static_cast<double>(significand), static_cast<int>(lsb_weight));
  return negative_ ? -mag : mag;
}

std::string BigFloat::to_string() const {
  if (is_zero()) return "0";
  std::ostringstream os;
  if (negative_) os << '-';
  os << "0x";
  for (std::size_t i = magnitude_.size(); i-- > 0;) {
    char buf[17];
    std::snprintf(buf, sizeof buf, i + 1 == magnitude_.size() ? "%llx" : "%016llx",
                  static_cast<unsigned long long>(magnitude_[i]));
    os << buf;
  }
  os << " * 2^" << exponent_;
  return os.str();
}

}  // namespace aabft::fp
