// Exact dyadic (base-2 rational) arithmetic.
//
// BigFloat represents sign * magnitude * 2^exponent with an arbitrary-size
// magnitude, and performs addition and multiplication *exactly* — no
// rounding, ever. It is the second, independent implementation of the exact
// reference arithmetic (the first being ExactAccumulator); the two are
// cross-checked against each other in the test suite, standing in for the
// paper's GMP-based reference.
//
// Complexity is irrelevant here (schoolbook multiply, linear add): BigFloat
// is a verification oracle, never on a measured path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aabft::fp {

class BigFloat {
 public:
  /// Zero.
  BigFloat() = default;

  /// Exact conversion from a finite double.
  static BigFloat from_double(double x);

  [[nodiscard]] bool is_zero() const noexcept { return magnitude_.empty(); }
  [[nodiscard]] int sign() const noexcept {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  [[nodiscard]] BigFloat operator-() const;
  [[nodiscard]] BigFloat operator+(const BigFloat& rhs) const;
  [[nodiscard]] BigFloat operator-(const BigFloat& rhs) const;
  [[nodiscard]] BigFloat operator*(const BigFloat& rhs) const;

  BigFloat& operator+=(const BigFloat& rhs) { return *this = *this + rhs; }
  BigFloat& operator-=(const BigFloat& rhs) { return *this = *this - rhs; }
  BigFloat& operator*=(const BigFloat& rhs) { return *this = *this * rhs; }

  /// Exact three-way comparison: -1, 0, +1.
  [[nodiscard]] int compare(const BigFloat& rhs) const;
  [[nodiscard]] bool operator==(const BigFloat& rhs) const {
    return compare(rhs) == 0;
  }

  [[nodiscard]] BigFloat abs() const;

  /// Round to the nearest double, ties to even. Saturates to +/-infinity.
  [[nodiscard]] double to_double() const noexcept;

  /// Hex-ish debug rendering: "-0x<limbs> * 2^<exp>".
  [[nodiscard]] std::string to_string() const;

 private:
  // Invariants: magnitude_ empty <=> value is zero (then negative_ == false,
  // exponent_ == 0). Otherwise top limb non-zero; value ==
  // (-1)^negative * (sum_i magnitude_[i] * 2^(64 i)) * 2^exponent_.
  void normalize();

  static std::vector<std::uint64_t> mag_add(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  // Requires a >= b.
  static std::vector<std::uint64_t> mag_sub(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  static int mag_compare(const std::vector<std::uint64_t>& a,
                         const std::vector<std::uint64_t>& b) noexcept;
  static std::vector<std::uint64_t> mag_mul(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mag_shift_left(
      const std::vector<std::uint64_t>& a, std::int64_t bits);

  /// Align *this and rhs to a common exponent, returning the shifted
  /// magnitudes and that exponent.
  struct Aligned {
    std::vector<std::uint64_t> a;
    std::vector<std::uint64_t> b;
    std::int64_t exponent;
  };
  [[nodiscard]] Aligned align(const BigFloat& rhs) const;

  bool negative_ = false;
  std::int64_t exponent_ = 0;              // weight of magnitude bit 0
  std::vector<std::uint64_t> magnitude_;   // little-endian limbs
};

}  // namespace aabft::fp
