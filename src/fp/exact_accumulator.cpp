#include "fp/exact_accumulator.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "core/require.hpp"
#include "fp/bits.hpp"
#include "fp/eft.hpp"

namespace aabft::fp {

namespace {

// Negate a two's-complement limb array in place.
void negate_limbs(std::array<std::uint64_t, ExactAccumulator::kLimbs>& limbs) noexcept {
  std::uint64_t carry = 1;
  for (auto& limb : limbs) {
    const std::uint64_t inverted = ~limb;
    limb = inverted + carry;
    carry = (carry != 0 && limb == 0) ? 1 : 0;
  }
}

}  // namespace

void ExactAccumulator::add_shifted(std::uint64_t significand, int shift,
                                   bool negative) noexcept {
  if (significand == 0) return;
  const int limb_index = shift / 64;
  const int offset = shift % 64;
  const std::uint64_t lo = significand << offset;
  const std::uint64_t hi = offset != 0 ? (significand >> (64 - offset)) : 0;

  if (!negative) {
    unsigned __int128 acc =
        static_cast<unsigned __int128>(limbs_[limb_index]) + lo;
    limbs_[limb_index] = static_cast<std::uint64_t>(acc);
    std::uint64_t carry = static_cast<std::uint64_t>(acc >> 64);
    acc = static_cast<unsigned __int128>(limbs_[limb_index + 1]) + hi + carry;
    limbs_[limb_index + 1] = static_cast<std::uint64_t>(acc);
    carry = static_cast<std::uint64_t>(acc >> 64);
    for (int i = limb_index + 2; carry != 0 && i < kLimbs; ++i) {
      acc = static_cast<unsigned __int128>(limbs_[i]) + carry;
      limbs_[i] = static_cast<std::uint64_t>(acc);
      carry = static_cast<std::uint64_t>(acc >> 64);
    }
  } else {
    std::uint64_t old = limbs_[limb_index];
    limbs_[limb_index] = old - lo;
    std::uint64_t borrow = old < lo ? 1 : 0;
    const std::uint64_t hi_sub = hi + borrow;  // hi < 2^63, cannot overflow
    old = limbs_[limb_index + 1];
    limbs_[limb_index + 1] = old - hi_sub;
    borrow = old < hi_sub ? 1 : 0;
    for (int i = limb_index + 2; borrow != 0 && i < kLimbs; ++i) {
      old = limbs_[i];
      limbs_[i] = old - 1;
      borrow = old == 0 ? 1 : 0;
    }
  }
}

void ExactAccumulator::add(double x) {
  AABFT_REQUIRE(std::isfinite(x), "ExactAccumulator::add requires finite input");
  if (x == 0.0) return;
  const Decomposed d = decompose(x);
  add_shifted(d.significand, d.exponent + kBias, d.negative);
}

void ExactAccumulator::sub(double x) {
  AABFT_REQUIRE(std::isfinite(x), "ExactAccumulator::sub requires finite input");
  if (x == 0.0) return;
  const Decomposed d = decompose(x);
  add_shifted(d.significand, d.exponent + kBias, !d.negative);
}

void ExactAccumulator::add_product(double a, double b) {
  const Eft p = two_prod_fma(a, b);
  AABFT_REQUIRE(std::isfinite(p.value),
                "ExactAccumulator::add_product overflowed in the product");
  add(p.value);
  add(p.error);
}

void ExactAccumulator::sub_product(double a, double b) {
  const Eft p = two_prod_fma(a, b);
  AABFT_REQUIRE(std::isfinite(p.value),
                "ExactAccumulator::sub_product overflowed in the product");
  sub(p.value);
  sub(p.error);
}

ExactAccumulator& ExactAccumulator::operator+=(
    const ExactAccumulator& other) noexcept {
  std::uint64_t carry = 0;
  for (int i = 0; i < kLimbs; ++i) {
    const unsigned __int128 acc = static_cast<unsigned __int128>(limbs_[i]) +
                                  other.limbs_[i] + carry;
    limbs_[i] = static_cast<std::uint64_t>(acc);
    carry = static_cast<std::uint64_t>(acc >> 64);
  }
  return *this;
}

void ExactAccumulator::negate() noexcept { negate_limbs(limbs_); }

bool ExactAccumulator::is_zero() const noexcept {
  for (const auto limb : limbs_)
    if (limb != 0) return false;
  return true;
}

int ExactAccumulator::sign() const noexcept {
  if (limbs_[kLimbs - 1] >> 63) return -1;
  return is_zero() ? 0 : 1;
}

int ExactAccumulator::compare(const ExactAccumulator& other) const noexcept {
  // Two's-complement comparison: compare top limbs as signed, rest unsigned.
  const auto top_a = static_cast<std::int64_t>(limbs_[kLimbs - 1]);
  const auto top_b = static_cast<std::int64_t>(other.limbs_[kLimbs - 1]);
  if (top_a != top_b) return top_a < top_b ? -1 : 1;
  for (int i = kLimbs - 2; i >= 0; --i) {
    if (limbs_[i] != other.limbs_[i])
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

double ExactAccumulator::round_to_double() const noexcept {
  const int s = sign();
  if (s == 0) return 0.0;

  std::array<std::uint64_t, kLimbs> mag = limbs_;
  if (s < 0) negate_limbs(mag);

  // Locate the most significant set bit.
  int msb_limb = kLimbs - 1;
  while (msb_limb >= 0 && mag[msb_limb] == 0) --msb_limb;
  const int msb_bit_in_limb = 63 - std::countl_zero(mag[msb_limb]);
  const int msb = msb_limb * 64 + msb_bit_in_limb;  // bit index of MSB

  // The double result keeps bits [lsb, msb]; anything below lsb is rounded.
  // lsb is clamped at 0 because bit 0 already matches the smallest subnormal.
  const int lsb = std::max(msb - 52, 0);

  auto get_bit = [&mag](int bit) -> unsigned {
    return static_cast<unsigned>((mag[bit / 64] >> (bit % 64)) & 1U);
  };

  // Extract the significand bits [lsb, msb] into a 64-bit integer.
  std::uint64_t significand = 0;
  {
    const int limb = lsb / 64;
    const int off = lsb % 64;
    significand = mag[limb] >> off;
    if (off != 0 && limb + 1 < kLimbs)
      significand |= mag[limb + 1] << (64 - off);
    const int width = msb - lsb + 1;
    if (width < 64) significand &= (1ULL << width) - 1;
  }

  // Round to nearest, ties to even.
  if (lsb > 0) {
    const unsigned guard = get_bit(lsb - 1);
    bool sticky = false;
    if (guard) {
      // Sticky = any set bit strictly below the guard bit.
      const int guard_pos = lsb - 1;
      for (int i = 0; i < guard_pos / 64 && !sticky; ++i) sticky = mag[i] != 0;
      if (!sticky && guard_pos % 64 != 0) {
        const std::uint64_t mask = (1ULL << (guard_pos % 64)) - 1;
        sticky = (mag[guard_pos / 64] & mask) != 0;
      }
      if (sticky || (significand & 1U)) ++significand;
    }
  }

  int exponent = lsb - kBias;
  if (significand == (1ULL << 53)) {  // rounding overflowed the significand
    significand >>= 1;
    ++exponent;
  }

  const double magnitude =
      std::ldexp(static_cast<double>(significand), exponent);
  return s < 0 ? -magnitude : magnitude;
}

double ExactAccumulator::round_minus(double x) const {
  ExactAccumulator tmp = *this;
  tmp.sub(x);
  return tmp.round_to_double();
}

}  // namespace aabft::fp
