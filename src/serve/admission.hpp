// Admission control: validate, pad, check deadline feasibility, enqueue.
//
// Admission is the server's backpressure boundary. Refusals are values
// (Result, per the DESIGN.md §4.7 contract), so clients can distinguish and
// react: kShapeMismatch / kInvalidArgument (fix the request), kOverloaded
// (queue full — back off and retry), kDeadlineInfeasible (the latency budget
// cannot be met even before queuing — shed the request now instead of
// serving a guaranteed-late answer).
//
// Deadline feasibility uses a deliberately simple cost model: estimated
// service time = (backlog flops + request flops) * est_ns_per_flop /
// workers, with per-op-kind flops from OpDescriptor::flops (2 m k q for the
// padded GEMM, m^2 k SYRK, n^3/3 Cholesky, 2 n^3/3 LU). The backlog counter
// is maintained by the server (admit adds, on_complete retires).
#pragma once

#include <atomic>
#include <cstdint>

#include "core/result.hpp"
#include "serve/queue.hpp"

namespace aabft::serve {

struct AdmissionConfig {
  std::size_t queue_capacity = 256;
  /// Cost-model coefficient: estimated simulated-service nanoseconds per
  /// GEMM flop on one worker lane. Calibrate per host; only deadline
  /// feasibility depends on it.
  double est_ns_per_flop = 2.0;
};

class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, std::size_t bs,
                      unsigned workers) noexcept
      : config_(config), bs_(bs), workers_(workers != 0 ? workers : 1) {}

  /// Validate shapes per op kind, assign an id, estimate deadline
  /// feasibility, pad GEMM operands to checksum-block multiples and enqueue.
  /// On success the pending request (with its OpDescriptor and enqueue trace
  /// fields filled) has been pushed and its future is returned.
  ///
  /// `cache` (may be null) is the server's operand cache: an explicit
  /// request.a_handle resolves and pins here (kInvalidArgument when unknown
  /// or evicted), and inline GEMM A operands are fingerprinted for implicit
  /// hits. The pin is taken at admission — not dispatch — so a queued
  /// request can never lose its entry to eviction. On a hit the deadline
  /// model charges only B's encode flops; a miss also charges A's.
  [[nodiscard]] Result<std::future<GemmResponse>> admit(
      GemmRequest&& request, BoundedRequestQueue& queue, std::uint64_t now_ns,
      opcache::OperandCache* cache = nullptr);

  /// Retire a completed request's flops from the backlog estimate.
  void on_complete(std::uint64_t flops) noexcept {
    backlog_flops_.fetch_sub(flops, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t backlog_flops() const noexcept {
    return backlog_flops_.load(std::memory_order_relaxed);
  }

  /// The padded-problem GEMM flop count (the backlog model's historical
  /// helper; other op kinds go through OpDescriptor::flops).
  [[nodiscard]] static std::uint64_t flops_of(std::size_t m, std::size_t k,
                                              std::size_t q) noexcept {
    return 2ull * m * k * q;
  }

 private:
  AdmissionConfig config_;
  std::size_t bs_;
  unsigned workers_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> backlog_flops_{0};
};

}  // namespace aabft::serve
