// Bounded MPMC request queue with priority classes and shape-matching pops.
//
// Admission pushes from any number of client threads; the dispatcher pops
// the highest-priority head (FIFO within a class) and then drains further
// requests of the *same padded shape* via try_pop_matching — the primitive
// the batch assembler builds cross-request batches from. The bound is the
// backpressure mechanism: a full queue rejects at admission instead of
// growing without limit.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <deque>
#include <future>
#include <optional>

#include "core/require.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "serve/opcache/opcache.hpp"
#include "serve/request.hpp"

namespace aabft::serve {

/// A queued request: the operands (padded for GEMM) plus everything needed
/// to fulfil the caller's future later. Move-only (owns a promise).
struct PendingRequest {
  GemmRequest request;  ///< GEMM operands already padded to block multiples
  /// The operation this request runs — for GEMM, the *padded* problem shape
  /// (single-operand kinds keep original extents; engines pad internally).
  baselines::OpDescriptor desc;
  std::size_t orig_m = 0;  ///< pre-padding result extents, for unpadding
  std::size_t orig_q = 0;
  std::uint64_t est_flops = 0;  ///< the admission backlog-model charge
  /// Resolved operand-cache handle (explicit or from an implicit fingerprint
  /// hit; 0 = cold). Part of the batch key so cached-A batches coalesce and
  /// every batch is uniformly cached or uniformly cold.
  std::uint64_t a_handle = 0;
  /// The pinned cache entry backing a_handle. Acquired at admission — not at
  /// dispatch — so the entry cannot be evicted while this request waits in
  /// the queue; released with the request.
  opcache::OperandCache::Pin pin;
  std::promise<GemmResponse> promise;
  RequestTrace trace;  ///< enqueue_ns / queue_depth filled at admission
};

/// Batch-compatibility key: op kind + padded result extents + inner
/// dimension. Two requests with equal keys run through identical compute
/// pipelines (for GEMM, identical kernel grids) and can share one dispatch.
struct ShapeKey {
  baselines::OpKind kind = baselines::OpKind::kGemm;
  std::size_t m = 0;
  std::size_t k = 0;
  std::size_t q = 0;
  /// Resolved operand-cache handle (0 = cold). Keying on it keeps batches
  /// uniformly cached-A or uniformly cold, so one dispatch runs one pipeline.
  std::uint64_t a_handle = 0;
  [[nodiscard]] bool operator==(const ShapeKey&) const noexcept = default;
};

[[nodiscard]] inline ShapeKey shape_of(const PendingRequest& item) noexcept {
  return {item.desc.kind, item.desc.m, item.desc.k, item.desc.q,
          item.a_handle};
}

class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(std::size_t capacity) : capacity_(capacity) {
    AABFT_REQUIRE(capacity >= 1, "queue capacity must be at least 1");
  }

  /// Admit an item. Returns the queue depth right after insertion (i.e.
  /// including the item) or nullopt when the queue is full or closed.
  std::optional<std::size_t> try_push(PendingRequest&& item)
      AABFT_EXCLUDES(mu_) {
    std::size_t depth_after = 0;
    {
      core::MutexLock lk(mu_);
      if (closed_ || size_ >= capacity_) return std::nullopt;
      buckets_[static_cast<std::size_t>(item.request.priority)].push_back(
          std::move(item));
      depth_after = ++size_;
    }
    cv_.notify_one();
    return depth_after;
  }

  /// Block until an item is available or the queue is closed *and* drained
  /// (nullopt). Highest priority class first, FIFO within a class.
  std::optional<PendingRequest> pop() AABFT_EXCLUDES(mu_) {
    core::UniqueLock lk(mu_);
    while (size_ == 0 && !closed_) cv_.wait(lk);
    if (size_ == 0) return std::nullopt;
    for (auto& bucket : buckets_)
      if (!bucket.empty()) {
        PendingRequest item = std::move(bucket.front());
        bucket.pop_front();
        --size_;
        return item;
      }
    return std::nullopt;  // unreachable: size_ > 0
  }

  /// Non-blocking: remove and return the first queued request whose padded
  /// shape equals `key`, scanning priority classes in order.
  std::optional<PendingRequest> try_pop_matching(const ShapeKey& key)
      AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    for (auto& bucket : buckets_)
      for (auto it = bucket.begin(); it != bucket.end(); ++it)
        if (shape_of(*it) == key) {
          PendingRequest item = std::move(*it);
          bucket.erase(it);
          --size_;
          return item;
        }
    return std::nullopt;
  }

  /// Block up to `timeout` for the queue to become nonempty (the batch
  /// assembler's linger wait). True when an item is available on return.
  bool wait_nonempty_for(std::chrono::microseconds timeout)
      AABFT_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    core::UniqueLock lk(mu_);
    while (size_ == 0 && !closed_)
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    return size_ > 0;
  }

  /// Refuse further pushes; pop() drains the remainder and then returns
  /// nullopt forever.
  void close() AABFT_EXCLUDES(mu_) {
    {
      core::MutexLock lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool closed() const AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t depth() const AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    return size_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable core::Mutex mu_{core::LockRank::kServeQueue, "serve.queue"};
  core::CondVar cv_;
  std::array<std::deque<PendingRequest>, kNumPriorities> buckets_
      AABFT_GUARDED_BY(mu_);
  std::size_t capacity_;
  std::size_t size_ AABFT_GUARDED_BY(mu_) = 0;
  bool closed_ AABFT_GUARDED_BY(mu_) = false;
};

}  // namespace aabft::serve
