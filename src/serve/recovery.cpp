#include "serve/recovery.hpp"

#include <utility>

namespace aabft::serve {

RecoveryRung rung_of(const baselines::SchemeResult& r) noexcept {
  if (!r.detected) return RecoveryRung::kNone;
  if (r.recomputed > 0) return RecoveryRung::kFullRecompute;
  if (r.block_recomputes > 0) return RecoveryRung::kBlockRecompute;
  if (r.corrected) return RecoveryRung::kCorrected;
  // Earliest rung: the fused product's online screen caught and repaired the
  // fault at k-panel granularity, before the operation even finished.
  if (r.panel_recomputes > 0) return RecoveryRung::kPanelRecompute;
  return RecoveryRung::kNone;
}

RecoveryOutcome run_ladder(baselines::ProtectedBlas3& primary,
                           baselines::ProtectedBlas3* tmr,
                           const baselines::OpDescriptor& desc,
                           const linalg::Matrix& a, const linalg::Matrix& b,
                           Result<baselines::SchemeResult> first,
                           const RecoveryPolicy& policy) {
  RecoveryOutcome outcome;

  // Keep the latest unclean result around so a failed response still carries
  // the best data we have (status kFailed tells the caller not to trust it).
  auto consider = [&](Result<baselines::SchemeResult>&& r,
                      RecoveryRung rung_if_clean) {
    if (!r.ok()) {
      outcome.diagnosis = r.error().message;
      return false;
    }
    const bool clean = r->clean;
    if (clean) outcome.rung = rung_if_clean;
    outcome.result = std::move(r).value();
    return clean;
  };

  if (consider(std::move(first), RecoveryRung::kNone)) {
    // The scheme may have repaired in place; report the rung it used.
    outcome.rung = rung_of(*outcome.result);
    outcome.ok = true;
    return outcome;
  }

  while (outcome.retries < policy.retry_budget) {
    ++outcome.retries;
    if (consider(primary.execute(desc, a, b), RecoveryRung::kRetry)) {
      outcome.ok = true;
      return outcome;
    }
  }

  if (policy.escalate_tmr && tmr != nullptr && tmr->supports(desc.kind)) {
    outcome.tmr_escalated = true;
    if (consider(tmr->execute(desc, a, b), RecoveryRung::kTmr)) {
      outcome.ok = true;
      return outcome;
    }
  }

  outcome.rung = RecoveryRung::kFailed;
  if (outcome.diagnosis.empty())
    outcome.diagnosis =
        "recovery ladder exhausted: detection still flags the product after " +
        std::to_string(outcome.retries) + " retries" +
        (outcome.tmr_escalated ? " and a TMR escalation" : "");
  return outcome;
}

}  // namespace aabft::serve
