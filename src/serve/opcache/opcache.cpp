#include "serve/opcache/opcache.hpp"

#include <string>
#include <utility>

#include "abft/fused_gemm.hpp"
#include "abft/padding.hpp"
#include "serve/opcache/fingerprint.hpp"

namespace aabft::serve::opcache {
namespace {

[[nodiscard]] std::size_t matrix_bytes(const linalg::Matrix& m) noexcept {
  return m.rows() * m.cols() * sizeof(double);
}

}  // namespace

OperandCache::OperandCache(gpusim::Launcher& launcher,
                           const abft::AabftConfig& aabft,
                           OpCacheConfig config, StatsBoard* stats)
    : launcher_(launcher),
      aabft_(aabft),
      config_(config),
      codec_(aabft.bs),
      stats_(stats) {}

Result<std::uint64_t> OperandCache::register_operand(const linalg::Matrix& a) {
  if (!config_.enabled)
    return Error{ErrorCode::kUnavailable, "operand cache is disabled"};
  if (a.rows() == 0 || a.cols() == 0)
    return Error{ErrorCode::kInvalidArgument,
                 "cannot register an empty operand"};
  const std::uint64_t fp = fingerprint_matrix(a);
  {
    core::MutexLock lk(mu_);
    auto it = fp_index_.find(fp);
    if (it != fp_index_.end()) {
      entries_.at(it->second)->last_used = ++epoch_;
      return it->second;
    }
  }

  // Encode outside the lock: the light encode launches kernels and is the
  // whole point of the one-time cost.
  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fp;
  entry->orig_rows = a.rows();
  entry->orig_cols = a.cols();
  const std::size_t padded_rows = abft::padded_dim(a.rows(), aabft_.bs);
  entry->padded =
      padded_rows == a.rows() ? a : abft::pad_to(a, padded_rows, a.cols());
  entry->light =
      abft::encode_columns_light(launcher_, entry->padded, codec_, aabft_.p);
  if (!aabft_.fused_gemm)
    entry->encoded =
        abft::materialize_columns(entry->padded, entry->light.sums, codec_);
  entry->bytes = matrix_bytes(entry->padded) + matrix_bytes(entry->light.sums) +
                 entry->light.pmax.size() * sizeof(abft::PMaxList) +
                 (entry->encoded ? matrix_bytes(*entry->encoded) : 0);
  if (entry->bytes > config_.byte_budget)
    return Error{ErrorCode::kOverloaded,
                 "operand entry of " + std::to_string(entry->bytes) +
                     " bytes exceeds the cache byte budget of " +
                     std::to_string(config_.byte_budget)};
  entry->pre.a = &entry->padded;
  entry->pre.light = &entry->light;
  entry->pre.encoded = entry->encoded ? &*entry->encoded : nullptr;

  core::MutexLock lk(mu_);
  // A concurrent registration of the same content may have won the race
  // while we encoded; dedup to its handle and drop our duplicate work.
  auto again = fp_index_.find(fp);
  if (again != fp_index_.end()) {
    entries_.at(again->second)->last_used = ++epoch_;
    return again->second;
  }
  const std::uint64_t handle = next_handle_++;
  entry->handle = handle;
  entry->last_used = ++epoch_;
  bytes_ += entry->bytes;
  if (stats_) {
    StatsBoard::bump(stats_->opcache_registered);
    StatsBoard::bump(stats_->opcache_bytes, entry->bytes);
  }
  fp_index_.emplace(fp, handle);
  entries_.emplace(handle, std::move(entry));
  evict_locked(handle);
  return handle;
}

std::optional<std::uint64_t> OperandCache::lookup(std::uint64_t fingerprint) {
  core::MutexLock lk(mu_);
  auto it = fp_index_.find(fingerprint);
  if (it == fp_index_.end()) {
    if (stats_) StatsBoard::bump(stats_->opcache_misses);
    return std::nullopt;
  }
  return it->second;
}

OperandCache::Pin OperandCache::acquire(std::uint64_t handle, bool count_hit) {
  std::shared_ptr<Entry> sp;
  {
    core::MutexLock lk(mu_);
    auto it = entries_.find(handle);
    if (it == entries_.end()) return nullptr;
    sp = it->second;
    sp->last_used = ++epoch_;
    // 0 -> 1 transition charges the pinned-bytes gauge once per entry, not
    // per pin; the matching 1 -> 0 release in unpin() retires it.
    if (sp->pins.fetch_add(1, std::memory_order_acq_rel) == 0 && stats_)
      StatsBoard::bump(stats_->opcache_pinned_bytes, sp->bytes);
  }
  if (count_hit && stats_) StatsBoard::bump(stats_->opcache_hits);
  // The aliasing control block captures `sp` (keeping the storage alive even
  // past eviction/invalidation) and unpins on release without locking.
  const OperandCache* self = this;
  return Pin(sp.get(),
             [self, sp](const Entry*) noexcept { self->unpin(*sp); });
}

void OperandCache::unpin(const Entry& entry) const noexcept {
  if (entry.pins.fetch_sub(1, std::memory_order_acq_rel) == 1 && stats_)
    StatsBoard::drop(stats_->opcache_pinned_bytes, entry.bytes);
}

bool OperandCache::invalidate(std::uint64_t handle) {
  std::shared_ptr<Entry> sp;
  {
    core::MutexLock lk(mu_);
    auto it = entries_.find(handle);
    if (it == entries_.end()) return false;
    sp = std::move(it->second);
    entries_.erase(it);
    fp_index_.erase(sp->fingerprint);
    bytes_ -= sp->bytes;
  }
  if (stats_) {
    StatsBoard::bump(stats_->opcache_invalidations);
    StatsBoard::drop(stats_->opcache_bytes, sp->bytes);
  }
  return true;
}

void OperandCache::evict_locked(std::uint64_t keep) {
  while (bytes_ > config_.byte_budget) {
    std::uint64_t victim = 0;
    std::uint64_t oldest = 0;
    bool found = false;
    for (const auto& [handle, entry] : entries_) {
      if (handle == keep) continue;  // never evict the entry being published
      if (entry->pins.load(std::memory_order_acquire) != 0) continue;
      if (!found || entry->last_used < oldest) {
        victim = handle;
        oldest = entry->last_used;
        found = true;
      }
    }
    // Everything else is pinned by in-flight requests: tolerate transient
    // over-budget rather than strand a batch mid-flight.
    if (!found) return;
    auto it = entries_.find(victim);
    const std::size_t freed = it->second->bytes;
    fp_index_.erase(it->second->fingerprint);
    entries_.erase(it);
    bytes_ -= freed;
    if (stats_) {
      StatsBoard::bump(stats_->opcache_evictions);
      StatsBoard::drop(stats_->opcache_bytes, freed);
    }
  }
}

std::size_t OperandCache::size() const {
  core::MutexLock lk(mu_);
  return entries_.size();
}

std::size_t OperandCache::bytes() const {
  core::MutexLock lk(mu_);
  return bytes_;
}

}  // namespace aabft::serve::opcache
