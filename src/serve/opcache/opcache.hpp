// Operand checksum cache: fingerprint-keyed reuse of encoded-operand
// artifacts for repeated-weight serving traffic (DESIGN.md §12).
//
// In inference-shaped serving most requests reuse one operand — a weight
// matrix A multiplied against a stream of activations B — yet each request
// pays the full O(m k) checksum encode of A. This cache converts that
// per-request cost into a one-time cost: register_operand() pads A to a
// checksum-block multiple, runs encode_columns_light once (the compact
// checksum side-buffer + p-max table of PR 8's fused pipeline) and, for
// unfused configurations, materialises the classic encoded A_cc; requests
// that reference the entry (by explicit handle or by content fingerprint)
// consume the cached artifacts through abft::PreencodedA and skip A's encode
// entirely. Results are bit-identical to the cold path: the cached sums are
// exactly what a fresh encode produces, and the sampled consistency guard
// (AabftConfig::cache_verify_every) enforces that invariant in debug soaks.
//
// Eviction is LRU under a configurable byte budget, with pin semantics: an
// entry referenced by an admitted-but-unfinished request holds a Pin (a
// shared_ptr whose release unpins), and pinned entries are never evicted —
// the cache tolerates transient over-budget instead of stranding an
// in-flight batch. Invalidation (the fleet layer calls it when an operand is
// reconstructed from parity) removes the entry from the index immediately;
// in-flight pins keep the storage alive until they drain.
//
// Thread model: every index mutation sits under one mutex
// (LockRank::kServeOpCache); encodes run outside the lock (they launch
// kernels). Pin release is lock-free (atomics only) so request teardown
// never touches the cache lock. Counters go to the owning server's
// StatsBoard (hits / misses / registered / evictions / invalidations, plus
// the bytes and pinned-bytes gauges).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "abft/aabft.hpp"
#include "core/result.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"
#include "serve/telemetry.hpp"

namespace aabft::serve::opcache {

struct OpCacheConfig {
  /// Master switch; a disabled cache refuses registrations (kUnavailable)
  /// and serves no implicit hits, so every request cold-encodes.
  bool enabled = true;
  /// LRU byte budget over all cached artifacts (padded operand + checksum
  /// side-buffer + p-max table + materialised A_cc where present). A single
  /// entry larger than the budget is refused at registration (kOverloaded).
  std::size_t byte_budget = 64ull << 20;
  /// Fingerprint inline GEMM A operands at admission and serve implicit
  /// hits: a request whose A content-matches a registered entry uses the
  /// cached encode without carrying a handle.
  bool implicit_fingerprinting = true;
};

class OperandCache {
 public:
  /// One cached operand. Immutable once published (the index hands out
  /// shared_ptr snapshots); `pre` is the borrowed-view bundle the abft
  /// preencoded paths consume.
  struct Entry {
    std::uint64_t handle = 0;
    std::uint64_t fingerprint = 0;
    std::size_t orig_rows = 0;  ///< pre-padding extents of the registration
    std::size_t orig_cols = 0;
    linalg::Matrix padded;      ///< rows padded to a checksum-block multiple
    abft::LightEncoded light;   ///< compact checksum side-buffer + p-max
    /// Classic encoded A_cc, materialised at registration for unfused
    /// configurations (the classic product consumes it directly); absent
    /// under fused_gemm, where the light sums suffice.
    std::optional<linalg::Matrix> encoded;
    abft::PreencodedA pre;      ///< views over the fields above
    std::size_t bytes = 0;      ///< budget charge of this entry
    /// Outstanding pins; > 0 blocks eviction. Lock-free so pin release never
    /// takes the cache lock.
    mutable std::atomic<std::size_t> pins{0};
    std::uint64_t last_used = 0;  ///< LRU epoch; cache-mutex-guarded
  };

  /// A pin: holding one keeps the entry's storage alive and blocks its
  /// eviction. Release (destruction) is lock-free. The cache must outlive
  /// every pin it hands out (the owning server guarantees this by draining
  /// its queue before teardown).
  using Pin = std::shared_ptr<const Entry>;

  /// `aabft` supplies the block size, p, and whether the classic encoded
  /// form must be materialised (fused_gemm == false). `stats` may be null
  /// (standalone use in tests); when set, the cache bumps the opcache_*
  /// counters on it.
  OperandCache(gpusim::Launcher& launcher, const abft::AabftConfig& aabft,
               OpCacheConfig config, StatsBoard* stats);
  OperandCache(const OperandCache&) = delete;
  OperandCache& operator=(const OperandCache&) = delete;

  /// Encode and publish an operand; returns its handle (handles start at 1;
  /// 0 means "no handle" in requests). Registrations of content-identical
  /// matrices dedup by fingerprint and return the existing handle. Errors:
  /// kUnavailable (cache disabled), kInvalidArgument (empty operand),
  /// kOverloaded (entry alone exceeds the byte budget).
  [[nodiscard]] Result<std::uint64_t> register_operand(const linalg::Matrix& a)
      AABFT_EXCLUDES(mu_);

  /// Fingerprint-index probe (the implicit-hit path). Returns the handle of
  /// the content-matching entry, or nullopt (counted as a miss; hits are
  /// counted by the acquire that follows).
  [[nodiscard]] std::optional<std::uint64_t> lookup(std::uint64_t fingerprint)
      AABFT_EXCLUDES(mu_);

  /// Pin an entry for an in-flight request. Null when the handle is unknown
  /// or was evicted. Touches the LRU clock; bumps the hit counter unless
  /// `count_hit` is false (internal re-acquisitions).
  [[nodiscard]] Pin acquire(std::uint64_t handle, bool count_hit = true)
      AABFT_EXCLUDES(mu_);

  /// Drop an entry from the index (fleet parity-reconstruction path). False
  /// when the handle is unknown. In-flight pins keep the storage alive; new
  /// requests miss and re-encode.
  bool invalidate(std::uint64_t handle) AABFT_EXCLUDES(mu_);

  [[nodiscard]] std::size_t size() const AABFT_EXCLUDES(mu_);
  [[nodiscard]] std::size_t bytes() const AABFT_EXCLUDES(mu_);
  [[nodiscard]] const OpCacheConfig& config() const noexcept { return config_; }

 private:
  void evict_locked(std::uint64_t keep) AABFT_REQUIRES(mu_);
  void unpin(const Entry& entry) const noexcept;

  gpusim::Launcher& launcher_;
  const abft::AabftConfig aabft_;
  const OpCacheConfig config_;
  abft::PartitionedCodec codec_;
  StatsBoard* stats_;

  mutable core::Mutex mu_{core::LockRank::kServeOpCache, "serve.opcache"};
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> entries_
      AABFT_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::uint64_t> fp_index_
      AABFT_GUARDED_BY(mu_);
  std::uint64_t next_handle_ AABFT_GUARDED_BY(mu_) = 1;
  std::uint64_t epoch_ AABFT_GUARDED_BY(mu_) = 0;
  std::size_t bytes_ AABFT_GUARDED_BY(mu_) = 0;
};

}  // namespace aabft::serve::opcache
