// Content fingerprinting for operand matrices (the opcache's implicit-hit
// key and the fleet store's dedup key).
//
// The fingerprint is a 64-bit FNV-1a hash over the matrix shape followed by
// the raw uint64 bit patterns of every element, in row-major order. Hashing
// bit patterns (not values) makes the fingerprint exact under the cache's
// bit-identity contract: two matrices fingerprint equal only if every
// element is bit-equal (so -0.0 != +0.0 and distinct NaN payloads differ),
// which is precisely the equivalence class under which a cached encode may
// be substituted for a fresh one. Collisions across *different* contents are
// possible at the usual 2^-64 odds; the sampled consistency guard
// (AabftConfig::cache_verify_every) is the backstop.
#pragma once

#include <cstdint>
#include <cstring>

#include "linalg/matrix.hpp"

namespace aabft::serve::opcache {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// One FNV-1a round over a 64-bit word (word-granular, not byte-granular:
/// the inputs are fixed-width words, and word rounds keep the hot loop to
/// one xor + one multiply per element).
[[nodiscard]] inline std::uint64_t fnv1a_word(std::uint64_t h,
                                              std::uint64_t word) noexcept {
  return (h ^ word) * kFnvPrime;
}

/// 64-bit content fingerprint of `m`: shape, then element bit patterns.
[[nodiscard]] inline std::uint64_t fingerprint_matrix(
    const linalg::Matrix& m) noexcept {
  std::uint64_t h = kFnvOffsetBasis;
  h = fnv1a_word(h, static_cast<std::uint64_t>(m.rows()));
  h = fnv1a_word(h, static_cast<std::uint64_t>(m.cols()));
  const double* payload = m.data();
  const std::size_t n = m.rows() * m.cols();
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &payload[i], sizeof(bits));
    h = fnv1a_word(h, bits);
  }
  return h;
}

}  // namespace aabft::serve::opcache
