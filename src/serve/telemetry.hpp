// Aggregated server telemetry: outcome counters plus streaming latency
// distributions (queue wait / service / end-to-end), serialisable to JSON.
//
// The dispatcher thread owns the mutable ServerStats; GemmServer::stats()
// hands out a snapshot copy, so readers never race the recorders (which are
// not internally synchronized — see core/latency.hpp).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "baselines/op.hpp"
#include "core/latency.hpp"

namespace aabft::serve {

struct ServerStats {
  // Admission.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shape = 0;
  /// The primary scheme does not implement the requested op kind.
  std::uint64_t rejected_unsupported = 0;

  // Completion and the recovery ladder.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Completed responses broken down by op kind (index = OpKind value).
  std::array<std::uint64_t, baselines::kNumOpKinds> completed_by_kind{};
  std::uint64_t detected = 0;
  std::uint64_t corrected = 0;
  std::uint64_t corrections = 0;
  std::uint64_t block_recomputes = 0;
  std::uint64_t full_recomputes = 0;
  std::uint64_t retries = 0;
  std::uint64_t tmr_escalations = 0;
  std::uint64_t faults_armed = 0;
  std::uint64_t faults_fired = 0;

  // Batching.
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  ///< requests in batches of size >= 2
  std::size_t max_batch = 0;           ///< largest batch dispatched

  LatencyRecorder queue_wait_ns;  ///< enqueue -> dispatch
  LatencyRecorder service_ns;     ///< dispatch -> ladder settled
  LatencyRecorder e2e_ns;         ///< enqueue -> response delivered
};

/// Render the stats as a self-contained JSON object (counters + per-
/// distribution {count, mean, p50, p95, p99, max} blocks under latency_ns).
[[nodiscard]] std::string to_json(const ServerStats& stats);

}  // namespace aabft::serve
