// Aggregated server telemetry: outcome counters plus streaming latency
// distributions (queue wait / service / end-to-end), serialisable to JSON.
//
// ServerStats is the plain snapshot value handed to callers; the live
// counters sit in a StatsBoard. The board's counters are lock-free atomics
// (client threads bump admission counters, the dispatcher bumps completion
// counters, nobody serialises against readers), and snapshot() reads them in
// a single acquire pass — each counter is loaded exactly once, whole, so a
// fleet aggregator polling per-shard stats mid-run can never observe a torn
// counter. The latency recorders (multi-word histograms that cannot be read
// atomically) stay behind a short-hold mutex taken per record and once per
// snapshot; the dispatcher is their only writer.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "baselines/op.hpp"
#include "core/latency.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace aabft::serve {

struct ServerStats {
  // Admission.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_shape = 0;
  /// The primary scheme does not implement the requested op kind.
  std::uint64_t rejected_unsupported = 0;

  // Completion and the recovery ladder.
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  /// Completed responses broken down by op kind (index = OpKind value).
  std::array<std::uint64_t, baselines::kNumOpKinds> completed_by_kind{};
  std::uint64_t detected = 0;
  std::uint64_t corrected = 0;
  std::uint64_t corrections = 0;
  /// Online k-panel screen mismatches observed inside fused products
  /// (recovery rung 0; repaired by tile panel replay before completion).
  std::uint64_t panel_detections = 0;
  /// Completed requests whose checksums were accumulated inside the product
  /// kernel (fused pipeline) instead of a standalone encode pass.
  std::uint64_t fused_encode_requests = 0;
  std::uint64_t block_recomputes = 0;
  std::uint64_t full_recomputes = 0;
  std::uint64_t retries = 0;
  std::uint64_t tmr_escalations = 0;
  std::uint64_t faults_armed = 0;
  std::uint64_t faults_fired = 0;

  // Batching.
  std::uint64_t batches = 0;
  std::uint64_t batched_requests = 0;  ///< requests in batches of size >= 2
  std::size_t max_batch = 0;           ///< largest batch dispatched

  // Operand checksum cache (serve/opcache). Hits count requests served from
  // a cached encode (explicit handle or implicit fingerprint match); misses
  // count fingerprint probes that found nothing. bytes / pinned_bytes are
  // gauges (they go down on eviction / pin release); merging adds them, so a
  // fleet total reads as cache bytes across all shards.
  std::uint64_t opcache_hits = 0;
  std::uint64_t opcache_misses = 0;
  std::uint64_t opcache_registered = 0;
  std::uint64_t opcache_evictions = 0;
  std::uint64_t opcache_invalidations = 0;
  std::uint64_t opcache_bytes = 0;
  std::uint64_t opcache_pinned_bytes = 0;

  LatencyRecorder queue_wait_ns;  ///< enqueue -> dispatch
  LatencyRecorder service_ns;     ///< dispatch -> ladder settled
  LatencyRecorder e2e_ns;         ///< enqueue -> response delivered
};

/// Exact aggregation of `from` into `into`: counters add, histograms merge,
/// max_batch takes the maximum. The fleet layer folds per-shard snapshots
/// into fleet totals with this.
void merge_into(ServerStats& into, const ServerStats& from);

/// Render the stats as a self-contained JSON object (counters + per-
/// distribution {count, mean, p50, p95, p99, max} blocks under latency_ns).
[[nodiscard]] std::string to_json(const ServerStats& stats);

/// The live, concurrently-written side of ServerStats (see header comment).
/// Counter fields mirror ServerStats one-for-one; snapshot() produces the
/// plain value.
class StatsBoard {
 public:
  // Lock-free counters. Increment with bump(); relaxed ordering is enough —
  // every counter is monotone and independently meaningful.
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected_queue_full{0};
  std::atomic<std::uint64_t> rejected_deadline{0};
  std::atomic<std::uint64_t> rejected_shape{0};
  std::atomic<std::uint64_t> rejected_unsupported{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> failed{0};
  std::array<std::atomic<std::uint64_t>, baselines::kNumOpKinds>
      completed_by_kind{};
  std::atomic<std::uint64_t> detected{0};
  std::atomic<std::uint64_t> corrected{0};
  std::atomic<std::uint64_t> corrections{0};
  std::atomic<std::uint64_t> panel_detections{0};
  std::atomic<std::uint64_t> fused_encode_requests{0};
  std::atomic<std::uint64_t> block_recomputes{0};
  std::atomic<std::uint64_t> full_recomputes{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> tmr_escalations{0};
  std::atomic<std::uint64_t> faults_armed{0};
  std::atomic<std::uint64_t> faults_fired{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> batched_requests{0};
  std::atomic<std::uint64_t> opcache_hits{0};
  std::atomic<std::uint64_t> opcache_misses{0};
  std::atomic<std::uint64_t> opcache_registered{0};
  std::atomic<std::uint64_t> opcache_evictions{0};
  std::atomic<std::uint64_t> opcache_invalidations{0};
  std::atomic<std::uint64_t> opcache_bytes{0};
  std::atomic<std::uint64_t> opcache_pinned_bytes{0};

  static void bump(std::atomic<std::uint64_t>& counter,
                   std::uint64_t by = 1) noexcept {
    if (by != 0) counter.fetch_add(by, std::memory_order_relaxed);
  }

  /// Gauge decrement (opcache bytes retire on eviction, pinned bytes on pin
  /// release); still a single whole-word RMW, so snapshots stay torn-free.
  static void drop(std::atomic<std::uint64_t>& counter,
                   std::uint64_t by = 1) noexcept {
    if (by != 0) counter.fetch_sub(by, std::memory_order_relaxed);
  }

  /// Monotone max over dispatched batch sizes (dispatcher-only writer, but
  /// CAS keeps it correct regardless).
  void note_batch_size(std::size_t n) noexcept {
    std::size_t seen = max_batch_.load(std::memory_order_relaxed);
    while (n > seen &&
           !max_batch_.compare_exchange_weak(seen, n,
                                             std::memory_order_relaxed)) {
    }
  }

  void record_queue_wait(std::uint64_t ns) AABFT_EXCLUDES(recorder_mu_) {
    core::MutexLock lk(recorder_mu_);
    queue_wait_ns_.record(ns);
  }
  void record_service(std::uint64_t ns) AABFT_EXCLUDES(recorder_mu_) {
    core::MutexLock lk(recorder_mu_);
    service_ns_.record(ns);
  }
  void record_e2e(std::uint64_t ns) AABFT_EXCLUDES(recorder_mu_) {
    core::MutexLock lk(recorder_mu_);
    e2e_ns_.record(ns);
  }

  /// One-pass snapshot: copy the three recorders under one brief lock
  /// acquisition, then load every counter whole (single acquire fence, one
  /// relaxed load each). Counters are independently monotone, so the
  /// snapshot is torn-read-free per field; it is not a cross-field
  /// linearisation point (completed may lag admitted by in-flight work).
  [[nodiscard]] ServerStats snapshot() const AABFT_EXCLUDES(recorder_mu_);

 private:
  mutable core::Mutex recorder_mu_{core::LockRank::kServeStats,
                                   "serve.stats"};
  LatencyRecorder queue_wait_ns_ AABFT_GUARDED_BY(recorder_mu_);
  LatencyRecorder service_ns_ AABFT_GUARDED_BY(recorder_mu_);
  LatencyRecorder e2e_ns_ AABFT_GUARDED_BY(recorder_mu_);
  std::atomic<std::size_t> max_batch_{0};
};

}  // namespace aabft::serve
