// GemmServer: the multi-tenant fault-tolerant BLAS-3 serving front end.
//
// One dispatcher thread pops priority-ordered batches of shape-and-kind-
// compatible requests from the bounded queue (BatchAssembler) and runs them
// through the primary A-ABFT scheme on the ProtectedBlas3 operation API:
// clean GEMM batches go through the pipelined multiply_batch fast path
// (bit-identical to the pre-redesign server), while faulted batches and the
// other op kinds (SYRK, Cholesky, LU) run as per-request host tasks through
// execute(). Every response settles through the recovery ladder
// (serve/recovery.hpp). Clients talk to the server through submit(), which
// returns a future for the response or an admission refusal as a Result
// error; op kinds the primary scheme does not support are refused as
// kUnsupportedOp values, never asserted.
//
// Thread model: submit() is safe from any number of client threads (queue
// and admission are synchronized, stats counters are lock-free atomics on a
// StatsBoard); the dispatcher exclusively owns batch assembly and the
// recovery ladder. stats() snapshots the board in one acquire pass, so a
// fleet aggregator can poll per-shard stats mid-run without torn reads.
// pause()/resume() gate the dispatcher between batches — test drivers use
// them to build up coalescible queues.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

#include "abft/aabft.hpp"
#include "baselines/schemes.hpp"
#include "core/result.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/queue.hpp"
#include "serve/recovery.hpp"
#include "serve/telemetry.hpp"

namespace aabft::serve {

struct ServeConfig {
  AdmissionConfig admission;
  BatchConfig batch;
  RecoveryPolicy recovery;
  /// Operand checksum cache (serve/opcache): one-time encode of registered
  /// weight operands, reused by every request that references them.
  opcache::OpCacheConfig opcache;
  /// Scheme configuration for the primary A-ABFT multiplier. The serving
  /// default enables one per-block recompute round so single-block damage is
  /// repaired bit-exactly without a full re-execution, and runs GEMMs
  /// through the fused online-checking pipeline (bit-identical to the
  /// classic one, no standalone encode pass, panel-granular rung-0 repair).
  abft::AabftConfig aabft = default_aabft();
  /// Start with the dispatcher gated; call resume() to begin serving.
  bool start_paused = false;

  [[nodiscard]] static abft::AabftConfig default_aabft() noexcept {
    abft::AabftConfig config;
    config.max_block_recomputes = 1;
    config.fused_gemm = true;
    return config;
  }
};

class GemmServer {
 public:
  explicit GemmServer(gpusim::Launcher& launcher, ServeConfig config = {});
  ~GemmServer();
  GemmServer(const GemmServer&) = delete;
  GemmServer& operator=(const GemmServer&) = delete;

  /// Admit a request. On success the future resolves to the response once
  /// the dispatcher has served it; refusals (shape, overload, deadline,
  /// unsupported op kind) come back immediately as Result errors.
  [[nodiscard]] Result<std::future<GemmResponse>> submit(GemmRequest request);

  /// One-time encode of a repeated-use GEMM A operand into the operand
  /// cache. Returns the handle for GemmRequest::a_handle; registrations of
  /// content-identical matrices dedup to the existing handle. Errors:
  /// kUnavailable (cache disabled), kOverloaded (entry exceeds the byte
  /// budget), kInvalidArgument (empty matrix).
  [[nodiscard]] Result<std::uint64_t> register_operand(const linalg::Matrix& a) {
    return opcache_.register_operand(a);
  }

  /// Drop a cached operand (the fleet calls this after a parity
  /// reconstruction). In-flight requests pinning the entry finish with it;
  /// later requests re-encode. False when the handle is unknown.
  bool invalidate_operand(std::uint64_t handle) {
    return opcache_.invalidate(handle);
  }

  [[nodiscard]] const opcache::OperandCache& operand_cache() const noexcept {
    return opcache_;
  }

  /// Gate / ungate the dispatcher between batches. While paused, admitted
  /// requests accumulate in the queue (and can then coalesce into batches).
  void pause();
  void resume();

  /// Refuse new work, drain every queued request, and join the dispatcher.
  /// Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::string telemetry_json() const { return to_json(stats()); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  /// Outstanding admitted-but-not-completed flops (the admission backlog
  /// model) — the fleet router folds this into shard load.
  [[nodiscard]] std::uint64_t backlog_flops() const noexcept {
    return admission_.backlog_flops();
  }
  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// Nanoseconds on the server's monotonic clock (0 = construction time) —
  /// the timebase of every RequestTrace timestamp.
  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  void dispatch_loop();
  void serve_batch(std::vector<PendingRequest>&& batch);
  void ensure_lanes(std::size_t want);
  [[nodiscard]] bool paused() const AABFT_EXCLUDES(pause_mu_);

  gpusim::Launcher& launcher_;
  ServeConfig config_;
  baselines::AabftScheme primary_;
  baselines::TmrScheme tmr_;
  BoundedRequestQueue queue_;
  AdmissionController admission_;

  StatsBoard stats_;
  /// Declared after stats_ (counter sink) and before the dispatcher thread:
  /// every pin lives in a PendingRequest, and stop() drains those before any
  /// member is destroyed, so the cache safely outlives all pins.
  opcache::OperandCache opcache_;

  /// Serializes stop() calls (idempotent join). Held across queue close and
  /// the dispatcher join, so it ranks below every other serve lock.
  core::Mutex stop_mu_{core::LockRank::kServeControl, "serve.stop"};
  mutable core::Mutex pause_mu_{core::LockRank::kServePause, "serve.pause"};
  core::CondVar pause_cv_;
  bool paused_ AABFT_GUARDED_BY(pause_mu_) = false;
  bool stopping_ AABFT_GUARDED_BY(pause_mu_) = false;

  std::chrono::steady_clock::time_point start_;
  std::vector<gpusim::Stream> lanes_;  // dispatcher-owned, created lazily
  std::thread dispatcher_;
};

}  // namespace aabft::serve
