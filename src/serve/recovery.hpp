// The per-response recovery ladder.
//
// The scheme itself already climbs the cheap rungs inside one operation
// (A-ABFT detect -> locate_and_correct patch -> per-block recompute ->
// bounded full recomputes; for the panel factorizations, block recomputes
// act at panel-update granularity and "full recompute" includes the
// restart-once after a carry mismatch). The serving layer adds the rungs
// above it: re-dispatch the whole operation (bounded by a per-request retry
// budget — one-shot faults have been consumed by then, so a retry is
// usually clean), then escalate to the TMR scheme (element voting for
// products, whole-result replica voting for factorizations), and finally
// fail with a diagnosis instead of serving a result nobody vouches for.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "baselines/scheme.hpp"
#include "serve/request.hpp"

namespace aabft::serve {

struct RecoveryPolicy {
  /// Serve-level full re-dispatches after the scheme's own ladder failed.
  std::size_t retry_budget = 1;
  /// Escalate to the TMR scheme when retries are exhausted.
  bool escalate_tmr = true;
};

struct RecoveryOutcome {
  /// The settled scheme result; nullopt only when every rung (including the
  /// first pass) was refused as a value error.
  std::optional<baselines::SchemeResult> result;
  RecoveryRung rung = RecoveryRung::kNone;
  std::size_t retries = 0;
  bool tmr_escalated = false;
  bool ok = false;  ///< a rung produced a clean result
  std::string diagnosis;  ///< why the ladder was exhausted, when !ok
};

/// Map a clean in-scheme result onto the deepest rung that ran.
[[nodiscard]] RecoveryRung rung_of(const baselines::SchemeResult& r) noexcept;

/// Climb the serve-level rungs for one operation. `first` is the result of
/// the already-run primary execute (possibly with faults armed); retries and
/// the TMR escalation re-run fault-free. `tmr` may be nullptr to disable
/// escalation regardless of policy; it is also skipped when it does not
/// support `desc.kind`.
[[nodiscard]] RecoveryOutcome run_ladder(
    baselines::ProtectedBlas3& primary, baselines::ProtectedBlas3* tmr,
    const baselines::OpDescriptor& desc, const linalg::Matrix& a,
    const linalg::Matrix& b, Result<baselines::SchemeResult> first,
    const RecoveryPolicy& policy);

}  // namespace aabft::serve
