#include "serve/telemetry.hpp"

#include <sstream>

namespace aabft::serve {
namespace {

void append_recorder(std::ostringstream& out, const char* name,
                     const LatencyRecorder& rec, bool last) {
  out << "    \"" << name << "\": {\"count\": " << rec.count()
      << ", \"mean\": " << rec.mean() << ", \"p50\": " << rec.p50()
      << ", \"p95\": " << rec.p95() << ", \"p99\": " << rec.p99()
      << ", \"max\": " << rec.max() << "}" << (last ? "\n" : ",\n");
}

}  // namespace

std::string to_json(const ServerStats& stats) {
  std::ostringstream out;
  out << "{\n";
  const auto field = [&](const char* name, std::uint64_t value) {
    out << "  \"" << name << "\": " << value << ",\n";
  };
  field("submitted", stats.submitted);
  field("admitted", stats.admitted);
  field("rejected_queue_full", stats.rejected_queue_full);
  field("rejected_deadline", stats.rejected_deadline);
  field("rejected_shape", stats.rejected_shape);
  field("rejected_unsupported", stats.rejected_unsupported);
  field("completed", stats.completed);
  for (std::size_t i = 0; i < baselines::kNumOpKinds; ++i)
    field((std::string("completed_") +
           std::string(to_string(static_cast<baselines::OpKind>(i))))
              .c_str(),
          stats.completed_by_kind[i]);
  field("failed", stats.failed);
  field("detected", stats.detected);
  field("corrected", stats.corrected);
  field("corrections", stats.corrections);
  field("block_recomputes", stats.block_recomputes);
  field("full_recomputes", stats.full_recomputes);
  field("retries", stats.retries);
  field("tmr_escalations", stats.tmr_escalations);
  field("faults_armed", stats.faults_armed);
  field("faults_fired", stats.faults_fired);
  field("batches", stats.batches);
  field("batched_requests", stats.batched_requests);
  field("max_batch", stats.max_batch);
  out << "  \"latency_ns\": {\n";
  append_recorder(out, "queue_wait", stats.queue_wait_ns, false);
  append_recorder(out, "service", stats.service_ns, false);
  append_recorder(out, "e2e", stats.e2e_ns, true);
  out << "  }\n}\n";
  return out.str();
}

}  // namespace aabft::serve
