#include "serve/telemetry.hpp"

#include <algorithm>
#include <sstream>

namespace aabft::serve {
namespace {

void append_recorder(std::ostringstream& out, const char* name,
                     const LatencyRecorder& rec, bool last) {
  out << "    \"" << name << "\": {\"count\": " << rec.count()
      << ", \"mean\": " << rec.mean() << ", \"p50\": " << rec.p50()
      << ", \"p95\": " << rec.p95() << ", \"p99\": " << rec.p99()
      << ", \"max\": " << rec.max() << "}" << (last ? "\n" : ",\n");
}

}  // namespace

void merge_into(ServerStats& into, const ServerStats& from) {
  into.submitted += from.submitted;
  into.admitted += from.admitted;
  into.rejected_queue_full += from.rejected_queue_full;
  into.rejected_deadline += from.rejected_deadline;
  into.rejected_shape += from.rejected_shape;
  into.rejected_unsupported += from.rejected_unsupported;
  into.completed += from.completed;
  into.failed += from.failed;
  for (std::size_t i = 0; i < baselines::kNumOpKinds; ++i)
    into.completed_by_kind[i] += from.completed_by_kind[i];
  into.detected += from.detected;
  into.corrected += from.corrected;
  into.corrections += from.corrections;
  into.panel_detections += from.panel_detections;
  into.fused_encode_requests += from.fused_encode_requests;
  into.block_recomputes += from.block_recomputes;
  into.full_recomputes += from.full_recomputes;
  into.retries += from.retries;
  into.tmr_escalations += from.tmr_escalations;
  into.faults_armed += from.faults_armed;
  into.faults_fired += from.faults_fired;
  into.batches += from.batches;
  into.batched_requests += from.batched_requests;
  into.opcache_hits += from.opcache_hits;
  into.opcache_misses += from.opcache_misses;
  into.opcache_registered += from.opcache_registered;
  into.opcache_evictions += from.opcache_evictions;
  into.opcache_invalidations += from.opcache_invalidations;
  into.opcache_bytes += from.opcache_bytes;
  into.opcache_pinned_bytes += from.opcache_pinned_bytes;
  into.max_batch = std::max(into.max_batch, from.max_batch);
  into.queue_wait_ns.merge(from.queue_wait_ns);
  into.service_ns.merge(from.service_ns);
  into.e2e_ns.merge(from.e2e_ns);
}

ServerStats StatsBoard::snapshot() const {
  ServerStats s;
  {
    core::MutexLock lk(recorder_mu_);
    s.queue_wait_ns = queue_wait_ns_;
    s.service_ns = service_ns_;
    s.e2e_ns = e2e_ns_;
  }
  // One acquire pass over the counters: everything bumped before the fence's
  // matching release-or-later writes is visible, and each field is a single
  // whole load — no torn reads while workers are live.
  std::atomic_thread_fence(std::memory_order_acquire);
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  s.submitted = load(submitted);
  s.admitted = load(admitted);
  s.rejected_queue_full = load(rejected_queue_full);
  s.rejected_deadline = load(rejected_deadline);
  s.rejected_shape = load(rejected_shape);
  s.rejected_unsupported = load(rejected_unsupported);
  s.completed = load(completed);
  s.failed = load(failed);
  for (std::size_t i = 0; i < baselines::kNumOpKinds; ++i)
    s.completed_by_kind[i] = load(completed_by_kind[i]);
  s.detected = load(detected);
  s.corrected = load(corrected);
  s.corrections = load(corrections);
  s.panel_detections = load(panel_detections);
  s.fused_encode_requests = load(fused_encode_requests);
  s.block_recomputes = load(block_recomputes);
  s.full_recomputes = load(full_recomputes);
  s.retries = load(retries);
  s.tmr_escalations = load(tmr_escalations);
  s.faults_armed = load(faults_armed);
  s.faults_fired = load(faults_fired);
  s.batches = load(batches);
  s.batched_requests = load(batched_requests);
  s.opcache_hits = load(opcache_hits);
  s.opcache_misses = load(opcache_misses);
  s.opcache_registered = load(opcache_registered);
  s.opcache_evictions = load(opcache_evictions);
  s.opcache_invalidations = load(opcache_invalidations);
  s.opcache_bytes = load(opcache_bytes);
  s.opcache_pinned_bytes = load(opcache_pinned_bytes);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  return s;
}

std::string to_json(const ServerStats& stats) {
  std::ostringstream out;
  out << "{\n";
  const auto field = [&](const char* name, std::uint64_t value) {
    out << "  \"" << name << "\": " << value << ",\n";
  };
  field("submitted", stats.submitted);
  field("admitted", stats.admitted);
  field("rejected_queue_full", stats.rejected_queue_full);
  field("rejected_deadline", stats.rejected_deadline);
  field("rejected_shape", stats.rejected_shape);
  field("rejected_unsupported", stats.rejected_unsupported);
  field("completed", stats.completed);
  for (std::size_t i = 0; i < baselines::kNumOpKinds; ++i)
    field((std::string("completed_") +
           std::string(to_string(static_cast<baselines::OpKind>(i))))
              .c_str(),
          stats.completed_by_kind[i]);
  field("failed", stats.failed);
  field("detected", stats.detected);
  field("corrected", stats.corrected);
  field("corrections", stats.corrections);
  field("panel_detections", stats.panel_detections);
  field("fused_encode_requests", stats.fused_encode_requests);
  field("block_recomputes", stats.block_recomputes);
  field("full_recomputes", stats.full_recomputes);
  field("retries", stats.retries);
  field("tmr_escalations", stats.tmr_escalations);
  field("faults_armed", stats.faults_armed);
  field("faults_fired", stats.faults_fired);
  field("batches", stats.batches);
  field("batched_requests", stats.batched_requests);
  field("max_batch", stats.max_batch);
  field("opcache_hits", stats.opcache_hits);
  field("opcache_misses", stats.opcache_misses);
  field("opcache_registered", stats.opcache_registered);
  field("opcache_evictions", stats.opcache_evictions);
  field("opcache_invalidations", stats.opcache_invalidations);
  field("opcache_bytes", stats.opcache_bytes);
  field("opcache_pinned_bytes", stats.opcache_pinned_bytes);
  out << "  \"latency_ns\": {\n";
  append_recorder(out, "queue_wait", stats.queue_wait_ns, false);
  append_recorder(out, "service", stats.service_ns, false);
  append_recorder(out, "e2e", stats.e2e_ns, true);
  out << "  }\n}\n";
  return out.str();
}

}  // namespace aabft::serve
