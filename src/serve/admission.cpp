#include "serve/admission.hpp"

#include <string>
#include <utility>

#include "abft/padding.hpp"

namespace aabft::serve {

using baselines::OpDescriptor;
using baselines::OpKind;

Result<std::future<GemmResponse>> AdmissionController::admit(
    GemmRequest&& request, BoundedRequestQueue& queue, std::uint64_t now_ns) {
  const std::size_t m = request.a.rows();
  const std::size_t k = request.a.cols();
  if (m == 0 || k == 0)
    return Error{ErrorCode::kInvalidArgument, "empty operand"};
  if (request.deadline_ms < 0.0)
    return Error{ErrorCode::kInvalidArgument, "negative deadline"};
  if (request.fault_plan.size() > gpusim::FaultController::kMaxFaults)
    return Error{ErrorCode::kInvalidArgument,
                 "fault plan exceeds FaultController::kMaxFaults"};

  // Per-kind shape validation and the operation descriptor. GEMM problems
  // are padded here so equal-shape requests coalesce into one dispatch;
  // single-operand kinds keep original extents (their engines pad
  // internally) and their descriptor records the original problem.
  PendingRequest item;
  item.orig_m = m;
  switch (request.kind) {
    case OpKind::kGemm: {
      const std::size_t q = request.b.cols();
      if (q == 0) return Error{ErrorCode::kInvalidArgument, "empty operand"};
      if (k != request.b.rows())
        return shape_error("inner dimensions must agree: A is " +
                           std::to_string(m) + "x" + std::to_string(k) +
                           ", B is " + std::to_string(request.b.rows()) + "x" +
                           std::to_string(q));
      const std::size_t padded_m = abft::padded_dim(m, bs_);
      const std::size_t padded_q = abft::padded_dim(q, bs_);
      item.orig_q = q;
      if (padded_m != m) request.a = abft::pad_to(request.a, padded_m, k);
      if (padded_q != q) request.b = abft::pad_to(request.b, k, padded_q);
      item.desc = OpDescriptor::gemm(padded_m, k, padded_q);
      break;
    }
    case OpKind::kSyrk:
      item.orig_q = m;  // the product A A^T is m x m
      item.desc = OpDescriptor::syrk(m, k);
      break;
    case OpKind::kCholesky:
    case OpKind::kLu:
      if (m != k)
        return shape_error(std::string(to_string(request.kind)) +
                           " needs a square matrix, got " + std::to_string(m) +
                           "x" + std::to_string(k));
      item.orig_q = m;
      item.desc = request.kind == OpKind::kCholesky ? OpDescriptor::cholesky(m)
                                                    : OpDescriptor::lu(m);
      break;
  }

  // Deadline feasibility with the per-kind flop model (2mkq GEMM, m^2 k
  // SYRK, n^3/3 Cholesky, 2n^3/3 LU — see OpDescriptor::flops).
  const std::uint64_t flops = static_cast<std::uint64_t>(item.desc.flops());
  if (request.deadline_ms > 0.0) {
    const double backlog =
        static_cast<double>(backlog_flops_.load(std::memory_order_relaxed));
    const double estimate_ns = (backlog + static_cast<double>(flops)) *
                               config_.est_ns_per_flop /
                               static_cast<double>(workers_);
    if (estimate_ns > request.deadline_ms * 1e6)
      return Error{ErrorCode::kDeadlineInfeasible,
                   "estimated service time " +
                       std::to_string(estimate_ns / 1e6) +
                       " ms exceeds the deadline of " +
                       std::to_string(request.deadline_ms) + " ms"};
  }

  if (request.id == 0)
    request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  item.request = std::move(request);
  item.est_flops = flops;
  item.trace.enqueue_ns = now_ns;
  // Telemetry estimate of the depth this request lands at; concurrent
  // admissions may skew it by their in-flight pushes, which is acceptable
  // for a congestion signal.
  item.trace.queue_depth_at_admission = queue.depth() + 1;

  std::future<GemmResponse> future = item.promise.get_future();
  // Count the work in the backlog before the push so a concurrent admit
  // cannot under-estimate; roll back on refusal.
  backlog_flops_.fetch_add(flops, std::memory_order_relaxed);
  auto depth = queue.try_push(std::move(item));
  if (!depth) {
    backlog_flops_.fetch_sub(flops, std::memory_order_relaxed);
    return Error{ErrorCode::kOverloaded,
                 queue.closed() ? "server is stopped"
                                : "request queue is full (capacity " +
                                      std::to_string(queue.capacity()) + ")"};
  }
  return future;
}

}  // namespace aabft::serve
