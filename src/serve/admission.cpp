#include "serve/admission.hpp"

#include <string>
#include <utility>

#include "abft/padding.hpp"
#include "serve/opcache/fingerprint.hpp"

namespace aabft::serve {

using baselines::OpDescriptor;
using baselines::OpKind;

Result<std::future<GemmResponse>> AdmissionController::admit(
    GemmRequest&& request, BoundedRequestQueue& queue, std::uint64_t now_ns,
    opcache::OperandCache* cache) {
  // Resolve an explicit operand-cache reference first: the handle stands in
  // for A entirely, so shape validation reads the cached entry's extents.
  opcache::OperandCache::Pin pin;
  if (request.a_handle != 0) {
    if (request.kind != OpKind::kGemm)
      return Error{ErrorCode::kInvalidArgument,
                   "operand handles stand in for GEMM A operands only"};
    if (cache == nullptr)
      return Error{ErrorCode::kInvalidArgument,
                   "request carries operand handle " +
                       std::to_string(request.a_handle) +
                       " but the server has no operand cache"};
    pin = cache->acquire(request.a_handle);
    if (!pin)
      return Error{ErrorCode::kInvalidArgument,
                   "unknown or evicted operand handle " +
                       std::to_string(request.a_handle)};
  }
  const std::size_t m = pin ? pin->orig_rows : request.a.rows();
  const std::size_t k = pin ? pin->orig_cols : request.a.cols();
  if (m == 0 || k == 0)
    return Error{ErrorCode::kInvalidArgument, "empty operand"};
  if (request.deadline_ms < 0.0)
    return Error{ErrorCode::kInvalidArgument, "negative deadline"};
  if (request.fault_plan.size() > gpusim::FaultController::kMaxFaults)
    return Error{ErrorCode::kInvalidArgument,
                 "fault plan exceeds FaultController::kMaxFaults"};

  // Per-kind shape validation and the operation descriptor. GEMM problems
  // are padded here so equal-shape requests coalesce into one dispatch;
  // single-operand kinds keep original extents (their engines pad
  // internally) and their descriptor records the original problem.
  PendingRequest item;
  item.orig_m = m;
  switch (request.kind) {
    case OpKind::kGemm: {
      const std::size_t q = request.b.cols();
      if (q == 0) return Error{ErrorCode::kInvalidArgument, "empty operand"};
      if (k != request.b.rows())
        return shape_error("inner dimensions must agree: A is " +
                           std::to_string(m) + "x" + std::to_string(k) +
                           ", B is " + std::to_string(request.b.rows()) + "x" +
                           std::to_string(q));
      // Implicit cache hit: an inline A whose content fingerprint matches a
      // registered entry reuses the cached encode. Fingerprinting reads the
      // original (unpadded) matrix — register_operand hashed the same form.
      if (!pin && cache != nullptr && cache->config().enabled &&
          cache->config().implicit_fingerprinting) {
        if (auto hit = cache->lookup(opcache::fingerprint_matrix(request.a)))
          pin = cache->acquire(*hit);  // may race an eviction: stays cold
      }
      const std::size_t padded_m =
          pin ? pin->padded.rows() : abft::padded_dim(m, bs_);
      const std::size_t padded_q = abft::padded_dim(q, bs_);
      item.orig_q = q;
      if (pin) {
        // The cached padded copy serves; drop the inline operand (if any) so
        // the queue does not hold a redundant O(m k) buffer.
        request.a = linalg::Matrix();
        request.a_handle = pin->handle;
        item.a_handle = pin->handle;
        item.pin = std::move(pin);
        item.trace.cache_hit = true;
      } else if (padded_m != m) {
        request.a = abft::pad_to(request.a, padded_m, k);
      }
      if (padded_q != q) request.b = abft::pad_to(request.b, k, padded_q);
      item.desc = OpDescriptor::gemm(padded_m, k, padded_q);
      break;
    }
    case OpKind::kSyrk:
      item.orig_q = m;  // the product A A^T is m x m
      item.desc = OpDescriptor::syrk(m, k);
      break;
    case OpKind::kCholesky:
    case OpKind::kLu:
      if (m != k)
        return shape_error(std::string(to_string(request.kind)) +
                           " needs a square matrix, got " + std::to_string(m) +
                           "x" + std::to_string(k));
      item.orig_q = m;
      item.desc = request.kind == OpKind::kCholesky ? OpDescriptor::cholesky(m)
                                                    : OpDescriptor::lu(m);
      break;
  }

  // Deadline feasibility with the per-kind flop model (2mkq GEMM, m^2 k
  // SYRK, n^3/3 Cholesky, 2n^3/3 LU — see OpDescriptor::flops). GEMM also
  // charges the checksum-encode passes: B's encode (2 k q', the small side
  // for tall-A traffic) always, A's encode (2 m' k) only on a cache miss —
  // the operand cache's economic win expressed in the admission model.
  std::uint64_t flops = static_cast<std::uint64_t>(item.desc.flops());
  if (request.kind == OpKind::kGemm) {
    flops += 2ull * item.desc.k * item.desc.q;
    if (!item.pin) flops += 2ull * item.desc.m * item.desc.k;
  }
  if (request.deadline_ms > 0.0) {
    const double backlog =
        static_cast<double>(backlog_flops_.load(std::memory_order_relaxed));
    const double estimate_ns = (backlog + static_cast<double>(flops)) *
                               config_.est_ns_per_flop /
                               static_cast<double>(workers_);
    if (estimate_ns > request.deadline_ms * 1e6)
      return Error{ErrorCode::kDeadlineInfeasible,
                   "estimated service time " +
                       std::to_string(estimate_ns / 1e6) +
                       " ms exceeds the deadline of " +
                       std::to_string(request.deadline_ms) + " ms"};
  }

  if (request.id == 0)
    request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  item.request = std::move(request);
  item.est_flops = flops;
  item.trace.enqueue_ns = now_ns;
  // Telemetry estimate of the depth this request lands at; concurrent
  // admissions may skew it by their in-flight pushes, which is acceptable
  // for a congestion signal.
  item.trace.queue_depth_at_admission = queue.depth() + 1;

  std::future<GemmResponse> future = item.promise.get_future();
  // Count the work in the backlog before the push so a concurrent admit
  // cannot under-estimate; roll back on refusal.
  backlog_flops_.fetch_add(flops, std::memory_order_relaxed);
  auto depth = queue.try_push(std::move(item));
  if (!depth) {
    backlog_flops_.fetch_sub(flops, std::memory_order_relaxed);
    return Error{ErrorCode::kOverloaded,
                 queue.closed() ? "server is stopped"
                                : "request queue is full (capacity " +
                                      std::to_string(queue.capacity()) + ")"};
  }
  return future;
}

}  // namespace aabft::serve
