#include "serve/server.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "abft/padding.hpp"
#include "baselines/tmr.hpp"

namespace aabft::serve {
namespace {

[[nodiscard]] baselines::TmrConfig tmr_config_of(const abft::AabftConfig& a) {
  baselines::TmrConfig config;
  config.gemm = a.gemm;
  return config;
}

}  // namespace

GemmServer::GemmServer(gpusim::Launcher& launcher, ServeConfig config)
    : launcher_(launcher),
      config_(config),
      primary_(launcher, config.aabft),
      tmr_(launcher, tmr_config_of(config.aabft)),
      queue_(config.admission.queue_capacity),
      admission_(config.admission, config.aabft.bs, launcher.workers()),
      opcache_(launcher, config.aabft, config.opcache, &stats_),
      paused_(config.start_paused),
      start_(std::chrono::steady_clock::now()) {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

GemmServer::~GemmServer() { stop(); }

Result<std::future<GemmResponse>> GemmServer::submit(GemmRequest request) {
  StatsBoard::bump(stats_.submitted);
  if (!primary_.supports(request.kind)) {
    StatsBoard::bump(stats_.rejected_unsupported);
    return unsupported_op_error(
        "scheme '" + std::string(primary_.name()) +
        "' does not implement op kind '" +
        std::string(baselines::to_string(request.kind)) + "'");
  }
  auto admitted = admission_.admit(std::move(request), queue_, now_ns(),
                                   &opcache_);
  if (admitted.ok()) {
    StatsBoard::bump(stats_.admitted);
  } else {
    switch (admitted.error().code) {
      case ErrorCode::kOverloaded:
        StatsBoard::bump(stats_.rejected_queue_full);
        break;
      case ErrorCode::kDeadlineInfeasible:
        StatsBoard::bump(stats_.rejected_deadline);
        break;
      case ErrorCode::kUnsupportedOp:
        StatsBoard::bump(stats_.rejected_unsupported);
        break;
      default:
        StatsBoard::bump(stats_.rejected_shape);
        break;
    }
  }
  return admitted;
}

void GemmServer::pause() {
  core::MutexLock lk(pause_mu_);
  paused_ = true;
}

void GemmServer::resume() {
  {
    core::MutexLock lk(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

bool GemmServer::paused() const {
  core::MutexLock lk(pause_mu_);
  return paused_ && !stopping_;
}

void GemmServer::stop() {
  core::MutexLock stop_lk(stop_mu_);
  {
    core::MutexLock lk(pause_mu_);
    stopping_ = true;
    paused_ = false;
  }
  pause_cv_.notify_all();
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServerStats GemmServer::stats() const { return stats_.snapshot(); }

void GemmServer::ensure_lanes(std::size_t want) {
  while (lanes_.size() < want) lanes_.push_back(launcher_.create_stream());
}

void GemmServer::dispatch_loop() {
  BatchAssembler assembler(queue_, config_.batch);
  for (;;) {
    {
      core::UniqueLock lk(pause_mu_);
      while (paused_ && !stopping_) pause_cv_.wait(lk);
    }
    // Bounded wait so a pause() that lands while we sleep on an empty queue
    // is observed before the next pop.
    if (!queue_.wait_nonempty_for(std::chrono::microseconds(1000))) {
      if (queue_.closed() && queue_.depth() == 0) break;
      continue;
    }
    if (paused()) continue;
    auto batch = assembler.next_batch();
    if (batch.empty()) break;  // closed and drained
    serve_batch(std::move(batch));
  }
}

void GemmServer::serve_batch(std::vector<PendingRequest>&& batch) {
  const std::size_t n = batch.size();
  const std::uint64_t dispatch_ns = now_ns();
  bool any_faults = false;
  // The batch key includes the resolved operand handle, so a batch is
  // uniformly cache-backed or uniformly cold.
  const bool cached = batch.front().pin != nullptr;
  std::vector<std::pair<linalg::Matrix, linalg::Matrix>> problems;
  problems.reserve(n);
  for (auto& item : batch) {
    item.trace.dispatch_ns = dispatch_ns;
    item.trace.batch_size = n;
    item.trace.faults_armed = item.request.fault_plan.size();
    any_faults |= !item.request.fault_plan.empty();
    // Cache-backed requests copy the pinned padded A into the problem slot:
    // the recovery ladder's retry/TMR rungs need a real operand, and the
    // copy is a memcpy — the O(m k) encode pass is what the cache elides.
    if (cached)
      problems.emplace_back(item.pin->padded, std::move(item.request.b));
    else
      problems.emplace_back(std::move(item.request.a),
                            std::move(item.request.b));
  }

  // Batches are kind-homogeneous (the batch key includes the op kind).
  const bool gemm_batch =
      batch.front().desc.kind == baselines::OpKind::kGemm;

  // Result<> has no default constructor, hence the optional wrapper; a slot
  // left empty means the compute task died before producing a result.
  std::vector<std::optional<Result<baselines::SchemeResult>>> results(n);
  if (gemm_batch && !any_faults) {
    // The pipelined GEMM fast path — bit-identical to the pre-ProtectedBlas3
    // server (multiply_batch is the execute_batch(kGemm, ...) shim). Cache-
    // backed batches run the preencoded variant, which consumes A's checksum
    // side-buffers from the pinned entry instead of re-encoding.
    std::vector<Result<baselines::SchemeResult>> batch_results;
    if (cached) {
      std::vector<abft::PreencodedProblem> pre(n);
      for (std::size_t i = 0; i < n; ++i)
        pre[i] = {&batch[i].pin->pre, &problems[i].second};
      batch_results = primary_.execute_batch_preencoded(pre);
    } else {
      batch_results = primary_.multiply_batch(problems);
    }
    const std::uint64_t compute_ns = now_ns();
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = std::move(batch_results[i]);
      batch[i].trace.compute_ns = compute_ns;
    }
  } else {
    // Per-request fault plans need per-request controller lifecycles (and
    // non-GEMM kinds have no batched dispatch), so each operation runs as
    // its own host task: arm -> execute under a thread-scoped controller ->
    // read fired count -> disarm. Tasks spread round-robin over the stream
    // lanes and overlap across pool workers.
    ensure_lanes(std::min<std::size_t>(
        n, std::max<std::size_t>(1, launcher_.workers())));
    for (std::size_t i = 0; i < n; ++i) {
      launcher_.launch_host_async(
          lanes_[i % lanes_.size()], "serve_request",
          [this, i, cached, &batch, &problems, &results] {
            PendingRequest& item = batch[i];
            const auto& [a, b] = problems[i];
            const auto run_one = [&]() -> Result<baselines::SchemeResult> {
              return cached ? primary_.execute_preencoded(item.pin->pre, b)
                            : primary_.execute(item.desc, a, b);
            };
            if (item.request.fault_plan.empty()) {
              results[i] = run_one();
            } else {
              gpusim::FaultController ctl;
              ctl.arm_many(item.request.fault_plan);
              {
                gpusim::ScopedFaultController guard(&ctl);
                results[i] = run_one();
              }
              ctl.disarm();
              item.trace.faults_fired = ctl.fired_count();
            }
            item.trace.compute_ns = now_ns();
          });
    }
    for (auto& lane : lanes_) lane.synchronize();
  }

  for (std::size_t i = 0; i < n; ++i) {
    PendingRequest& item = batch[i];
    if (item.trace.compute_ns == 0) item.trace.compute_ns = now_ns();
    Result<baselines::SchemeResult> first =
        results[i] ? std::move(*results[i])
                   : Result<baselines::SchemeResult>(Error{
                         ErrorCode::kExecutionFailed,
                         "compute task did not produce a result"});
    RecoveryOutcome outcome = run_ladder(
        primary_, config_.recovery.escalate_tmr ? &tmr_ : nullptr, item.desc,
        problems[i].first, problems[i].second, std::move(first),
        config_.recovery);
    item.trace.repair_ns = now_ns();

    GemmResponse response;
    response.id = item.request.id;
    response.kind = item.desc.kind;
    item.trace.retries = outcome.retries;
    item.trace.tmr_escalated = outcome.tmr_escalated;
    if (outcome.result) {
      baselines::SchemeResult& r = *outcome.result;
      item.trace.corrected = r.corrected;
      item.trace.corrections = r.corrections;
      item.trace.panel_detections = r.panel_detections;
      item.trace.panel_recomputes = r.panel_recomputes;
      item.trace.fused_encode = r.fused_encode;
      item.trace.block_recomputes = r.block_recomputes;
      item.trace.full_recomputes = r.recomputed;
      item.trace.detected =
          r.detected || outcome.rung != RecoveryRung::kNone;
      linalg::Matrix c = std::move(r.c);
      if (c.rows() != item.orig_m || c.cols() != item.orig_q)
        c = abft::unpad_to(c, item.orig_m, item.orig_q);
      response.c = std::move(c);
      response.perm = std::move(r.perm);
    } else {
      item.trace.detected = true;
    }
    response.rung = outcome.rung;
    if (outcome.ok) {
      response.status = ResponseStatus::kOk;
      response.clean = true;
    } else {
      response.status = ResponseStatus::kFailed;
      response.clean = false;
      response.diagnosis = outcome.diagnosis;
    }
    item.trace.complete_ns = now_ns();
    response.trace = item.trace;

    if (outcome.ok) {
      StatsBoard::bump(stats_.completed);
      StatsBoard::bump(
          stats_.completed_by_kind[static_cast<std::size_t>(item.desc.kind)]);
    } else {
      StatsBoard::bump(stats_.failed);
    }
    if (item.trace.detected) StatsBoard::bump(stats_.detected);
    if (item.trace.corrected) StatsBoard::bump(stats_.corrected);
    StatsBoard::bump(stats_.corrections, item.trace.corrections);
    StatsBoard::bump(stats_.panel_detections, item.trace.panel_detections);
    if (item.trace.fused_encode) StatsBoard::bump(stats_.fused_encode_requests);
    StatsBoard::bump(stats_.block_recomputes, item.trace.block_recomputes);
    StatsBoard::bump(stats_.full_recomputes, item.trace.full_recomputes);
    StatsBoard::bump(stats_.retries, item.trace.retries);
    if (item.trace.tmr_escalated) StatsBoard::bump(stats_.tmr_escalations);
    StatsBoard::bump(stats_.faults_armed, item.trace.faults_armed);
    StatsBoard::bump(stats_.faults_fired, item.trace.faults_fired);
    stats_.record_queue_wait(item.trace.dispatch_ns - item.trace.enqueue_ns);
    stats_.record_service(item.trace.repair_ns - item.trace.dispatch_ns);
    stats_.record_e2e(item.trace.complete_ns - item.trace.enqueue_ns);
    item.promise.set_value(std::move(response));
    admission_.on_complete(item.est_flops);
  }

  StatsBoard::bump(stats_.batches);
  if (n >= 2) StatsBoard::bump(stats_.batched_requests, n);
  stats_.note_batch_size(n);
}

}  // namespace aabft::serve
