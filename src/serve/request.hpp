// Request/response types of the protected BLAS-3 serving layer.
//
// A GemmRequest (historical name; `OpRequest` is the kind-neutral alias) is
// one protected operation a tenant submits: an op kind (GEMM, SYRK,
// Cholesky, LU), operands, a priority class, an optional latency deadline,
// and (for fault-campaign traffic) a per-request fault plan armed for
// exactly this request's protected compute. Single-operand kinds (SYRK and
// the factorizations) read only `a`; `b` may be left empty. The response
// carries the data result (plus the pivot permutation for LU), the scheme's
// cleanliness verdict, which rung of the recovery ladder produced the
// answer, and a structured per-request trace (timestamps + outcome counters)
// that the server aggregates into its telemetry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/op.hpp"
#include "gpusim/fault_site.hpp"
#include "linalg/matrix.hpp"

namespace aabft::serve {

using baselines::OpKind;

/// Dispatch priority classes; lower enumerator value pops first.
enum class Priority : std::uint8_t {
  kHigh = 0,    ///< latency-sensitive interactive traffic
  kNormal = 1,  ///< the default class
  kBatch = 2,   ///< throughput traffic, served when nothing else waits
};
inline constexpr std::size_t kNumPriorities = 3;

struct GemmRequest {
  std::uint64_t id = 0;  ///< 0 = assigned by the server at admission
  /// The requested operation. GEMM reads `a` and `b`; SYRK computes
  /// A * A^T from `a` alone; Cholesky/LU factor the square `a`.
  OpKind kind = OpKind::kGemm;
  linalg::Matrix a;
  linalg::Matrix b;
  /// Operand-cache handle standing in for `a` (GEMM only; 0 = none). Set it
  /// to a handle from GemmServer::register_operand and leave `a` empty: the
  /// dispatcher consumes the cached encoded artifacts, skipping A's
  /// per-request checksum encode. Requests with inline `a` may still hit the
  /// cache implicitly by content fingerprint.
  std::uint64_t a_handle = 0;
  Priority priority = Priority::kNormal;
  /// End-to-end latency budget in milliseconds; 0 disables the deadline.
  /// Admission rejects requests whose estimated service time (including the
  /// current backlog) already exceeds the budget.
  double deadline_ms = 0.0;
  /// Faults armed for exactly this request's protected multiply (one-shot,
  /// disarmed when the request's compute finishes). Empty for production
  /// traffic; campaign drivers use it to exercise the recovery ladder.
  std::vector<gpusim::FaultConfig> fault_plan;
};

enum class ResponseStatus : std::uint8_t {
  kOk,      ///< the result is served and vouched for
  kFailed,  ///< the recovery ladder was exhausted; see diagnosis
};

/// Which rung of the detect -> correct -> recompute ladder settled the
/// response (the deepest repair that ran, for clean responses).
enum class RecoveryRung : std::uint8_t {
  kNone = 0,        ///< clean first pass, nothing detected
  kPanelRecompute,  ///< online k-panel screen + tile replay inside the fused
                    ///< product — repaired before the operation finished
  kCorrected,       ///< localisation + checksum patch (abft::locate_and_correct)
  kBlockRecompute,  ///< per-block bit-exact recompute (abft::recompute_blocks)
  kFullRecompute,   ///< full product re-execution inside the scheme
  kRetry,           ///< serve-level re-dispatch of the whole multiply
  kTmr,             ///< escalation to the TMR scheme
  kFailed,          ///< ladder exhausted without a clean result
};

[[nodiscard]] std::string_view to_string(RecoveryRung rung) noexcept;

/// Per-request structured telemetry. Timestamps are nanoseconds on the
/// server's monotonic clock (0 = stage not reached); they are monotone in
/// declaration order for completed requests.
struct RequestTrace {
  std::uint64_t enqueue_ns = 0;   ///< admitted into the queue
  std::uint64_t dispatch_ns = 0;  ///< popped into a batch
  std::uint64_t compute_ns = 0;   ///< scheme result (incl. check) available
  std::uint64_t repair_ns = 0;    ///< recovery ladder finished
  std::uint64_t complete_ns = 0;  ///< response handed to the caller
  std::size_t queue_depth_at_admission = 0;  ///< including this request
  std::size_t batch_size = 0;     ///< requests coalesced into the dispatch
  std::size_t faults_armed = 0;
  std::size_t faults_fired = 0;
  bool detected = false;
  bool corrected = false;
  std::size_t corrections = 0;       ///< elements patched from checksums
  std::size_t panel_detections = 0;  ///< online k-panel screen mismatches
  std::size_t panel_recomputes = 0;  ///< fused-product tile panel replays
  std::size_t block_recomputes = 0;  ///< checksum blocks recomputed in place
  std::size_t full_recomputes = 0;   ///< in-scheme full re-executions
  std::size_t retries = 0;           ///< serve-level re-dispatches
  bool tmr_escalated = false;
  /// Checksums were accumulated inside the product kernel (fused pipeline).
  bool fused_encode = false;
  /// A's encode came from the operand cache (explicit handle or implicit
  /// fingerprint match) instead of a per-request encode pass.
  bool cache_hit = false;
};

struct GemmResponse {
  std::uint64_t id = 0;
  OpKind kind = OpKind::kGemm;  ///< echoes the request's op kind
  ResponseStatus status = ResponseStatus::kOk;
  /// The data result in original (unpadded) extents: the m x q product for
  /// GEMM, the m x m product for SYRK, the packed factors for Cholesky/LU.
  linalg::Matrix c;
  /// LU only: row permutation (factored row i of PA is original row perm[i]).
  std::vector<std::size_t> perm;
  /// The serving scheme vouches for the result (detection passed clean,
  /// possibly after repair). Always false for kFailed responses.
  bool clean = false;
  RecoveryRung rung = RecoveryRung::kNone;
  std::string diagnosis;  ///< failure description when status == kFailed
  RequestTrace trace;
};

/// Kind-neutral aliases: the request/response types serve every op kind.
using OpRequest = GemmRequest;
using OpResponse = GemmResponse;

inline std::string_view to_string(RecoveryRung rung) noexcept {
  switch (rung) {
    case RecoveryRung::kNone: return "none";
    case RecoveryRung::kPanelRecompute: return "panel-recompute";
    case RecoveryRung::kCorrected: return "corrected";
    case RecoveryRung::kBlockRecompute: return "block-recompute";
    case RecoveryRung::kFullRecompute: return "full-recompute";
    case RecoveryRung::kRetry: return "retry";
    case RecoveryRung::kTmr: return "tmr";
    case RecoveryRung::kFailed: return "failed";
  }
  return "?";
}

}  // namespace aabft::serve
