#include "serve/batcher.hpp"

#include <utility>

namespace aabft::serve {

std::vector<PendingRequest> BatchAssembler::next_batch() {
  std::vector<PendingRequest> batch;
  auto head = queue_.pop();
  if (!head) return batch;  // closed and drained

  const ShapeKey key = shape_of(*head);
  batch.push_back(std::move(*head));

  const auto deadline = std::chrono::steady_clock::now() + config_.linger;
  while (batch.size() < config_.max_batch) {
    if (auto next = queue_.try_pop_matching(key)) {
      batch.push_back(std::move(*next));
      continue;
    }
    // Work of a different shape is waiting: dispatch what we have rather
    // than holding it up behind the linger window.
    if (queue_.depth() > 0) break;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    queue_.wait_nonempty_for(
        std::chrono::duration_cast<std::chrono::microseconds>(deadline - now));
  }
  return batch;
}

}  // namespace aabft::serve
