// Cross-request batch assembly.
//
// The dispatcher thread asks the assembler for "the next batch": it blocks
// on the queue head, then coalesces further queued requests of the same
// padded shape (identical kernel grids, so they can share one
// multiply_batch dispatch across executor streams). Coalescing never holds
// up ready work of a different shape — the assembler only lingers (bounded
// by BatchConfig::linger) while the queue is otherwise empty.
#pragma once

#include <chrono>
#include <vector>

#include "serve/queue.hpp"

namespace aabft::serve {

struct BatchConfig {
  /// Max requests coalesced into one dispatch. 1 disables batching.
  std::size_t max_batch = 8;
  /// How long to wait for same-shape companions when the queue is empty.
  std::chrono::microseconds linger{200};
};

class BatchAssembler {
 public:
  BatchAssembler(BoundedRequestQueue& queue, BatchConfig config) noexcept
      : queue_(queue), config_(config) {}

  /// Block for the next batch of shape-identical requests (>= 1 item).
  /// Returns an empty vector once the queue is closed and drained.
  [[nodiscard]] std::vector<PendingRequest> next_batch();

 private:
  BoundedRequestQueue& queue_;
  BatchConfig config_;
};

}  // namespace aabft::serve
