// Per-device health model. Each served response feeds one Observation
// (corrections, TMR escalations, retries, outright failures — the telemetry
// the recovery ladder already produces per request) into EWMA rate trackers;
// the trackers fold into an availability score in [0,1] that the shard
// router divides load by. A device whose correction rate spikes — the
// A-ABFT signature of real hardware going bad, as opposed to the background
// rate the checksums absorb silently — crosses the fence thresholds and is
// quarantined (latched; there is no un-fence short of restarting the fleet).
#pragma once

#include <atomic>
#include <cstdint>

namespace aabft::fleet {

/// One served response, reduced to what health tracking needs. Decoupled
/// from serve::GemmResponse so the model is testable without a server.
struct Observation {
  bool ok = true;            ///< ladder settled with a trustworthy result
  bool corrected = false;    ///< A-ABFT corrected at least one element
  bool tmr_escalated = false;
  std::uint64_t retries = 0;
};

struct HealthConfig {
  /// EWMA smoothing factor per observation (higher = faster reaction).
  double alpha = 0.08;
  /// Observations before rates are trusted (a single early fault on a
  /// near-empty window would otherwise read as a 100% correction rate).
  std::uint64_t min_observations = 16;
  /// Availability below this marks the device degraded (router deprioritises
  /// it; work stealing pulls its queue down).
  double degrade_score = 0.75;
  /// EWMA correction rate above this fences the device outright.
  double fence_correction_rate = 0.5;
  /// EWMA failure (ladder-exhausted) rate above this fences the device.
  double fence_failure_rate = 0.25;
  // Penalty weights: availability = clamp01(1 - sum(weight * rate)).
  double correction_weight = 0.8;
  double failure_weight = 2.0;
  double tmr_weight = 0.5;
  double retry_weight = 0.25;
};

enum class HealthState { kHealthy, kDegraded, kFenced };

[[nodiscard]] const char* to_string(HealthState state) noexcept;

/// Single-writer (the shard's collector thread calls observe()), many-reader
/// (router and aggregator read availability/state through atomics).
class DeviceHealth {
 public:
  explicit DeviceHealth(HealthConfig config = {}) : config_(config) {}

  void observe(const Observation& obs) noexcept;

  /// Quarantine immediately regardless of rates (forced failure, operator
  /// action). Latched.
  void force_fence() noexcept {
    state_.store(static_cast<int>(HealthState::kFenced),
                 std::memory_order_release);
    availability_.store(0.0, std::memory_order_release);
  }

  /// Score in [0,1]; 0 once fenced. The router divides shard load by this.
  [[nodiscard]] double availability() const noexcept {
    return availability_.load(std::memory_order_acquire);
  }
  [[nodiscard]] HealthState state() const noexcept {
    return static_cast<HealthState>(state_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool fenced() const noexcept {
    return state() == HealthState::kFenced;
  }

  [[nodiscard]] std::uint64_t observations() const noexcept {
    return observations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double correction_rate() const noexcept {
    return correction_rate_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double failure_rate() const noexcept {
    return failure_rate_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const HealthConfig& config() const noexcept { return config_; }

 private:
  const HealthConfig config_;
  // Written only by observe()/force_fence(); atomics make the cross-thread
  // reads clean without a lock on the submit path.
  std::atomic<double> availability_{1.0};
  std::atomic<double> correction_rate_{0.0};
  std::atomic<double> failure_rate_{0.0};
  std::atomic<double> tmr_rate_{0.0};
  std::atomic<double> retry_rate_{0.0};
  std::atomic<std::uint64_t> observations_{0};
  std::atomic<int> state_{static_cast<int>(HealthState::kHealthy)};
};

}  // namespace aabft::fleet
