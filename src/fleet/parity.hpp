// Erasure-coded operand spares: registered operand matrices are striped
// across the fleet's shards with a rotating XOR parity stripe (RAID-5 over
// device failure domains, the memec pattern from the exemplars). Losing any
// single shard — the fleet fences a device whose correction rate spikes —
// leaves every registered operand reconstructible from the survivors.
//
// XOR runs over the raw uint64 bit patterns of the doubles, so a
// reconstructed stripe is bit-identical to the original: re-running a fenced
// device's request on a healthy shard with reconstructed operands produces
// exactly the response the client would have seen. Losing two or more
// shards exceeds the single-parity code and comes back as kUnavailable.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/result.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "linalg/matrix.hpp"

namespace aabft::fleet {

/// A shard-striped operand store. Thread-safe: put/get/fence may race from
/// any thread (stripes are immutable once published; the index hands out
/// shared_ptr snapshots under a short lock).
class OperandStore {
 public:
  /// `shards` is the number of failure domains to stripe over; the code is
  /// shards-1 data stripes + 1 parity stripe, so at least 3 shards are
  /// required for the parity to buy anything.
  explicit OperandStore(std::size_t shards);

  /// Register an operand; returns its handle. The parity stripe's shard
  /// rotates with the handle so parity load spreads across the fleet.
  /// Handles are content-addressed: registering a matrix whose content
  /// fingerprint matches an already-stored operand returns the existing
  /// handle instead of striping a duplicate (stripes are immutable, so the
  /// shared handle is safe under every fence/reconstruction path).
  [[nodiscard]] std::uint64_t put(const linalg::Matrix& m);

  struct Fetched {
    linalg::Matrix matrix;
    /// True when at least one stripe had to be rebuilt from parity (its
    /// shard was fenced) rather than read directly.
    bool reconstructed = false;
  };

  /// Reassemble the operand from whichever stripes live on unfenced shards.
  /// Errors: kInvalidArgument for an unknown handle, kUnavailable when more
  /// than one of the handle's stripes is on a fenced shard.
  [[nodiscard]] Result<Fetched> get(std::uint64_t handle) const;

  /// The registered operand's extents without reassembling it (the router
  /// shapes its placement key from these). kInvalidArgument when unknown.
  [[nodiscard]] Result<std::pair<std::size_t, std::size_t>> dims(
      std::uint64_t handle) const;

  /// Mark a shard's stripes as lost. Idempotent; there is no un-fence.
  void fence_shard(std::size_t shard);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t size() const;
  /// Total stripes rebuilt from parity across all get() calls.
  [[nodiscard]] std::uint64_t reconstructions() const noexcept {
    return reconstructions_.load(std::memory_order_relaxed);
  }
  /// put() calls answered with an existing handle by content fingerprint.
  [[nodiscard]] std::uint64_t dedup_hits() const noexcept {
    return dedup_hits_.load(std::memory_order_relaxed);
  }

 private:
  struct Striped {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t words = 0;         ///< payload words (before zero padding)
    std::size_t parity_shard = 0;  ///< shard holding the parity stripe
    /// data[i] lives on shard (parity_shard + 1 + i) % shards; all stripes
    /// have equal length (the last data stripe is zero-padded).
    std::vector<std::vector<std::uint64_t>> data;
    std::vector<std::uint64_t> parity;
  };

  const std::size_t shards_;
  mutable core::Mutex mu_{core::LockRank::kFleetOperandStore,
                          "fleet.operand_store"};
  std::uint64_t next_handle_ AABFT_GUARDED_BY(mu_) = 0;
  std::unordered_map<std::uint64_t, std::shared_ptr<const Striped>> store_
      AABFT_GUARDED_BY(mu_);
  /// Content fingerprint -> handle, for put()'s dedup path.
  std::unordered_map<std::uint64_t, std::uint64_t> dedup_
      AABFT_GUARDED_BY(mu_);
  std::vector<bool> fenced_ AABFT_GUARDED_BY(mu_);
  mutable std::atomic<std::uint64_t> reconstructions_{0};
  mutable std::atomic<std::uint64_t> dedup_hits_{0};
};

}  // namespace aabft::fleet
