#include "fleet/router.hpp"

#include "core/require.hpp"

namespace aabft::fleet {

std::optional<std::size_t> ShardRouter::route(
    const serve::ShapeKey& key, const std::vector<ShardLoad>& loads,
    const std::vector<double>& availability) {
  AABFT_REQUIRE(loads.size() == availability.size() && !loads.empty(),
                "ShardRouter: loads/availability size mismatch");

  std::optional<std::size_t> best;
  double best_load = 0.0;
  for (std::size_t s = 0; s < loads.size(); ++s) {
    if (availability[s] < config_.availability_floor) continue;
    const double load = effective_load(loads[s], availability[s]);
    if (!best || load < best_load) {
      best = s;
      best_load = load;
    }
  }
  if (!best) return std::nullopt;  // every device fenced or near-dead

  core::MutexLock lk(mu_);
  auto it = affinity_.find(key);
  if (it != affinity_.end()) {
    const std::size_t affine = it->second;
    if (affine < loads.size() &&
        availability[affine] >= config_.availability_floor &&
        effective_load(loads[affine], availability[affine]) <=
            config_.affinity_slack * best_load) {
      return affine;  // stay put: the batcher can keep coalescing this shape
    }
  }
  affinity_[key] = *best;
  return best;
}

void ShardRouter::forget_shard(std::size_t shard) {
  core::MutexLock lk(mu_);
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    if (it->second == shard)
      it = affinity_.erase(it);
    else
      ++it;
  }
}

}  // namespace aabft::fleet
