#include "fleet/telemetry.hpp"

#include <sstream>

namespace aabft::fleet {
namespace {

void append_recorder(std::ostringstream& out, const char* name,
                     const LatencyRecorder& rec) {
  out << "\"" << name << "\": {\"count\": " << rec.count()
      << ", \"mean\": " << rec.mean() << ", \"p50\": " << rec.p50()
      << ", \"p95\": " << rec.p95() << ", \"p99\": " << rec.p99()
      << ", \"max\": " << rec.max() << "}";
}

/// Indent every line of a rendered JSON sub-document so nesting stays
/// readable (serve::to_json emits a multi-line object).
std::string indent(const std::string& json, const std::string& pad) {
  std::ostringstream out;
  std::istringstream in(json);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!first) out << "\n" << pad;
    out << line;
    first = false;
  }
  return out.str();
}

}  // namespace

std::string to_json(const FleetStats& stats) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"devices\": " << stats.shards.size() << ",\n";
  out << "  \"fenced_devices\": " << stats.fenced_devices << ",\n";
  out << "  \"submitted\": " << stats.submitted << ",\n";
  out << "  \"rejected\": " << stats.rejected << ",\n";
  out << "  \"steals\": " << stats.steals << ",\n";
  out << "  \"replays\": " << stats.replays << ",\n";
  out << "  \"reconstructions\": " << stats.reconstructions << ",\n";
  out << "  \"operand_dedups\": " << stats.operand_dedups << ",\n";
  out << "  \"shards\": [\n";
  for (std::size_t i = 0; i < stats.shards.size(); ++i) {
    const ShardStats& s = stats.shards[i];
    out << "    {\n";
    out << "      \"shard\": " << s.shard << ",\n";
    out << "      \"device\": \"" << s.device << "\",\n";
    out << "      \"state\": \"" << to_string(s.state) << "\",\n";
    out << "      \"availability\": " << s.availability << ",\n";
    out << "      \"correction_rate\": " << s.correction_rate << ",\n";
    out << "      \"failure_rate\": " << s.failure_rate << ",\n";
    out << "      \"observations\": " << s.observations << ",\n";
    out << "      \"routed\": " << s.routed << ",\n";
    out << "      \"stolen\": " << s.stolen << ",\n";
    out << "      \"replayed\": " << s.replayed << ",\n";
    out << "      \"queued\": " << s.queued << ",\n";
    out << "      \"inflight\": " << s.inflight << ",\n";
    out << "      ";
    append_recorder(out, "fleet_e2e_ns", s.fleet_e2e_ns);
    out << ",\n";
    out << "      \"server\": " << indent(to_json(s.server), "      ") << "\n";
    out << "    }" << (i + 1 < stats.shards.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"totals\": " << indent(to_json(stats.totals), "  ") << "\n";
  out << "}\n";
  return out.str();
}

}  // namespace aabft::fleet
