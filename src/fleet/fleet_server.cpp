#include "fleet/fleet_server.hpp"

#include <algorithm>
#include <utility>

#include "core/require.hpp"
#include "fp/fault_vector.hpp"

namespace aabft::fleet {
namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}

[[nodiscard]] serve::GemmResponse failed_response(std::uint64_t id,
                                                  baselines::OpKind kind,
                                                  std::string diagnosis) {
  serve::GemmResponse resp;
  resp.id = id;
  resp.kind = kind;
  resp.status = serve::ResponseStatus::kFailed;
  resp.clean = false;
  resp.rung = serve::RecoveryRung::kFailed;
  resp.diagnosis = std::move(diagnosis);
  return resp;
}

}  // namespace

FleetServer::FleetServer(FleetConfig config)
    : config_(config),
      store_(config.devices),
      router_(config.router),
      queues_(config.devices, config.queue_capacity_per_shard),
      chaos_rng_(config.chaos_seed) {
  AABFT_REQUIRE(config_.devices >= 3,
                "FleetServer: need >= 3 devices (erasure coding strips "
                "operands as devices-1 data + 1 parity)");
  AABFT_REQUIRE(config_.inflight_window >= 1,
                "FleetServer: in-flight window must be at least 1");
  shards_.reserve(config_.devices);
  for (std::size_t s = 0; s < config_.devices; ++s) {
    auto shard = std::make_unique<Shard>(config_.health);
    shard->index = s;
    gpusim::DeviceSpec spec = config_.device_spec;
    spec.name += " [device " + std::to_string(s) + "]";
    // One Launcher per shard = one failure domain per shard: distinct worker
    // pools, so thread-scoped fault controllers on shard s's launches can
    // never be observed by shard t's kernels.
    shard->launcher = std::make_unique<gpusim::Launcher>(
        std::move(spec), config_.workers_per_device);
    shard->server =
        std::make_unique<serve::GemmServer>(*shard->launcher, config_.serve);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->feeder = std::thread([this, s] { feeder_loop(*s); });
    s->collector = std::thread([this, s] { collector_loop(*s); });
  }
}

FleetServer::~FleetServer() { stop(); }

serve::ShapeKey FleetServer::route_key(const FleetRequest& req) const {
  const auto dims_of = [&](const linalg::Matrix& m, std::uint64_t handle) {
    if (handle == FleetRequest::kInlineOperand)
      return std::make_pair(m.rows(), m.cols());
    auto d = store_.dims(handle);
    return d.ok() ? *d : std::make_pair<std::size_t, std::size_t>(0, 0);
  };
  serve::ShapeKey key;
  key.kind = req.request.kind;
  const auto [am, ak] = dims_of(req.request.a, req.a_handle);
  key.m = am;
  key.k = ak;
  key.q = key.kind == baselines::OpKind::kGemm
              ? dims_of(req.request.b, req.b_handle).second
              : am;
  // Operand affinity: keep a handle's traffic on the shard whose serve cache
  // already holds its encode. Fleet handles start at 0 and the serve-level
  // key uses 0 for "no handle", so shift by one.
  key.a_handle =
      req.a_handle == FleetRequest::kInlineOperand ? 0 : req.a_handle + 1;
  return key;
}

Result<std::future<FleetResponse>> FleetServer::submit(FleetRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Error{ErrorCode::kUnavailable, "fleet is stopping"};
  }
  for (std::uint64_t handle : {req.a_handle, req.b_handle}) {
    if (handle == FleetRequest::kInlineOperand) continue;
    auto d = store_.dims(handle);
    if (!d.ok()) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return d.error();
    }
  }
  const auto shard =
      router_.route(route_key(req), shard_loads(), availabilities());
  if (!shard) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Error{ErrorCode::kUnavailable,
                 "every device in the fleet is fenced"};
  }
  Job job;
  job.req = std::move(req);
  job.fleet_id = next_id_.fetch_add(1, std::memory_order_relaxed);
  job.req.request.id = job.fleet_id;  // shard admission preserves nonzero ids
  job.submitted_at = Clock::now();
  auto fut = job.promise.get_future();
  if (!queues_.try_push(*shard, std::move(job))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Error{ErrorCode::kOverloaded,
                 "fleet queue for shard " + std::to_string(*shard) +
                     " is full"};
  }
  shards_[*shard]->routed.fetch_add(1, std::memory_order_relaxed);
  return fut;
}

Result<serve::GemmRequest> FleetServer::resolve(const Job& job,
                                                bool& reconstructed) const {
  serve::GemmRequest out = job.req.request;  // keep the pristine copy intact
  const auto fetch = [&](std::uint64_t handle,
                         linalg::Matrix& into) -> Result<bool> {
    if (handle == FleetRequest::kInlineOperand) return true;
    auto fetched = store_.get(handle);
    if (!fetched.ok()) return fetched.error();
    into = std::move(fetched->matrix);
    reconstructed |= fetched->reconstructed;
    return true;
  };
  if (auto a = fetch(job.req.a_handle, out.a); !a.ok()) return a.error();
  if (auto b = fetch(job.req.b_handle, out.b); !b.ok()) return b.error();
  return out;
}

Result<serve::GemmRequest> FleetServer::resolve_for(const Job& job,
                                                    std::size_t shard,
                                                    bool& reconstructed) {
  // Only GEMM A handles ride the serve-layer operand cache; everything else
  // (B operands, single-operand kinds, inline A) resolves to matrices.
  const bool cacheable = job.req.request.kind == baselines::OpKind::kGemm &&
                         job.req.a_handle != FleetRequest::kInlineOperand;
  if (!cacheable) return resolve(job, reconstructed);

  serve::GemmRequest out = job.req.request;
  if (job.req.b_handle != FleetRequest::kInlineOperand) {
    auto fetched = store_.get(job.req.b_handle);
    if (!fetched.ok()) return fetched.error();
    out.b = std::move(fetched->matrix);
    reconstructed |= fetched->reconstructed;
  }

  const std::uint64_t epoch = store_epoch_.load(std::memory_order_acquire);
  std::uint64_t mapped = 0;  // current-epoch serve handle on this shard
  std::uint64_t stale = 0;   // older-epoch handle needing revalidation
  {
    core::MutexLock lk(cache_map_mu_);
    auto it = cache_map_.find(job.req.a_handle);
    if (it != cache_map_.end()) {
      const CacheMapEntry& entry = it->second[shard];
      if (entry.serve_handle != 0) {
        (entry.epoch == epoch ? mapped : stale) = entry.serve_handle;
      }
    }
  }
  if (mapped != 0) {
    out.a = linalg::Matrix();
    out.a_handle = mapped;
    return out;
  }

  // Unmapped on this shard, or the fleet fenced a device since the mapping
  // was validated: re-fetch from the store, which is where a parity
  // reconstruction of this operand would surface. Never performed while
  // holding cache_map_mu_ — the store's lock ranks below it.
  auto fetched = store_.get(job.req.a_handle);
  if (!fetched.ok()) return fetched.error();
  reconstructed |= fetched->reconstructed;

  std::uint64_t serve_handle = 0;
  if (stale != 0 && !fetched->reconstructed) {
    // The operand survived the fence with every data stripe intact: the
    // shard's cached encode is still the same bits. Revalidate, no re-encode.
    serve_handle = stale;
  } else {
    if (stale != 0) {
      // The operand came back through a parity rebuild: conservatively drop
      // the shard's cached entry *before* re-registering, so the cache's
      // content dedup publishes a fresh entry from the reconstructed bits.
      shards_[shard]->server->invalidate_operand(stale);
    }
    auto reg = shards_[shard]->server->register_operand(fetched->matrix);
    if (reg.ok()) serve_handle = *reg;
  }
  if (serve_handle == 0) {
    // The shard's cache refused the operand (disabled, or it alone exceeds
    // the byte budget): dispatch inline, correct but uncached.
    out.a = std::move(fetched->matrix);
    return out;
  }
  {
    core::MutexLock lk(cache_map_mu_);
    auto& slots = cache_map_[job.req.a_handle];
    if (slots.size() != shards_.size()) slots.resize(shards_.size());
    slots[shard] = CacheMapEntry{serve_handle, epoch};
  }
  out.a = linalg::Matrix();
  out.a_handle = serve_handle;
  return out;
}

void FleetServer::drop_cache_mapping(std::uint64_t fleet_handle,
                                     std::size_t shard) {
  core::MutexLock lk(cache_map_mu_);
  auto it = cache_map_.find(fleet_handle);
  if (it != cache_map_.end()) it->second[shard] = CacheMapEntry{};
}

void FleetServer::feeder_loop(Shard& shard) {
  for (;;) {
    if (shard.fenced.load(std::memory_order_acquire)) {
      redistribute(shard);
      break;
    }
    auto popped =
        queues_.pop(shard.index, std::chrono::microseconds(500));
    if (!popped) {
      if (queues_.closed() && queues_.total_depth() == 0) break;
      continue;
    }
    if (popped->stolen)
      shard.stolen.fetch_add(1, std::memory_order_relaxed);
    Job job = std::move(popped->item);

    if (shard.fenced.load(std::memory_order_acquire)) {
      // Fenced between the pop and here: serve it elsewhere, then drain.
      std::size_t served_by = shard.index, replays = 0;
      bool recon = false;
      auto resp =
          replay_on_survivor(job, shard.index, served_by, replays, recon);
      finish(shard, std::move(job), std::move(resp), served_by, replays,
             recon);
      continue;
    }

    bool recon = false;
    auto resolved = resolve_for(job, shard.index, recon);
    if (!resolved.ok()) {
      finish(shard, std::move(job),
             failed_response(job.fleet_id, job.req.request.kind,
                             resolved.error().message),
             shard.index, 0, recon);
      continue;
    }
    serve::GemmRequest to_run = std::move(*resolved);

    // Device-corruption chaos: arm extra faults scoped to this dispatch (and
    // therefore to this shard's launcher — the fault plan travels inside the
    // request and is consulted only by the serving shard's worker pool).
    const auto arm_chaos = [&](serve::GemmRequest& req) {
      std::size_t chaos = shard.chaos_faults.load(std::memory_order_relaxed);
      chaos = std::min(chaos, gpusim::FaultController::kMaxFaults -
                                  std::min(gpusim::FaultController::kMaxFaults,
                                           req.fault_plan.size()));
      for (std::size_t i = 0; i < chaos; ++i) {
        gpusim::FaultConfig fault;
        fault.site = gpusim::FaultSite::kFinalAdd;
        fault.sm_id = 0;  // block 0 runs on SM 0: the fault always lands
        fault.module_id = 0;
        fault.k_injection = 0;
        {
          core::MutexLock lk(chaos_mu_);
          fault.error_vec =
              fp::make_error_vec(fp::BitField::kExponent, 1, chaos_rng_);
        }
        req.fault_plan.push_back(fault);
      }
      return chaos;
    };
    std::size_t chaos_armed = arm_chaos(to_run);

    const std::uint64_t used_handle = to_run.a_handle;
    auto sub = shard.server->submit(std::move(to_run));
    if (!sub.ok() && used_handle != 0 &&
        sub.error().code == ErrorCode::kInvalidArgument &&
        job.req.a_handle != FleetRequest::kInlineOperand) {
      // The shard's serve cache evicted the mapped entry between resolution
      // and admission: drop the stale mapping and re-resolve once (the
      // retry re-registers or falls back to an inline operand).
      drop_cache_mapping(job.req.a_handle, shard.index);
      bool recon_retry = false;
      if (auto again = resolve_for(job, shard.index, recon_retry);
          again.ok()) {
        recon |= recon_retry;
        serve::GemmRequest retry = std::move(*again);
        chaos_armed = arm_chaos(retry);
        sub = shard.server->submit(std::move(retry));
      }
    }
    if (!sub.ok()) {
      // Deterministic refusals (shape) fail outright; transient ones
      // (overload — impossible while inflight_window <= server capacity)
      // would fail the same way and surface in the diagnosis.
      finish(shard, std::move(job),
             failed_response(job.fleet_id, job.req.request.kind,
                             sub.error().message),
             shard.index, 0, recon);
      continue;
    }
    {
      core::UniqueLock lk(shard.inflight_mu);
      while (shard.inflight.size() >= config_.inflight_window &&
             !shard.fenced.load(std::memory_order_acquire))
        shard.inflight_cv.wait(lk);
      shard.inflight.push_back(
          Inflight{std::move(job), std::move(*sub), chaos_armed, recon});
      shard.inflight_count.store(shard.inflight.size(),
                                 std::memory_order_relaxed);
    }
    shard.inflight_cv.notify_all();
  }
  {
    core::MutexLock lk(shard.inflight_mu);
    shard.feeder_done = true;
  }
  shard.inflight_cv.notify_all();
}

void FleetServer::collector_loop(Shard& shard) {
  for (;;) {
    Inflight item;
    {
      core::UniqueLock lk(shard.inflight_mu);
      while (shard.inflight.empty() && !shard.feeder_done)
        shard.inflight_cv.wait(lk);
      if (shard.inflight.empty()) break;  // feeder exited and we drained
      item = std::move(shard.inflight.front());
      shard.inflight.pop_front();
      shard.inflight_count.store(shard.inflight.size(),
                                 std::memory_order_relaxed);
    }
    shard.inflight_cv.notify_all();

    serve::GemmResponse resp = item.fut.get();
    // Fence state *at collection time* decides trust: a response harvested
    // after the device was quarantined is discarded and replayed, even if it
    // looks clean.
    const bool untrusted = shard.fenced.load(std::memory_order_acquire);
    if (!untrusted) {
      // A correction explained by the request's *own* armed fault plan is the
      // A-ABFT ladder doing its job, not device pathology — don't let
      // client-injected test faults poison the device's health. Fleet chaos
      // injection (inject_device_faults) models real corruption and is
      // always blamed.
      const bool self_inflicted =
          !item.job.req.request.fault_plan.empty() && item.chaos_armed == 0;
      Observation obs;
      obs.ok = resp.status == serve::ResponseStatus::kOk;
      obs.corrected = resp.trace.corrected && !self_inflicted;
      obs.tmr_escalated = resp.trace.tmr_escalated && !self_inflicted;
      obs.retries = self_inflicted ? 0 : resp.trace.retries;
      shard.health.observe(obs);
      if (shard.health.fenced()) fence(shard.index);
    }

    std::size_t served_by = shard.index, replays = 0;
    bool recon = item.reconstructed;
    if (shard.fenced.load(std::memory_order_acquire) ||
        resp.status == serve::ResponseStatus::kFailed) {
      resp = replay_on_survivor(item.job, shard.index, served_by, replays,
                                recon);
      if (replays > 0)
        shard.replayed.fetch_add(1, std::memory_order_relaxed);
    }
    finish(shard, std::move(item.job), std::move(resp), served_by, replays,
           recon);
  }
}

serve::GemmResponse FleetServer::replay_on_survivor(const Job& job,
                                                    std::size_t exclude,
                                                    std::size_t& served_by,
                                                    std::size_t& replays,
                                                    bool& reconstructed) {
  serve::GemmResponse last = failed_response(
      job.fleet_id, job.req.request.kind,
      "no surviving device could serve the request");
  for (std::size_t attempt = 0; attempt < config_.replay_budget; ++attempt) {
    // Healthiest surviving shard with the least in-flight work.
    std::size_t target = shards_.size();
    double best = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (s == exclude || shards_[s]->fenced.load(std::memory_order_acquire))
        continue;
      const double score =
          shards_[s]->health.availability() /
          (1.0 + static_cast<double>(
                     shards_[s]->inflight_count.load(std::memory_order_relaxed)) +
           static_cast<double>(queues_.depth(s)));
      if (target == shards_.size() || score > best) {
        target = s;
        best = score;
      }
    }
    if (target == shards_.size()) return last;  // nobody left

    bool recon = false;
    auto resolved = resolve_for(job, target, recon);
    if (!resolved.ok()) {
      last.diagnosis = resolved.error().message;
      return last;  // operands unrecoverable: retrying cannot help
    }
    const std::uint64_t used_handle = resolved->a_handle;
    auto sub = shards_[target]->server->submit(std::move(*resolved));
    if (!sub.ok()) {
      last.diagnosis = sub.error().message;
      if (used_handle != 0 &&
          sub.error().code == ErrorCode::kInvalidArgument &&
          job.req.a_handle != FleetRequest::kInlineOperand) {
        // The target's serve cache evicted the mapped entry under us: drop
        // the mapping and spend the next attempt on a fresh resolution
        // (the same target stays eligible).
        drop_cache_mapping(job.req.a_handle, target);
        continue;
      }
      exclude = target;
      continue;
    }
    ++replays;
    replays_.fetch_add(1, std::memory_order_relaxed);
    reconstructed |= recon;
    last = sub->get();
    served_by = target;
    if (last.status == serve::ResponseStatus::kOk &&
        !shards_[target]->fenced.load(std::memory_order_acquire))
      return last;
    exclude = target;  // target failed (or got fenced meanwhile): try another
  }
  return last;
}

void FleetServer::fence(std::size_t shard) {
  bool expected = false;
  if (!shards_[shard]->fenced.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel))
    return;  // already fenced
  shards_[shard]->health.force_fence();
  store_.fence_shard(shard);
  // Every serve-cache mapping validated before this fence must re-check the
  // store on next use — that is where a parity reconstruction (and the
  // cache invalidation it mandates) surfaces.
  store_epoch_.fetch_add(1, std::memory_order_release);
  router_.forget_shard(shard);
  fenced_count_.fetch_add(1, std::memory_order_relaxed);
  // Wake the feeder (it drains and re-routes the shard's queue) and anyone
  // blocked on the in-flight window.
  shards_[shard]->inflight_cv.notify_all();
}

void FleetServer::force_fail(std::size_t shard) {
  AABFT_REQUIRE(shard < shards_.size(), "force_fail: shard out of range");
  fence(shard);
}

void FleetServer::inject_device_faults(std::size_t shard,
                                       std::size_t faults_per_request) {
  AABFT_REQUIRE(shard < shards_.size(),
                "inject_device_faults: shard out of range");
  shards_[shard]->chaos_faults.store(faults_per_request,
                                     std::memory_order_relaxed);
}

void FleetServer::redistribute(Shard& from) {
  std::vector<Job> orphans = queues_.drain_shard(from.index);
  for (Job& job : orphans) {
    // Prefer re-queueing on a survivor (its feeder applies the normal
    // path, including parity reconstruction); replay inline only when no
    // queue will take the job (shutdown or total overload).
    std::size_t target = shards_.size();
    std::size_t best_depth = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s]->fenced.load(std::memory_order_acquire)) continue;
      const std::size_t depth = queues_.depth(s);
      if (target == shards_.size() || depth < best_depth) {
        target = s;
        best_depth = depth;
      }
    }
    if (target != shards_.size() && queues_.try_push(target, std::move(job)))
      continue;
    // try_push moves only on success; on failure the job is still ours.
    std::size_t served_by = from.index, replays = 0;
    bool recon = false;
    auto resp =
        replay_on_survivor(job, from.index, served_by, replays, recon);
    finish(from, std::move(job), std::move(resp), served_by, replays, recon);
  }
}

void FleetServer::finish(Shard& collector_shard, Job&& job,
                         serve::GemmResponse&& resp, std::size_t served_by,
                         std::size_t replays, bool reconstructed) {
  resp.id = job.fleet_id;  // fleet-scope id, whatever shard served it
  FleetResponse out;
  out.response = std::move(resp);
  out.shard = served_by;
  out.replays = replays;
  out.operands_reconstructed = reconstructed;
  {
    core::MutexLock lk(collector_shard.e2e_mu);
    collector_shard.fleet_e2e_ns.record(ns_since(job.submitted_at));
  }
  job.promise.set_value(std::move(out));
}

std::vector<ShardLoad> FleetServer::shard_loads() const {
  std::vector<ShardLoad> loads(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    loads[s].queued = queues_.depth(s);
    loads[s].inflight =
        shards_[s]->inflight_count.load(std::memory_order_relaxed);
    loads[s].backlog_flops =
        static_cast<double>(shards_[s]->server->backlog_flops());
  }
  return loads;
}

std::vector<double> FleetServer::availabilities() const {
  std::vector<double> avail(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    avail[s] = shards_[s]->health.availability();
  return avail;
}

void FleetServer::stop() {
  core::MutexLock stop_lk(stop_mu_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  queues_.close();
  for (auto& shard : shards_)
    if (shard->feeder.joinable()) shard->feeder.join();
  for (auto& shard : shards_)
    if (shard->collector.joinable()) shard->collector.join();
  // Collectors may replay onto sibling servers right up to their exit, so
  // the per-shard servers stop only after every collector has joined.
  for (auto& shard : shards_) shard->server->stop();
  stopped_ = true;
}

FleetStats FleetServer::stats() const {
  FleetStats stats;
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats s;
    s.shard = shard->index;
    s.device = shard->launcher->device().name;
    s.server = shard->server->stats();
    s.state = shard->health.state();
    s.availability = shard->health.availability();
    s.correction_rate = shard->health.correction_rate();
    s.failure_rate = shard->health.failure_rate();
    s.observations = shard->health.observations();
    s.routed = shard->routed.load(std::memory_order_relaxed);
    s.stolen = shard->stolen.load(std::memory_order_relaxed);
    s.replayed = shard->replayed.load(std::memory_order_relaxed);
    s.queued = queues_.depth(shard->index);
    s.inflight = shard->inflight_count.load(std::memory_order_relaxed);
    {
      core::MutexLock lk(shard->e2e_mu);
      s.fleet_e2e_ns = shard->fleet_e2e_ns;
    }
    serve::merge_into(stats.totals, s.server);
    stats.shards.push_back(std::move(s));
  }
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.steals = queues_.steals();
  stats.replays = replays_.load(std::memory_order_relaxed);
  stats.reconstructions = store_.reconstructions();
  stats.operand_dedups = store_.dedup_hits();
  stats.fenced_devices = fenced_count_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace aabft::fleet
