// Work stealing between shard queues. Each shard's feeder thread pops from
// its own deque FIFO (front — preserves per-shard arrival order); when its
// own deque is empty it steals from the *back* of the deepest sibling
// (LIFO-steal: the freshest request moves, which is the one whose operands
// are most likely still warm and whose shape affinity matters least).
//
// One mutex + one condition variable cover all N deques: pushes are rare
// relative to compute (requests are whole protected BLAS-3 operations, not
// micro-tasks), so the shared lock is nowhere near contended and keeps the
// steal decision (scan every depth, pick the max) atomic with the take.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/require.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace aabft::fleet {

template <typename T>
class ShardQueues {
 public:
  ShardQueues(std::size_t shards, std::size_t capacity_per_shard)
      : capacity_(capacity_per_shard), queues_(shards) {
    AABFT_REQUIRE(shards >= 1, "ShardQueues: need at least one shard");
    AABFT_REQUIRE(capacity_per_shard >= 1,
                  "ShardQueues: capacity must be at least 1");
  }

  /// Enqueue onto `shard`. False when that shard's queue is full or the
  /// queues are closed (caller turns this into a kOverloaded refusal).
  bool try_push(std::size_t shard, T&& item) AABFT_EXCLUDES(mu_) {
    {
      core::MutexLock lk(mu_);
      if (closed_ || queues_[shard].size() >= capacity_) return false;
      queues_[shard].push_back(std::move(item));
    }
    cv_.notify_all();
    return true;
  }

  struct Popped {
    T item;
    bool stolen = false;  ///< came from a sibling's queue, not `shard`'s own
  };

  /// Dequeue for `shard`: own queue front first; if empty and `allow_steal`,
  /// the back of the deepest sibling. Blocks up to `timeout` for work;
  /// nullopt on timeout or when closed with nothing left to take.
  std::optional<Popped> pop(std::size_t shard,
                            std::chrono::microseconds timeout,
                            bool allow_steal = true) AABFT_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    core::UniqueLock lk(mu_);
    while (!closed_ && takeable(shard, allow_steal) == queues_.size())
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    const std::size_t source = takeable(shard, allow_steal);
    if (source == queues_.size())
      return std::nullopt;  // timeout, or closed and drained

    Popped out{std::move(source == shard ? queues_[source].front()
                                         : queues_[source].back()),
               source != shard};
    if (source == shard)
      queues_[source].pop_front();
    else
      queues_[source].pop_back();
    if (out.stolen) ++steals_;
    return out;
  }

  /// Refuse further pushes. pop() keeps draining what is queued, then
  /// returns nullopt forever.
  void close() AABFT_EXCLUDES(mu_) {
    {
      core::MutexLock lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Remove and return everything queued on `shard` (the fence path: the
  /// caller re-routes these to surviving shards).
  std::vector<T> drain_shard(std::size_t shard) AABFT_EXCLUDES(mu_) {
    std::vector<T> out;
    core::MutexLock lk(mu_);
    out.reserve(queues_[shard].size());
    while (!queues_[shard].empty()) {
      out.push_back(std::move(queues_[shard].front()));
      queues_[shard].pop_front();
    }
    return out;
  }

  [[nodiscard]] std::size_t depth(std::size_t shard) const
      AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    return queues_[shard].size();
  }
  [[nodiscard]] std::size_t total_depth() const AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    std::size_t total = 0;
    for (const auto& q : queues_) total += q.size();
    return total;
  }
  [[nodiscard]] std::uint64_t steals() const AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    return steals_;
  }
  [[nodiscard]] bool closed() const AABFT_EXCLUDES(mu_) {
    core::MutexLock lk(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t shards() const noexcept { return queues_.size(); }

 private:
  /// Source queue pop() should take from: `shard`'s own queue first, else
  /// (when stealing) the deepest sibling; queues_.size() = nothing to take.
  [[nodiscard]] std::size_t takeable(std::size_t shard, bool allow_steal) const
      AABFT_REQUIRES(mu_) {
    if (!queues_[shard].empty()) return shard;
    if (allow_steal) {
      std::size_t victim = shard, depth = 0;
      for (std::size_t s = 0; s < queues_.size(); ++s)
        if (s != shard && queues_[s].size() > depth) {
          victim = s;
          depth = queues_[s].size();
        }
      if (victim != shard) return victim;
    }
    return queues_.size();  // sentinel: nothing to take
  }

  mutable core::Mutex mu_{core::LockRank::kFleetQueues, "fleet.queues"};
  core::CondVar cv_;
  const std::size_t capacity_;
  std::vector<std::deque<T>> queues_ AABFT_GUARDED_BY(mu_);
  std::uint64_t steals_ AABFT_GUARDED_BY(mu_) = 0;
  bool closed_ AABFT_GUARDED_BY(mu_) = false;
};

}  // namespace aabft::fleet
