// FleetServer: N launcher "devices", each fronted by its own GemmServer,
// behind one fleet-wide front door — the device-level failure-domain layer
// on top of the element-level A-ABFT recovery ladder (DESIGN.md §9).
//
// Request path: submit() routes by load and health (ShardRouter) into
// per-shard fleet queues; each shard's *feeder* thread pops its own queue
// (stealing from the deepest sibling when idle — ShardQueues), resolves
// erasure-coded operand handles against the OperandStore, and dispatches to
// the shard's GemmServer with a bounded in-flight window; the shard's
// *collector* thread harvests responses in dispatch order, feeds the health
// model, and fulfils the fleet future.
//
// Failure domains: every device is a distinct gpusim::Launcher with its own
// worker pool, so per-request ScopedFaultControllers (and injected chaos
// faults) are scoped to one device and can never fire on another. When a
// device's EWMA correction rate spikes past the fence threshold — or
// force_fail() simulates an abrupt loss — the fleet fences it: the router
// stops placing there, its queued work is re-routed, its in-flight responses
// are discarded and replayed on surviving shards, and the operand store
// reconstructs any operand stripes it held from XOR parity, bit-identically.
// Clients see only slower responses, never wrong ones.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/latency.hpp"
#include "core/result.hpp"
#include "core/rng.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "fleet/health.hpp"
#include "fleet/parity.hpp"
#include "fleet/router.hpp"
#include "fleet/steal.hpp"
#include "fleet/telemetry.hpp"
#include "gpusim/kernel.hpp"
#include "serve/server.hpp"

namespace aabft::fleet {

struct FleetConfig {
  std::size_t devices = 3;          ///< launcher shards (>= 3 for parity)
  unsigned workers_per_device = 2;  ///< worker threads per simulated device
  gpusim::DeviceSpec device_spec = gpusim::k20c();
  serve::ServeConfig serve;  ///< per-shard server configuration
  HealthConfig health;
  RouterConfig router;
  std::size_t queue_capacity_per_shard = 256;  ///< fleet-queue bound
  std::size_t inflight_window = 8;   ///< dispatched-uncollected cap per shard
  std::size_t replay_budget = 2;     ///< re-run attempts per failed response
  std::uint64_t chaos_seed = 0x51cb75Full;  ///< device-corruption RNG seed
};

/// A fleet submission: a normal serve request whose operands may instead be
/// references into the fleet's erasure-coded operand store (set a handle and
/// leave the corresponding matrix empty).
struct FleetRequest {
  static constexpr std::uint64_t kInlineOperand = ~0ull;
  serve::GemmRequest request;
  std::uint64_t a_handle = kInlineOperand;
  std::uint64_t b_handle = kInlineOperand;
};

struct FleetResponse {
  serve::GemmResponse response;
  std::size_t shard = 0;  ///< shard whose result was accepted
  std::size_t replays = 0;
  /// An operand stripe was rebuilt from parity to serve this response.
  bool operands_reconstructed = false;
};

class FleetServer {
 public:
  explicit FleetServer(FleetConfig config = {});
  ~FleetServer();
  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// Stripe an operand across the fleet with XOR parity; the handle goes in
  /// FleetRequest::a_handle / b_handle. Content-addressed: re-registering an
  /// identical matrix returns the existing handle. GEMM A handles also feed
  /// the per-shard serve-layer operand caches — the first dispatch on a
  /// shard encodes once, later dispatches reuse the cached checksums.
  [[nodiscard]] std::uint64_t register_operand(const linalg::Matrix& m) {
    return store_.put(m);
  }

  /// Route and enqueue. Refusals: kUnavailable (every device fenced, or the
  /// fleet is stopping), kOverloaded (target shard's fleet queue full),
  /// kInvalidArgument (unknown operand handle).
  [[nodiscard]] Result<std::future<FleetResponse>> submit(FleetRequest req);

  /// Abrupt device loss: fence `shard` now. Queued work re-routes, in-flight
  /// work replays on survivors, stored operand stripes reconstruct from
  /// parity. Idempotent.
  void force_fail(std::size_t shard);

  /// Chaos: arm `faults_per_request` device-corruption faults on every
  /// subsequent request dispatched to `shard` (modelling a device whose
  /// hardware has gone bad). The health model should fence it autonomously.
  void inject_device_faults(std::size_t shard, std::size_t faults_per_request);

  /// Refuse new work, drain the queues, join all shard threads and stop the
  /// per-shard servers. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] FleetStats stats() const;
  [[nodiscard]] std::string telemetry_json() const { return to_json(stats()); }
  [[nodiscard]] std::size_t devices() const noexcept { return shards_.size(); }
  [[nodiscard]] bool fenced(std::size_t shard) const {
    return shards_[shard]->fenced.load(std::memory_order_acquire);
  }
  [[nodiscard]] const OperandStore& operand_store() const noexcept {
    return store_;
  }
  [[nodiscard]] std::uint64_t steals() const { return queues_.steals(); }
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

 private:
  struct Job {
    FleetRequest req;  ///< pristine client request (operands retained)
    std::uint64_t fleet_id = 0;
    std::promise<FleetResponse> promise;
    std::chrono::steady_clock::time_point submitted_at;
  };

  struct Inflight {
    Job job;
    std::future<serve::GemmResponse> fut;
    std::size_t chaos_armed = 0;  ///< fleet-injected faults on this dispatch
    bool reconstructed = false;   ///< operands came through a parity rebuild
  };

  struct Shard {
    std::size_t index = 0;
    std::unique_ptr<gpusim::Launcher> launcher;
    std::unique_ptr<serve::GemmServer> server;
    DeviceHealth health;
    std::atomic<bool> fenced{false};
    std::atomic<std::size_t> chaos_faults{0};
    std::atomic<std::uint64_t> routed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> replayed{0};

    core::Mutex inflight_mu{core::LockRank::kFleetInflight, "fleet.inflight"};
    core::CondVar inflight_cv;
    std::deque<Inflight> inflight AABFT_GUARDED_BY(inflight_mu);
    std::atomic<std::size_t> inflight_count{0};  ///< lock-free load signal
    bool feeder_done AABFT_GUARDED_BY(inflight_mu) = false;

    mutable core::Mutex e2e_mu{core::LockRank::kFleetTelemetry, "fleet.e2e"};
    LatencyRecorder fleet_e2e_ns AABFT_GUARDED_BY(e2e_mu);

    std::thread feeder;
    std::thread collector;

    explicit Shard(HealthConfig health_config) : health(health_config) {}
  };

  void feeder_loop(Shard& shard);
  void collector_loop(Shard& shard);
  void fence(std::size_t shard);
  /// Re-route a fenced shard's queued jobs to survivors (replaying inline
  /// when no queue will take them).
  void redistribute(Shard& from);
  /// Resolve a job's operands into a dispatchable request (parity
  /// reconstruction when a holding shard is fenced). Errors surface as a
  /// ready kFailed response.
  [[nodiscard]] Result<serve::GemmRequest> resolve(const Job& job,
                                                   bool& reconstructed) const;
  /// resolve() plus the operand-cache fast path for the dispatch target: a
  /// GEMM A handle maps to `shard`'s serve-cache handle (registered on first
  /// use), so the request ships without the matrix and the shard reuses its
  /// cached checksum encode. A store-epoch bump (any fence) forces
  /// revalidation; an A that came back through parity reconstruction
  /// invalidates the shard's cached entry before re-registering.
  [[nodiscard]] Result<serve::GemmRequest> resolve_for(const Job& job,
                                                       std::size_t shard,
                                                       bool& reconstructed);
  /// Forget a shard's serve-cache mapping for a fleet handle (after the
  /// serve cache evicted or invalidated the entry underneath us).
  void drop_cache_mapping(std::uint64_t fleet_handle, std::size_t shard)
      AABFT_EXCLUDES(cache_map_mu_);
  /// Run the job synchronously on the healthiest surviving shard (the replay
  /// path for fenced/failed responses). Fulfils nothing — returns the
  /// response for the caller to judge.
  [[nodiscard]] serve::GemmResponse replay_on_survivor(
      const Job& job, std::size_t exclude, std::size_t& served_by,
      std::size_t& replays, bool& reconstructed);
  void finish(Shard& collector_shard, Job&& job, serve::GemmResponse&& resp,
              std::size_t served_by, std::size_t replays, bool reconstructed);
  [[nodiscard]] std::vector<ShardLoad> shard_loads() const;
  [[nodiscard]] std::vector<double> availabilities() const;
  [[nodiscard]] serve::ShapeKey route_key(const FleetRequest& req) const;

  FleetConfig config_;
  OperandStore store_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// One slot per shard: the serve-cache handle this fleet operand maps to
  /// there, and the store epoch the mapping was validated at. 0 = unmapped.
  struct CacheMapEntry {
    std::uint64_t serve_handle = 0;
    std::uint64_t epoch = 0;
  };
  core::Mutex cache_map_mu_{core::LockRank::kFleetCacheMap, "fleet.cache_map"};
  std::unordered_map<std::uint64_t, std::vector<CacheMapEntry>> cache_map_
      AABFT_GUARDED_BY(cache_map_mu_);
  /// Bumped by every fence: mappings validated at an older epoch re-check
  /// the operand store (which is where a reconstruction would surface).
  std::atomic<std::uint64_t> store_epoch_{1};
  ShardQueues<Job> queues_;
  core::Mutex chaos_mu_{core::LockRank::kFleetChaos, "fleet.chaos"};
  Rng chaos_rng_ AABFT_GUARDED_BY(chaos_mu_);
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> replays_{0};
  std::atomic<std::size_t> fenced_count_{0};
  std::atomic<bool> stopping_{false};
  core::Mutex stop_mu_{core::LockRank::kFleetControl, "fleet.stop"};
  bool stopped_ AABFT_GUARDED_BY(stop_mu_) = false;
};

}  // namespace aabft::fleet
