// Shard router: places an admitted request on a device by load and health.
//
// Pure placement logic — the FleetServer feeds it per-shard load snapshots
// (queue depth, in-flight count, backlog flops) and availability scores from
// the health model, and gets back a shard index. Effective load is
// occupancy divided by availability, so a degraded device has to be much
// emptier than a healthy one before it wins; fenced devices (availability
// under the floor) are never placed on. Shape affinity keeps a stream of
// same-shaped requests on the shard that served the shape last (so the
// downstream BatchAssembler can still coalesce them) unless that shard is
// meaningfully more loaded than the best candidate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "serve/queue.hpp"

namespace aabft::fleet {

struct ShapeKeyHash {
  [[nodiscard]] std::size_t operator()(
      const serve::ShapeKey& key) const noexcept {
    std::size_t h = static_cast<std::size_t>(key.kind);
    for (std::size_t part :
         {key.m, key.k, key.q, static_cast<std::size_t>(key.a_handle)})
      h = h * 1000003u + part;  // FNV-style mix; keys are tiny
    return h;
  }
};

struct ShardLoad {
  std::size_t queued = 0;    ///< requests in the shard's fleet queue
  std::size_t inflight = 0;  ///< dispatched, response not yet collected
  double backlog_flops = 0;  ///< admission backlog on the shard's server
};

struct RouterConfig {
  /// Shards with availability below this are never routed to.
  double availability_floor = 0.05;
  /// Shape affinity holds while the affine shard's effective load is within
  /// this factor of the best shard's.
  double affinity_slack = 1.5;
  /// Backlog flops are folded into occupancy at this scale (flops per unit
  /// of queue depth — roughly one mid-sized protected GEMM).
  double flops_per_slot = 64.0 * 1024 * 1024;
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config = {}) : config_(config) {}

  /// Pick a shard for `key`, or nullopt when every shard is below the
  /// availability floor (fleet-wide outage). Thread-safe.
  [[nodiscard]] std::optional<std::size_t> route(
      const serve::ShapeKey& key, const std::vector<ShardLoad>& loads,
      const std::vector<double>& availability) AABFT_EXCLUDES(mu_);

  /// Drop any shape affinities pinned to `shard` (called on fence so new
  /// same-shaped traffic immediately re-homes).
  void forget_shard(std::size_t shard) AABFT_EXCLUDES(mu_);

  [[nodiscard]] const RouterConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] double effective_load(const ShardLoad& load,
                                      double avail) const noexcept {
    const double occupancy = 1.0 + static_cast<double>(load.queued) +
                             static_cast<double>(load.inflight) +
                             load.backlog_flops / config_.flops_per_slot;
    return occupancy / avail;
  }

  const RouterConfig config_;
  core::Mutex mu_{core::LockRank::kFleetRouter, "fleet.router"};
  std::unordered_map<serve::ShapeKey, std::size_t, ShapeKeyHash> affinity_
      AABFT_GUARDED_BY(mu_);
};

}  // namespace aabft::fleet
