#include "fleet/health.hpp"

#include <algorithm>

namespace aabft::fleet {

const char* to_string(HealthState state) noexcept {
  switch (state) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kFenced: return "fenced";
  }
  return "unknown";
}

void DeviceHealth::observe(const Observation& obs) noexcept {
  if (fenced()) return;  // latched: a quarantined device stays quarantined

  const auto ewma = [&](std::atomic<double>& rate, double sample) {
    const double next = (1.0 - config_.alpha) *
                            rate.load(std::memory_order_relaxed) +
                        config_.alpha * sample;
    rate.store(next, std::memory_order_relaxed);
    return next;
  };
  const double corr = ewma(correction_rate_, obs.corrected ? 1.0 : 0.0);
  const double fail = ewma(failure_rate_, obs.ok ? 0.0 : 1.0);
  const double tmr = ewma(tmr_rate_, obs.tmr_escalated ? 1.0 : 0.0);
  const double retry =
      ewma(retry_rate_, obs.retries > 0 ? static_cast<double>(obs.retries)
                                        : 0.0);
  const std::uint64_t n =
      observations_.fetch_add(1, std::memory_order_relaxed) + 1;

  const double penalty = config_.correction_weight * corr +
                         config_.failure_weight * fail +
                         config_.tmr_weight * tmr +
                         config_.retry_weight * retry;
  const double score = std::clamp(1.0 - penalty, 0.0, 1.0);

  if (n >= config_.min_observations &&
      (corr > config_.fence_correction_rate ||
       fail > config_.fence_failure_rate)) {
    force_fence();
    return;
  }

  availability_.store(score, std::memory_order_release);
  const HealthState next = score < config_.degrade_score
                               ? HealthState::kDegraded
                               : HealthState::kHealthy;
  // kHealthy -> kDegraded can flap back once rates decay; only kFenced is
  // latched (handled above by the early return).
  state_.store(static_cast<int>(next), std::memory_order_release);
}

}  // namespace aabft::fleet
