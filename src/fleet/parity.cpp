#include "fleet/parity.hpp"

#include <cstring>

#include "core/require.hpp"
#include "serve/opcache/fingerprint.hpp"

namespace aabft::fleet {

OperandStore::OperandStore(std::size_t shards) : shards_(shards) {
  AABFT_REQUIRE(shards >= 3,
                "OperandStore: need >= 3 shards (shards-1 data + 1 parity)");
  fenced_.assign(shards_, false);
}

std::uint64_t OperandStore::put(const linalg::Matrix& m) {
  // Content-addressed dedup: repeated-weight serving registers the same
  // matrix over and over; striping it once is enough. Checked again under
  // the publish lock in case a concurrent put of the same content wins.
  const std::uint64_t fp = serve::opcache::fingerprint_matrix(m);
  {
    core::MutexLock lk(mu_);
    auto it = dedup_.find(fp);
    if (it != dedup_.end()) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }

  auto striped = std::make_shared<Striped>();
  striped->rows = m.rows();
  striped->cols = m.cols();
  striped->words = m.rows() * m.cols();

  const std::size_t data_stripes = shards_ - 1;
  const std::size_t stripe_words =
      striped->words == 0 ? 0
                          : (striped->words + data_stripes - 1) / data_stripes;

  // Stripe the row-major payload as uint64 bit patterns; the tail stripe is
  // zero-padded so every stripe XORs against parity at equal length.
  striped->data.assign(data_stripes,
                       std::vector<std::uint64_t>(stripe_words, 0));
  const double* payload = m.data();
  for (std::size_t w = 0; w < striped->words; ++w) {
    std::uint64_t bits;
    std::memcpy(&bits, &payload[w], sizeof(bits));
    striped->data[w / stripe_words][w % stripe_words] = bits;
  }
  striped->parity.assign(stripe_words, 0);
  for (const auto& stripe : striped->data)
    for (std::size_t w = 0; w < stripe_words; ++w)
      striped->parity[w] ^= stripe[w];

  core::MutexLock lk(mu_);
  if (auto it = dedup_.find(fp); it != dedup_.end()) {
    dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;  // lost a race to an identical concurrent put
  }
  const std::uint64_t handle = next_handle_++;
  striped->parity_shard = handle % shards_;
  store_.emplace(handle, std::move(striped));
  dedup_.emplace(fp, handle);
  return handle;
}

Result<OperandStore::Fetched> OperandStore::get(std::uint64_t handle) const {
  std::shared_ptr<const Striped> striped;
  std::vector<bool> fenced;
  {
    core::MutexLock lk(mu_);
    auto it = store_.find(handle);
    if (it == store_.end())
      return Error{ErrorCode::kInvalidArgument,
                   "OperandStore: unknown operand handle " +
                       std::to_string(handle)};
    striped = it->second;
    fenced = fenced_;
  }

  const std::size_t data_stripes = shards_ - 1;
  const auto shard_of = [&](std::size_t stripe) {
    return (striped->parity_shard + 1 + stripe) % shards_;
  };

  std::size_t lost_stripe = data_stripes;  // sentinel: none lost
  std::size_t lost = 0;
  for (std::size_t i = 0; i < data_stripes; ++i) {
    if (fenced[shard_of(i)]) {
      lost_stripe = i;
      ++lost;
    }
  }
  const bool parity_lost = fenced[striped->parity_shard];
  if (lost + (parity_lost ? 1u : 0u) >= 2)
    return Error{ErrorCode::kUnavailable,
                 "OperandStore: " + std::to_string(lost + (parity_lost ? 1 : 0)) +
                     " stripes of operand " + std::to_string(handle) +
                     " are on fenced shards; XOR parity covers one"};

  Fetched out;
  out.matrix = linalg::Matrix(striped->rows, striped->cols);
  double* payload = out.matrix.data();
  const std::size_t stripe_words =
      striped->data.empty() ? 0 : striped->data.front().size();

  std::vector<std::uint64_t> rebuilt;
  if (lost == 1) {
    // XOR of the parity stripe and every surviving data stripe is exactly
    // the lost stripe's bit pattern.
    rebuilt = striped->parity;
    for (std::size_t i = 0; i < data_stripes; ++i)
      if (i != lost_stripe)
        for (std::size_t w = 0; w < stripe_words; ++w)
          rebuilt[w] ^= striped->data[i][w];
    out.reconstructed = true;
    reconstructions_.fetch_add(1, std::memory_order_relaxed);
  }

  for (std::size_t w = 0; w < striped->words; ++w) {
    const std::size_t stripe = w / stripe_words;
    const std::uint64_t bits = stripe == lost_stripe
                                   ? rebuilt[w % stripe_words]
                                   : striped->data[stripe][w % stripe_words];
    std::memcpy(&payload[w], &bits, sizeof(bits));
  }
  return out;
}

Result<std::pair<std::size_t, std::size_t>> OperandStore::dims(
    std::uint64_t handle) const {
  core::MutexLock lk(mu_);
  auto it = store_.find(handle);
  if (it == store_.end())
    return Error{ErrorCode::kInvalidArgument,
                 "OperandStore: unknown operand handle " +
                     std::to_string(handle)};
  return std::make_pair(it->second->rows, it->second->cols);
}

void OperandStore::fence_shard(std::size_t shard) {
  AABFT_REQUIRE(shard < shards_, "OperandStore: shard index out of range");
  core::MutexLock lk(mu_);
  fenced_[shard] = true;
}

std::size_t OperandStore::size() const {
  core::MutexLock lk(mu_);
  return store_.size();
}

}  // namespace aabft::fleet
