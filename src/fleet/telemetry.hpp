// Fleet-level telemetry: per-shard snapshots (the shard's GemmServer stats,
// its health-model rates, and the fleet-layer placement counters) plus fleet
// totals folded together with serve::merge_into. All of it serialises to one
// JSON document with a per-shard array — the "per-shard ServerStats" view a
// fleet operator polls mid-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/latency.hpp"
#include "fleet/health.hpp"
#include "serve/telemetry.hpp"

namespace aabft::fleet {

struct ShardStats {
  std::size_t shard = 0;
  std::string device;  ///< the launcher's device name
  serve::ServerStats server;

  // Health-model snapshot.
  HealthState state = HealthState::kHealthy;
  double availability = 1.0;
  double correction_rate = 0.0;
  double failure_rate = 0.0;
  std::uint64_t observations = 0;

  // Fleet-layer placement and recovery counters for this shard.
  std::uint64_t routed = 0;    ///< requests the router placed here
  std::uint64_t stolen = 0;    ///< requests this shard stole from siblings
  std::uint64_t replayed = 0;  ///< responses re-run elsewhere on its behalf
  std::size_t queued = 0;      ///< fleet-queue depth at snapshot time
  std::size_t inflight = 0;    ///< dispatched, not yet collected

  /// Submit -> fleet response latency for requests *collected* by this shard
  /// (includes any replay time).
  LatencyRecorder fleet_e2e_ns;
};

struct FleetStats {
  std::vector<ShardStats> shards;
  /// Every shard's ServerStats merged (exact: counters add, histograms
  /// merge).
  serve::ServerStats totals;
  std::uint64_t submitted = 0;  ///< fleet-level submissions
  std::uint64_t rejected = 0;   ///< fleet-level refusals (routing/overload)
  std::uint64_t steals = 0;
  std::uint64_t replays = 0;
  std::uint64_t reconstructions = 0;  ///< parity rebuilds in the operand store
  /// register_operand calls answered with an existing handle by content
  /// fingerprint (the operand store's dedup path).
  std::uint64_t operand_dedups = 0;
  std::size_t fenced_devices = 0;
};

[[nodiscard]] std::string to_json(const FleetStats& stats);

}  // namespace aabft::fleet
