// Device description for the SIMT execution model and the analytic timing
// model. The K20C preset matches the accelerator used in the paper's
// evaluation (GK110 Kepler).
#pragma once

#include <cstddef>
#include <string>

namespace aabft::gpusim {

struct DeviceSpec {
  std::string name = "sim";
  int num_sms = 13;                  ///< streaming multiprocessors
  int cores_per_sm = 192;
  double clock_ghz = 0.706;
  double peak_dp_gflops = 1170.0;    ///< peak double-precision rate
  double mem_bandwidth_gbs = 208.0;  ///< global memory bandwidth
  double kernel_launch_us = 5.0;     ///< fixed per-launch overhead
  std::size_t shared_mem_per_block = 48 * 1024;
};

/// The NVIDIA Tesla K20C used in the paper (GK110, 13 SMX, 2496 cores,
/// 1.17 TFLOP/s DP peak, 5 GB GDDR5 at 208 GB/s).
[[nodiscard]] inline DeviceSpec k20c() {
  DeviceSpec spec;
  spec.name = "Tesla K20C (simulated)";
  spec.num_sms = 13;
  spec.cores_per_sm = 192;
  spec.clock_ghz = 0.706;
  spec.peak_dp_gflops = 1170.0;
  spec.mem_bandwidth_gbs = 208.0;
  return spec;
}

}  // namespace aabft::gpusim
