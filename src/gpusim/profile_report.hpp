// Launch-log profiling report: a human-readable per-kernel summary of what a
// scheme executed — op counts, traffic, modelled time and the share of the
// total. Observability for users tuning block sizes or comparing schemes.
#pragma once

#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/kernel.hpp"

namespace aabft::gpusim {

struct KernelProfile {
  std::string name;
  std::size_t launches = 0;
  std::size_t blocks = 0;
  PerfCounters counters;
  double modelled_seconds = 0.0;  ///< summed analytic time of the launches
};

/// Aggregate a launch log by kernel name (in first-seen order), pricing each
/// launch with the profile its name selects (same mapping as Table I).
[[nodiscard]] std::vector<KernelProfile> profile_launch_log(
    const DeviceSpec& device, const std::vector<LaunchStats>& log);

/// Render the aggregation as an aligned text table.
[[nodiscard]] std::string format_profile(const std::vector<KernelProfile>& profiles);

}  // namespace aabft::gpusim
