#include "gpusim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "core/require.hpp"

namespace aabft::gpusim {

double kernel_seconds(const DeviceSpec& device, const PerfCounters& counters,
                      const EfficiencyProfile& profile) {
  AABFT_REQUIRE(profile.compute_fraction > 0 && profile.mem_efficiency > 0,
                "efficiency profile must be positive");
  const double ops =
      static_cast<double>(counters.flops() + counters.compares);
  const double bytes = static_cast<double>(counters.bytes());

  double fraction = profile.compute_fraction;
  if (profile.half_extent > 0.0 && ops > 0.0) {
    const double extent = std::cbrt(ops / 2.0);
    fraction *= extent / (extent + profile.half_extent);
  }

  const double peak_flops_per_s = device.peak_dp_gflops * 1e9;
  const double bw_bytes_per_s = device.mem_bandwidth_gbs * 1e9;

  const double compute_s = ops / (peak_flops_per_s * fraction);
  const double memory_s = bytes / (bw_bytes_per_s * profile.mem_efficiency);

  return device.kernel_launch_us * 1e-6 + std::max(compute_s, memory_s);
}

double gflops(std::uint64_t useful_flops, double seconds) {
  AABFT_REQUIRE(seconds > 0, "elapsed time must be positive");
  return static_cast<double>(useful_flops) / seconds / 1e9;
}

}  // namespace aabft::gpusim
