#include "gpusim/hazard.hpp"

#include <sstream>
#include <utility>

namespace aabft::gpusim {

const char* to_string(HazardKind kind) noexcept {
  switch (kind) {
    case HazardKind::kRaceWriteWrite:
      return "write/write race";
    case HazardKind::kRaceWriteRead:
      return "write/read race";
    case HazardKind::kRaceReadWrite:
      return "read/write race";
    case HazardKind::kSyncDivergence:
      return "barrier divergence";
    case HazardKind::kOutOfBounds:
      return "out-of-bounds access";
    case HazardKind::kSharedOverflow:
      return "shared-memory overflow";
  }
  return "unknown hazard";
}

std::string HazardRecord::describe() const {
  std::ostringstream os;
  os << kernel << " block " << block << ": " << to_string(kind);
  switch (kind) {
    case HazardKind::kRaceWriteWrite:
    case HazardKind::kRaceWriteRead:
    case HazardKind::kRaceReadWrite:
      os << " on " << array << "[" << cell << "] between threads "
         << first_thread << " and " << second_thread << " (epoch " << epoch
         << ")";
      break;
    case HazardKind::kSyncDivergence:
      os << ": " << cell << " of " << second_thread
         << " threads arrived (first missing: thread " << first_thread
         << ", epoch " << epoch << ")";
      break;
    case HazardKind::kOutOfBounds:
      os << ": thread " << second_thread << " touched " << array << "["
         << cell << "]";
      break;
    case HazardKind::kSharedOverflow:
      os << ": allocating " << array << " (" << cell
         << " elements) exceeds the device's per-block shared memory";
      break;
  }
  return os.str();
}

HazardError::HazardError(HazardRecord record)
    : std::runtime_error(record.describe()), record_(std::move(record)) {}

void HazardSink::report(const HazardRecord& record) {
  const core::MutexLock lock(mu_);
  ++total_;
  if (records_.size() < kMaxRecords) records_.push_back(record);
}

std::vector<HazardRecord> HazardSink::records() const {
  const core::MutexLock lock(mu_);
  return records_;
}

std::size_t HazardSink::total() const {
  const core::MutexLock lock(mu_);
  return total_;
}

std::size_t HazardSink::dropped() const {
  const core::MutexLock lock(mu_);
  return total_ - records_.size();
}

void HazardSink::clear() {
  const core::MutexLock lock(mu_);
  records_.clear();
  total_ = 0;
}

void HazardCtx::report(HazardKind kind, const char* array, std::size_t cell,
                       int first, int second) {
  HazardRecord record;
  record.kind = kind;
  record.kernel = kernel_ != nullptr ? *kernel_ : std::string("<unnamed>");
  record.block = block_;
  record.array = array != nullptr ? array : "";
  record.cell = cell;
  record.first_thread = first;
  record.second_thread = second;
  record.epoch = epoch_;
  if (sink_ != nullptr) sink_->report(record);
  if (mode_ == HazardMode::kAbort) throw HazardError(std::move(record));
}

}  // namespace aabft::gpusim
