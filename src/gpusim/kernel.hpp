// Kernel launch abstraction for the SIMT execution model.
//
// A "kernel" is any callable invoked once per thread block:
//
//     void kernel(BlockCtx& block);
//
// Inside the callable, code is written in the block-synchronous style: the
// work of the BS x 1 (or BM x BN) threads of one block is expressed as loops
// over thread ids, with shared memory as block-local arrays. Sequential
// execution of those per-thread loops gives the same operation set, operand
// values and rounding behaviour the CUDA kernels produce; barriers are
// implicit between loop nests, exactly where the CUDA code has __syncthreads.
//
// Blocks are distributed over a *persistent* host worker pool (see
// gpusim/executor.hpp) and deterministically assigned to virtual streaming
// multiprocessors (sm = linear_block_index mod num_sms), which the
// fault-injection machinery uses for SM targeting. All floating-point work
// inside a block goes through BlockCtx::math.
//
// Execution modes:
//   - launch():       synchronous, returns the launch's aggregated counters.
//   - launch_async(): enqueues onto a Stream; kernels execute in FIFO order
//                     within a stream and concurrently across streams
//                     (CUDA stream semantics). The launch environment
//                     (fault controller, precision, device) is snapshotted
//                     at enqueue time.
//   - launch_host_async(): enqueues a host function onto a stream, for
//                     host-side pipeline stages between kernels.
//
// Thread-safety contract:
//   - launch() may be called concurrently from multiple host threads
//     (including from host functions enqueued on streams).
//   - The launch log is internally synchronized: entries are appended under
//     a mutex when each launch completes, and launch_log() returns a
//     *snapshot copy*. Within one stream, log order equals enqueue order;
//     across concurrently executing streams the interleaving is the
//     completion order and is not deterministic. Call synchronize() first
//     for a complete log.
//   - set_fault_controller() / set_precision() / set_hazard_mode() are not
//     synchronized against concurrent launches; set them while no
//     *synchronous* launch is in flight (enforced: a work-in-flight counter
//     turns misuse into an AABFT_REQUIRE failure). Async launches capture
//     all three at enqueue time, so reconfiguring while stream work is
//     pending is well-defined.
//
// Hazard analysis (racecheck / synccheck / memcheck — see gpusim/hazard.hpp):
// set_hazard_mode(HazardMode::kRecord) makes every subsequent launch track
// SharedArray accesses through shadow cells; detected hazards accumulate in
// hazard_records(). kAbort throws HazardError at the first hazard — out of
// launch() directly, or out of synchronize() for async launches. A block
// body that throws (hazard abort, shared-memory overflow) never kills a pool
// worker: the first exception is captured and rethrown on the waiting host
// thread; for stream work it is stored and rethrown by synchronize().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/require.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim.hpp"
#include "gpusim/executor.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/math_ctx.hpp"
#include "gpusim/perf_counters.hpp"

namespace aabft::gpusim {

/// Executes kernels over a grid of blocks.
class Launcher {
 public:
  /// workers == 0 selects std::thread::hardware_concurrency(). The worker
  /// pool is created lazily on the first parallel or asynchronous launch and
  /// persists for the lifetime of the Launcher.
  explicit Launcher(DeviceSpec spec = k20c(), unsigned workers = 0)
      : spec_(std::move(spec)),
        workers_(workers != 0 ? workers
                              : std::max(1u, std::thread::hardware_concurrency())) {}

  // Drain without rethrowing stored async errors (throwing from a destructor
  // would terminate); an unobserved async failure is dropped here.
  ~Launcher() { drain(); }

  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  [[nodiscard]] const DeviceSpec& device() const noexcept { return spec_; }
  [[nodiscard]] unsigned workers() const noexcept { return workers_; }

  /// Attach (or detach, with nullptr) the fault controller consulted by all
  /// subsequently launched kernels. A ScopedFaultController installed on the
  /// launching thread takes precedence (per-request fault lifecycles in
  /// serving loops — see fault_site.hpp); like precision and hazard mode,
  /// whichever controller is effective at launch/enqueue time is snapshotted
  /// for the whole launch.
  void set_fault_controller(FaultController* faults) {
    require_no_sync_inflight("set_fault_controller");
    faults_ = faults;
  }
  [[nodiscard]] FaultController* fault_controller() const noexcept { return faults_; }

  /// Arithmetic precision of subsequently launched kernels (default double;
  /// kSingle simulates a binary32 GPU pipeline — see MathCtx::Precision).
  void set_precision(Precision precision) {
    require_no_sync_inflight("set_precision");
    precision_ = precision;
  }
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  /// Hazard analysis of subsequently launched kernels (default kOff). Like
  /// the fault controller and precision, async launches snapshot the mode at
  /// enqueue time. Detected hazards accumulate in hazard_records().
  void set_hazard_mode(HazardMode mode) {
    require_no_sync_inflight("set_hazard_mode");
    hazard_mode_ = mode;
  }
  [[nodiscard]] HazardMode hazard_mode() const noexcept { return hazard_mode_; }

  /// Snapshot of the hazards recorded by launches of this launcher so far
  /// (bounded — see HazardSink). Synchronize() first for a complete view of
  /// async work.
  [[nodiscard]] std::vector<HazardRecord> hazard_records() const {
    return hazards_.records();
  }
  [[nodiscard]] std::size_t hazard_count() const { return hazards_.total(); }
  void clear_hazard_records() { hazards_.clear(); }

  /// Run `body(BlockCtx&)` for every block of the grid and wait. Returns op
  /// counts aggregated across blocks and records them in the launch log.
  /// The calling thread participates in executing blocks, so this is safe
  /// (and fast) to call from host functions running on the pool itself.
  template <typename Body>
  LaunchStats launch(const std::string& name, Dim3 grid, Body&& body) {
    AABFT_REQUIRE(grid.count() > 0, "empty grid");
    const std::size_t total = grid.count();
    const SyncInflightGuard inflight(sync_inflight_);

    if (workers_ <= 1 || total == 1) {
      LaunchStats stats;
      stats.kernel_name = name;
      stats.blocks = total;
      FaultController* const faults = effective_faults();
      for (std::size_t i = 0; i < total; ++i) {
        BlockCtx ctx(block_coord(grid, i), grid,
                     static_cast<int>(i % static_cast<std::size_t>(spec_.num_sms)),
                     faults, precision_, spec_.shared_mem_per_block);
        ctx.hazard.init(hazard_mode_, &hazards_, &name, i);
        body(ctx);
        stats.counters += ctx.math.counters();
      }
      append_log(stats);
      return stats;
    }

    Executor& pool = this->pool();
    // The body outlives the wait below, so capture it by reference — no copy
    // of the (potentially large) closure per launch.
    auto task = pool.submit_kernel(
        name, make_env(grid), [&body](BlockCtx& ctx) { body(ctx); });
    pool.wait(task, /*help=*/true);
    if (auto error = task->error()) std::rethrow_exception(error);
    append_log(task->stats());
    return task->stats();
  }

  /// Create a new stream. Streams created from the same launcher share the
  /// worker pool; see the header comment for ordering semantics.
  [[nodiscard]] Stream create_stream() AABFT_EXCLUDES(streams_mu_) {
    (void)pool();  // streams always need the pool, even with one worker
    auto state = std::make_shared<detail::StreamState>();
    {
      core::MutexLock lk(streams_mu_);
      streams_.push_back(state);
    }
    return Stream(std::move(state));
  }

  /// Enqueue a kernel launch on `stream` and return immediately. The body is
  /// copied (it must own or outlive everything it captures). Counters are
  /// appended to the launch log when the kernel completes.
  template <typename Body>
  void launch_async(Stream& stream, const std::string& name, Dim3 grid,
                    Body&& body) {
    AABFT_REQUIRE(stream.valid(), "stream is not attached to a launcher");
    AABFT_REQUIRE(grid.count() > 0, "empty grid");
    detail::StreamState::Op op;
    op.is_kernel = true;
    op.name = name;
    op.env = make_env(grid);
    op.body = Executor::KernelBody(std::forward<Body>(body));
    op.on_complete = [this](const LaunchStats& stats, std::exception_ptr error) {
      if (error)
        note_async_error(error);
      else
        append_log(stats);
    };
    detail::stream_enqueue(stream.state_, pool(), std::move(op));
  }

  /// Enqueue a host function on `stream` (not logged as a kernel). Host
  /// functions may perform nested synchronous launch() calls.
  void launch_host_async(Stream& stream, std::string name,
                         std::function<void()> fn) {
    AABFT_REQUIRE(stream.valid(), "stream is not attached to a launcher");
    detail::StreamState::Op op;
    op.is_kernel = false;
    op.name = std::move(name);
    op.host = std::move(fn);
    op.on_complete = [this](const LaunchStats&, std::exception_ptr error) {
      if (error) note_async_error(error);
    };
    detail::stream_enqueue(stream.state_, pool(), std::move(op));
  }

  /// Wait until every stream created from this launcher is idle, then rethrow
  /// the first exception any async kernel/host task raised since the last
  /// synchronize() (hazard aborts, shared-memory overflows, ...).
  void synchronize() AABFT_EXCLUDES(async_error_mu_) {
    drain();
    std::exception_ptr error;
    {
      core::MutexLock lk(async_error_mu_);
      error = std::exchange(async_error_, nullptr);
    }
    if (error) std::rethrow_exception(error);
  }

  /// Launch log: one entry per completed kernel launch since the last clear.
  /// Returns a snapshot copy (see the thread-safety contract above).
  [[nodiscard]] std::vector<LaunchStats> launch_log() const
      AABFT_EXCLUDES(log_mu_) {
    core::MutexLock lk(log_mu_);
    return log_;
  }
  void clear_launch_log() AABFT_EXCLUDES(log_mu_) {
    core::MutexLock lk(log_mu_);
    log_.clear();
  }

 private:
  /// RAII in-flight marker for synchronous launches (the counter the
  /// reconfiguration assertions check). Async work is exempt: it snapshots
  /// its environment at enqueue time.
  class SyncInflightGuard {
   public:
    explicit SyncInflightGuard(std::atomic<int>& count) noexcept
        : count_(count) {
      count_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~SyncInflightGuard() { count_.fetch_sub(1, std::memory_order_acq_rel); }
    SyncInflightGuard(const SyncInflightGuard&) = delete;
    SyncInflightGuard& operator=(const SyncInflightGuard&) = delete;

   private:
    std::atomic<int>& count_;
  };

  void require_no_sync_inflight(const char* setter) const {
    AABFT_REQUIRE(sync_inflight_.load(std::memory_order_acquire) == 0,
                  (std::string(setter) +
                   "() while a synchronous launch is in flight — reconfigure "
                   "the launcher only between launches")
                      .c_str());
  }

  void note_async_error(std::exception_ptr error)
      AABFT_EXCLUDES(async_error_mu_) {
    core::MutexLock lk(async_error_mu_);
    if (!async_error_) async_error_ = error;
  }

  /// Wait until every stream created from this launcher is idle, without
  /// rethrowing stored async errors (destructor-safe).
  void drain() AABFT_EXCLUDES(streams_mu_) {
    std::vector<std::weak_ptr<detail::StreamState>> streams;
    {
      core::MutexLock lk(streams_mu_);
      streams = streams_;
    }
    // stream_synchronize (rank kDeviceStream) runs with streams_mu_ released:
    // waiting for stream idleness while holding the registry lock would stall
    // create_stream() on other threads for the whole drain.
    for (auto& weak : streams)
      if (auto state = weak.lock()) detail::stream_synchronize(state);
  }

  /// The controller for work initiated by the calling thread: its
  /// ScopedFaultController override when one is installed, else the
  /// launcher-attached controller.
  [[nodiscard]] FaultController* effective_faults() const noexcept {
    if (FaultController* scoped = thread_fault_controller()) return scoped;
    return faults_;
  }

  [[nodiscard]] Executor::Env make_env(Dim3 grid) noexcept {
    Executor::Env env;
    env.grid = grid;
    env.num_sms = spec_.num_sms;
    env.shared_limit = spec_.shared_mem_per_block;
    env.faults = effective_faults();
    env.precision = precision_;
    env.hazard_mode = hazard_mode_;
    env.hazard_sink = &hazards_;
    return env;
  }

  Executor& pool() {
    std::call_once(pool_once_, [this] {
      pool_ = std::make_unique<Executor>(workers_);
    });
    return *pool_;
  }

  void append_log(const LaunchStats& stats) AABFT_EXCLUDES(log_mu_) {
    core::MutexLock lk(log_mu_);
    log_.push_back(stats);
  }

  DeviceSpec spec_;
  unsigned workers_;
  FaultController* faults_ = nullptr;
  Precision precision_ = Precision::kDouble;
  HazardMode hazard_mode_ = HazardMode::kOff;
  HazardSink hazards_;
  std::atomic<int> sync_inflight_{0};

  core::Mutex async_error_mu_{core::LockRank::kDeviceAsyncError,
                              "device.async_error"};
  std::exception_ptr async_error_ AABFT_GUARDED_BY(async_error_mu_);

  std::once_flag pool_once_;
  std::unique_ptr<Executor> pool_;

  core::Mutex streams_mu_{core::LockRank::kDeviceStreams, "device.streams"};
  std::vector<std::weak_ptr<detail::StreamState>> streams_
      AABFT_GUARDED_BY(streams_mu_);

  mutable core::Mutex log_mu_{core::LockRank::kDeviceLog, "device.log"};
  std::vector<LaunchStats> log_ AABFT_GUARDED_BY(log_mu_);
};

}  // namespace aabft::gpusim
