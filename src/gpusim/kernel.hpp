// Kernel launch abstraction for the SIMT execution model.
//
// A "kernel" is any callable invoked once per thread block:
//
//     void kernel(BlockCtx& block);
//
// Inside the callable, code is written in the block-synchronous style: the
// work of the BS x 1 (or BM x BN) threads of one block is expressed as loops
// over thread ids, with shared memory as block-local arrays. Sequential
// execution of those per-thread loops gives the same operation set, operand
// values and rounding behaviour the CUDA kernels produce; barriers are
// implicit between loop nests, exactly where the CUDA code has __syncthreads.
//
// Blocks are distributed over a host worker pool and deterministically
// assigned to virtual streaming multiprocessors (sm = linear_block_index mod
// num_sms), which the fault-injection machinery uses for SM targeting. All
// floating-point work inside a block goes through BlockCtx::math.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/require.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/math_ctx.hpp"
#include "gpusim/perf_counters.hpp"

namespace aabft::gpusim {

/// Everything a kernel body can see about the block it runs as.
struct BlockCtx {
  BlockCoord block;      ///< coordinates within the grid
  Dim3 grid;             ///< grid dimensions
  MathCtx math;          ///< counted / injectable arithmetic

  BlockCtx(BlockCoord b, Dim3 g, int sm_id, FaultController* faults,
           Precision precision, std::uint64_t shared_limit) noexcept
      : block(b), grid(g), math(sm_id, faults, precision) {
    math.set_shared_limit(shared_limit);
  }
};

/// Aggregated result of one kernel launch.
struct LaunchStats {
  std::string kernel_name;
  std::size_t blocks = 0;
  PerfCounters counters;
};

/// Executes kernels over a grid of blocks.
class Launcher {
 public:
  /// workers == 0 selects std::thread::hardware_concurrency().
  explicit Launcher(DeviceSpec spec = k20c(), unsigned workers = 0)
      : spec_(std::move(spec)),
        workers_(workers != 0 ? workers
                              : std::max(1u, std::thread::hardware_concurrency())) {}

  [[nodiscard]] const DeviceSpec& device() const noexcept { return spec_; }

  /// Attach (or detach, with nullptr) the fault controller consulted by all
  /// subsequently launched kernels.
  void set_fault_controller(FaultController* faults) noexcept { faults_ = faults; }
  [[nodiscard]] FaultController* fault_controller() const noexcept { return faults_; }

  /// Arithmetic precision of subsequently launched kernels (default double;
  /// kSingle simulates a binary32 GPU pipeline — see MathCtx::Precision).
  void set_precision(Precision precision) noexcept { precision_ = precision; }
  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  /// Run `body(BlockCtx&)` for every block of the grid. Returns op counts
  /// aggregated across blocks and records them in the launch log.
  template <typename Body>
  LaunchStats launch(const std::string& name, Dim3 grid, Body&& body) {
    AABFT_REQUIRE(grid.count() > 0, "empty grid");
    const std::size_t total = grid.count();
    LaunchStats stats;
    stats.kernel_name = name;
    stats.blocks = total;

    if (workers_ <= 1 || total == 1) {
      for (std::size_t i = 0; i < total; ++i) {
        BlockCtx ctx(block_coord(grid, i),
                     grid,
                     static_cast<int>(i % static_cast<std::size_t>(spec_.num_sms)),
                     faults_, precision_, spec_.shared_mem_per_block);
        body(ctx);
        stats.counters += ctx.math.counters();
      }
    } else {
      std::atomic<std::size_t> next{0};
      std::vector<PerfCounters> partial(workers_);
      std::vector<std::thread> pool;
      pool.reserve(workers_);
      for (unsigned w = 0; w < workers_; ++w) {
        pool.emplace_back([&, w] {
          PerfCounters local;
          for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
               i < total; i = next.fetch_add(1, std::memory_order_relaxed)) {
            BlockCtx ctx(block_coord(grid, i), grid,
                         static_cast<int>(i % static_cast<std::size_t>(spec_.num_sms)),
                         faults_, precision_, spec_.shared_mem_per_block);
            body(ctx);
            local += ctx.math.counters();
          }
          partial[w] = local;
        });
      }
      for (auto& t : pool) t.join();
      for (const auto& p : partial) stats.counters += p;
    }

    log_.push_back(stats);
    return stats;
  }

  /// Launch log: one entry per kernel launch since the last clear, in launch
  /// order. The Table I harness reads this to cost every kernel a scheme ran.
  [[nodiscard]] const std::vector<LaunchStats>& launch_log() const noexcept {
    return log_;
  }
  void clear_launch_log() noexcept { log_.clear(); }

 private:
  DeviceSpec spec_;
  unsigned workers_;
  FaultController* faults_ = nullptr;
  Precision precision_ = Precision::kDouble;
  std::vector<LaunchStats> log_;
};

}  // namespace aabft::gpusim
