#include "gpusim/profile_report.hpp"

#include <map>

#include "core/table.hpp"
#include "gpusim/perf_model.hpp"

namespace aabft::gpusim {

namespace {

EfficiencyProfile profile_for(const std::string& name) {
  if (name.starts_with("gemm")) return gemm_profile();
  if (name.starts_with("reduce_pmax") || name == "row_norms" ||
      name == "col_norms" || name.starts_with("pmax_"))
    return reduction_profile();
  return streaming_profile();
}

}  // namespace

std::vector<KernelProfile> profile_launch_log(
    const DeviceSpec& device, const std::vector<LaunchStats>& log) {
  std::vector<KernelProfile> profiles;
  std::map<std::string, std::size_t> index;
  for (const auto& entry : log) {
    auto [it, inserted] = index.try_emplace(entry.kernel_name, profiles.size());
    if (inserted) {
      KernelProfile fresh;
      fresh.name = entry.kernel_name;
      profiles.push_back(fresh);
    }
    KernelProfile& p = profiles[it->second];
    ++p.launches;
    p.blocks += entry.blocks;
    p.counters += entry.counters;
    p.modelled_seconds +=
        kernel_seconds(device, entry.counters, profile_for(entry.kernel_name));
  }
  return profiles;
}

std::string format_profile(const std::vector<KernelProfile>& profiles) {
  double total = 0.0;
  for (const auto& p : profiles) total += p.modelled_seconds;

  TablePrinter table({"kernel", "launches", "blocks", "flops", "bytes",
                      "model ms", "share"});
  for (const auto& p : profiles) {
    table.add_row({p.name, std::to_string(p.launches),
                   std::to_string(p.blocks),
                   std::to_string(p.counters.flops()),
                   std::to_string(p.counters.bytes()),
                   TablePrinter::fixed(p.modelled_seconds * 1e3, 3),
                   total > 0.0 ? TablePrinter::fixed(
                                     100.0 * p.modelled_seconds / total, 1) +
                                     "%"
                               : "-"});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace aabft::gpusim
