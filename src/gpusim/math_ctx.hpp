// Per-block floating-point context: counted, optionally faulty arithmetic.
//
// Simulated kernels perform all their floating-point work through a MathCtx.
// This gives the library three properties at once:
//   1. exact operation counts per kernel (feeding the Table I timing model),
//   2. a well-defined injection surface for the paper's Algorithm 3 faults,
//   3. a single switch between mul+add and FMA accumulation (Section IV-D),
//      which the rounding-error bound model must know about.
//
// The fast path (no armed fault) is a pointer null-check per injectable op.
// On top of that, kernels can use the *fault fence* (needs_instrumented) to
// prove that a whole K-panel / module-row region cannot intersect any armed
// fault, and then run the span helpers below: raw std::fma / mul-add loops
// with the same operation order and rounding as the per-op path (so results
// stay bit-identical) and counters bumped once in bulk.
#pragma once

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "core/require.hpp"

#include "gpusim/fault_site.hpp"
#include "gpusim/perf_counters.hpp"

namespace aabft::gpusim {

namespace detail {
inline std::atomic<bool> g_force_instrumented{false};
}  // namespace detail

/// Test/bench switch: when set, every fault fence answers "instrumented"
/// and kernels fall back to the per-op path everywhere — the reference side
/// of the fast-path A/B bit-identity tests. Not for production use.
inline void set_force_instrumented(bool on) noexcept {
  detail::g_force_instrumented.store(on, std::memory_order_release);
}
[[nodiscard]] inline bool force_instrumented() noexcept {
  return detail::g_force_instrumented.load(std::memory_order_acquire);
}

/// Arithmetic precision of a simulated kernel. Values are carried in
/// doubles either way; kSingle rounds every operation result to binary32
/// (every float is exactly representable as a double, so this reproduces a
/// single-precision GPU kernel's rounding bit-for-bit). The bound model then
/// runs with t = 23.
enum class Precision : std::uint8_t { kDouble, kSingle };

class MathCtx {
 public:
  MathCtx(int sm_id, FaultController* faults,
          Precision precision = Precision::kDouble) noexcept
      : sm_id_(sm_id), faults_(faults), precision_(precision) {}

  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  // ---- plain counted arithmetic (not an injection target) ----

  [[nodiscard]] double add(double a, double b) noexcept {
    ++counters_.adds;
    return round_result(a + b);
  }

  [[nodiscard]] double sub(double a, double b) noexcept {
    ++counters_.adds;
    return round_result(a - b);
  }

  [[nodiscard]] double mul(double a, double b) noexcept {
    ++counters_.muls;
    return round_result(a * b);
  }

  [[nodiscard]] double fma(double a, double b, double c) noexcept {
    ++counters_.fmas;
    return fma_raw(a, b, c);
  }

  [[nodiscard]] double abs(double a) noexcept {
    ++counters_.compares;
    return std::fabs(a);
  }

  [[nodiscard]] double max(double a, double b) noexcept {
    ++counters_.compares;
    return a > b ? a : b;
  }

  // ---- injectable arithmetic (paper Algorithm 3 fault sites) ----

  [[nodiscard]] double faulty_mul(double a, double b, FaultSite site,
                                  int module_id, std::int64_t k) noexcept {
    ++counters_.muls;
    double r = round_result(a * b);
    if (faults_ != nullptr)
      r = faults_->maybe_inject(site, sm_id_, module_id, k, r,
                                precision_ == Precision::kSingle);
    return r;
  }

  [[nodiscard]] double faulty_add(double a, double b, FaultSite site,
                                  int module_id, std::int64_t k) noexcept {
    ++counters_.adds;
    double r = round_result(a + b);
    if (faults_ != nullptr)
      r = faults_->maybe_inject(site, sm_id_, module_id, k, r,
                                precision_ == Precision::kSingle);
    return r;
  }

  /// FMA with injection applied to the fused result (the multiplication is
  /// not separately observable in hardware FMA, so the add site is used).
  [[nodiscard]] double faulty_fma(double a, double b, double c, FaultSite site,
                                  int module_id, std::int64_t k) noexcept {
    ++counters_.fmas;
    double r = fma_raw(a, b, c);
    if (faults_ != nullptr)
      r = faults_->maybe_inject(site, sm_id_, module_id, k, r,
                                precision_ == Precision::kSingle);
    return r;
  }

  // ---- fault fence + span-level fast path ----
  //
  // needs_instrumented() answers, once per block / K-panel / module row,
  // whether the per-op injectable path must be taken for a region. On a
  // negative answer the *_row/dot_* helpers below execute the identical
  // operation sequence with identical rounding (so results are bit-exact)
  // but without per-op fault checks, and bump the counters once in bulk.

  /// True when the region [site_lo..site_hi] x [module_lo..module_hi] x
  /// [k_lo..k_hi] on this block's SM must run instrumented: either the
  /// global force-instrumented switch is set (A/B testing) or an armed,
  /// unfired fault can intersect the region.
  [[nodiscard]] bool needs_instrumented(FaultSite site_lo, FaultSite site_hi,
                                        int module_lo, int module_hi,
                                        std::int64_t k_lo,
                                        std::int64_t k_hi) const noexcept {
    if (force_instrumented()) return true;
    return faults_ != nullptr &&
           faults_->may_fire(site_lo, site_hi, sm_id_, module_lo, module_hi,
                             k_lo, k_hi);
  }

  /// Round an exactly-computed double the way this context's ops would
  /// (identity in double mode, binary32 rounding in single mode). For
  /// fenced fast-path loops written in place.
  [[nodiscard]] double canonical(double x) const noexcept {
    return round_result(x);
  }

  /// acc[j] = fma(a, b[j], acc[j]) for j in [0, n): the fenced fast path of
  /// one GEMM inner row with FMA accumulation. Counts n FMAs in bulk.
  void fma_row(double a, const double* __restrict b,
               double* __restrict acc, std::size_t n) noexcept {
    counters_.fmas += n;
    if (precision_ == Precision::kSingle) {
      const auto af = static_cast<float>(a);
      for (std::size_t j = 0; j < n; ++j)
        acc[j] = static_cast<double>(
            std::fmaf(af, static_cast<float>(b[j]), static_cast<float>(acc[j])));
    } else {
      for (std::size_t j = 0; j < n; ++j) acc[j] = std::fma(a, b[j], acc[j]);
    }
  }

  /// acc[j] = round(acc[j] + round(a * b[j])): the fenced fast path of one
  /// GEMM inner row with separate mul+add rounding. Counts n muls + n adds.
  /// (Compiled with -ffp-contract=off, so the compiler cannot fuse the two
  /// roundings into an FMA and break bit-identity with the per-op path.)
  void mul_add_row(double a, const double* __restrict b,
                   double* __restrict acc, std::size_t n) noexcept {
    counters_.muls += n;
    counters_.adds += n;
    if (precision_ == Precision::kSingle) {
      for (std::size_t j = 0; j < n; ++j)
        acc[j] = round_result(acc[j] + round_result(a * b[j]));
    } else {
      for (std::size_t j = 0; j < n; ++j) acc[j] = acc[j] + a * b[j];
    }
  }

  /// acc = fma(a[k], x[k], acc) over k in [0, n): fenced GEMV row with FMA
  /// accumulation. Counts n FMAs in bulk.
  [[nodiscard]] double dot_fma(const double* a, const double* x, std::size_t n,
                               double acc) noexcept {
    counters_.fmas += n;
    if (precision_ == Precision::kSingle) {
      for (std::size_t k = 0; k < n; ++k)
        acc = static_cast<double>(std::fmaf(static_cast<float>(a[k]),
                                            static_cast<float>(x[k]),
                                            static_cast<float>(acc)));
    } else {
      for (std::size_t k = 0; k < n; ++k) acc = std::fma(a[k], x[k], acc);
    }
    return acc;
  }

  /// acc = round(acc + round(a[k] * x[k])) over k: fenced GEMV row with
  /// separate mul+add rounding. Counts n muls + n adds.
  [[nodiscard]] double dot_mul_add(const double* a, const double* x,
                                   std::size_t n, double acc) noexcept {
    counters_.muls += n;
    counters_.adds += n;
    if (precision_ == Precision::kSingle) {
      for (std::size_t k = 0; k < n; ++k)
        acc = round_result(acc + round_result(a[k] * x[k]));
    } else {
      for (std::size_t k = 0; k < n; ++k) acc = acc + a[k] * x[k];
    }
    return acc;
  }

  /// dst[j] = round(dst[j] + src[j]) for j in [0, n): the fenced final-merge
  /// row (accumulators into the C tile). Counts n adds in bulk.
  void add_rows(double* __restrict dst, const double* __restrict src,
                std::size_t n) noexcept {
    counters_.adds += n;
    if (precision_ == Precision::kSingle) {
      for (std::size_t j = 0; j < n; ++j) dst[j] = round_result(dst[j] + src[j]);
    } else {
      for (std::size_t j = 0; j < n; ++j) dst[j] = dst[j] + src[j];
    }
  }

  /// Left-to-right sum of squares of n elements spaced `stride` apart,
  /// starting from 0.0 and rounding both operations exactly like chained
  /// add(mul(x, x)) calls. Counts n muls + n adds in bulk. The norm kernels
  /// use this for their fenced fast path.
  [[nodiscard]] double sum_squares_strided(const double* v, std::size_t n,
                                           std::size_t stride) noexcept {
    counters_.muls += n;
    counters_.adds += n;
    double s = 0.0;
    if (precision_ == Precision::kSingle) {
      for (std::size_t i = 0; i < n; ++i) {
        const double x = v[i * stride];
        s = round_result(s + round_result(x * x));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const double x = v[i * stride];
        s = s + x * x;
      }
    }
    return s;
  }

  /// Left-to-right sum of n elements spaced `stride` apart, starting from
  /// 0.0 and rounding after every addition exactly like chained add() calls.
  /// Counts n adds in bulk. Checker kernels use this for checksum
  /// reference sums (stride 1 for rows, the row length for columns).
  [[nodiscard]] double sum_strided(const double* v, std::size_t n,
                                   std::size_t stride) noexcept {
    counters_.adds += n;
    double s = 0.0;
    if (precision_ == Precision::kSingle) {
      for (std::size_t i = 0; i < n; ++i) s = round_result(s + v[i * stride]);
    } else {
      for (std::size_t i = 0; i < n; ++i) s = s + v[i * stride];
    }
    return s;
  }

  // ---- bulk accounting for library helpers (e.g. PMaxList::offer returns
  // its comparison count; the epsilon computation is a handful of flops) ----

  void count_adds(std::uint64_t n) noexcept { counters_.adds += n; }
  void count_muls(std::uint64_t n) noexcept { counters_.muls += n; }
  void count_compares(std::uint64_t n) noexcept { counters_.compares += n; }

  // ---- logical global-memory traffic ----

  void load_bytes(std::uint64_t n) noexcept { counters_.bytes_loaded += n; }
  void store_bytes(std::uint64_t n) noexcept { counters_.bytes_stored += n; }
  void load_doubles(std::uint64_t n) noexcept { counters_.bytes_loaded += 8 * n; }
  void store_doubles(std::uint64_t n) noexcept { counters_.bytes_stored += 8 * n; }

  // ---- shared-memory budget ----

  /// Declare the block's shared-memory footprint. Kernels call this once per
  /// allocation; the launcher validates the total against the device's
  /// per-block shared-memory capacity (a real CUDA kernel with this
  /// footprint would fail to launch).
  void use_shared_doubles(std::uint64_t n) { use_shared_bytes(8 * n); }
  void use_shared_bytes(std::uint64_t n) {
    shared_bytes_ += n;
    AABFT_REQUIRE(shared_limit_ == 0 || shared_bytes_ <= shared_limit_,
                  "kernel exceeds the device's per-block shared memory");
  }
  /// Footprint accounting without the hard failure: the hazard analyzer uses
  /// this in record mode so an oversized block is *reported* (memcheck) and
  /// execution continues. Plain kernels keep the throwing overload above.
  void use_shared_bytes_unchecked(std::uint64_t n) noexcept {
    shared_bytes_ += n;
  }
  void set_shared_limit(std::uint64_t bytes) noexcept { shared_limit_ = bytes; }
  [[nodiscard]] std::uint64_t shared_limit() const noexcept {
    return shared_limit_;
  }
  [[nodiscard]] std::uint64_t shared_bytes() const noexcept {
    return shared_bytes_;
  }

  [[nodiscard]] int sm_id() const noexcept { return sm_id_; }
  [[nodiscard]] const PerfCounters& counters() const noexcept { return counters_; }

 private:
  /// In single-precision mode, round an (exact-in-double) op result to
  /// binary32. Adding or multiplying two float-valued doubles is exact in
  /// double, so round_result gives the correctly rounded float operation —
  /// no double rounding.
  [[nodiscard]] double round_result(double x) const noexcept {
    return precision_ == Precision::kSingle
               ? static_cast<double>(static_cast<float>(x))
               : x;
  }

  [[nodiscard]] double fma_raw(double a, double b, double c) const noexcept {
    if (precision_ == Precision::kSingle)
      return static_cast<double>(
          std::fmaf(static_cast<float>(a), static_cast<float>(b),
                    static_cast<float>(c)));
    return std::fma(a, b, c);
  }

  int sm_id_;
  FaultController* faults_;
  Precision precision_;
  PerfCounters counters_{};
  std::uint64_t shared_bytes_ = 0;
  std::uint64_t shared_limit_ = 0;  // 0 = unchecked
};

}  // namespace aabft::gpusim
