// Per-block floating-point context: counted, optionally faulty arithmetic.
//
// Simulated kernels perform all their floating-point work through a MathCtx.
// This gives the library three properties at once:
//   1. exact operation counts per kernel (feeding the Table I timing model),
//   2. a well-defined injection surface for the paper's Algorithm 3 faults,
//   3. a single switch between mul+add and FMA accumulation (Section IV-D),
//      which the rounding-error bound model must know about.
//
// The fast path (no armed fault) is a pointer null-check per injectable op;
// non-injectable ops only bump local counters.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/require.hpp"

#include "gpusim/fault_site.hpp"
#include "gpusim/perf_counters.hpp"

namespace aabft::gpusim {

/// Arithmetic precision of a simulated kernel. Values are carried in
/// doubles either way; kSingle rounds every operation result to binary32
/// (every float is exactly representable as a double, so this reproduces a
/// single-precision GPU kernel's rounding bit-for-bit). The bound model then
/// runs with t = 23.
enum class Precision : std::uint8_t { kDouble, kSingle };

class MathCtx {
 public:
  MathCtx(int sm_id, FaultController* faults,
          Precision precision = Precision::kDouble) noexcept
      : sm_id_(sm_id), faults_(faults), precision_(precision) {}

  [[nodiscard]] Precision precision() const noexcept { return precision_; }

  // ---- plain counted arithmetic (not an injection target) ----

  [[nodiscard]] double add(double a, double b) noexcept {
    ++counters_.adds;
    return round_result(a + b);
  }

  [[nodiscard]] double sub(double a, double b) noexcept {
    ++counters_.adds;
    return round_result(a - b);
  }

  [[nodiscard]] double mul(double a, double b) noexcept {
    ++counters_.muls;
    return round_result(a * b);
  }

  [[nodiscard]] double fma(double a, double b, double c) noexcept {
    ++counters_.fmas;
    return fma_raw(a, b, c);
  }

  [[nodiscard]] double abs(double a) noexcept {
    ++counters_.compares;
    return std::fabs(a);
  }

  [[nodiscard]] double max(double a, double b) noexcept {
    ++counters_.compares;
    return a > b ? a : b;
  }

  // ---- injectable arithmetic (paper Algorithm 3 fault sites) ----

  [[nodiscard]] double faulty_mul(double a, double b, FaultSite site,
                                  int module_id, std::int64_t k) noexcept {
    ++counters_.muls;
    double r = round_result(a * b);
    if (faults_ != nullptr)
      r = faults_->maybe_inject(site, sm_id_, module_id, k, r,
                                precision_ == Precision::kSingle);
    return r;
  }

  [[nodiscard]] double faulty_add(double a, double b, FaultSite site,
                                  int module_id, std::int64_t k) noexcept {
    ++counters_.adds;
    double r = round_result(a + b);
    if (faults_ != nullptr)
      r = faults_->maybe_inject(site, sm_id_, module_id, k, r,
                                precision_ == Precision::kSingle);
    return r;
  }

  /// FMA with injection applied to the fused result (the multiplication is
  /// not separately observable in hardware FMA, so the add site is used).
  [[nodiscard]] double faulty_fma(double a, double b, double c, FaultSite site,
                                  int module_id, std::int64_t k) noexcept {
    ++counters_.fmas;
    double r = fma_raw(a, b, c);
    if (faults_ != nullptr)
      r = faults_->maybe_inject(site, sm_id_, module_id, k, r,
                                precision_ == Precision::kSingle);
    return r;
  }

  // ---- bulk accounting for library helpers (e.g. PMaxList::offer returns
  // its comparison count; the epsilon computation is a handful of flops) ----

  void count_adds(std::uint64_t n) noexcept { counters_.adds += n; }
  void count_muls(std::uint64_t n) noexcept { counters_.muls += n; }
  void count_compares(std::uint64_t n) noexcept { counters_.compares += n; }

  // ---- logical global-memory traffic ----

  void load_bytes(std::uint64_t n) noexcept { counters_.bytes_loaded += n; }
  void store_bytes(std::uint64_t n) noexcept { counters_.bytes_stored += n; }
  void load_doubles(std::uint64_t n) noexcept { counters_.bytes_loaded += 8 * n; }
  void store_doubles(std::uint64_t n) noexcept { counters_.bytes_stored += 8 * n; }

  // ---- shared-memory budget ----

  /// Declare the block's shared-memory footprint. Kernels call this once per
  /// allocation; the launcher validates the total against the device's
  /// per-block shared-memory capacity (a real CUDA kernel with this
  /// footprint would fail to launch).
  void use_shared_doubles(std::uint64_t n) { use_shared_bytes(8 * n); }
  void use_shared_bytes(std::uint64_t n) {
    shared_bytes_ += n;
    AABFT_REQUIRE(shared_limit_ == 0 || shared_bytes_ <= shared_limit_,
                  "kernel exceeds the device's per-block shared memory");
  }
  void set_shared_limit(std::uint64_t bytes) noexcept { shared_limit_ = bytes; }
  [[nodiscard]] std::uint64_t shared_bytes() const noexcept {
    return shared_bytes_;
  }

  [[nodiscard]] int sm_id() const noexcept { return sm_id_; }
  [[nodiscard]] const PerfCounters& counters() const noexcept { return counters_; }

 private:
  /// In single-precision mode, round an (exact-in-double) op result to
  /// binary32. Adding or multiplying two float-valued doubles is exact in
  /// double, so round_result gives the correctly rounded float operation —
  /// no double rounding.
  [[nodiscard]] double round_result(double x) const noexcept {
    return precision_ == Precision::kSingle
               ? static_cast<double>(static_cast<float>(x))
               : x;
  }

  [[nodiscard]] double fma_raw(double a, double b, double c) const noexcept {
    if (precision_ == Precision::kSingle)
      return static_cast<double>(
          std::fmaf(static_cast<float>(a), static_cast<float>(b),
                    static_cast<float>(c)));
    return std::fma(a, b, c);
  }

  int sm_id_;
  FaultController* faults_;
  Precision precision_;
  PerfCounters counters_{};
  std::uint64_t shared_bytes_ = 0;
  std::uint64_t shared_limit_ = 0;  // 0 = unchecked
};

}  // namespace aabft::gpusim
