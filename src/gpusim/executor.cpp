#include "gpusim/executor.hpp"

#include "core/require.hpp"

namespace aabft::gpusim {

Executor::Executor(unsigned workers) : workers_(std::max(1u, workers)) {
  threads_.reserve(workers_);
  for (unsigned w = 0; w < workers_; ++w)
    threads_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    core::MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

Executor::TaskPtr Executor::submit_kernel(std::string name, Env env,
                                          KernelBody body,
                                          Completion on_complete) {
  AABFT_REQUIRE(env.grid.count() > 0, "empty grid");
  auto task = std::make_shared<Task>();
  task->name_ = std::move(name);
  task->env_ = env;
  task->body_ = std::move(body);
  task->total_ = env.grid.count();
  task->remaining_.store(task->total_, std::memory_order_relaxed);
  task->on_complete_ = std::move(on_complete);
  return submit(std::move(task));
}

Executor::TaskPtr Executor::submit_host(std::string name,
                                        std::function<void()> fn,
                                        Completion on_complete) {
  auto task = std::make_shared<Task>();
  task->name_ = std::move(name);
  task->host_ = std::move(fn);
  task->total_ = 1;
  task->remaining_.store(1, std::memory_order_relaxed);
  task->on_complete_ = std::move(on_complete);
  return submit(std::move(task));
}

Executor::TaskPtr Executor::submit(TaskPtr task) {
  {
    core::MutexLock lk(mu_);
    ready_.push_back(task);
  }
  // Wake the whole pool: a single launch with many blocks wants every
  // worker claiming from it.
  cv_.notify_all();
  return task;
}

void Executor::wait(const TaskPtr& task, bool help) {
  if (help) execute(task);
  if (task->finished()) return;
  core::UniqueLock lk(task->mu_);
  while (!task->finished()) task->done_cv_.wait(lk);
}

Executor::TaskPtr Executor::pick_task_locked() {
  // Drop exhausted tasks from the front of the queue as we scan; their last
  // blocks are finishing on other workers and finalize() runs there.
  while (!ready_.empty()) {
    TaskPtr& front = ready_.front();
    if (front->next_.load(std::memory_order_relaxed) < front->total_)
      return front;
    ready_.pop_front();
  }
  return nullptr;
}

void Executor::worker_loop() {
  for (;;) {
    TaskPtr task;
    {
      core::UniqueLock lk(mu_);
      for (;;) {
        task = pick_task_locked();
        if (task != nullptr || stop_) break;
        cv_.wait(lk);
      }
      if (task == nullptr) return;  // stopping and drained
    }
    if (task) execute(task);
  }
}

void Executor::execute(const TaskPtr& task) {
  PerfCounters local;
  std::size_t ran = 0;
  std::exception_ptr error;
  const std::size_t total = task->total_;
  const Env& env = task->env_;
  for (std::size_t i = task->next_.fetch_add(1, std::memory_order_relaxed);
       i < total;
       i = task->next_.fetch_add(1, std::memory_order_relaxed)) {
    // A throwing block body (hazard abort, shared-memory overflow, ...) must
    // not tear down a pool worker: capture the first exception per claiming
    // thread, keep draining the task's blocks, and let finalize() publish it.
    try {
      if (task->body_) {
        BlockCtx ctx(block_coord(env.grid, i), env.grid,
                     static_cast<int>(i % static_cast<std::size_t>(env.num_sms)),
                     env.faults, env.precision, env.shared_limit);
        ctx.hazard.init(env.hazard_mode, env.hazard_sink, &task->name_, i);
        task->body_(ctx);
        local += ctx.math.counters();
      } else {
        task->host_();
      }
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++ran;
  }
  if (ran == 0) return;
  {
    core::MutexLock lk(task->mu_);
    task->counters_ += local;
    if (error && !task->error_) task->error_ = error;
  }
  if (task->remaining_.fetch_sub(ran, std::memory_order_acq_rel) == ran)
    finalize(task);
}

void Executor::finalize(const TaskPtr& task) {
  std::exception_ptr error;
  {
    core::MutexLock lk(task->mu_);
    task->result_.kernel_name = task->name_;
    task->result_.blocks = task->total_;
    task->result_.counters = task->counters_;
    error = task->error_;
  }
  // Release kernel/host closures eagerly: async bodies own captured operand
  // copies that should not outlive the launch.
  task->body_ = nullptr;
  task->host_ = nullptr;
  // Completion hooks run with *no* task lock held: stream hooks take the
  // stream mutex (rank kDeviceStream, below kDeviceTask) and launcher hooks
  // take the log mutex, so holding mu_ here would invert the rank order.
  if (task->on_complete_) {
    task->on_complete_(task->result_, error);
    task->on_complete_ = nullptr;
  }
  {
    core::MutexLock lk(task->mu_);
    task->done_.store(true, std::memory_order_release);
  }
  task->done_cv_.notify_all();
}

namespace detail {

namespace {

void submit_op(const std::shared_ptr<StreamState>& state, Executor& executor,
               StreamState::Op op);

/// Completion hook of every stream op: run the launcher-side hook, then
/// submit the next pending op (or mark the stream idle).
void on_op_done(const std::shared_ptr<StreamState>& state, Executor& executor,
                const Executor::Completion& user_hook,
                const LaunchStats& stats, std::exception_ptr error) {
  if (user_hook) user_hook(stats, error);
  StreamState::Op next;
  bool have_next = false;
  {
    core::MutexLock lk(state->mu);
    if (state->pending.empty()) {
      state->in_flight = false;
    } else {
      next = std::move(state->pending.front());
      state->pending.pop_front();
      have_next = true;  // in_flight stays true
    }
  }
  if (have_next) {
    submit_op(state, executor, std::move(next));
  } else {
    state->idle_cv.notify_all();
  }
}

void submit_op(const std::shared_ptr<StreamState>& state, Executor& executor,
               StreamState::Op op) {
  auto hook = std::move(op.on_complete);
  auto completion = [state, &executor, hook = std::move(hook)](
                        const LaunchStats& stats, std::exception_ptr error) {
    on_op_done(state, executor, hook, stats, error);
  };
  if (op.is_kernel) {
    executor.submit_kernel(std::move(op.name), op.env, std::move(op.body),
                           std::move(completion));
  } else {
    executor.submit_host(std::move(op.name), std::move(op.host),
                         std::move(completion));
  }
}

}  // namespace

void stream_enqueue(const std::shared_ptr<StreamState>& state,
                    Executor& executor, StreamState::Op op) {
  {
    core::MutexLock lk(state->mu);
    if (state->in_flight) {
      state->pending.push_back(std::move(op));
      return;
    }
    state->in_flight = true;
  }
  submit_op(state, executor, std::move(op));
}

void stream_synchronize(const std::shared_ptr<StreamState>& state) {
  core::UniqueLock lk(state->mu);
  while (state->in_flight || !state->pending.empty()) state->idle_cv.wait(lk);
}

}  // namespace detail

}  // namespace aabft::gpusim
