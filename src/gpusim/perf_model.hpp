// Analytic Kepler timing model.
//
// Table I of the paper reports GFLOPS measured on a Tesla K20C. Without the
// hardware, absolute numbers are unreproducible; what can be reproduced is
// the *shape* of the comparison, because it is determined by how much work of
// which kind each scheme performs. The simulator counts exactly that work
// (flops, comparisons and logical memory traffic per kernel launch), and this
// model prices the counts with a roofline-style estimate:
//
//   t_kernel = launch_overhead + max( ops / (peak * eff_c), bytes / (bw * eff_m) )
//
// with per-kernel-class efficiencies:
//
//   * GEMM kernels approach a large fraction of peak, but only once the
//     matrix is big enough to fill the machine. The saturation is modelled
//     in the problem extent n_eff = cbrt(flops/2): calibrated against
//     cuBLAS-like behaviour (~43 % of peak at n = 512, ~87 % at n = 8192,
//     matching the paper's 1048 GFLOPS unprotected peak).
//   * Encode/check/vote kernels are bandwidth-bound streaming passes whose
//     scalar bookkeeping (checksum adds, p-max scans, epsilon evaluation)
//     runs at a tiny fraction of peak — BS x 1 thread blocks with serialized
//     scans cannot exploit the wide SIMD datapath.
//   * Norm / reduction kernels ("only a small fraction of the available GPU
//     threads", Section VI-A) are the slowest class: one thread per vector
//     with uncoalesced strided accesses.
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"
#include "gpusim/perf_counters.hpp"

namespace aabft::gpusim {

/// Utilisation profile of a kernel class on the modelled device.
struct EfficiencyProfile {
  /// Fraction of peak DP flop rate the kernel class reaches asymptotically.
  double compute_fraction = 0.9;
  /// Fraction of peak memory bandwidth the kernel's access pattern achieves.
  double mem_efficiency = 0.8;
  /// If positive: saturation half-point in effective matrix extent
  /// n_eff = cbrt(flops / 2) — the GEMM fill-the-machine curve. Zero
  /// disables saturation (fixed compute_fraction).
  double half_extent = 0.0;
};

/// Dense register-blocked GEMM (Algorithm 3 / cuBLAS-like). The counted
/// loads are the *staged* tile loads (arithmetic intensity ~4 flops/byte for
/// 32x32 tiles); on the device most of them hit L2/texture cache, so the
/// effective bandwidth for this class exceeds DRAM — without it, the model
/// would cap DGEMM at ~660 GFLOPS instead of the measured ~1050.
[[nodiscard]] inline EfficiencyProfile gemm_profile() {
  return {.compute_fraction = 0.93, .mem_efficiency = 2.0, .half_extent = 600.0};
}

/// Streaming passes: checksum encode, check, TMR vote.
[[nodiscard]] inline EfficiencyProfile streaming_profile() {
  return {.compute_fraction = 0.01, .mem_efficiency = 0.5, .half_extent = 0.0};
}

/// Low-utilisation reductions: SEA's row/column norms, the p-max global
/// reduction.
[[nodiscard]] inline EfficiencyProfile reduction_profile() {
  return {.compute_fraction = 0.002, .mem_efficiency = 0.04, .half_extent = 0.0};
}

/// Estimated execution time in seconds of one kernel launch. Comparisons are
/// charged like flops (they occupy the same issue slots).
[[nodiscard]] double kernel_seconds(const DeviceSpec& device,
                                    const PerfCounters& counters,
                                    const EfficiencyProfile& profile);

/// GFLOPS of `useful_flops` worth of payload work completed in `seconds`.
[[nodiscard]] double gflops(std::uint64_t useful_flops, double seconds);

}  // namespace aabft::gpusim
