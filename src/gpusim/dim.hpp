// CUDA-like 3-component launch dimensions for the SIMT execution model.
#pragma once

#include <cstddef>

namespace aabft::gpusim {

/// Grid/block extent, mirroring CUDA's dim3.
struct Dim3 {
  std::size_t x = 1;
  std::size_t y = 1;
  std::size_t z = 1;

  [[nodiscard]] constexpr std::size_t count() const noexcept { return x * y * z; }
  [[nodiscard]] constexpr bool operator==(const Dim3&) const noexcept = default;
};

/// Coordinates of one block within a grid, plus its linearised index.
struct BlockCoord {
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t z = 0;
  std::size_t linear = 0;
};

/// Enumerate block coordinates in CUDA's launch order (x fastest).
[[nodiscard]] constexpr BlockCoord block_coord(const Dim3& grid,
                                               std::size_t linear) noexcept {
  BlockCoord c;
  c.linear = linear;
  c.x = linear % grid.x;
  c.y = (linear / grid.x) % grid.y;
  c.z = linear / (grid.x * grid.y);
  return c;
}

}  // namespace aabft::gpusim
