// Dynamic hazard analysis for simulated kernels — racecheck / synccheck /
// memcheck for the block-synchronous SIMT model.
//
// Kernels in this library are written as loop nests over *logical* thread
// ids, with barriers implicit between loop nests (kernel.hpp). That style
// can silently encode bugs that would corrupt results on a real GPU:
//
//   racecheck — two distinct logical threads touch the same shared-memory
//               cell in the same barrier epoch, at least one writing
//               (write/write, write→read, read→write);
//   synccheck — a barrier reached by only a subset of the block's threads
//               (divergent __syncthreads);
//   memcheck  — an access outside a shared array's bounds, or a block whose
//               shared-memory footprint exceeds DeviceSpec::
//               shared_mem_per_block.
//
// The analysis is opt-in per launcher (Launcher::set_hazard_mode) and
// snapshotted per launch like the fault controller and precision, so async
// launches keep the mode they were enqueued under. Three modes:
//
//   kOff    — zero tracking. SharedArray<T> degenerates to a plain buffer;
//             every note_*/sync call is a null-check. Results are
//             bit-identical to a build without the analyzer.
//   kRecord — shadow cells record (writer thread, epoch) per shared cell;
//             hazards append to the launcher's HazardSink and execution
//             continues (cuda-memcheck --tool racecheck style).
//   kAbort  — first hazard throws HazardError out of the launch
//             (halt_on_error).
//
// Epoch model: HazardCtx::sync_threads() is the analyzer's __syncthreads.
// Accesses carry the logical thread id that would perform them on the GPU;
// two accesses conflict only if they land in the same epoch. Divergent
// barriers are modelled with arrive(tid): if any thread arrives explicitly,
// the barrier checks that *all* block threads arrived; a sync_threads()
// with no explicit arrivals is a full-participation barrier (the implicit
// barrier between loop nests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/require.hpp"
#include "core/sync.hpp"
#include "core/thread_annotations.hpp"

namespace aabft::gpusim {

enum class HazardMode : std::uint8_t { kOff, kRecord, kAbort };

enum class HazardKind : std::uint8_t {
  kRaceWriteWrite,   ///< racecheck: two writers, same cell, same epoch
  kRaceWriteRead,    ///< racecheck: read of a cell written this epoch
  kRaceReadWrite,    ///< racecheck: write of a cell read this epoch
  kSyncDivergence,   ///< synccheck: barrier missed by >= 1 thread
  kOutOfBounds,      ///< memcheck: access outside a shared array
  kSharedOverflow,   ///< memcheck: block exceeds shared_mem_per_block
};

[[nodiscard]] const char* to_string(HazardKind kind) noexcept;

/// One detected hazard. Field meaning by kind:
///   races          — array/cell; first_thread = earlier accessor,
///                    second_thread = conflicting accessor.
///   sync divergence— cell = number of threads that arrived,
///                    first_thread = first missing tid,
///                    second_thread = block thread count.
///   out of bounds  — array; cell = offending index,
///                    second_thread = accessing tid.
///   shared overflow— array; cell = element count of the allocation.
struct HazardRecord {
  HazardKind kind = HazardKind::kRaceWriteWrite;
  std::string kernel;
  std::size_t block = 0;   ///< linear block index within the grid
  std::string array;
  std::size_t cell = 0;
  int first_thread = -1;
  int second_thread = -1;
  std::uint64_t epoch = 0;

  /// Human-readable one-line report ("gemm block 3: write/read race on
  /// sm_a[17] between threads 2 and 5 (epoch 4)").
  [[nodiscard]] std::string describe() const;
};

/// Thrown by kAbort mode at the first hazard.
class HazardError : public std::runtime_error {
 public:
  explicit HazardError(HazardRecord record);
  [[nodiscard]] const HazardRecord& record() const noexcept { return record_; }

 private:
  HazardRecord record_;
};

/// Thread-safe hazard collector, owned by the Launcher (blocks of one launch
/// execute concurrently on the worker pool). Bounded: pathological kernels
/// cannot grow the sink without limit; the drop count is reported instead.
class HazardSink {
 public:
  static constexpr std::size_t kMaxRecords = 4096;

  void report(const HazardRecord& record) AABFT_EXCLUDES(mu_);
  [[nodiscard]] std::vector<HazardRecord> records() const AABFT_EXCLUDES(mu_);
  /// Total reported, including dropped.
  [[nodiscard]] std::size_t total() const AABFT_EXCLUDES(mu_);
  [[nodiscard]] std::size_t dropped() const AABFT_EXCLUDES(mu_);
  void clear() AABFT_EXCLUDES(mu_);

 private:
  mutable core::Mutex mu_{core::LockRank::kDeviceHazard, "device.hazard"};
  std::vector<HazardRecord> records_ AABFT_GUARDED_BY(mu_);
  std::size_t total_ AABFT_GUARDED_BY(mu_) = 0;
};

/// Per-block analysis state, embedded in BlockCtx. Default-constructed it is
/// disabled and every member function is a cheap no-op.
class HazardCtx {
 public:
  HazardCtx() = default;

  /// Called by the launch machinery; kernel/sink must outlive the block.
  void init(HazardMode mode, HazardSink* sink, const std::string* kernel,
            std::size_t block_linear) noexcept {
    mode_ = sink == nullptr ? HazardMode::kOff : mode;
    sink_ = sink;
    kernel_ = kernel;
    block_ = block_linear;
  }

  [[nodiscard]] bool enabled() const noexcept {
    return mode_ != HazardMode::kOff;
  }
  [[nodiscard]] HazardMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Declare the number of logical threads of this block (the CUDA block
  /// size). Required for synccheck; races and memcheck work without it.
  void set_thread_count(int threads) {
    if (!enabled()) return;
    AABFT_REQUIRE(threads > 0, "block thread count must be positive");
    thread_count_ = threads;
    arrived_.assign(static_cast<std::size_t>(threads), 0);
    arrivals_ = 0;
    explicit_arrivals_ = false;
  }
  [[nodiscard]] int thread_count() const noexcept { return thread_count_; }

  /// Mark logical thread `tid` as having reached the next barrier. Used to
  /// model *divergent* barrier participation; straight-line kernels skip it.
  void arrive(int tid) {
    if (!enabled()) return;
    explicit_arrivals_ = true;
    if (tid < 0 || tid >= thread_count_) {
      report(HazardKind::kSyncDivergence, "", arrivals_, tid, thread_count_);
      return;
    }
    if (arrived_[static_cast<std::size_t>(tid)] == 0) {
      arrived_[static_cast<std::size_t>(tid)] = 1;
      ++arrivals_;
    }
  }

  /// The analyzer's __syncthreads: verifies participation (when any thread
  /// arrived explicitly) and advances the epoch, retiring all prior
  /// accesses from race candidacy.
  void sync_threads() {
    if (!enabled()) return;
    if (explicit_arrivals_ && thread_count_ > 0 &&
        arrivals_ != static_cast<std::size_t>(thread_count_)) {
      int missing = -1;
      for (std::size_t t = 0; t < arrived_.size(); ++t) {
        if (arrived_[t] == 0) {
          missing = static_cast<int>(t);
          break;
        }
      }
      report(HazardKind::kSyncDivergence, "", arrivals_, missing,
             thread_count_);
    }
    if (!arrived_.empty()) arrived_.assign(arrived_.size(), 0);
    arrivals_ = 0;
    explicit_arrivals_ = false;
    ++epoch_;
  }

  /// Build, record and (in kAbort mode) throw a hazard.
  void report(HazardKind kind, const char* array, std::size_t cell, int first,
              int second);

 private:
  HazardMode mode_ = HazardMode::kOff;
  HazardSink* sink_ = nullptr;
  const std::string* kernel_ = nullptr;
  std::size_t block_ = 0;
  std::uint64_t epoch_ = 1;  // 0 is reserved for "never accessed"
  int thread_count_ = 0;
  std::vector<char> arrived_;
  std::size_t arrivals_ = 0;
  bool explicit_arrivals_ = false;
};

namespace detail {

/// Shadow state of one shared array: per-cell last writer/readers by epoch.
/// Allocated only when the owning block runs with hazards enabled.
class ShadowState {
 public:
  ShadowState(HazardCtx& hz, const char* label, std::size_t size)
      : hz_(hz), label_(label), cells_(size) {}

  void note_write(int tid, std::size_t index) {
    if (index >= cells_.size()) {
      report_oob(tid, index);
      return;
    }
    Cell& c = cells_[index];
    const std::uint64_t e = hz_.epoch();
    if (c.write_epoch == e && c.writer != tid &&
        (c.reported & kReportedWW) == 0) {
      c.reported |= kReportedWW;
      hz_.report(HazardKind::kRaceWriteWrite, label_, index, c.writer, tid);
    }
    if (c.read_epoch == e && (c.multi_reader || c.reader != tid) &&
        (c.reported & kReportedRW) == 0) {
      c.reported |= kReportedRW;
      hz_.report(HazardKind::kRaceReadWrite, label_, index, c.reader, tid);
    }
    c.writer = tid;
    c.write_epoch = e;
  }

  void note_read(int tid, std::size_t index) {
    if (index >= cells_.size()) {
      report_oob(tid, index);
      return;
    }
    Cell& c = cells_[index];
    const std::uint64_t e = hz_.epoch();
    if (c.write_epoch == e && c.writer != tid &&
        (c.reported & kReportedWR) == 0) {
      c.reported |= kReportedWR;
      hz_.report(HazardKind::kRaceWriteRead, label_, index, c.writer, tid);
    }
    if (c.read_epoch != e) {
      c.read_epoch = e;
      c.reader = tid;
      c.multi_reader = false;
    } else if (c.reader != tid) {
      c.multi_reader = true;
    }
  }

 private:
  // Per-cell dedup: each (cell, conflict flavour) reports once per block, so
  // a racing inner loop cannot flood the sink.
  static constexpr std::uint8_t kReportedWW = 1U << 0;
  static constexpr std::uint8_t kReportedWR = 1U << 1;
  static constexpr std::uint8_t kReportedRW = 1U << 2;
  static constexpr std::size_t kMaxOobReports = 16;

  struct Cell {
    int writer = -1;
    int reader = -1;
    std::uint64_t write_epoch = 0;  // 0 = never
    std::uint64_t read_epoch = 0;
    bool multi_reader = false;
    std::uint8_t reported = 0;
  };

  void report_oob(int tid, std::size_t index) {
    if (oob_reports_ >= kMaxOobReports) return;
    ++oob_reports_;
    hz_.report(HazardKind::kOutOfBounds, label_, index, -1, tid);
  }

  HazardCtx& hz_;
  const char* label_;
  std::vector<Cell> cells_;
  std::size_t oob_reports_ = 0;
};

}  // namespace detail

/// Shared-memory array of one simulated block. Replaces the plain
/// std::vector tiles of the block-synchronous kernels:
///
///   SharedArray<double> sm_a(blk, bm * bk, "sm_a");
///
/// declares the footprint against the device's shared-memory budget and —
/// only when the launch runs with hazards enabled — allocates shadow cells.
///
/// Access API, mirroring how the CUDA kernel would touch the tile:
///   data()/operator[]      raw, untracked — the fenced fast paths keep
///                          their __restrict pointer loops;
///   note_write/note_read   attribute an access to a logical thread id
///                          (no-ops when the analyzer is off);
///   store/load             bounds-checked tracked element access, for
///                          analyzer-focused kernels and seeded-bug tests.
template <typename T>
class SharedArray {
 public:
  /// `blk` is a BlockCtx (any context exposing .math and .hazard). `label`
  /// must be a string literal (kept by pointer for hazard reports).
  template <typename Ctx>
  SharedArray(Ctx& blk, std::size_t size, const char* label)
      : data_(size), label_(label) {
    const std::uint64_t bytes = static_cast<std::uint64_t>(sizeof(T)) * size;
    if (blk.hazard.enabled()) {
      shadow_ = std::make_unique<detail::ShadowState>(blk.hazard, label, size);
      // Under analysis, an oversized block is *reported* (memcheck) instead
      // of thrown so record mode can keep executing the kernel body.
      blk.math.use_shared_bytes_unchecked(bytes);
      const std::uint64_t limit = blk.math.shared_limit();
      if (limit != 0 && blk.math.shared_bytes() > limit)
        blk.hazard.report(HazardKind::kSharedOverflow, label, size, -1, -1);
    } else {
      blk.math.use_shared_bytes(bytes);
    }
  }

  SharedArray(const SharedArray&) = delete;
  SharedArray& operator=(const SharedArray&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  void note_write(int tid, std::size_t i) {
    if (shadow_) shadow_->note_write(tid, i);
  }
  void note_read(int tid, std::size_t i) {
    if (shadow_) shadow_->note_read(tid, i);
  }

  /// Tracked element write; out-of-bounds indices are reported (memcheck)
  /// and dropped rather than corrupting the host heap.
  void store(int tid, std::size_t i, T value) {
    note_write(tid, i);
    if (i < data_.size()) data_[i] = value;
  }

  /// Tracked element read; out-of-bounds indices are reported and yield T{}.
  [[nodiscard]] T load(int tid, std::size_t i) {
    note_read(tid, i);
    return i < data_.size() ? data_[i] : T{};
  }

 private:
  std::vector<T> data_;
  const char* label_;
  std::unique_ptr<detail::ShadowState> shadow_;
};

}  // namespace aabft::gpusim
