// Instruction-level fault injection for simulated kernels (paper Alg. 3).
//
// The paper extends its GEMM kernel so that a fault-injection routine can
// flip bits in the output of a single floating-point instruction, selected
// by: the streaming multiprocessor executing it, the operation kind (inner-
// loop multiplication, inner-loop addition, or the final merge addition),
// the module id (which of the RX*RY per-thread result slots), and the point
// in time `kInjection`. FaultController reproduces exactly that interface.
//
// The paper's campaigns inject one fault per multiplication; as an
// extension, the controller can also be armed with several faults at once
// (each one-shot) to study multi-error behaviour of the partitioned scheme.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <string>

#include "core/require.hpp"

namespace aabft::gpusim {

/// The three floating-point operation classes Algorithm 3 can target.
enum class FaultSite : std::uint8_t {
  kInnerMul,   ///< rA * rB inside the K loop
  kInnerAdd,   ///< accumulation inside the K loop
  kFinalAdd,   ///< merge of per-thread accumulators into C
};

[[nodiscard]] inline std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kInnerMul: return "inner-loop multiplication";
    case FaultSite::kInnerAdd: return "inner-loop addition";
    case FaultSite::kFinalAdd: return "final sum addition";
  }
  return "?";
}

/// Static description of one fault to inject.
struct FaultConfig {
  FaultSite site = FaultSite::kInnerMul;
  int sm_id = 0;                  ///< virtual SM that must execute the op
  int module_id = 0;              ///< which RX*RY result slot within a thread
  std::int64_t k_injection = 0;   ///< sequence index (K-loop step) to fire at
  std::uint64_t error_vec = 0;    ///< XOR mask applied to the op result
};

/// Arms one or more faults; each fires at most once. Thread-safe: when
/// several blocks race on the same (site, sm, module, k) coordinates,
/// exactly one injection happens per armed fault — matching the paper's
/// single-fault-per-multiplication experiments (and extending them to
/// multi-fault campaigns). `armed_`/`count_` are atomics so that worker
/// threads may call maybe_inject()/may_fire() concurrently with a host-side
/// disarm(); re-arming still requires that no kernel is in flight (the
/// configs themselves are not seqlocked).
class FaultController {
 public:
  static constexpr std::size_t kMaxFaults = 8;

  FaultController() = default;

  /// Arm a single fault (the paper's mode).
  void arm(const FaultConfig& config) { arm_many({&config, 1}); }

  /// Arm up to kMaxFaults simultaneous one-shot faults.
  void arm_many(std::span<const FaultConfig> configs) {
    AABFT_REQUIRE(configs.size() >= 1 && configs.size() <= kMaxFaults,
                  "between 1 and kMaxFaults faults can be armed");
    for (std::size_t i = 0; i < configs.size(); ++i) {
      configs_[i] = configs[i];
      fired_[i].store(false, std::memory_order_relaxed);
    }
    count_.store(configs.size(), std::memory_order_release);
    armed_.store(true, std::memory_order_release);
  }

  void disarm() noexcept { armed_.store(false, std::memory_order_release); }

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// Whether any armed fault has fired.
  [[nodiscard]] bool fired() const noexcept { return fired_count() > 0; }

  [[nodiscard]] std::size_t fired_count() const noexcept {
    const std::size_t count = count_.load(std::memory_order_acquire);
    std::size_t n = 0;
    for (std::size_t i = 0; i < count; ++i)
      if (fired_[i].load(std::memory_order_relaxed)) ++n;
    return n;
  }

  [[nodiscard]] std::size_t armed_count() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Fault fence: can any armed-and-unfired fault fire inside the region
  /// [site_lo..site_hi] x {sm_id} x [module_lo..module_hi] x [k_lo..k_hi]?
  /// Kernels query this once per block / K-panel / module row and take a raw
  /// (uninstrumented, bulk-counted) fast path on a negative answer. A
  /// negative answer is stable for the rest of the launch: every armed fault
  /// either misses the region on static coordinates (which cannot change) or
  /// has already fired (one-shot, can never refire).
  [[nodiscard]] bool may_fire(FaultSite site_lo, FaultSite site_hi, int sm_id,
                              int module_lo, int module_hi, std::int64_t k_lo,
                              std::int64_t k_hi) const noexcept {
    if (!armed_.load(std::memory_order_acquire)) return false;
    const std::size_t count = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      if (fired_[i].load(std::memory_order_acquire)) continue;
      const FaultConfig& cfg = configs_[i];
      if (cfg.site < site_lo || cfg.site > site_hi) continue;
      if (cfg.sm_id != sm_id) continue;
      if (cfg.module_id < module_lo || cfg.module_id > module_hi) continue;
      if (cfg.k_injection < k_lo || cfg.k_injection > k_hi) continue;
      return true;
    }
    return false;
  }

  /// First armed fault (the paper's single-fault accessors).
  [[nodiscard]] const FaultConfig& config() const noexcept { return configs_[0]; }

  /// Value observed at the moment of injection (pre-XOR) of fault `i`, for
  /// experiment bookkeeping. Only meaningful once that fault fired.
  [[nodiscard]] double original_value(std::size_t i = 0) const noexcept {
    return original_values_[i];
  }
  [[nodiscard]] double faulty_value(std::size_t i = 0) const noexcept {
    return faulty_values_[i];
  }

  /// Called by MathCtx for every injectable operation. Returns the possibly
  /// corrupted value. When several armed faults match the same instruction,
  /// their masks compose (XOR is associative). With `single_precision` the
  /// low 32 bits of error_vec are XORed into the value's *binary32* pattern
  /// (the value is float-representable in that mode).
  [[nodiscard]] double maybe_inject(FaultSite site, int sm_id, int module_id,
                                    std::int64_t k, double value,
                                    bool single_precision = false) noexcept {
    if (!armed_.load(std::memory_order_acquire)) return value;
    const std::size_t count = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < count; ++i) {
      const FaultConfig& cfg = configs_[i];
      if (site != cfg.site || sm_id != cfg.sm_id ||
          module_id != cfg.module_id || k != cfg.k_injection)
        continue;
      bool expected = false;
      if (!fired_[i].compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel))
        continue;  // this fault was already consumed
      original_values_[i] = value;
      if (single_precision) {
        const std::uint32_t bits =
            std::bit_cast<std::uint32_t>(static_cast<float>(value)) ^
            static_cast<std::uint32_t>(cfg.error_vec);
        value = static_cast<double>(std::bit_cast<float>(bits));
      } else {
        const std::uint64_t bits =
            std::bit_cast<std::uint64_t>(value) ^ cfg.error_vec;
        value = std::bit_cast<double>(bits);
      }
      faulty_values_[i] = value;
    }
    return value;
  }

 private:
  std::array<FaultConfig, kMaxFaults> configs_{};
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> armed_{false};
  std::array<std::atomic<bool>, kMaxFaults> fired_{};
  std::array<double, kMaxFaults> original_values_{};
  std::array<double, kMaxFaults> faulty_values_{};
};

// ---- per-thread fault-controller override ----------------------------------
//
// A launcher-attached controller is global to every launch, which is wrong
// for a *serving* workload: concurrent requests sharing one Launcher each
// need their own fault lifecycle (arm -> protected multiply -> read fired
// counts -> disarm) without racing on set_fault_controller(). The override
// below is consulted by the Launcher at launch-initiation time and takes
// precedence over the attached controller for work started by this thread:
// synchronous launch() calls, and async enqueues (which snapshot it into
// their launch environment, like every other launch parameter). Worker
// threads executing blocks of such a launch see the snapshotted controller,
// not their own thread's override.

namespace detail {
inline thread_local FaultController* t_thread_faults = nullptr;
}  // namespace detail

[[nodiscard]] inline FaultController* thread_fault_controller() noexcept {
  return detail::t_thread_faults;
}

/// RAII scope installing `faults` as this thread's fault-controller override
/// (with nullptr the launcher-attached controller applies again). Restores
/// the previous override on destruction, so scopes nest.
class ScopedFaultController {
 public:
  explicit ScopedFaultController(FaultController* faults) noexcept
      : previous_(detail::t_thread_faults) {
    detail::t_thread_faults = faults;
  }
  ~ScopedFaultController() { detail::t_thread_faults = previous_; }
  ScopedFaultController(const ScopedFaultController&) = delete;
  ScopedFaultController& operator=(const ScopedFaultController&) = delete;

 private:
  FaultController* previous_;
};

}  // namespace aabft::gpusim
