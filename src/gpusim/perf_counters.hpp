// Operation and memory-traffic accounting for simulated kernels.
//
// Every floating-point operation a kernel performs goes through MathCtx
// (see math_ctx.hpp) and is tallied here; kernels additionally self-report
// their logical global-memory traffic. The analytic performance model turns
// these exact counts into K20C time estimates for Table I.
#pragma once

#include <cstdint>

namespace aabft::gpusim {

struct PerfCounters {
  std::uint64_t adds = 0;        ///< floating-point additions/subtractions
  std::uint64_t muls = 0;        ///< floating-point multiplications
  std::uint64_t fmas = 0;        ///< fused multiply-adds (2 flops each)
  std::uint64_t compares = 0;    ///< comparisons / abs / max operations
  std::uint64_t bytes_loaded = 0;   ///< logical global-memory reads
  std::uint64_t bytes_stored = 0;   ///< logical global-memory writes

  constexpr PerfCounters& operator+=(const PerfCounters& o) noexcept {
    adds += o.adds;
    muls += o.muls;
    fmas += o.fmas;
    compares += o.compares;
    bytes_loaded += o.bytes_loaded;
    bytes_stored += o.bytes_stored;
    return *this;
  }

  /// Total flops with FMA counted as two.
  [[nodiscard]] constexpr std::uint64_t flops() const noexcept {
    return adds + muls + 2 * fmas;
  }

  [[nodiscard]] constexpr std::uint64_t bytes() const noexcept {
    return bytes_loaded + bytes_stored;
  }
};

}  // namespace aabft::gpusim
