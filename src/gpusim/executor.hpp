// Persistent host execution engine for the SIMT model.
//
// The Executor owns a fixed pool of worker threads (created once, condition-
// variable driven) that execute kernel *tasks*: a task is one kernel launch
// over a grid of blocks, and workers claim blocks through the task's atomic
// counter exactly as the per-launch thread pool used to. Keeping the threads
// alive across launches removes the thread-spawn/join cost from every kernel
// launch — the O(n^2) checksum kernels of a protected multiply must stay
// cheap relative to the O(n^3) product, and five-plus spawns per multiply
// broke that.
//
// Tasks come in two flavours:
//   - kernel tasks: run `body(BlockCtx&)` once per block, aggregate
//     PerfCounters across blocks (uint64 sums, so the aggregate is
//     bit-identical for any worker count or schedule);
//   - host tasks: run one ordinary host function (used by streams to chain
//     host-side pipeline stages between kernel launches).
//
// Deadlock freedom: a thread that waits on a task first *helps* execute it
// (claims blocks itself). Host tasks running on pool workers may therefore
// perform nested synchronous launches — the nested launch is drained by its
// own caller even when every other worker is busy.
//
// Streams (CUDA semantics): work enqueued on one stream executes in FIFO
// order; work on different streams executes concurrently. A stream submits
// only its head operation to the executor; the completion hook submits the
// next. `Stream::synchronize()` blocks until the stream is idle.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sync.hpp"
#include "core/thread_annotations.hpp"
#include "gpusim/dim.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/hazard.hpp"
#include "gpusim/math_ctx.hpp"
#include "gpusim/perf_counters.hpp"

namespace aabft::gpusim {

/// Everything a kernel body can see about the block it runs as.
struct BlockCtx {
  BlockCoord block;      ///< coordinates within the grid
  Dim3 grid;             ///< grid dimensions
  MathCtx math;          ///< counted / injectable arithmetic
  HazardCtx hazard;      ///< shared-memory hazard analysis (off by default)

  BlockCtx(BlockCoord b, Dim3 g, int sm_id, FaultController* faults,
           Precision precision, std::uint64_t shared_limit) noexcept
      : block(b), grid(g), math(sm_id, faults, precision) {
    math.set_shared_limit(shared_limit);
  }
};

/// Aggregated result of one kernel launch.
struct LaunchStats {
  std::string kernel_name;
  std::size_t blocks = 0;
  PerfCounters counters;
};

class Executor {
 public:
  using KernelBody = std::function<void(BlockCtx&)>;
  /// Runs once per task, on the worker that finishes the last block. The
  /// exception_ptr carries the first exception a block body (or host
  /// function) threw — null for a clean run.
  using Completion = std::function<void(const LaunchStats&, std::exception_ptr)>;

  /// Launch environment, snapshotted when the task is created (async work
  /// keeps the fault controller / precision / hazard mode that were current
  /// at enqueue time, regardless of later changes on the launcher).
  struct Env {
    Dim3 grid;
    int num_sms = 1;
    std::uint64_t shared_limit = 0;
    FaultController* faults = nullptr;
    Precision precision = Precision::kDouble;
    HazardMode hazard_mode = HazardMode::kOff;
    HazardSink* hazard_sink = nullptr;
  };

  /// One unit of schedulable work. Refcounted: the executor, streams and
  /// waiting callers all hold shares.
  class Task {
   public:
    [[nodiscard]] bool finished() const noexcept {
      return done_.load(std::memory_order_acquire);
    }
    /// Aggregated launch statistics; valid once finished().
    [[nodiscard]] const LaunchStats& stats() const noexcept { return result_; }
    /// First exception thrown by a block body, or null; valid once
    /// finished(). Synchronous launches rethrow it to the caller.
    [[nodiscard]] std::exception_ptr error() const AABFT_EXCLUDES(mu_) {
      core::MutexLock lk(mu_);
      return error_;
    }

   private:
    friend class Executor;
    std::string name_;
    Env env_;
    KernelBody body_;              // kernel flavour
    std::function<void()> host_;   // host flavour (body_ empty)
    std::size_t total_ = 0;        // blocks (1 for host tasks)
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> remaining_{0};
    mutable core::Mutex mu_{core::LockRank::kDeviceTask, "device.task"};
    core::CondVar done_cv_;
    PerfCounters counters_ AABFT_GUARDED_BY(mu_);
    std::exception_ptr error_ AABFT_GUARDED_BY(mu_);
    /// Written once, by the worker that finishes the last block, before done_
    /// is released; readers go through finished() first. Publication is the
    /// done_ release/acquire pair, not mu_ — deliberately unguarded.
    LaunchStats result_;
    std::atomic<bool> done_{false};
    Completion on_complete_;
  };
  using TaskPtr = std::shared_ptr<Task>;

  /// Spawns `workers` persistent threads (>= 1).
  explicit Executor(unsigned workers);
  ~Executor();  // drains remaining tasks, then joins the pool

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] unsigned workers() const noexcept { return workers_; }

  /// Enqueue a kernel launch. `on_complete` runs exactly once, on the worker
  /// that finishes the last block, before waiters are released.
  TaskPtr submit_kernel(std::string name, Env env, KernelBody body,
                        Completion on_complete = {});

  /// Enqueue one host function as a task (streams use this to interleave
  /// host pipeline stages with kernel launches).
  TaskPtr submit_host(std::string name, std::function<void()> fn,
                      Completion on_complete = {});

  /// Block until `task` finished. With `help` the calling thread claims and
  /// executes blocks of the task first — required for nested waits from pool
  /// workers (see deadlock note above), and what makes small synchronous
  /// launches fast (the caller usually drains them without a context switch).
  void wait(const TaskPtr& task, bool help);

 private:
  void worker_loop();
  void execute(const TaskPtr& task);
  TaskPtr pick_task_locked() AABFT_REQUIRES(mu_);
  TaskPtr submit(TaskPtr task);
  void finalize(const TaskPtr& task);

  unsigned workers_;
  std::vector<std::thread> threads_;
  core::Mutex mu_{core::LockRank::kDeviceExecutor, "device.executor"};
  core::CondVar cv_;
  std::deque<TaskPtr> ready_ AABFT_GUARDED_BY(mu_);
  bool stop_ AABFT_GUARDED_BY(mu_) = false;
};

namespace detail {

/// Shared state of one stream: the FIFO of not-yet-submitted operations and
/// the in-flight flag. Kept alive by completion callbacks, so dropping the
/// Stream handle while work is pending is safe.
struct StreamState {
  struct Op {
    bool is_kernel = false;
    std::string name;
    Executor::Env env;
    Executor::KernelBody body;
    std::function<void()> host;
    Executor::Completion on_complete;  // launcher-side hook (log append)
  };

  core::Mutex mu{core::LockRank::kDeviceStream, "device.stream"};
  std::deque<Op> pending AABFT_GUARDED_BY(mu);
  bool in_flight AABFT_GUARDED_BY(mu) = false;
  core::CondVar idle_cv;
};

/// Enqueue `op` respecting stream FIFO order.
void stream_enqueue(const std::shared_ptr<StreamState>& state,
                    Executor& executor, StreamState::Op op);

/// Block until the stream has no pending or in-flight work.
void stream_synchronize(const std::shared_ptr<StreamState>& state);

}  // namespace detail

/// Handle to an in-order execution queue. Obtain from Launcher::create_stream.
/// Copyable (copies refer to the same queue); destroying the last handle does
/// not cancel pending work.
class Stream {
 public:
  Stream() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// Wait until every operation enqueued so far has completed.
  void synchronize() {
    if (state_) detail::stream_synchronize(state_);
  }

 private:
  friend class Launcher;
  explicit Stream(std::shared_ptr<detail::StreamState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::StreamState> state_;
};

}  // namespace aabft::gpusim
