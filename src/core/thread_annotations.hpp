// Clang Thread Safety Analysis macros (DESIGN.md §11).
//
// These wrap the capability attributes understood by Clang's -Wthread-safety
// static analysis so that locking contracts are stated in the code and
// checked at compile time: which mutex guards which field (AABFT_GUARDED_BY),
// which functions must/must-not be called with a lock held (AABFT_REQUIRES /
// AABFT_EXCLUDES), and which functions acquire or release a capability
// (AABFT_ACQUIRE / AABFT_RELEASE). On compilers without the attributes (GCC,
// MSVC) every macro expands to nothing, so annotations cost nothing outside
// the dedicated Clang CI lane.
//
// The annotated primitives that use these live in core/sync.hpp
// (core::Mutex / core::MutexLock / core::UniqueLock / core::CondVar); shared
// state throughout src/serve, src/fleet and src/gpusim is declared with
// AABFT_GUARDED_BY so a new field or a forgotten lock is a compile error in
// the thread-safety lane, not a TSan flake.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AABFT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AABFT_THREAD_ANNOTATION
#define AABFT_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a capability ("mutex"): lockable state the analysis
/// tracks through the acquire/release annotations below.
#define AABFT_CAPABILITY(x) AABFT_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability (core::MutexLock, core::UniqueLock).
#define AABFT_SCOPED_CAPABILITY AABFT_THREAD_ANNOTATION(scoped_lockable)

/// A data member readable/writable only while holding `x`.
#define AABFT_GUARDED_BY(x) AABFT_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is guarded by `x`.
#define AABFT_PT_GUARDED_BY(x) AABFT_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities
/// (they are not acquired or released by the call).
#define AABFT_REQUIRES(...) \
  AABFT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function may only be called while *not* holding the listed
/// capabilities (it acquires them internally).
#define AABFT_EXCLUDES(...) AABFT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the listed capabilities (or, with no argument on a
/// member of a capability class, the object itself) and holds them on return.
#define AABFT_ACQUIRE(...) \
  AABFT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define AABFT_RELEASE(...) \
  AABFT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability only when it returns `result`
/// (try_lock-style).
#define AABFT_TRY_ACQUIRE(result, ...) \
  AABFT_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Names an alias the analysis should treat as the same capability (e.g. a
/// reference member standing in for the owner's mutex).
#define AABFT_ACQUIRED_AFTER(...) \
  AABFT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define AABFT_ACQUIRED_BEFORE(...) \
  AABFT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// The function returns a reference to data guarded by `x` (caller must hold
/// `x` to dereference it).
#define AABFT_RETURN_CAPABILITY(x) AABFT_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis. Every use must be justified in DESIGN.md §11's waiver table.
#define AABFT_NO_THREAD_SAFETY_ANALYSIS \
  AABFT_THREAD_ANNOTATION(no_thread_safety_analysis)
