// Contract-checking macros used across the library.
//
// AABFT_REQUIRE   — precondition on public API arguments; throws
//                   std::invalid_argument so callers can recover or report.
// AABFT_ASSERT    — internal invariant; throws std::logic_error (a violation
//                   is a bug in this library, not in the caller).
//
// Both are always on: the library exists to detect silent data corruption,
// so it must not itself fail silently in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aabft::detail {

[[noreturn]] inline void throw_requirement(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace aabft::detail

#define AABFT_REQUIRE(cond, msg)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::aabft::detail::throw_requirement("precondition", #cond, __FILE__,   \
                                         __LINE__, (msg));                  \
  } while (0)

#define AABFT_ASSERT(cond, msg)                                             \
  do {                                                                      \
    if (!(cond))                                                            \
      ::aabft::detail::throw_requirement("invariant", #cond, __FILE__,      \
                                         __LINE__, (msg));                  \
  } while (0)
