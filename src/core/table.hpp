// Minimal fixed-width table printer used by the benchmark harnesses to emit
// rows in the same layout as the paper's tables.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/require.hpp"

namespace aabft {

/// Accumulates rows of string cells and prints them with aligned columns.
/// Intentionally tiny: the bench binaries are the only consumers.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    AABFT_REQUIRE(!headers_.empty(), "a table needs at least one column");
  }

  void add_row(std::vector<std::string> cells) {
    AABFT_REQUIRE(cells.size() == headers_.size(),
                  "row width must match header width");
    rows_.push_back(std::move(cells));
  }

  /// Format a double in scientific notation the way the paper prints bounds
  /// (two significant decimals, e.g. 1.68e-11).
  static std::string sci(double v, int digits = 2) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(digits) << v;
    return os.str();
  }

  /// Format a double in fixed notation (GFLOPS-style columns).
  static std::string fixed(double v, int digits = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size(); ++c)
        width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c)
        os << "  " << std::setw(static_cast<int>(width[c])) << row[c];
      os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
    os.flush();
  }

  /// Write the table as CSV (RFC-4180-ish: cells containing commas or
  /// quotes are quoted). Returns false if the file could not be opened.
  bool write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    auto emit = [&out](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out << ',';
        const std::string& cell = row[c];
        if (cell.find_first_of(",\"\n") != std::string::npos) {
          out << '"';
          for (const char ch : cell) {
            if (ch == '"') out << '"';
            out << ch;
          }
          out << '"';
        } else {
          out << cell;
        }
      }
      out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
    return out.good();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Read an environment-variable override used by the bench binaries to grow
/// the default (host-friendly) sweeps up to the paper's full dimensions.
inline std::size_t env_size_or(const char* name, std::size_t fallback) {
  if (const char* v = std::getenv(name)) {
    const long long parsed = std::atoll(v);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

}  // namespace aabft
