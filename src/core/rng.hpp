// Deterministic, portable pseudo-random number generation.
//
// libstdc++'s distribution objects are not guaranteed to produce the same
// streams across versions, which would make fault-injection campaigns and
// workload generation irreproducible. We therefore ship a tiny, fully
// specified PRNG stack: SplitMix64 for seeding, xoshiro256** as the main
// generator, and hand-rolled uniform / normal transforms.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/require.hpp"

namespace aabft {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). All-purpose 64-bit generator with
/// 256-bit state; plenty for workload generation and fault-site selection.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
    // An all-zero state is the one invalid state; SplitMix64 cannot produce
    // four zero outputs in a row, but be defensive.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_unit() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_unit();
  }

  /// Uniform integer in [0, n). n must be positive.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Marsaglia's polar method (deterministic given the
  /// stream; caches the spare deviate).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0;
    double v = 0;
    double s = 0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  bool next_bool() noexcept { return (next_u64() >> 63) != 0; }

  /// Derive an independent child generator (for per-trial streams).
  Rng fork() noexcept { return Rng(next_u64()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace aabft
