// Recoverable-error results — the DESIGN.md §4.7 error-handling contract.
//
// Recoverable misuse of the public API (shape mismatches, incompatible
// operand sizes) is reported as a value, not an exception: callers that can
// recover inspect `ok()` / `error()`, callers that cannot simply call
// `value()` and get the old throwing behaviour. True precondition bugs
// (invalid configurations, violated internal invariants) keep throwing via
// AABFT_REQUIRE / AABFT_ASSERT — those indicate a defect, not bad input.
//
// This is the promised `std::expected`-style `Result<T>` with
// std::variant backing (C++20; no external expected dependency).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace aabft {

/// Why a recoverable operation was refused.
enum class ErrorCode {
  kShapeMismatch,   ///< operand dimensions are incompatible
  kInvalidArgument, ///< an argument value is outside the accepted domain
  kExecutionFailed, ///< an asynchronous pipeline failed to complete
  kOverloaded,      ///< admission refused: the request queue is full
  kDeadlineInfeasible, ///< admission refused: the deadline cannot be met
  kUnsupportedOp,   ///< the scheme does not implement the requested op kind
  kUnavailable,     ///< required data or devices are fenced beyond recovery
};

struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;
};

/// Value-or-error. Construct from a T (success) or an Error (failure).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}                  // NOLINT(google-explicit-constructor)
  Result(Error error) : v_(std::move(error)) {}              // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  /// The success value. Throws std::invalid_argument carrying the error
  /// message when the result holds an error — so code that does not check
  /// fails exactly as loudly as the old AABFT_REQUIRE-based API did.
  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(v_);
  }
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(v_);
  }
  [[nodiscard]] T&& value() && {
    require_ok();
    return std::get<T>(std::move(v_));
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  /// The error. Only valid when !ok().
  [[nodiscard]] const Error& error() const { return std::get<Error>(v_); }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  void require_ok() const {
    if (!ok())
      throw std::invalid_argument("Result::value() on error: " +
                                  std::get<Error>(v_).message);
  }

  std::variant<T, Error> v_;
};

/// Shorthand for the common shape-mismatch refusal.
[[nodiscard]] inline Error shape_error(std::string message) {
  return Error{ErrorCode::kShapeMismatch, std::move(message)};
}

/// Shorthand for refusing an operation kind a scheme does not implement.
[[nodiscard]] inline Error unsupported_op_error(std::string message) {
  return Error{ErrorCode::kUnsupportedOp, std::move(message)};
}

}  // namespace aabft
