// Annotated synchronisation primitives with lock-rank validation
// (DESIGN.md §11).
//
// core::Mutex wraps std::mutex with two compile/run-time contracts layered on
// top:
//
//   1. **Thread-safety capability** (Clang -Wthread-safety): the class is an
//      AABFT_CAPABILITY, so shared fields can be declared
//      AABFT_GUARDED_BY(mu_) and the analysis proves every access happens
//      under the lock. Locking goes through the RAII guards below
//      (core::MutexLock / core::UniqueLock) — never bare lock()/unlock()
//      pairs in client code.
//
//   2. **Lock-rank validation** (runtime, all builds unless
//      AABFT_NO_LOCK_RANK_CHECKS is defined): every Mutex carries a
//      documented LockRank; a thread may only acquire a mutex whose rank is
//      *strictly greater* than every lock it already holds. Acquiring out of
//      order — the shape every cross-subsystem deadlock in a feeder/collector
//      /dispatcher system takes — throws LockOrderError naming both locks
//      and the full held stack, so a seeded inversion aborts the test that
//      introduced it instead of deadlocking a soak run years later. The
//      validator is a per-thread vector push/pop plus one integer compare per
//      acquisition — noise next to the cost of the lock itself — which is why
//      it stays on outside of explicitly opted-out builds (the TSan lane
//      inherits it for free).
//
// The rank bands (gaps left for future locks; a lock may nest inside any
// lock of a *lower* band):
//
//   100..199  fleet control plane   (FleetServer stop / chaos / store /
//                                    router / shard queues / inflight /
//                                    telemetry)
//   200..299  serve layer           (GemmServer stop / pause / request queue
//                                    / stats recorders)
//   300..399  device layer (gpusim) (stream FIFO / executor pool / task
//                                    completion / launcher registries / logs
//                                    / hazard sink)
//
// Fleet holds its stop lock across per-shard server shutdown, and serve holds
// its stop lock across queue close — hence fleet < serve < device. Locks
// within one band never nest (each critical section is self-contained); the
// strict ordering check also rejects recursive acquisition of the same
// mutex.
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/thread_annotations.hpp"

namespace aabft::core {

/// Documented acquisition order (see the band table above). Values are
/// compared numerically: a thread holding rank R may only acquire ranks > R.
enum class LockRank : int {
  // -- fleet control plane (src/fleet) --
  kFleetControl = 100,   ///< FleetServer::stop_mu_ (held across shard stops)
  kFleetChaos = 110,     ///< chaos RNG draw per injected fault
  kFleetRouter = 120,    ///< ShardRouter shape-affinity map
  kFleetOperandStore = 130,  ///< OperandStore stripe index
  kFleetCacheMap = 135,  ///< fleet-handle -> per-shard serve-cache handle map
  kFleetQueues = 140,    ///< ShardQueues (work stealing, one lock for all N)
  kFleetInflight = 150,  ///< per-shard dispatched-uncollected window
  kFleetTelemetry = 160, ///< per-shard fleet e2e latency recorder

  // -- serve layer (src/serve) --
  kServeControl = 200,   ///< GemmServer::stop_mu_ (held across queue close)
  kServePause = 210,     ///< dispatcher pause/resume gate
  kServeQueue = 220,     ///< BoundedRequestQueue buckets
  kServeOpCache = 225,   ///< OperandCache index + LRU bookkeeping
  kServeStats = 230,     ///< StatsBoard latency recorders

  // -- device layer (src/gpusim) --
  kDeviceStream = 300,   ///< StreamState FIFO + in-flight flag
  kDeviceExecutor = 310, ///< Executor ready queue
  kDeviceTask = 320,     ///< per-task counter merge + completion
  kDeviceStreams = 330,  ///< Launcher stream registry
  kDeviceLog = 340,      ///< Launcher launch log
  kDeviceAsyncError = 350,  ///< Launcher stored async failure
  kDeviceHazard = 360,   ///< HazardSink record buffer

  // -- kernel-local state (stack mutexes inside one launch) --
  kKernelReduction = 400,  ///< per-launch result-merge locks in block bodies
};

/// Thrown (debug validator, all builds unless opted out) when a thread
/// acquires mutexes against the documented rank order — the compile-time
/// annotations' runtime companion for ordering, which Clang's analysis does
/// not model.
class LockOrderError : public std::logic_error {
 public:
  explicit LockOrderError(std::string what) : std::logic_error(std::move(what)) {}
};

#if !defined(AABFT_NO_LOCK_RANK_CHECKS)
#define AABFT_LOCK_RANK_CHECKS 1
#endif

namespace detail {

struct HeldLock {
  int rank;
  const char* name;
  const void* mutex;
};

#if AABFT_LOCK_RANK_CHECKS
inline thread_local std::vector<HeldLock> t_held_locks;

/// Validate-and-record one acquisition. The held stack is strictly
/// increasing by construction, so its back is the highest-ranked held lock.
inline void note_acquire(int rank, const char* name, const void* mutex) {
  auto& held = t_held_locks;
  if (!held.empty() && held.back().rank >= rank) {
    std::string what = "LockOrderError: acquiring '" + std::string(name) +
                       "' (rank " + std::to_string(rank) +
                       ") while holding '" + std::string(held.back().name) +
                       "' (rank " + std::to_string(held.back().rank) +
                       "); ranks must strictly increase. Held stack:";
    for (const HeldLock& h : held)
      what += " '" + std::string(h.name) + "'(" + std::to_string(h.rank) + ")";
    throw LockOrderError(std::move(what));
  }
  held.push_back(HeldLock{rank, name, mutex});
}

inline void note_release(const void* mutex) noexcept {
  auto& held = t_held_locks;
  for (std::size_t i = held.size(); i-- > 0;)
    if (held[i].mutex == mutex) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
}
#else
inline void note_acquire(int, const char*, const void*) {}
inline void note_release(const void*) noexcept {}
#endif

}  // namespace detail

/// Number of core::Mutex locks the calling thread currently holds (0 with
/// rank checks compiled out). Test hook: a clean soak must end every thread
/// at 0, and RAII guards must restore it on every path.
[[nodiscard]] inline std::size_t held_lock_count() noexcept {
#if AABFT_LOCK_RANK_CHECKS
  return detail::t_held_locks.size();
#else
  return 0;
#endif
}

/// Names of the calling thread's held locks, innermost last (empty with rank
/// checks compiled out).
[[nodiscard]] inline std::vector<std::string> held_lock_names() {
  std::vector<std::string> names;
#if AABFT_LOCK_RANK_CHECKS
  names.reserve(detail::t_held_locks.size());
  for (const auto& h : detail::t_held_locks) names.emplace_back(h.name);
#endif
  return names;
}

/// std::mutex with a thread-safety capability and a documented rank. Lock it
/// through MutexLock / UniqueLock; the raw lock()/unlock() surface exists for
/// the guards and for tests of the validator itself.
class AABFT_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) noexcept
      : rank_(static_cast<int>(rank)), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AABFT_ACQUIRE() {
    detail::note_acquire(rank_, name_, this);  // throws before blocking
    m_.lock();
  }
  void unlock() AABFT_RELEASE() {
    m_.unlock();
    detail::note_release(this);
  }
  [[nodiscard]] bool try_lock() AABFT_TRY_ACQUIRE(true) {
    detail::note_acquire(rank_, name_, this);
    if (m_.try_lock()) return true;
    detail::note_release(this);
    return false;
  }

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;
  friend class UniqueLock;
  std::mutex m_;
  const int rank_;
  const char* const name_;
};

/// std::lock_guard equivalent over core::Mutex (scoped capability).
class AABFT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AABFT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AABFT_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent over core::Mutex: relockable (CondVar waits
/// need the underlying std::unique_lock) and manually unlockable.
class AABFT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) AABFT_ACQUIRE(mu)
      : mu_(mu), lk_(mu.m_, std::defer_lock) {
    lock_impl();
  }
  ~UniqueLock() AABFT_RELEASE() {
    if (lk_.owns_lock()) unlock_impl();
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() AABFT_ACQUIRE() { lock_impl(); }
  void unlock() AABFT_RELEASE() { unlock_impl(); }
  [[nodiscard]] bool owns_lock() const noexcept { return lk_.owns_lock(); }

 private:
  friend class CondVar;

  void lock_impl() {
    detail::note_acquire(mu_.rank(), mu_.name(), &mu_);
    lk_.lock();
  }
  void unlock_impl() {
    lk_.unlock();
    detail::note_release(&mu_);
  }

  Mutex& mu_;
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable over core::Mutex. The predicate-free wait/wait_until
/// primitives keep guarded-field predicates *in the calling function's body*
/// (as explicit while-loops), where Clang's analysis can see the lock held —
/// a lambda predicate would be analysed as a separate unannotated function
/// and flagged. While blocked, the waiting thread's rank stack still lists
/// the mutex (the internal release/reacquire is invisible to the validator);
/// that is sound because ordering was validated at the original acquisition
/// and a blocked thread acquires nothing.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lk) { cv_.wait(lk.lk_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lk.lk_, deadline);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aabft::core
