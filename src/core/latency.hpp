// Streaming latency recorder: count / mean / quantiles / max over a fixed
// log-bucket histogram (an HDR-histogram-lite).
//
// Values (nanoseconds, but any non-negative integer works) are binned into
// power-of-two octaves, each split into 2^kSubBits linear sub-buckets, so a
// quantile read is exact for values < 2^kSubBits and within a relative
// 2^-kSubBits (6.25 %) of the true value everywhere else — precise enough
// for p50/p95/p99 reporting with a few KB of fixed state and O(1) inserts.
//
// Thread-ownership model: a recorder is NOT internally synchronized. Each
// thread records into its own instance; aggregation merges them (merge() is
// exact: histograms, counts, sums and maxima all add/compose losslessly).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace aabft {

class LatencyRecorder {
 public:
  static constexpr std::size_t kSubBits = 4;  ///< 16 sub-buckets per octave

  void record(std::uint64_t value) noexcept {
    ++count_;
    sum_ += value;
    max_ = std::max(max_, value);
    ++buckets_[bucket_of(value)];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: the lower bound of the bucket holding
  /// the ceil(q * count)-th smallest sample (0 when empty). At most
  /// 2^-kSubBits below the true sample value.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.999999));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cumulative += buckets_[i];
      if (cumulative >= rank) return lower_bound_of(i);
    }
    return max_;
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }

  /// Exact aggregation of another recorder into this one.
  void merge(const LatencyRecorder& other) noexcept {
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

  void reset() noexcept { *this = LatencyRecorder{}; }

 private:
  // Octave of the value's most significant bit, split into kSubBits linear
  // sub-buckets; values below 2^kSubBits get one exact bucket each. Indices
  // are contiguous and monotone in the value.
  static constexpr std::size_t kBuckets =
      ((64 - kSubBits + 1) << kSubBits);  // last octave: msb = 63

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < (std::uint64_t{1} << kSubBits)) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    const auto sub =
        static_cast<std::size_t>((v >> shift) & ((std::uint64_t{1} << kSubBits) - 1));
    return ((static_cast<std::size_t>(msb) - kSubBits + 1) << kSubBits) + sub;
  }

  [[nodiscard]] static std::uint64_t lower_bound_of(std::size_t bucket) noexcept {
    const std::size_t group = bucket >> kSubBits;
    const std::uint64_t sub = bucket & ((std::size_t{1} << kSubBits) - 1);
    if (group == 0) return sub;  // exact small-value buckets
    const unsigned msb = static_cast<unsigned>(group) + kSubBits - 1;
    return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
  }

  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kBuckets> buckets_{};
};

}  // namespace aabft
