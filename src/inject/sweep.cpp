#include "inject/sweep.hpp"

#include "core/require.hpp"

namespace aabft::inject {

namespace {

double rate(std::size_t detected, std::size_t total) {
  AABFT_REQUIRE(total > 0, "no critical errors recorded across the sweep");
  return 100.0 * static_cast<double>(detected) / static_cast<double>(total);
}

}  // namespace

double SweepResult::aggregate_rate_aabft() const {
  std::size_t detected = 0;
  std::size_t total = 0;
  for (const auto& cell : cells) {
    detected += cell.result.aabft.detected_critical;
    total += cell.result.aabft.critical;
  }
  return rate(detected, total);
}

double SweepResult::aggregate_rate_sea() const {
  std::size_t detected = 0;
  std::size_t total = 0;
  for (const auto& cell : cells) {
    detected += cell.result.sea.detected_critical;
    total += cell.result.sea.critical;
  }
  return rate(detected, total);
}

std::size_t SweepResult::false_positive_runs() const {
  std::size_t n = 0;
  for (const auto& cell : cells)
    n += cell.result.aabft_false_positive_runs +
         cell.result.sea_false_positive_runs;
  return n;
}

SweepResult run_sweep(const SweepConfig& config) {
  AABFT_REQUIRE(!config.sizes.empty() && !config.sites.empty() &&
                    !config.inputs.empty(),
                "sweep grid must not be empty");
  SweepResult result;
  std::uint64_t seed = config.seed;
  for (const auto site : config.sites) {
    for (const auto& [input, kappa] : config.inputs) {
      for (const std::size_t n : config.sizes) {
        CampaignConfig campaign;
        campaign.n = n;
        campaign.bs = config.bs;
        campaign.p = config.p;
        campaign.site = site;
        campaign.field = config.field;
        campaign.num_bits = config.num_bits;
        campaign.input = input;
        campaign.kappa = kappa;
        campaign.trials = config.trials;
        campaign.seed = seed++;

        gpusim::Launcher launcher;
        SweepCell cell;
        cell.site = site;
        cell.input = input;
        cell.kappa = kappa;
        cell.n = n;
        cell.result = run_campaign(launcher, campaign);
        result.cells.push_back(std::move(cell));
      }
    }
  }
  return result;
}

}  // namespace aabft::inject
