#include "inject/sweep.hpp"

#include <algorithm>
#include <thread>

#include "core/require.hpp"

namespace aabft::inject {

namespace {

double rate(std::size_t detected, std::size_t total) {
  AABFT_REQUIRE(total > 0, "no critical errors recorded across the sweep");
  return 100.0 * static_cast<double>(detected) / static_cast<double>(total);
}

}  // namespace

double SweepResult::aggregate_rate(std::string_view scheme) const {
  std::size_t detected = 0;
  std::size_t total = 0;
  for (const auto& cell : cells) {
    const SchemeDetectionStats& stats = cell.result.scheme(scheme).stats;
    detected += stats.detected_critical;
    total += stats.critical;
  }
  return rate(detected, total);
}

std::size_t SweepResult::false_positive_runs() const {
  std::size_t n = 0;
  for (const auto& cell : cells)
    n += cell.result.aabft_false_positive_runs() +
         cell.result.sea_false_positive_runs();
  return n;
}

SweepResult run_sweep(const SweepConfig& config) {
  AABFT_REQUIRE(!config.sizes.empty() && !config.sites.empty() &&
                    !config.inputs.empty(),
                "sweep grid must not be empty");

  // Lay out the whole grid (with per-cell seeds) up front, then dispatch:
  // results only depend on the cell's own campaign config, never on which
  // lane or order the cells ran in.
  std::vector<SweepCell> cells;
  std::vector<CampaignConfig> campaigns;
  std::uint64_t seed = config.seed;
  for (const auto site : config.sites) {
    for (const auto& [input, kappa] : config.inputs) {
      for (const std::size_t n : config.sizes) {
        CampaignConfig campaign;
        campaign.n = n;
        campaign.bs = config.bs;
        campaign.p = config.p;
        campaign.site = site;
        campaign.field = config.field;
        campaign.num_bits = config.num_bits;
        campaign.input = input;
        campaign.kappa = kappa;
        campaign.trials = config.trials;
        campaign.seed = seed++;
        campaigns.push_back(campaign);

        SweepCell cell;
        cell.site = site;
        cell.input = input;
        cell.kappa = kappa;
        cell.n = n;
        cells.push_back(std::move(cell));
      }
    }
  }

  auto run_cell = [&](std::size_t i) {
    gpusim::Launcher launcher;
    cells[i].result = run_campaign(launcher, campaigns[i]);
  };

  const std::size_t lanes_wanted =
      config.concurrency != 0
          ? config.concurrency
          : std::max(1u, std::thread::hardware_concurrency());
  const std::size_t num_lanes = std::min(cells.size(), lanes_wanted);

  if (num_lanes <= 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) run_cell(i);
  } else {
    // Dispatch cells round-robin onto streams of a coordinating launcher;
    // each cell still drives its own private launcher inside the host task.
    gpusim::Launcher coordinator;
    std::vector<gpusim::Stream> lanes;
    lanes.reserve(num_lanes);
    for (std::size_t s = 0; s < num_lanes; ++s)
      lanes.push_back(coordinator.create_stream());
    for (std::size_t i = 0; i < cells.size(); ++i)
      coordinator.launch_host_async(lanes[i % num_lanes], "sweep_cell",
                                    [&run_cell, i] { run_cell(i); });
    for (auto& lane : lanes) lane.synchronize();
  }

  SweepResult result;
  result.cells = std::move(cells);
  return result;
}

}  // namespace aabft::inject
