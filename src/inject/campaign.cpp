#include "inject/campaign.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "abft/encoder.hpp"
#include "abft/upper_bound.hpp"
#include "baselines/scheme.hpp"
#include "baselines/schemes.hpp"
#include "core/require.hpp"
#include "core/rng.hpp"

namespace aabft::inject {

using abft::PartitionedCodec;
using gpusim::FaultConfig;
using gpusim::FaultController;
using linalg::Matrix;

namespace {

/// Location and magnitude of the one element a fired fault corrupted.
struct CorruptedElement {
  std::size_t row = 0;  ///< encoded coordinates within C_fc
  std::size_t col = 0;
  double abs_error = 0.0;
};

/// Locate corrupted elements; at most `max_expected` may differ (each armed
/// fault hits one accumulator). Returns the element with the largest
/// deviation — the one that dominates the ground-truth classification.
std::optional<CorruptedElement> find_corruption(const Matrix& faulty,
                                                const Matrix& reference,
                                                std::size_t max_expected) {
  std::optional<CorruptedElement> worst;
  std::size_t count = 0;
  for (std::size_t i = 0; i < faulty.rows(); ++i) {
    for (std::size_t j = 0; j < faulty.cols(); ++j) {
      if (faulty(i, j) != reference(i, j)) {
        ++count;
        double deviation = std::fabs(faulty(i, j) - reference(i, j));
        if (std::isnan(deviation))
          deviation = std::numeric_limits<double>::infinity();
        if (!worst.has_value() || deviation > worst->abs_error)
          worst = CorruptedElement{i, j, deviation};
      }
    }
  }
  AABFT_ASSERT(count <= max_expected,
               "injected faults corrupted more elements than armed");
  return worst;
}

/// Exact per-element upper bound y = max_k |a_ik * b_kj| for the
/// classification baseline (ground truth, not the runtime p-max estimate).
double exact_upper_bound(const Matrix& a_cc, const Matrix& b_rc,
                         std::size_t row, std::size_t col) {
  double y = 0.0;
  for (std::size_t k = 0; k < a_cc.cols(); ++k)
    y = std::max(y, std::fabs(a_cc(row, k) * b_rc(k, col)));
  return y;
}

}  // namespace

CampaignResult run_campaign(gpusim::Launcher& launcher,
                            const CampaignConfig& config) {
  AABFT_REQUIRE(config.valid(), "invalid campaign configuration");
  Rng rng(config.seed);
  const PartitionedCodec codec(config.bs);

  // Inputs and fault-free state: generated once per campaign; every trial
  // injects into a fresh multiplication of these operands.
  Matrix a = linalg::make_input(config.input, config.n, config.kappa, rng);
  Matrix b = linalg::make_input(config.input, config.n, config.kappa, rng);

  const abft::EncodedMatrix a_cc =
      abft::encode_columns(launcher, a, codec, config.p);
  const abft::EncodedMatrix b_rc =
      abft::encode_rows(launcher, b, codec, config.p);

  const Matrix reference =
      linalg::blocked_matmul(launcher, a_cc.data, b_rc.data, config.gemm);

  CampaignResult result;
  result.trials = config.trials;

  // Every scheme that can judge an external product takes part; the rest
  // (TMR family, unprotected) return no checker and are skipped — no
  // per-scheme branching here.
  baselines::SchemeSuiteConfig suite;
  suite.bs = config.bs;
  suite.p = config.p;
  suite.fixed_epsilon = config.fixed_epsilon;
  suite.bounds = config.bounds;
  suite.gemm = config.gemm;
  const auto schemes = baselines::make_schemes(launcher, suite);
  const baselines::ProductCheckContext ctx{launcher, codec, a_cc, b_rc,
                                           config.n};
  std::vector<std::unique_ptr<baselines::ProductChecker>> checkers;
  for (const auto& scheme : schemes) {
    if (auto checker = scheme->make_checker(ctx)) {
      checkers.push_back(std::move(checker));
      result.schemes.push_back(SchemeDetection{std::string(scheme->name()),
                                               SchemeDetectionStats{}, 0});
    }
  }

  // Sanity: every checker must be clean on the fault-free product; a false
  // positive here would poison every detection number below.
  for (std::size_t s = 0; s < checkers.size(); ++s)
    if (checkers[s]->flags_error(reference))
      ++result.schemes[s].false_positive_runs;

  FaultController controller;
  launcher.set_fault_controller(&controller);

  const std::size_t modules = config.gemm.rx * config.gemm.ry;
  const auto num_sms =
      static_cast<std::uint64_t>(launcher.device().num_sms);

  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    std::vector<FaultConfig> faults(config.faults_per_trial);
    for (auto& fault : faults) {
      fault.site = config.site;
      fault.sm_id = static_cast<int>(rng.below(num_sms));
      fault.module_id = static_cast<int>(rng.below(modules));
      fault.k_injection = config.site == gpusim::FaultSite::kFinalAdd
                              ? 0
                              : static_cast<std::int64_t>(rng.below(config.n));
      fault.error_vec = fp::make_error_vec(config.field, config.num_bits, rng);
    }
    controller.arm_many(faults);

    const Matrix faulty =
        linalg::blocked_matmul(launcher, a_cc.data, b_rc.data, config.gemm);
    controller.disarm();

    if (!controller.fired()) continue;
    ++result.fired;

    const auto corrupted =
        find_corruption(faulty, reference, config.faults_per_trial);
    if (!corrupted.has_value()) {
      ++result.masked;  // e.g. the flip hit a padded lane or was value-neutral
      continue;
    }

    // Ground-truth classification of the deviation (Section VI-C baseline):
    // probabilistic EV / sigma of the affected element's inner product, with
    // the exact per-element upper bound.
    const double y =
        exact_upper_bound(a_cc.data, b_rc.data, corrupted->row, corrupted->col);
    const abft::RoundingStats stats =
        abft::inner_product_stats(config.n, y, config.bounds);
    const abft::ErrorClass cls =
        abft::classify_error(corrupted->abs_error, stats, config.bounds.omega);

    // Every scheme checks the same faulty product, so the per-trial
    // comparison is paired and unbiased.
    for (std::size_t s = 0; s < checkers.size(); ++s)
      result.schemes[s].stats.record(cls, checkers[s]->flags_error(faulty));
  }

  launcher.set_fault_controller(nullptr);
  return result;
}

}  // namespace aabft::inject
