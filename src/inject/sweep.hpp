// Campaign grid sweeps — the programmatic form of the Figure-4 experiment.
//
// A sweep runs one campaign per (operation site x input class x matrix
// dimension) cell and collects the results into a grid that benches, tests
// and user code can query. The Figure-4 bench binary is a thin printer over
// this module.
#pragma once

#include <cstddef>
#include <vector>

#include "inject/campaign.hpp"

namespace aabft::inject {

struct SweepConfig {
  std::vector<std::size_t> sizes = {128, 256};
  std::vector<gpusim::FaultSite> sites = {gpusim::FaultSite::kInnerAdd,
                                          gpusim::FaultSite::kInnerMul,
                                          gpusim::FaultSite::kFinalAdd};
  /// Input classes with their kappa (only used by the dynamic class).
  std::vector<std::pair<linalg::InputClass, double>> inputs = {
      {linalg::InputClass::kUnit, 2.0},
      {linalg::InputClass::kHundred, 2.0},
      {linalg::InputClass::kDynamic, 65536.0}};
  fp::BitField field = fp::BitField::kMantissa;
  int num_bits = 1;
  std::size_t trials = 24;
  std::size_t bs = 32;
  std::size_t p = 2;
  std::uint64_t seed = 0xf164;
};

struct SweepCell {
  gpusim::FaultSite site;
  linalg::InputClass input;
  double kappa = 0.0;
  std::size_t n = 0;
  CampaignResult result;
};

struct SweepResult {
  std::vector<SweepCell> cells;

  /// Aggregate detection rate (percent) over all cells with critical errors.
  [[nodiscard]] double aggregate_rate_aabft() const;
  [[nodiscard]] double aggregate_rate_sea() const;

  /// Total clean-run false positives across cells (must stay zero).
  [[nodiscard]] std::size_t false_positive_runs() const;
};

/// Run the full grid. Each cell gets its own launcher and derived seed, so
/// cells are independent and the whole sweep is reproducible.
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config);

}  // namespace aabft::inject
