// Campaign grid sweeps — the programmatic form of the Figure-4 experiment.
//
// A sweep runs one campaign per (operation site x input class x matrix
// dimension) cell and collects the results into a grid that benches, tests
// and user code can query. The Figure-4 bench binary is a thin printer over
// this module.
//
// Cells are independent: each gets its own launcher and a seed derived from
// its grid position, so results are reproducible for any `concurrency` —
// with concurrency > 1 the cells are dispatched onto streams of a
// coordinating launcher and run in parallel.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "inject/campaign.hpp"

namespace aabft::inject {

struct SweepConfig {
  std::vector<std::size_t> sizes = {128, 256};
  std::vector<gpusim::FaultSite> sites = {gpusim::FaultSite::kInnerAdd,
                                          gpusim::FaultSite::kInnerMul,
                                          gpusim::FaultSite::kFinalAdd};
  /// Input classes with their kappa (only used by the dynamic class).
  std::vector<std::pair<linalg::InputClass, double>> inputs = {
      {linalg::InputClass::kUnit, 2.0},
      {linalg::InputClass::kHundred, 2.0},
      {linalg::InputClass::kDynamic, 65536.0}};
  fp::BitField field = fp::BitField::kMantissa;
  int num_bits = 1;
  std::size_t trials = 24;
  std::size_t bs = 32;
  std::size_t p = 2;
  std::uint64_t seed = 0xf164;
  /// Campaign cells run concurrently on this many streams (0 derives the
  /// lane count from the hardware). Results are identical for any value.
  std::size_t concurrency = 1;
};

struct SweepCell {
  gpusim::FaultSite site;
  linalg::InputClass input;
  double kappa = 0.0;
  std::size_t n = 0;
  CampaignResult result;
};

struct SweepResult {
  std::vector<SweepCell> cells;

  /// Aggregate detection rate (percent) of one scheme over all cells.
  [[nodiscard]] double aggregate_rate(std::string_view scheme) const;

  [[nodiscard]] double aggregate_rate_aabft() const {
    return aggregate_rate("a-abft");
  }
  [[nodiscard]] double aggregate_rate_sea() const {
    return aggregate_rate("sea-abft");
  }

  /// Total clean-run false positives of the autonomous contenders (A-ABFT
  /// and SEA-ABFT) across cells — must stay zero. The manually bounded
  /// fixed-abft contender is excluded: its epsilon is not adaptive, so
  /// mis-detection on hostile inputs is its expected failure mode.
  [[nodiscard]] std::size_t false_positive_runs() const;
};

/// Run the full grid. Each cell gets its own launcher and derived seed, so
/// cells are independent and the whole sweep is reproducible.
[[nodiscard]] SweepResult run_sweep(const SweepConfig& config);

}  // namespace aabft::inject
