// Fault-injection campaigns — paper Section VI-C.
//
// A campaign repeatedly executes the protected matrix multiplication while
// injecting exactly one fault per run into a floating-point instruction of
// the product kernel (Algorithm 3): a random virtual SM, a random module
// (per-thread result slot), a random injection time kInjection, and an error
// vector targeting the sign, exponent or mantissa field with 1..k flipped
// bits.
//
// Every contender that can check an externally computed product (the ABFT
// family: fixed-abft, a-abft, sea-abft — discovered generically through
// ProtectedMultiplier::make_checker) judges the *same* faulty product: the
// schemes share encode and multiply and differ only in the bound
// computation, so per-trial comparisons are paired and unbiased (and cost
// one GEMM for all schemes instead of one each).
//
// Ground truth per trial: the faulty product is diffed against a fault-free
// reference product of the same inputs; the affected element's deviation is
// classified with the probabilistic rounding model (rounding noise /
// tolerable / critical) exactly as the paper's baseline prescribes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "abft/bounds.hpp"
#include "fp/fault_vector.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/kernel.hpp"
#include "inject/stats.hpp"
#include "linalg/matmul.hpp"
#include "linalg/workload.hpp"

namespace aabft::inject {

struct CampaignConfig {
  std::size_t n = 256;        ///< square matrix dimension
  std::size_t bs = 32;        ///< checksum block size
  std::size_t p = 2;          ///< A-ABFT p-max parameter
  gpusim::FaultSite site = gpusim::FaultSite::kInnerMul;
  fp::BitField field = fp::BitField::kMantissa;
  int num_bits = 1;           ///< flipped bits (1, 3, 5 in the paper)
  linalg::InputClass input = linalg::InputClass::kUnit;
  double kappa = 65536.0;     ///< condition number for the dynamic input class
  std::size_t trials = 50;    ///< multiplications with injections
  /// Faults armed per multiplication. The paper always injects one; values
  /// up to gpusim::FaultController::kMaxFaults exercise the partitioned
  /// scheme's multi-error behaviour (detection is still paired across both
  /// schemes; classification then uses the largest corrupted deviation).
  std::size_t faults_per_trial = 1;
  std::uint64_t seed = 0x5eed;
  abft::BoundParams bounds;   ///< omega = 3, policy, fma
  double fixed_epsilon = 1e-8; ///< manual bound of the fixed-ABFT contender
  linalg::GemmConfig gemm;

  [[nodiscard]] bool valid() const noexcept {
    return n > 0 && n % bs == 0 && trials > 0 && faults_per_trial >= 1 &&
           faults_per_trial <= gpusim::FaultController::kMaxFaults &&
           gemm.valid() && bounds.fma == gemm.use_fma;
  }
};

/// Run one campaign. The launcher's fault controller is managed internally.
[[nodiscard]] CampaignResult run_campaign(gpusim::Launcher& launcher,
                                          const CampaignConfig& config);

}  // namespace aabft::inject
