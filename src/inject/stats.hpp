// Detection bookkeeping for fault-injection campaigns.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "abft/classify.hpp"
#include "core/require.hpp"

namespace aabft::inject {

/// Per-scheme detection counts, split by the ground-truth error class of the
/// corrupted element.
struct SchemeDetectionStats {
  std::size_t critical = 0;            ///< injected critical errors
  std::size_t detected_critical = 0;   ///< ... of which the scheme flagged
  std::size_t tolerable = 0;
  std::size_t detected_tolerable = 0;
  std::size_t rounding_noise = 0;
  std::size_t detected_rounding = 0;   ///< flagging noise == false positive

  void record(abft::ErrorClass cls, bool detected) noexcept {
    switch (cls) {
      case abft::ErrorClass::kCritical:
        ++critical;
        if (detected) ++detected_critical;
        break;
      case abft::ErrorClass::kTolerable:
        ++tolerable;
        if (detected) ++detected_tolerable;
        break;
      case abft::ErrorClass::kRoundingNoise:
        ++rounding_noise;
        if (detected) ++detected_rounding;
        break;
    }
  }

  /// Percentage of critical errors detected — the Figure 4 metric.
  [[nodiscard]] double detection_rate() const {
    AABFT_REQUIRE(critical > 0, "no critical errors recorded");
    return 100.0 * static_cast<double>(detected_critical) /
           static_cast<double>(critical);
  }

  [[nodiscard]] bool has_critical() const noexcept { return critical > 0; }
};

/// Detection record of one scheme across a campaign.
struct SchemeDetection {
  std::string scheme;  ///< ProtectedMultiplier::name() key
  SchemeDetectionStats stats;
  std::size_t false_positive_runs = 0;  ///< clean-run mis-detections
};

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t fired = 0;    ///< injections that actually hit an instruction
  std::size_t masked = 0;   ///< fired but no result element changed
  /// One entry per scheme that can check an external product, in
  /// make_schemes order (fixed-abft, a-abft, sea-abft by default).
  std::vector<SchemeDetection> schemes;

  /// Lookup by scheme name; throws std::logic_error when absent.
  [[nodiscard]] const SchemeDetection& scheme(std::string_view name) const {
    for (const auto& entry : schemes)
      if (entry.scheme == name) return entry;
    throw std::logic_error("campaign has no scheme named '" +
                           std::string(name) + "'");
  }

  [[nodiscard]] const SchemeDetectionStats& aabft() const {
    return scheme("a-abft").stats;
  }
  [[nodiscard]] const SchemeDetectionStats& sea() const {
    return scheme("sea-abft").stats;
  }
  [[nodiscard]] std::size_t aabft_false_positive_runs() const {
    return scheme("a-abft").false_positive_runs;
  }
  [[nodiscard]] std::size_t sea_false_positive_runs() const {
    return scheme("sea-abft").false_positive_runs;
  }
};

}  // namespace aabft::inject
