#include "abft/fused_gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "core/require.hpp"
#include "gpusim/fault_site.hpp"
#include "gpusim/hazard.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;
using gpusim::FaultSite;
using linalg::Matrix;

namespace {

constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Slack factor of the online panel screen. The screen is a coarse
/// detector, not the paper's bound: it must never fire on pure rounding
/// (which would cost spurious replays) while still catching the sign/
/// exponent-scale corruption ABFT targets; the end-of-product check keeps
/// the authoritative autonomous bounds.
constexpr double kPanelScreenSlack = 16.0;

/// Offer |v[i]|, i in [0, n), into `list` with indices index0 + i. The
/// current p-th maximum screens the common case down to one comparison.
/// Returns the comparison count (>= n), charged by the caller.
std::size_t offer_span(PMaxList& list, const double* __restrict v,
                       std::size_t n, std::size_t index0) {
  std::size_t comparisons = 0;
  double cut = list.saturated() ? list.min_value() : -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double av = std::fabs(v[i]);
    if (av <= cut) {
      ++comparisons;
      continue;
    }
    comparisons += list.offer(av, index0 + i);
    if (list.saturated()) cut = list.min_value();
  }
  return comparisons;
}

}  // namespace

LightEncoded encode_columns_light(gpusim::Launcher& launcher, const Matrix& a,
                                  const PartitionedCodec& codec,
                                  std::size_t p) {
  AABFT_REQUIRE(p >= 1, "p must be at least 1");
  AABFT_REQUIRE(codec.divides(a.rows()),
                "rows of A must be a multiple of the checksum block size");
  const std::size_t bs = codec.bs();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t block_rows = m / bs;

  LightEncoded out;
  out.sums = Matrix(block_rows, n, 0.0);
  out.pmax = PMaxTable(codec.encoded_dim(m), PMaxList(p));

  // One block per block row of A; each owns a disjoint slice of the p-max
  // table (its bs data rows plus its checksum row), so no reduction launch
  // is needed.
  launcher.launch("encode_a_light", Dim3{block_rows, 1, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t br = blk.block.x;
    const std::size_t row0 = br * bs;
    math.load_doubles(bs * n);

    // Checksum accumulation straight into the compact sums row — the same
    // ascending-row per-column rounding chains as encode_columns, so the
    // bits equal the materialised checksum row.
    double* __restrict srow = out.sums.data() + br * n;
    if (!gpusim::force_instrumented()) {
      for (std::size_t r = 0; r < bs; ++r)
        math.add_rows(srow, a.data() + (row0 + r) * n, n);
    } else {
      for (std::size_t c = 0; c < n; ++c) {
        double sum = 0.0;
        for (std::size_t r = 0; r < bs; ++r) sum = math.add(sum, a(row0 + r, c));
        srow[c] = sum;
      }
    }

    // p-max determination fused into the same pass: one screened sweep per
    // vector instead of p max-scan-and-zero passes over an abs scratch
    // matrix. Shared by both paths (identical results and counts).
    std::size_t comparisons = 0;
    for (std::size_t r = 0; r < bs; ++r)
      comparisons += offer_span(out.pmax[codec.enc_index(row0 + r)],
                                a.data() + (row0 + r) * n, n, 0);
    comparisons += offer_span(out.pmax[codec.checksum_index(br)], srow, n, 0);
    math.count_compares(comparisons);
    math.store_doubles(n + (bs + 1) * p * 2);
  });
  return out;
}

LightEncoded encode_rows_light(gpusim::Launcher& launcher, const Matrix& b,
                               const PartitionedCodec& codec, std::size_t p) {
  AABFT_REQUIRE(p >= 1, "p must be at least 1");
  AABFT_REQUIRE(codec.divides(b.cols()),
                "columns of B must be a multiple of the checksum block size");
  const std::size_t bs = codec.bs();
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  const std::size_t block_cols = q / bs;

  LightEncoded out;
  out.sums = Matrix(n, block_cols, 0.0);
  out.pmax = PMaxTable(codec.encoded_dim(q), PMaxList(p));

  // One block per block column of B, owning that block's p-max slice.
  launcher.launch("encode_b_light", Dim3{block_cols, 1, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t bc = blk.block.x;
    const std::size_t col0 = bc * bs;
    math.load_doubles(n * bs);

    PMaxList& cs_list = out.pmax[codec.checksum_index(bc)];
    std::vector<double> cuts(bs, -1.0);
    double cs_cut = -1.0;
    std::size_t comparisons = 0;
    const bool instrumented = gpusim::force_instrumented();
    for (std::size_t r = 0; r < n; ++r) {
      const double* __restrict b_row = b.data() + r * q + col0;
      double sum = 0.0;
      if (!instrumented) {
        sum = math.sum_strided(b_row, bs, 1);
      } else {
        for (std::size_t c = 0; c < bs; ++c) sum = math.add(sum, b_row[c]);
      }
      out.sums(r, bc) = sum;

      // Column-direction offers, visited in ascending r like the standalone
      // encoder's merge order; the checksum column tracks |row sum|.
      for (std::size_t c = 0; c < bs; ++c) {
        const double av = std::fabs(b_row[c]);
        if (av <= cuts[c]) {
          ++comparisons;
          continue;
        }
        PMaxList& list = out.pmax[codec.enc_index(col0 + c)];
        comparisons += list.offer(av, r);
        if (list.saturated()) cuts[c] = list.min_value();
      }
      const double asum = std::fabs(sum);
      if (asum <= cs_cut) {
        ++comparisons;
      } else {
        comparisons += cs_list.offer(asum, r);
        if (cs_list.saturated()) cs_cut = cs_list.min_value();
      }
    }
    math.count_compares(comparisons);
    math.store_doubles(n + (bs + 1) * p * 2);
  });
  return out;
}

FusedProduct fused_encode_matmul(gpusim::Launcher& launcher, const Matrix& a,
                                 const Matrix& b, const Matrix& a_sums,
                                 const Matrix& b_sums,
                                 const PartitionedCodec& codec,
                                 const FusedGemmConfig& config) {
  AABFT_REQUIRE(config.valid(), "invalid fused-GEMM configuration");
  AABFT_REQUIRE(a.cols() == b.rows(), "inner dimensions must agree");
  const std::size_t bs = codec.bs();
  const std::size_t m = a.rows();
  const std::size_t k_dim = a.cols();
  const std::size_t q = b.cols();
  AABFT_REQUIRE(codec.divides(m) && codec.divides(q),
                "operand extents must be multiples of the checksum block size");
  AABFT_REQUIRE(a_sums.rows() == m / bs && a_sums.cols() == k_dim,
                "a_sums must be (m / bs) x k");
  AABFT_REQUIRE(b_sums.rows() == k_dim && b_sums.cols() == q / bs,
                "b_sums must be k x (q / bs)");

  // One thread block per (BS+1) x (BS+1) checksum block of C_fc: the tile
  // then holds complete checksum columns, which is what makes the per-panel
  // online screen possible. The per-element accumulation order is identical
  // to blocked_matmul's (ascending k, merge into zero-initialised C), so the
  // product is bit-identical to the unfused kernel regardless of blocking.
  const std::size_t bm = bs + 1;
  const std::size_t bn = bs + 1;
  const std::size_t bk = config.bk;
  const std::size_t rx = config.rx;
  const std::size_t ry = config.ry;
  const int t_bits =
      launcher.precision() == gpusim::Precision::kSingle ? 23 : 52;

  FusedProduct out;
  out.c_fc = Matrix(codec.encoded_dim(m), codec.encoded_dim(q), 0.0);
  Matrix& c = out.c_fc;
  std::atomic<std::size_t> detections{0};
  std::atomic<std::size_t> replays{0};

  const Dim3 grid{q / bs, m / bs, 1};
  launcher.launch("gemm_fused", grid, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t tile_row = blk.block.y;
    const std::size_t tile_col = blk.block.x;
    const std::size_t row0 = tile_row * bs;  // data-row base in A
    const std::size_t col0 = tile_col * bs;  // data-column base in B
    const std::size_t er0 = tile_row * bm;   // encoded bases in C_fc
    const std::size_t ec0 = tile_col * bn;

    std::vector<double> accum(bm * bn, 0.0);
    gpusim::SharedArray<double> sm_a(blk, bm * bk, "sm_a");
    gpusim::SharedArray<double> sm_b(blk, bk * bn, "sm_b");

    // Hazard model: one logical thread per encoded column, owning that
    // column of the accumulator tile; staging is strided over all threads.
    const int num_threads = static_cast<int>(bn);
    blk.hazard.set_thread_count(num_threads);

    std::vector<int> module_row(bm);
    std::vector<int> module_col(bn);
    for (std::size_t i = 0; i < bm; ++i)
      module_row[i] = static_cast<int>((i % rx) * ry);
    for (std::size_t j = 0; j < bn; ++j)
      module_col[j] = static_cast<int>(j % ry);
    const int num_modules = static_cast<int>(rx * ry);
    std::vector<char> row_hot(bm, 0);

    const std::size_t num_panels = ceil_div(k_dim, bk);

    // Stage and accumulate one K panel — the blocked kernel's fence/per-op
    // structure verbatim, except that the encoded operands are staged
    // virtually: data rows/columns from a and b, checksum rows/columns from
    // the compact light-encode sums. Returns k progressed so far.
    const auto accumulate_panel = [&](std::size_t panel) {
      const std::size_t kbase = panel * bk;
      const std::size_t k_count = std::min(bk, k_dim - kbase);

      for (std::size_t i = 0; i < bm; ++i) {
        const double* src = i < bs
                                ? a.data() + (row0 + i) * k_dim + kbase
                                : a_sums.data() + tile_row * k_dim + kbase;
        std::copy_n(src, k_count, sm_a.data() + i * bk);
        std::fill_n(sm_a.data() + i * bk + k_count, bk - k_count, 0.0);
      }
      for (std::size_t kk = 0; kk < k_count; ++kk) {
        const std::size_t gk = kbase + kk;
        std::copy_n(b.data() + gk * q + col0, bs, sm_b.data() + kk * bn);
        sm_b[kk * bn + bs] = b_sums(gk, tile_col);
      }
      if (k_count < bk)
        std::fill_n(sm_b.data() + k_count * bn, (bk - k_count) * bn, 0.0);
      math.load_doubles(bm * k_count + k_count * bn);

      if (blk.hazard.enabled()) {
        for (std::size_t e = 0; e < bm * bk; ++e)
          sm_a.note_write(
              static_cast<int>(e % static_cast<std::size_t>(num_threads)), e);
        for (std::size_t e = 0; e < bk * bn; ++e)
          sm_b.note_write(
              static_cast<int>(e % static_cast<std::size_t>(num_threads)), e);
        blk.hazard.sync_threads();
      }

      const auto k_lo = static_cast<std::int64_t>(kbase);
      const auto k_hi = static_cast<std::int64_t>(kbase + k_count - 1);
      const bool panel_hot =
          math.needs_instrumented(FaultSite::kInnerMul, FaultSite::kInnerAdd,
                                  0, num_modules - 1, k_lo, k_hi);
      if (panel_hot) {
        for (std::size_t i = 0; i < bm; ++i)
          row_hot[i] = math.needs_instrumented(
              FaultSite::kInnerMul, FaultSite::kInnerAdd, module_row[i],
              module_row[i] + static_cast<int>(ry) - 1, k_lo, k_hi);
      }

      for (std::size_t kk = 0; kk < k_count; ++kk) {
        const auto k_global = static_cast<std::int64_t>(kbase + kk);
        for (std::size_t i = 0; i < bm; ++i) {
          const double av = sm_a[i * bk + kk];
          const int mrow = module_row[i];
          double* acc_row = accum.data() + i * bn;
          const double* b_row = sm_b.data() + kk * bn;
          if (!panel_hot || !row_hot[i]) {
            if (config.use_fma)
              math.fma_row(av, b_row, acc_row, bn);
            else
              math.mul_add_row(av, b_row, acc_row, bn);
          } else if (config.use_fma) {
            for (std::size_t j = 0; j < bn; ++j) {
              acc_row[j] = math.faulty_fma(av, b_row[j], acc_row[j],
                                           FaultSite::kInnerAdd,
                                           mrow + module_col[j], k_global);
            }
          } else {
            for (std::size_t j = 0; j < bn; ++j) {
              const int module = mrow + module_col[j];
              const double prod = math.faulty_mul(
                  av, b_row[j], FaultSite::kInnerMul, module, k_global);
              acc_row[j] = math.faulty_add(acc_row[j], prod,
                                           FaultSite::kInnerAdd, module,
                                           k_global);
            }
          }
        }
      }

      if (blk.hazard.enabled()) {
        for (std::size_t i = 0; i < bm; ++i)
          for (std::size_t kk = 0; kk < k_count; ++kk)
            for (int tj = 0; tj < num_threads; ++tj)
              sm_a.note_read(tj, i * bk + kk);
        for (std::size_t kk = 0; kk < k_count; ++kk)
          for (std::size_t j = 0; j < bn; ++j)
            sm_b.note_read(static_cast<int>(j), kk * bn + j);
        blk.hazard.sync_threads();
      }
      return kbase + k_count;
    };

    // Online screen: after k terms every tile column must satisfy the
    // column-checksum identity — the checksum-row accumulator equals the sum
    // of the bs data-row accumulators — up to rounding. Deterministic on the
    // bit-identical accumulators, so fenced and instrumented runs agree.
    // Row-major sweeps (add_rows per data row) keep the screen vectorizable;
    // the per-column rounding chains still ascend i, as before.
    std::vector<double> refs(bn);
    std::vector<double> mags(bn);
    const auto screen = [&](std::size_t k_so_far) {
      std::fill(refs.begin(), refs.end(), 0.0);
      std::fill(mags.begin(), mags.end(), 0.0);
      for (std::size_t i = 0; i < bs; ++i) {
        const double* __restrict row = accum.data() + i * bn;
        math.add_rows(refs.data(), row, bn);
        double* __restrict mrow = mags.data();
        for (std::size_t j = 0; j < bn; ++j)
          mrow[j] += std::fabs(row[j]);  // aabft-lint: allow (screen scale, bulk-counted)
      }
      bool ok = true;
      for (std::size_t j = 0; j < bn; ++j) {
        const double via = accum[bs * bn + j];
        const double scale = mags[j] + std::fabs(via);  // aabft-lint: allow (screen scale, bulk-counted)
        const double eps =  // aabft-lint: allow (coarse screen bound, bulk-counted)
            kPanelScreenSlack * static_cast<double>(k_so_far + bs) *
            std::ldexp(scale, -t_bits);
        const double diff = std::fabs(refs[j] - via);  // aabft-lint: allow (screen compare, bulk-counted)
        if (!(diff <= eps)) ok = false;  // NaN-aware
      }
      math.count_adds((bs + 2) * bn);  // add_rows counted the ref chains
      math.count_muls(3 * bn);
      math.count_compares((bs + 2) * bn);
      return ok;
    };

    std::size_t tile_detections = 0;
    std::size_t tile_replays = 0;
    for (std::size_t panel = 0; panel < num_panels; ++panel) {
      const std::size_t k_so_far = accumulate_panel(panel);
      const bool check_due = (panel + 1) % config.check_stride == 0 ||
                             panel + 1 == num_panels;
      if (!check_due || screen(k_so_far)) continue;
      ++tile_detections;
      // Panel-granular repair, the recovery ladder's earliest rung: replay
      // this tile's panels from k = 0. A one-shot fault that caused the
      // mismatch has fired and been consumed, so the replay re-executes the
      // identical op sequence cleanly — bit-exact, no checksum patching.
      for (std::size_t attempt = 0; attempt < config.max_panel_recomputes;
           ++attempt) {
        std::fill(accum.begin(), accum.end(), 0.0);
        ++tile_replays;
        std::size_t replayed_k = 0;
        for (std::size_t p2 = 0; p2 <= panel; ++p2)
          replayed_k = accumulate_panel(p2);
        if (screen(replayed_k)) break;
        ++tile_detections;  // the replay itself was hit (or damage persists)
      }
    }

    // Final merge into the zero-initialised C_fc (tiles are always interior:
    // encoded extents are multiples of BS+1).
    const bool merge_hot = math.needs_instrumented(
        FaultSite::kFinalAdd, FaultSite::kFinalAdd, 0, num_modules - 1, 0, 0);
    if (!merge_hot) {
      for (std::size_t i = 0; i < bm; ++i)
        math.add_rows(c.data() + (er0 + i) * c.cols() + ec0,
                      accum.data() + i * bn, bn);
    } else {
      for (std::size_t i = 0; i < bm; ++i) {
        for (std::size_t j = 0; j < bn; ++j) {
          const int module = module_row[i] + module_col[j];
          c(er0 + i, ec0 + j) =
              math.faulty_add(c(er0 + i, ec0 + j), accum[i * bn + j],
                              FaultSite::kFinalAdd, module, 0);
        }
      }
    }
    math.store_doubles(bm * bn);

    if (tile_detections > 0)
      detections.fetch_add(tile_detections, std::memory_order_relaxed);
    if (tile_replays > 0)
      replays.fetch_add(tile_replays, std::memory_order_relaxed);
  });

  out.panel_detections = detections.load();
  out.panel_recomputes = replays.load();
  return out;
}

Matrix materialize_columns(const Matrix& a, const Matrix& a_sums,
                           const PartitionedCodec& codec) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  AABFT_REQUIRE(codec.divides(m), "rows of A must be a block multiple");
  AABFT_REQUIRE(a_sums.rows() == m / codec.bs() && a_sums.cols() == n,
                "a_sums must be (m / bs) x n");
  Matrix enc(codec.encoded_dim(m), n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    std::copy_n(a.data() + i * n, n, enc.data() + codec.enc_index(i) * n);
  for (std::size_t br = 0; br < a_sums.rows(); ++br)
    std::copy_n(a_sums.data() + br * n, n,
                enc.data() + codec.checksum_index(br) * n);
  return enc;
}

Matrix materialize_rows(const Matrix& b, const Matrix& b_sums,
                        const PartitionedCodec& codec) {
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  AABFT_REQUIRE(codec.divides(q), "columns of B must be a block multiple");
  AABFT_REQUIRE(b_sums.rows() == n && b_sums.cols() == q / codec.bs(),
                "b_sums must be n x (q / bs)");
  Matrix enc(n, codec.encoded_dim(q), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < q; ++j)
      enc(i, codec.enc_index(j)) = b(i, j);
    for (std::size_t bc = 0; bc < b_sums.cols(); ++bc)
      enc(i, codec.checksum_index(bc)) = b_sums(i, bc);
  }
  return enc;
}

}  // namespace aabft::abft
