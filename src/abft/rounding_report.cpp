#include "core/sync.hpp"
#include "abft/rounding_report.hpp"

#include <atomic>

#include "abft/upper_bound.hpp"
#include "core/require.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;

RoundingAnalysis analyze_rounding(gpusim::Launcher& launcher,
                                  const PMaxTable& a_rows,
                                  const PMaxTable& b_cols,
                                  std::size_t inner_dim,
                                  const BoundParams& params) {
  AABFT_REQUIRE(!a_rows.empty() && !b_cols.empty(),
                "p-max tables must not be empty");
  const std::size_t m = a_rows.size();
  const std::size_t q = b_cols.size();

  RoundingAnalysis analysis;
  analysis.mean = linalg::Matrix(m, q, 0.0);
  analysis.sigma = linalg::Matrix(m, q, 0.0);

  core::Mutex stats_mutex{core::LockRank::kKernelReduction,
                          "kernel.rounding_merge"};
  double max_sigma = 0.0;
  double sigma_sum = 0.0;

  // One block per result row: each thread-equivalent evaluates the closed-
  // form moments for its elements; only the (tiny) p-max lists are read.
  launcher.launch("rounding_analysis", Dim3{m, 1, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t i = blk.block.x;
    math.load_doubles(2 * a_rows[i].size());
    double local_max = 0.0;
    double local_sum = 0.0;
    for (std::size_t j = 0; j < q; ++j) {
      const double y = determine_upper_bound(a_rows[i], b_cols[j]);
      math.count_compares(2 * a_rows[i].size() * b_cols[j].size());
      const RoundingStats stats = inner_product_stats(inner_dim, y, params);
      math.count_muls(8);
      math.count_adds(4);
      analysis.mean(i, j) = stats.mean;
      analysis.sigma(i, j) = stats.sigma;
      local_max = std::max(local_max, stats.sigma);
      // Report-statistics aggregation, not simulated device arithmetic.
      local_sum += stats.sigma;  // aabft-lint: allow
    }
    math.store_doubles(2 * q);
    const core::MutexLock lock(stats_mutex);
    max_sigma = std::max(max_sigma, local_max);
    sigma_sum += local_sum;  // aabft-lint: allow (host-side report reduction)
  });

  analysis.max_sigma = max_sigma;
  analysis.avg_sigma = sigma_sum / static_cast<double>(m * q);
  return analysis;
}

}  // namespace aabft::abft
