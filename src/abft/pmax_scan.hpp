// Standalone p-max collection kernels (no checksum encoding).
//
// The fused encode kernels (encoder.hpp) collect p-max lists for *encoded*
// matrices as Algorithm 1 prescribes. Some consumers need the same
// information for plain, unencoded operands — e.g. the diverse-kernel TMR
// baseline, which has no checksums but still needs per-element rounding
// bounds, and the rounding-analysis by-product API. These kernels run the
// identical block-wise scan-and-zero search followed by the global
// reduction, minus the checksum arithmetic.
#pragma once

#include <cstddef>

#include "abft/pmax.hpp"
#include "gpusim/kernel.hpp"
#include "linalg/matrix.hpp"

namespace aabft::abft {

/// p largest absolute values (plus indices) of every row of `m`.
[[nodiscard]] PMaxTable collect_row_pmax(gpusim::Launcher& launcher,
                                         const linalg::Matrix& m,
                                         std::size_t p,
                                         std::size_t chunk = 32);

/// p largest absolute values (plus indices) of every column of `m`.
[[nodiscard]] PMaxTable collect_col_pmax(gpusim::Launcher& launcher,
                                         const linalg::Matrix& m,
                                         std::size_t p,
                                         std::size_t chunk = 32);

}  // namespace aabft::abft
