#include "abft/protected_lu.hpp"

#include <cmath>

#include "core/require.hpp"
#include "linalg/matmul.hpp"

namespace aabft::abft {

using linalg::Matrix;

ProtectedLu::ProtectedLu(gpusim::Launcher& launcher, ProtectedLuConfig config)
    : launcher_(launcher), config_(config) {
  AABFT_REQUIRE(config_.panel >= 2, "panel width must be at least 2");
  AABFT_REQUIRE(config_.aabft.valid(), "invalid A-ABFT configuration");
}

LuResult ProtectedLu::factor(const Matrix& a) {
  AABFT_REQUIRE(a.rows() == a.cols(), "LU factorisation needs a square matrix");
  LuResult first = factor_once(a);
  if (first.carry_mismatches == 0) return first;
  // The trailing matrix was corrupted between protected updates; the factors
  // derived from it are not trustworthy. Restart once from the pristine
  // input (the one panel-level recompute of the carry ladder).
  LuResult retry = factor_once(a);
  retry.factor_restarts = first.factor_restarts + 1;
  retry.protected_updates += first.protected_updates;
  retry.faults_detected += first.faults_detected;
  retry.panel_detections += first.panel_detections;
  retry.panel_recomputes += first.panel_recomputes;
  retry.fused_updates = retry.fused_updates || first.fused_updates;
  retry.corrections += first.corrections;
  retry.block_recomputes += first.block_recomputes;
  retry.recomputations += first.recomputations;
  retry.carry_mismatches += first.carry_mismatches;
  return retry;
}

LuResult ProtectedLu::factor_once(const Matrix& a) {
  const std::size_t n = a.rows();
  const std::size_t panel = config_.panel;

  LuResult result;
  result.lu = a;
  result.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.perm[i] = i;
  Matrix& m = result.lu;

  AabftMultiplier mult(launcher_, config_.aabft);
  ChecksumCarry carry(n, config_.aabft.bs, panel);
  carry.init(m);

  for (std::size_t k0 = 0; k0 < n; k0 += panel) {
    const std::size_t kb = std::min(panel, n - k0);
    const std::size_t k_end = k0 + kb;

    // CHECK_BEFORE: the panel's columns must still agree with the carried
    // sums before they are consumed.
    if (const std::size_t mism = carry.verify_panel(m, k0, k_end)) {
      result.carry_mismatches += mism;
      result.ok = false;
      return result;
    }

    // ---- panel factorisation with partial pivoting (host, O(n * kb^2)) ----
    for (std::size_t j = k0; j < k_end; ++j) {
      std::size_t piv = j;
      double best = std::fabs(m(j, j));
      for (std::size_t i = j + 1; i < n; ++i) {
        const double cand = std::fabs(m(i, j));
        if (cand > best) {
          best = cand;
          piv = i;
        }
      }
      if (best == 0.0) {
        result.singular = true;  // singular (to working precision)
        result.ok = false;
        return result;
      }
      if (piv != j) {
        // Columns right of the panel keep their carried sums current; the
        // panel's own columns are mid-elimination and never verified again.
        carry.note_row_swap(m, j, piv, k_end);
        for (std::size_t c = 0; c < n; ++c) std::swap(m(j, c), m(piv, c));
        std::swap(result.perm[j], result.perm[piv]);
      }
      const double inv_pivot = 1.0 / m(j, j);
      for (std::size_t i = j + 1; i < n; ++i) {
        m(i, j) *= inv_pivot;
        const double lij = m(i, j);
        for (std::size_t c = j + 1; c < k_end; ++c) m(i, c) -= lij * m(j, c);
      }
    }

    if (k_end == n) break;

    // ---- U12 block: solve L11 * U12 = A12 (host, O(kb^2 * n)) ----
    for (std::size_t j2 = k_end; j2 < n; ++j2) {
      for (std::size_t i = k0; i < k_end; ++i) {
        double s = m(i, j2);
        for (std::size_t t = k0; t < i; ++t) s -= m(i, t) * m(t, j2);
        m(i, j2) = s;
      }
    }

    // ---- trailing update A22 -= L21 * U12, A-ABFT protected (O(n^3)) ----
    const std::size_t m2 = n - k_end;  // trailing rows
    const std::size_t n2 = n - k_end;  // trailing columns
    Matrix l21(m2, kb);
    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < kb; ++j) l21(i, j) = m(k_end + i, k0 + j);
    Matrix u12(kb, n2);
    for (std::size_t i = 0; i < kb; ++i)
      for (std::size_t j = 0; j < n2; ++j) u12(i, j) = m(k0 + i, k_end + j);

    const AabftResult update = mult.multiply_padded(l21, u12);
    ++result.protected_updates;
    if (update.error_detected()) ++result.faults_detected;
    result.panel_detections += update.panel_detections;
    result.panel_recomputes += update.panel_recomputes;
    if (update.fused) result.fused_updates = true;
    result.corrections += update.corrections.size();
    result.block_recomputes += update.block_recomputes;
    result.recomputations += update.recomputations;
    if (update.uncorrectable || !update.recheck_clean) result.ok = false;

    for (std::size_t i = 0; i < m2; ++i)
      for (std::size_t j = 0; j < n2; ++j)
        m(k_end + i, k_end + j) -= update.c(i, j);

    // Carry the update's verified checksums into the running sums.
    carry.apply_update(update.c_fc, mult.codec(), k_end, n2);
  }

  return result;
}

std::vector<double> ProtectedLu::solve(const LuResult& lu,
                                       std::vector<double> b) {
  const std::size_t n = lu.lu.rows();
  AABFT_REQUIRE(b.size() == n, "right-hand side size mismatch");

  // Apply the permutation: y = P b.
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[lu.perm[i]];

  // Forward substitution with unit-diagonal L.
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu.lu(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution with U.
  for (std::size_t i = n; i-- > 0;) {
    double s = x[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= lu.lu(i, j) * x[j];
    x[i] = s / lu.lu(i, i);
  }
  return x;
}

double ProtectedLu::residual(const Matrix& a, const LuResult& lu) {
  const std::size_t n = a.rows();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // (L U)_ij = sum_k L_ik U_kj with L unit-lower, U upper.
      double s = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t k = 0; k < kmax; ++k) s += lu.lu(i, k) * lu.lu(k, j);
      // Final term: k = i gives 1 * U_ij (unit diagonal of L) when i <= j,
      // k = j gives L_ij * U_jj when i > j.
      s += (i <= j) ? lu.lu(i, j) : lu.lu(i, j) * lu.lu(j, j);
      const double pa = a(lu.perm[i], j);
      worst = std::max(worst, std::fabs(pa - s));
    }
  }
  return worst;
}

}  // namespace aabft::abft
