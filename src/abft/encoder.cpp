#include "abft/encoder.hpp"

#include <cmath>
#include <vector>

#include "core/require.hpp"
#include "gpusim/hazard.hpp"

namespace aabft::abft {

using gpusim::BlockCtx;
using gpusim::Dim3;
using linalg::Matrix;

namespace {

/// Merge per-block candidate lists into one list per vector. Runs as its own
/// (low-utilisation) kernel launch so Table I can charge its cost; the paper
/// overlaps it with the GEMM, which the scheme-level timing also models.
PMaxTable reduce_pmax(gpusim::Launcher& launcher, const char* name,
                      const std::vector<PMaxList>& candidates,
                      std::size_t vectors, std::size_t chunks, std::size_t p) {
  PMaxTable table(vectors, PMaxList(p));
  launcher.launch(name, Dim3{vectors, 1, 1}, [&](BlockCtx& blk) {
    const std::size_t v = blk.block.x;
    PMaxList merged(p);
    std::size_t comparisons = 0;
    for (std::size_t c = 0; c < chunks; ++c)
      comparisons += merged.merge(candidates[v * chunks + c]);
    blk.math.count_compares(comparisons);
    blk.math.load_doubles(chunks * p * 2);  // candidate values + indices
    blk.math.store_doubles(p * 2);
    table[v] = std::move(merged);
  });
  return table;
}

}  // namespace

EncodedMatrix encode_columns(gpusim::Launcher& launcher, const Matrix& a,
                             const PartitionedCodec& codec, std::size_t p) {
  AABFT_REQUIRE(p >= 1, "p must be at least 1");
  AABFT_REQUIRE(codec.divides(a.rows()),
                "rows of A must be a multiple of the checksum block size");
  const std::size_t bs = codec.bs();
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t block_rows = m / bs;
  const std::size_t col_chunks = (n + bs - 1) / bs;
  const std::size_t enc_rows = codec.encoded_dim(m);

  Matrix enc(enc_rows, n, 0.0);
  // Data rows are laid out in encoded positions up front: on the GPU the
  // matrix lives in the padded encoded buffer to begin with, so this copy is
  // host-side layout preparation, not device work.
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t ei = codec.enc_index(i);
    for (std::size_t j = 0; j < n; ++j) enc(ei, j) = a(i, j);
  }

  // Per-block candidate lists: one per (encoded row, column chunk).
  std::vector<PMaxList> candidates(enc_rows * col_chunks, PMaxList(p));

  launcher.launch("encode_a", Dim3{col_chunks, block_rows, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t br = blk.block.y;       // block row of A
    const std::size_t bc = blk.block.x;       // column chunk
    const std::size_t row0 = br * bs;
    const std::size_t col0 = bc * bs;
    const std::size_t width = std::min(bs, n - col0);  // ragged last chunk

    // Shared memory: the sub-matrix (replaced by absolute values during the
    // checksum pass, as in Algorithm 1 / Figure 2) and the per-thread
    // column checksums (localSums). Hazard model: one logical thread per
    // column in phase 1; phase 2 assigns row r to thread r % width and the
    // checksum-row scan to thread 0, separated by a barrier.
    gpusim::SharedArray<double> asub(blk, bs * width, "asub");
    gpusim::SharedArray<double> local_sums(blk, width, "local_sums");
    blk.hazard.set_thread_count(static_cast<int>(width));

    math.load_doubles(bs * width);
    // Phase 1: each thread (one per column) accumulates its column checksum
    // top-to-bottom and replaces the element by its absolute value. The
    // checksum adds are not injection sites, so the fast path only needs the
    // force-instrumented switch off; it walks the rows of A contiguously
    // (same per-column rounding chains, bulk-counted ops).
    if (!gpusim::force_instrumented()) {
      // local_sums doubles as the checksum accumulator until the final abs.
      // __restrict raw spans (the source row, the abs tile row and the sum
      // accumulator never alias) keep the loop on the vectorizable fast path;
      // going through SharedArray::operator[] defeated that and left the
      // fenced branch slower than the instrumented one.
      double* __restrict sums = local_sums.data();
      for (std::size_t r = 0; r < bs; ++r) {
        const double* __restrict a_row = a.data() + (row0 + r) * n + col0;
        double* __restrict abs_row = asub.data() + r * width;
        math.add_rows(sums, a_row, width);  // per-column chains ascend r
        for (std::size_t c = 0; c < width; ++c)
          abs_row[c] = std::fabs(a_row[c]);
      }
      math.count_compares(bs * width);  // the per-element abs
      double* __restrict cs_row =
          enc.data() + codec.checksum_index(br) * n + col0;
      for (std::size_t c = 0; c < width; ++c) {
        cs_row[c] = sums[c];
        sums[c] = std::fabs(sums[c]);
      }
      math.count_compares(width);  // abs of each checksum
    } else {
      for (std::size_t c = 0; c < width; ++c) {
        double sum = 0.0;
        for (std::size_t r = 0; r < bs; ++r) {
          const double v = a(row0 + r, col0 + c);
          sum = math.add(sum, v);
          asub[r * width + c] = math.abs(v);
        }
        enc(codec.checksum_index(br), col0 + c) = sum;
        local_sums[c] = math.abs(sum);
      }
    }
    math.store_doubles(width);

    if (blk.hazard.enabled()) {
      // Phase-1 accesses: thread c owns column c of asub and its checksum
      // cell; then the inter-phase __syncthreads; then the phase-2 reads
      // (row r scanned by thread r % width, checksum row by thread 0).
      for (std::size_t r = 0; r < bs; ++r)
        for (std::size_t c = 0; c < width; ++c)
          asub.note_write(static_cast<int>(c), r * width + c);
      for (std::size_t c = 0; c < width; ++c)
        local_sums.note_write(static_cast<int>(c), c);
      blk.hazard.sync_threads();
      for (std::size_t r = 0; r < bs; ++r)
        for (std::size_t c = 0; c < width; ++c)
          asub.note_read(static_cast<int>(r % width), r * width + c);
      for (std::size_t c = 0; c < width; ++c) local_sums.note_read(0, c);
    }

    // Phase 2: numMax passes of max-scan-and-zero per row (Figure 3), plus
    // the reduction over the checksum entries (maxSum path).
    for (std::size_t pass = 0; pass < p; ++pass) {
      for (std::size_t r = 0; r < bs; ++r) {
        const double* __restrict abs_row = asub.data() + r * width;
        double max_val = 0.0;
        std::size_t max_id = 0;
        for (std::size_t c = 0; c < width; ++c) {
          const double v = abs_row[c];
          if (v > max_val) {
            max_val = v;
            max_id = c;
          }
        }
        math.count_compares(width);
        const std::size_t enc_row = codec.enc_index(row0 + r);
        candidates[enc_row * col_chunks + bc].offer(max_val, col0 + max_id);
        asub.note_write(static_cast<int>(r % width), r * width + max_id);
        asub[r * width + max_id] = 0.0;  // exclude from the next pass
      }
      {
        double max_sum = 0.0;
        std::size_t max_id = 0;
        for (std::size_t c = 0; c < width; ++c) {
          if (local_sums[c] > max_sum) {
            max_sum = local_sums[c];
            max_id = c;
          }
        }
        math.count_compares(width);
        const std::size_t cs_row = codec.checksum_index(br);
        candidates[cs_row * col_chunks + bc].offer(max_sum, col0 + max_id);
        local_sums.note_write(0, max_id);
        local_sums[max_id] = 0.0;
      }
    }
    math.store_doubles((bs + 1) * p * 2);  // maxValues + maxValueIDs
  });

  EncodedMatrix out;
  out.data = std::move(enc);
  out.pmax = reduce_pmax(launcher, "reduce_pmax_a", candidates, enc_rows,
                         col_chunks, p);
  return out;
}

EncodedMatrix encode_rows(gpusim::Launcher& launcher, const Matrix& b,
                          const PartitionedCodec& codec, std::size_t p) {
  AABFT_REQUIRE(p >= 1, "p must be at least 1");
  AABFT_REQUIRE(codec.divides(b.cols()),
                "columns of B must be a multiple of the checksum block size");
  const std::size_t bs = codec.bs();
  const std::size_t n = b.rows();
  const std::size_t q = b.cols();
  const std::size_t block_cols = q / bs;
  const std::size_t row_chunks = (n + bs - 1) / bs;
  const std::size_t enc_cols = codec.encoded_dim(q);

  Matrix enc(n, enc_cols, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < q; ++j) enc(i, codec.enc_index(j)) = b(i, j);
  }

  std::vector<PMaxList> candidates(enc_cols * row_chunks, PMaxList(p));

  launcher.launch("encode_b", Dim3{block_cols, row_chunks, 1}, [&](BlockCtx& blk) {
    auto& math = blk.math;
    const std::size_t br = blk.block.y;       // row chunk of B
    const std::size_t bc = blk.block.x;       // block column of B
    const std::size_t row0 = br * bs;
    const std::size_t col0 = bc * bs;
    const std::size_t height = std::min(bs, n - row0);  // ragged last chunk

    // Hazard model mirrors encode_a: one logical thread per row in phase 1;
    // phase 2 assigns column c to thread c % height and the checksum-column
    // scan to thread 0, separated by a barrier.
    gpusim::SharedArray<double> bsub(blk, height * bs, "bsub");
    gpusim::SharedArray<double> local_sums(blk, height, "local_sums");
    blk.hazard.set_thread_count(static_cast<int>(height));

    math.load_doubles(height * bs);
    // Phase 1: each thread (one per row) accumulates its row checksum
    // left-to-right and replaces the element by its absolute value. Not an
    // injection site — raw bulk-counted loop unless force-instrumented.
    if (!gpusim::force_instrumented()) {
      // Same __restrict raw-span structure as encode_a's fenced branch.
      for (std::size_t r = 0; r < height; ++r) {
        const double* __restrict b_row = b.data() + (row0 + r) * b.cols() + col0;
        double* __restrict abs_row = bsub.data() + r * bs;
        const double sum = math.sum_strided(b_row, bs, 1);
        for (std::size_t c = 0; c < bs; ++c)
          abs_row[c] = std::fabs(b_row[c]);
        enc(row0 + r, codec.checksum_index(bc)) = sum;
        local_sums[r] = std::fabs(sum);
      }
      math.count_compares(height * bs + height);
    } else {
      for (std::size_t r = 0; r < height; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < bs; ++c) {
          const double v = b(row0 + r, col0 + c);
          sum = math.add(sum, v);
          bsub[r * bs + c] = math.abs(v);
        }
        enc(row0 + r, codec.checksum_index(bc)) = sum;
        local_sums[r] = math.abs(sum);
      }
    }
    math.store_doubles(height);

    if (blk.hazard.enabled()) {
      for (std::size_t r = 0; r < height; ++r) {
        for (std::size_t c = 0; c < bs; ++c)
          bsub.note_write(static_cast<int>(r), r * bs + c);
        local_sums.note_write(static_cast<int>(r), r);
      }
      blk.hazard.sync_threads();
      for (std::size_t c = 0; c < bs; ++c)
        for (std::size_t r = 0; r < height; ++r)
          bsub.note_read(static_cast<int>(c % height), r * bs + c);
      for (std::size_t r = 0; r < height; ++r) local_sums.note_read(0, r);
    }

    // Phase 2: p passes of max-scan-and-zero per column, plus the checksum
    // column's own maxima.
    for (std::size_t pass = 0; pass < p; ++pass) {
      for (std::size_t c = 0; c < bs; ++c) {
        double max_val = 0.0;
        std::size_t max_id = 0;
        for (std::size_t r = 0; r < height; ++r) {
          const double v = bsub[r * bs + c];
          if (v > max_val) {
            max_val = v;
            max_id = r;
          }
        }
        math.count_compares(height);
        const std::size_t enc_col = codec.enc_index(col0 + c);
        candidates[enc_col * row_chunks + br].offer(max_val, row0 + max_id);
        bsub.note_write(static_cast<int>(c % height), max_id * bs + c);
        bsub[max_id * bs + c] = 0.0;
      }
      {
        double max_sum = 0.0;
        std::size_t max_id = 0;
        for (std::size_t r = 0; r < height; ++r) {
          if (local_sums[r] > max_sum) {
            max_sum = local_sums[r];
            max_id = r;
          }
        }
        math.count_compares(height);
        const std::size_t cs_col = codec.checksum_index(bc);
        candidates[cs_col * row_chunks + br].offer(max_sum, row0 + max_id);
        local_sums.note_write(0, max_id);
        local_sums[max_id] = 0.0;
      }
    }
    math.store_doubles((bs + 1) * p * 2);
  });

  EncodedMatrix out;
  out.data = std::move(enc);
  out.pmax = reduce_pmax(launcher, "reduce_pmax_b", candidates, enc_cols,
                         row_chunks, p);
  return out;
}

}  // namespace aabft::abft
