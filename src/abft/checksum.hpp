// Partitioned checksum encoding — paper Section II, Figure 1.
//
// Following Rexford/Jha's partitioned scheme, checksums are kept per
// BS x BS sub-matrix rather than once per full matrix: every block row of A
// carries an extra column-checksum row, every block column of B an extra
// row-checksum column. The encoded matrices are
//
//   A_cc : (m + m/BS) x n        — checksum row after each block of BS rows
//   B_rc : n x (q + q/BS)        — checksum column after each block of BS cols
//
// and their plain product C_fc = A_cc * B_rc is a grid of (BS+1) x (BS+1)
// full-checksum blocks, each independently checkable (and correctable) —
// which is exactly what makes the scheme block-parallel on a GPU.
//
// This header defines the index arithmetic between data coordinates and
// encoded coordinates, plus host (uninstrumented) encode/strip helpers used
// by tests and baselines. The instrumented encode kernels (Algorithm 1,
// fused with p-max determination) live in encoder.hpp.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace aabft::abft {

class PartitionedCodec {
 public:
  explicit PartitionedCodec(std::size_t bs) : bs_(bs) {
    AABFT_REQUIRE(bs >= 2, "checksum block size must be at least 2");
  }

  [[nodiscard]] std::size_t bs() const noexcept { return bs_; }

  [[nodiscard]] bool divides(std::size_t dim) const noexcept {
    return dim > 0 && dim % bs_ == 0;
  }

  [[nodiscard]] std::size_t num_blocks(std::size_t dim) const {
    AABFT_REQUIRE(divides(dim), "dimension must be a multiple of the block size");
    return dim / bs_;
  }

  /// Encoded extent of a dimension of length d: d + d/BS checksum lines.
  [[nodiscard]] std::size_t encoded_dim(std::size_t dim) const {
    return dim + num_blocks(dim);
  }

  /// Position of data line i (row of A / column of B) in the encoded matrix.
  [[nodiscard]] std::size_t enc_index(std::size_t i) const noexcept {
    return i + i / bs_;
  }

  /// Position of block b's checksum line in the encoded matrix.
  [[nodiscard]] std::size_t checksum_index(std::size_t block) const noexcept {
    return block * (bs_ + 1) + bs_;
  }

  /// Whether encoded position e holds a checksum line.
  [[nodiscard]] bool is_checksum_index(std::size_t e) const noexcept {
    return e % (bs_ + 1) == bs_;
  }

  /// Data index of encoded position e; requires !is_checksum_index(e).
  [[nodiscard]] std::size_t data_index(std::size_t e) const {
    AABFT_REQUIRE(!is_checksum_index(e), "encoded index holds a checksum line");
    return e - e / (bs_ + 1);
  }

  /// Which block an encoded position belongs to.
  [[nodiscard]] std::size_t block_of(std::size_t e) const noexcept {
    return e / (bs_ + 1);
  }

  // ---- host-side (uninstrumented) encode / strip for tests & baselines ----

  /// A -> A_cc: per-block column checksums appended below each block row.
  [[nodiscard]] linalg::Matrix encode_columns_host(const linalg::Matrix& a) const;

  /// B -> B_rc: per-block row checksums appended right of each block column.
  [[nodiscard]] linalg::Matrix encode_rows_host(const linalg::Matrix& b) const;

  /// Remove all checksum rows and columns from a full-checksum result.
  [[nodiscard]] linalg::Matrix strip(const linalg::Matrix& c_fc) const;

  /// Verify that `enc` has consistent per-block checksum *rows* when
  /// recomputed in plain left-to-right double summation. Test helper; exact
  /// (tolerance 0) because encode kernels use the same summation order.
  [[nodiscard]] bool column_checksums_consistent(const linalg::Matrix& enc) const;
  [[nodiscard]] bool row_checksums_consistent(const linalg::Matrix& enc) const;

 private:
  std::size_t bs_;
};

}  // namespace aabft::abft
