#include "abft/upper_bound.hpp"

#include <algorithm>

#include "core/require.hpp"

namespace aabft::abft {

double determine_upper_bound(const PMaxList& a, const PMaxList& b) {
  AABFT_REQUIRE(!a.empty() && !b.empty(),
                "upper-bound determination needs non-empty p-max lists");

  // Case 1: aligned tracked indices — exact products.
  double y = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::size_t idx = a[i].index;
    if (b.contains(idx)) y = std::max(y, a[i].value * b.value_at(idx));
  }

  // Cases 2 and 3: a tracked maximum pairs with an untracked element of the
  // other vector, bounded by that vector's p-th largest value.
  y = std::max(y, a.max_value() * b.min_value());
  y = std::max(y, b.max_value() * a.min_value());
  return y;
}

}  // namespace aabft::abft
