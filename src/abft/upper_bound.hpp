// Runtime determination of the upper bound y (paper Section IV-E).
//
// For a result element c_ij = sum_k a_ik * b_kj the probabilistic bound needs
// y >= |a_ik * b_kj| for all k. Given the p largest absolute values of the
// two vectors (A_idx from a_i, B_idx from b_j), y is the maximum of three
// cases:
//
//   1. S = A_idx ∩ B_idx != {} : two tracked values align at the same k
//        -> max over s in S of |a_s * b_s|  (the actual largest products)
//   2. the largest |a| pairs with some untracked b (necessarily <= min B_idx)
//        -> max(A_idx) * min(B_idx)
//   3. symmetric for the largest |b|
//        -> max(B_idx) * min(A_idx)
//
// Taking the maximum of all three is sound for every alignment of the
// untracked elements: any k outside both index sets contributes at most
// min(A_idx) * min(B_idx), which cases 2 and 3 dominate.
#pragma once

#include "abft/pmax.hpp"

namespace aabft::abft {

/// Upper bound on |a_k * b_k| over all k, from the two p-max lists.
/// Both lists must be non-empty (an encode kernel always produces at least
/// one entry per vector).
[[nodiscard]] double determine_upper_bound(const PMaxList& a, const PMaxList& b);

}  // namespace aabft::abft
